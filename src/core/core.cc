// simlint: hot-path
#include "core/core.hh"

#include <algorithm>
#include <cassert>

namespace ecdp
{

Core::Core(const Workload *workload, CoreMemoryInterface *memory,
           const CoreParams &params)
    : workload_(workload), memory_(memory), params_(params)
{
    assert(workload_ && memory_);
    completion_.assign(workload_->trace.size(), kPending);
}

bool
Core::depSatisfied(const TraceEntry &entry, Cycle now) const
{
    if (entry.dep == kNoDep)
        return true;
    Cycle ready = completion_[static_cast<std::size_t>(entry.dep)];
    return ready != kPending && ready <= now;
}

void
Core::retire(Cycle now)
{
    unsigned budget = params_.width;
    while (budget > 0 && !rob_.empty()) {
        RobEntry &head = rob_.front();
        if (!head.isMem) {
            std::uint32_t take = std::min<std::uint32_t>(budget,
                                                         head.fillers);
            head.fillers -= take;
            robCount_ -= take;
            retired_ += take;
            budget -= take;
            if (head.fillers == 0)
                rob_.pop_front();
            continue;
        }
        Cycle done = completion_[head.traceIdx];
        if (done == kPending || done > now)
            break;
        rob_.pop_front();
        --robCount_;
        --lsqCount_;
        ++retired_;
        --budget;
    }
}

void
Core::issueLoads(Cycle now)
{
    if (pendingLoads_.empty() || now < issueRecheckAt_)
        return;
    // Compact in place: loads that stay pending slide toward the
    // front in their original order. This runs every busy cycle, so
    // it must not allocate.
    std::size_t keep = 0;
    unsigned issued = 0;
    bool memory_stalled = false;
    Cycle earliest_ready = kPending;
    for (std::size_t i = 0; i < pendingLoads_.size(); ++i) {
        const std::size_t idx = pendingLoads_[i];
        const TraceEntry &entry = workload_->trace[idx];
        if (memory_stalled || issued >= params_.issuePerCycle ||
            !depSatisfied(entry, now)) {
            if (entry.dep != kNoDep) {
                Cycle ready =
                    completion_[static_cast<std::size_t>(entry.dep)];
                if (ready != kPending && ready > now)
                    earliest_ready = std::min(earliest_ready, ready);
            }
            pendingLoads_[keep++] = idx;
            continue;
        }
        std::optional<Cycle> done = memory_->load(entry, now);
        if (!done) {
            // The memory system is out of buffers; no point trying
            // the remaining loads this cycle.
            memory_stalled = true;
            pendingLoads_[keep++] = idx;
            continue;
        }
        completion_[idx] = std::max(*done, now + 1);
        ++issued;
    }
    pendingLoads_.resize(keep);
    // Nothing issued and nothing stalled means every pending load is
    // waiting on a dependence: either one with a known completion
    // (the earliest bounds the next possible issue) or on another
    // load in this same list, which cannot issue before that bound
    // either. Until then — or until dispatch() adds state — walking
    // the list is provably a no-op, with no observable side effects
    // skipped (memory_->load was never called).
    issueRecheckAt_ = (issued == 0 && !memory_stalled)
                          ? earliest_ready
                          : Cycle{0};
}

void
Core::dispatch(Cycle now)
{
    unsigned budget = params_.width;
    const auto &trace = workload_->trace;
    while (budget > 0 && cursor_ < trace.size()) {
        const TraceEntry &entry = trace[cursor_];
        if (!fillersPrimed_) {
            fillersLeft_ = entry.nonMemBefore;
            fillersPrimed_ = true;
        }
        unsigned rob_space = params_.robEntries - robCount_;
        if (rob_space == 0)
            break;
        if (fillersLeft_ > 0) {
            std::uint32_t take = std::min<std::uint32_t>(
                {budget, fillersLeft_, rob_space});
            RobEntry filler;
            filler.fillers = take;
            rob_.push_back(filler);
            robCount_ += take;
            budget -= take;
            fillersLeft_ -= take;
            continue;
        }
        if (lsqCount_ >= params_.lsqEntries)
            break;
        RobEntry mem_entry;
        mem_entry.isMem = true;
        mem_entry.traceIdx = cursor_;
        rob_.push_back(mem_entry);
        ++robCount_;
        ++lsqCount_;
        if (entry.kind == AccessKind::Store) {
            memory_->store(entry, now);
            completion_[cursor_] = now + 1;
        } else {
            completion_[cursor_] = kPending;
            pendingLoads_.push_back(cursor_);
        }
        // Either branch changes what issueLoads() could do: a store
        // completion may satisfy a dependence, a new load must be
        // considered. Re-walk on the next tick.
        issueRecheckAt_ = Cycle{0};
        --budget;
        ++cursor_;
        fillersPrimed_ = false;
    }
}

void
Core::resetPass()
{
    cursor_ = 0;
    fillersPrimed_ = false;
    fillersLeft_ = 0;
    pendingLoads_.clear();
    issueRecheckAt_ = Cycle{0};
    std::fill(completion_.begin(), completion_.end(), kPending);
}

Cycle
Core::nextEventCycle(Cycle now) const
{
    Cycle wake = kNoEventCycle;

    // Retire: non-memory fillers at the head always retire next
    // cycle; a memory head with a known completion blocks everything
    // behind it until that cycle (if the completion is already due,
    // retirement merely ran out of width this cycle — resume next).
    // A head whose completion is still kPending is an unissued load;
    // the pending-loads walk below bounds it.
    if (!rob_.empty()) {
        const RobEntry &head = rob_.front();
        if (!head.isMem)
            return now + 1;
        Cycle done = completion_[head.traceIdx];
        if (done != kPending)
            wake = std::min(wake, std::max(done, now + 1));
    }

    // Issue: a load whose dependence is already satisfied was held
    // back only by the per-cycle issue budget or a memory-system
    // rejection — both retried (with observable side effects such as
    // the MSHR stall-cycle counters) every cycle, so no skipping.
    // Otherwise the earliest state change is the earliest known
    // dependence completion. Dependences whose completion is itself
    // kPending are other unissued loads in this same list, so the
    // walk bottoms out: the lowest-indexed pending load's dependence
    // is always a store, an issued load, or absent.
    for (std::size_t idx : pendingLoads_) {
        const TraceEntry &entry = workload_->trace[idx];
        if (entry.dep == kNoDep)
            return now + 1;
        Cycle ready = completion_[static_cast<std::size_t>(entry.dep)];
        if (ready == kPending)
            continue;
        if (ready <= now)
            return now + 1;
        wake = std::min(wake, ready);
    }

    // Dispatch: possible next cycle whenever there is ROB space and
    // the next entry is a filler batch or a memory op with LSQ space.
    // A full ROB or LSQ only drains through retirement, which the
    // retire bound above already covers.
    if (cursor_ < workload_->trace.size() &&
        robCount_ < params_.robEntries) {
        const TraceEntry &entry = workload_->trace[cursor_];
        std::uint32_t fillers =
            fillersPrimed_ ? fillersLeft_ : entry.nonMemBefore;
        if (fillers > 0 || lsqCount_ < params_.lsqEntries)
            return now + 1;
    }

    return wake;
}

void
Core::tick(Cycle now)
{
    retire(now);
    issueLoads(now);
    dispatch(now);

    if (cursor_ == workload_->trace.size() && rob_.empty()) {
        if (!finishedOnce_) {
            finishedOnce_ = true;
            finishCycle_ = now;
            retiredFirstPass_ = retired_;
        }
        if (wrapAround_)
            resetPass();
    }
}

} // namespace ecdp
