#include "core/core.hh"

#include <algorithm>
#include <cassert>

namespace ecdp
{

Core::Core(const Workload *workload, CoreMemoryInterface *memory,
           const CoreParams &params)
    : workload_(workload), memory_(memory), params_(params)
{
    assert(workload_ && memory_);
    completion_.assign(workload_->trace.size(), kPending);
}

bool
Core::depSatisfied(const TraceEntry &entry, Cycle now) const
{
    if (entry.dep == kNoDep)
        return true;
    Cycle ready = completion_[static_cast<std::size_t>(entry.dep)];
    return ready != kPending && ready <= now;
}

void
Core::retire(Cycle now)
{
    unsigned budget = params_.width;
    while (budget > 0 && !rob_.empty()) {
        RobEntry &head = rob_.front();
        if (!head.isMem) {
            std::uint32_t take = std::min<std::uint32_t>(budget,
                                                         head.fillers);
            head.fillers -= take;
            robCount_ -= take;
            retired_ += take;
            budget -= take;
            if (head.fillers == 0)
                rob_.pop_front();
            continue;
        }
        Cycle done = completion_[head.traceIdx];
        if (done == kPending || done > now)
            break;
        rob_.pop_front();
        --robCount_;
        --lsqCount_;
        ++retired_;
        --budget;
    }
}

void
Core::issueLoads(Cycle now)
{
    if (pendingLoads_.empty())
        return;
    std::vector<std::size_t> still_pending;
    still_pending.reserve(pendingLoads_.size());
    unsigned issued = 0;
    bool memory_stalled = false;
    for (std::size_t idx : pendingLoads_) {
        const TraceEntry &entry = workload_->trace[idx];
        if (memory_stalled || issued >= params_.issuePerCycle ||
            !depSatisfied(entry, now)) {
            still_pending.push_back(idx);
            continue;
        }
        std::optional<Cycle> done = memory_->load(entry, now);
        if (!done) {
            // The memory system is out of buffers; no point trying
            // the remaining loads this cycle.
            memory_stalled = true;
            still_pending.push_back(idx);
            continue;
        }
        completion_[idx] = std::max(*done, now + 1);
        ++issued;
    }
    pendingLoads_ = std::move(still_pending);
}

void
Core::dispatch(Cycle now)
{
    unsigned budget = params_.width;
    const auto &trace = workload_->trace;
    while (budget > 0 && cursor_ < trace.size()) {
        const TraceEntry &entry = trace[cursor_];
        if (!fillersPrimed_) {
            fillersLeft_ = entry.nonMemBefore;
            fillersPrimed_ = true;
        }
        unsigned rob_space = params_.robEntries - robCount_;
        if (rob_space == 0)
            break;
        if (fillersLeft_ > 0) {
            std::uint32_t take = std::min<std::uint32_t>(
                {budget, fillersLeft_, rob_space});
            RobEntry filler;
            filler.fillers = take;
            rob_.push_back(filler);
            robCount_ += take;
            budget -= take;
            fillersLeft_ -= take;
            continue;
        }
        if (lsqCount_ >= params_.lsqEntries)
            break;
        RobEntry mem_entry;
        mem_entry.isMem = true;
        mem_entry.traceIdx = cursor_;
        rob_.push_back(mem_entry);
        ++robCount_;
        ++lsqCount_;
        if (entry.kind == AccessKind::Store) {
            memory_->store(entry, now);
            completion_[cursor_] = now + 1;
        } else {
            completion_[cursor_] = kPending;
            pendingLoads_.push_back(cursor_);
        }
        --budget;
        ++cursor_;
        fillersPrimed_ = false;
    }
}

void
Core::resetPass()
{
    cursor_ = 0;
    fillersPrimed_ = false;
    fillersLeft_ = 0;
    pendingLoads_.clear();
    std::fill(completion_.begin(), completion_.end(), kPending);
}

void
Core::tick(Cycle now)
{
    retire(now);
    issueLoads(now);
    dispatch(now);

    if (cursor_ == workload_->trace.size() && rob_.empty()) {
        if (!finishedOnce_) {
            finishedOnce_ = true;
            finishCycle_ = now;
            retiredFirstPass_ = retired_;
        }
        if (wrapAround_)
            resetPass();
    }
}

} // namespace ecdp
