/**
 * @file
 * Trace-driven out-of-order core timing model.
 *
 * The model captures the properties the paper's results hinge on:
 *
 *  - a 256-entry reorder buffer bounds memory-level parallelism,
 *  - loads issue only after the load that produced their address
 *    completes, so linked-data-structure traversals serialize their
 *    misses while streaming loads overlap,
 *  - 4-wide in-order retire, so a pending load at the ROB head stalls
 *    the pipeline,
 *  - a 32-entry load-store queue bounds in-flight memory operations.
 *
 * Non-memory instructions are represented by each trace entry's
 * leading instruction count and consume dispatch/retire bandwidth and
 * ROB space, but never stall.
 */

#ifndef ECDP_CORE_CORE_HH
#define ECDP_CORE_CORE_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "memsim/types.hh"
#include "trace/trace.hh"

namespace ecdp
{

/** Core sizing (defaults per Table 5 of the paper). */
struct CoreParams
{
    unsigned robEntries = 256;
    unsigned width = 4;
    unsigned lsqEntries = 32;
    /** Loads the core may issue to the memory system per cycle. */
    unsigned issuePerCycle = 4;
};

/**
 * Interface the core uses to access the memory hierarchy. Implemented
 * by sim::MemorySystem.
 */
class CoreMemoryInterface
{
  public:
    virtual ~CoreMemoryInterface() = default;

    /**
     * Try to start a load.
     * @return Completion cycle of the load's data, or nullopt if the
     *         memory system cannot accept the request this cycle.
     */
    virtual std::optional<Cycle> load(const TraceEntry &entry,
                                      Cycle now) = 0;

    /** Perform a store (never stalls the core). */
    virtual void store(const TraceEntry &entry, Cycle now) = 0;
};

/**
 * One simulated core executing a Workload trace.
 */
class Core
{
  public:
    /**
     * @param workload Trace to execute (not owned).
     * @param memory Memory hierarchy for this core (not owned).
     * @param params Core sizing.
     */
    Core(const Workload *workload, CoreMemoryInterface *memory,
         const CoreParams &params = {});

    /** Advance one cycle: retire, issue ready loads, dispatch. */
    void tick(Cycle now);

    /**
     * Earliest cycle after @p now at which tick() could do anything —
     * the event-driven scheduler's wakeup bound. Must be called after
     * tick(now); every cycle in (now, nextEventCycle(now)) is
     * guaranteed to be a no-op tick (no retirement, no issue, no
     * dispatch, no memory-system call), so the simulation loop may
     * skip straight to the bound with bit-identical results.
     *
     * The bound is deliberately conservative: whenever the core could
     * conceivably act next cycle — fillers at the ROB head, a
     * dispatchable entry, or a dependence-satisfied load that was
     * held back by an issue-budget or memory-system stall (whose
     * retry has observable side effects: stall-cycle counters) — it
     * answers now + 1. A later bound is only returned when the core
     * is provably idle until a known completion time: the ROB head
     * waiting on its miss, or every issuable load waiting on a
     * dependence with a known completion cycle.
     *
     * Returns kNoEventCycle when the core can never act again without
     * external input (finished, non-wrapping).
     */
    Cycle nextEventCycle(Cycle now) const;

    /** True once every trace entry has been retired at least once. */
    bool finishedOnce() const { return finishedOnce_; }

    /** Cycle at which the trace finished its first pass (valid only
     *  after finishedOnce()). */
    Cycle finishCycle() const { return finishCycle_; }

    /** Instructions retired during the first pass of the trace. */
    std::uint64_t retiredFirstPass() const { return retiredFirstPass_; }

    /**
     * When true (multi-core runs), the core restarts its trace after
     * finishing so it keeps generating memory contention while other
     * cores complete their first pass.
     */
    void setWrapAround(bool wrap) { wrapAround_ = wrap; }

    /** Total retired instructions (all passes). */
    std::uint64_t retired() const { return retired_; }

  private:
    struct RobEntry
    {
        /** Non-memory filler instructions represented by this entry
         *  (0 for a memory operation). */
        std::uint32_t fillers = 0;
        /** Trace index of the memory op (valid when fillers == 0). */
        std::size_t traceIdx = 0;
        bool isMem = false;
    };

    /** Per-in-flight-load bookkeeping. */
    enum class LoadState : std::uint8_t { WaitDep, Ready, Issued };

    void retire(Cycle now);
    void issueLoads(Cycle now);
    void dispatch(Cycle now);
    void resetPass();

    bool depSatisfied(const TraceEntry &entry, Cycle now) const;

    const Workload *workload_;
    CoreMemoryInterface *memory_;
    CoreParams params_;

    /** Next trace entry to dispatch. */
    std::size_t cursor_ = 0;
    /** Fillers of trace[cursor_] still to dispatch. */
    std::uint32_t fillersLeft_ = 0;
    bool fillersPrimed_ = false;

    std::deque<RobEntry> rob_;
    /** Instructions currently in the ROB (fillers + memory ops). */
    unsigned robCount_ = 0;
    /** Memory ops currently in the ROB (LSQ occupancy). */
    unsigned lsqCount_ = 0;

    /** Completion cycle per trace entry for the current pass;
     *  kPending when not yet complete. */
    std::vector<Cycle> completion_;
    static constexpr Cycle kPending = Cycle{~std::uint64_t{0}};

    /** Dispatched, un-issued loads (trace indices). */
    std::vector<std::size_t> pendingLoads_;

    /**
     * Cycles strictly before this one cannot issue any pending load,
     * so issueLoads() returns without walking the list. Set after a
     * walk that issued nothing (to the earliest known dependence
     * completion — the same bottoming-out argument nextEventCycle()
     * documents) and reset to 0 ("always walk") whenever the
     * assumption could break: a load issued, the memory system
     * stalled (retries carry observable stall counters), dispatch
     * completed a store or queued a new load, or the pass reset.
     */
    Cycle issueRecheckAt_{};

    std::uint64_t retired_ = 0;
    std::uint64_t retiredFirstPass_ = 0;
    bool finishedOnce_ = false;
    Cycle finishCycle_{};
    bool wrapAround_ = false;
    bool passDone_ = false;
};

} // namespace ecdp

#endif // ECDP_CORE_CORE_HH
