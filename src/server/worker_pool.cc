#include "server/worker_pool.hh"

#include <stdexcept>
#include <utility>

#include "server/process_util.hh"

namespace ecdp
{
namespace server
{

WorkerPool::WorkerPool(std::vector<std::string> workerArgv,
                       unsigned shards)
    : workerArgv_(std::move(workerArgv))
{
    if (workerArgv_.empty())
        throw std::invalid_argument("WorkerPool: empty argv");
    if (shards == 0)
        shards = 1;
    queues_.resize(shards);
    shards_.reserve(shards);
    for (unsigned i = 0; i < shards; ++i)
        shards_.emplace_back([this, i] { shardLoop(i); });
}

WorkerPool::~WorkerPool()
{
    stop();
}

void
WorkerPool::stop()
{
    std::vector<Job> orphans;
    {
        MutexLock lock(mutex_);
        stopping_ = true;
        for (std::deque<Job> &queue : queues_) {
            for (Job &job : queue)
                orphans.push_back(std::move(job));
            queue.clear();
        }
    }
    cv_.notify_all();
    for (std::thread &shard : shards_) {
        if (shard.joinable())
            shard.join();
    }
    for (const Job &job : orphans)
        job.done("", "worker pool shut down");
}

void
WorkerPool::submit(std::string input, Done done)
{
    {
        MutexLock lock(mutex_);
        if (stopping_) {
            // Fire outside the lock below, like any other failure.
        } else {
            unsigned shard = nextShard_;
            nextShard_ = (nextShard_ + 1) % unsigned(queues_.size());
            queues_[shard].push_back(
                Job{std::move(input), std::move(done)});
            cv_.notify_one();
            return;
        }
    }
    done("", "worker pool shut down");
}

std::size_t
WorkerPool::queued() const
{
    MutexLock lock(mutex_);
    std::size_t depth = 0;
    for (const std::deque<Job> &queue : queues_)
        depth += queue.size();
    return depth;
}

bool
WorkerPool::takeJob(unsigned self, Job &job)
{
    MutexLock lock(mutex_);
    cv_.wait(lock.native(), [&] {
        mutex_.assertHeld(); // the wait predicate runs locked
        if (stopping_)
            return true;
        for (const std::deque<Job> &queue : queues_) {
            if (!queue.empty())
                return true;
        }
        return false;
    });
    if (!queues_[self].empty()) {
        job = std::move(queues_[self].front());
        queues_[self].pop_front();
        return true;
    }
    // Own deque is dry: steal from the back of the next non-empty
    // sibling, scanning from self+1 so thieves spread out.
    for (std::size_t i = 1; i < queues_.size(); ++i) {
        std::deque<Job> &victim =
            queues_[(self + i) % queues_.size()];
        if (!victim.empty()) {
            job = std::move(victim.back());
            victim.pop_back();
            stolen_.fetch_add(1);
            return true;
        }
    }
    return false; // stopping_ with nothing left
}

void
WorkerPool::runJob(const Job &job)
{
    spawned_.fetch_add(1);
    std::string output;
    std::string error;
    try {
        ChildResult result = runChild(workerArgv_, job.input);
        if (result.ok) {
            output = std::move(result.out);
        } else {
            if (result.signal != 0)
                crashed_.fetch_add(1);
            error = result.describeFailure();
        }
    } catch (const std::exception &e) {
        error = e.what(); // exec failure — the child never ran
    }
    job.done(std::move(output), std::move(error));
}

void
WorkerPool::shardLoop(unsigned self)
{
    for (;;) {
        Job job;
        if (!takeJob(self, job))
            return;
        runJob(job);
    }
}

} // namespace server
} // namespace ecdp
