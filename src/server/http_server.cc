#include "server/http_server.hh"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

namespace ecdp
{
namespace server
{

namespace
{

void
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

} // namespace

HttpServer::HttpServer(Handler handler)
    : handler_(std::move(handler))
{}

HttpServer::~HttpServer()
{
    stop();
}

void
HttpServer::start(std::uint16_t port)
{
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        throw std::runtime_error("socket: " +
                                 std::string(std::strerror(errno)));
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in sin{};
    sin.sin_family = AF_INET;
    sin.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    sin.sin_port = htons(port);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&sin),
               sizeof(sin)) != 0) {
        std::string why = std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        throw std::runtime_error("bind 127.0.0.1:" +
                                 std::to_string(port) + ": " + why);
    }
    if (::listen(listenFd_, 512) != 0) {
        std::string why = std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        throw std::runtime_error("listen: " + why);
    }
    socklen_t len = sizeof(sin);
    ::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&sin),
                  &len);
    port_ = ntohs(sin.sin_port);
    setNonBlocking(listenFd_);

    epollFd_ = ::epoll_create1(0);
    wakeFd_ = ::eventfd(0, EFD_NONBLOCK);
    if (epollFd_ < 0 || wakeFd_ < 0)
        throw std::runtime_error("epoll/eventfd setup failed");

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listenFd_;
    ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, listenFd_, &ev);
    ev.events = EPOLLIN;
    ev.data.fd = wakeFd_;
    ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, wakeFd_, &ev);

    stopping_.store(false);
    started_ = true;
    thread_ = std::thread([this] { loop(); });
}

void
HttpServer::stop()
{
    if (!started_)
        return;
    stopping_.store(true);
    wake();
    thread_.join();
    started_ = false;

    {
        // Closed under the completion lock so late Responder calls
        // (worker threads finishing after stop) see -1 and drop.
        MutexLock lock(completionMutex_);
        completions_.clear();
        if (wakeFd_ >= 0)
            ::close(wakeFd_);
        wakeFd_ = -1;
    }
    for (auto &[fd, conn] : conns_)
        ::close(fd);
    conns_.clear();
    connCount_.store(0);
    if (listenFd_ >= 0)
        ::close(listenFd_);
    if (epollFd_ >= 0)
        ::close(epollFd_);
    listenFd_ = epollFd_ = -1;
}

void
HttpServer::wake()
{
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n =
        ::write(wakeFd_, &one, sizeof(one));
}

void
HttpServer::loop()
{
    epoll_event events[128];
    while (!stopping_.load()) {
        int n = ::epoll_wait(epollFd_, events, 128, 500);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        for (int i = 0; i < n; ++i) {
            int fd = events[i].data.fd;
            if (fd == listenFd_) {
                acceptReady();
                continue;
            }
            if (fd == wakeFd_) {
                std::uint64_t junk;
                while (::read(wakeFd_, &junk, sizeof(junk)) > 0) {
                }
                continue;
            }
            auto it = conns_.find(fd);
            if (it == conns_.end())
                continue;
            if (events[i].events & (EPOLLHUP | EPOLLERR)) {
                closeConn(fd);
                continue;
            }
            if (events[i].events & EPOLLIN)
                readReady(it->second);
            // readReady may have closed the connection.
            auto again = conns_.find(fd);
            if (again != conns_.end() &&
                (events[i].events & EPOLLOUT)) {
                flush(again->second);
            }
        }
        drainCompletions();
    }
}

void
HttpServer::acceptReady()
{
    while (true) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            return; // EAGAIN or transient error: try next wakeup
        if (conns_.size() >= kMaxConnections) {
            ::close(fd);
            continue;
        }
        setNonBlocking(fd);
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
        Connection conn;
        conn.fd = fd;
        conn.gen = nextGen_++;
        conns_.emplace(fd, std::move(conn));
        connCount_.store(conns_.size());
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev);
    }
}

void
HttpServer::readReady(Connection &conn)
{
    // While a response is outstanding, don't read at all: the bytes
    // stay in the kernel socket buffer (TCP backpressure), so a peer
    // streaming a pipelined follow-up cannot grow the parser buffer
    // while we are parked — and a malformed follow-up can never be
    // answered before (or instead of) the pending response.
    // updateEpoll() drops EPOLLIN for the duration; this guard covers
    // events already reported before the interest change.
    if (conn.awaiting)
        return;

    char buf[16 * 1024];
    while (true) {
        ssize_t n = ::read(conn.fd, buf, sizeof(buf));
        if (n > 0) {
            conn.parser.feed(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n == 0) {
            closeConn(conn.fd);
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        closeConn(conn.fd);
        return;
    }

    // next() is what detects most malformed input, so check for
    // failure after it — a failure answered here and not on some
    // later readability event, which a parked peer may never cause.
    std::optional<HttpRequest> req = conn.parser.next();
    if (conn.parser.failed()) {
        if (!conn.errorSent) {
            conn.errorSent = true;
            HttpResponse err;
            err.status = conn.parser.errorStatus();
            err.body = "{\"error\":\"malformed request\"}";
            err.closeConnection = true;
            conn.out += serializeResponse(err);
            conn.closeAfterWrite = true;
        }
        flush(conn);
        return;
    }
    if (!req)
        return;
    conn.awaiting = true;
    if (!req->keepAlive())
        conn.closeAfterWrite = true;
    int fd = conn.fd;
    std::uint64_t gen = conn.gen;
    Responder respond = [this, fd, gen](HttpResponse response) {
        // The lock also guards wakeFd_ against stop(): once the
        // server is stopped the response is dropped instead of
        // touching a closed (possibly reused) descriptor.
        MutexLock lock(completionMutex_);
        if (wakeFd_ < 0)
            return;
        completions_.push_back(
            Completion{fd, gen, std::move(response)});
        std::uint64_t one = 1;
        [[maybe_unused]] ssize_t n =
            ::write(wakeFd_, &one, sizeof(one));
    };
    handler_(*req, std::move(respond));
    // Stop polling EPOLLIN until the response has been written (the
    // handler only queues completions, so conn is still valid).
    updateEpoll(conn);
}

void
HttpServer::drainCompletions()
{
    std::deque<Completion> batch;
    {
        MutexLock lock(completionMutex_);
        batch.swap(completions_);
    }
    for (Completion &done : batch) {
        auto it = conns_.find(done.fd);
        if (it == conns_.end() || it->second.gen != done.gen)
            continue; // connection died; drop the response
        Connection &conn = it->second;
        if (done.response.closeConnection)
            conn.closeAfterWrite = true;
        conn.out += serializeResponse(done.response);
        conn.awaiting = false;
        flush(conn);
        auto again = conns_.find(done.fd);
        if (again == conns_.end())
            continue;
        // The parser may hold a pipelined follow-up request.
        readReady(again->second);
    }
}

void
HttpServer::flush(Connection &conn)
{
    while (!conn.out.empty()) {
        ssize_t n = ::send(conn.fd, conn.out.data(),
                           conn.out.size(), MSG_NOSIGNAL);
        if (n > 0) {
            conn.out.erase(0, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        if (n < 0 && errno == EINTR)
            continue;
        closeConn(conn.fd);
        return;
    }
    if (conn.out.empty() && conn.closeAfterWrite && !conn.awaiting) {
        closeConn(conn.fd);
        return;
    }
    updateEpoll(conn);
}

void
HttpServer::updateEpoll(Connection &conn)
{
    epoll_event ev{};
    // No EPOLLIN while a response is pending (see readReady);
    // EPOLLHUP/EPOLLERR are always reported, so a dying peer is
    // still noticed.
    ev.events = (conn.awaiting ? 0u : EPOLLIN) |
                (conn.out.empty() ? 0u : EPOLLOUT);
    ev.data.fd = conn.fd;
    ::epoll_ctl(epollFd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void
HttpServer::closeConn(int fd)
{
    auto it = conns_.find(fd);
    if (it == conns_.end())
        return;
    ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    conns_.erase(it);
    connCount_.store(conns_.size());
}

} // namespace server
} // namespace ecdp
