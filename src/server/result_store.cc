#include "server/result_store.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "stats/json.hh"

namespace ecdp
{
namespace server
{

namespace
{

std::string
hexKey(std::uint64_t key)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(key));
    return buf;
}

} // namespace

ResultStore::ResultStore(std::string dir, std::size_t memoryCap,
                         std::size_t diskCap)
    : dir_(std::move(dir)), memoryCap_(memoryCap), diskCap_(diskCap)
{
    if (!dir_.empty() && diskCap_ != 0)
        scanSpillDir();
}

void
ResultStore::scanSpillDir()
{
    // Collect pre-existing spill files so the cap covers them too:
    // a restarted daemon must not treat yesterday's spill set as
    // free. Sorted by mtime so eviction stays oldest-first across
    // restarts.
    std::vector<std::pair<std::filesystem::file_time_type,
                          std::uint64_t>>
        found;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir_, ec)) {
        const std::string name = entry.path().filename().string();
        // cell-<16 hex digits>.bin, nothing else.
        if (name.size() != 25 || name.rfind("cell-", 0) != 0 ||
            name.compare(21, 4, ".bin") != 0)
            continue;
        std::uint64_t key = 0;
        bool hex = true;
        for (std::size_t i = 5; i < 21; ++i) {
            const char c = name[i];
            int digit;
            if (c >= '0' && c <= '9')
                digit = c - '0';
            else if (c >= 'a' && c <= 'f')
                digit = c - 'a' + 10;
            else {
                hex = false;
                break;
            }
            key = (key << 4) | std::uint64_t(digit);
        }
        if (!hex)
            continue;
        std::error_code tec;
        auto mtime = std::filesystem::last_write_time(entry.path(),
                                                      tec);
        if (tec)
            mtime = std::filesystem::file_time_type::min();
        found.emplace_back(mtime, key);
    }
    std::sort(found.begin(), found.end());

    std::vector<std::uint64_t> victims;
    {
        MutexLock lock(mutex_);
        for (const auto &[mtime, key] : found) {
            if (diskKnown_.insert(key).second)
                diskOrder_.push_back(key);
        }
        while (diskOrder_.size() > diskCap_) {
            const std::uint64_t victim = diskOrder_.front();
            diskOrder_.pop_front();
            diskKnown_.erase(victim);
            victims.push_back(victim);
        }
    }
    for (std::uint64_t victim : victims) {
        std::error_code rec;
        std::filesystem::remove(dir_ + "/" + entryFileName(victim),
                                rec);
        diskEvicted_.fetch_add(1);
    }
}

void
ResultStore::noteSpilledLocked(std::uint64_t key,
                               std::vector<std::uint64_t> &victims)
{
    if (diskKnown_.insert(key).second)
        diskOrder_.push_back(key);
    while (diskCap_ != 0 && diskOrder_.size() > diskCap_) {
        const std::uint64_t victim = diskOrder_.front();
        diskOrder_.pop_front();
        diskKnown_.erase(victim);
        victims.push_back(victim);
    }
}

ResultStore::Bytes
ResultStore::insertLocked(std::uint64_t key, Bytes bytes)
{
    auto [it, inserted] = results_.emplace(key, bytes);
    if (!inserted) {
        // Republishing an existing key (complete() after a disk
        // reload, or a racing loader): the bytes are
        // content-addressed, so both copies match — keep the newer.
        it->second = std::move(bytes);
        return it->second;
    }
    insertionOrder_.push_back(key);
    while (memoryCap_ != 0 && results_.size() > memoryCap_) {
        const std::uint64_t victim = insertionOrder_.front();
        insertionOrder_.pop_front();
        results_.erase(victim);
        evicted_.fetch_add(1);
    }
    return bytes;
}

std::string
ResultStore::entryFileName(std::uint64_t key)
{
    return "cell-" + hexKey(key) + ".bin";
}

std::size_t
ResultStore::size() const
{
    MutexLock lock(mutex_);
    return results_.size();
}

ResultStore::Bytes
ResultStore::lookup(std::uint64_t key)
{
    {
        MutexLock lock(mutex_);
        auto it = results_.find(key);
        if (it != results_.end()) {
            memoryHits_.fetch_add(1);
            return it->second;
        }
    }
    return loadFromDisk(key);
}

ResultStore::Role
ResultStore::fetchOrAttach(std::uint64_t key, Ready cb)
{
    // Memory/flight check, then (on miss) a lock-free disk probe,
    // then a re-check: a racing submitter either also probes the
    // disk (harmless double read) or finds our flight entry.
    for (bool probedDisk : {false, true}) {
        Bytes hitBytes;
        {
            MutexLock lock(mutex_);
            auto hit = results_.find(key);
            if (hit != results_.end()) {
                memoryHits_.fetch_add(1);
                hitBytes = hit->second;
            } else {
                auto flight = flights_.find(key);
                if (flight != flights_.end()) {
                    flight->second.waiters.push_back(std::move(cb));
                    dedupAttached_.fetch_add(1);
                    return Role::Follower;
                }
                if (probedDisk) {
                    flights_[key].waiters.push_back(std::move(cb));
                    leaders_.fetch_add(1);
                    return Role::Leader;
                }
            }
        }
        // Callbacks fire outside the lock (they may re-enter).
        if (hitBytes) {
            cb(std::move(hitBytes), "");
            return Role::Hit;
        }
        if (Bytes fromDisk = loadFromDisk(key)) {
            cb(std::move(fromDisk), "");
            return Role::Hit;
        }
    }
    // Unreachable: the second pass always leads or attaches.
    return Role::Leader;
}

void
ResultStore::complete(std::uint64_t key, std::string bytes)
{
    Bytes shared = std::make_shared<const std::string>(
        std::move(bytes));
    spillToDisk(key, *shared);

    std::vector<Ready> waiters;
    {
        MutexLock lock(mutex_);
        insertLocked(key, shared);
        auto it = flights_.find(key);
        if (it != flights_.end()) {
            waiters = std::move(it->second.waiters);
            flights_.erase(it);
        }
    }
    for (Ready &cb : waiters)
        cb(shared, "");
}

void
ResultStore::fail(std::uint64_t key, const std::string &error)
{
    std::vector<Ready> waiters;
    {
        MutexLock lock(mutex_);
        auto it = flights_.find(key);
        if (it != flights_.end()) {
            waiters = std::move(it->second.waiters);
            flights_.erase(it);
        }
    }
    for (Ready &cb : waiters)
        cb(nullptr, error);
}

void
ResultStore::failAllFlights(const std::string &error)
{
    std::map<std::uint64_t, Flight> drained;
    {
        MutexLock lock(mutex_);
        drained.swap(flights_);
    }
    for (auto &[key, flight] : drained) {
        for (Ready &cb : flight.waiters)
            cb(nullptr, error);
    }
}

ResultStore::Bytes
ResultStore::loadFromDisk(std::uint64_t key)
{
    if (dir_.empty())
        return nullptr;
    const std::string path = dir_ + "/" + entryFileName(key);
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return nullptr; // plain miss

    // Entry layout: one JSON header line carrying the key and the
    // exact payload length, then the raw payload bytes. The frame
    // makes truncation detectable: a partial write can never pass
    // the length check.
    auto corrupt = [&](const std::string &why) -> Bytes {
        std::cerr << "ecdpd: result store: corrupt entry " << path
                  << " (" << why << "); removing and rebuilding\n";
        corruptRebuilds_.fetch_add(1);
        in.close();
        std::error_code ec;
        std::filesystem::remove(path, ec);
        // The file is gone; drop it from the disk-cap bookkeeping
        // so the cap slot frees up.
        MutexLock lock(mutex_);
        if (diskKnown_.erase(key)) {
            auto pos = std::find(diskOrder_.begin(),
                                 diskOrder_.end(), key);
            if (pos != diskOrder_.end())
                diskOrder_.erase(pos);
        }
        return nullptr;
    };

    std::string header;
    if (!std::getline(in, header))
        return corrupt("empty file");
    std::optional<JsonValue> parsed = tryParseJson(header);
    if (!parsed)
        return corrupt("unparsable header");
    std::string payload;
    try {
        if (parsed->at("version").asI64() != 1)
            return corrupt("unknown version");
        if (parsed->at("key").asString() != hexKey(key))
            return corrupt("key mismatch");
        std::uint64_t length = parsed->at("bytes").asU64();
        payload.resize(length);
        in.read(payload.data(),
                static_cast<std::streamsize>(length));
        if (static_cast<std::uint64_t>(in.gcount()) != length)
            return corrupt("truncated payload");
        // Exactly the framed bytes and nothing more.
        if (in.peek() != std::char_traits<char>::eof())
            return corrupt("trailing bytes");
    } catch (const JsonError &e) {
        return corrupt(e.what());
    }

    Bytes shared =
        std::make_shared<const std::string>(std::move(payload));
    {
        MutexLock lock(mutex_);
        shared = insertLocked(key, std::move(shared));
    }
    diskHits_.fetch_add(1);
    return shared;
}

void
ResultStore::spillToDisk(std::uint64_t key, const std::string &bytes)
{
    if (dir_.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        return;
    const std::string path = dir_ + "/" + entryFileName(key);
    std::ostringstream id;
    id << std::hash<std::thread::id>{}(std::this_thread::get_id());
    const std::string tmp = path + ".tmp." + id.str();
    {
        std::ofstream os(tmp, std::ios::binary);
        if (!os)
            return;
        os << "{\"version\":1,\"key\":\"" << hexKey(key)
           << "\",\"bytes\":" << bytes.size() << "}\n"
           << bytes;
        if (!os)
            return;
    }
    // Atomic publish: concurrent daemons (or a reader mid-crash)
    // never observe a half-written entry.
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        return;
    }

    // Bookkeep the new file and enforce the disk cap. Victims are
    // chosen under the lock but unlinked outside it: filesystem
    // latency must not serialize the whole store.
    std::vector<std::uint64_t> victims;
    {
        MutexLock lock(mutex_);
        noteSpilledLocked(key, victims);
    }
    for (std::uint64_t victim : victims) {
        std::error_code rec;
        std::filesystem::remove(dir_ + "/" + entryFileName(victim),
                                rec);
        diskEvicted_.fetch_add(1);
    }
}

} // namespace server
} // namespace ecdp
