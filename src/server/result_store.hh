/**
 * @file
 * Content-addressed result store with single-flight dedup — the
 * shared successor of the per-process configHash result cache
 * (src/runner/result_cache).
 *
 * Results are immutable byte strings (stats JSON, exactly as the
 * worker produced them) keyed by the 64-bit content hash of the
 * canonical cell spec that produced them. The store answers three
 * questions atomically:
 *
 *   - is the result already materialized (memory or disk)?
 *   - is somebody already computing it (attach, don't recompute)?
 *   - am I the first (become the leader and compute exactly once)?
 *
 * so N concurrent identical submissions cost exactly one simulation.
 * Completion callbacks fire outside the store lock, on the thread
 * that completed (or, for cache hits, the caller's thread).
 *
 * The optional spill directory makes the store durable: entries are
 * length-framed, key-stamped files published by atomic rename.
 * Truncated or corrupt files are detected on load, logged, removed
 * and rebuilt — never trusted, never fatal.
 *
 * The in-memory map is bounded (memoryCap entries, insertion-order
 * eviction) so a long-running daemon cannot grow without limit: an
 * evicted entry reloads from the spill directory when one is
 * configured, and otherwise simply becomes a miss that re-simulates
 * under a fresh single flight.
 *
 * The spill directory itself is bounded the same way (diskCap
 * entries, oldest-spill-first eviction): when a new spill pushes the
 * file count over the cap, the oldest cell-*.bin files are removed.
 * Pre-existing entries found at startup are seeded into the eviction
 * order by file mtime, so a restarted daemon keeps honoring the cap.
 * An evicted file is simply a disk miss that re-simulates.
 */

#ifndef ECDP_SERVER_RESULT_STORE_HH
#define ECDP_SERVER_RESULT_STORE_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "memsim/thread_annotations.hh"

namespace ecdp
{
namespace server
{

// ecdplint: long-lived
class ResultStore
{
  public:
    using Bytes = std::shared_ptr<const std::string>;

    /**
     * Completion callback: exactly one of @p bytes (success) or
     * @p error (non-empty) is set. May fire before fetchOrAttach
     * returns (cache hit) or later from the completing thread.
     */
    using Ready =
        std::function<void(Bytes bytes, const std::string &error)>;

    /** What fetchOrAttach decided. */
    enum class Role
    {
        /** Result was already materialized; cb has fired. */
        Hit,
        /** Someone else is computing; cb fires on their completion. */
        Follower,
        /** Caller must compute and then complete() or fail(). */
        Leader,
    };

    /** Default bound on in-memory entries. */
    static constexpr std::size_t kDefaultMemoryCap = 4096;

    /**
     * @param dir Spill directory; empty = memory-only.
     * @param memoryCap Max entries held in memory (0 = unbounded).
     * @param diskCap Max spill files kept on disk (0 = unbounded).
     *        Enforced oldest-spill-first; existing files are counted
     *        (and trimmed) at construction.
     */
    explicit ResultStore(std::string dir = "",
                         std::size_t memoryCap = kDefaultMemoryCap,
                         std::size_t diskCap = 0);

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    /** Callbacks (including a Hit's immediate one) fire outside the
     *  store lock — they may re-enter the store. */
    Role fetchOrAttach(std::uint64_t key, Ready cb)
        ECDP_EXCLUDES(mutex_);

    /** Publish @p bytes under @p key and fire every attached cb. */
    void complete(std::uint64_t key, std::string bytes)
        ECDP_EXCLUDES(mutex_);

    /** Abort the flight: fire every attached cb with @p error. The
     *  key stays uncached, so a later submission retries. */
    void fail(std::uint64_t key, const std::string &error)
        ECDP_EXCLUDES(mutex_);

    /** Abort every in-flight key at once (shutdown drain): fire all
     *  attached cbs with @p error. Nothing is cached. */
    void failAllFlights(const std::string &error)
        ECDP_EXCLUDES(mutex_);

    /** Materialized result, or nullptr (never joins a flight). */
    Bytes lookup(std::uint64_t key) ECDP_EXCLUDES(mutex_);

    /** @{ Monotonic statistics. */
    std::uint64_t memoryHits() const { return memoryHits_.load(); }
    std::uint64_t diskHits() const { return diskHits_.load(); }
    std::uint64_t dedupAttached() const
    {
        return dedupAttached_.load();
    }
    std::uint64_t leaders() const { return leaders_.load(); }
    std::uint64_t corruptRebuilds() const
    {
        return corruptRebuilds_.load();
    }
    std::uint64_t evicted() const { return evicted_.load(); }
    std::uint64_t diskEvicted() const { return diskEvicted_.load(); }
    /** @} */

    /** Entries materialized in memory (diagnostics). */
    std::size_t size() const ECDP_EXCLUDES(mutex_);

    static std::string entryFileName(std::uint64_t key);

  private:
    struct Flight
    {
        std::vector<Ready> waiters;
    };

    Bytes loadFromDisk(std::uint64_t key) ECDP_EXCLUDES(mutex_);
    void spillToDisk(std::uint64_t key, const std::string &bytes)
        ECDP_EXCLUDES(mutex_);
    /** Insert under mutex_, tracking eviction order and enforcing
     *  the cap. Returns the entry actually stored (a racing inserter
     *  may have won). */
    Bytes insertLocked(std::uint64_t key, Bytes bytes)
        ECDP_REQUIRES(mutex_);
    /** Record @p key as on disk and pop victims past diskCap_ into
     *  @p victims (oldest first); the caller unlinks them unlocked. */
    void noteSpilledLocked(std::uint64_t key,
                           std::vector<std::uint64_t> &victims)
        ECDP_REQUIRES(mutex_);
    /** Seed disk bookkeeping from a directory listing (ctor only). */
    void scanSpillDir() ECDP_EXCLUDES(mutex_);

    std::string dir_;
    std::size_t memoryCap_;
    std::size_t diskCap_;

    mutable AnnotatedMutex mutex_;
    std::map<std::uint64_t, Bytes> results_ ECDP_GUARDED_BY(mutex_);
    std::map<std::uint64_t, Flight> flights_ ECDP_GUARDED_BY(mutex_);
    /** Keys of results_ in insertion order; 1:1 with results_. */
    std::deque<std::uint64_t> insertionOrder_
        ECDP_GUARDED_BY(mutex_);
    /** Keys with a spill file on disk, oldest spill first. */
    std::deque<std::uint64_t> diskOrder_ ECDP_GUARDED_BY(mutex_);
    /** Same keys as diskOrder_, for O(log n) membership. */
    std::set<std::uint64_t> diskKnown_ ECDP_GUARDED_BY(mutex_);

    std::atomic<std::uint64_t> memoryHits_{0};
    std::atomic<std::uint64_t> diskHits_{0};
    std::atomic<std::uint64_t> dedupAttached_{0};
    std::atomic<std::uint64_t> leaders_{0};
    std::atomic<std::uint64_t> corruptRebuilds_{0};
    std::atomic<std::uint64_t> evicted_{0};
    std::atomic<std::uint64_t> diskEvicted_{0};
};

} // namespace server
} // namespace ecdp

#endif // ECDP_SERVER_RESULT_STORE_HH
