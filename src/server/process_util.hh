/**
 * @file
 * Child-process plumbing for the ecdpd worker pool — the only place
 * in the tree allowed to fork/exec (enforced by the simlint
 * raw-process-spawn rule). Everything here is checked: a failed
 * fork/exec/pipe surfaces as an exception or a populated error
 * field, never as a silently missing child, and wait status is
 * always decoded (exit code vs. terminating signal) so a crashed
 * simulation is reported, not confused with an empty result.
 */

#ifndef ECDP_SERVER_PROCESS_UTIL_HH
#define ECDP_SERVER_PROCESS_UTIL_HH

#include <string>
#include <vector>

namespace ecdp
{
namespace server
{

/** Outcome of one child run. */
struct ChildResult
{
    /** True when the child exited normally with status 0. */
    bool ok = false;
    /** Exit code when the child exited normally, else -1. */
    int exitCode = -1;
    /** Terminating signal when the child was killed, else 0. */
    int signal = 0;
    /** Everything the child wrote to stdout. */
    std::string out;
    /** Everything the child wrote to stderr (diagnostics). */
    std::string err;

    /** Human-readable failure description ("" when ok). */
    std::string describeFailure() const;
};

/**
 * Run @p argv (argv[0] = executable path) to completion: write
 * @p input to its stdin, close it, then collect stdout and stderr
 * concurrently (poll-based, so a chatty child cannot deadlock the
 * parent) and reap the child. Throws std::runtime_error when the
 * child could not be started at all (bad path, fork failure);
 * abnormal child termination is reported through the result instead.
 */
ChildResult runChild(const std::vector<std::string> &argv,
                     const std::string &input);

/**
 * Absolute path of the running executable (/proc/self/exe), falling
 * back to @p argv0 when the proc link is unavailable. The daemon
 * re-executes itself in --worker mode through this.
 */
std::string selfExePath(const char *argv0);

} // namespace server
} // namespace ecdp

#endif // ECDP_SERVER_PROCESS_UTIL_HH
