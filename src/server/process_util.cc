#include "server/process_util.hh"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <csignal>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

namespace ecdp
{
namespace server
{

namespace
{

struct Pipe
{
    int fds[2] = {-1, -1};

    Pipe()
    {
        if (::pipe(fds) != 0)
            throw std::runtime_error(
                "pipe: " + std::string(std::strerror(errno)));
    }

    ~Pipe()
    {
        closeRead();
        closeWrite();
    }

    int readEnd() const { return fds[0]; }
    int writeEnd() const { return fds[1]; }

    void closeRead()
    {
        if (fds[0] >= 0)
            ::close(fds[0]);
        fds[0] = -1;
    }

    void closeWrite()
    {
        if (fds[1] >= 0)
            ::close(fds[1]);
        fds[1] = -1;
    }
};

} // namespace

std::string
ChildResult::describeFailure() const
{
    if (ok)
        return "";
    std::string why;
    if (signal != 0) {
        why = "worker killed by signal " + std::to_string(signal);
    } else {
        why = "worker exited with status " + std::to_string(exitCode);
    }
    if (!err.empty()) {
        // Keep the tail of stderr: the exception message is last.
        std::string tail = err;
        if (tail.size() > 512)
            tail = "..." + tail.substr(tail.size() - 512);
        while (!tail.empty() && tail.back() == '\n')
            tail.pop_back();
        why += ": " + tail;
    }
    return why;
}

ChildResult
runChild(const std::vector<std::string> &argv,
         const std::string &input)
{
    if (argv.empty())
        throw std::runtime_error("runChild: empty argv");

    // A child dying mid-write must surface as EPIPE + wait status,
    // not kill the daemon with SIGPIPE.
    static const bool sigpipeIgnored = [] {
        ::signal(SIGPIPE, SIG_IGN);
        return true;
    }();
    (void)sigpipeIgnored;

    Pipe toChild;
    Pipe fromChild;
    Pipe errFromChild;
    // Detect exec failure in the child through a CLOEXEC pipe: it
    // stays silent on success and carries errno when exec fails.
    Pipe execStatus;
    ::fcntl(execStatus.writeEnd(), F_SETFD, FD_CLOEXEC);

    pid_t pid = ::fork();
    if (pid < 0)
        throw std::runtime_error("fork: " +
                                 std::string(std::strerror(errno)));
    if (pid == 0) {
        // Child: wire the pipes onto stdio and exec.
        ::dup2(toChild.readEnd(), STDIN_FILENO);
        ::dup2(fromChild.writeEnd(), STDOUT_FILENO);
        ::dup2(errFromChild.writeEnd(), STDERR_FILENO);
        toChild.closeRead();
        toChild.closeWrite();
        fromChild.closeRead();
        fromChild.closeWrite();
        errFromChild.closeRead();
        errFromChild.closeWrite();
        execStatus.closeRead();

        std::vector<char *> args;
        args.reserve(argv.size() + 1);
        for (const std::string &a : argv)
            args.push_back(const_cast<char *>(a.c_str()));
        args.push_back(nullptr);
        ::execv(args[0], args.data());
        int err = errno;
        [[maybe_unused]] ssize_t n =
            ::write(execStatus.writeEnd(), &err, sizeof(err));
        ::_exit(127);
    }

    // Parent.
    toChild.closeRead();
    fromChild.closeWrite();
    errFromChild.closeWrite();
    execStatus.closeWrite();

    {
        int execErrno = 0;
        ssize_t n = ::read(execStatus.readEnd(), &execErrno,
                           sizeof(execErrno));
        if (n == static_cast<ssize_t>(sizeof(execErrno))) {
            int status = 0;
            ::waitpid(pid, &status, 0);
            throw std::runtime_error(
                "exec " + argv[0] + ": " +
                std::strerror(execErrno));
        }
    }

    ChildResult result;
    // Full-duplex: feed stdin and drain stdout/stderr in ONE poll
    // loop. A child that echoes input back (or is chatty on stderr)
    // fills a pipe long before a large stdin is fully written;
    // writing stdin to completion first would deadlock against it.
    std::size_t off = 0;
    int inFd = toChild.writeEnd();
    // Non-blocking stdin feed: a blocking write of the whole input
    // would stall inside write() once the pipe fills, poll or not.
    ::fcntl(inFd, F_SETFL,
            ::fcntl(inFd, F_GETFL) | O_NONBLOCK);
    int outFd = fromChild.readEnd();
    int errFd = errFromChild.readEnd();
    bool inOpen = !input.empty();
    bool outOpen = true, errOpen = true;
    if (!inOpen)
        toChild.closeWrite();
    char buf[16 * 1024];
    while (inOpen || outOpen || errOpen) {
        pollfd pfds[3];
        nfds_t nfds = 0;
        if (inOpen)
            pfds[nfds++] = pollfd{inFd, POLLOUT, 0};
        if (outOpen)
            pfds[nfds++] = pollfd{outFd, POLLIN, 0};
        if (errOpen)
            pfds[nfds++] = pollfd{errFd, POLLIN, 0};
        if (::poll(pfds, nfds, -1) < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        for (nfds_t i = 0; i < nfds; ++i) {
            if (pfds[i].revents == 0)
                continue;
            if (pfds[i].fd == inFd && inOpen) {
                ssize_t n = ::write(inFd, input.data() + off,
                                    input.size() - off);
                if (n > 0) {
                    off += static_cast<std::size_t>(n);
                } else if (n < 0 && errno != EINTR &&
                           errno != EAGAIN) {
                    // EPIPE: child died early; wait status explains.
                    off = input.size();
                }
                if (off == input.size()) {
                    inOpen = false;
                    toChild.closeWrite();
                }
                continue;
            }
            if (!(pfds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            ssize_t n = ::read(pfds[i].fd, buf, sizeof(buf));
            if (n > 0) {
                (pfds[i].fd == outFd ? result.out : result.err)
                    .append(buf, static_cast<std::size_t>(n));
            } else if (n == 0 ||
                       (n < 0 && errno != EINTR &&
                        errno != EAGAIN)) {
                (pfds[i].fd == outFd ? outOpen : errOpen) = false;
            }
        }
    }
    toChild.closeWrite();

    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    if (WIFEXITED(status)) {
        result.exitCode = WEXITSTATUS(status);
        result.ok = result.exitCode == 0;
    } else if (WIFSIGNALED(status)) {
        result.signal = WTERMSIG(status);
    }
    return result;
}

std::string
selfExePath(const char *argv0)
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0 ? argv0 : "";
}

} // namespace server
} // namespace ecdp
