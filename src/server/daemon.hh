/**
 * @file
 * ecdpd — the simulation-as-a-service daemon. Glues the subsystem
 * together: the epoll HTTP front door (http_server), the
 * content-addressed single-flight result store (result_store) and
 * the work-stealing pool of crash-isolated worker processes
 * (worker_pool).
 *
 * Request lifecycle of one grid cell:
 *
 *   POST /v1/grids ──▶ admission + quota check (429 on overflow)
 *     └▶ parse + canonicalize every cell (400 on any bad one)
 *        └▶ store.fetchOrAttach(key):
 *             Hit       cell completes immediately (0 simulations)
 *             Follower  rides an in-flight leader (0 simulations)
 *             Leader    one worker process simulates, then
 *                       store.complete() fans out to every follower
 *
 * so N identical concurrent submissions cost exactly one simulation
 * and everyone gets byte-identical stats JSON. Responses for
 * wait-mode submissions and blocking results polls are deferred
 * through the server's thread-safe Responder — no thread is parked
 * per pending request, which is how thousands of cells stay in
 * flight on a handful of threads.
 *
 * Endpoints (all JSON):
 *
 *   GET  /healthz                     liveness probe
 *   GET  /metrics                     counters via obs::MetricRegistry
 *   POST /v1/grids                    {client, cells:[...], wait?}
 *   GET  /v1/grids/<id>               status summary
 *   GET  /v1/grids/<id>/results       full results; ?wait=1 blocks
 *   GET  /v1/cells/<hexkey>           raw stored stats bytes
 *   POST /v1/shutdown                 graceful stop
 */

#ifndef ECDP_SERVER_DAEMON_HH
#define ECDP_SERVER_DAEMON_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "memsim/thread_annotations.hh"
#include "server/cell.hh"
#include "server/http_server.hh"
#include "server/result_store.hh"
#include "server/worker_pool.hh"

namespace ecdp
{
namespace obs
{
class MetricRegistry;
} // namespace obs

namespace server
{

struct DaemonOptions
{
    /** Port to bind (0 = ephemeral; read back via Daemon::port()). */
    std::uint16_t port = 0;
    /** Worker-pool shards (concurrent worker processes). */
    unsigned workers = 4;
    /** Daemon-wide bound on admitted-but-incomplete cells; a grid
     *  that would exceed it is rejected whole with 429. */
    std::size_t admissionLimit = 4096;
    /** Same bound per client name (0 = no per-client quota). */
    std::size_t perClientLimit = 0;
    /** Completed grids kept queryable before the oldest is evicted
     *  (0 = keep forever). Evicted grids 404; their cells stay
     *  fetchable via /v1/cells/<key> while stored. */
    std::size_t completedGridCap = 1024;
    /** Result-store in-memory entry bound (0 = unbounded); evicted
     *  entries reload from storeDir when one is set. */
    std::size_t storeMemoryCap = ResultStore::kDefaultMemoryCap;
    /** Result-store spill-file bound on disk (0 = unbounded),
     *  enforced oldest-first; evicted files re-simulate on demand. */
    std::size_t storeDiskCap = 0;
    /** Result-store spill directory ("" = memory-only). */
    std::string storeDir;
    /** Worker argv, e.g. {"/path/to/ecdpd", "--worker"}. */
    std::vector<std::string> workerArgv;
};

// ecdplint: long-lived
class Daemon
{
  public:
    explicit Daemon(DaemonOptions opts);
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /** Bind and serve. Throws std::runtime_error on bind failure. */
    void start();

    /** Stop serving (idempotent; also run by the destructor). */
    void stop() ECDP_EXCLUDES(shutdownMutex_);

    /** Bound port (valid after start()). */
    std::uint16_t port() const { return server_.port(); }

    /** Block until POST /v1/shutdown or stop(). */
    void waitForShutdown() ECDP_EXCLUDES(shutdownMutex_);

    /** True once POST /v1/shutdown or stop() happened. */
    bool shutdownRequested() const ECDP_EXCLUDES(shutdownMutex_)
    {
        MutexLock lock(shutdownMutex_);
        return shutdownRequested_;
    }

    /** @{ Diagnostics for tests and serverbench. */
    const ResultStore &store() const { return store_; }
    const WorkerPool &pool() const { return pool_; }
    std::uint64_t cellsInflight() const { return inflight_.load(); }
    std::uint64_t inflightPeak() const
    {
        return inflightPeak_.load();
    }
    /** Client names with nonzero in-flight quota entries. */
    std::size_t clientsTracked() const ECDP_EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
        return clientInflight_.size();
    }
    /** Grids currently queryable (admitted minus evicted). */
    std::size_t gridsTracked() const ECDP_EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
        return grids_.size();
    }
    /** @} */

    /** Snapshot every daemon counter into @p registry under
     *  "ecdpd.*" — the /metrics endpoint renders exactly this. */
    void exportMetrics(obs::MetricRegistry &registry) const;

  private:
    using Clock = std::chrono::steady_clock;

    struct Cell
    {
        CellSpec spec;
        std::uint64_t key = 0;
        enum class State { Pending, Done, Failed };
        State state = State::Pending;
        std::string error;
    };

    struct Grid
    {
        std::string id;
        std::string client;
        std::vector<Cell> cells;
        std::size_t remaining = 0;
        Clock::time_point submitted;
        /** wait-mode submitters and blocked results polls. */
        std::vector<HttpServer::Responder> waiters;
    };

    void handle(const HttpRequest &req, HttpServer::Responder respond)
        ECDP_EXCLUDES(mutex_, shutdownMutex_);
    /** Handlers respond (a deferred callback that may re-enter the
     *  server) strictly outside mutex_ — hence EXCLUDES, and the
     *  compute-under-lock / respond-outside split in each body. */
    void handleSubmitGrid(const HttpRequest &req,
                          HttpServer::Responder &respond)
        ECDP_EXCLUDES(mutex_);
    void handleGridStatus(const std::string &id,
                          HttpServer::Responder &respond)
        ECDP_EXCLUDES(mutex_);
    void handleGridResults(const HttpRequest &req,
                           const std::string &id,
                           HttpServer::Responder &respond)
        ECDP_EXCLUDES(mutex_);
    void handleCellFetch(const std::string &hexKey,
                         HttpServer::Responder &respond);
    void handleMetrics(HttpServer::Responder &respond);
    /** Counted error reply (increments requests.bad). */
    void respondError(HttpServer::Responder &respond, int status,
                      const std::string &message);

    void launchCell(const std::string &gridId, std::size_t index,
                    const CellSpec &spec, std::uint64_t key)
        ECDP_EXCLUDES(mutex_);
    void onCellReady(const std::string &gridId, std::size_t index,
                     const ResultStore::Bytes &bytes,
                     const std::string &error) ECDP_EXCLUDES(mutex_);
    /** Record @p gridId as completed and evict the oldest completed
     *  grids beyond opts_.completedGridCap; the caller must not
     *  touch grid references afterwards. */
    void noteGridCompletedLocked(const std::string &gridId)
        ECDP_REQUIRES(mutex_);

    /** Results JSON. */
    std::string gridResultsJsonLocked(const Grid &grid)
        ECDP_REQUIRES(mutex_);
    /** Status JSON. */
    std::string gridStatusJsonLocked(const Grid &grid) const
        ECDP_REQUIRES(mutex_);

    DaemonOptions opts_;

    // Declaration order is load-bearing. All state that completion
    // callbacks (onCellReady) touch — mutex_, grids_,
    // clientInflight_, the counters below — is declared BEFORE the
    // server/store/pool, so it is destroyed after them: ~WorkerPool
    // fails any still-queued job, and those callbacks run through
    // store_ into onCellReady, which must find this state alive.
    // stop() tears the subsystems down in the same order (server,
    // then pool, then store flights) before destruction even starts.
    mutable AnnotatedMutex mutex_;
    std::map<std::string, Grid> grids_ ECDP_GUARDED_BY(mutex_);
    /** Completed grid ids, oldest first, for cap eviction. */
    std::deque<std::string> completedGrids_ ECDP_GUARDED_BY(mutex_);
    std::map<std::string, std::size_t> clientInflight_
        ECDP_GUARDED_BY(mutex_);
    std::uint64_t nextGridId_ ECDP_GUARDED_BY(mutex_) = 1;

    std::atomic<std::uint64_t> inflight_{0};
    std::atomic<std::uint64_t> inflightPeak_{0};
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> badRequests_{0};
    std::atomic<std::uint64_t> gridsSubmitted_{0};
    std::atomic<std::uint64_t> cellsSubmitted_{0};
    std::atomic<std::uint64_t> cellsCompleted_{0};
    std::atomic<std::uint64_t> cellsFailed_{0};
    std::atomic<std::uint64_t> admissionRejected_{0};
    std::atomic<std::uint64_t> quotaRejected_{0};
    std::atomic<std::uint64_t> gridsEvicted_{0};
    /** Cell latency (admission to completion), microseconds. */
    std::atomic<std::uint64_t> latencyUsSum_{0};
    std::atomic<std::uint64_t> latencyUsCount_{0};
    std::atomic<std::uint64_t> latencyUsMax_{0};

    mutable AnnotatedMutex shutdownMutex_;
    std::condition_variable shutdownCv_;
    bool shutdownRequested_ ECDP_GUARDED_BY(shutdownMutex_) = false;

    // Destroyed before the state above (see the ordering note): the
    // pool first — its teardown fails pending jobs, whose completion
    // callbacks respond through the server — the server last.
    HttpServer server_;
    ResultStore store_;
    WorkerPool pool_;
};

} // namespace server
} // namespace ecdp

#endif // ECDP_SERVER_DAEMON_HH
