/**
 * @file
 * Embedded epoll HTTP server — the async front door of ecdpd.
 *
 * One event-loop thread owns the listen socket, every connection and
 * all parser state; handlers run on that thread and must not block.
 * A handler answers through the Responder it is given, either
 * immediately or later from any thread (the scheduler's completion
 * callbacks use this): responses are queued and the loop is woken
 * through an eventfd, so thousands of requests can be left pending
 * while their grid cells simulate without tying up a thread each.
 *
 * Deliberately minimal: HTTP/1.1 keep-alive, one outstanding request
 * per connection (no response interleaving), bounded connection
 * count. Everything above that — routing, admission control, quotas —
 * lives in Daemon.
 */

#ifndef ECDP_SERVER_HTTP_SERVER_HH
#define ECDP_SERVER_HTTP_SERVER_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <thread>

#include "memsim/thread_annotations.hh"
#include "server/http.hh"

namespace ecdp
{
namespace server
{

// ecdplint: long-lived
class HttpServer
{
  public:
    /**
     * Completion callback handed to the handler. Thread-safe; call
     * exactly once. Calling after the connection died is harmless
     * (the response is dropped).
     */
    using Responder = std::function<void(HttpResponse)>;

    /** Request handler; runs on the loop thread, must not block. */
    using Handler =
        std::function<void(const HttpRequest &, Responder)>;

    static constexpr std::size_t kMaxConnections = 4096;

    explicit HttpServer(Handler handler);
    ~HttpServer();

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /**
     * Bind 127.0.0.1:@p port (0 = ephemeral), listen, and start the
     * loop thread. Throws std::runtime_error on bind failure.
     */
    void start(std::uint16_t port);

    /** Stop the loop and close every connection. Idempotent. */
    void stop();

    /** The bound port (valid after start()). */
    std::uint16_t port() const { return port_; }

    /** Connections currently open (diagnostics). */
    std::size_t connectionCount() const { return connCount_.load(); }

  private:
    struct Connection
    {
        int fd = -1;
        std::uint64_t gen = 0;
        HttpRequestParser parser;
        std::string out;       // unsent response bytes
        bool awaiting = false; // handler owes a response
        bool closeAfterWrite = false;
        bool errorSent = false; // parse-failure 4xx already queued
    };

    struct Completion
    {
        int fd;
        std::uint64_t gen;
        HttpResponse response;
    };

    void loop();
    void acceptReady();
    void readReady(Connection &conn);
    void flush(Connection &conn);
    void closeConn(int fd);
    void drainCompletions();
    void updateEpoll(Connection &conn);
    void wake();

    Handler handler_;
    int listenFd_ = -1;
    int epollFd_ = -1;
    // Owned by the loop thread for reads/wakes; stop() closes it
    // under completionMutex_ (after the join) so a late Responder
    // sees -1 and drops its response instead of touching a closed,
    // possibly reused descriptor. Not GUARDED_BY: the loop thread
    // reads it lock-free, which is safe only because the close
    // happens after thread_.join().
    int wakeFd_ = -1;
    std::uint16_t port_ = 0;
    // Loop-thread-only state; no lock by design (single owner).
    std::uint64_t nextGen_ = 1;
    // ecdplint-cap(kMaxConnections): acceptReady() closes above cap
    std::map<int, Connection> conns_;
    std::atomic<std::size_t> connCount_{0};

    AnnotatedMutex completionMutex_;
    std::deque<Completion> completions_
        ECDP_GUARDED_BY(completionMutex_);

    std::atomic<bool> stopping_{false};
    bool started_ = false;

    // Last member: the loop thread touches everything above, so it
    // must be joined (and destroyed) first.
    std::thread thread_;
};

} // namespace server
} // namespace ecdp

#endif // ECDP_SERVER_HTTP_SERVER_HH
