/**
 * @file
 * The grid-cell wire format of ecdpd: one cell = one (workload,
 * configuration) simulation. Clients submit cells as JSON objects;
 * the daemon canonicalizes them (fixed key order, defaults omitted)
 * and content-addresses the result store by the 64-bit FNV-1a hash
 * of the canonical form, so any two textually different but
 * semantically identical submissions share one store entry and one
 * single-flight simulation.
 *
 * Execution is shared between the worker processes (`ecdpd
 * --worker`) and the in-process path the byte-identity tests diff
 * against: both call runCell()/cellStatsJson(), which route through
 * the same ExperimentContext machinery the bench binaries use — so
 * daemon results are byte-identical to ExperimentRunner results by
 * construction, and the integration test enforces it.
 */

#ifndef ECDP_SERVER_CELL_HH
#define ECDP_SERVER_CELL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace ecdp
{

class JsonValue;

namespace server
{

/** One grid cell. Optional knobs use the same sentinels as the
 *  ecdpsim flags they mirror (-1 / empty = keep the config's). */
struct CellSpec
{
    std::string bench;
    std::string config = "baseline";
    /** "ref" (default) or "train". */
    std::string input = "ref";
    std::vector<std::string> engines;
    std::string throttlePolicy;
    long rlSeed = -1;
    double tcov = -1.0;
    long interval = -1;
};

/**
 * Parse one cell object. Unknown members, wrong types and unknown
 * benchmark/config/input names all throw std::runtime_error with a
 * description — the daemon turns that into a 400, so a typoed field
 * can never silently select a default.
 */
CellSpec parseCellSpec(const JsonValue &v);

/** Canonical JSON: fixed key order, defaulted members omitted. */
std::string canonicalCellJson(const CellSpec &spec);

/** Content address: FNV-1a 64 over the canonical JSON. */
std::uint64_t cellKey(const CellSpec &spec);

/** Human-readable config label, matching ecdpsim's convention
 *  ("cdp+throttle[stream,cdp,isb]{tabular-rl}"). */
std::string cellLabel(const CellSpec &spec);

/** Build the SystemConfig the cell names (profiles hints through
 *  @p ctx when the config or engine stack needs them). */
SystemConfig makeCellConfig(const CellSpec &spec,
                            ExperimentContext &ctx);

/** Simulate the cell (ref inputs memoized through @p ctx like any
 *  bench run; train inputs simulate directly). */
RunStats runCell(const CellSpec &spec, ExperimentContext &ctx);

/**
 * The canonical result bytes of a cell: writeRunStatsJson with the
 * cell's label — exactly what `ecdpsim --json` prints, minus the
 * trailing newline. These are the bytes the store holds and the
 * byte-identity contract is stated over.
 */
std::string cellStatsJson(const CellSpec &spec,
                          const RunStats &stats);

} // namespace server
} // namespace ecdp

#endif // ECDP_SERVER_CELL_HH
