#include "server/daemon.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hh"
#include "stats/json.hh"

namespace ecdp
{
namespace server
{

namespace
{

HttpResponse
jsonResponse(int status, std::string body)
{
    HttpResponse response;
    response.status = status;
    response.contentType = "application/json";
    response.body = std::move(body);
    return response;
}

HttpResponse
errorResponse(int status, const std::string &message)
{
    return jsonResponse(status, "{\"error\":\"" +
                                    jsonEscape(message) + "\"}");
}

} // namespace

/** Every error response goes through here so requests.bad counts
 *  handler-level 400/404s, not just the router fallthrough. */
void
Daemon::respondError(HttpServer::Responder &respond, int status,
                     const std::string &message)
{
    badRequests_.fetch_add(1);
    respond(errorResponse(status, message));
}

namespace
{

std::string
keyHex(std::uint64_t key)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(key));
    return buf;
}

/** "gN" -> N's id string; also validates /v1/grids/<id> segments. */
bool
splitGridPath(const std::string &path, std::string &id,
              std::string &tail)
{
    const std::string prefix = "/v1/grids/";
    if (path.rfind(prefix, 0) != 0)
        return false;
    std::string rest = path.substr(prefix.size());
    std::size_t slash = rest.find('/');
    if (slash == std::string::npos) {
        id = rest;
        tail.clear();
    } else {
        id = rest.substr(0, slash);
        tail = rest.substr(slash + 1);
    }
    return !id.empty();
}

} // namespace

Daemon::Daemon(DaemonOptions opts)
    : opts_(std::move(opts)),
      server_([this](const HttpRequest &req,
                     HttpServer::Responder respond) {
          handle(req, std::move(respond));
      }),
      store_(opts_.storeDir, opts_.storeMemoryCap,
             opts_.storeDiskCap),
      pool_(opts_.workerArgv, opts_.workers)
{}

Daemon::~Daemon()
{
    stop();
}

void
Daemon::start()
{
    server_.start(opts_.port);
}

void
Daemon::stop()
{
    // Teardown order matters: first the server (no new requests;
    // late Responder calls are dropped), then the pool — joining it
    // fails every queued job, and those completion callbacks run
    // through store_ into onCellReady while mutex_/grids_ are still
    // fully alive — then any flight the pool somehow left behind.
    // After this, member destruction finds everything quiesced.
    server_.stop();
    pool_.stop();
    store_.failAllFlights("daemon shutting down");
    {
        MutexLock lock(shutdownMutex_);
        shutdownRequested_ = true;
    }
    shutdownCv_.notify_all();
}

void
Daemon::waitForShutdown()
{
    MutexLock lock(shutdownMutex_);
    shutdownCv_.wait(lock.native(), [&] {
        shutdownMutex_.assertHeld(); // the wait predicate runs locked
        return shutdownRequested_;
    });
}

void
Daemon::handle(const HttpRequest &req, HttpServer::Responder respond)
{
    requests_.fetch_add(1);
    const std::string path = req.path();
    try {
        if (req.method == "GET" && path == "/healthz") {
            respond(jsonResponse(200, "{\"ok\":true}"));
            return;
        }
        if (req.method == "GET" && path == "/metrics") {
            handleMetrics(respond);
            return;
        }
        if (req.method == "POST" && path == "/v1/grids") {
            handleSubmitGrid(req, respond);
            return;
        }
        if (req.method == "POST" && path == "/v1/shutdown") {
            respond(jsonResponse(200, "{\"ok\":true}"));
            {
                MutexLock lock(shutdownMutex_);
                shutdownRequested_ = true;
            }
            shutdownCv_.notify_all();
            return;
        }
        if (req.method == "GET" &&
            path.rfind("/v1/cells/", 0) == 0) {
            handleCellFetch(path.substr(10), respond);
            return;
        }
        std::string id, tail;
        if (req.method == "GET" && splitGridPath(path, id, tail)) {
            if (tail.empty()) {
                handleGridStatus(id, respond);
                return;
            }
            if (tail == "results") {
                handleGridResults(req, id, respond);
                return;
            }
        }
        respondError(respond, 404, "no such endpoint: " +
                                       req.method + " " + path);
    } catch (const std::exception &e) {
        respondError(respond, 400, e.what());
    }
}

void
Daemon::handleSubmitGrid(const HttpRequest &req,
                         HttpServer::Responder &respond)
{
    JsonValue body = parseJson(req.body);
    std::string client = "anonymous";
    if (const JsonValue *c = body.find("client"))
        client = c->asString();
    bool wait = false;
    if (const JsonValue *w = body.find("wait"))
        wait = w->asBool();
    const JsonValue *cellsJson = body.find("cells");
    if (!cellsJson || cellsJson->asArray().empty())
        throw std::runtime_error(
            "grid needs a non-empty \"cells\" array");

    // Parse every cell up front: a 400 must reject the whole grid
    // before any admission-state change.
    std::vector<CellSpec> specs;
    std::vector<std::uint64_t> keys;
    for (const JsonValue &c : cellsJson->asArray()) {
        specs.push_back(parseCellSpec(c));
        keys.push_back(cellKey(specs.back()));
    }
    const std::size_t n = specs.size();

    // Admission decisions are made under mutex_, but the rejection
    // response fires after it is released: respond() is a deferred
    // callback into the HTTP server, and callbacks never run under a
    // daemon lock (ecdplint: callback-under-lock).
    std::string gridId;
    std::string rejectWhy;
    {
        MutexLock lock(mutex_);
        const std::uint64_t inflightNow = inflight_.load();
        // Look up without inserting: a rejected submission must not
        // leave a zero-count quota entry behind.
        auto clientIt = clientInflight_.find(client);
        const std::size_t clientNow =
            clientIt == clientInflight_.end() ? 0
                                              : clientIt->second;
        if (inflightNow + n > opts_.admissionLimit) {
            admissionRejected_.fetch_add(1);
            rejectWhy = "admission queue full (" +
                        std::to_string(inflightNow) +
                        " in flight, " +
                        std::to_string(opts_.admissionLimit) +
                        " max)";
        } else if (opts_.perClientLimit != 0 &&
                   clientNow + n > opts_.perClientLimit) {
            quotaRejected_.fetch_add(1);
            rejectWhy = "client quota exceeded (" +
                        std::to_string(clientNow) + " in flight, " +
                        std::to_string(opts_.perClientLimit) +
                        " max for \"" + client + "\")";
        } else {
            // Check and admit in one critical section, so racing
            // submitters can never both squeeze past the limit.
            clientInflight_[client] = clientNow + n;
            const std::uint64_t inflightNew =
                inflight_.fetch_add(n) + n;
            std::uint64_t peak = inflightPeak_.load();
            while (inflightNew > peak &&
                   !inflightPeak_.compare_exchange_weak(
                       peak, inflightNew)) {
            }

            gridId = "g" + std::to_string(nextGridId_++);
            Grid &grid = grids_[gridId];
            grid.id = gridId;
            grid.client = client;
            grid.remaining = n;
            grid.submitted = Clock::now();
            grid.cells.resize(n);
            for (std::size_t i = 0; i < n; ++i) {
                grid.cells[i].spec = specs[i];
                grid.cells[i].key = keys[i];
            }
            if (wait)
                grid.waiters.push_back(respond);
            gridsSubmitted_.fetch_add(1);
            cellsSubmitted_.fetch_add(n);
        }
    }
    if (!rejectWhy.empty()) {
        respond(errorResponse(429, rejectWhy));
        return;
    }

    if (!wait) {
        respond(jsonResponse(
            202, "{\"grid\":\"" + gridId +
                     "\",\"cells\":" + std::to_string(n) + "}"));
    }

    // Outside the lock: fetchOrAttach fires hit callbacks
    // synchronously and onCellReady re-locks.
    for (std::size_t i = 0; i < n; ++i)
        launchCell(gridId, i, specs[i], keys[i]);
}

void
Daemon::launchCell(const std::string &gridId, std::size_t index,
                   const CellSpec &spec, std::uint64_t key)
{
    ResultStore::Role role = store_.fetchOrAttach(
        key, [this, gridId, index](ResultStore::Bytes bytes,
                                   const std::string &error) {
            onCellReady(gridId, index, bytes, error);
        });
    if (role != ResultStore::Role::Leader)
        return;
    pool_.submit(canonicalCellJson(spec),
                 [this, key](std::string output, std::string error) {
                     if (error.empty())
                         store_.complete(key, std::move(output));
                     else
                         store_.fail(key, error);
                 });
}

void
Daemon::onCellReady(const std::string &gridId, std::size_t index,
                    const ResultStore::Bytes &bytes,
                    const std::string &error)
{
    std::vector<HttpServer::Responder> waiters;
    std::string resultsJson;
    {
        MutexLock lock(mutex_);
        auto it = grids_.find(gridId);
        if (it == grids_.end())
            return;
        Grid &grid = it->second;
        Cell &cell = grid.cells[index];
        if (cell.state != Cell::State::Pending)
            return; // defensive: double completion
        if (bytes) {
            cell.state = Cell::State::Done;
            cellsCompleted_.fetch_add(1);
        } else {
            cell.state = Cell::State::Failed;
            cell.error = error;
            cellsFailed_.fetch_add(1);
        }
        --grid.remaining;
        inflight_.fetch_sub(1);
        auto client = clientInflight_.find(grid.client);
        if (client != clientInflight_.end()) {
            // Drop zero-count entries so one-shot client names don't
            // accumulate forever.
            if (client->second > 1)
                --client->second;
            else
                clientInflight_.erase(client);
        }

        const auto us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - grid.submitted)
                .count();
        const std::uint64_t latency =
            us < 0 ? 0 : static_cast<std::uint64_t>(us);
        latencyUsSum_.fetch_add(latency);
        latencyUsCount_.fetch_add(1);
        std::uint64_t prev = latencyUsMax_.load();
        while (latency > prev &&
               !latencyUsMax_.compare_exchange_weak(prev, latency)) {
        }

        if (grid.remaining == 0) {
            if (!grid.waiters.empty()) {
                waiters = std::move(grid.waiters);
                grid.waiters.clear();
                resultsJson = gridResultsJsonLocked(grid);
            }
            // Last: may erase grids_ entries (including this one's
            // siblings), so no grid references survive past it.
            noteGridCompletedLocked(gridId);
        }
    }
    for (HttpServer::Responder &respond : waiters)
        respond(jsonResponse(200, resultsJson));
}

void
Daemon::noteGridCompletedLocked(const std::string &gridId)
{
    if (opts_.completedGridCap == 0)
        return; // keep every grid forever
    completedGrids_.push_back(gridId);
    while (completedGrids_.size() > opts_.completedGridCap) {
        const std::string victim =
            std::move(completedGrids_.front());
        completedGrids_.pop_front();
        if (grids_.erase(victim) != 0)
            gridsEvicted_.fetch_add(1);
    }
}

std::string
Daemon::gridResultsJsonLocked(const Grid &grid)
{
    std::ostringstream os;
    os << "{\"grid\":\"" << grid.id << "\",\"cells\":[";
    for (std::size_t i = 0; i < grid.cells.size(); ++i) {
        const Cell &cell = grid.cells[i];
        os << (i ? "," : "") << "{\"key\":\"" << keyHex(cell.key)
           << "\"";
        switch (cell.state) {
          case Cell::State::Done:
            if (ResultStore::Bytes bytes = store_.lookup(cell.key))
                os << ",\"status\":\"done\",\"stats\":" << *bytes;
            else
                os << ",\"status\":\"done\",\"stats\":null";
            break;
          case Cell::State::Failed:
            os << ",\"status\":\"failed\",\"error\":\""
               << jsonEscape(cell.error) << "\"";
            break;
          case Cell::State::Pending:
            os << ",\"status\":\"pending\"";
            break;
        }
        os << "}";
    }
    os << "]}";
    return os.str();
}

std::string
Daemon::gridStatusJsonLocked(const Grid &grid) const
{
    std::size_t done = 0, failed = 0;
    for (const Cell &cell : grid.cells) {
        done += cell.state == Cell::State::Done;
        failed += cell.state == Cell::State::Failed;
    }
    std::ostringstream os;
    os << "{\"grid\":\"" << grid.id << "\",\"client\":\""
       << jsonEscape(grid.client)
       << "\",\"cells\":" << grid.cells.size() << ",\"done\":" << done
       << ",\"failed\":" << failed
       << ",\"pending\":" << grid.remaining << "}";
    return os.str();
}

void
Daemon::handleGridStatus(const std::string &id,
                         HttpServer::Responder &respond)
{
    // Render under the lock, respond after it: respond() is a
    // callback into the HTTP server and never runs under mutex_.
    std::string statusJson;
    {
        MutexLock lock(mutex_);
        auto it = grids_.find(id);
        if (it != grids_.end())
            statusJson = gridStatusJsonLocked(it->second);
    }
    if (statusJson.empty()) {
        respondError(respond, 404, "no such grid: " + id);
        return;
    }
    respond(jsonResponse(200, statusJson));
}

void
Daemon::handleGridResults(const HttpRequest &req,
                          const std::string &id,
                          HttpServer::Responder &respond)
{
    // Decide (and, for ?wait=1, park the responder) under the lock;
    // every actual respond() call fires after it is released.
    enum class Outcome
    {
        NotFound,
        Done,
        Parked,
        Pending,
    };
    Outcome outcome = Outcome::NotFound;
    std::string resultsJson;
    std::size_t remaining = 0;
    {
        MutexLock lock(mutex_);
        auto it = grids_.find(id);
        if (it != grids_.end()) {
            Grid &grid = it->second;
            if (grid.remaining == 0) {
                outcome = Outcome::Done;
                resultsJson = gridResultsJsonLocked(grid);
            } else if (req.queryParam("wait") == "1") {
                outcome = Outcome::Parked;
                grid.waiters.push_back(respond);
            } else {
                outcome = Outcome::Pending;
                remaining = grid.remaining;
            }
        }
    }
    switch (outcome) {
      case Outcome::NotFound:
        respondError(respond, 404, "no such grid: " + id);
        return;
      case Outcome::Done:
        respond(jsonResponse(200, resultsJson));
        return;
      case Outcome::Parked:
        return; // the final cell completion answers it
      case Outcome::Pending:
        respond(jsonResponse(
            202, "{\"status\":\"pending\",\"remaining\":" +
                     std::to_string(remaining) + "}"));
        return;
    }
}

void
Daemon::handleCellFetch(const std::string &hexKey,
                        HttpServer::Responder &respond)
{
    if (hexKey.empty() || hexKey.size() > 16 ||
        hexKey.find_first_not_of("0123456789abcdefABCDEF") !=
            std::string::npos) {
        respondError(respond, 400, "bad cell key: " + hexKey);
        return;
    }
    const std::uint64_t key =
        std::strtoull(hexKey.c_str(), nullptr, 16);
    if (ResultStore::Bytes bytes = store_.lookup(key))
        respond(jsonResponse(200, *bytes));
    else
        respondError(respond, 404, "no result for key " + hexKey);
}

void
Daemon::exportMetrics(obs::MetricRegistry &registry) const
{
    registry.counter("ecdpd.requests.total").set(requests_.load());
    registry.counter("ecdpd.requests.bad").set(badRequests_.load());
    registry.counter("ecdpd.grids.submitted")
        .set(gridsSubmitted_.load());
    registry.counter("ecdpd.cells.submitted")
        .set(cellsSubmitted_.load());
    registry.counter("ecdpd.cells.completed")
        .set(cellsCompleted_.load());
    registry.counter("ecdpd.cells.failed").set(cellsFailed_.load());
    registry.counter("ecdpd.cells.inflight").set(inflight_.load());
    registry.counter("ecdpd.cells.inflight_peak")
        .set(inflightPeak_.load());
    registry.counter("ecdpd.admission.rejected")
        .set(admissionRejected_.load());
    registry.counter("ecdpd.quota.rejected")
        .set(quotaRejected_.load());
    registry.counter("ecdpd.grids.tracked").set(gridsTracked());
    registry.counter("ecdpd.grids.evicted")
        .set(gridsEvicted_.load());
    registry.counter("ecdpd.clients.tracked").set(clientsTracked());
    registry.counter("ecdpd.latency.us.sum")
        .set(latencyUsSum_.load());
    registry.counter("ecdpd.latency.us.count")
        .set(latencyUsCount_.load());
    registry.counter("ecdpd.latency.us.max")
        .set(latencyUsMax_.load());
    registry.counter("ecdpd.queue.depth").set(pool_.queued());
    registry.counter("ecdpd.connections.open")
        .set(server_.connectionCount());
    registry.counter("ecdpd.store.memory_hits")
        .set(store_.memoryHits());
    registry.counter("ecdpd.store.disk_hits").set(store_.diskHits());
    registry.counter("ecdpd.store.dedup_attached")
        .set(store_.dedupAttached());
    registry.counter("ecdpd.store.leaders").set(store_.leaders());
    registry.counter("ecdpd.store.corrupt_rebuilds")
        .set(store_.corruptRebuilds());
    registry.counter("ecdpd.store.entries").set(store_.size());
    registry.counter("ecdpd.store.evicted").set(store_.evicted());
    registry.counter("ecdpd.store.disk_evicted")
        .set(store_.diskEvicted());
    registry.counter("ecdpd.pool.shards").set(pool_.shards());
    registry.counter("ecdpd.pool.spawned").set(pool_.spawned());
    registry.counter("ecdpd.pool.crashed").set(pool_.crashed());
    registry.counter("ecdpd.pool.stolen").set(pool_.stolen());
}

void
Daemon::handleMetrics(HttpServer::Responder &respond)
{
    // Snapshot the atomics into a throwaway registry: obs counters
    // are unsynchronized by design, so the daemon never increments
    // them from its many threads — it only renders them here.
    obs::MetricRegistry registry;
    exportMetrics(registry);
    std::ostringstream os;
    os << "{";
    bool first = true;
    for (const auto &[path, value] : registry.sorted()) {
        os << (first ? "" : ",") << "\"" << jsonEscape(path)
           << "\":" << value;
        first = false;
    }
    os << "}";
    respond(jsonResponse(200, os.str()));
}

} // namespace server
} // namespace ecdp
