/**
 * @file
 * Work-stealing pool of worker *processes*. Each job is one
 * simulation: a cell-spec JSON document piped to the stdin of a
 * freshly spawned `ecdpd --worker` child, whose stdout is the stats
 * JSON. Crash isolation is the point — a simulation that segfaults
 * or aborts kills its child and surfaces as a failed job, never as a
 * dead daemon.
 *
 * Scheduling: jobs are submitted round-robin across per-shard
 * deques. A shard thread pops its own deque from the front (FIFO for
 * fairness) and, when empty, steals from the *back* of a sibling's
 * deque — the classic split that keeps owners and thieves off the
 * same end.
 */

#ifndef ECDP_SERVER_WORKER_POOL_HH
#define ECDP_SERVER_WORKER_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "memsim/thread_annotations.hh"

namespace ecdp
{
namespace server
{

// ecdplint: long-lived
class WorkerPool
{
  public:
    /**
     * Completion callback. On success @p output is the child's
     * stdout and @p error is empty; on failure @p error describes
     * what happened (nonzero exit, signal, exec failure) including a
     * tail of the child's stderr. Runs on a shard thread — keep it
     * cheap and never let it throw.
     */
    using Done =
        std::function<void(std::string output, std::string error)>;

    /**
     * @p workerArgv is the argv of one worker invocation (e.g.
     * {"/path/to/ecdpd", "--worker"}); @p shards is the number of
     * shard threads (>= 1), each running at most one child at a
     * time.
     */
    WorkerPool(std::vector<std::string> workerArgv, unsigned shards);

    /** Runs stop(). */
    ~WorkerPool();

    WorkerPool(const WorkerPool &) = delete;
    WorkerPool &operator=(const WorkerPool &) = delete;

    /**
     * Join every shard (waiting out jobs already running) and fail
     * every job still queued with "worker pool shut down".
     * Idempotent; lets an owner tear the pool down while state the
     * completion callbacks touch is still alive, instead of relying
     * on member-destruction order.
     */
    void stop() ECDP_EXCLUDES(mutex_);

    /** Enqueue @p input for some shard; @p done fires exactly once. */
    void submit(std::string input, Done done) ECDP_EXCLUDES(mutex_);

    unsigned shards() const { return unsigned(shards_.size()); }

    /** Children spawned (== jobs executed, one process per job). */
    std::uint64_t spawned() const { return spawned_.load(); }

    /** Jobs whose child died on a signal. */
    std::uint64_t crashed() const { return crashed_.load(); }

    /** Jobs a shard stole from a sibling's deque. */
    std::uint64_t stolen() const { return stolen_.load(); }

    /** Jobs queued but not yet picked up (the queue depth). */
    std::size_t queued() const;

  private:
    struct Job
    {
        std::string input;
        Done done;
    };

    void shardLoop(unsigned self);
    bool takeJob(unsigned self, Job &job) ECDP_EXCLUDES(mutex_);
    void runJob(const Job &job);

    // ecdplint-allow(unbounded-container): written once at construction
    std::vector<std::string> workerArgv_;

    mutable AnnotatedMutex mutex_;
    std::condition_variable cv_;
    std::vector<std::deque<Job>> queues_ ECDP_GUARDED_BY(mutex_);
    unsigned nextShard_ ECDP_GUARDED_BY(mutex_) = 0;
    bool stopping_ ECDP_GUARDED_BY(mutex_) = false;

    std::atomic<std::uint64_t> spawned_{0};
    std::atomic<std::uint64_t> crashed_{0};
    std::atomic<std::uint64_t> stolen_{0};

    // Last member: shard threads touch everything above, so they
    // must be joined (and destroyed) first.
    // ecdplint-allow(unbounded-container): written once at construction
    std::vector<std::thread> shards_;
};

} // namespace server
} // namespace ecdp

#endif // ECDP_SERVER_WORKER_POOL_HH
