#include "server/cell.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "prefetch/engine.hh"
#include "stats/json.hh"
#include "throttle/throttle_policy.hh"
#include "workloads/workload.hh"

namespace ecdp
{
namespace server
{

namespace
{

long
asLong(const JsonValue &v, const char *what)
{
    const std::string &text = v.numberText();
    if (text.find('.') != std::string::npos ||
        text.find('e') != std::string::npos ||
        text.find('E') != std::string::npos) {
        throw std::runtime_error(std::string(what) +
                                 " must be an integer");
    }
    return static_cast<long>(v.asI64());
}

} // namespace

CellSpec
parseCellSpec(const JsonValue &v)
{
    CellSpec spec;
    for (const auto &[key, value] : v.asObject()) {
        if (key == "bench") {
            spec.bench = value.asString();
        } else if (key == "config") {
            spec.config = value.asString();
        } else if (key == "input") {
            spec.input = value.asString();
        } else if (key == "engines") {
            for (const JsonValue &e : value.asArray())
                spec.engines.push_back(e.asString());
        } else if (key == "throttlePolicy") {
            spec.throttlePolicy = value.asString();
        } else if (key == "rlSeed") {
            spec.rlSeed = asLong(value, "rlSeed");
            if (spec.rlSeed < 0)
                throw std::runtime_error("rlSeed must be >= 0");
        } else if (key == "tcov") {
            spec.tcov = value.asDouble();
            if (spec.tcov < 0.0 || spec.tcov > 1.0)
                throw std::runtime_error("tcov must be in [0,1]");
        } else if (key == "interval") {
            spec.interval = asLong(value, "interval");
            if (spec.interval <= 0)
                throw std::runtime_error("interval must be > 0");
        } else {
            throw std::runtime_error("unknown cell member \"" + key +
                                     "\"");
        }
    }

    if (spec.bench.empty())
        throw std::runtime_error("cell needs a \"bench\" member");
    if (!findBenchmark(spec.bench))
        throw std::runtime_error("unknown benchmark '" + spec.bench +
                                 "'");
    if (spec.input != "ref" && spec.input != "train")
        throw std::runtime_error("input must be \"ref\" or \"train\"");
    // Validate names up front with the registries' diagnostics (they
    // list every known name) instead of failing mid-simulation in a
    // worker.
    configs::byName(spec.config, nullptr);
    for (const std::string &engine : spec.engines) {
        if (!EngineRegistry::instance().contains(engine))
            EngineRegistry::instance().create(engine,
                                              EngineContext{});
    }
    if (!spec.throttlePolicy.empty() &&
        !PolicyRegistry::instance().contains(spec.throttlePolicy)) {
        PolicyRegistry::instance().create(spec.throttlePolicy,
                                          PolicyContext{});
    }
    return spec;
}

std::string
canonicalCellJson(const CellSpec &spec)
{
    std::ostringstream os;
    os << "{\"bench\":\"" << jsonEscape(spec.bench) << "\"";
    os << ",\"config\":\"" << jsonEscape(spec.config) << "\"";
    if (spec.input != "ref")
        os << ",\"input\":\"" << jsonEscape(spec.input) << "\"";
    if (!spec.engines.empty()) {
        os << ",\"engines\":[";
        for (std::size_t i = 0; i < spec.engines.size(); ++i) {
            os << (i ? "," : "") << "\"" << jsonEscape(spec.engines[i])
               << "\"";
        }
        os << "]";
    }
    if (!spec.throttlePolicy.empty()) {
        os << ",\"throttlePolicy\":\""
           << jsonEscape(spec.throttlePolicy) << "\"";
    }
    if (spec.rlSeed >= 0)
        os << ",\"rlSeed\":" << spec.rlSeed;
    if (spec.tcov >= 0.0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", spec.tcov);
        os << ",\"tcov\":" << buf;
    }
    if (spec.interval > 0)
        os << ",\"interval\":" << spec.interval;
    os << "}";
    return os.str();
}

std::uint64_t
cellKey(const CellSpec &spec)
{
    const std::string canon = canonicalCellJson(spec);
    std::uint64_t hash = 1469598103934665603ull; // FNV offset basis
    for (unsigned char c : canon) {
        hash ^= c;
        hash *= 1099511628211ull; // FNV prime
    }
    return hash;
}

std::string
cellLabel(const CellSpec &spec)
{
    std::string label = spec.config;
    if (!spec.engines.empty()) {
        label += "[";
        for (std::size_t i = 0; i < spec.engines.size(); ++i)
            label += (i ? "," : "") + spec.engines[i];
        label += "]";
    }
    if (!spec.throttlePolicy.empty())
        label += "{" + spec.throttlePolicy + "}";
    return label;
}

SystemConfig
makeCellConfig(const CellSpec &spec, ExperimentContext &ctx)
{
    const HintTable *hints = nullptr;
    const bool needsHints =
        configs::nameNeedsHints(spec.config) ||
        std::find(spec.engines.begin(), spec.engines.end(),
                  "ecdp") != spec.engines.end();
    if (needsHints)
        hints = &ctx.hints(spec.bench);
    SystemConfig cfg = configs::byName(spec.config, hints);
    if (!spec.engines.empty())
        cfg.engines = spec.engines;
    if (!spec.throttlePolicy.empty())
        cfg.throttlePolicy = spec.throttlePolicy;
    if (spec.rlSeed >= 0)
        cfg.throttleRlSeed =
            static_cast<std::uint64_t>(spec.rlSeed);
    if (spec.tcov >= 0.0)
        cfg.coordThresholds.tCoverage = spec.tcov;
    if (spec.interval > 0)
        cfg.intervalEvictions =
            static_cast<std::uint64_t>(spec.interval);
    return cfg;
}

RunStats
runCell(const CellSpec &spec, ExperimentContext &ctx)
{
    SystemConfig cfg = makeCellConfig(spec, ctx);
    if (spec.input == "train") {
        // The memo context runs ref inputs; train cells simulate
        // directly (still deterministic, still byte-stable).
        return simulate(cfg,
                        buildWorkload(spec.bench, InputSet::Train));
    }
    // The diagnostic label carries the content key: two cells can
    // share a config name but differ in knobs (tcov, rlSeed, ...),
    // and the context rejects label reuse across different configs.
    char keyHex[20];
    std::snprintf(keyHex, sizeof(keyHex), "%016llx",
                  static_cast<unsigned long long>(cellKey(spec)));
    return ctx.run(spec.bench, cfg,
                   cellLabel(spec) + "#" + keyHex);
}

std::string
cellStatsJson(const CellSpec &spec, const RunStats &stats)
{
    std::ostringstream os;
    writeRunStatsJson(os, stats, cellLabel(spec));
    return os.str();
}

} // namespace server
} // namespace ecdp
