#include "server/http.hh"

#include <cctype>
#include <cstdlib>

namespace ecdp
{
namespace server
{

namespace
{

std::string
toLower(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return s;
}

/** Trim ASCII whitespace from both ends. */
std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

} // namespace

std::string
HttpRequest::path() const
{
    std::size_t q = target.find('?');
    return q == std::string::npos ? target : target.substr(0, q);
}

std::optional<std::string>
HttpRequest::queryParam(const std::string &name) const
{
    std::size_t q = target.find('?');
    if (q == std::string::npos)
        return std::nullopt;
    std::string query = target.substr(q + 1);
    std::size_t pos = 0;
    while (pos <= query.size()) {
        std::size_t amp = query.find('&', pos);
        std::string pair = query.substr(
            pos, amp == std::string::npos ? std::string::npos
                                          : amp - pos);
        std::size_t eq = pair.find('=');
        std::string key =
            eq == std::string::npos ? pair : pair.substr(0, eq);
        if (key == name) {
            return eq == std::string::npos ? std::string()
                                           : pair.substr(eq + 1);
        }
        if (amp == std::string::npos)
            break;
        pos = amp + 1;
    }
    return std::nullopt;
}

std::string
HttpRequest::header(const std::string &name) const
{
    auto it = headers.find(name);
    return it == headers.end() ? std::string() : it->second;
}

bool
HttpRequest::keepAlive() const
{
    return toLower(header("connection")) != "close";
}

const char *
httpStatusText(int status)
{
    switch (status) {
      case 200:
        return "OK";
      case 202:
        return "Accepted";
      case 400:
        return "Bad Request";
      case 404:
        return "Not Found";
      case 405:
        return "Method Not Allowed";
      case 409:
        return "Conflict";
      case 413:
        return "Payload Too Large";
      case 429:
        return "Too Many Requests";
      case 431:
        return "Request Header Fields Too Large";
      case 500:
        return "Internal Server Error";
      case 503:
        return "Service Unavailable";
      default:
        return "Unknown";
    }
}

std::string
serializeResponse(const HttpResponse &response)
{
    std::string out = "HTTP/1.1 " + std::to_string(response.status) +
                      " " + httpStatusText(response.status) + "\r\n";
    out += "Content-Type: " + response.contentType + "\r\n";
    out += "Content-Length: " +
           std::to_string(response.body.size()) + "\r\n";
    if (response.closeConnection)
        out += "Connection: close\r\n";
    out += "\r\n";
    out += response.body;
    return out;
}

void
HttpRequestParser::feed(const char *data, std::size_t len)
{
    if (failed())
        return;
    if (buffer_.size() + len > kMaxBufferBytes) {
        // A peer streaming bytes faster than requests complete (or
        // never completing one) must not balloon the buffer. The
        // failure is terminal, so drop what was buffered too.
        fail(413);
        buffer_.clear();
        buffer_.shrink_to_fit();
        return;
    }
    buffer_.append(data, len);
}

std::optional<HttpRequest>
HttpRequestParser::next()
{
    if (failed())
        return std::nullopt;
    std::size_t headEnd = buffer_.find("\r\n\r\n");
    if (headEnd == std::string::npos) {
        if (buffer_.size() > kMaxHeadBytes)
            fail(431);
        return std::nullopt;
    }
    if (headEnd > kMaxHeadBytes) {
        fail(431);
        return std::nullopt;
    }

    HttpRequest req;
    std::size_t lineStart = 0;
    std::size_t lineEnd = buffer_.find("\r\n", lineStart);
    {
        std::string line = buffer_.substr(lineStart, lineEnd);
        std::size_t sp1 = line.find(' ');
        std::size_t sp2 =
            sp1 == std::string::npos ? sp1 : line.find(' ', sp1 + 1);
        if (sp2 == std::string::npos ||
            line.compare(sp2 + 1, std::string::npos, "HTTP/1.1") !=
                0) {
            fail(400);
            return std::nullopt;
        }
        req.method = line.substr(0, sp1);
        req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
        if (req.method.empty() || req.target.empty() ||
            req.target[0] != '/') {
            fail(400);
            return std::nullopt;
        }
    }
    lineStart = lineEnd + 2;
    while (lineStart < headEnd) {
        lineEnd = buffer_.find("\r\n", lineStart);
        std::string line =
            buffer_.substr(lineStart, lineEnd - lineStart);
        lineStart = lineEnd + 2;
        std::size_t colon = line.find(':');
        if (colon == std::string::npos) {
            fail(400);
            return std::nullopt;
        }
        req.headers[toLower(trim(line.substr(0, colon)))] =
            trim(line.substr(colon + 1));
    }

    std::size_t bodyLen = 0;
    auto it = req.headers.find("content-length");
    if (it != req.headers.end()) {
        char *end = nullptr;
        unsigned long long v =
            std::strtoull(it->second.c_str(), &end, 10);
        if (end == it->second.c_str() || *end != '\0') {
            fail(400);
            return std::nullopt;
        }
        if (v > kMaxBodyBytes) {
            fail(413);
            return std::nullopt;
        }
        bodyLen = static_cast<std::size_t>(v);
    }

    std::size_t total = headEnd + 4 + bodyLen;
    if (buffer_.size() < total)
        return std::nullopt; // body still in flight
    req.body = buffer_.substr(headEnd + 4, bodyLen);
    buffer_.erase(0, total);
    return req;
}

} // namespace server
} // namespace ecdp
