/**
 * @file
 * Tiny blocking HTTP/1.1 client for talking to a local ecdpd —
 * shared by tools/ecdp-client, bench/serverbench and the server
 * integration tests. One connection per object, keep-alive reused
 * across requests.
 */

#ifndef ECDP_SERVER_HTTP_CLIENT_HH
#define ECDP_SERVER_HTTP_CLIENT_HH

#include <cstdint>
#include <string>

#include "server/http.hh"

namespace ecdp
{
namespace server
{

class HttpClient
{
  public:
    /** Connects to 127.0.0.1:@p port. Throws on refusal. */
    explicit HttpClient(std::uint16_t port);
    ~HttpClient();

    HttpClient(const HttpClient &) = delete;
    HttpClient &operator=(const HttpClient &) = delete;

    /**
     * Send one request and block for the response. Throws
     * std::runtime_error on transport failure (connection reset,
     * malformed response).
     */
    HttpResponse get(const std::string &target);
    HttpResponse post(const std::string &target,
                      const std::string &body);

  private:
    HttpResponse roundTrip(const std::string &method,
                           const std::string &target,
                           const std::string &body);

    int fd_ = -1;
    std::uint16_t port_ = 0;
    std::string pending_; // bytes read past the previous response
};

} // namespace server
} // namespace ecdp

#endif // ECDP_SERVER_HTTP_CLIENT_HH
