#include "server/http_client.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace ecdp
{
namespace server
{

namespace
{

int
connectLoopback(std::uint16_t port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw std::runtime_error("socket: " +
                                 std::string(std::strerror(errno)));
    sockaddr_in sin{};
    sin.sin_family = AF_INET;
    sin.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    sin.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&sin),
                  sizeof(sin)) != 0) {
        std::string why = std::strerror(errno);
        ::close(fd);
        throw std::runtime_error("connect 127.0.0.1:" +
                                 std::to_string(port) + ": " + why);
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
}

void
writeAllFd(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::send(fd, data.data() + off,
                           data.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw std::runtime_error(
                "write: " + std::string(std::strerror(errno)));
        }
        off += static_cast<std::size_t>(n);
    }
}

} // namespace

HttpClient::HttpClient(std::uint16_t port)
    : fd_(connectLoopback(port)), port_(port)
{}

HttpClient::~HttpClient()
{
    if (fd_ >= 0)
        ::close(fd_);
}

HttpResponse
HttpClient::get(const std::string &target)
{
    return roundTrip("GET", target, "");
}

HttpResponse
HttpClient::post(const std::string &target, const std::string &body)
{
    return roundTrip("POST", target, body);
}

HttpResponse
HttpClient::roundTrip(const std::string &method,
                      const std::string &target,
                      const std::string &body)
{
    std::string req = method + " " + target + " HTTP/1.1\r\n" +
                      "Host: 127.0.0.1\r\n";
    if (!body.empty() || method == "POST") {
        req += "Content-Type: application/json\r\n";
        req +=
            "Content-Length: " + std::to_string(body.size()) + "\r\n";
    }
    req += "\r\n" + body;
    writeAllFd(fd_, req);

    std::string &buf = pending_;
    auto readMore = [&] {
        char chunk[16 * 1024];
        ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n < 0 && errno == EINTR)
            return true;
        if (n <= 0)
            throw std::runtime_error("server closed connection");
        buf.append(chunk, static_cast<std::size_t>(n));
        return true;
    };

    std::size_t headEnd;
    while ((headEnd = buf.find("\r\n\r\n")) == std::string::npos)
        readMore();

    std::string head = buf.substr(0, headEnd);
    HttpResponse resp;
    {
        std::size_t sp = head.find(' ');
        if (head.compare(0, 8, "HTTP/1.1") != 0 ||
            sp == std::string::npos) {
            throw std::runtime_error("malformed response");
        }
        resp.status = std::atoi(head.c_str() + sp + 1);
    }
    std::size_t contentLength = 0;
    std::size_t pos = head.find("\r\n");
    while (pos != std::string::npos && pos + 2 < head.size()) {
        std::size_t end = head.find("\r\n", pos + 2);
        std::string line = head.substr(
            pos + 2,
            (end == std::string::npos ? head.size() : end) - pos - 2);
        std::size_t colon = line.find(':');
        if (colon != std::string::npos) {
            std::string name = line.substr(0, colon);
            for (char &c : name)
                c = static_cast<char>(
                    std::tolower(static_cast<unsigned char>(c)));
            if (name == "content-length") {
                contentLength = static_cast<std::size_t>(
                    std::strtoull(line.c_str() + colon + 1, nullptr,
                                  10));
            } else if (name == "connection" &&
                       line.find("close", colon) !=
                           std::string::npos) {
                resp.closeConnection = true;
            }
        }
        pos = end;
    }

    while (buf.size() < headEnd + 4 + contentLength)
        readMore();
    resp.body = buf.substr(headEnd + 4, contentLength);
    buf.erase(0, headEnd + 4 + contentLength);

    if (resp.closeConnection) {
        ::close(fd_);
        fd_ = connectLoopback(port_);
        pending_.clear();
    }
    return resp;
}

} // namespace server
} // namespace ecdp
