/**
 * @file
 * Minimal embedded HTTP/1.1 message layer for the ecdpd daemon — no
 * external dependencies. One incremental request parser per
 * connection (bytes in, complete requests out) and a response
 * serializer. Only what the daemon's JSON API needs is implemented:
 * GET/POST, Content-Length bodies, keep-alive, and hard limits on
 * header/body size so a hostile peer cannot balloon the daemon.
 */

#ifndef ECDP_SERVER_HTTP_HH
#define ECDP_SERVER_HTTP_HH

#include <cstddef>
#include <map>
#include <optional>
#include <string>

namespace ecdp
{
namespace server
{

/** One parsed request. Header names are lower-cased on parse. */
struct HttpRequest
{
    std::string method;
    /** Path only (no scheme/host); the query string stays attached
     *  and is split on demand via queryParam(). */
    std::string target;
    std::map<std::string, std::string> headers;
    std::string body;

    /** Path without the query string. */
    std::string path() const;

    /** Value of ?name=... in the target, or nullopt. */
    std::optional<std::string> queryParam(
        const std::string &name) const;

    /** Header value (name given lower-case), or empty string. */
    std::string header(const std::string &name) const;

    /** True unless the peer sent "Connection: close". */
    bool keepAlive() const;
};

struct HttpResponse
{
    int status = 200;
    std::string contentType = "application/json";
    std::string body;
    bool closeConnection = false;
};

/** Standard reason phrase for @p status ("OK", "Too Many Requests"). */
const char *httpStatusText(int status);

/** Serialize @p response as an HTTP/1.1 message with Content-Length. */
std::string serializeResponse(const HttpResponse &response);

/**
 * Incremental request parser. Feed raw bytes as they arrive; when a
 * full request (head + Content-Length body) has accumulated, next()
 * yields it and consumes its bytes, leaving any pipelined remainder
 * buffered. A malformed or oversized request puts the parser in a
 * terminal error state — the connection should answer with
 * errorStatus() and close.
 */
class HttpRequestParser
{
  public:
    /** @{ Hard limits; a peer exceeding them gets 431/413. */
    static constexpr std::size_t kMaxHeadBytes = 64 * 1024;
    static constexpr std::size_t kMaxBodyBytes = 16 * 1024 * 1024;
    /** Cap on bytes buffered across feed() calls — one maximal
     *  request plus headroom for a pipelined follow-up head. A feed
     *  that would exceed it fails the parser with 413 instead of
     *  growing without bound. */
    static constexpr std::size_t kMaxBufferBytes =
        kMaxBodyBytes + 2 * kMaxHeadBytes;
    /** @} */

    void feed(const char *data, std::size_t len);

    /** The next complete request, if one is buffered. */
    std::optional<HttpRequest> next();

    bool failed() const { return errorStatus_ != 0; }

    /** HTTP status describing the parse failure (400/413/431). */
    int errorStatus() const { return errorStatus_; }

    /** Bytes buffered but not yet consumed (diagnostics). */
    std::size_t buffered() const { return buffer_.size(); }

  private:
    void fail(int status) { errorStatus_ = status; }

    std::string buffer_;
    int errorStatus_ = 0;
};

} // namespace server
} // namespace ecdp

#endif // ECDP_SERVER_HTTP_HH
