/**
 * @file
 * Fixed-size worker pool for the experiment runner. Deliberately
 * minimal: FIFO job queue, a wait() barrier, and join-on-destruction.
 * Jobs are opaque void() callables; result plumbing and ordering live
 * in ExperimentRunner, which stores into pre-allocated slots.
 */

#ifndef ECDP_RUNNER_THREAD_POOL_HH
#define ECDP_RUNNER_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "memsim/thread_annotations.hh"

namespace ecdp
{
namespace runner
{

/**
 * Worker-thread count to use: the ECDP_JOBS environment variable when
 * set to a positive integer, otherwise std::thread::hardware_concurrency
 * (minimum 1).
 */
unsigned jobCountFromEnv();

class ThreadPool
{
  public:
    /** @param threads Worker count; 0 means jobCountFromEnv(). */
    explicit ThreadPool(unsigned threads = 0);

    /** Waits for queued jobs, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    void submit(std::function<void()> job) ECDP_EXCLUDES(mutex_);

    /**
     * Block until every submitted job has finished. A job that threw
     * does NOT kill its worker thread: the first escaped exception
     * is captured and rethrown here (then cleared, so the pool stays
     * usable); later ones are dropped.
     */
    void wait() ECDP_EXCLUDES(mutex_);

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

  private:
    void workerLoop();
    /** wait() without the rethrow, for the destructor. */
    void waitIdle() ECDP_EXCLUDES(mutex_);

    AnnotatedMutex mutex_;
    std::condition_variable workReady_;
    std::condition_variable allIdle_;
    std::deque<std::function<void()>> queue_ ECDP_GUARDED_BY(mutex_);
    unsigned pending_ ECDP_GUARDED_BY(mutex_) = 0; // queued + running
    bool stopping_ ECDP_GUARDED_BY(mutex_) = false;
    std::exception_ptr firstError_ ECDP_GUARDED_BY(mutex_);

    // Last member: workers touch everything above, so they must be
    // joined (and destroyed) first.
    std::vector<std::thread> workers_;
};

} // namespace runner
} // namespace ecdp

#endif // ECDP_RUNNER_THREAD_POOL_HH
