/**
 * @file
 * Parallel experiment runner.
 *
 * Bench binaries submit their whole (workload x configuration) grid
 * up front; a fixed-size worker pool executes the independent
 * simulate() calls concurrently (each simulation owns its cloned
 * SimMemory image, so runs are embarrassingly parallel) and results
 * land in the shared ExperimentContext's memo tables. Results are
 * also returned in deterministic submission order, so table output
 * generated from them is bit-for-bit identical to a serial run —
 * ECDP_JOBS=1 and ECDP_JOBS=N produce the same stdout.
 *
 * Worker count: the ECDP_JOBS environment variable, defaulting to
 * the hardware thread count. Per-job progress/timing lines go to
 * stderr (never stdout, which carries the tables).
 */

#ifndef ECDP_RUNNER_RUNNER_HH
#define ECDP_RUNNER_RUNNER_HH

#include <deque>
#include <functional>
#include <future>
#include <iosfwd>
#include <string>

#include "memsim/thread_annotations.hh"
#include "runner/thread_pool.hh"
#include "sim/experiment.hh"

namespace ecdp
{
namespace runner
{

/** One completed grid cell, in submission order. */
struct JobResult
{
    std::string name;
    std::string key;
    /** Memoized stats, owned by the ExperimentContext; nullptr only
     *  when the job failed (see JobResult::error). */
    const RunStats *stats = nullptr;
    double wallMs = 0.0;
    /** Failure description; empty on success. */
    std::string error;
};

class ExperimentRunner
{
  public:
    /** Builds the SystemConfig for one (benchmark) job; runs on a
     *  worker thread, so hint profiling parallelizes too. */
    using ConfigFn = std::function<SystemConfig(ExperimentContext &,
                                                const std::string &)>;

    /**
     * @param ctx Shared context; must outlive the runner.
     * @param jobs Worker threads; 0 means ECDP_JOBS / hardware.
     */
    explicit ExperimentRunner(ExperimentContext &ctx,
                              unsigned jobs = 0);

    /** Waits for outstanding jobs. */
    ~ExperimentRunner();

    /** Progress sink (default stderr); nullptr silences progress. */
    void setProgressStream(std::ostream *os) ECDP_EXCLUDES(mutex_);

    /**
     * Queue one simulation; returns immediately with a future for
     * THIS job: it resolves to the memoized stats on success and
     * carries the worker's original exception (not a flattened
     * string) on failure. Callers that only care about the whole
     * grid can ignore it and use wait().
     */
    std::shared_future<const RunStats *>
    submit(std::string name, std::string key, ConfigFn make)
        ECDP_EXCLUDES(mutex_);

    /**
     * Block until every submitted job finished; results are in
     * submission order. Throws std::runtime_error describing the
     * first failed job, if any.
     */
    const std::deque<JobResult> &wait() ECDP_EXCLUDES(mutex_);

    unsigned threadCount() const { return pool_.threadCount(); }

  private:
    void runJob(JobResult *slot, const ConfigFn &make,
                std::promise<const RunStats *> &promise);

    ExperimentContext &ctx_;

    AnnotatedMutex mutex_;
    std::deque<JobResult> results_ ECDP_GUARDED_BY(mutex_);
    unsigned submitted_ ECDP_GUARDED_BY(mutex_) = 0;
    unsigned completed_ ECDP_GUARDED_BY(mutex_) = 0;
    std::ostream *progress_ ECDP_GUARDED_BY(mutex_);

    // Last member: worker threads store into results_ and bump the
    // counters above, so the pool must be joined (and destroyed)
    // before any of that state goes away.
    ThreadPool pool_;
};

} // namespace runner
} // namespace ecdp

#endif // ECDP_RUNNER_RUNNER_HH
