#include "runner/result_cache.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <limits>
#include <sstream>
#include <thread>

#include "stats/json.hh"

namespace ecdp
{
namespace runner
{

namespace
{

std::string
hashHex(std::uint64_t hash)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

/** Keep workload names filesystem-safe (they are alnum today). */
std::string
sanitize(const std::string &name)
{
    std::string out = name;
    for (char &c : out) {
        if (!std::isalnum(static_cast<unsigned char>(c)) &&
            c != '-' && c != '_' && c != '.') {
            c = '_';
        }
    }
    return out;
}

void
writeDouble(std::ostream &os, double v)
{
    std::ostringstream ss;
    ss.precision(std::numeric_limits<double>::max_digits10);
    ss << v;
    os << ss.str();
}

} // namespace

std::unique_ptr<ResultCache>
ResultCache::fromEnv()
{
    const char *dir = std::getenv("ECDP_RESULT_CACHE");
    if (!dir || !*dir)
        return nullptr;
    return std::make_unique<ResultCache>(dir);
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {}

std::string
ResultCache::entryPath(const std::string &name,
                       std::uint64_t hash) const
{
    return dir_ + "/" + sanitize(name) + "-" + hashHex(hash) +
           ".json";
}

std::optional<RunStats>
ResultCache::load(const std::string &name, std::uint64_t hash) const
{
    const std::string path = entryPath(name, hash);
    std::ifstream in(path);
    if (!in)
        return std::nullopt; // plain miss
    std::ostringstream buf;
    buf << in.rdbuf();
    in.close();

    // A truncated or corrupt entry (killed process, full disk,
    // botched copy) must never poison the cache: warn, drop the
    // file and report a miss so the result is rebuilt cleanly.
    auto corrupt = [&](const std::string &why) {
        std::cerr << "ecdp: result cache: corrupt entry " << path
                  << " (" << why << "); removing and rebuilding\n";
        std::error_code ec;
        std::filesystem::remove(path, ec);
        return std::nullopt;
    };

    std::optional<JsonValue> parsed = tryParseJson(buf.str());
    if (!parsed)
        return corrupt("unparsable JSON");
    try {
        const JsonValue &doc = *parsed;
        // A version mismatch is a stale format, not corruption:
        // stay silent and leave the file for whoever wrote it.
        if (doc.at("version").asI64() != kVersion)
            return std::nullopt;
        // The file name embeds workload and hash, so a disagreeing
        // stamp means the bytes are not what the name promises.
        if (doc.at("configHash").asString() != hashHex(hash))
            return corrupt("configHash stamp mismatch");
        if (doc.at("workload").asString() != name)
            return corrupt("workload stamp mismatch");

        RunStats stats;
        stats.workload = name;
        stats.cycles = Cycle{doc.at("cycles").asU64()};
        stats.instructions = doc.at("instructions").asU64();
        stats.ipc = doc.at("ipc").asDouble();
        stats.timedOut = doc.at("timedOut").asBool();
        stats.busTransactions = doc.at("busTransactions").asU64();
        stats.bpki = doc.at("bpki").asDouble();
        stats.demandLoads = doc.at("demandLoads").asU64();
        stats.l2DemandAccesses = doc.at("l2DemandAccesses").asU64();
        stats.l2DemandMisses = doc.at("l2DemandMisses").asU64();
        stats.l2LdsMisses = doc.at("l2LdsMisses").asU64();
        const JsonValue &issued = doc.at("prefIssued");
        const JsonValue &used = doc.at("prefUsed");
        const JsonValue &late = doc.at("prefLate");
        const JsonValue &dropped = doc.at("prefDropped");
        const JsonValue &lat_sum = doc.at("usefulLatencySum");
        const JsonValue &lat_count = doc.at("usefulLatencyCount");
        for (unsigned which = 0; which < 2; ++which) {
            stats.prefIssued[which] =
                issued.asArray().at(which).asU64();
            stats.prefUsed[which] = used.asArray().at(which).asU64();
            stats.prefLate[which] = late.asArray().at(which).asU64();
            stats.prefDropped[which] =
                dropped.asArray().at(which).asU64();
            stats.usefulLatencySum[which] =
                lat_sum.asArray().at(which).asU64();
            stats.usefulLatencyCount[which] =
                lat_count.asArray().at(which).asU64();
        }
        for (const JsonValue &pg : doc.at("pgStats").asArray()) {
            PgId id;
            id.loadPc = pg.at("pc").asU64();
            id.slot =
                static_cast<std::int16_t>(pg.at("slot").asI64());
            PgStats &entry = stats.pgStats[id];
            entry.issued = pg.at("issued").asU64();
            entry.used = pg.at("used").asU64();
        }
        stats.finalPrimaryLevel = static_cast<AggLevel>(
            doc.at("finalPrimaryLevel").asI64());
        stats.finalLdsLevel =
            static_cast<AggLevel>(doc.at("finalLdsLevel").asI64());
        stats.finalPrimaryEnabled =
            doc.at("finalPrimaryEnabled").asBool();
        stats.finalLdsEnabled = doc.at("finalLdsEnabled").asBool();
        stats.intervals = doc.at("intervals").asU64();
        for (const JsonValue &item :
             doc.at("intervalSeries").asArray()) {
            IntervalSample sample;
            sample.cycle = Cycle{item.at("cycle").asU64()};
            for (unsigned which = 0; which < 2; ++which) {
                sample.accuracy[which] =
                    item.at("accuracy").asArray().at(which)
                        .asDouble();
                sample.coverage[which] =
                    item.at("coverage").asArray().at(which)
                        .asDouble();
            }
            sample.primaryLevel = static_cast<AggLevel>(
                item.at("primaryLevel").asI64());
            sample.ldsLevel =
                static_cast<AggLevel>(item.at("ldsLevel").asI64());
            sample.primaryEnabled =
                item.at("primaryEnabled").asBool();
            sample.ldsEnabled = item.at("ldsEnabled").asBool();
            for (const JsonValue &x : item.at("extra").asArray()) {
                EngineIntervalExtra extra;
                extra.accuracy = x.at("accuracy").asDouble();
                extra.coverage = x.at("coverage").asDouble();
                extra.level =
                    static_cast<AggLevel>(x.at("level").asI64());
                extra.enabled = x.at("enabled").asBool();
                sample.extra.push_back(extra);
            }
            // Optional (written only when non-empty): find(), not
            // at() — at() would turn every pre-policy cache entry
            // into a miss.
            if (const JsonValue *p = item.find("policy"))
                sample.policy = p->asString();
            stats.intervalSeries.push_back(sample);
        }
        for (const JsonValue &item : doc.at("engines").asArray()) {
            RunStats::EngineRunStats es;
            es.instance = item.at("instance").asString();
            es.engine = item.at("engine").asString();
            es.issued = item.at("issued").asU64();
            es.used = item.at("used").asU64();
            es.late = item.at("late").asU64();
            es.dropped = item.at("dropped").asU64();
            stats.engineStats.push_back(std::move(es));
        }
        // Optional policy fields (written only for stateful
        // policies): conditional access keeps pre-policy entries
        // loadable.
        if (const JsonValue *p = doc.find("throttlePolicy"))
            stats.throttlePolicy = p->asString();
        if (const JsonValue *p = doc.find("throttlePolicyState"))
            stats.throttlePolicyState = p->asString();
        return stats;
    } catch (const JsonError &e) {
        return corrupt(e.what());
    } catch (const std::out_of_range &e) {
        return corrupt(e.what());
    }
}

void
ResultCache::store(const std::string &name, std::uint64_t hash,
                   const RunStats &stats) const
{
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        return;

    const std::string path = entryPath(name, hash);
    std::ostringstream id;
    id << std::hash<std::thread::id>{}(std::this_thread::get_id());
    const std::string tmp = path + ".tmp." + id.str();
    {
        std::ofstream os(tmp);
        if (!os)
            return;
        os << "{\"version\":" << kVersion << ","
           << "\"configHash\":\"" << hashHex(hash) << "\","
           << "\"workload\":\"" << jsonEscape(name) << "\","
           << "\"cycles\":" << stats.cycles.raw() << ","
           << "\"instructions\":" << stats.instructions << ","
           << "\"ipc\":";
        writeDouble(os, stats.ipc);
        os << ",\"bpki\":";
        writeDouble(os, stats.bpki);
        os << ",\"timedOut\":" << (stats.timedOut ? "true" : "false")
           << ",\"busTransactions\":" << stats.busTransactions
           << ",\"demandLoads\":" << stats.demandLoads
           << ",\"l2DemandAccesses\":" << stats.l2DemandAccesses
           << ",\"l2DemandMisses\":" << stats.l2DemandMisses
           << ",\"l2LdsMisses\":" << stats.l2LdsMisses;
        auto array2 = [&os](const char *key,
                            const std::uint64_t (&v)[2]) {
            os << ",\"" << key << "\":[" << v[0] << "," << v[1]
               << "]";
        };
        array2("prefIssued", stats.prefIssued);
        array2("prefUsed", stats.prefUsed);
        array2("prefLate", stats.prefLate);
        array2("prefDropped", stats.prefDropped);
        array2("usefulLatencySum", stats.usefulLatencySum);
        array2("usefulLatencyCount", stats.usefulLatencyCount);
        os << ",\"pgStats\":[";
        bool first = true;
        for (const auto &[id_, pg] : stats.pgStats) {
            if (!first)
                os << ",";
            first = false;
            os << "{\"pc\":" << id_.loadPc.raw()
               << ",\"slot\":" << id_.slot
               << ",\"issued\":" << pg.issued
               << ",\"used\":" << pg.used << "}";
        }
        os << "]"
           << ",\"finalPrimaryLevel\":"
           << static_cast<int>(stats.finalPrimaryLevel)
           << ",\"finalLdsLevel\":"
           << static_cast<int>(stats.finalLdsLevel)
           << ",\"finalPrimaryEnabled\":"
           << (stats.finalPrimaryEnabled ? "true" : "false")
           << ",\"finalLdsEnabled\":"
           << (stats.finalLdsEnabled ? "true" : "false")
           << ",\"intervals\":" << stats.intervals
           << ",\"intervalSeries\":[";
        for (std::size_t i = 0; i < stats.intervalSeries.size();
             ++i) {
            const IntervalSample &s = stats.intervalSeries[i];
            os << (i ? "," : "") << "{\"cycle\":" << s.cycle.raw()
               << ",\"accuracy\":[";
            writeDouble(os, s.accuracy[0]);
            os << ",";
            writeDouble(os, s.accuracy[1]);
            os << "],\"coverage\":[";
            writeDouble(os, s.coverage[0]);
            os << ",";
            writeDouble(os, s.coverage[1]);
            os << "],\"primaryLevel\":"
               << static_cast<int>(s.primaryLevel)
               << ",\"ldsLevel\":" << static_cast<int>(s.ldsLevel)
               << ",\"primaryEnabled\":"
               << (s.primaryEnabled ? "true" : "false")
               << ",\"ldsEnabled\":"
               << (s.ldsEnabled ? "true" : "false")
               << ",\"extra\":[";
            for (std::size_t e = 0; e < s.extra.size(); ++e) {
                const EngineIntervalExtra &x = s.extra[e];
                os << (e ? "," : "") << "{\"accuracy\":";
                writeDouble(os, x.accuracy);
                os << ",\"coverage\":";
                writeDouble(os, x.coverage);
                os << ",\"level\":" << static_cast<int>(x.level)
                   << ",\"enabled\":"
                   << (x.enabled ? "true" : "false") << "}";
            }
            os << "]";
            // The raw policy blob round-trips as an escaped string
            // (the cache's JsonValue reader has no re-serializer).
            if (!s.policy.empty()) {
                os << ",\"policy\":\"" << jsonEscape(s.policy)
                   << "\"";
            }
            os << "}";
        }
        os << "],\"engines\":[";
        for (std::size_t i = 0; i < stats.engineStats.size(); ++i) {
            const RunStats::EngineRunStats &es = stats.engineStats[i];
            os << (i ? "," : "") << "{\"instance\":\""
               << jsonEscape(es.instance) << "\",\"engine\":\""
               << jsonEscape(es.engine) << "\",\"issued\":" << es.issued
               << ",\"used\":" << es.used << ",\"late\":" << es.late
               << ",\"dropped\":" << es.dropped << "}";
        }
        os << "]";
        if (!stats.throttlePolicyState.empty()) {
            os << ",\"throttlePolicy\":\""
               << jsonEscape(stats.throttlePolicy)
               << "\",\"throttlePolicyState\":\""
               << jsonEscape(stats.throttlePolicyState) << "\"";
        }
        os << "}\n";
        if (!os)
            return;
    }
    // Atomic publish so concurrent jobs / processes never observe a
    // half-written entry.
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        std::filesystem::remove(tmp, ec);
}

} // namespace runner
} // namespace ecdp
