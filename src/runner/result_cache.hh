/**
 * @file
 * Opt-in persistent cache of simulation results.
 *
 * When the ECDP_RESULT_CACHE environment variable names a directory,
 * ExperimentContext::run() stores every finished RunStats there as
 * one JSON file per (workload, configuration) pair, keyed by
 * configHash() over the actual SystemConfig fields — so re-running a
 * bench after an unrelated code change skips completed simulations,
 * and a changed configuration can never satisfy a lookup. Counters
 * are written verbatim and doubles with max_digits10 precision, so a
 * cache hit reproduces the original run bit-for-bit.
 *
 * File format: `<dir>/<workload>-<hash16>.json`, a single object with
 * a `version` field (bumped whenever RunStats changes shape; stale
 * versions read as misses).
 */

#ifndef ECDP_RUNNER_RESULT_CACHE_HH
#define ECDP_RUNNER_RESULT_CACHE_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "sim/config.hh"

namespace ecdp
{
namespace runner
{

class ResultCache
{
  public:
    /** Cache format version; readers reject anything else.
     *  v2 added the per-interval feedback series (intervalSeries);
     *  v3 added per-engine-slot totals (engineStats) and the extra
     *  interval slots of N-engine stacks. */
    static constexpr int kVersion = 3;

    /**
     * Cache configured by ECDP_RESULT_CACHE, or nullptr when the
     * variable is unset/empty (caching off, the default).
     */
    static std::unique_ptr<ResultCache> fromEnv();

    /** @param dir Cache directory; created on first store. */
    explicit ResultCache(std::string dir);

    /**
     * Cached stats for @p name under the config hashed to @p hash,
     * or nullopt on miss (absent, unreadable, stale version, or hash
     * mismatch — all treated identically).
     */
    std::optional<RunStats> load(const std::string &name,
                                 std::uint64_t hash) const;

    /** Persist @p stats; failures are silently ignored (the cache is
     *  an accelerator, never a correctness dependency). */
    void store(const std::string &name, std::uint64_t hash,
               const RunStats &stats) const;

    const std::string &directory() const { return dir_; }

    /** `<dir>/<workload>-<hash16>.json` (exposed for tests). */
    std::string entryPath(const std::string &name,
                          std::uint64_t hash) const;

  private:
    std::string dir_;
};

} // namespace runner
} // namespace ecdp

#endif // ECDP_RUNNER_RESULT_CACHE_HH
