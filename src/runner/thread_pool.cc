#include "runner/thread_pool.hh"

#include <cstdlib>
#include <string>
#include <utility>

namespace ecdp
{
namespace runner
{

unsigned
jobCountFromEnv()
{
    if (const char *env = std::getenv("ECDP_JOBS")) {
        char *end = nullptr;
        unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v >= 1 && v <= 1024)
            return static_cast<unsigned>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = jobCountFromEnv();
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    waitIdle(); // never throws: a pending job error dies with us
    {
        MutexLock lock(mutex_);
        stopping_ = true;
    }
    workReady_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        MutexLock lock(mutex_);
        queue_.push_back(std::move(job));
        ++pending_;
    }
    workReady_.notify_one();
}

void
ThreadPool::waitIdle()
{
    MutexLock lock(mutex_);
    allIdle_.wait(lock.native(), [this] {
        mutex_.assertHeld(); // the wait predicate runs locked
        return pending_ == 0;
    });
}

void
ThreadPool::wait()
{
    MutexLock lock(mutex_);
    allIdle_.wait(lock.native(), [this] {
        mutex_.assertHeld(); // the wait predicate runs locked
        return pending_ == 0;
    });
    if (firstError_) {
        std::exception_ptr error = std::exchange(firstError_, nullptr);
        lock.unlock();
        std::rethrow_exception(error);
    }
}

void
ThreadPool::workerLoop()
{
    MutexLock lock(mutex_);
    while (true) {
        workReady_.wait(lock.native(), [this] {
            mutex_.assertHeld(); // the wait predicate runs locked
            return stopping_ || !queue_.empty();
        });
        if (queue_.empty())
            return; // stopping_ and drained
        std::function<void()> job = std::move(queue_.front());
        queue_.pop_front();
        lock.unlock();
        // A throwing job must not take its worker thread (and with
        // it the whole process) down: capture the first exception
        // for wait() to rethrow on the submitting thread.
        std::exception_ptr error;
        try {
            job();
        } catch (...) {
            error = std::current_exception();
        }
        lock.lock();
        if (error && !firstError_)
            firstError_ = error;
        if (--pending_ == 0)
            allIdle_.notify_all();
    }
}

} // namespace runner
} // namespace ecdp
