#include "runner/runner.hh"

#include <chrono>
#include <exception>
#include <iostream>
#include <memory>
#include <stdexcept>

namespace ecdp
{
namespace runner
{

ExperimentRunner::ExperimentRunner(ExperimentContext &ctx,
                                   unsigned jobs)
    : ctx_(ctx), progress_(&std::cerr), pool_(jobs)
{}

ExperimentRunner::~ExperimentRunner()
{
    pool_.wait();
}

void
ExperimentRunner::setProgressStream(std::ostream *os)
{
    MutexLock lock(mutex_);
    progress_ = os;
}

std::shared_future<const RunStats *>
ExperimentRunner::submit(std::string name, std::string key,
                         ConfigFn make)
{
    JobResult *slot;
    {
        MutexLock lock(mutex_);
        // deque: pointers to existing slots stay valid while the
        // workers fill them and later submits grow the container.
        results_.push_back(
            JobResult{std::move(name), std::move(key), nullptr, 0.0,
                      ""});
        slot = &results_.back();
        ++submitted_;
    }
    auto promise =
        std::make_shared<std::promise<const RunStats *>>();
    std::shared_future<const RunStats *> future =
        promise->get_future().share();
    pool_.submit([this, slot, promise, make = std::move(make)] {
        runJob(slot, make, *promise);
    });
    return future;
}

void
ExperimentRunner::runJob(JobResult *slot, const ConfigFn &make,
                         std::promise<const RunStats *> &promise)
{
    using Clock = std::chrono::steady_clock;
    const Clock::time_point start = Clock::now();
    try {
        SystemConfig cfg = make(ctx_, slot->name);
        slot->stats = &ctx_.run(slot->name, cfg, slot->key);
        promise.set_value(slot->stats);
    } catch (const std::exception &e) {
        slot->error = e.what();
        // The future carries the ORIGINAL exception, not the
        // flattened string wait() reports.
        promise.set_exception(std::current_exception());
    } catch (...) {
        slot->error = "unknown error";
        promise.set_exception(std::current_exception());
    }
    slot->wallMs = std::chrono::duration<double, std::milli>(
                       Clock::now() - start)
                       .count();

    MutexLock lock(mutex_);
    ++completed_;
    if (!progress_)
        return;
    std::ostream &os = *progress_;
    os << "[" << completed_ << "/" << submitted_ << "] "
       << slot->name << "/" << slot->key;
    if (slot->stats) {
        os << " ipc=" << slot->stats->ipc;
        if (slot->stats->timedOut)
            os << " TIMEOUT";
    } else {
        os << " FAILED: " << slot->error;
    }
    os << " (" << slot->wallMs << " ms)" << std::endl;
}

const std::deque<JobResult> &
ExperimentRunner::wait()
{
    pool_.wait();
    // Every worker is idle now, but take the lock anyway: the scan
    // below reads guarded state, and "the pool is quiet" is a fact
    // the analysis (rightly) refuses to take on faith.
    MutexLock lock(mutex_);
    for (const JobResult &result : results_) {
        if (!result.error.empty()) {
            throw std::runtime_error("experiment job " + result.name +
                                     "/" + result.key + " failed: " +
                                     result.error);
        }
    }
    return results_;
}

} // namespace runner
} // namespace ecdp
