#include "runner/runner.hh"

#include <chrono>
#include <exception>
#include <iostream>
#include <stdexcept>

namespace ecdp
{
namespace runner
{

ExperimentRunner::ExperimentRunner(ExperimentContext &ctx,
                                   unsigned jobs)
    : ctx_(ctx), pool_(jobs), progress_(&std::cerr)
{}

ExperimentRunner::~ExperimentRunner()
{
    pool_.wait();
}

void
ExperimentRunner::setProgressStream(std::ostream *os)
{
    std::lock_guard<std::mutex> lock(mutex_);
    progress_ = os;
}

void
ExperimentRunner::submit(std::string name, std::string key,
                         ConfigFn make)
{
    JobResult *slot;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // deque: pointers to existing slots stay valid while the
        // workers fill them and later submits grow the container.
        results_.push_back(
            JobResult{std::move(name), std::move(key), nullptr, 0.0,
                      ""});
        slot = &results_.back();
        ++submitted_;
    }
    pool_.submit([this, slot, make = std::move(make)] {
        runJob(slot, make);
    });
}

void
ExperimentRunner::runJob(JobResult *slot, const ConfigFn &make)
{
    using Clock = std::chrono::steady_clock;
    const Clock::time_point start = Clock::now();
    try {
        SystemConfig cfg = make(ctx_, slot->name);
        slot->stats = &ctx_.run(slot->name, cfg, slot->key);
    } catch (const std::exception &e) {
        slot->error = e.what();
    } catch (...) {
        slot->error = "unknown error";
    }
    slot->wallMs = std::chrono::duration<double, std::milli>(
                       Clock::now() - start)
                       .count();

    std::lock_guard<std::mutex> lock(mutex_);
    ++completed_;
    if (!progress_)
        return;
    std::ostream &os = *progress_;
    os << "[" << completed_ << "/" << submitted_ << "] "
       << slot->name << "/" << slot->key;
    if (slot->stats) {
        os << " ipc=" << slot->stats->ipc;
        if (slot->stats->timedOut)
            os << " TIMEOUT";
    } else {
        os << " FAILED: " << slot->error;
    }
    os << " (" << slot->wallMs << " ms)" << std::endl;
}

const std::deque<JobResult> &
ExperimentRunner::wait()
{
    pool_.wait();
    for (const JobResult &result : results_) {
        if (!result.error.empty()) {
            throw std::runtime_error("experiment job " + result.name +
                                     "/" + result.key + " failed: " +
                                     result.error);
        }
    }
    return results_;
}

} // namespace runner
} // namespace ecdp
