#include "stats/stats.hh"

#include <cassert>
#include <cmath>

namespace ecdp
{

double
amean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
gmean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        assert(v > 0.0);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
hmean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double inv_sum = 0.0;
    for (double v : values) {
        assert(v > 0.0);
        inv_sum += 1.0 / v;
    }
    return static_cast<double>(values.size()) / inv_sum;
}

double
safeRatio(double numer, double denom)
{
    return denom == 0.0 ? 0.0 : numer / denom;
}

double
percentDelta(double value, double base)
{
    return base == 0.0 ? 0.0 : (value / base - 1.0) * 100.0;
}

} // namespace ecdp
