/**
 * @file
 * Aligned plain-text table printer used by the benchmark harnesses to
 * emit the rows of each paper table/figure.
 */

#ifndef ECDP_STATS_TABLE_HH
#define ECDP_STATS_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace ecdp
{

/**
 * Accumulates rows of string cells and prints them with columns padded
 * to the widest cell. Numeric convenience overloads format with a fixed
 * number of decimals.
 */
class TablePrinter
{
  public:
    /** @param title Caption printed above the table. */
    explicit TablePrinter(std::string title);

    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Start a new row. */
    TablePrinter &row();

    /** Append a string cell to the current row. */
    TablePrinter &cell(std::string text);

    /** Append a numeric cell with @p decimals fraction digits. */
    TablePrinter &cell(double value, int decimals = 2);

    /** Append an integer cell. */
    TablePrinter &cell(std::uint64_t value);

    /** Print the full table to @p os. */
    void print(std::ostream &os) const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace ecdp

#endif // ECDP_STATS_TABLE_HH
