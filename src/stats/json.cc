#include "stats/json.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace ecdp
{

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeRunStatsJson(std::ostream &os, const RunStats &stats,
                  const std::string &label)
{
    os << "{";
    os << "\"workload\":\"" << jsonEscape(stats.workload) << "\",";
    if (!label.empty())
        os << "\"config\":\"" << jsonEscape(label) << "\",";
    os << "\"cycles\":" << stats.cycles.raw() << ","
       << "\"instructions\":" << stats.instructions << ","
       << "\"ipc\":" << stats.ipc << ","
       << "\"bpki\":" << stats.bpki << ","
       << "\"timedOut\":" << (stats.timedOut ? "true" : "false") << ","
       << "\"busTransactions\":" << stats.busTransactions << ","
       << "\"l2DemandAccesses\":" << stats.l2DemandAccesses << ","
       << "\"l2DemandMisses\":" << stats.l2DemandMisses << ","
       << "\"l2LdsMisses\":" << stats.l2LdsMisses << ","
       << "\"intervals\":" << stats.intervals << ","
       << "\"intervalSeries\":[";
    for (std::size_t i = 0; i < stats.intervalSeries.size(); ++i) {
        const IntervalSample &s = stats.intervalSeries[i];
        os << (i ? "," : "") << "{\"cycle\":" << s.cycle.raw()
           << ",\"accuracy\":[" << s.accuracy[0] << ","
           << s.accuracy[1] << "],\"coverage\":[" << s.coverage[0]
           << "," << s.coverage[1] << "],\"primaryLevel\":"
           << static_cast<int>(s.primaryLevel)
           << ",\"ldsLevel\":" << static_cast<int>(s.ldsLevel)
           << ",\"primaryEnabled\":"
           << (s.primaryEnabled ? "true" : "false")
           << ",\"ldsEnabled\":"
           << (s.ldsEnabled ? "true" : "false");
        // Slots beyond the legacy pair. Omitted when empty so the
        // two-slot schema stays byte-identical to the pinned goldens.
        if (!s.extra.empty()) {
            os << ",\"extra\":[";
            for (std::size_t e = 0; e < s.extra.size(); ++e) {
                const EngineIntervalExtra &x = s.extra[e];
                os << (e ? "," : "") << "{\"accuracy\":" << x.accuracy
                   << ",\"coverage\":" << x.coverage
                   << ",\"level\":" << static_cast<int>(x.level)
                   << ",\"enabled\":" << (x.enabled ? "true" : "false")
                   << "}";
            }
            os << "]";
        }
        // Per-interval policy state (raw JSON blob). The built-in
        // rule policies emit none, so default-policy output — and
        // with it the pinned goldens — is byte-identical to the
        // pre-policy schema.
        if (!s.policy.empty())
            os << ",\"policy\":" << s.policy;
        os << "}";
    }
    os << "],"
       << "\"prefetchers\":{";
    const char *names[2] = {"primary", "lds"};
    for (unsigned which = 0; which < 2; ++which) {
        os << "\"" << names[which] << "\":{"
           << "\"issued\":" << stats.prefIssued[which] << ","
           << "\"used\":" << stats.prefUsed[which] << ","
           << "\"late\":" << stats.prefLate[which] << ","
           << "\"dropped\":" << stats.prefDropped[which] << ","
           << "\"accuracy\":" << stats.accuracy(which) << ","
           << "\"accuracyDemanded\":"
           << stats.accuracyDemanded(which) << ","
           << "\"coverage\":" << stats.coverage(which) << "}"
           << (which == 0 ? "," : "");
    }
    os << "},\"finalLevels\":{\"primary\":"
       << static_cast<int>(stats.finalPrimaryLevel)
       << ",\"lds\":" << static_cast<int>(stats.finalLdsLevel)
       << "}";
    // Per-slot engine totals. The legacy two-slot layout is fully
    // described by the "prefetchers" object above; only wider (or
    // narrower) stacks add the "engines" array, so two-slot output —
    // and with it the pinned goldens — is byte-identical to the
    // pre-registry schema.
    if (stats.engineStats.size() != 2) {
        os << ",\"engines\":[";
        for (std::size_t i = 0; i < stats.engineStats.size(); ++i) {
            const RunStats::EngineRunStats &es = stats.engineStats[i];
            os << (i ? "," : "") << "{\"instance\":\""
               << jsonEscape(es.instance) << "\",\"engine\":\""
               << jsonEscape(es.engine) << "\",\"issued\":" << es.issued
               << ",\"used\":" << es.used << ",\"late\":" << es.late
               << ",\"dropped\":" << es.dropped << "}";
        }
        os << "]";
    }
    // Throttle policy identification + final state, keyed on the
    // state blob: rule policies serialize nothing and stay invisible
    // here (goldens unchanged); stateful policies (tabular-rl) record
    // which policy/seed produced the run and what it learned.
    if (!stats.throttlePolicyState.empty()) {
        os << ",\"throttlePolicy\":\""
           << jsonEscape(stats.throttlePolicy)
           << "\",\"throttlePolicyState\":"
           << stats.throttlePolicyState;
    }
    os << "}";
}

// --- JsonValue -------------------------------------------------------

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        throw JsonError("JSON value is not a bool");
    return bool_;
}

double
JsonValue::asDouble() const
{
    if (kind_ != Kind::Number)
        throw JsonError("JSON value is not a number");
    return std::strtod(scalar_.c_str(), nullptr);
}

std::uint64_t
JsonValue::asU64() const
{
    if (kind_ != Kind::Number)
        throw JsonError("JSON value is not a number");
    return std::strtoull(scalar_.c_str(), nullptr, 10);
}

std::int64_t
JsonValue::asI64() const
{
    if (kind_ != Kind::Number)
        throw JsonError("JSON value is not a number");
    return std::strtoll(scalar_.c_str(), nullptr, 10);
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        throw JsonError("JSON value is not a string");
    return scalar_;
}

const std::vector<JsonValue> &
JsonValue::asArray() const
{
    if (kind_ != Kind::Array)
        throw JsonError("JSON value is not an array");
    return array_;
}

const std::map<std::string, JsonValue> &
JsonValue::asObject() const
{
    if (kind_ != Kind::Object)
        throw JsonError("JSON value is not an object");
    return object_;
}

const std::string &
JsonValue::numberText() const
{
    if (kind_ != Kind::Number)
        throw JsonError("JSON value is not a number");
    return scalar_;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    auto it = object_.find(key);
    return it == object_.end() ? nullptr : &it->second;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *v = find(key);
    if (!v)
        throw JsonError("missing JSON member \"" + key + "\"");
    return *v;
}

JsonValue
JsonValue::makeNull()
{
    return JsonValue();
}

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::makeNumber(std::string text)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.scalar_ = std::move(text);
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.scalar_ = std::move(s);
    return v;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> items)
{
    JsonValue v;
    v.kind_ = Kind::Array;
    v.array_ = std::move(items);
    return v;
}

JsonValue
JsonValue::makeObject(std::map<std::string, JsonValue> members)
{
    JsonValue v;
    v.kind_ = Kind::Object;
    v.object_ = std::move(members);
    return v;
}

// --- Parser ----------------------------------------------------------

namespace
{

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonValue parse()
    {
        JsonValue v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after JSON document");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string &what) const
    {
        throw JsonError(what + " at offset " + std::to_string(pos_));
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consumeWord(const char *word)
    {
        std::size_t len = std::string(word).size();
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    JsonValue value()
    {
        skipWs();
        switch (peek()) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return JsonValue::makeString(string());
          case 't':
            if (!consumeWord("true"))
                fail("bad literal");
            return JsonValue::makeBool(true);
          case 'f':
            if (!consumeWord("false"))
                fail("bad literal");
            return JsonValue::makeBool(false);
          case 'n':
            if (!consumeWord("null"))
                fail("bad literal");
            return JsonValue::makeNull();
          default:
            return number();
        }
    }

    JsonValue object()
    {
        expect('{');
        enterNested();
        std::map<std::string, JsonValue> members;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            --depth_;
            return JsonValue::makeObject(std::move(members));
        }
        while (true) {
            skipWs();
            std::string key = string();
            skipWs();
            expect(':');
            // emplace: on duplicate keys the FIRST wins, documented
            // and tested — attacker-supplied later duplicates can't
            // shadow already-validated members.
            members.emplace(std::move(key), value());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            --depth_;
            return JsonValue::makeObject(std::move(members));
        }
    }

    JsonValue array()
    {
        expect('[');
        enterNested();
        std::vector<JsonValue> items;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            --depth_;
            return JsonValue::makeArray(std::move(items));
        }
        while (true) {
            items.push_back(value());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            --depth_;
            return JsonValue::makeArray(std::move(items));
        }
    }

    /** The parser recurses per nesting level; a hostile "[[[[..."
     *  must fail as JsonError, not exhaust the stack (tryParseJson
     *  cannot catch a stack overflow). kMaxDepth is far beyond any
     *  document the stats writers produce. */
    void enterNested()
    {
        if (++depth_ > kMaxDepth)
            fail("JSON nesting deeper than " +
                 std::to_string(kMaxDepth) + " levels");
    }

    std::string string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("bad \\u escape");
                unsigned code = 0;
                for (unsigned i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                // The writers only emit \u00xx control escapes;
                // decode the Latin-1 range and pass anything wider
                // through as UTF-8.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    unsigned hi =
                        code >> 6; // simlint-allow(magic-block-shift): utf-8
                    out += static_cast<char>(0xc0 | hi);
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    unsigned mid =
                        code >> 6; // simlint-allow(magic-block-shift): utf-8
                    out += static_cast<char>(0x80 | (mid & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    JsonValue number()
    {
        std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        auto digits = [&]() {
            std::size_t before = pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_]))) {
                ++pos_;
            }
            if (pos_ == before)
                fail("malformed number");
        };
        digits();
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            digits();
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-')) {
                ++pos_;
            }
            digits();
        }
        return JsonValue::makeNumber(
            text_.substr(start, pos_ - start));
    }

    static constexpr int kMaxDepth = 192;

    const std::string &text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

JsonValue
parseJson(const std::string &text)
{
    return Parser(text).parse();
}

std::optional<JsonValue>
tryParseJson(const std::string &text)
{
    try {
        return parseJson(text);
    } catch (const JsonError &) {
        return std::nullopt;
    }
}

} // namespace ecdp
