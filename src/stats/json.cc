#include "stats/json.hh"

#include <ostream>

namespace ecdp
{

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeRunStatsJson(std::ostream &os, const RunStats &stats,
                  const std::string &label)
{
    os << "{";
    os << "\"workload\":\"" << jsonEscape(stats.workload) << "\",";
    if (!label.empty())
        os << "\"config\":\"" << jsonEscape(label) << "\",";
    os << "\"cycles\":" << stats.cycles << ","
       << "\"instructions\":" << stats.instructions << ","
       << "\"ipc\":" << stats.ipc << ","
       << "\"bpki\":" << stats.bpki << ","
       << "\"busTransactions\":" << stats.busTransactions << ","
       << "\"l2DemandAccesses\":" << stats.l2DemandAccesses << ","
       << "\"l2DemandMisses\":" << stats.l2DemandMisses << ","
       << "\"l2LdsMisses\":" << stats.l2LdsMisses << ","
       << "\"intervals\":" << stats.intervals << ","
       << "\"prefetchers\":{";
    const char *names[2] = {"primary", "lds"};
    for (unsigned which = 0; which < 2; ++which) {
        os << "\"" << names[which] << "\":{"
           << "\"issued\":" << stats.prefIssued[which] << ","
           << "\"used\":" << stats.prefUsed[which] << ","
           << "\"late\":" << stats.prefLate[which] << ","
           << "\"accuracy\":" << stats.accuracy(which) << ","
           << "\"accuracyDemanded\":"
           << stats.accuracyDemanded(which) << ","
           << "\"coverage\":" << stats.coverage(which) << "}"
           << (which == 0 ? "," : "");
    }
    os << "},\"finalLevels\":{\"primary\":"
       << static_cast<int>(stats.finalPrimaryLevel)
       << ",\"lds\":" << static_cast<int>(stats.finalLdsLevel)
       << "}}";
}

} // namespace ecdp
