/**
 * @file
 * Machine-readable export of run statistics. The bench binaries print
 * human tables; tooling (plotters, CI trend checks) consumes this
 * JSON instead.
 */

#ifndef ECDP_STATS_JSON_HH
#define ECDP_STATS_JSON_HH

#include <iosfwd>
#include <string>

#include "sim/config.hh"

namespace ecdp
{

/**
 * Write @p stats as a single JSON object to @p os.
 *
 * @param label Optional "config" field value (e.g. "baseline").
 */
void writeRunStatsJson(std::ostream &os, const RunStats &stats,
                       const std::string &label = "");

/** JSON string escaping (exposed for tests). */
std::string jsonEscape(const std::string &text);

} // namespace ecdp

#endif // ECDP_STATS_JSON_HH
