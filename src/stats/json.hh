/**
 * @file
 * Machine-readable export of run statistics. The bench binaries print
 * human tables; tooling (plotters, CI trend checks) consumes this
 * JSON instead. Also hosts a minimal JSON value model and parser so
 * the persistent result cache (src/runner) can read back what the
 * writers emit — no external JSON dependency.
 */

#ifndef ECDP_STATS_JSON_HH
#define ECDP_STATS_JSON_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/config.hh"

namespace ecdp
{

/**
 * Write @p stats as a single JSON object to @p os.
 *
 * @param label Optional "config" field value (e.g. "baseline").
 */
void writeRunStatsJson(std::ostream &os, const RunStats &stats,
                       const std::string &label = "");

/** JSON string escaping (exposed for tests). */
std::string jsonEscape(const std::string &text);

/**
 * A parsed JSON value. Numbers keep their source text so integer
 * counters round-trip exactly (no double rounding at 2^53).
 */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }

    /** @{ Typed readers; abort via exception on kind mismatch. */
    bool asBool() const;
    double asDouble() const;
    std::uint64_t asU64() const;
    std::int64_t asI64() const;
    const std::string &asString() const;
    const std::vector<JsonValue> &asArray() const;
    const std::map<std::string, JsonValue> &asObject() const;
    /** @} */

    /**
     * Source text of a Number, exactly as parsed. The golden-stats
     * tests compare this so a counter differing in the 17th digit
     * cannot hide behind double rounding.
     */
    const std::string &numberText() const;

    /** Object member, or nullptr when missing / not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Object member that must exist; throws JsonError otherwise. */
    const JsonValue &at(const std::string &key) const;

    /** @{ Construction (used by the parser and tests). */
    static JsonValue makeNull();
    static JsonValue makeBool(bool b);
    static JsonValue makeNumber(std::string text);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray(std::vector<JsonValue> items);
    static JsonValue makeObject(
        std::map<std::string, JsonValue> members);
    /** @} */

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    /** Source text of a Number, decoded text of a String. */
    std::string scalar_;
    std::vector<JsonValue> array_;
    std::map<std::string, JsonValue> object_;
};

/** Error thrown by the parser and the typed readers. */
class JsonError : public std::runtime_error
{
  public:
    explicit JsonError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Parse one JSON document. Throws JsonError on malformed input. */
JsonValue parseJson(const std::string &text);

/** Parse, returning nullopt instead of throwing. */
std::optional<JsonValue> tryParseJson(const std::string &text);

} // namespace ecdp

#endif // ECDP_STATS_JSON_HH
