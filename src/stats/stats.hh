/**
 * @file
 * Small statistics helpers shared by the simulator and the benchmark
 * harnesses: means used for speedup aggregation and a safe-ratio helper.
 */

#ifndef ECDP_STATS_STATS_HH
#define ECDP_STATS_STATS_HH

#include <cstdint>
#include <vector>

namespace ecdp
{

/** Arithmetic mean; 0 for an empty vector. */
double amean(const std::vector<double> &values);

/** Geometric mean; 0 for an empty vector. Values must be positive. */
double gmean(const std::vector<double> &values);

/** Harmonic mean; 0 for an empty vector. Values must be positive. */
double hmean(const std::vector<double> &values);

/** @return numer / denom, or 0 when denom is 0. */
double safeRatio(double numer, double denom);

/** Percent change from @p base to @p value ((value/base - 1) * 100). */
double percentDelta(double value, double base);

/**
 * Exponentially-aged counter used by the throttling feedback
 * (Equation 3 of the paper): at each interval boundary the running
 * value becomes half the old value plus half the in-interval value.
 */
class IntervalCounter
{
  public:
    /** Add to the current interval's count. */
    void add(std::uint64_t n = 1) { during_ += n; }

    /** Fold the interval in per Equation 3 and start a new interval. */
    void endInterval()
    {
        value_ = value_ / 2 + during_ / 2;
        lifetime_ += during_;
        during_ = 0;
    }

    /** The aged value used for decisions (excludes current interval). */
    std::uint64_t value() const { return value_; }

    /** Raw count inside the current interval. */
    std::uint64_t during() const { return during_; }

    /** Lifetime total across all intervals (for end-of-run stats). */
    std::uint64_t lifetime() const { return lifetime_ + during_; }

    void reset() { value_ = during_ = lifetime_ = 0; }

  private:
    std::uint64_t value_ = 0;
    std::uint64_t during_ = 0;
    std::uint64_t lifetime_ = 0;
};

} // namespace ecdp

#endif // ECDP_STATS_STATS_HH
