#include "stats/table.hh"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <utility>

namespace ecdp
{

TablePrinter::TablePrinter(std::string title)
    : title_(std::move(title))
{
}

void
TablePrinter::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

TablePrinter &
TablePrinter::row()
{
    rows_.emplace_back();
    return *this;
}

TablePrinter &
TablePrinter::cell(std::string text)
{
    rows_.back().push_back(std::move(text));
    return *this;
}

TablePrinter &
TablePrinter::cell(double value, int decimals)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(decimals) << value;
    return cell(oss.str());
}

TablePrinter &
TablePrinter::cell(std::uint64_t value)
{
    return cell(std::to_string(value));
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> widths;
    auto widen = [&widths](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    widen(header_);
    for (const auto &row : rows_)
        widen(row);

    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << (i == 0 ? "" : "  ")
               << std::left << std::setw(static_cast<int>(widths[i]))
               << cells[i];
        }
        os << '\n';
    };

    os << "== " << title_ << " ==\n";
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t i = 0; i < widths.size(); ++i)
            total += widths[i] + (i == 0 ? 0 : 2);
        os << std::string(total, '-') << '\n';
    }
    for (const auto &row : rows_)
        emit(row);
    os << std::flush;
}

} // namespace ecdp
