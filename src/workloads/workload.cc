#include "workloads/workload.hh"

#include <cstdio>
#include <cstdlib>

#include "workloads/suite.hh"

namespace ecdp
{

const std::vector<BenchmarkInfo> &
benchmarkSuite()
{
    using namespace workloads;
    static const std::vector<BenchmarkInfo> suite = {
        {"perlbench", true, buildPerlbench},
        {"gcc", true, buildGcc},
        {"mcf", true, buildMcf},
        {"astar", true, buildAstar},
        {"xalancbmk", true, buildXalancbmk},
        {"omnetpp", true, buildOmnetpp},
        {"parser", true, buildParser},
        {"art", true, buildArt},
        {"ammp", true, buildAmmp},
        {"bisort", true, buildBisort},
        {"health", true, buildHealth},
        {"mst", true, buildMst},
        {"perimeter", true, buildPerimeter},
        {"voronoi", true, buildVoronoi},
        {"pfast", true, buildPfast},
        {"gemsfdtd", false, buildGemsfdtd},
        {"h264ref", false, buildH264ref},
        {"libquantum", false, buildLibquantum},
        {"bzip2", false, buildBzip2},
        {"milc", false, buildMilc},
        {"lbm", false, buildLbm},
    };
    return suite;
}

const BenchmarkInfo *
findBenchmark(const std::string &name)
{
    for (const BenchmarkInfo &info : benchmarkSuite()) {
        if (info.name == name)
            return &info;
    }
    return nullptr;
}

Workload
buildWorkload(const std::string &name, InputSet input)
{
    const BenchmarkInfo *info = findBenchmark(name);
    if (!info) {
        std::fprintf(stderr, "unknown benchmark: %s\n", name.c_str());
        std::abort();
    }
    return info->build(input);
}

std::vector<std::string>
pointerIntensiveNames()
{
    std::vector<std::string> names;
    for (const BenchmarkInfo &info : benchmarkSuite()) {
        if (info.pointerIntensive)
            names.push_back(info.name);
    }
    return names;
}

std::vector<std::string>
streamingNames()
{
    std::vector<std::string> names;
    for (const BenchmarkInfo &info : benchmarkSuite()) {
        if (!info.pointerIntensive)
            names.push_back(info.name);
    }
    return names;
}

} // namespace ecdp
