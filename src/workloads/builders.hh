/**
 * @file
 * Shared helpers for the synthetic workload programs: seeded RNG and
 * heap-layout utilities controlling how linked nodes scatter over
 * cache blocks (which is what decides stream-prefetchability and CDP
 * behaviour).
 */

#ifndef ECDP_WORKLOADS_BUILDERS_HH
#define ECDP_WORKLOADS_BUILDERS_HH

#include <cstdint>
#include <random>
#include <vector>

#include "trace/trace.hh"
#include "workloads/workload.hh"

namespace ecdp
{

/** Deterministic per-benchmark, per-input RNG. */
std::mt19937 workloadRng(const std::string &name, InputSet input);

/**
 * Allocate @p count objects of @p bytes each, consecutively.
 * Logically-adjacent objects share cache blocks (Figure 3 layout).
 */
std::vector<Addr> allocSequential(TraceBuilder &tb, std::size_t count,
                                  std::size_t bytes,
                                  std::size_t align = 8);

/**
 * Allocate @p count objects interleaved across @p ways groups, so
 * logically-adjacent objects are ~@p ways objects apart in memory
 * (linked traversals then change blocks at every hop).
 */
std::vector<Addr> allocInterleaved(TraceBuilder &tb, std::size_t count,
                                   std::size_t bytes, unsigned ways);

/**
 * Allocate @p count objects and return their addresses in a random
 * (shuffled) logical order — a maximally fragmented heap.
 */
std::vector<Addr> allocShuffled(TraceBuilder &tb, std::size_t count,
                                std::size_t bytes, std::mt19937 &rng);

/**
 * Record a streaming scan: @p count loads of 4 bytes from
 * @p base, @p base+stride, ... with no dependencies.
 *
 * @param gap Non-memory instructions between loads.
 */
void streamScan(TraceBuilder &tb, Addr pc, Addr base,
                std::size_t count, std::uint32_t stride, unsigned gap);

/**
 * Pack a (bucket, slot) pair into one nonzero lookup key, giving the
 * slot the low @p slot_bits bits (stored as slot+1 so a zero word in
 * memory never matches a real key).
 *
 * The shifted-OR packing is only injective while slot+1 fits in its
 * field and bucket fits in the remaining bits; the asserts reject any
 * workload geometry that would silently alias two keys (a hash-chain
 * lookup would then stop at the wrong node and the trace's dependence
 * structure would change).
 */
std::uint32_t packLookupKey(std::size_t bucket, std::size_t slot,
                            unsigned slot_bits);

} // namespace ecdp

#endif // ECDP_WORKLOADS_BUILDERS_HH
