/**
 * @file
 * Streaming (non-pointer-intensive) workloads used for Section 6.7
 * and as partners in the multi-core mixes. All are array sweeps with
 * the stride/stream-count signatures of the named applications; none
 * carry LDS accesses, so the LDS prefetching machinery should leave
 * them untouched.
 */

#include "workloads/suite.hh"

#include "workloads/builders.hh"

namespace ecdp
{
namespace workloads
{

namespace
{

/** Allocate an array region of @p mb megabytes. */
Addr
region(TraceBuilder &tb, std::size_t mb)
{
    return tb.heap().allocate(mb * 1024 * 1024, 128);
}

} // namespace

/** gemsfdtd — three interleaved field sweeps plus a store stream. */
Workload
buildGemsfdtd(InputSet input)
{
    TraceBuilder tb("gemsfdtd");
    const bool train = input == InputSet::Train;
    const std::size_t n = train ? 3000 : 9000;
    Addr ex = region(tb, 2), ey = region(tb, 2), ez = region(tb, 2);
    Addr hx = region(tb, 2);
    constexpr Addr kPcEx = 0x421000, kPcEy = 0x421004;
    constexpr Addr kPcEz = 0x421008, kPcHx = 0x42100c;

    tb.beginTimed();
    for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t off = static_cast<std::uint32_t>(i) * 16;
        tb.load(kPcEx, ex + off, 4, kNoDep, false, 40);
        tb.load(kPcEy, ey + off, 4, kNoDep, false, 40);
        tb.load(kPcEz, ez + off, 4, kNoDep, false, 40);
        tb.store(kPcHx, hx + off, 4, i, kNoDep, false, 40);
    }
    return std::move(tb).finish();
}

/** h264ref — motion estimation: two short-stride reference scans. */
Workload
buildH264ref(InputSet input)
{
    TraceBuilder tb("h264ref");
    auto rng = workloadRng("h264ref", input);
    const bool train = input == InputSet::Train;
    const std::size_t blocks = train ? 400 : 1200;
    Addr ref_frame = region(tb, 4);
    Addr cur_frame = region(tb, 2);
    constexpr Addr kPcRef = 0x422000, kPcCur = 0x422004;
    constexpr Addr kPcOut = 0x422008;

    tb.beginTimed();
    for (std::size_t b = 0; b < blocks; ++b) {
        Addr rbase = ref_frame + (rng() % 30000) * 128;
        Addr cbase = cur_frame + static_cast<std::uint32_t>(b % 15000) * 128;
        for (unsigned i = 0; i < 24; ++i) {
            tb.load(kPcRef, rbase + i * 16, 4, kNoDep, false, 10);
            tb.load(kPcCur, cbase + i * 16, 4, kNoDep, false, 10);
        }
        tb.store(kPcOut, cbase, 4, b, kNoDep, false, 3);
    }
    return std::move(tb).finish();
}

/** libquantum — one long unit-stride sweep over a huge array. */
Workload
buildLibquantum(InputSet input)
{
    TraceBuilder tb("libquantum");
    const bool train = input == InputSet::Train;
    const std::size_t n = train ? 14000 : 40000;
    Addr reg = region(tb, 4);
    constexpr Addr kPcReg = 0x423000;

    tb.beginTimed();
    streamScan(tb, kPcReg, reg, n, 8, 42);
    return std::move(tb).finish();
}

/** bzip2 — sequential scan mixed with hits inside a sliding window. */
Workload
buildBzip2(InputSet input)
{
    TraceBuilder tb("bzip2");
    auto rng = workloadRng("bzip2", input);
    const bool train = input == InputSet::Train;
    const std::size_t n = train ? 25000 : 80000;
    Addr data = region(tb, 4);
    constexpr Addr kPcSeq = 0x424000, kPcWin = 0x424004;

    tb.beginTimed();
    for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t pos = static_cast<std::uint32_t>(i) * 32;
        if (i % 5 < 3) {
            tb.load(kPcSeq, data + pos, 4, kNoDep, false, 14);
        } else {
            // Back-reference into the recent window.
            std::uint32_t back = (rng() % (128 * 1024));
            std::uint32_t target = pos > back ? pos - back : 0;
            tb.load(kPcWin, data + target, 4, kNoDep, false, 14);
        }
    }
    return std::move(tb).finish();
}

/** milc — four strided sweeps with an indexed gather component. */
Workload
buildMilc(InputSet input)
{
    TraceBuilder tb("milc");
    auto rng = workloadRng("milc", input);
    const bool train = input == InputSet::Train;
    const std::size_t n = train ? 8000 : 26000;
    Addr su3 = region(tb, 3);
    Addr idx = tb.heap().allocate(n * 4, 128);
    for (std::size_t i = 0; i < n; ++i)
        tb.mem().write(idx + static_cast<std::uint32_t>(i) * 4, 4,
                       rng() % 700000);
    constexpr Addr kPcA = 0x425000, kPcIdx = 0x425004;
    constexpr Addr kPcGather = 0x425008;

    tb.beginTimed();
    for (std::size_t i = 0; i < n; ++i) {
        tb.load(kPcA, su3 + static_cast<std::uint32_t>(i) * 32, 4, kNoDep,
                false, 14);
        TraceRef iref = tb.load(kPcIdx, idx + static_cast<std::uint32_t>(i) * 4,
                                4, kNoDep, false, 6);
        std::uint32_t j = static_cast<std::uint32_t>(
            tb.mem().read(idx + static_cast<std::uint32_t>(i) * 4, 4));
        tb.load(kPcGather, su3 + j * 4, 4, iref, false, 8);
    }
    return std::move(tb).finish();
}

/** lbm — two block-stride sweeps with stores (every access a new
 *  block: pure bandwidth). */
Workload
buildLbm(InputSet input)
{
    TraceBuilder tb("lbm");
    const bool train = input == InputSet::Train;
    const std::size_t n = train ? 8000 : 26000;
    Addr src = region(tb, 4), dst = region(tb, 4);
    constexpr Addr kPcSrc = 0x426000, kPcDst = 0x426004;

    tb.beginTimed();
    for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t off = static_cast<std::uint32_t>(i) * 128;
        tb.load(kPcSrc, src + off, 4, kNoDep, false, 8);
        tb.store(kPcDst, dst + off, 4, i, kNoDep, false, 8);
    }
    return std::move(tb).finish();
}

} // namespace workloads
} // namespace ecdp
