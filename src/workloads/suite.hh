/**
 * @file
 * Declarations of the individual workload builders (grouped by suite).
 */

#ifndef ECDP_WORKLOADS_SUITE_HH
#define ECDP_WORKLOADS_SUITE_HH

#include "trace/trace.hh"
#include "workloads/workload.hh"

namespace ecdp
{
namespace workloads
{

/** @{ Pointer-intensive SPEC-like workloads. */
Workload buildPerlbench(InputSet input);
Workload buildGcc(InputSet input);
Workload buildMcf(InputSet input);
Workload buildAstar(InputSet input);
Workload buildXalancbmk(InputSet input);
Workload buildOmnetpp(InputSet input);
Workload buildParser(InputSet input);
Workload buildArt(InputSet input);
Workload buildAmmp(InputSet input);
/** @} */

/** @{ Olden-like workloads and pfast. */
Workload buildBisort(InputSet input);
Workload buildHealth(InputSet input);
Workload buildMst(InputSet input);
Workload buildPerimeter(InputSet input);
Workload buildVoronoi(InputSet input);
Workload buildPfast(InputSet input);
/** @} */

/** @{ Streaming (non-pointer-intensive, Section 6.7) workloads. */
Workload buildGemsfdtd(InputSet input);
Workload buildH264ref(InputSet input);
Workload buildLibquantum(InputSet input);
Workload buildBzip2(InputSet input);
Workload buildMilc(InputSet input);
Workload buildLbm(InputSet input);
/** @} */

} // namespace workloads
} // namespace ecdp

#endif // ECDP_WORKLOADS_SUITE_HH
