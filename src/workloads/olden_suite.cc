/**
 * @file
 * Synthetic workloads for the Olden benchmarks the paper evaluates
 * (bisort, health, mst, perimeter, voronoi) and pfast. Each rebuilds
 * the access pattern the paper singles out for that benchmark; the
 * structures are real: nodes are allocated in the simulated heap and
 * linked with real pointers the content-directed prefetcher will find.
 *
 * Node layouts deliberately mix pointer and non-pointer words so that
 * the per-block pointer fan-out CDP sees is realistic (a handful of
 * candidates per 128 B block, some of them dead ends).
 */

#include "workloads/suite.hh"

#include <algorithm>
#include <vector>

#include "workloads/builders.hh"

namespace ecdp
{
namespace workloads
{

/**
 * mst — the Figure 5 pattern: a hash table whose buckets are linked
 * chains of nodes {key, d1*, d2*, next*}. Lookups walk a chain
 * comparing keys; only the terminal node's data is dereferenced, so
 * the data-pointer PGs are harmful while the next-pointer PG is
 * beneficial.
 */
Workload
buildMst(InputSet input)
{
    TraceBuilder tb("mst");
    auto rng = workloadRng("mst", input);
    const bool train = input == InputSet::Train;
    const std::size_t buckets = train ? 768 : 1024;
    const std::size_t chain = train ? 32 : 48;
    const std::size_t lookups = train ? 400 : 1300;
    const std::size_t nodes = buckets * chain;

    // Chain hop => new cache block: nodes were inserted in random
    // order, so chain neighbours share no spatial locality and the
    // nodes co-resident in a block belong to unrelated buckets.
    std::vector<Addr> node_addrs = allocShuffled(tb, nodes, 32, rng);
    std::vector<Addr> payloads = allocSequential(tb, nodes * 2, 32);

    auto key_of = [](std::size_t b, std::size_t k) {
        return packLookupKey(b, k, 8);
    };

    for (std::size_t b = 0; b < buckets; ++b) {
        for (std::size_t k = 0; k < chain; ++k) {
            std::size_t i = b * chain + k;
            Addr node = node_addrs[i];
            tb.mem().write(node + 0, 4, key_of(b, k));
            tb.mem().writePointer(node + 4, payloads[2 * i]);
            tb.mem().writePointer(node + 8, payloads[2 * i + 1]);
            Addr next = k + 1 < chain ? node_addrs[i + 1] : 0;
            tb.mem().writePointer(node + 12, next);
            tb.mem().write(node + 16, 4, 7); // non-pointer filler
            tb.mem().write(node + 20, 4, 0x1234u);
            // Payload contents: plain data, never pointer-shaped, so
            // payload prefetches are recursion dead ends.
            tb.mem().write(payloads[2 * i], 4, 0x00620061u);
            tb.mem().write(payloads[2 * i + 1], 4, 0x00640063u);
        }
    }
    Addr bucket_arr = tb.heap().allocate(buckets * 4, 128);
    for (std::size_t b = 0; b < buckets; ++b)
        tb.mem().writePointer(bucket_arr + static_cast<std::uint32_t>(b) * 4,
                              node_addrs[b * chain]);

    constexpr Addr kPcBucket = 0x401000, kPcKey = 0x401010;
    constexpr Addr kPcNext = 0x401014, kPcData = 0x401020;
    constexpr Addr kPcPayload = 0x401024;

    tb.beginTimed();
    // Lookups are data-dependent: the next key is derived from the
    // result of the previous search (as in real mst, where hash
    // lookups happen inside the graph traversal), so searches do not
    // overlap in the machine.
    TraceRef last_ref = kNoDep;
    for (std::size_t l = 0; l < lookups; ++l) {
        std::size_t b = rng() % buckets;
        bool present = rng() % 100 < 30;
        std::size_t depth = present ? rng() % chain : chain;
        std::uint32_t target =
            present ? key_of(b, depth) : 0xffffffffu;

        auto [node, ref] = tb.loadPointer(
            kPcBucket, bucket_arr + static_cast<std::uint32_t>(b) * 4, last_ref,
            10);
        while (node != 0) {
            std::uint32_t key =
                static_cast<std::uint32_t>(tb.mem().read(node, 4));
            TraceRef key_ref = tb.load(kPcKey, node, 4, ref, true, 5);
            if (key == target) {
                auto [d1, d1_ref] =
                    tb.loadPointer(kPcData, node + 4, key_ref, 2);
                tb.load(kPcPayload, d1, 4, d1_ref, true, 4);
                tb.load(kPcPayload + 4, d1 + 16, 4, d1_ref, true, 4);
                break;
            }
            auto [next, next_ref] =
                tb.loadPointer(kPcNext, node + 12, ref, 4);
            node = next;
            ref = next_ref;
        }
        last_ref = ref;
    }
    return std::move(tb).finish();
}

/**
 * bisort — binary tree with frequent subtree swaps. Random root-to-
 * leaf descents (with child swaps that invalidate what CDP greedily
 * prefetched) are interleaved with full traversals of small subtrees,
 * whose child PGs *are* beneficial. The contrast is what ECDP's
 * per-PG filtering exploits.
 */
Workload
buildBisort(InputSet input)
{
    TraceBuilder tb("bisort");
    auto rng = workloadRng("bisort", input);
    const bool train = input == InputSet::Train;
    const unsigned depth = train ? 15 : 15;
    const std::size_t iterations = train ? 100 : 260;
    const std::size_t nodes = (std::size_t{1} << depth) - 1;

    // Node (128 B, one L2 block): {val @0, left @4, right @8,
    // data @12..}. The tree is built incrementally in real bisort, so
    // nodes are scattered: neither descents nor traversals are
    // stream-prefetchable (the paper lists bisort among the
    // low-stream-coverage benchmarks).
    std::vector<Addr> node_addrs = allocShuffled(tb, nodes, 128, rng);
    for (std::size_t i = 0; i < nodes; ++i) {
        Addr node = node_addrs[i];
        tb.mem().write(node, 4, static_cast<std::uint32_t>(rng()));
        std::size_t l = 2 * i + 1, r = 2 * i + 2;
        tb.mem().writePointer(node + 4,
                              l < nodes ? node_addrs[l] : 0);
        tb.mem().writePointer(node + 8,
                              r < nodes ? node_addrs[r] : 0);
        tb.mem().write(node + 12, 4, 3u);
        for (unsigned d = 4; d < 16; ++d)
            tb.mem().write(node + 4 * d, 4, 0x00010002u + d);
    }

    constexpr Addr kPcVal = 0x402000, kPcLeft = 0x402004;
    constexpr Addr kPcRight = 0x402008, kPcSwapL = 0x402010;
    constexpr Addr kPcSwapR = 0x402014;
    constexpr Addr kPcTravVal = 0x402020, kPcTravL = 0x402024;
    constexpr Addr kPcTravR = 0x402028;

    tb.beginTimed();

    // Full in-order traversal of the subtree at `node` down to
    // `levels` more levels; every child pointer loaded is followed.
    auto traverse = [&](auto &&self, Addr node, TraceRef ref,
                        unsigned levels) -> void {
        if (node == 0)
            return;
        tb.load(kPcTravVal, node, 4, ref, true, 10);
        if (levels == 0)
            return;
        auto [left, lref] = tb.loadPointer(kPcTravL, node + 4, ref, 6);
        self(self, left, lref, levels - 1);
        auto [right, rref] = tb.loadPointer(kPcTravR, node + 8, ref, 6);
        self(self, right, rref, levels - 1);
    };

    for (std::size_t it = 0; it < iterations; ++it) {
        Addr node = node_addrs[0];
        TraceRef ref = kNoDep;
        Addr stop_node = 0;
        TraceRef stop_ref = kNoDep;
        for (unsigned level = 0; node != 0; ++level) {
            tb.load(kPcVal, node, 4, ref, true, 12);
            // Swap this node's children 35% of the time; the subtree
            // CDP prefetched under the old pointer goes stale.
            if (rng() % 100 < 35) {
                auto [left, lref] =
                    tb.loadPointer(kPcSwapL, node + 4, ref, 2);
                auto [right, rref] =
                    tb.loadPointer(kPcSwapR, node + 8, ref, 2);
                tb.store(kPcSwapL, node + 4, 4, right.raw(), rref, true, 2);
                tb.store(kPcSwapR, node + 8, 4, left.raw(), lref, true, 2);
            }
            bool go_left = rng() % 2 == 0;
            auto [child, cref] = tb.loadPointer(
                go_left ? kPcLeft : kPcRight,
                node + (go_left ? 4u : 8u), ref, 4);
            if (level == depth - 8) {
                stop_node = node;
                stop_ref = ref;
            }
            node = child;
            ref = cref;
        }
        // Sort pass over a small subtree near the leaves: fully
        // traversed, so its child PGs are useful.
        if (stop_node != 0)
            traverse(traverse, stop_node, stop_ref, 6);
    }
    return std::move(tb).finish();
}

/**
 * health — hierarchy of villages, each with a long patient list.
 * Lists are revisited every simulation step and their nodes are
 * scattered; the heap interleaving co-locates each patient with its
 * same-position peer in the next village, so chain prefetches feed
 * the list about to be walked — this is the paper's outlier
 * benchmark.
 */
Workload
buildHealth(InputSet input)
{
    TraceBuilder tb("health");
    auto rng = workloadRng("health", input);
    const bool train = input == InputSet::Train;
    const unsigned levels = 4; // 4-ary tree: 1+4+16+64+256 villages
    const std::size_t list_len = train ? 48 : 64;
    const std::size_t steps = train ? 2 : 5;

    std::size_t villages = 0;
    for (unsigned l = 0, n = 1; l <= levels; ++l, n *= 4)
        villages += n;

    // Village: {child0..3 @0..12, listHead @16, val @20} (32 B).
    std::vector<Addr> village_addrs = allocSequential(tb, villages, 32);
    // Patients: {status @0, data @4, next @8, filler} (64 B).
    const std::size_t patients = villages * list_len;
    std::vector<Addr> patient_addrs = allocInterleaved(
        tb, patients, 64, static_cast<unsigned>(list_len));

    for (std::size_t v = 0; v < villages; ++v) {
        Addr village = village_addrs[v];
        for (unsigned c = 0; c < 4; ++c) {
            std::size_t child = 4 * v + 1 + c;
            tb.mem().writePointer(village + 4 * c,
                                  child < villages
                                      ? village_addrs[child]
                                      : 0);
        }
        for (std::size_t k = 0; k < list_len; ++k) {
            std::size_t i = v * list_len + k;
            Addr patient = patient_addrs[i];
            tb.mem().write(patient, 4, static_cast<std::uint32_t>(
                                           rng() % 100));
            tb.mem().write(patient + 4, 4, 11);
            tb.mem().writePointer(patient + 8,
                                  k + 1 < list_len
                                      ? patient_addrs[i + 1]
                                      : 0);
            tb.mem().write(patient + 12, 4, 0x00150016u);
        }
        tb.mem().writePointer(village + 16,
                              patient_addrs[v * list_len]);
    }

    constexpr Addr kPcChild = 0x403000, kPcHead = 0x403010;
    constexpr Addr kPcStatus = 0x403014, kPcNext = 0x403018;

    tb.beginTimed();
    auto visit = [&](auto &&self, Addr village, TraceRef vref) -> void {
        if (village == 0)
            return;
        // Walk the whole patient list of this village.
        auto [patient, pref] =
            tb.loadPointer(kPcHead, village + 16, vref, 4);
        while (patient != 0) {
            tb.load(kPcStatus, patient, 4, pref, true, 6);
            auto [next, nref] =
                tb.loadPointer(kPcNext, patient + 8, pref, 4);
            patient = next;
            pref = nref;
        }
        for (unsigned c = 0; c < 4; ++c) {
            auto [child, cref] =
                tb.loadPointer(kPcChild, village + 4 * c, vref, 2);
            self(self, child, cref);
        }
    };
    for (std::size_t s = 0; s < steps; ++s)
        visit(visit, village_addrs[0], kNoDep);
    return std::move(tb).finish();
}

/**
 * perimeter — quadtree allocated in DFS order (children right after
 * their parent) and traversed exhaustively: every pointer CDP finds
 * will be used, making it the high-accuracy case of Table 1.
 */
Workload
buildPerimeter(InputSet input)
{
    TraceBuilder tb("perimeter");
    auto rng = workloadRng("perimeter", input);
    const bool train = input == InputSet::Train;
    const std::size_t node_budget = train ? 8000 : 24000;
    const std::size_t passes = 2;

    // Node: {flag @0, child0..3 @4..16, parent @20} (32 B).
    struct Pending
    {
        Addr addr;
        unsigned depth;
    };
    std::vector<Pending> stack;
    Addr root = tb.heap().allocate(32, 8);
    stack.push_back({root, 0});
    std::size_t budget = node_budget - 1;
    while (!stack.empty()) {
        Pending cur = stack.back();
        stack.pop_back();
        tb.mem().write(cur.addr, 4, cur.depth);
        bool subdivide = budget >= 4 && cur.depth < 9 &&
                         (cur.depth < 3 || rng() % 100 < 52);
        for (unsigned c = 0; c < 4; ++c) {
            Addr child = 0;
            if (subdivide) {
                child = tb.heap().allocate(32, 8);
                tb.mem().writePointer(child + 20, cur.addr);
                stack.push_back({child, cur.depth + 1});
            }
            tb.mem().writePointer(cur.addr + 4 + 4 * c, child);
        }
        if (subdivide)
            budget -= 4;
    }

    constexpr Addr kPcFlag = 0x404000, kPcChild = 0x404004;

    tb.beginTimed();
    auto visit = [&](auto &&self, Addr node, TraceRef ref) -> void {
        if (node == 0)
            return;
        tb.load(kPcFlag, node, 4, ref, true, 6);
        for (unsigned c = 0; c < 4; ++c) {
            auto [child, cref] =
                tb.loadPointer(kPcChild, node + 4 + 4 * c, ref, 2);
            self(self, child, cref);
        }
    };
    for (std::size_t p = 0; p < passes; ++p)
        visit(visit, root, kNoDep);
    return std::move(tb).finish();
}

/**
 * voronoi — quad-edge records walked mostly through `next`, with
 * occasional twin/prev detours: CDP lands mid-pack in accuracy.
 */
Workload
buildVoronoi(InputSet input)
{
    TraceBuilder tb("voronoi");
    auto rng = workloadRng("voronoi", input);
    const bool train = input == InputSet::Train;
    const std::size_t edges = train ? 24000 : 36000;
    const std::size_t walks = train ? 700 : 2200;
    const std::size_t walk_len = 20;

    // Edge (64 B): {org @0, next @4, prev @8, twin @12, coords @16..}.
    // Interleaved allocation: the edge co-resident in a block is the
    // edge ~8 hops further along the face walk, so chain prefetches
    // land a useful distance ahead (the walk itself is scattered and
    // not stream-prefetchable).
    std::vector<Addr> edge_addrs = allocInterleaved(tb, edges, 64, 8);
    std::vector<Addr> sites = allocSequential(tb, edges / 4 + 1, 16);
    for (std::size_t e = 0; e < edges; ++e) {
        Addr edge = edge_addrs[e];
        tb.mem().writePointer(edge, sites[e / 4]);
        // next: a short forward hop (face loops advance through the
        // allocation); prev: a short backward hop.
        std::size_t next = std::min(edges - 1, e + 1 + rng() % 3);
        std::size_t prev = e > 4 ? e - 1 - rng() % 4 : 0;
        tb.mem().writePointer(edge + 4, edge_addrs[next]);
        tb.mem().writePointer(edge + 8, edge_addrs[prev]);
        tb.mem().writePointer(edge + 12, edge_addrs[e ^ 1]);
        tb.mem().write(edge + 16, 4, 0x00330044u);
        tb.mem().write(edge + 20, 4, 0x00550066u);
    }

    constexpr Addr kPcOrg = 0x405000, kPcNext = 0x405004;
    constexpr Addr kPcPrev = 0x405008, kPcTwin = 0x40500c;

    tb.beginTimed();
    for (std::size_t w = 0; w < walks; ++w) {
        Addr edge = edge_addrs[rng() % edges];
        TraceRef ref = kNoDep;
        for (std::size_t s = 0; s < walk_len && edge != 0; ++s) {
            tb.load(kPcOrg, edge, 4, ref, true, 16);
            unsigned which = rng() % 20;
            Addr field_pc = which < 17 ? kPcNext
                          : which < 19 ? kPcTwin
                                       : kPcPrev;
            std::uint32_t field_off = which < 17 ? 4u
                                   : which < 19 ? 12u
                                                : 8u;
            auto [target, tref] =
                tb.loadPointer(field_pc, edge + field_off, ref, 10);
            edge = target;
            ref = tref;
        }
    }
    return std::move(tb).finish();
}

/**
 * pfast — sequence-alignment seed lookup: hash chains of seed nodes;
 * a hit streams the 256-byte alignment region the seed points at.
 */
Workload
buildPfast(InputSet input)
{
    TraceBuilder tb("pfast");
    auto rng = workloadRng("pfast", input);
    const bool train = input == InputSet::Train;
    const std::size_t buckets = train ? 1024 : 4096;
    const std::size_t chain = 8;
    const std::size_t lookups = train ? 900 : 3200;
    const std::size_t nodes = buckets * chain;

    // Seed node: {key @0, region* @4, next @8, filler} (32 B).
    std::vector<Addr> node_addrs = allocInterleaved(tb, nodes, 32, 16);
    Addr regions = tb.heap().allocate(nodes * 256, 128);

    auto key_of = [](std::size_t b, std::size_t k) {
        return packLookupKey(b, k, 4);
    };
    for (std::size_t b = 0; b < buckets; ++b) {
        for (std::size_t k = 0; k < chain; ++k) {
            std::size_t i = b * chain + k;
            Addr node = node_addrs[i];
            tb.mem().write(node, 4, key_of(b, k));
            tb.mem().writePointer(node + 4,
                                  regions +
                                      static_cast<std::uint32_t>(i) * 256);
            tb.mem().writePointer(node + 8,
                                  k + 1 < chain ? node_addrs[i + 1]
                                                : 0);
            tb.mem().write(node + 12, 4, 0x41434754u); // "ACGT"
        }
    }
    Addr bucket_arr = tb.heap().allocate(buckets * 4, 128);
    for (std::size_t b = 0; b < buckets; ++b)
        tb.mem().writePointer(bucket_arr + static_cast<std::uint32_t>(b) * 4,
                              node_addrs[b * chain]);

    constexpr Addr kPcBucket = 0x406000, kPcKey = 0x406010;
    constexpr Addr kPcNext = 0x406014, kPcRegion = 0x406020;
    constexpr Addr kPcAlign = 0x406024;

    tb.beginTimed();
    // Seed lookups chain: each seed is derived from the previous
    // alignment's result.
    TraceRef last_ref = kNoDep;
    for (std::size_t l = 0; l < lookups; ++l) {
        std::size_t b = rng() % buckets;
        bool present = rng() % 100 < 60;
        std::size_t depth = present ? rng() % chain : chain;
        std::uint32_t target =
            present ? key_of(b, depth) : 0xffffffffu;
        auto [node, ref] = tb.loadPointer(
            kPcBucket, bucket_arr + static_cast<std::uint32_t>(b) * 4, last_ref,
            8);
        while (node != 0) {
            std::uint32_t key =
                static_cast<std::uint32_t>(tb.mem().read(node, 4));
            tb.load(kPcKey, node, 4, ref, true, 5);
            if (key == target) {
                auto [region, rref] =
                    tb.loadPointer(kPcRegion, node + 4, ref, 2);
                for (unsigned q = 0; q < 8; ++q) {
                    tb.load(kPcAlign, region + q * 32, 4, rref, false,
                            4);
                }
                break;
            }
            auto [next, nref] =
                tb.loadPointer(kPcNext, node + 8, ref, 4);
            node = next;
            ref = nref;
        }
        last_ref = ref;
    }
    return std::move(tb).finish();
}

} // namespace workloads
} // namespace ecdp
