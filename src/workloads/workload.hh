/**
 * @file
 * Benchmark registry.
 *
 * The paper evaluates 15 pointer-intensive applications from SPEC
 * CPU2000/2006, Olden and pfast, plus the remaining (non-pointer-
 * intensive) applications in Section 6.7. Those binaries are not
 * available here, so each benchmark is a synthetic workload program
 * that rebuilds the *access pattern* the paper describes for it:
 * real linked data structures in a simulated heap, traversed with
 * real data-dependent control flow (see DESIGN.md for the map).
 *
 * Each benchmark has `ref` and `train` inputs: different sizes and
 * seeds, per the paper's profiling methodology (Section 5).
 */

#ifndef ECDP_WORKLOADS_WORKLOAD_HH
#define ECDP_WORKLOADS_WORKLOAD_HH

#include <string>
#include <vector>

#include "trace/trace.hh"

namespace ecdp
{

/** Which input the workload builds (Section 5: train for profiling). */
enum class InputSet { Train, Ref };

/** One registered benchmark. */
struct BenchmarkInfo
{
    std::string name;
    /** True for the paper's 15 pointer-intensive applications. */
    bool pointerIntensive;
    Workload (*build)(InputSet);
};

/** All benchmarks (15 pointer-intensive + 6 streaming). */
const std::vector<BenchmarkInfo> &benchmarkSuite();

/** Look up a benchmark by name; nullptr when unknown. */
const BenchmarkInfo *findBenchmark(const std::string &name);

/** Build a benchmark's workload. Aborts on unknown names. */
Workload buildWorkload(const std::string &name, InputSet input);

/** Names of the 15 pointer-intensive benchmarks, in paper order. */
std::vector<std::string> pointerIntensiveNames();

/** Names of the streaming (Section 6.7) benchmarks. */
std::vector<std::string> streamingNames();

} // namespace ecdp

#endif // ECDP_WORKLOADS_WORKLOAD_HH
