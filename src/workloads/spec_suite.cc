/**
 * @file
 * Synthetic workloads for the pointer-intensive SPEC CPU2000/2006
 * applications the paper evaluates. Each captures the qualitative
 * behaviour the paper attributes to that benchmark (see DESIGN.md).
 * Node layouts mix pointers with plain-data words so CDP's per-block
 * candidate fan-out stays realistic.
 */

#include "workloads/suite.hh"

#include <algorithm>
#include <vector>

#include "workloads/builders.hh"

namespace ecdp
{
namespace workloads
{

/**
 * mcf — network simplex: streaming scans over a big arc array mixed
 * with parent-chain climbs through scattered node structures whose
 * blocks hold pointers that are *not* followed (CDP accuracy is the
 * lowest of the suite).
 */
Workload
buildMcf(InputSet input)
{
    TraceBuilder tb("mcf");
    auto rng = workloadRng("mcf", input);
    const bool train = input == InputSet::Train;
    const std::size_t node_count = train ? 20480 : 32768;
    const std::size_t iterations = train ? 20 : 60;
    const std::size_t arc_chunk = 250;
    const std::size_t climbs = 110;

    // Node (64 B): {pot @0, parent @4, child @8, sibling @12,
    // succArc @16, flow/data @20..}.
    std::vector<Addr> node_addrs =
        allocShuffled(tb, node_count, 64, rng);
    Addr arcs = tb.heap().allocate(3 * 1024 * 1024, 128);
    for (std::size_t i = 0; i < node_count; ++i) {
        Addr node = node_addrs[i];
        tb.mem().write(node, 4, static_cast<std::uint32_t>(rng()));
        // Random recursive tree with hub bias: parent chains converge
        // onto a small set of hot nodes near the root (as network-
        // simplex basis trees do), so pointer targets repeat and are
        // often already cached.
        std::size_t hub_span = 1 + i / 8;
        Addr parent = i == 0 ? 0 : node_addrs[rng() % hub_span];
        tb.mem().writePointer(node + 4, parent);
        tb.mem().writePointer(node + 8, node_addrs[rng() % hub_span]);
        tb.mem().writePointer(node + 12,
                              node_addrs[rng() % hub_span]);
        tb.mem().writePointer(node + 16, arcs + (rng() % 100000) * 16);
        tb.mem().write(node + 20, 4, rng() % 1000);
        tb.mem().write(node + 24, 4, 0x00070009u);
    }

    constexpr Addr kPcArc = 0x411000, kPcPot = 0x411010;
    constexpr Addr kPcParent = 0x411014;

    tb.beginTimed();
    std::size_t arc_pos = 0;
    for (std::size_t it = 0; it < iterations; ++it) {
        // Price-update sweep over the next arc chunk (streaming).
        streamScan(tb, kPcArc,
                   arcs + static_cast<std::uint32_t>(
                              (arc_pos % 180000) * 16),
                   arc_chunk, 16, 30);
        arc_pos += arc_chunk;
        // Climb parent chains from scattered nodes.
        for (std::size_t c = 0; c < climbs; ++c) {
            Addr node = node_addrs[rng() % node_count];
            TraceRef ref = kNoDep;
            for (unsigned hop = 0; hop < 6 && node != 0; ++hop) {
                tb.load(kPcPot, node, 4, ref, true, 8);
                auto [parent, pref] =
                    tb.loadPointer(kPcParent, node + 4, ref, 4);
                node = parent;
                ref = pref;
            }
        }
    }
    return std::move(tb).finish();
}

/**
 * astar — graph search: each expanded node fills a whole cache block
 * and holds eight neighbor pointers of which the search follows
 * mostly the first few — the textbook case of per-slot (per-PG)
 * usefulness differences. A heuristic-table scan adds a streaming
 * component.
 */
Workload
buildAstar(InputSet input)
{
    TraceBuilder tb("astar");
    auto rng = workloadRng("astar", input);
    const bool train = input == InputSet::Train;
    const std::size_t node_count = train ? 12288 : 20480;
    const std::size_t searches = train ? 90 : 300;
    const std::size_t expansions = 40;
    const std::size_t dim = 181;

    // Node (128 B = one L2 block): {g @0, h @4, cost @8..12,
    // succ @16, alt @20, adjacency-data* @24, map data @28..}.
    // `succ` follows the primary direction of travel (a whole grid
    // row ahead: content-predictable but not stream-prefetchable);
    // `alt` is the sideways option; the adjacency region holds plain
    // neighbor ids (a recursion dead end).
    std::vector<Addr> node_addrs =
        allocSequential(tb, node_count, 128, 128);
    Addr htable = tb.heap().allocate(2 * 1024 * 1024, 128);
    Addr adjacency = tb.heap().allocate(
        static_cast<std::uint32_t>(node_count) * 32, 128);
    for (std::size_t i = 0; i < node_count; ++i) {
        Addr node = node_addrs[i];
        tb.mem().write(node, 4, static_cast<std::uint32_t>(rng()));
        tb.mem().write(node + 4, 4, static_cast<std::uint32_t>(rng()));
        auto nb = [&](std::size_t j) {
            return node_addrs[j % node_count];
        };
        tb.mem().writePointer(node + 16, nb(i + dim));
        // The sideways alternative is computed from the grid index
        // (array-style), so it is not a pointer CDP can see.
        tb.mem().write(node + 20, 4, static_cast<std::uint32_t>(
                                         (i + 1 + rng() % dim) %
                                         node_count));
        tb.mem().writePointer(node + 24,
                              adjacency + static_cast<std::uint32_t>(i) * 32);
        tb.mem().write(adjacency + static_cast<std::uint32_t>(i) * 32, 4,
                       static_cast<std::uint32_t>(i % dim));
        for (unsigned d = 0; d < 8; ++d)
            tb.mem().write(node + 28 + 4 * d, 4, rng() % 256);
    }
    Addr open_list = tb.heap().allocate(64 * 1024, 128);

    constexpr Addr kPcG = 0x412000, kPcSucc = 0x412010;
    constexpr Addr kPcAlt = 0x412014, kPcAdj = 0x412018;
    constexpr Addr kPcNbG = 0x412040, kPcAltG = 0x412044;
    constexpr Addr kPcOpen = 0x412050, kPcHeur = 0x412060;

    tb.beginTimed();
    std::size_t heur_pos = 0;
    for (std::size_t s = 0; s < searches; ++s) {
        Addr node = node_addrs[rng() % node_count];
        TraceRef ref = kNoDep;
        for (std::size_t e = 0; e < expansions; ++e) {
            tb.load(kPcG, node, 4, ref, true, 30);
            // Heuristic table: a short streaming burst per expansion.
            streamScan(tb, kPcHeur,
                       htable + static_cast<std::uint32_t>(
                                    (heur_pos % 120000) * 16),
                       10, 16, 3);
            heur_pos += 10;
            // Open-list bookkeeping (small, cache-resident array).
            Addr slot = open_list + (rng() % 8192) * 4;
            tb.load(kPcOpen, slot, 4, kNoDep, false, 3);
            tb.store(kPcOpen + 4, slot, 4, 1, kNoDep, false, 2);
            // Consult the adjacency record (same-block + dead-end).
            auto [adj, adj_ref] =
                tb.loadPointer(kPcAdj, node + 24, ref, 2);
            tb.load(kPcAdj + 4, adj, 4, adj_ref, true, 4);

            Addr chosen = 0;
            TraceRef chosen_ref = kNoDep;
            // The heuristic almost always evaluates the primary
            // successor and keeps moving that way 3 times out of 4.
            if (rng() % 100 < 95) {
                auto [succ, sref] =
                    tb.loadPointer(kPcSucc, node + 16, ref, 3);
                if (succ != 0) {
                    TraceRef gref =
                        tb.load(kPcNbG, succ, 4, sref, true, 20);
                    if (rng() % 100 < 85) {
                        chosen = succ;
                        chosen_ref = gref;
                    }
                }
            }
            if (rng() % 100 < 30) {
                // Sideways move: the target address is computed from
                // the grid index loaded out of the node.
                TraceRef idx_ref =
                    tb.load(kPcAlt, node + 20, 4, ref, true, 3);
                std::uint32_t j = static_cast<std::uint32_t>(
                    tb.mem().read(node + 20, 4));
                Addr alt = node_addrs[j % node_count];
                TraceRef gref =
                    tb.load(kPcAltG, alt, 4, idx_ref, true, 20);
                if (chosen == 0) {
                    chosen = alt;
                    chosen_ref = gref;
                }
            }
            if (chosen == 0) {
                // Dead end: pop a fresh frontier node.
                node = node_addrs[rng() % node_count];
                ref = kNoDep;
                continue;
            }
            node = chosen;
            ref = chosen_ref;
        }
    }
    return std::move(tb).finish();
}

/**
 * xalancbmk — DOM traversal that skips most subtrees: blocks full of
 * node pointers of which very few are followed (CDP accuracy 0.9% in
 * Table 1), but the firstChild/nextSibling PGs are predictable.
 */
Workload
buildXalancbmk(InputSet input)
{
    TraceBuilder tb("xalancbmk");
    auto rng = workloadRng("xalancbmk", input);
    const bool train = input == InputSet::Train;
    const std::size_t node_count = train ? 22000 : 36000;
    const std::size_t visits = train ? 15000 : 55000;

    // DOM node (64 B): {type @0, firstChild @4, nextSibling @8,
    // attr @12, text @16, name data @20..}. Nodes are scattered (the
    // document was built with many interleaved allocations), so the
    // walk is not stream-prefetchable.
    std::vector<Addr> node_addrs =
        allocShuffled(tb, node_count, 64, rng);
    std::vector<Addr> attrs = allocSequential(tb, node_count, 16);
    // Build a wide, shallow tree (depth <= 5, branching ~8-30): a
    // selective sweep then still reaches a large fraction of the
    // document per pass even though it skips most subtrees.
    std::vector<std::size_t> first_child(node_count, 0);
    std::vector<std::size_t> next_sibling(node_count, 0);
    std::vector<std::size_t> last_child(node_count, 0);
    {
        std::vector<unsigned> depth(node_count, 0);
        for (std::size_t i = 1; i < node_count; ++i) {
            std::size_t parent = 0;
            for (int attempt = 0; attempt < 20; ++attempt) {
                std::size_t j = rng() % i;
                if (depth[j] < 5) {
                    parent = j;
                    break;
                }
            }
            depth[i] = depth[parent] + 1;
            if (first_child[parent] == 0)
                first_child[parent] = i;
            else
                next_sibling[last_child[parent]] = i;
            last_child[parent] = i;
        }
    }
    for (std::size_t i = 0; i < node_count; ++i) {
        Addr node = node_addrs[i];
        tb.mem().write(node, 4, static_cast<std::uint32_t>(rng() % 16));
        tb.mem().writePointer(node + 4, first_child[i]
                                            ? node_addrs[first_child[i]]
                                            : 0);
        tb.mem().writePointer(node + 8,
                              next_sibling[i]
                                  ? node_addrs[next_sibling[i]]
                                  : 0);
        tb.mem().writePointer(node + 12, attrs[i]);
        tb.mem().writePointer(node + 16, attrs[(i * 7) % node_count]);
        tb.mem().write(node + 20, 4, 0x6d616e00u); // name bytes
        tb.mem().write(attrs[i], 4, 0x76616c00u);  // "val" bytes
    }

    Addr serial_buf = tb.heap().allocate(4 * 1024 * 1024, 128);

    constexpr Addr kPcType = 0x413000, kPcChild = 0x413004;
    constexpr Addr kPcSibling = 0x413008, kPcAttr = 0x41300c;
    constexpr Addr kPcAttrVal = 0x413010, kPcSerial = 0x413020;

    tb.beginTimed();
    // Continuous document-order cursor with subtree skips: each pass
    // sweeps the whole (scattered) document.
    std::size_t visited = 0;
    Addr node = node_addrs[0];
    TraceRef ref = kNoDep;
    std::vector<std::pair<Addr, TraceRef>> stack;
    while (visited < visits) {
        if (node == 0) {
            // End of document: restart the sweep.
            stack.clear();
            node = node_addrs[0];
            ref = kNoDep;
        }
        ++visited;
        tb.load(kPcType, node, 4, ref, true, 8);
        if (visited % 25 == 0) {
            // Serialize a result fragment: a short sequential burst
            // at a fresh position. It trains the stream prefetcher,
            // which then runs far past the fragment's end.
            Addr frag = serial_buf + (rng() % 28000) * 128;
            for (unsigned q = 0; q < 5; ++q)
                tb.load(kPcSerial, frag + q * 128, 4, kNoDep, false, 6);
        }
        if (rng() % 100 < 5) {
            auto [attr, aref] =
                tb.loadPointer(kPcAttr, node + 12, ref, 2);
            tb.load(kPcAttrVal, attr, 4, aref, true, 4);
        }
        bool descend = node == node_addrs[0] || rng() % 100 >= 65;
        Addr next = 0;
        TraceRef nref = kNoDep;
        if (descend) {
            auto [child, cref] =
                tb.loadPointer(kPcChild, node + 4, ref, 4);
            if (child != 0) {
                stack.push_back({node, ref});
                node = child;
                ref = cref;
                continue;
            }
        }
        // Selector mismatch (or leaf): skip to the next sibling,
        // popping ancestors until one has a sibling.
        auto [sib, sref] = tb.loadPointer(kPcSibling, node + 8, ref, 4);
        next = sib;
        nref = sref;
        while (next == 0 && !stack.empty()) {
            auto [up, upref] = stack.back();
            stack.pop_back();
            auto [s2, s2ref] =
                tb.loadPointer(kPcSibling, up + 8, upref, 4);
            next = s2;
            nref = s2ref;
        }
        node = next;
        ref = nref;
    }
    return std::move(tb).finish();
}

/**
 * omnetpp — discrete event simulation over a calendar queue: bucket
 * lists churn through a large event pool, so insertion walks keep
 * missing; only the next pointer is hot.
 */
Workload
buildOmnetpp(InputSet input)
{
    TraceBuilder tb("omnetpp");
    auto rng = workloadRng("omnetpp", input);
    const bool train = input == InputSet::Train;
    const std::size_t pool = train ? 19200 : 28800;
    const std::size_t buckets = train ? 128 : 192;
    const std::size_t events = train ? 900 : 2600;
    const std::size_t per_bucket = pool / buckets;

    // Event (64 B): {time @0, next @4, prev @8, msg @12, data..}.
    // Interleaved allocation: the co-resident event is ~8 hops ahead
    // in the same bucket chain, giving chain prefetches a useful
    // lookahead.
    std::vector<Addr> event_addrs = allocInterleaved(tb, pool, 64, 8);
    std::vector<Addr> msgs = allocShuffled(tb, pool, 64, rng);
    // Pre-distribute events round-robin over bucket chains.
    Addr bucket_heads = tb.heap().allocate(buckets * 4, 128);
    for (std::size_t b = 0; b < buckets; ++b) {
        Addr prev = 0;
        for (std::size_t k = 0; k < per_bucket; ++k) {
            std::size_t i = b * per_bucket + k;
            Addr event = event_addrs[i];
            tb.mem().write(event, 4,
                           static_cast<std::uint32_t>(i * 10));
            Addr next = k + 1 < per_bucket ? event_addrs[i + 1] : 0;
            tb.mem().writePointer(event + 4, next);
            tb.mem().writePointer(event + 8, prev);
            tb.mem().writePointer(event + 12, msgs[i]);
            tb.mem().write(event + 16, 4, 0x00080100u);
            tb.mem().write(msgs[i], 4, 0x006d0067u);
            prev = event;
        }
        tb.mem().writePointer(bucket_heads + static_cast<std::uint32_t>(b) * 4,
                              event_addrs[b * per_bucket]);
    }

    constexpr Addr kPcHead = 0x414000, kPcTime = 0x414004;
    constexpr Addr kPcNext = 0x414008, kPcMsg = 0x41400c;
    constexpr Addr kPcMsgData = 0x414010, kPcLink = 0x414020;
    constexpr Addr kPcWalkTime = 0x414030, kPcWalkNext = 0x414034;

    tb.beginTimed();
    for (std::size_t e = 0; e < events; ++e) {
        // Pop the head of the current bucket.
        std::size_t b = e % buckets;
        Addr head_slot = bucket_heads + static_cast<std::uint32_t>(b) * 4;
        auto [head, href] = tb.loadPointer(kPcHead, head_slot, kNoDep,
                                           6);
        if (head == 0)
            continue;
        tb.load(kPcTime, head, 4, href, true, 8);
        if (rng() % 100 < 10) {
            auto [msg, mref] =
                tb.loadPointer(kPcMsg, head + 12, href, 2);
            tb.load(kPcMsgData, msg, 4, mref, true, 5);
        }
        auto [second, sref] =
            tb.loadPointer(kPcNext, head + 4, href, 4);
        tb.store(kPcLink, head_slot, 4, second.raw(), sref, false, 2);

        // Re-insert into another bucket: the walk is the hot loop.
        std::size_t b2 = (b + 1 + rng() % (buckets - 1)) % buckets;
        Addr slot2 = bucket_heads + static_cast<std::uint32_t>(b2) * 4;
        auto [cur, cref] = tb.loadPointer(kPcHead + 4, slot2, kNoDep,
                                          3);
        std::size_t hops = 4 + rng() % 80;
        if (cur == 0) {
            tb.store(kPcLink + 4, slot2, 4, head.raw(), href, false, 2);
            tb.store(kPcLink + 8, head + 4, 4, 0, href, true, 2);
            continue;
        }
        for (std::size_t s = 0; s < hops; ++s) {
            tb.load(kPcWalkTime, cur, 4, cref, true, 6);
            if (s % 3 == 2) {
                // Inspect the queued message while walking.
                auto [msg, mref] =
                    tb.loadPointer(kPcMsg + 4, cur + 12, cref, 2);
                tb.load(kPcMsgData + 4, msg, 4, mref, true, 4);
            }
            auto [next, nref] =
                tb.loadPointer(kPcWalkNext, cur + 4, cref, 4);
            if (next == 0)
                break;
            cur = next;
            cref = nref;
        }
        auto [after, aref] = tb.loadPointer(kPcNext + 4, cur + 4, cref,
                                            2);
        tb.store(kPcLink + 12, cur + 4, 4, head.raw(), cref, true, 2);
        tb.store(kPcLink + 16, head + 4, 4, after.raw(), aref, true, 2);
        tb.store(kPcLink + 20, head + 8, 4, cur.raw(), cref, true, 2);
    }
    return std::move(tb).finish();
}

/**
 * perlbench — interpreter: short hash chains with hit-heavy lookups
 * followed by streaming over the matched string value; scattered
 * bucket accesses occasionally train useless streams, which
 * throttling later reins in.
 */
Workload
buildPerlbench(InputSet input)
{
    TraceBuilder tb("perlbench");
    auto rng = workloadRng("perlbench", input);
    const bool train = input == InputSet::Train;
    const std::size_t buckets = train ? 6144 : 10240;
    const std::size_t chain = 3;
    const std::size_t lookups = train ? 900 : 3200;
    const std::size_t nodes = buckets * chain;

    // Symbol node (64 B): {key @0, value* @4, next @8, flags @12..}.
    std::vector<Addr> node_addrs = allocInterleaved(tb, nodes, 64, 12);
    Addr strings = tb.heap().allocate(nodes * 64, 128);
    auto key_of = [](std::size_t b, std::size_t k) {
        return static_cast<std::uint32_t>((b << 4) | (k + 1));
    };
    for (std::size_t b = 0; b < buckets; ++b) {
        for (std::size_t k = 0; k < chain; ++k) {
            std::size_t i = b * chain + k;
            Addr node = node_addrs[i];
            Addr value = strings + static_cast<std::uint32_t>(i) * 64;
            tb.mem().write(node, 4, key_of(b, k));
            tb.mem().writePointer(node + 4, value);
            tb.mem().writePointer(node + 8,
                                  k + 1 < chain ? node_addrs[i + 1]
                                                : 0);
            tb.mem().write(node + 12, 4, 0x00000003u);
            // String contents: ASCII bytes, never pointer-shaped.
            for (unsigned q = 0; q < 16; ++q)
                tb.mem().write(value + 4 * q, 4, 0x61626364u);
        }
    }
    Addr bucket_arr = tb.heap().allocate(buckets * 4, 128);
    for (std::size_t b = 0; b < buckets; ++b)
        tb.mem().writePointer(bucket_arr + static_cast<std::uint32_t>(b) * 4,
                              node_addrs[b * chain]);

    Addr bytecode = tb.heap().allocate(1024 * 1024, 128);

    constexpr Addr kPcBucket = 0x415000, kPcKey = 0x415010;
    constexpr Addr kPcNext = 0x415014, kPcVal = 0x415020;
    constexpr Addr kPcStr = 0x415024, kPcOp = 0x415030;

    tb.beginTimed();
    // Symbol lookups chain through the interpreter state: each one
    // depends on the previous lookup's result.
    TraceRef last_ref = kNoDep;
    std::size_t op_pos = 0;
    for (std::size_t l = 0; l < lookups; ++l) {
        // Interpret a run of bytecode between symbol lookups.
        streamScan(tb, kPcOp,
                   bytecode + static_cast<std::uint32_t>((op_pos % 60000) * 16),
                   6, 16, 4);
        op_pos += 6;
        std::size_t b = rng() % buckets;
        bool present = rng() % 100 < 80;
        // Hits skew heavily toward the head of the chain (interpreter
        // symbol caches keep hot entries in front).
        unsigned roll = static_cast<unsigned>(rng() % 100);
        std::size_t depth = roll < 60 ? 0 : roll < 85 ? 1 : 2;
        std::uint32_t target =
            present ? key_of(b, depth) : 0xffffffffu;
        auto [node, ref] = tb.loadPointer(
            kPcBucket, bucket_arr + static_cast<std::uint32_t>(b) * 4, last_ref,
            12);
        while (node != 0) {
            std::uint32_t key =
                static_cast<std::uint32_t>(tb.mem().read(node, 4));
            tb.load(kPcKey, node, 4, ref, true, 5);
            if (key == target) {
                auto [value, vref] =
                    tb.loadPointer(kPcVal, node + 4, ref, 2);
                for (unsigned q = 0; q < 16; ++q)
                    tb.load(kPcStr, value + q * 4, 4, vref, false, 2);
                break;
            }
            auto [next, nref] =
                tb.loadPointer(kPcNext, node + 8, ref, 4);
            node = next;
            ref = nref;
        }
        last_ref = ref;
    }
    return std::move(tb).finish();
}

/**
 * gcc — mixed: streaming passes over IR arrays dominate (high stream
 * coverage) with a small, mostly cache-resident tree on the side.
 */
Workload
buildGcc(InputSet input)
{
    TraceBuilder tb("gcc");
    auto rng = workloadRng("gcc", input);
    const bool train = input == InputSet::Train;
    const std::size_t passes = train ? 2 : 4;
    const std::size_t scan = train ? 5000 : 13000;

    Addr ir_a = tb.heap().allocate(2 * 1024 * 1024, 128);
    Addr ir_b = tb.heap().allocate(2 * 1024 * 1024, 128);
    Addr bitmap = tb.heap().allocate(1024 * 1024, 128);

    // Symbol tree (32 B nodes, mostly cache-resident).
    const std::size_t tree_nodes = 6000;
    std::vector<Addr> nodes = allocSequential(tb, tree_nodes, 32);
    for (std::size_t i = 0; i < tree_nodes; ++i) {
        Addr node = nodes[i];
        tb.mem().write(node, 4, static_cast<std::uint32_t>(rng()));
        std::size_t l = 2 * i + 1, r = 2 * i + 2;
        tb.mem().writePointer(node + 4, l < tree_nodes ? nodes[l] : 0);
        tb.mem().writePointer(node + 8, r < tree_nodes ? nodes[r] : 0);
        tb.mem().write(node + 12, 4, 0x00090008u);
    }

    constexpr Addr kPcScanA = 0x416000, kPcScanB = 0x416004;
    constexpr Addr kPcBitmap = 0x416010, kPcVal = 0x416020;
    constexpr Addr kPcChild = 0x416024;

    tb.beginTimed();
    for (std::size_t p = 0; p < passes; ++p) {
        streamScan(tb, kPcScanA, ir_a, scan, 16, 40);
        streamScan(tb, kPcScanB, ir_b, scan / 2, 16, 40);
        // Dataflow bitmap: scattered single hits.
        for (std::size_t q = 0; q < 1500; ++q) {
            tb.load(kPcBitmap, bitmap + (rng() % 262144) * 4, 4,
                    kNoDep, false, 6);
        }
        // Symbol tree descents (mostly cache-resident).
        for (std::size_t d = 0; d < 600; ++d) {
            Addr node = nodes[0];
            TraceRef ref = kNoDep;
            while (node != 0) {
                tb.load(kPcVal, node, 4, ref, true, 6);
                bool left = rng() % 2 == 0;
                auto [child, cref] = tb.loadPointer(
                    kPcChild, node + (left ? 4u : 8u), ref, 3);
                node = child;
                ref = cref;
            }
        }
    }
    return std::move(tb).finish();
}

/**
 * parser — dictionary tries that mostly fit in the L2: pointer-
 * intensive in structure but with little prefetching headroom, the
 * near-neutral row of Table 6.
 */
Workload
buildParser(InputSet input)
{
    TraceBuilder tb("parser");
    auto rng = workloadRng("parser", input);
    const bool train = input == InputSet::Train;
    const std::size_t node_count = train ? 6000 : 14000;
    const std::size_t lookups = train ? 2400 : 9000;

    // Trie node (64 B): {ch @0, child0..7 @4..32, data @36..}.
    std::vector<Addr> nodes = allocSequential(tb, node_count, 64);
    for (std::size_t i = 0; i < node_count; ++i) {
        Addr node = nodes[i];
        tb.mem().write(node, 4, static_cast<std::uint32_t>(rng() % 26));
        for (unsigned c = 0; c < 8; ++c) {
            std::size_t child = i * 4 + c + 1;
            tb.mem().writePointer(node + 4 + 4 * c,
                                  child < node_count ? nodes[child]
                                                     : 0);
        }
        tb.mem().write(node + 36, 4, 0x0a0b0c0du);
    }

    constexpr Addr kPcCh = 0x417000, kPcChild = 0x417010;

    tb.beginTimed();
    for (std::size_t l = 0; l < lookups; ++l) {
        Addr node = nodes[0];
        TraceRef ref = kNoDep;
        for (unsigned d = 0; d < 6 && node != 0; ++d) {
            tb.load(kPcCh, node, 4, ref, true, 8);
            unsigned c = rng() % 8;
            auto [child, cref] =
                tb.loadPointer(kPcChild + 4 * c, node + 4 + 4 * c, ref,
                               5);
            node = child;
            ref = cref;
        }
    }
    return std::move(tb).finish();
}

/**
 * art — neural-net training: dominated by streaming float arrays the
 * stream prefetcher eats for breakfast; float bit patterns mostly
 * don't look like heap pointers, so CDP finds little (and what it
 * finds is noise — its accuracy is 1.9% in Table 1).
 */
Workload
buildArt(InputSet input)
{
    TraceBuilder tb("art");
    auto rng = workloadRng("art", input);
    const bool train = input == InputSet::Train;
    const std::size_t passes = train ? 1 : 2;
    const std::size_t scan = train ? 8000 : 20000;

    Addr weights_f = tb.heap().allocate(2 * 1024 * 1024, 128);
    Addr weights_b = tb.heap().allocate(2 * 1024 * 1024, 128);
    // Fill with float-looking values; ~3% land in [2.0, 4.0) whose
    // top byte (0x40) matches the heap and fools the CDP predictor.
    for (std::size_t i = 0; i < 2048; ++i) {
        Addr spot_f = weights_f + (rng() % 524288) * 4;
        Addr spot_b = weights_b + (rng() % 524288) * 4;
        tb.mem().write(spot_f, 4, 0x40000000u + (rng() & 0x7fffffu));
        tb.mem().write(spot_b, 4, 0x3f000000u + (rng() & 0xffffu));
    }

    // Small category list walked between scans.
    const std::size_t cats = 2000;
    std::vector<Addr> cat_addrs = allocShuffled(tb, cats, 64, rng);
    for (std::size_t i = 0; i < cats; ++i) {
        tb.mem().write(cat_addrs[i], 4, static_cast<std::uint32_t>(i));
        tb.mem().writePointer(cat_addrs[i] + 4,
                              i + 1 < cats ? cat_addrs[i + 1] : 0);
        tb.mem().write(cat_addrs[i] + 8, 4, 0x3f490fdbu);
    }

    constexpr Addr kPcF = 0x418000, kPcB = 0x418004;
    constexpr Addr kPcCat = 0x418010, kPcCatNext = 0x418014;

    tb.beginTimed();
    for (std::size_t p = 0; p < passes; ++p) {
        streamScan(tb, kPcF, weights_f, scan, 16, 40);
        streamScan(tb, kPcB, weights_b, scan, 16, 40);
        Addr cat = cat_addrs[0];
        TraceRef ref = kNoDep;
        for (std::size_t i = 0; i < 2 * cats && cat != 0; ++i) {
            tb.load(kPcCat, cat, 4, ref, true, 5);
            auto [next, nref] =
                tb.loadPointer(kPcCatNext, cat + 4, ref, 3);
            cat = next;
            ref = nref;
        }
    }
    return std::move(tb).finish();
}

/**
 * ammp — molecular dynamics: a scattered atom list (LDS, prefetched
 * along next-chains with a short co-residency lookahead) where each
 * atom streams its coordinate block (covered by the stream
 * prefetcher). Both prefetchers are productive; the paper reports
 * its biggest non-health gain here.
 */
Workload
buildAmmp(InputSet input)
{
    TraceBuilder tb("ammp");
    auto rng = workloadRng("ammp", input);
    const bool train = input == InputSet::Train;
    const std::size_t atoms = train ? 8192 : 16384;
    const std::size_t passes = train ? 1 : 2;

    // Atom (64 B): {next @0, coordPtr @4, type @8, charge @12..}.
    // The co-resident atom is ~12 hops ahead, so chain prefetches
    // land a useful distance in front of the walk. Coordinate blocks
    // are scattered (the stream prefetcher cannot cover them, per the
    // paper's Figure 1) but reachable through the coordPtr PG.
    std::vector<Addr> atom_addrs = allocInterleaved(tb, atoms, 64, 12);
    std::vector<Addr> coord_blocks =
        allocShuffled(tb, atoms, 128, rng);
    for (std::size_t i = 0; i < atoms; ++i) {
        Addr atom = atom_addrs[i];
        tb.mem().writePointer(atom,
                              i + 1 < atoms ? atom_addrs[i + 1] : 0);
        tb.mem().writePointer(atom + 4, coord_blocks[i]);
        tb.mem().write(atom + 8, 4, rng() % 8);
        tb.mem().write(atom + 12, 4, 0x3e99999au);
        tb.mem().write(coord_blocks[i], 4, 0x3f000000u);
    }

    constexpr Addr kPcNext = 0x419000, kPcType = 0x419004;
    constexpr Addr kPcCoordPtr = 0x419008;
    constexpr Addr kPcCoord = 0x419010, kPcForce = 0x419020;

    tb.beginTimed();
    for (std::size_t p = 0; p < passes; ++p) {
        Addr atom = atom_addrs[0];
        TraceRef ref = kNoDep;
        while (atom != 0) {
            tb.load(kPcType, atom + 8, 4, ref, true, 14);
            auto [base, base_ref] =
                tb.loadPointer(kPcCoordPtr, atom + 4, ref, 2);
            for (unsigned q = 0; q < 4; ++q)
                tb.load(kPcCoord, base + q * 32, 4, base_ref, true, 8);
            tb.store(kPcForce, base + 96, 4, rng(), base_ref, true, 4);
            auto [next, nref] = tb.loadPointer(kPcNext, atom, ref, 8);
            atom = next;
            ref = nref;
        }
    }
    return std::move(tb).finish();
}

} // namespace workloads
} // namespace ecdp
