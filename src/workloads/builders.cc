#include "workloads/builders.hh"

#include <algorithm>
#include <cassert>
#include <functional>

namespace ecdp
{

std::mt19937
workloadRng(const std::string &name, InputSet input)
{
    std::uint32_t seed =
        static_cast<std::uint32_t>(std::hash<std::string>{}(name));
    seed = seed * 2654435761u + (input == InputSet::Train ? 17u : 1u);
    return std::mt19937(seed);
}

std::vector<Addr>
allocSequential(TraceBuilder &tb, std::size_t count, std::size_t bytes,
                std::size_t align)
{
    std::vector<Addr> addrs;
    addrs.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        addrs.push_back(tb.heap().allocate(bytes, align));
    return addrs;
}

std::vector<Addr>
allocInterleaved(TraceBuilder &tb, std::size_t count, std::size_t bytes,
                 unsigned ways)
{
    assert(ways > 0);
    std::vector<Addr> physical = allocSequential(tb, count, bytes);
    // Read the physical array column-wise: adjacent logical objects
    // end up `rows` objects apart in memory, each used exactly once.
    std::size_t rows = (count + ways - 1) / ways;
    std::vector<Addr> logical;
    logical.reserve(count);
    for (std::size_t start = 0; start < rows; ++start) {
        for (std::size_t p = start; p < count; p += rows)
            logical.push_back(physical[p]);
    }
    assert(logical.size() == count);
    return logical;
}

std::vector<Addr>
allocShuffled(TraceBuilder &tb, std::size_t count, std::size_t bytes,
              std::mt19937 &rng)
{
    std::vector<Addr> addrs = allocSequential(tb, count, bytes);
    std::shuffle(addrs.begin(), addrs.end(), rng);
    return addrs;
}

void
streamScan(TraceBuilder &tb, Addr pc, Addr base, std::size_t count,
           std::uint32_t stride, unsigned gap)
{
    for (std::size_t i = 0; i < count; ++i) {
        tb.load(pc, base + i * stride, 4, kNoDep, false, gap);
    }
}

std::uint32_t
packLookupKey(std::size_t bucket, std::size_t slot, unsigned slot_bits)
{
    assert(slot_bits > 0 && slot_bits < 32);
    // slot+1 must fit in the slot field (the +1 keeps keys nonzero).
    assert(slot + 1 < (std::size_t{1} << slot_bits));
    // bucket must fit in the remaining bits or keys from different
    // buckets would alias.
    assert(bucket < (std::size_t{1} << (32 - slot_bits)));
    return static_cast<std::uint32_t>((bucket << slot_bits) | (slot + 1));
}

} // namespace ecdp
