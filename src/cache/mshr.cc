// simlint: hot-path
#include "cache/mshr.hh"

#include <cassert>

namespace ecdp
{

MshrFile::MshrFile(unsigned entries)
    : entries_(entries), addrs_(entries, 0), free_(entries)
{
    assert(entries > 0);
    assert(entries <= 64 && "validity bitmask is 64 bits wide");
}

Mshr &
MshrFile::allocate(Addr block_addr)
{
    assert(!full());
    assert(!find(block_addr));
    // Lowest clear bit == first invalid entry, matching the original
    // linear scan's allocation order.
    const unsigned i = static_cast<unsigned>(std::countr_one(validMask_));
    assert(i < entries_.size());
    Mshr &entry = entries_[i];
    entry = Mshr{};
    entry.valid = true;
    entry.blockAddr = block_addr;
    addrs_[i] = block_addr.raw();
    validMask_ |= std::uint64_t{1} << i;
    --free_;
    ++allocations_;
    return entry;
}

void
MshrFile::release(Mshr &entry)
{
    assert(entry.valid);
    const auto i = static_cast<std::size_t>(&entry - entries_.data());
    assert(i < entries_.size());
    entry.valid = false;
    validMask_ &= ~(std::uint64_t{1} << i);
    ++free_;
    ++releases_;
}

void
MshrFile::ripe(Cycle now, std::vector<Mshr *> &out)
{
    out.clear();
    for (std::uint64_t mask = validMask_; mask; mask &= mask - 1) {
        const unsigned i = static_cast<unsigned>(std::countr_zero(mask));
        if (entries_[i].fillAt <= now)
            out.push_back(&entries_[i]);
    }
}

} // namespace ecdp
