#include "cache/mshr.hh"

#include <cassert>

namespace ecdp
{

MshrFile::MshrFile(unsigned entries)
    : entries_(entries), free_(entries)
{
    assert(entries > 0);
}

Mshr *
MshrFile::find(Addr block_addr)
{
    for (Mshr &entry : entries_) {
        if (entry.valid && entry.blockAddr == block_addr)
            return &entry;
    }
    return nullptr;
}

Mshr &
MshrFile::allocate(Addr block_addr)
{
    assert(!full());
    assert(!find(block_addr));
    for (Mshr &entry : entries_) {
        if (!entry.valid) {
            entry = Mshr{};
            entry.valid = true;
            entry.blockAddr = block_addr;
            --free_;
            ++allocations_;
            return entry;
        }
    }
    assert(false && "MshrFile::allocate with no free entry");
    __builtin_unreachable();
}

void
MshrFile::release(Mshr &entry)
{
    assert(entry.valid);
    entry.valid = false;
    ++free_;
    ++releases_;
}

std::vector<Mshr *>
MshrFile::ripe(Cycle now)
{
    std::vector<Mshr *> result;
    for (Mshr &entry : entries_) {
        if (entry.valid && entry.fillAt <= now)
            result.push_back(&entry);
    }
    return result;
}

} // namespace ecdp
