/**
 * @file
 * Set-associative cache model with the per-prefetcher "prefetched" tag
 * bits the paper's feedback mechanism relies on (Section 4.1), plus
 * pointer-group bookkeeping used for profiling and the Figure 4/10
 * usefulness analyses.
 *
 * The tag store is laid out structure-of-arrays: a set probe walks one
 * contiguous lane of 64-bit tags (a single cache line at 8-way
 * associativity) instead of striding across full per-block records.
 * The cold per-block payload (dirty/prefetched bits, pointer-group
 * attribution) lives in a parallel lane touched only on hits.
 */
// simlint: hot-path

#ifndef ECDP_CACHE_CACHE_HH
#define ECDP_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "memsim/block_geometry.hh"
#include "memsim/types.hh"

namespace ecdp
{

/** Which prefetcher fetched a block (at most one at a time). */
enum class PrefetchSource : std::uint8_t { None = 0, Primary, Lds };

/**
 * "No engine": sentinel for the per-block prefetched-owner tag and the
 * MSHR engine field. Real owners are indices into the MemorySystem's
 * engine stack (0 = the legacy primary slot, 1 = the legacy LDS slot),
 * so the all-ones byte can never collide with one.
 */
inline constexpr std::uint8_t kNoPrefetchOwner = 0xff;

/**
 * Identity of a pointer group PG(L, X): the static load L (by PC) and
 * the signed pointer-slot offset X (in pointer-sized words) from the
 * byte the load accessed (Section 3 of the paper).
 */
struct PgId
{
    Addr loadPc = 0;
    std::int16_t slot = 0;

    bool operator==(const PgId &other) const = default;
};

/** Hash functor so PgId can key unordered_map. */
struct PgIdHash
{
    std::size_t operator()(const PgId &id) const
    {
        return std::hash<std::uint64_t>{}(
            (std::uint64_t{id.loadPc.raw()} << 16) ^
            static_cast<std::uint16_t>(id.slot));
    }
};

/**
 * Cold per-block state of one cache block. Validity, tag and LRU order
 * live in the Cache's hot lanes, not here: a lookup touches this
 * record only on a hit.
 */
struct CacheBlock
{
    bool dirty = false;
    /**
     * The paper's prefetched-by tag, generalized: the engine-stack
     * index of the prefetcher that fetched the block, or
     * kNoPrefetchOwner for demand fills. Engine 0 is the legacy
     * "prefetched-stream" bit, engine 1 the "prefetched-CDP" bit.
     */
    std::uint8_t prefetchOwner = kNoPrefetchOwner;
    /** PG that caused the CDP prefetch of this block (stats only). */
    bool pgValid = false;
    PgId pg;
    /** Recursion depth of the CDP prefetch that fetched the block. */
    std::uint8_t cdpDepth = 0;
    /** Issue-to-fill latency of the prefetch that fetched the block
     *  (stats only; drives the Section 4 contention analysis). */
    Cycle prefetchLatency{};
};

/**
 * A single level of set-associative cache with true-LRU replacement.
 *
 * The cache is a tag store only: data values live in the simulator's
 * SimMemory image. Timing lives in the memory system, not here.
 */
class Cache
{
  public:
    /**
     * @param name Display name ("L1D", "L2").
     * @param size_bytes Total capacity.
     * @param assoc Ways per set.
     * @param block_bytes Line size (power of two).
     */
    Cache(std::string name, std::uint32_t size_bytes, std::uint32_t assoc,
          std::uint32_t block_bytes);

    /** Address of the block containing @p addr. */
    Addr blockAddr(Addr addr) const { return geom_.alignDown(addr); }

    /** Byte offset of @p addr within its block. */
    std::uint32_t blockOffset(Addr addr) const
    {
        return geom_.offsetIn(addr);
    }

    /** Block geometry (size/shift/mask) of this cache's lines. */
    const BlockGeometry &geom() const { return geom_; }

    std::uint32_t blockBytes() const { return geom_.blockBytes(); }
    std::uint32_t numBlocks() const { return numBlocks_; }

    /**
     * Look up @p addr.
     *
     * @param update_lru When true, a hit refreshes LRU state.
     * @return The block's cold payload on a hit, nullptr on a miss.
     */
    CacheBlock *lookup(Addr addr, bool update_lru = true)
    {
        const std::uint32_t base = setIndex(addr) * assoc_;
        const std::uint64_t tag = tagOf(addr).raw();
        const std::uint64_t *tags = tags_.data() + base;
        for (std::uint32_t way = 0; way < assoc_; ++way) {
            if (tags[way] == tag) {
                if (update_lru)
                    lastUse_[base + way] = ++lruClock_;
                return &payload_[base + way];
            }
        }
        return nullptr;
    }

    const CacheBlock *peek(Addr addr) const
    {
        const std::uint32_t base = setIndex(addr) * assoc_;
        const std::uint64_t tag = tagOf(addr).raw();
        const std::uint64_t *tags = tags_.data() + base;
        for (std::uint32_t way = 0; way < assoc_; ++way) {
            if (tags[way] == tag)
                return &payload_[base + way];
        }
        return nullptr;
    }

    /** Evicted-block description returned by insert(). */
    struct Victim
    {
        bool valid = false;
        bool dirty = false;
        Addr addr = 0;
        /** Engine that had prefetched the victim (kNoPrefetchOwner if
         *  it was demand-fetched or already consumed). */
        std::uint8_t prefetchOwner = kNoPrefetchOwner;
    };

    /**
     * Insert the block containing @p addr, evicting the LRU way.
     *
     * @param owner Engine-stack index of the prefetcher that fetched
     *        the block (kNoPrefetchOwner = demand fill).
     * @return Description of the victim (valid = a block was evicted).
     */
    Victim insert(Addr addr, std::uint8_t owner = kNoPrefetchOwner);

    /** Invalidate the block containing @p addr if present. */
    void invalidate(Addr addr);

    /** Number of evictions of valid blocks so far (interval clock). */
    std::uint64_t evictions() const { return evictions_; }

    /**
     * Monotonic counter of content changes (inserts and invalidates;
     * LRU refreshes do not count). Lets callers that memoize
     * residency-dependent decisions detect when a re-probe is needed.
     */
    std::uint64_t contentVersion() const { return contentVersion_; }

    /** End-of-run census of still-resident unused prefetches (legacy
     *  two-slot view: owner 0 = primary, owner 1 = lds). */
    struct PrefetchedResident
    {
        std::uint64_t primary = 0;
        std::uint64_t lds = 0;
    };

    /** Count resident blocks whose prefetched tag bit is still set
     *  (i.e. prefetched but never consumed by a demand). */
    PrefetchedResident prefetchedResident() const;

    /** Per-engine census: out[i] counts resident blocks still owned by
     *  engine i (owners >= out.size() are ignored). */
    void prefetchedResidentByOwner(std::vector<std::uint64_t> &out) const;

    const std::string &name() const { return name_; }

    /** Extra tag storage (bits) for the two prefetched bits/block,
     *  for the Table 7 hardware-cost accounting. */
    std::uint64_t prefetchedBitsStorageBits() const
    {
        return std::uint64_t{numBlocks_} * 2;
    }

  private:
    /** Tag-lane sentinel for an empty way. Real tags are block
     *  *numbers* of 32-bit byte addresses, so they can never collide
     *  with an all-ones 64-bit value. */
    static constexpr std::uint64_t kEmptyWay = ~std::uint64_t{0};

    std::uint32_t setIndex(Addr addr) const
    {
        return geom_.blockOf(addr).raw() & (numSets_ - 1);
    }

    /** The tag store keys blocks by their full block number. */
    BlockAddr tagOf(Addr addr) const { return geom_.blockOf(addr); }

    std::string name_;
    BlockGeometry geom_;
    std::uint32_t assoc_;
    std::uint32_t numSets_;
    std::uint32_t numBlocks_;
    std::uint64_t lruClock_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t contentVersion_ = 0;
    /** @{ Structure-of-arrays block state, all indexed
     *  set * assoc + way. Hot probe lane first. */
    std::vector<std::uint64_t> tags_;
    std::vector<std::uint64_t> lastUse_;
    std::vector<CacheBlock> payload_;
    /** @} */
};

} // namespace ecdp

#endif // ECDP_CACHE_CACHE_HH
