/**
 * @file
 * Miss status holding registers for the last-level cache.
 *
 * Besides the usual merge-and-track duties, each entry records the
 * block offset and ECDP hint bit vector of the triggering load, which
 * is exactly the per-MSHR storage the paper's Table 7 accounts for
 * (32 entries x (7 + 16) bits): the content-directed prefetcher needs
 * both at fill time to decide which pointers in the block to prefetch.
 *
 * The file keeps a hot probe lane — a packed array of block addresses
 * plus a validity bitmask — beside the cold entry records. find() is
 * called once per prefetch-issue attempt (every busy cycle), so it
 * walks the 8-byte-stride lane instead of the full Mshr structs.
 */
// simlint: hot-path

#ifndef ECDP_CACHE_MSHR_HH
#define ECDP_CACHE_MSHR_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "cache/cache.hh"
#include "memsim/types.hh"

namespace ecdp
{

/** One in-flight miss. */
struct Mshr
{
    bool valid = false;
    Addr blockAddr = 0;
    /** Completion time of the fill, fixed when DRAM accepts it. */
    Cycle fillAt{};
    /** Cycle the request was accepted by DRAM. */
    Cycle issuedAt{};
    /** True once any demand request waits on this fill. */
    bool demand = false;
    /** True when a store wrote the block while it was in flight. */
    bool dirty = false;
    /** Engine-stack index of the prefetcher that created the entry
     *  (kNoPrefetchOwner for demand misses). */
    std::uint8_t engine = kNoPrefetchOwner;

    /** @{ ECDP scan context (demand misses only). */
    Addr loadPc = 0;
    std::uint8_t blockByteOffset = 0;
    bool scanOnFill = false;
    /** @} */

    /** @{ CDP recursion context (CDP prefetch misses only). */
    std::uint8_t cdpDepth = 0;
    PgId pgRoot{};
    bool pgRootValid = false;
    /** @} */
};

/**
 * Fully-associative MSHR file with merge semantics.
 */
class MshrFile
{
  public:
    /** @param entries Capacity (32 in the baseline, Table 5; at most
     *  64, the width of the validity bitmask). */
    explicit MshrFile(unsigned entries);

    /** Find the in-flight entry for @p block_addr, or nullptr. */
    Mshr *find(Addr block_addr)
    {
        const std::uint32_t raw = block_addr.raw();
        for (std::uint64_t mask = validMask_; mask; mask &= mask - 1) {
            const unsigned i =
                static_cast<unsigned>(std::countr_zero(mask));
            if (addrs_[i] == raw)
                return &entries_[i];
        }
        return nullptr;
    }

    /** True when no entry is free. */
    bool full() const { return free_ == 0; }

    /** Number of valid entries. */
    unsigned inFlight() const
    {
        return static_cast<unsigned>(entries_.size()) - free_;
    }

    /**
     * Allocate an entry for @p block_addr (must not be full, and no
     * entry for the block may exist).
     * @return The fresh entry for the caller to fill in.
     */
    Mshr &allocate(Addr block_addr);

    /** Release @p entry after its fill completes. */
    void release(Mshr &entry);

    /**
     * Append all valid entries whose fill time is <= @p now to
     * @p out (cleared first), in entry-index order. The caller owns
     * the scratch buffer so a per-event call costs no allocation once
     * the buffer has grown to the file's capacity.
     */
    void ripe(Cycle now, std::vector<Mshr *> &out);

    /** Validity bitmask: bit i set iff entries()[i] is in flight.
     *  Snapshot it to iterate while releasing entries. */
    std::uint64_t validMask() const { return validMask_; }

    /**
     * Raw entry storage for the memory system's fill loop. Entries
     * are stable (fixed vector); releasing during iteration is safe.
     * Callers must not flip Mshr::valid directly — allocate() and
     * release() own it (and the validity bitmask beside it).
     */
    std::vector<Mshr> &entries() { return entries_; }

    /** Entry at index @p i (paired with validMask() iteration). */
    Mshr &entry(unsigned i) { return entries_[i]; }

    /** Earliest fill time among valid entries (max Cycle if none). */
    Cycle earliestFill() const
    {
        Cycle earliest = Cycle{~std::uint64_t{0}};
        for (std::uint64_t mask = validMask_; mask; mask &= mask - 1) {
            const unsigned i =
                static_cast<unsigned>(std::countr_zero(mask));
            if (entries_[i].fillAt < earliest)
                earliest = entries_[i].fillAt;
        }
        return earliest;
    }

    /** Table 7: per-entry ECDP storage (7-bit offset + hint vector). */
    std::uint64_t ecdpStorageBits(unsigned hint_vector_bits) const
    {
        return entries_.size() * (7ull + hint_vector_bits);
    }

    /** @{ Lifetime accounting: allocations == releases + inFlight()
     *  must hold at any instant (the conservation-law tests check it
     *  at end of run). The sum also serves as an occupancy version:
     *  it moves exactly when the set of in-flight blocks changes. */
    std::uint64_t allocations() const { return allocations_; }
    std::uint64_t releases() const { return releases_; }
    /** @} */

  private:
    std::vector<Mshr> entries_;
    /** Hot probe lane: addrs_[i] mirrors entries_[i].blockAddr for
     *  every bit i set in validMask_. */
    std::vector<std::uint32_t> addrs_;
    std::uint64_t validMask_ = 0;
    unsigned free_;
    std::uint64_t allocations_ = 0;
    std::uint64_t releases_ = 0;
};

} // namespace ecdp

#endif // ECDP_CACHE_MSHR_HH
