// simlint: hot-path
#include "cache/cache.hh"

#include <bit>
#include <cassert>
#include <utility>

namespace ecdp
{

Cache::Cache(std::string name, std::uint32_t size_bytes,
             std::uint32_t assoc, std::uint32_t block_bytes)
    : name_(std::move(name)), geom_(block_bytes), assoc_(assoc)
{
    assert(std::has_single_bit(block_bytes));
    assert(size_bytes % (assoc * block_bytes) == 0);
    numSets_ = size_bytes / (assoc * block_bytes);
    assert(std::has_single_bit(numSets_));
    numBlocks_ = numSets_ * assoc_;
    tags_.assign(numBlocks_, kEmptyWay);
    lastUse_.assign(numBlocks_, 0);
    payload_.resize(numBlocks_);
}

Cache::Victim
Cache::insert(Addr addr, std::uint8_t owner)
{
    const std::uint32_t base = setIndex(addr) * assoc_;
    const std::uint64_t tag = tagOf(addr).raw();
    std::uint64_t *tags = tags_.data() + base;

    // Victim priority: matching tag (refresh) > invalid way > true LRU
    // (earliest way wins ties, as before the SoA layout).
    std::uint32_t victim_way = assoc_;
    for (std::uint32_t way = 0; way < assoc_ && victim_way == assoc_;
         ++way) {
        if (tags[way] == tag)
            victim_way = way;
    }
    for (std::uint32_t way = 0; way < assoc_ && victim_way == assoc_;
         ++way) {
        if (tags[way] == kEmptyWay)
            victim_way = way;
    }
    if (victim_way == assoc_) {
        victim_way = 0;
        for (std::uint32_t way = 1; way < assoc_; ++way) {
            if (lastUse_[base + way] < lastUse_[base + victim_way])
                victim_way = way;
        }
    }

    const std::uint64_t old_tag = tags[victim_way];
    CacheBlock &block = payload_[base + victim_way];

    Victim victim;
    if (old_tag != kEmptyWay && old_tag != tag) {
        victim.valid = true;
        victim.dirty = block.dirty;
        victim.addr =
            geom_.baseOf(BlockAddr{static_cast<std::uint32_t>(old_tag)});
        victim.prefetchOwner = block.prefetchOwner;
        ++evictions_;
    }

    const bool refresh = old_tag == tag;
    tags[victim_way] = tag;
    lastUse_[base + victim_way] = ++lruClock_;
    if (!refresh) {
        ++contentVersion_;
        block.dirty = false;
        block.prefetchOwner = owner;
        block.pgValid = false;
        block.pg = PgId{};
        block.cdpDepth = 0;
        block.prefetchLatency = Cycle{};
    }
    return victim;
}

Cache::PrefetchedResident
Cache::prefetchedResident() const
{
    PrefetchedResident census;
    for (std::uint32_t i = 0; i < numBlocks_; ++i) {
        if (tags_[i] == kEmptyWay)
            continue;
        if (payload_[i].prefetchOwner == 0)
            ++census.primary;
        else if (payload_[i].prefetchOwner == 1)
            ++census.lds;
    }
    return census;
}

void
Cache::prefetchedResidentByOwner(std::vector<std::uint64_t> &out) const
{
    for (std::uint32_t i = 0; i < numBlocks_; ++i) {
        if (tags_[i] == kEmptyWay)
            continue;
        const std::uint8_t owner = payload_[i].prefetchOwner;
        if (owner < out.size())
            ++out[owner];
    }
}

void
Cache::invalidate(Addr addr)
{
    const std::uint32_t base = setIndex(addr) * assoc_;
    const std::uint64_t tag = tagOf(addr).raw();
    for (std::uint32_t way = 0; way < assoc_; ++way) {
        if (tags_[base + way] == tag) {
            tags_[base + way] = kEmptyWay;
            ++contentVersion_;
            return;
        }
    }
}

} // namespace ecdp
