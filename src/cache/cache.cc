#include "cache/cache.hh"

#include <bit>
#include <cassert>
#include <utility>

namespace ecdp
{

Cache::Cache(std::string name, std::uint32_t size_bytes,
             std::uint32_t assoc, std::uint32_t block_bytes)
    : name_(std::move(name)), geom_(block_bytes), assoc_(assoc)
{
    assert(std::has_single_bit(block_bytes));
    assert(size_bytes % (assoc * block_bytes) == 0);
    numSets_ = size_bytes / (assoc * block_bytes);
    assert(std::has_single_bit(numSets_));
    numBlocks_ = numSets_ * assoc_;
    blocks_.resize(numBlocks_);
}

CacheBlock *
Cache::lookup(Addr addr, bool update_lru)
{
    std::uint32_t set = setIndex(addr);
    BlockAddr tag = tagOf(addr);
    for (std::uint32_t way = 0; way < assoc_; ++way) {
        CacheBlock &block = blocks_[set * assoc_ + way];
        if (block.valid && block.tag == tag) {
            if (update_lru)
                block.lastUse = ++lruClock_;
            return &block;
        }
    }
    return nullptr;
}

const CacheBlock *
Cache::peek(Addr addr) const
{
    std::uint32_t set = setIndex(addr);
    BlockAddr tag = tagOf(addr);
    for (std::uint32_t way = 0; way < assoc_; ++way) {
        const CacheBlock &block = blocks_[set * assoc_ + way];
        if (block.valid && block.tag == tag)
            return &block;
    }
    return nullptr;
}

Cache::Victim
Cache::insert(Addr addr, PrefetchSource source)
{
    std::uint32_t set = setIndex(addr);
    BlockAddr tag = tagOf(addr);

    // Victim priority: matching tag (refresh) > invalid way > true LRU.
    CacheBlock *victim_block = nullptr;
    for (std::uint32_t way = 0; way < assoc_ && !victim_block; ++way) {
        CacheBlock &block = blocks_[set * assoc_ + way];
        if (block.valid && block.tag == tag)
            victim_block = &block;
    }
    for (std::uint32_t way = 0; way < assoc_ && !victim_block; ++way) {
        CacheBlock &block = blocks_[set * assoc_ + way];
        if (!block.valid)
            victim_block = &block;
    }
    if (!victim_block) {
        for (std::uint32_t way = 0; way < assoc_; ++way) {
            CacheBlock &block = blocks_[set * assoc_ + way];
            if (!victim_block || block.lastUse < victim_block->lastUse)
                victim_block = &block;
        }
    }

    Victim victim;
    if (victim_block->valid && victim_block->tag != tag) {
        victim.valid = true;
        victim.dirty = victim_block->dirty;
        victim.addr = geom_.baseOf(victim_block->tag);
        victim.wasPrefetchedPrimary = victim_block->prefetchedPrimary;
        victim.wasPrefetchedLds = victim_block->prefetchedLds;
        ++evictions_;
    }

    bool refresh = victim_block->valid && victim_block->tag == tag;
    victim_block->valid = true;
    victim_block->tag = tag;
    victim_block->lastUse = ++lruClock_;
    if (!refresh) {
        victim_block->dirty = false;
        victim_block->prefetchedPrimary = source == PrefetchSource::Primary;
        victim_block->prefetchedLds = source == PrefetchSource::Lds;
        victim_block->pgValid = false;
        victim_block->pg = PgId{};
        victim_block->cdpDepth = 0;
        victim_block->prefetchLatency = Cycle{};
    }
    return victim;
}

Cache::PrefetchedResident
Cache::prefetchedResident() const
{
    PrefetchedResident census;
    for (const CacheBlock &block : blocks_) {
        if (!block.valid)
            continue;
        if (block.prefetchedPrimary)
            ++census.primary;
        if (block.prefetchedLds)
            ++census.lds;
    }
    return census;
}

void
Cache::invalidate(Addr addr)
{
    if (CacheBlock *block = lookup(addr, false))
        block->valid = false;
}

} // namespace ecdp
