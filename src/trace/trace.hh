/**
 * @file
 * Dependency-annotated memory access traces.
 *
 * Workload programs execute real linked-data-structure code against a
 * SimMemory image and record every memory access here. Two properties
 * of the trace are essential to reproducing the paper:
 *
 *  1. every load carries the index of the load that *produced its
 *     address* (if any), so pointer-chasing loads serialize in the core
 *     timing model while streaming loads overlap, and
 *  2. stores carry their written value, so the simulator can keep its
 *     memory image time-correct and the content-directed prefetcher
 *     scans the pointer values the program would really have in memory.
 */

#ifndef ECDP_TRACE_TRACE_HH
#define ECDP_TRACE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "memsim/bump_allocator.hh"
#include "memsim/sim_memory.hh"
#include "memsim/types.hh"

namespace ecdp
{

/** Kind of a traced memory access. */
enum class AccessKind : std::uint8_t { Load, Store };

/** Index of a trace entry; kNoDep marks "no producer". */
using TraceRef = std::int64_t;
inline constexpr TraceRef kNoDep = -1;

/**
 * One memory access of the simulated program.
 */
struct TraceEntry
{
    /** Static instruction address of the load/store. */
    Addr pc = 0;
    /** Simulated virtual data address. */
    Addr vaddr = 0;
    /** Access size in bytes (1, 2, 4 or 8). */
    std::uint8_t size = 4;
    AccessKind kind = AccessKind::Load;
    /** True if this access is an LDS (pointer-chasing) access. Drives
     *  the Figure 1 oracle and benchmark classification. */
    bool isLds = false;
    /** Producer of this access' address: index of an earlier load whose
     *  value this address was computed from, or kNoDep. */
    TraceRef dep = kNoDep;
    /** Non-memory instructions dispatched before this access. */
    std::uint16_t nonMemBefore = 0;
    /** For stores: the value written (applied to the image in order). */
    std::uint64_t storeValue = 0;
};

/**
 * A complete runnable workload: the memory image at the start of the
 * timed region plus the access trace of the timed region.
 */
struct Workload
{
    std::string name;
    /** Heap/global image at the start of the timed region. */
    SimMemory image;
    std::vector<TraceEntry> trace;

    /** Total instructions the trace represents (memory + non-memory). */
    std::uint64_t instructionCount() const;
};

/**
 * Helper the workload kernels use to build a Workload.
 *
 * The kernel first constructs its data structures through mem() and
 * alloc() (the setup phase), then calls beginTimed() and records the
 * accesses of the measured traversal via load()/store().
 */
class TraceBuilder
{
  public:
    explicit TraceBuilder(std::string name);

    /** The generation-time memory image (always current). */
    SimMemory &mem() { return mem_; }
    const SimMemory &mem() const { return mem_; }

    /** The simulated heap allocator. */
    BumpAllocator &heap() { return heap_; }

    /** Snapshot the image: subsequent accesses are part of the trace. */
    void beginTimed();

    /**
     * Record a load.
     *
     * @param pc Static instruction address.
     * @param addr Data address (computed by the *generator*).
     * @param size Access size in bytes.
     * @param dep Trace index of the load that produced @p addr.
     * @param is_lds True for pointer-chasing accesses.
     * @param gap Non-memory instructions preceding this load.
     * @return This load's trace index, usable as a later dep.
     */
    TraceRef load(Addr pc, Addr addr, unsigned size = 4,
                  TraceRef dep = kNoDep, bool is_lds = false,
                  unsigned gap = 0);

    /**
     * Record a store and apply it to the generation-time image.
     * Parameters mirror load(); @p value is the data written.
     */
    TraceRef store(Addr pc, Addr addr, unsigned size, std::uint64_t value,
                   TraceRef dep = kNoDep, bool is_lds = false,
                   unsigned gap = 0);

    /**
     * Convenience: load a 4-byte pointer at @p addr, returning both the
     * pointer value (read from the image) and the trace index.
     */
    std::pair<Addr, TraceRef> loadPointer(Addr pc, Addr addr,
                                          TraceRef dep = kNoDep,
                                          unsigned gap = 0);

    /** Number of accesses recorded so far. */
    std::size_t size() const { return trace_.size(); }

    /** Finish: move the snapshot and trace into a Workload. */
    Workload finish() &&;

  private:
    std::string name_;
    SimMemory mem_;
    SimMemory snapshot_;
    bool timed_ = false;
    BumpAllocator heap_;
    std::vector<TraceEntry> trace_;
};

} // namespace ecdp

#endif // ECDP_TRACE_TRACE_HH
