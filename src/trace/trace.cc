#include "trace/trace.hh"

#include <cassert>
#include <utility>

namespace ecdp
{

std::uint64_t
Workload::instructionCount() const
{
    std::uint64_t total = trace.size();
    for (const TraceEntry &entry : trace)
        total += entry.nonMemBefore;
    return total;
}

TraceBuilder::TraceBuilder(std::string name)
    : name_(std::move(name))
{
}

void
TraceBuilder::beginTimed()
{
    assert(!timed_ && "beginTimed() called twice");
    snapshot_ = mem_.clone();
    timed_ = true;
}

TraceRef
TraceBuilder::load(Addr pc, Addr addr, unsigned size, TraceRef dep,
                   bool is_lds, unsigned gap)
{
    assert(timed_ && "load() before beginTimed()");
    assert(dep == kNoDep ||
           (dep >= 0 && dep < static_cast<TraceRef>(trace_.size())));
    TraceEntry entry;
    entry.pc = pc;
    entry.vaddr = addr;
    entry.size = static_cast<std::uint8_t>(size);
    entry.kind = AccessKind::Load;
    entry.isLds = is_lds;
    entry.dep = dep;
    entry.nonMemBefore = static_cast<std::uint16_t>(gap);
    trace_.push_back(entry);
    return static_cast<TraceRef>(trace_.size()) - 1;
}

TraceRef
TraceBuilder::store(Addr pc, Addr addr, unsigned size, std::uint64_t value,
                    TraceRef dep, bool is_lds, unsigned gap)
{
    assert(timed_ && "store() before beginTimed()");
    TraceEntry entry;
    entry.pc = pc;
    entry.vaddr = addr;
    entry.size = static_cast<std::uint8_t>(size);
    entry.kind = AccessKind::Store;
    entry.isLds = is_lds;
    entry.dep = dep;
    entry.nonMemBefore = static_cast<std::uint16_t>(gap);
    entry.storeValue = value;
    trace_.push_back(entry);
    mem_.write(addr, size, value);
    return static_cast<TraceRef>(trace_.size()) - 1;
}

std::pair<Addr, TraceRef>
TraceBuilder::loadPointer(Addr pc, Addr addr, TraceRef dep, unsigned gap)
{
    Addr value = mem_.readPointer(addr);
    TraceRef ref = load(pc, addr, kPointerBytes, dep, true, gap);
    return {value, ref};
}

Workload
TraceBuilder::finish() &&
{
    assert(timed_ && "finish() before beginTimed()");
    Workload workload;
    workload.name = std::move(name_);
    workload.image = std::move(snapshot_);
    workload.trace = std::move(trace_);
    return workload;
}

} // namespace ecdp
