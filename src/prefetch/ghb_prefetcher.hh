/**
 * @file
 * Global History Buffer prefetcher with global delta correlation
 * (G/DC), after Nesbit & Smith (HPCA-10) — third comparison point of
 * Section 6.3. Used *instead of* the stream prefetcher (the paper
 * found GHB performs best alone, since delta correlation also covers
 * streaming patterns).
 *
 * A 1k-entry FIFO holds the global L2 miss (block) addresses. On a
 * miss, the last two deltas form a key into an index table pointing at
 * the most recent previous occurrence of the same delta pair; the
 * deltas that followed that occurrence are replayed to generate up to
 * `degree` prefetch addresses.
 */

#ifndef ECDP_PREFETCH_GHB_PREFETCHER_HH
#define ECDP_PREFETCH_GHB_PREFETCHER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "memsim/block_geometry.hh"
#include "prefetch/prefetcher.hh"

namespace ecdp
{

/**
 * GHB G/DC prefetcher.
 */
class GhbPrefetcher
{
  public:
    /**
     * @param entries History buffer entries (1024 in the paper).
     * @param block_bytes L2 block size.
     */
    explicit GhbPrefetcher(unsigned entries = 1024,
                           unsigned block_bytes = 128);

    /** Prefetch degree knob (used when GHB is throttled). */
    void setDegree(unsigned degree) { degree_ = degree; }
    unsigned degree() const { return degree_; }

    /** Train on a demand miss and emit delta-correlated prefetches. */
    void onDemandMiss(Addr addr, std::vector<PrefetchRequest> &out);

    std::uint64_t storageBits() const;

  private:
    using Key = std::uint64_t;

    Key keyOf(std::int64_t d1, std::int64_t d2) const
    {
        return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(d1))
                << 32) |
               static_cast<std::uint32_t>(d2);
    }

    BlockGeometry geom_;
    unsigned degree_ = 4;
    /** Circular buffer of global miss block numbers. */
    std::vector<std::int64_t> history_;
    /** Monotonic count of pushes (head = writes_ % size). */
    std::uint64_t writes_ = 0;
    /** Delta-pair -> position (monotonic index) of last occurrence. */
    std::unordered_map<Key, std::uint64_t> indexTable_;
    /** Bound on index table size (modelling limited storage). */
    std::size_t indexCapacity_ = 512;
};

} // namespace ecdp

#endif // ECDP_PREFETCH_GHB_PREFETCHER_HH
