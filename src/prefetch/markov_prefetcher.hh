/**
 * @file
 * Markov prefetcher (Joseph & Grunwald, ISCA-24) — second comparison
 * point of Section 6.3.
 *
 * A large correlation table maps a miss (block) address to the miss
 * addresses that followed it in the past; on a miss, all recorded
 * successors are prefetched. The paper models a 1 MB table with 4
 * successor addresses per entry; so do we (65536 direct-mapped entries
 * x 16 bytes). Its inherent limits — it can only prefetch addresses it
 * has already seen miss, and the table thrashes on large pointer
 * working sets — are what the evaluation exposes.
 */

#ifndef ECDP_PREFETCH_MARKOV_PREFETCHER_HH
#define ECDP_PREFETCH_MARKOV_PREFETCHER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace ecdp
{

/**
 * The Markov (miss-correlation) prefetcher.
 */
class MarkovPrefetcher
{
  public:
    static constexpr unsigned kSuccessors = 4;

    /**
     * @param entries Correlation table entries (65536 = 1 MB with
     *        4 x 4-byte successors per entry).
     */
    explicit MarkovPrefetcher(unsigned entries = 65536);

    /**
     * Train on a demand miss and emit prefetches for the recorded
     * successors of the missing block.
     */
    void onDemandMiss(Addr block_addr, std::vector<PrefetchRequest> &out);

    std::uint64_t storageBits() const
    {
        return std::uint64_t{static_cast<std::uint32_t>(table_.size())} *
               (32 + kSuccessors * 32);
    }

  private:
    struct Entry
    {
        Addr key = 0;
        bool valid = false;
        std::array<Addr, kSuccessors> succ{};
        std::array<std::uint8_t, kSuccessors> age{};
    };

    Entry &entryFor(Addr block_addr)
    {
        return table_[(block_addr >> 7) % table_.size()];
    }

    std::vector<Entry> table_;
    Addr lastMiss_ = 0;
    bool lastMissValid_ = false;
};

} // namespace ecdp

#endif // ECDP_PREFETCH_MARKOV_PREFETCHER_HH
