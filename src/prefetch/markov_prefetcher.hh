/**
 * @file
 * Markov prefetcher (Joseph & Grunwald, ISCA-24) — second comparison
 * point of Section 6.3.
 *
 * A large correlation table maps a miss (block) address to the miss
 * addresses that followed it in the past; on a miss, all recorded
 * successors are prefetched. The paper models a 1 MB table with 4
 * successor addresses per entry; so do we (65536 direct-mapped entries
 * x 16 bytes). Its inherent limits — it can only prefetch addresses it
 * has already seen miss, and the table thrashes on large pointer
 * working sets — are what the evaluation exposes.
 */

#ifndef ECDP_PREFETCH_MARKOV_PREFETCHER_HH
#define ECDP_PREFETCH_MARKOV_PREFETCHER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "memsim/block_geometry.hh"
#include "prefetch/prefetcher.hh"

namespace ecdp
{

/**
 * The Markov (miss-correlation) prefetcher.
 */
class MarkovPrefetcher
{
  public:
    static constexpr unsigned kSuccessors = 4;

    /**
     * @param geom Block geometry of the cache level being prefetched
     *        (the correlation table is indexed by block number).
     * @param entries Correlation table entries (65536 = 1 MB with
     *        4 x 4-byte successors per entry).
     */
    explicit MarkovPrefetcher(const BlockGeometry &geom,
                              unsigned entries = 65536);

    /**
     * Train on a demand miss and emit prefetches for the recorded
     * successors of the missing block.
     */
    void onDemandMiss(BlockAddr block, std::vector<PrefetchRequest> &out);

    std::uint64_t storageBits() const
    {
        return std::uint64_t{static_cast<std::uint32_t>(table_.size())} *
               (32 + kSuccessors * 32);
    }

  private:
    struct Entry
    {
        BlockAddr key{};
        bool valid = false;
        std::array<BlockAddr, kSuccessors> succ{};
        std::array<std::uint8_t, kSuccessors> age{};
    };

    Entry &entryFor(BlockAddr block)
    {
        return table_[block.raw() % table_.size()];
    }

    BlockGeometry geom_;
    std::vector<Entry> table_;
    BlockAddr lastMiss_{};
    bool lastMissValid_ = false;
};

} // namespace ecdp

#endif // ECDP_PREFETCH_MARKOV_PREFETCHER_HH
