/**
 * @file
 * Dependence-based prefetching (Roth, Moshovos, Sohi — ASPLOS-8),
 * the first comparison point of Section 6.3.
 *
 * A potential-producer window (PPW) holds recently loaded values with
 * the PCs that loaded them. When a load issues, its base address is
 * searched in the PPW; a match establishes a producer->consumer
 * correlation (with the address offset) stored in the correlation
 * table (CT). From then on, whenever the producer load completes with
 * value V, a prefetch is issued to V + offset — one linked node ahead,
 * which is exactly the timeliness limitation the paper points out.
 *
 * Sizing per the paper: 256-entry CT + 128-entry PPW (~3 KB).
 */

#ifndef ECDP_PREFETCH_DBP_HH
#define ECDP_PREFETCH_DBP_HH

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace ecdp
{

/**
 * The dependence-based LDS prefetcher.
 */
class DependenceBasedPrefetcher
{
  public:
    /**
     * @param ppw_entries Potential-producer window size.
     * @param ct_entries Correlation table size.
     */
    explicit DependenceBasedPrefetcher(unsigned ppw_entries = 128,
                                       unsigned ct_entries = 256);

    /**
     * A load issued with data address @p addr: search the PPW for the
     * producer of that address and record the correlation.
     */
    void onLoadIssue(Addr pc, Addr addr);

    /**
     * A pointer-sized load completed having loaded @p value: record it
     * as a potential producer and, if @p pc is a known producer, emit
     * a prefetch for its consumer template.
     */
    void onLoadComplete(Addr pc, Addr value,
                        std::vector<PrefetchRequest> &out);

    std::uint64_t storageBits() const;

  private:
    struct PpwEntry
    {
        bool valid = false;
        Addr value = 0;
        Addr pc = 0;
    };

    struct CtEntry
    {
        bool valid = false;
        Addr producerPc = 0;
        std::int32_t offset = 0;
    };

    /** Max (addr - producer value) treated as a field offset. */
    static constexpr std::int32_t kMaxOffset = 128;

    std::vector<PpwEntry> ppw_;
    std::size_t ppwHead_ = 0;
    std::vector<CtEntry> ct_;
};

} // namespace ecdp

#endif // ECDP_PREFETCH_DBP_HH
