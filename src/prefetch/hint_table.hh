/**
 * @file
 * Compiler-provided prefetch hints for ECDP (Section 3 of the paper).
 *
 * The compiler attributes pointer groups PG(L, X) to each static load
 * L and marks the beneficial ones in a per-load hint bit vector. The
 * paper conveys the vector through a new load instruction; here the
 * table stands in for the hint-carrying ISA: the memory system looks
 * hints up by the PC of the missing load.
 *
 * Slot offsets X are in pointer-sized (4-byte) words relative to the
 * word the load accessed, and can be negative (the paper's footnote 6:
 * a negative bit vector is kept as well). With 128-byte blocks the
 * offset range is [-31, +31]; one 32-bit positive and one 32-bit
 * negative mask cover it.
 */

#ifndef ECDP_PREFETCH_HINT_TABLE_HH
#define ECDP_PREFETCH_HINT_TABLE_HH

#include <cstdint>
#include <unordered_map>

#include "memsim/types.hh"

namespace ecdp
{

/** Per-load hint bit vectors (positive and negative offsets). */
struct PrefetchHint
{
    std::uint32_t pos = 0;
    std::uint32_t neg = 0;

    /** Is the PG at word offset @p slot marked beneficial? */
    bool allows(int slot) const
    {
        if (slot >= 0)
            return slot < 32 && (pos >> slot) & 1u;
        int idx = -slot - 1;
        return idx < 32 && (neg >> idx) & 1u;
    }

    /** Mark the PG at word offset @p slot beneficial. */
    void set(int slot)
    {
        if (slot >= 0 && slot < 32)
            pos |= 1u << slot;
        else if (slot < 0 && -slot - 1 < 32)
            neg |= 1u << (-slot - 1);
    }

    /** True when no PG of this load is beneficial. */
    bool empty() const { return pos == 0 && neg == 0; }
};

/**
 * All hints the profiling compiler emitted for one program.
 */
class HintTable
{
  public:
    /** Hint for load @p pc, or nullptr when the load has none. */
    const PrefetchHint *find(Addr pc) const
    {
        auto it = hints_.find(pc);
        return it == hints_.end() ? nullptr : &it->second;
    }

    /** Find-or-create the hint entry for load @p pc. */
    PrefetchHint &entry(Addr pc) { return hints_[pc]; }

    std::size_t size() const { return hints_.size(); }
    bool empty() const { return hints_.empty(); }

    auto begin() const { return hints_.begin(); }
    auto end() const { return hints_.end(); }

    /** Bits of hint vector carried per load (Table 7 accounting). */
    static constexpr unsigned kVectorBits = 64;

  private:
    std::unordered_map<Addr, PrefetchHint> hints_;
};

} // namespace ecdp

#endif // ECDP_PREFETCH_HINT_TABLE_HH
