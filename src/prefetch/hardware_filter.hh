/**
 * @file
 * Hardware prefetch pollution filter after Zhuang & Lee (ICPP-32) —
 * the Section 6.4 comparison. A bit table remembers blocks whose last
 * prefetch went unused; prefetches to remembered blocks are dropped.
 * The paper models an 8 KB filter (65536 1-bit entries); so do we.
 */

#ifndef ECDP_PREFETCH_HARDWARE_FILTER_HH
#define ECDP_PREFETCH_HARDWARE_FILTER_HH

#include <cstdint>
#include <vector>

#include "memsim/types.hh"

namespace ecdp
{

/**
 * History-based prefetch filter.
 */
class HardwareFilter
{
  public:
    /** @param entries Bit-table entries (65536 = 8 KB). */
    explicit HardwareFilter(unsigned entries = 65536);

    /** Should a prefetch of @p block be allowed? */
    bool allow(BlockAddr block) const { return !bits_[index(block)]; }

    /** A prefetched block was evicted without being used. */
    void onPrefetchEvictedUnused(BlockAddr block)
    {
        bits_[index(block)] = true;
    }

    /** A prefetched block was used by a demand request. */
    void onPrefetchUsed(BlockAddr block)
    {
        bits_[index(block)] = false;
    }

    std::uint64_t storageBits() const { return bits_.size(); }

  private:
    std::size_t index(BlockAddr block) const
    {
        std::uint32_t v = block.raw();
        v ^= v >> 16;
        return v % bits_.size();
    }

    std::vector<bool> bits_;
};

} // namespace ecdp

#endif // ECDP_PREFETCH_HARDWARE_FILTER_HH
