#include "prefetch/stream_prefetcher.hh"

#include <bit>
#include <cassert>
#include <cstdlib>

namespace ecdp
{

StreamPrefetcher::StreamPrefetcher(unsigned streams, unsigned block_bytes)
    : geom_(block_bytes), streams_(streams)
{
    assert(streams > 0);
    assert(std::has_single_bit(block_bytes));
}

void
StreamPrefetcher::setAggressiveness(AggLevel level)
{
    level_ = level;
    const StreamAggConfig &cfg =
        kStreamAggTable[static_cast<unsigned>(level)];
    distance_ = cfg.distance;
    degree_ = cfg.degree;
}

void
StreamPrefetcher::reset()
{
    for (Stream &stream : streams_)
        stream.state = State::Invalid;
}

void
StreamPrefetcher::emit(std::int64_t block,
                       std::vector<PrefetchRequest> &out)
{
    if (block < 0 ||
        block > (std::int64_t{1} << (32 - geom_.blockShift())) - 1)
        return;
    PrefetchRequest req;
    req.blockAddr = geom_.baseOfSigned(block);
    req.source = PrefetchSource::Primary;
    out.push_back(req);
}

void
StreamPrefetcher::trigger(Addr addr, std::vector<PrefetchRequest> &out)
{
    const std::int64_t block = geom_.signedBlockOf(addr);

    // 1. Monitor-state streams: a trigger inside the monitored region
    //    advances the frontier up to `distance` blocks ahead of it,
    //    issuing at most `degree` prefetches.
    for (Stream &stream : streams_) {
        if (stream.state != State::Monitor)
            continue;
        std::int64_t lo = std::min(stream.monitorStart, stream.frontier);
        std::int64_t hi = std::max(stream.monitorStart, stream.frontier);
        if (block < lo || block > hi)
            continue;
        stream.lastUse = ++useClock_;
        unsigned issued = 0;
        while (issued < degree_ &&
               (stream.frontier - block) * stream.dir <
                   static_cast<std::int64_t>(distance_)) {
            stream.frontier += stream.dir;
            emit(stream.frontier, out);
            ++issued;
        }
        stream.monitorStart = block;
        return;
    }

    // 2. Training-state streams: a second miss within the window sets
    //    the direction and starts prefetching.
    for (Stream &stream : streams_) {
        if (stream.state != State::Training)
            continue;
        std::int64_t delta = block - stream.firstBlock;
        if (delta == 0) {
            stream.lastUse = ++useClock_;
            return;
        }
        if (std::abs(delta) > kTrainWindow)
            continue;
        stream.state = State::Monitor;
        stream.dir = delta > 0 ? 1 : -1;
        stream.monitorStart = stream.firstBlock;
        stream.frontier = block;
        stream.lastUse = ++useClock_;
        unsigned issued = 0;
        while (issued < degree_ &&
               (stream.frontier - block) * stream.dir <
                   static_cast<std::int64_t>(distance_)) {
            stream.frontier += stream.dir;
            emit(stream.frontier, out);
            ++issued;
        }
        return;
    }

    // 3. Allocate a fresh training entry over the LRU victim.
    Stream *victim = &streams_[0];
    for (Stream &stream : streams_) {
        if (stream.state == State::Invalid) {
            victim = &stream;
            break;
        }
        if (stream.lastUse < victim->lastUse)
            victim = &stream;
    }
    *victim = Stream{};
    victim->state = State::Training;
    victim->firstBlock = block;
    victim->lastUse = ++useClock_;
}

std::uint64_t
StreamPrefetcher::storageBits() const
{
    // Per entry: state (2) + dir (1) + two 25-bit block numbers +
    // frontier (25) + LRU (6).
    return streams_.size() * (2 + 1 + 25 * 3 + 6);
}

} // namespace ecdp
