/**
 * @file
 * DSPatch-style dual-spatial-pattern prefetcher, ported as a registry
 * engine (second competitor of Issue 7; after Bera et al., MICRO-52).
 *
 * DSPatch learns, per trigger PC, the bit pattern of blocks a program
 * touches inside a 2 KB spatial region — and keeps TWO patterns per
 * PC: CovP, the OR of every observed pattern (coverage-biased), and
 * AccP, the AND (accuracy-biased). The original uses DRAM-bandwidth
 * headroom to pick between them each prediction; here the choice rides
 * the paper's Table 2 aggressiveness lane instead, which is exactly
 * the knob the coordinated throttler drives: at Moderate/Aggressive
 * the engine predicts with CovP, throttled below that it falls back to
 * AccP. That gives the throttler a genuinely bimodal
 * accuracy/bandwidth profile to coordinate against stream and CDP.
 *
 * Patterns are anchored at the trigger offset (rotated within the
 * region) so one PC generalizes across regions, as in the paper.
 */

#ifndef ECDP_PREFETCH_DSPATCH_PREFETCHER_HH
#define ECDP_PREFETCH_DSPATCH_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "memsim/block_geometry.hh"
#include "prefetch/engine.hh"
#include "prefetch/prefetcher.hh"

namespace ecdp
{

/**
 * The dual-spatial-pattern engine, registered as "dspatch".
 * Primary-class: it targets spatially clustered (streaming-adjacent)
 * traffic, so like the stream prefetcher it bypasses the LDS hardware
 * filter.
 */
class DspatchPrefetcher final : public PrefetchEngine
{
  public:
    explicit DspatchPrefetcher(const EngineContext &ctx);

    const char *name() const override { return "dspatch"; }
    Class statClass() const override { return Class::Primary; }

    unsigned maxRequestsPerTrigger() const override
    {
        return regionBlocks_ - 1;
    }

    void setAggressiveness(AggLevel level) override { level_ = level; }
    void reset() override;

    void onDemandMiss(const TraceEntry &entry,
                      std::vector<PrefetchRequest> &out) override;

    std::uint64_t storageBits() const override;

  private:
    /** Spatial region size (2 KB in the paper). */
    static constexpr std::uint32_t kRegionBytes = 2048;
    /** Active (page-buffer) regions being recorded. */
    static constexpr std::size_t kBufferEntries = 64;
    /** Signature (per-PC pattern) table entries. */
    static constexpr std::size_t kSptEntries = 256;

    /** One region currently accumulating its access bitmap. */
    struct BufferEntry
    {
        bool valid = false;
        std::uint32_t regionTag = 0;
        Addr triggerPc = 0;
        std::uint32_t triggerOffset = 0;
        std::uint64_t accessed = 0;
    };

    /** Learned dual pattern of one trigger PC. */
    struct SptEntry
    {
        bool valid = false;
        std::uint32_t pcTag = 0;
        std::uint64_t covP = 0;
        std::uint64_t accP = 0;
    };

    std::uint64_t rotateToAnchor(std::uint64_t bitmap,
                                 std::uint32_t anchor) const;
    void retire(const BufferEntry &entry);

    BlockGeometry geom_;
    /** Blocks per region (<= 64 so a pattern fits one word). */
    std::uint32_t regionBlocks_;
    /** Geometry of whole regions (regionBlocks_ * blockBytes). */
    BlockGeometry regionGeom_;
    AggLevel level_ = AggLevel::Aggressive;
    std::vector<BufferEntry> buffer_;
    std::vector<SptEntry> spt_;
};

} // namespace ecdp

#endif // ECDP_PREFETCH_DSPATCH_PREFETCHER_HH
