#include "prefetch/cdp.hh"

#include <bit>
#include <cassert>

namespace ecdp
{

ContentDirectedPrefetcher::ContentDirectedPrefetcher(unsigned compare_bits,
                                                     unsigned block_bytes)
    : compareBits_(compare_bits), geom_(block_bytes)
{
    assert(compare_bits >= 1 && compare_bits <= 31);
    assert(std::has_single_bit(block_bytes));
}

bool
ContentDirectedPrefetcher::isPointerCandidate(Addr block_vaddr,
                                              std::uint32_t word) const
{
    if (word == 0)
        return false;
    // Segment compare: the high-order compare bits of the *value*
    // against those of the block's own virtual address.
    unsigned shift = 32 - compareBits_;
    return (word >> shift) == (block_vaddr.raw() >> shift);
}

void
ContentDirectedPrefetcher::scan(Addr block_vaddr,
                                const std::uint8_t *bytes,
                                const ScanContext &ctx,
                                std::vector<PrefetchRequest> &out) const
{
    const PrefetchHint *hint = nullptr;
    if (ctx.demandFill && filterMode_ != FilterMode::None) {
        hint = hints_ ? hints_->find(ctx.loadPc) : nullptr;
        // A load with no beneficial PGs generates no prefetches; in
        // GRP mode any beneficial PG enables the whole load.
        if (!hint || hint->empty())
            return;
    }

    const unsigned slots = geom_.blockBytes() / kPointerBytes;
    const int access_word = static_cast<int>(
        (ctx.accessByteOffset & geom_.blockMask()) / kPointerBytes);

    // Dedupe targets within one scan so several pointers to the same
    // block cost one request.
    std::vector<Addr> seen;
    seen.reserve(8);

    for (unsigned slot = 0; slot < slots; ++slot) {
        std::uint32_t word = 0;
        for (unsigned b = 0; b < kPointerBytes; ++b) {
            word |= std::uint32_t{bytes[slot * kPointerBytes + b]}
                    << (8 * b);
        }
        if (!isPointerCandidate(block_vaddr, word))
            continue;

        const int offset = static_cast<int>(slot) - access_word;
        if (ctx.demandFill && filterMode_ == FilterMode::EcdpHints &&
            !hint->allows(offset)) {
            continue;
        }

        Addr target_block = geom_.alignDown(Addr{word});
        if (target_block == block_vaddr)
            continue; // self-pointer: already resident
        bool dup = false;
        for (Addr s : seen)
            dup = dup || s == target_block;
        if (dup)
            continue;
        seen.push_back(target_block);

        PrefetchRequest req;
        req.blockAddr = target_block;
        req.source = PrefetchSource::Lds;
        req.depth = static_cast<std::uint8_t>(ctx.fillDepth + 1);
        if (ctx.demandFill) {
            req.pgValid = true;
            req.pg = PgId{ctx.loadPc,
                          static_cast<std::int16_t>(offset)};
        } else {
            req.pgValid = ctx.pgValid;
            req.pg = ctx.pgRoot;
        }
        out.push_back(req);
    }
}

} // namespace ecdp
