// simlint: hot-path
#include "prefetch/cdp.hh"

#include <algorithm>
#include <bit>
#include <cassert>

#if defined(ECDP_HAVE_AVX2)
#include <immintrin.h>
#endif

namespace ecdp
{

namespace
{

/** The little-endian word at @p p, assembled the same way for the
 *  scalar kernel, the SIMD tail and the hit rescan so all three agree
 *  bit for bit. */
inline std::uint32_t
leWord(const std::uint8_t *p)
{
    std::uint32_t word = 0;
    for (unsigned b = 0; b < kPointerBytes; ++b)
        word |= std::uint32_t{p[b]} << (8 * b);
    return word;
}

} // namespace

ContentDirectedPrefetcher::ContentDirectedPrefetcher(unsigned compare_bits,
                                                     unsigned block_bytes)
    : compareBits_(compare_bits), geom_(block_bytes)
{
    assert(compare_bits >= 1 && compare_bits <= 31);
    assert(std::has_single_bit(block_bytes));
}

bool
ContentDirectedPrefetcher::isPointerCandidate(Addr block_vaddr,
                                              std::uint32_t word) const
{
    if (word == 0)
        return false;
    // Segment compare: the high-order compare bits of the *value*
    // against those of the block's own virtual address.
    unsigned shift = 32 - compareBits_;
    return (word >> shift) == (block_vaddr.raw() >> shift);
}

std::uint64_t
ContentDirectedPrefetcher::candidateMaskScalar(Addr block_vaddr,
                                               const std::uint8_t *bytes,
                                               unsigned slots) const
{
    assert(slots <= 64);
    std::uint64_t mask = 0;
    for (unsigned slot = 0; slot < slots; ++slot) {
        if (isPointerCandidate(block_vaddr,
                               leWord(bytes + slot * kPointerBytes)))
            mask |= std::uint64_t{1} << slot;
    }
    return mask;
}

#if defined(ECDP_HAVE_AVX2)

std::uint64_t
ContentDirectedPrefetcher::candidateMaskAvx2(Addr block_vaddr,
                                             const std::uint8_t *bytes,
                                             unsigned slots) const
{
    assert(slots <= 64);
    // An unaligned 256-bit load of little-endian memory yields the
    // same eight 32-bit words leWord() assembles, so the two kernels
    // see identical lane values (x86 is little-endian by definition
    // wherever AVX2 exists).
    const int shift = static_cast<int>(32 - compareBits_);
    const __m128i shift_count = _mm_cvtsi32_si128(shift);
    const __m256i want = _mm256_set1_epi32(
        static_cast<int>(block_vaddr.raw() >> shift));
    const __m256i zero = _mm256_setzero_si256();

    std::uint64_t mask = 0;
    unsigned slot = 0;
    for (; slot + 8 <= slots; slot += 8) {
        const __m256i words = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(bytes +
                                              slot * kPointerBytes));
        // Logical right shift matches the scalar uint32 >>.
        const __m256i high = _mm256_srl_epi32(words, shift_count);
        const __m256i seg_match = _mm256_cmpeq_epi32(high, want);
        const __m256i is_zero = _mm256_cmpeq_epi32(words, zero);
        const __m256i hit = _mm256_andnot_si256(is_zero, seg_match);
        const auto bits = static_cast<unsigned>(
            _mm256_movemask_ps(_mm256_castsi256_ps(hit)));
        mask |= std::uint64_t{bits} << slot;
    }
    for (; slot < slots; ++slot) {
        if (isPointerCandidate(block_vaddr,
                               leWord(bytes + slot * kPointerBytes)))
            mask |= std::uint64_t{1} << slot;
    }
    return mask;
}

#endif // ECDP_HAVE_AVX2

std::uint64_t
ContentDirectedPrefetcher::candidateMask(Addr block_vaddr,
                                         const std::uint8_t *bytes,
                                         unsigned slots) const
{
#if defined(ECDP_HAVE_AVX2)
    return candidateMaskAvx2(block_vaddr, bytes, slots);
#else
    return candidateMaskScalar(block_vaddr, bytes, slots);
#endif
}

void
ContentDirectedPrefetcher::scan(Addr block_vaddr,
                                const std::uint8_t *bytes,
                                const ScanContext &ctx,
                                std::vector<PrefetchRequest> &out)
{
    const PrefetchHint *hint = nullptr;
    if (ctx.demandFill && filterMode_ != FilterMode::None) {
        hint = hints_ ? hints_->find(ctx.loadPc) : nullptr;
        // A load with no beneficial PGs generates no prefetches; in
        // GRP mode any beneficial PG enables the whole load.
        if (!hint || hint->empty())
            return;
    }

    const unsigned slots = geom_.blockBytes() / kPointerBytes;
    const int access_word = static_cast<int>(
        (ctx.accessByteOffset & geom_.blockMask()) / kPointerBytes);

    // Dedupe targets within one scan so several pointers to the same
    // block cost one request.
    seen_.clear();

    // The mask kernel classifies up to 64 slots per call; blocks
    // larger than 256B walk it in chunks. Bits are consumed lowest
    // first, preserving the original slot order (and therefore the
    // first-pointer-wins dedup behavior).
    for (unsigned chunk = 0; chunk < slots; chunk += 64) {
        const unsigned chunk_slots = std::min(64u, slots - chunk);
        for (std::uint64_t mask = candidateMask(
                 block_vaddr, bytes + chunk * kPointerBytes, chunk_slots);
             mask; mask &= mask - 1) {
            const unsigned slot =
                chunk + static_cast<unsigned>(std::countr_zero(mask));
            const std::uint32_t word =
                leWord(bytes + slot * kPointerBytes);

            const int offset = static_cast<int>(slot) - access_word;
            if (ctx.demandFill && filterMode_ == FilterMode::EcdpHints &&
                !hint->allows(offset)) {
                continue;
            }

            Addr target_block = geom_.alignDown(Addr{word});
            if (target_block == block_vaddr)
                continue; // self-pointer: already resident
            bool dup = false;
            for (Addr s : seen_)
                dup = dup || s == target_block;
            if (dup)
                continue;
            seen_.push_back(target_block);

            PrefetchRequest req;
            req.blockAddr = target_block;
            req.source = PrefetchSource::Lds;
            req.depth = static_cast<std::uint8_t>(ctx.fillDepth + 1);
            if (ctx.demandFill) {
                req.pgValid = true;
                req.pg = PgId{ctx.loadPc,
                              static_cast<std::int16_t>(offset)};
            } else {
                req.pgValid = ctx.pgValid;
                req.pg = ctx.pgRoot;
            }
            out.push_back(req);
        }
    }
}

} // namespace ecdp
