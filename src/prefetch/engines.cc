#include "prefetch/engines.hh"

#include <memory>
#include <stdexcept>

#include "prefetch/dspatch_prefetcher.hh"
#include "prefetch/isb_prefetcher.hh"

namespace ecdp
{

void
registerBuiltinEngines(EngineRegistry &registry)
{
    registry.add("none", [](const EngineContext &) {
        return std::make_unique<NullEngine>();
    });
    registry.add("stream", [](const EngineContext &ctx) {
        return std::make_unique<StreamEngine>(ctx);
    });
    registry.add("ghb", [](const EngineContext &ctx) {
        return std::make_unique<GhbEngine>(ctx);
    });
    registry.add("cdp", [](const EngineContext &ctx) {
        return std::make_unique<CdpEngine>(ctx, /*hinted=*/false);
    });
    registry.add("ecdp", [](const EngineContext &ctx) {
        if (ctx.hints == nullptr) {
            throw std::invalid_argument(
                "engine \"ecdp\" requires compiler hints "
                "(SystemConfig::hints)");
        }
        return std::make_unique<CdpEngine>(ctx, /*hinted=*/true);
    });
    registry.add("markov", [](const EngineContext &ctx) {
        return std::make_unique<MarkovEngine>(ctx);
    });
    registry.add("dbp", [](const EngineContext &ctx) {
        return std::make_unique<DbpEngine>(ctx);
    });
    registry.add("isb", [](const EngineContext &ctx) {
        return std::make_unique<IsbPrefetcher>(ctx);
    });
    registry.add("dspatch", [](const EngineContext &ctx) {
        return std::make_unique<DspatchPrefetcher>(ctx);
    });
}

} // namespace ecdp
