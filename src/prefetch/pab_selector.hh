/**
 * @file
 * PAB-style multi-prefetcher selector after Gendler et al. — the
 * Section 7.4 comparison. Tracks each prefetcher's accuracy over its
 * last N prefetched addresses and, at every evaluation point, turns
 * off every prefetcher except the most accurate one. The paper shows
 * this degrades performance because it ignores coverage and cannot
 * modulate aggressiveness.
 */

#ifndef ECDP_PREFETCH_PAB_SELECTOR_HH
#define ECDP_PREFETCH_PAB_SELECTOR_HH

#include <cstdint>
#include <deque>
#include <vector>

namespace ecdp
{

/**
 * Sliding-window accuracy selector over two prefetchers
 * (0 = primary, 1 = LDS).
 */
class PabSelector
{
  public:
    /** @param window Outcomes remembered per prefetcher. */
    explicit PabSelector(unsigned window = 64);

    /** Record a resolved prefetch outcome for prefetcher @p which. */
    void recordOutcome(unsigned which, bool used);

    /** Sliding-window accuracy of prefetcher @p which. */
    double accuracy(unsigned which) const;

    /**
     * Re-evaluate: returns the index of the only prefetcher that
     * should stay enabled (ties go to the primary).
     */
    unsigned select() const;

  private:
    unsigned window_;
    std::deque<bool> outcomes_[2];
};

} // namespace ecdp

#endif // ECDP_PREFETCH_PAB_SELECTOR_HH
