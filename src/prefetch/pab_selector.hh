/**
 * @file
 * PAB-style multi-prefetcher selector after Gendler et al. — the
 * Section 7.4 comparison. Tracks each prefetcher's accuracy over its
 * last N prefetched addresses and, at every evaluation point, turns
 * off every prefetcher except the most accurate one. The paper shows
 * this degrades performance because it ignores coverage and cannot
 * modulate aggressiveness.
 */

#ifndef ECDP_PREFETCH_PAB_SELECTOR_HH
#define ECDP_PREFETCH_PAB_SELECTOR_HH

#include <cstdint>
#include <deque>
#include <vector>

namespace ecdp
{

/**
 * Sliding-window accuracy selector over an engine stack (lane i =
 * stack slot i; the legacy pair is lanes 0 = primary, 1 = LDS).
 */
class PabSelector
{
  public:
    /**
     * @param window Outcomes remembered per prefetcher.
     * @param lanes Engine-stack slots competing for selection.
     */
    explicit PabSelector(unsigned window = 64, unsigned lanes = 2);

    /** Record a resolved prefetch outcome for prefetcher @p which. */
    void recordOutcome(unsigned which, bool used);

    /** Sliding-window accuracy of prefetcher @p which. */
    double accuracy(unsigned which) const;

    /**
     * Re-evaluate: returns the index of the only prefetcher that
     * should stay enabled (ties go to the lowest index, so the legacy
     * pair still ties to the primary).
     */
    unsigned select() const;

  private:
    unsigned window_;
    std::vector<std::deque<bool>> outcomes_;
};

} // namespace ecdp

#endif // ECDP_PREFETCH_PAB_SELECTOR_HH
