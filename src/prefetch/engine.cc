#include "prefetch/engine.hh"

#include <mutex>
#include <stdexcept>
#include <utility>

namespace ecdp
{

EngineRegistry &
EngineRegistry::instance()
{
    static EngineRegistry registry;
    static std::once_flag builtins;
    std::call_once(builtins, [] { registerBuiltinEngines(registry); });
    return registry;
}

void
EngineRegistry::add(const std::string &name, Factory factory)
{
    auto [it, inserted] = factories_.emplace(name, std::move(factory));
    (void)it;
    if (!inserted) {
        throw std::logic_error("prefetch engine \"" + name +
                               "\" is already registered");
    }
}

bool
EngineRegistry::contains(const std::string &name) const
{
    return factories_.count(name) != 0;
}

std::vector<std::string>
EngineRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto &[name, factory] : factories_) {
        (void)factory;
        out.push_back(name); // std::map iterates sorted
    }
    return out;
}

std::unique_ptr<PrefetchEngine>
EngineRegistry::create(const std::string &name,
                       const EngineContext &ctx) const
{
    auto it = factories_.find(name);
    if (it == factories_.end()) {
        std::string known;
        for (const auto &[key, factory] : factories_) {
            (void)factory;
            known += known.empty() ? "" : ", ";
            known += key;
        }
        throw std::invalid_argument("unknown prefetch engine \"" +
                                    name + "\" (known engines: " +
                                    known + ")");
    }
    return it->second(ctx);
}

} // namespace ecdp
