#include "prefetch/prefetcher.hh"

namespace ecdp
{

const char *
aggLevelName(AggLevel level)
{
    switch (level) {
      case AggLevel::VeryConservative: return "Very Conservative";
      case AggLevel::Conservative: return "Conservative";
      case AggLevel::Moderate: return "Moderate";
      case AggLevel::Aggressive: return "Aggressive";
    }
    return "?";
}

const char *
primaryKindName(PrimaryKind kind)
{
    switch (kind) {
      case PrimaryKind::None: return "none";
      case PrimaryKind::Stream: return "stream";
      case PrimaryKind::Ghb: return "ghb";
    }
    return "?";
}

const char *
ldsKindName(LdsKind kind)
{
    switch (kind) {
      case LdsKind::None: return "none";
      case LdsKind::Cdp: return "cdp";
      case LdsKind::Ecdp: return "ecdp";
      case LdsKind::Dbp: return "dbp";
      case LdsKind::Markov: return "markov";
    }
    return "?";
}

} // namespace ecdp
