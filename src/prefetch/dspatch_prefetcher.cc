#include "prefetch/dspatch_prefetcher.hh"

#include <algorithm>

namespace ecdp
{

DspatchPrefetcher::DspatchPrefetcher(const EngineContext &ctx)
    : geom_(ctx.geom),
      regionBlocks_(std::min<std::uint32_t>(
          64, std::max<std::uint32_t>(
                  2, kRegionBytes / ctx.geom.blockBytes()))),
      regionGeom_(ctx.geom.blockBytes() * regionBlocks_),
      buffer_(kBufferEntries), spt_(kSptEntries)
{
}

void
DspatchPrefetcher::reset()
{
    buffer_.assign(buffer_.size(), BufferEntry{});
    spt_.assign(spt_.size(), SptEntry{});
}

std::uint64_t
DspatchPrefetcher::rotateToAnchor(std::uint64_t bitmap,
                                  std::uint32_t anchor) const
{
    // Left-rotate within the regionBlocks_-bit window so the anchor
    // block becomes bit 0.
    std::uint64_t out = 0;
    for (std::uint32_t b = 0; b < regionBlocks_; ++b) {
        if (bitmap & (std::uint64_t{1} << b)) {
            const std::uint32_t rel =
                (b + regionBlocks_ - anchor) % regionBlocks_;
            out |= std::uint64_t{1} << rel;
        }
    }
    return out;
}

void
DspatchPrefetcher::retire(const BufferEntry &entry)
{
    if (!entry.valid)
        return;
    const std::uint64_t pattern =
        rotateToAnchor(entry.accessed, entry.triggerOffset);
    const std::uint32_t pcTag = entry.triggerPc.raw();
    SptEntry &spt = spt_[pcTag % spt_.size()];
    if (!spt.valid || spt.pcTag != pcTag) {
        spt.valid = true;
        spt.pcTag = pcTag;
        spt.covP = pattern;
        spt.accP = pattern;
        return;
    }
    spt.covP |= pattern;
    spt.accP &= pattern;
}

void
DspatchPrefetcher::onDemandMiss(const TraceEntry &entry,
                                std::vector<PrefetchRequest> &out)
{
    const std::uint32_t regionTag =
        regionGeom_.blockOf(entry.vaddr).raw();
    const std::uint32_t offset =
        regionGeom_.offsetIn(entry.vaddr) / geom_.blockBytes();

    BufferEntry &slot = buffer_[regionTag % buffer_.size()];
    if (!slot.valid || slot.regionTag != regionTag) {
        // New region: retire the displaced one into the SPT, then
        // predict for the trigger access from the trigger PC's learned
        // dual pattern.
        retire(slot);
        slot.valid = true;
        slot.regionTag = regionTag;
        slot.triggerPc = entry.pc;
        slot.triggerOffset = offset;
        slot.accessed = std::uint64_t{1} << offset;

        const std::uint32_t pcTag = entry.pc.raw();
        const SptEntry &spt = spt_[pcTag % spt_.size()];
        if (spt.valid && spt.pcTag == pcTag) {
            // Aggressive/Moderate: coverage-biased pattern;
            // Conservative and below: accuracy-biased pattern.
            const std::uint64_t pattern =
                level_ >= AggLevel::Moderate ? spt.covP : spt.accP;
            const Addr regionBase = regionGeom_.alignDown(entry.vaddr);
            for (std::uint32_t rel = 1; rel < regionBlocks_; ++rel) {
                if (!(pattern & (std::uint64_t{1} << rel)))
                    continue;
                const std::uint32_t b = (offset + rel) % regionBlocks_;
                PrefetchRequest req;
                req.blockAddr =
                    regionBase + b * geom_.blockBytes();
                req.source = PrefetchSource::Primary;
                out.push_back(req);
            }
        }
    } else {
        slot.accessed |= std::uint64_t{1} << offset;
    }
}

std::uint64_t
DspatchPrefetcher::storageBits() const
{
    // Buffer: tag + PC + offset + bitmap; SPT: tag + two patterns.
    return buffer_.size() * (32 + 32 + 6 + regionBlocks_) +
           spt_.size() * (32 + 2 * regionBlocks_);
}

} // namespace ecdp
