/**
 * @file
 * Content-directed prefetching (Cooksey et al.) with the paper's
 * compiler-guided ECDP filtering and GRP-style coarse gating.
 *
 * The prefetcher scans cache blocks as they fill the last-level cache.
 * Every properly aligned word whose high-order `compare bits` match
 * those of the block's own virtual address is predicted to be a
 * pointer and becomes a prefetch candidate. Filtering applies only to
 * blocks fetched by demand misses; blocks fetched by CDP's own
 * (recursive) prefetches are always scanned greedily (Section 3).
 *
 * The slot walk is the simulator's innermost content loop (32 slots
 * per 128B fill), so the candidate test is factored into a bitmask
 * kernel: one AVX2 compare classifies 8 slots at a time when the
 * build host supports it (ECDP_HAVE_AVX2), with a scalar kernel that
 * is both the portable fallback and the fuzz-test oracle. Only the
 * candidate *test* is vectorized; filtering, dedup and request
 * construction stay scalar and run only on the (sparse) hits.
 */
// simlint: hot-path

#ifndef ECDP_PREFETCH_CDP_HH
#define ECDP_PREFETCH_CDP_HH

#include <cstdint>
#include <vector>

#include "memsim/block_geometry.hh"
#include "prefetch/hint_table.hh"
#include "prefetch/prefetcher.hh"

namespace ecdp
{

/**
 * The content-directed prefetcher.
 */
class ContentDirectedPrefetcher
{
  public:
    /** How demand-fill scans are filtered. */
    enum class FilterMode : std::uint8_t
    {
        /** Original CDP: prefetch every identified pointer. */
        None,
        /** ECDP: prefetch only pointers in beneficial PGs. */
        EcdpHints,
        /**
         * Guided-region-prefetching style coarse gating: all pointers
         * of a load are enabled iff the load has any beneficial PG
         * (the Section 7.1 comparison).
         */
        GrpCoarse,
    };

    /**
     * @param compare_bits High-order address bits that must match for
     *        a word to be predicted a pointer (8 in the paper).
     * @param block_bytes L2 block size.
     */
    explicit ContentDirectedPrefetcher(unsigned compare_bits = 8,
                                       unsigned block_bytes = 128);

    /** Table 2 knob: maximum recursion depth 1..4. */
    void setAggressiveness(AggLevel level)
    {
        maxDepth_ = kCdpDepthTable[static_cast<unsigned>(level)];
        level_ = level;
    }

    AggLevel aggressiveness() const { return level_; }
    unsigned maxRecursionDepth() const { return maxDepth_; }
    unsigned compareBits() const { return compareBits_; }

    void setFilterMode(FilterMode mode) { filterMode_ = mode; }
    FilterMode filterMode() const { return filterMode_; }

    /** Install the compiler's hints (ECDP / GRP modes). */
    void setHints(const HintTable *hints) { hints_ = hints; }

    /** Context of a block fill that is about to be scanned. */
    struct ScanContext
    {
        /** True when a demand load miss fetched the block. */
        bool demandFill = true;
        /** Demand fills: PC of the missing load. */
        Addr loadPc = 0;
        /** Demand fills: byte offset the load accessed in the block. */
        std::uint32_t accessByteOffset = 0;
        /** Recursion depth of the fill (0 = demand fill). */
        std::uint8_t fillDepth = 0;
        /** Root PG for recursive fills. */
        bool pgValid = false;
        PgId pgRoot{};
    };

    /**
     * Should a block that filled at recursion depth @p fill_depth be
     * scanned at all? Depth-(d+1) requests are allowed while
     * d < maxRecursionDepth, so depth 1 means demand fills only.
     */
    bool shouldScan(unsigned fill_depth) const
    {
        return fill_depth < maxDepth_;
    }

    /**
     * Scan a filled block and append prefetch candidates.
     *
     * @param block_vaddr Virtual address of the block.
     * @param bytes Block contents (block_bytes long).
     * @param ctx Fill context (filtering and PG attribution).
     * @param out Receives the candidates (deduplicated per scan).
     */
    void scan(Addr block_vaddr, const std::uint8_t *bytes,
              const ScanContext &ctx, std::vector<PrefetchRequest> &out);

    /** Is @p word predicted to be a pointer in @p block_vaddr? */
    bool isPointerCandidate(Addr block_vaddr, std::uint32_t word) const;

    /**
     * Bitmask of pointer-candidate slots: bit s is set iff the
     * little-endian word at slot s of @p bytes passes
     * isPointerCandidate(). @p slots must be <= 64 (scan() chunks
     * larger blocks). Dispatches to the AVX2 kernel when the build
     * selected one, else to the scalar kernel.
     */
    std::uint64_t candidateMask(Addr block_vaddr,
                                const std::uint8_t *bytes,
                                unsigned slots) const;

    /** Portable kernel behind candidateMask(); always built so the
     *  fuzz test can use it as the oracle for the SIMD kernel. */
    std::uint64_t candidateMaskScalar(Addr block_vaddr,
                                      const std::uint8_t *bytes,
                                      unsigned slots) const;

#if defined(ECDP_HAVE_AVX2)
    /** AVX2 kernel: one 256-bit compare classifies 8 slots. */
    std::uint64_t candidateMaskAvx2(Addr block_vaddr,
                                    const std::uint8_t *bytes,
                                    unsigned slots) const;
#endif

  private:
    unsigned compareBits_;
    BlockGeometry geom_;
    unsigned maxDepth_ = 4;
    AggLevel level_ = AggLevel::Aggressive;
    FilterMode filterMode_ = FilterMode::None;
    const HintTable *hints_ = nullptr;
    /** Per-scan dedup scratch; member so scan() never allocates once
     *  the vector has grown to its high-water mark. */
    std::vector<Addr> seen_;
};

} // namespace ecdp

#endif // ECDP_PREFETCH_CDP_HH
