#include "prefetch/ghb_prefetcher.hh"

#include <bit>
#include <cassert>

namespace ecdp
{

GhbPrefetcher::GhbPrefetcher(unsigned entries, unsigned block_bytes)
    : geom_(block_bytes), history_(entries, 0)
{
    assert(entries >= 4);
    assert(std::has_single_bit(block_bytes));
}

void
GhbPrefetcher::onDemandMiss(Addr addr, std::vector<PrefetchRequest> &out)
{
    const std::int64_t block = geom_.signedBlockOf(addr);
    history_[writes_ % history_.size()] = block;
    ++writes_;
    if (writes_ < 3)
        return;

    auto at = [this](std::uint64_t pos) {
        return history_[pos % history_.size()];
    };
    const std::uint64_t n = writes_ - 1; // position of current miss
    const std::int64_t d1 = at(n) - at(n - 1);
    const std::int64_t d2 = at(n - 1) - at(n - 2);
    const Key key = keyOf(d1, d2);

    auto it = indexTable_.find(key);
    if (it != indexTable_.end()) {
        std::uint64_t p = it->second;
        // Entry stale once the FIFO wrapped past it.
        if (n - p < history_.size() - 2) {
            std::int64_t next = block;
            for (unsigned i = 0; i < degree_; ++i) {
                std::uint64_t succ = p + 1 + i;
                // Replay the deltas that followed the previous
                // occurrence; once the recorded history runs out
                // (always immediately for constant strides, whose
                // previous occurrence is the preceding miss), continue
                // with the current delta.
                std::int64_t delta =
                    succ < n ? at(succ) - at(succ - 1) : d1;
                next += delta;
                if (next < 0 ||
                    next > (std::int64_t{1}
                            << (32 - geom_.blockShift())) - 1) {
                    break;
                }
                PrefetchRequest req;
                req.blockAddr = geom_.baseOfSigned(next);
                req.source = PrefetchSource::Primary;
                out.push_back(req);
            }
        }
    }

    if (indexTable_.size() >= indexCapacity_ &&
        indexTable_.find(key) == indexTable_.end()) {
        // Modest eviction policy for the bounded index table: drop an
        // arbitrary entry (hash order approximates random).
        indexTable_.erase(indexTable_.begin());
    }
    indexTable_[key] = n;
}

std::uint64_t
GhbPrefetcher::storageBits() const
{
    // GHB: 1k x (address 32 + link pointer 10); index: 512 x
    // (key tag 32 + pointer 10) -- about 12 KB, per the paper.
    return history_.size() * 42 + indexCapacity_ * 42;
}

} // namespace ecdp
