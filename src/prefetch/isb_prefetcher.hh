/**
 * @file
 * ISB/Domino-style temporal prefetcher, ported as a registry engine
 * (first competitor of Issue 7; after Jain & Lin's Irregular Stream
 * Buffer, MICRO-46, and Bakhshalipour et al.'s Domino, HPCA-24).
 *
 * Temporal prefetching replays previously observed *miss sequences*:
 * it needs no address structure at all, so it covers pointer chases
 * the stream prefetcher cannot — at the price of learning nothing
 * until a sequence repeats. Domino's insight is that correlating on
 * the last TWO misses (a pair key) disambiguates interleaved streams
 * far better than a single-miss key; we keep a single-miss table as
 * the fallback exactly as Domino does.
 *
 * Both tables are direct-mapped and bounded (temporal prefetchers are
 * infamous for metadata appetite; ISB's contribution was taming it),
 * so the engine models realistic on-chip storage: 8k pair entries +
 * 4k single entries at 9 bytes each ≈ 105 KB.
 */

#ifndef ECDP_PREFETCH_ISB_PREFETCHER_HH
#define ECDP_PREFETCH_ISB_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "memsim/block_geometry.hh"
#include "prefetch/engine.hh"
#include "prefetch/prefetcher.hh"

namespace ecdp
{

/**
 * The temporal (miss-sequence replay) engine, registered as "isb".
 * LDS-class: its traffic targets irregular/pointer misses, so it sits
 * behind the hardware filter like CDP does.
 */
class IsbPrefetcher final : public PrefetchEngine
{
  public:
    explicit IsbPrefetcher(const EngineContext &ctx);

    const char *name() const override { return "isb"; }
    Class statClass() const override { return Class::Lds; }
    unsigned maxRequestsPerTrigger() const override { return degree_; }

    void setAggressiveness(AggLevel level) override;
    void reset() override;

    void onDemandMiss(const TraceEntry &entry,
                      std::vector<PrefetchRequest> &out) override;

    std::uint64_t storageBits() const override;

  private:
    struct Entry
    {
        bool valid = false;
        std::uint64_t key = 0;
        BlockAddr next{};
    };

    static std::uint64_t pairKey(BlockAddr a, BlockAddr b)
    {
        return (std::uint64_t{a.raw()} << 32) | b.raw();
    }

    const Entry *findPair(std::uint64_t key) const;
    const Entry *findSingle(BlockAddr key) const;

    BlockGeometry geom_;
    unsigned degree_ = 4;
    /** (miss[n-2], miss[n-1]) -> miss[n], the Domino pair table. */
    std::vector<Entry> pairTable_;
    /** miss[n-1] -> miss[n], the single-miss fallback. */
    std::vector<Entry> singleTable_;
    /** Last two global miss blocks. */
    BlockAddr last0_{};
    BlockAddr last1_{};
    unsigned historyLen_ = 0;
};

} // namespace ecdp

#endif // ECDP_PREFETCH_ISB_PREFETCHER_HH
