#include "prefetch/hardware_filter.hh"

#include <cassert>

namespace ecdp
{

HardwareFilter::HardwareFilter(unsigned entries)
    : bits_(entries, false)
{
    assert(entries > 0);
}

} // namespace ecdp
