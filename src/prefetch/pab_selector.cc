#include "prefetch/pab_selector.hh"

#include <cassert>

namespace ecdp
{

PabSelector::PabSelector(unsigned window)
    : window_(window)
{
    assert(window > 0);
}

void
PabSelector::recordOutcome(unsigned which, bool used)
{
    assert(which < 2);
    auto &ring = outcomes_[which];
    ring.push_back(used);
    if (ring.size() > window_)
        ring.pop_front();
}

double
PabSelector::accuracy(unsigned which) const
{
    assert(which < 2);
    const auto &ring = outcomes_[which];
    if (ring.empty())
        return 1.0; // no evidence yet: assume accurate
    unsigned used = 0;
    for (bool u : ring)
        used += u;
    return static_cast<double>(used) /
           static_cast<double>(ring.size());
}

unsigned
PabSelector::select() const
{
    return accuracy(1) > accuracy(0) ? 1u : 0u;
}

} // namespace ecdp
