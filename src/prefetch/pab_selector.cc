#include "prefetch/pab_selector.hh"

#include <cassert>

namespace ecdp
{

PabSelector::PabSelector(unsigned window, unsigned lanes)
    : window_(window), outcomes_(lanes)
{
    assert(window > 0);
    assert(lanes >= 1);
}

void
PabSelector::recordOutcome(unsigned which, bool used)
{
    assert(which < outcomes_.size());
    auto &ring = outcomes_[which];
    ring.push_back(used);
    if (ring.size() > window_)
        ring.pop_front();
}

double
PabSelector::accuracy(unsigned which) const
{
    assert(which < outcomes_.size());
    const auto &ring = outcomes_[which];
    if (ring.empty())
        return 1.0; // no evidence yet: assume accurate
    unsigned used = 0;
    for (bool u : ring)
        used += u;
    return static_cast<double>(used) /
           static_cast<double>(ring.size());
}

unsigned
PabSelector::select() const
{
    // Strict greater-than keeps ties at the lowest index, which for
    // the legacy two-lane configuration means ties go to the primary.
    unsigned best = 0;
    double bestAcc = accuracy(0);
    for (unsigned i = 1; i < outcomes_.size(); ++i) {
        const double acc = accuracy(i);
        if (acc > bestAcc) {
            best = i;
            bestAcc = acc;
        }
    }
    return best;
}

} // namespace ecdp
