#include "prefetch/isb_prefetcher.hh"

namespace ecdp
{

namespace
{

constexpr std::size_t kPairEntries = 8192;
constexpr std::size_t kSingleEntries = 4096;

/** Degree per Table 2 level (temporal chains replay further when the
 *  feedback lets the engine run aggressively). */
constexpr unsigned kIsbDegree[kNumAggLevels] = {1, 1, 2, 4};

std::size_t
slotOf(std::uint64_t key, std::size_t size)
{
    // Fibonacci hashing: the tables are powers of two and pair keys
    // share low bits between neighbouring blocks.
    return static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ull) >> 32) &
           (size - 1);
}

} // namespace

IsbPrefetcher::IsbPrefetcher(const EngineContext &ctx)
    : geom_(ctx.geom), pairTable_(kPairEntries),
      singleTable_(kSingleEntries)
{
}

void
IsbPrefetcher::setAggressiveness(AggLevel level)
{
    degree_ = kIsbDegree[static_cast<unsigned>(level)];
}

void
IsbPrefetcher::reset()
{
    pairTable_.assign(pairTable_.size(), Entry{});
    singleTable_.assign(singleTable_.size(), Entry{});
    historyLen_ = 0;
}

const IsbPrefetcher::Entry *
IsbPrefetcher::findPair(std::uint64_t key) const
{
    const Entry &e = pairTable_[slotOf(key, pairTable_.size())];
    return (e.valid && e.key == key) ? &e : nullptr;
}

const IsbPrefetcher::Entry *
IsbPrefetcher::findSingle(BlockAddr key) const
{
    const Entry &e = singleTable_[slotOf(key.raw(), singleTable_.size())];
    return (e.valid && e.key == key.raw()) ? &e : nullptr;
}

void
IsbPrefetcher::onDemandMiss(const TraceEntry &entry,
                            std::vector<PrefetchRequest> &out)
{
    const BlockAddr block = geom_.blockOf(entry.vaddr);

    // Train: the sequence (last1, last0) -> block.
    if (historyLen_ >= 2 && block != last0_) {
        const std::uint64_t key = pairKey(last1_, last0_);
        Entry &pair = pairTable_[slotOf(key, pairTable_.size())];
        pair.valid = true;
        pair.key = key;
        pair.next = block;
    }
    if (historyLen_ >= 1 && block != last0_) {
        Entry &single =
            singleTable_[slotOf(last0_.raw(), singleTable_.size())];
        single.valid = true;
        single.key = last0_.raw();
        single.next = block;
    }

    // Predict: replay the recorded successor chain starting from
    // (last0, block), falling back to the single-miss table when the
    // pair table has no entry for a link.
    BlockAddr prev = last0_;
    BlockAddr cur = block;
    const bool havePrev = historyLen_ >= 1;
    for (unsigned i = 0; i < degree_; ++i) {
        const Entry *e =
            havePrev || i > 0 ? findPair(pairKey(prev, cur)) : nullptr;
        if (e == nullptr)
            e = findSingle(cur);
        if (e == nullptr)
            break;
        PrefetchRequest req;
        req.blockAddr = geom_.baseOf(e->next);
        req.source = PrefetchSource::Lds;
        out.push_back(req);
        prev = cur;
        cur = e->next;
    }

    if (block != last0_ || historyLen_ == 0) {
        last1_ = last0_;
        last0_ = block;
        if (historyLen_ < 2)
            ++historyLen_;
    }
}

std::uint64_t
IsbPrefetcher::storageBits() const
{
    // Pair entries: 64-bit key + 32-bit next + valid; single entries:
    // 32-bit key + 32-bit next + valid.
    return pairTable_.size() * (64 + 32 + 1) +
           singleTable_.size() * (32 + 32 + 1);
}

} // namespace ecdp
