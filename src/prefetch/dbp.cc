#include "prefetch/dbp.hh"

#include <cassert>

namespace ecdp
{

DependenceBasedPrefetcher::DependenceBasedPrefetcher(unsigned ppw_entries,
                                                     unsigned ct_entries)
    : ppw_(ppw_entries), ct_(ct_entries)
{
    assert(ppw_entries > 0 && ct_entries > 0);
}

void
DependenceBasedPrefetcher::onLoadIssue(Addr pc, Addr addr)
{
    // Scan newest-first so the most recent producer wins.
    for (std::size_t i = 0; i < ppw_.size(); ++i) {
        std::size_t idx = (ppwHead_ + ppw_.size() - 1 - i) % ppw_.size();
        const PpwEntry &entry = ppw_[idx];
        if (!entry.valid)
            continue;
        std::int64_t offset =
            std::int64_t{addr.raw()} - std::int64_t{entry.value.raw()};
        if (offset < 0 || offset >= kMaxOffset)
            continue;
        CtEntry &slot = ct_[entry.pc.raw() % ct_.size()];
        slot.valid = true;
        slot.producerPc = entry.pc;
        slot.offset = static_cast<std::int32_t>(offset);
        // The consumer PC itself is not needed for prefetch generation.
        (void)pc;
        return;
    }
}

void
DependenceBasedPrefetcher::onLoadComplete(Addr pc, Addr value,
                                          std::vector<PrefetchRequest> &out)
{
    const CtEntry &slot = ct_[pc.raw() % ct_.size()];
    if (slot.valid && slot.producerPc == pc && value != 0) {
        PrefetchRequest req;
        req.blockAddr = value + slot.offset;
        req.source = PrefetchSource::Lds;
        out.push_back(req);
    }

    PpwEntry &entry = ppw_[ppwHead_];
    entry.valid = true;
    entry.value = value;
    entry.pc = pc;
    ppwHead_ = (ppwHead_ + 1) % ppw_.size();
}

std::uint64_t
DependenceBasedPrefetcher::storageBits() const
{
    // PPW: value (32) + pc (32); CT: pc (32) + offset (8) + valid.
    return ppw_.size() * 64 + ct_.size() * 41;
}

} // namespace ecdp
