/**
 * @file
 * The pluggable prefetch-engine interface and its string-keyed
 * registry.
 *
 * Every prefetching mechanism the simulator can instantiate — the
 * paper's stream/CDP pair, the Section 6.3 comparison points, and the
 * ported competitors (ISB, DSPatch) — implements PrefetchEngine. The
 * MemorySystem owns an ordered *stack* of engines (SystemConfig::
 * engines, by registry name) and drives every engine through the same
 * hooks: train on demand/store misses, retrigger on prefetched-block
 * use, observe load values (dependence-based prefetching), and scan
 * fresh fills (content-directed prefetching). Each stack slot owns its
 * prefetched-bit tag in the cache, its feedback/throttle lane, and its
 * obs counter scope, so the paper's accuracy/coverage/pollution
 * feedback applies uniformly to stacks the paper never ran.
 *
 * The conformance harness (tests/engine_harness.hh) instantiates its
 * full battery once per registry entry; a new engine only has to
 * register itself to inherit the tests, and the simlint rule
 * `engine-conformance` fails the build if it forgets.
 */

#ifndef ECDP_PREFETCH_ENGINE_HH
#define ECDP_PREFETCH_ENGINE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "memsim/block_geometry.hh"
#include "prefetch/cdp.hh"
#include "prefetch/prefetcher.hh"
#include "trace/trace.hh"

namespace ecdp
{

/**
 * Everything an engine factory may need at construction time. A plain
 * value struct (not the full SystemConfig) so the prefetch layer stays
 * independent of sim/.
 */
struct EngineContext
{
    /** Geometry of the cache level being prefetched (the L2). */
    BlockGeometry geom{128};
    /** Stream-prefetcher tracking entries. */
    unsigned streamEntries = 32;
    /** CDP virtual-address compare bits. */
    unsigned cdpCompareBits = 8;
    /** GRP-style coarse gating instead of per-PG hints (ecdp only). */
    bool grpCoarse = false;
    /** Compiler hints (required by "ecdp"; not owned). */
    const HintTable *hints = nullptr;
};

/**
 * One prefetching mechanism behind uniform hooks.
 *
 * Contract, enforced per registry entry by the conformance harness:
 *  - no hook call may append more than maxRequestsPerTrigger()
 *    requests to its output vector;
 *  - engines are deterministic: the same hook sequence produces the
 *    same requests (no wall-clock, no randomness);
 *  - engines never issue directly — they only append PrefetchRequests,
 *    and the MemorySystem owns queueing, filtering, issue and the
 *    per-engine prefetched-bit/counter accounting.
 */
class PrefetchEngine
{
  public:
    /**
     * Which of the paper's two roles the engine's traffic plays for
     * classification purposes: Lds-class engines target linked-data
     * misses and sit behind the Zhuang-Lee hardware filter when it is
     * enabled; Primary-class engines model the streaming side and
     * bypass it (matching the pre-registry hard-coded pair).
     */
    enum class Class : std::uint8_t { Primary, Lds };

    virtual ~PrefetchEngine() = default;

    /** Registry name ("stream", "cdp", "isb", ...). */
    virtual const char *name() const = 0;

    virtual Class statClass() const = 0;

    /**
     * Upper bound on requests a single hook invocation may append at
     * the *current* aggressiveness level (the degree/distance cap the
     * conformance harness asserts).
     */
    virtual unsigned maxRequestsPerTrigger() const = 0;

    /** Table 2 knob; engines without one ignore it. */
    virtual void setAggressiveness(AggLevel) {}

    /** Forget all learned state (conformance replay checks). */
    virtual void reset() {}

    /** A demand load missed the last-level cache. */
    virtual void onDemandMiss(const TraceEntry &,
                              std::vector<PrefetchRequest> &)
    {
    }

    /** A store missed the last-level cache (write-allocate path). */
    virtual void onStoreMiss(Addr, std::vector<PrefetchRequest> &) {}

    /**
     * A demand access consumed a block this engine prefetched (the
     * stream prefetcher keeps its stream alive from here).
     */
    virtual void onPrefetchHit(Addr /*block_addr*/,
                               std::vector<PrefetchRequest> &)
    {
    }

    /** @{ Load-value observation (dependence-based prefetching). The
     *  MemorySystem only routes load issue/complete events to engines
     *  that want them. */
    virtual bool wantsLoadValues() const { return false; }
    virtual void onLoadIssue(Addr /*pc*/, Addr /*addr*/) {}
    virtual void onLoadComplete(Addr /*pc*/, Addr /*value*/,
                                std::vector<PrefetchRequest> &)
    {
    }
    /** @} */

    /** @{ Fill scanning (content-directed prefetching). Engines that
     *  want it see every demand fill; recursive scans of an engine's
     *  own prefetched fills are additionally gated by
     *  scansOwnFillAt(depth). */
    virtual bool wantsFillScan() const { return false; }
    virtual bool scansOwnFillAt(unsigned /*fill_depth*/) const
    {
        return false;
    }
    virtual void onFill(Addr /*block_vaddr*/,
                        const std::uint8_t * /*bytes*/,
                        const ContentDirectedPrefetcher::ScanContext &,
                        std::vector<PrefetchRequest> &)
    {
    }
    /** @} */

    /** Table 7-style hardware cost of the engine's own state. */
    virtual std::uint64_t storageBits() const { return 0; }
};

/**
 * Process-wide string-keyed engine factory registry.
 *
 * Built-in engines are registered on first use (an explicit call from
 * instance(), not static initializers, so static-archive dead
 * stripping cannot silently drop an engine). Unknown names fail with
 * an error listing every known name.
 */
class EngineRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<PrefetchEngine>(
        const EngineContext &)>;

    /** The process-wide registry, builtins included. */
    static EngineRegistry &instance();

    /**
     * Register a factory under @p name.
     * @throws std::logic_error if the name is already taken.
     */
    void add(const std::string &name, Factory factory);

    bool contains(const std::string &name) const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

    /**
     * Create an engine by name.
     * @throws std::invalid_argument naming the unknown engine and
     *         listing the known ones.
     */
    std::unique_ptr<PrefetchEngine>
    create(const std::string &name, const EngineContext &ctx) const;

  private:
    std::map<std::string, Factory> factories_;
};

/** Registers the built-in engines (defined in engines.cc; called once
 *  from EngineRegistry::instance()). */
void registerBuiltinEngines(EngineRegistry &registry);

} // namespace ecdp

#endif // ECDP_PREFETCH_ENGINE_HH
