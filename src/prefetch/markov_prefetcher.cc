#include "prefetch/markov_prefetcher.hh"

#include <cassert>

namespace ecdp
{

MarkovPrefetcher::MarkovPrefetcher(unsigned entries)
    : table_(entries)
{
    assert(entries > 0);
}

void
MarkovPrefetcher::onDemandMiss(Addr block_addr,
                               std::vector<PrefetchRequest> &out)
{
    // Record block_addr as a successor of the previous miss.
    if (lastMissValid_ && lastMiss_ != block_addr) {
        Entry &prev = entryFor(lastMiss_);
        if (!prev.valid || prev.key != lastMiss_) {
            prev = Entry{};
            prev.valid = true;
            prev.key = lastMiss_;
        }
        // Age everything; refresh or replace the oldest slot.
        unsigned victim = 0;
        bool found = false;
        for (unsigned i = 0; i < kSuccessors; ++i) {
            if (prev.age[i] < 0xff)
                ++prev.age[i];
            if (prev.succ[i] == block_addr)
                found = true, victim = i;
        }
        if (!found) {
            for (unsigned i = 1; i < kSuccessors; ++i) {
                if (prev.age[i] > prev.age[victim])
                    victim = i;
            }
            prev.succ[victim] = block_addr;
        }
        prev.age[victim] = 0;
    }
    lastMiss_ = block_addr;
    lastMissValid_ = true;

    // Prefetch the recorded successors of this miss.
    const Entry &cur = entryFor(block_addr);
    if (cur.valid && cur.key == block_addr) {
        for (unsigned i = 0; i < kSuccessors; ++i) {
            if (cur.succ[i] == 0 || cur.succ[i] == block_addr)
                continue;
            PrefetchRequest req;
            req.blockAddr = cur.succ[i];
            req.source = PrefetchSource::Lds;
            out.push_back(req);
        }
    }
}

} // namespace ecdp
