#include "prefetch/markov_prefetcher.hh"

#include <cassert>

namespace ecdp
{

MarkovPrefetcher::MarkovPrefetcher(const BlockGeometry &geom,
                                   unsigned entries)
    : geom_(geom), table_(entries)
{
    assert(entries > 0);
}

void
MarkovPrefetcher::onDemandMiss(BlockAddr block,
                               std::vector<PrefetchRequest> &out)
{
    // Record block as a successor of the previous miss.
    if (lastMissValid_ && lastMiss_ != block) {
        Entry &prev = entryFor(lastMiss_);
        if (!prev.valid || prev.key != lastMiss_) {
            prev = Entry{};
            prev.valid = true;
            prev.key = lastMiss_;
        }
        // Age everything; refresh or replace the oldest slot.
        unsigned victim = 0;
        bool found = false;
        for (unsigned i = 0; i < kSuccessors; ++i) {
            if (prev.age[i] < 0xff)
                ++prev.age[i];
            if (prev.succ[i] == block)
                found = true, victim = i;
        }
        if (!found) {
            for (unsigned i = 1; i < kSuccessors; ++i) {
                if (prev.age[i] > prev.age[victim])
                    victim = i;
            }
            prev.succ[victim] = block;
        }
        prev.age[victim] = 0;
    }
    lastMiss_ = block;
    lastMissValid_ = true;

    // Prefetch the recorded successors of this miss.
    const Entry &cur = entryFor(block);
    if (cur.valid && cur.key == block) {
        for (unsigned i = 0; i < kSuccessors; ++i) {
            if (cur.succ[i] == BlockAddr{} || cur.succ[i] == block)
                continue;
            PrefetchRequest req;
            req.blockAddr = geom_.baseOf(cur.succ[i]);
            req.source = PrefetchSource::Lds;
            out.push_back(req);
        }
    }
}

} // namespace ecdp
