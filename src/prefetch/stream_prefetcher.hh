/**
 * @file
 * IBM POWER4/POWER5-style stream prefetcher (Section 2.1 of the paper,
 * after Tendler et al. and Srinath et al.).
 *
 * 32 stream tracking entries. A miss allocates an entry in training
 * state; a second nearby miss fixes the stream direction and moves the
 * entry to monitor state. In monitor state, demand accesses that land
 * in the monitored region pull the prefetch frontier forward, keeping
 * it at most `distance` blocks ahead and issuing at most `degree`
 * prefetch requests per trigger. Distance and degree are the
 * aggressiveness knobs of Table 2.
 */

#ifndef ECDP_PREFETCH_STREAM_PREFETCHER_HH
#define ECDP_PREFETCH_STREAM_PREFETCHER_HH

#include <cstdint>
#include <vector>

#include "memsim/block_geometry.hh"
#include "prefetch/prefetcher.hh"

namespace ecdp
{

/**
 * The baseline stream prefetcher.
 */
class StreamPrefetcher
{
  public:
    /**
     * @param streams Tracking entries (32 in the baseline).
     * @param block_bytes L2 block size (frontier unit).
     */
    explicit StreamPrefetcher(unsigned streams = 32,
                              unsigned block_bytes = 128);

    /** Apply a Table 2 aggressiveness level. */
    void setAggressiveness(AggLevel level);
    AggLevel aggressiveness() const { return level_; }

    unsigned distance() const { return distance_; }
    unsigned degree() const { return degree_; }

    /**
     * Train on a demand access that missed in the L2 or hit a
     * stream-prefetched block; may append prefetch requests.
     */
    void trigger(Addr addr, std::vector<PrefetchRequest> &out);

    /** Drop all stream state (used by tests and PAB disabling). */
    void reset();

    /** Approximate storage cost in bits (for cost accounting). */
    std::uint64_t storageBits() const;

  private:
    enum class State : std::uint8_t { Invalid, Training, Monitor };

    struct Stream
    {
        State state = State::Invalid;
        std::uint64_t lastUse = 0;
        /** First miss block of the (training) stream. */
        std::int64_t firstBlock = 0;
        /** +1 or -1 once direction is known. */
        int dir = 0;
        /** Trailing edge of the monitored region. */
        std::int64_t monitorStart = 0;
        /** Prefetch frontier (last block prefetched). */
        std::int64_t frontier = 0;
    };

    /** Window (blocks) within which a second miss trains a stream. */
    static constexpr std::int64_t kTrainWindow = 16;

    void emit(std::int64_t block, std::vector<PrefetchRequest> &out);

    BlockGeometry geom_;
    unsigned distance_ = 32;
    unsigned degree_ = 4;
    AggLevel level_ = AggLevel::Aggressive;
    std::uint64_t useClock_ = 0;
    std::vector<Stream> streams_;
};

} // namespace ecdp

#endif // ECDP_PREFETCH_STREAM_PREFETCHER_HH
