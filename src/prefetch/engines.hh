/**
 * @file
 * PrefetchEngine adapters for the existing prefetchers (stream, GHB,
 * CDP/ECDP, Markov, DBP) plus the null engine that fills empty stack
 * slots. The ported competitors live in their own files
 * (isb_prefetcher.hh, dspatch_prefetcher.hh); registerBuiltinEngines()
 * in engines.cc wires every one of them into the EngineRegistry.
 */

#ifndef ECDP_PREFETCH_ENGINES_HH
#define ECDP_PREFETCH_ENGINES_HH

#include "memsim/types.hh"
#include "prefetch/cdp.hh"
#include "prefetch/dbp.hh"
#include "prefetch/engine.hh"
#include "prefetch/ghb_prefetcher.hh"
#include "prefetch/markov_prefetcher.hh"
#include "prefetch/stream_prefetcher.hh"

namespace ecdp
{

/** Empty stack slot: never prefetches. Legacy two-slot configurations
 *  with PrimaryKind::None / LdsKind::None derive to this engine so the
 *  slot still owns a feedback lane (an idle lane reports accuracy 1.0,
 *  exactly as before the registry). */
class NullEngine final : public PrefetchEngine
{
  public:
    const char *name() const override { return "none"; }
    Class statClass() const override { return Class::Primary; }
    unsigned maxRequestsPerTrigger() const override { return 0; }
};

/** The paper's primary stream prefetcher (Table 2 throttling). */
class StreamEngine final : public PrefetchEngine
{
  public:
    explicit StreamEngine(const EngineContext &ctx)
        : stream_(ctx.streamEntries, ctx.geom.blockBytes())
    {
    }

    const char *name() const override { return "stream"; }
    Class statClass() const override { return Class::Primary; }

    unsigned maxRequestsPerTrigger() const override
    {
        return kStreamAggTable[static_cast<unsigned>(level_)].degree;
    }

    void setAggressiveness(AggLevel level) override
    {
        level_ = level;
        stream_.setAggressiveness(level);
    }

    void reset() override { stream_.reset(); }

    void onDemandMiss(const TraceEntry &entry,
                      std::vector<PrefetchRequest> &out) override
    {
        stream_.trigger(entry.vaddr, out);
    }

    void onStoreMiss(Addr addr,
                     std::vector<PrefetchRequest> &out) override
    {
        stream_.trigger(addr, out);
    }

    void onPrefetchHit(Addr block_addr,
                       std::vector<PrefetchRequest> &out) override
    {
        // A hit on a stream-prefetched block keeps the stream alive.
        stream_.trigger(block_addr, out);
    }

    std::uint64_t storageBits() const override
    {
        return stream_.storageBits();
    }

  private:
    StreamPrefetcher stream_;
    AggLevel level_ = AggLevel::Aggressive;
};

/** GHB G/DC (Nesbit & Smith) as a primary-class engine. */
class GhbEngine final : public PrefetchEngine
{
  public:
    explicit GhbEngine(const EngineContext &ctx)
        : ghb_(1024, ctx.geom.blockBytes())
    {
    }

    const char *name() const override { return "ghb"; }
    Class statClass() const override { return Class::Primary; }

    unsigned maxRequestsPerTrigger() const override
    {
        return ghb_.degree();
    }

    void setAggressiveness(AggLevel level) override
    {
        static constexpr unsigned kGhbDegree[kNumAggLevels] = {1, 1, 2,
                                                               4};
        ghb_.setDegree(kGhbDegree[static_cast<unsigned>(level)]);
    }

    void onDemandMiss(const TraceEntry &entry,
                      std::vector<PrefetchRequest> &out) override
    {
        ghb_.onDemandMiss(entry.vaddr, out);
    }

    std::uint64_t storageBits() const override
    {
        return ghb_.storageBits();
    }

  private:
    GhbPrefetcher ghb_;
};

/**
 * Content-directed prefetching as an LDS-class fill-scanning engine.
 * Registered twice: "cdp" (greedy) and "ecdp" (compiler hints / GRP
 * coarse gating; the factory requires EngineContext::hints).
 */
class CdpEngine final : public PrefetchEngine
{
  public:
    CdpEngine(const EngineContext &ctx, bool hinted)
        : cdp_(ctx.cdpCompareBits, ctx.geom.blockBytes()),
          slotsPerBlock_(ctx.geom.blockBytes() / kPointerBytes),
          hinted_(hinted)
    {
        if (hinted_) {
            cdp_.setFilterMode(
                ctx.grpCoarse
                    ? ContentDirectedPrefetcher::FilterMode::GrpCoarse
                    : ContentDirectedPrefetcher::FilterMode::
                          EcdpHints);
            cdp_.setHints(ctx.hints);
        }
    }

    const char *name() const override
    {
        return hinted_ ? "ecdp" : "cdp";
    }

    Class statClass() const override { return Class::Lds; }

    unsigned maxRequestsPerTrigger() const override
    {
        // One scan can at most request every pointer slot of a block.
        return slotsPerBlock_;
    }

    void setAggressiveness(AggLevel level) override
    {
        cdp_.setAggressiveness(level);
    }

    bool wantsFillScan() const override { return true; }

    bool scansOwnFillAt(unsigned fill_depth) const override
    {
        return cdp_.shouldScan(fill_depth);
    }

    void onFill(Addr block_vaddr, const std::uint8_t *bytes,
                const ContentDirectedPrefetcher::ScanContext &ctx,
                std::vector<PrefetchRequest> &out) override
    {
        cdp_.scan(block_vaddr, bytes, ctx, out);
    }

    const ContentDirectedPrefetcher &cdp() const { return cdp_; }

  private:
    ContentDirectedPrefetcher cdp_;
    unsigned slotsPerBlock_;
    bool hinted_;
};

/** Markov miss-correlation prefetching (Joseph & Grunwald). */
class MarkovEngine final : public PrefetchEngine
{
  public:
    explicit MarkovEngine(const EngineContext &ctx)
        : geom_(ctx.geom), markov_(ctx.geom)
    {
    }

    const char *name() const override { return "markov"; }
    Class statClass() const override { return Class::Lds; }

    unsigned maxRequestsPerTrigger() const override
    {
        return MarkovPrefetcher::kSuccessors;
    }

    void onDemandMiss(const TraceEntry &entry,
                      std::vector<PrefetchRequest> &out) override
    {
        markov_.onDemandMiss(geom_.blockOf(entry.vaddr), out);
    }

    std::uint64_t storageBits() const override
    {
        return markov_.storageBits();
    }

  private:
    BlockGeometry geom_;
    MarkovPrefetcher markov_;
};

/** Dependence-based prefetching (Roth et al.): observes load values. */
class DbpEngine final : public PrefetchEngine
{
  public:
    explicit DbpEngine(const EngineContext &) {}

    const char *name() const override { return "dbp"; }
    Class statClass() const override { return Class::Lds; }
    unsigned maxRequestsPerTrigger() const override { return 1; }

    bool wantsLoadValues() const override { return true; }

    void onLoadIssue(Addr pc, Addr addr) override
    {
        dbp_.onLoadIssue(pc, addr);
    }

    void onLoadComplete(Addr pc, Addr value,
                        std::vector<PrefetchRequest> &out) override
    {
        dbp_.onLoadComplete(pc, value, out);
    }

    std::uint64_t storageBits() const override
    {
        return dbp_.storageBits();
    }

  private:
    DependenceBasedPrefetcher dbp_;
};

} // namespace ecdp

#endif // ECDP_PREFETCH_ENGINES_HH
