// HintTable is header-only; this translation unit exists so the build
// has a place to grow non-inline helpers.
#include "prefetch/hint_table.hh"
