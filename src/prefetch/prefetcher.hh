/**
 * @file
 * Common prefetcher types: requests, aggressiveness levels (Table 2 of
 * the paper), and the identifiers of the prefetchers a system can pair.
 */

#ifndef ECDP_PREFETCH_PREFETCHER_HH
#define ECDP_PREFETCH_PREFETCHER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "memsim/types.hh"

namespace ecdp
{

/**
 * Aggressiveness levels of Table 2. Coordinated throttling moves
 * prefetchers one level at a time between these configurations.
 */
enum class AggLevel : std::uint8_t
{
    VeryConservative = 0,
    Conservative = 1,
    Moderate = 2,
    Aggressive = 3,
};

inline constexpr unsigned kNumAggLevels = 4;

/** Stream prefetcher configuration at each aggressiveness level. */
struct StreamAggConfig
{
    unsigned distance;
    unsigned degree;
};

/** Table 2: stream prefetcher distance/degree per level. */
inline constexpr StreamAggConfig kStreamAggTable[kNumAggLevels] = {
    {4, 1}, {8, 1}, {16, 2}, {32, 4},
};

/** Table 2: CDP maximum recursion depth per level. */
inline constexpr unsigned kCdpDepthTable[kNumAggLevels] = {1, 2, 3, 4};

/** Display name of an aggressiveness level. */
const char *aggLevelName(AggLevel level);

/** One prefetch request heading for the prefetch request queue. */
struct PrefetchRequest
{
    /** Block-aligned target address. */
    Addr blockAddr = 0;
    /** Which prefetcher class generated it (legacy two-slot view). */
    PrefetchSource source = PrefetchSource::None;
    /** Engine-stack index of the generating engine; stamped by the
     *  MemorySystem when it drains an engine hook's output. */
    std::uint8_t engine = 0;
    /** CDP recursion depth of the request (1 = from a demand scan). */
    std::uint8_t depth = 0;
    /** Root pointer group of the (possibly recursive) CDP chain. */
    bool pgValid = false;
    PgId pg{};
};

/** The primary (streaming-capable) prefetcher of the hybrid system. */
enum class PrimaryKind : std::uint8_t { None, Stream, Ghb };

/** The LDS prefetcher slot of the hybrid system. */
enum class LdsKind : std::uint8_t { None, Cdp, Ecdp, Dbp, Markov };

const char *primaryKindName(PrimaryKind kind);
const char *ldsKindName(LdsKind kind);

} // namespace ecdp

#endif // ECDP_PREFETCH_PREFETCHER_HH
