#include "throttle/fdp_throttler.hh"

namespace ecdp
{

ThrottleDecision
FdpThrottler::decide(const FeedbackSnapshot &self) const
{
    const bool late = self.lateness >= thresholds_.tLateness;
    const bool polluting = self.pollution >= thresholds_.tPollution;

    if (self.accuracy >= thresholds_.aHigh) {
        // Accurate prefetches that arrive late benefit from running
        // further ahead.
        return late ? ThrottleDecision::Up : ThrottleDecision::Nothing;
    }
    if (self.accuracy >= thresholds_.aLow) {
        if (polluting)
            return ThrottleDecision::Down;
        return late ? ThrottleDecision::Up : ThrottleDecision::Nothing;
    }
    // Low accuracy: always back off.
    return ThrottleDecision::Down;
}

} // namespace ecdp
