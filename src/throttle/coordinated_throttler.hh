/**
 * @file
 * Coordinated prefetcher throttling — the paper's second contribution
 * (Section 4.2). At every interval each prefetcher decides its own
 * aggressiveness from its accuracy and coverage *and the rival
 * prefetcher's coverage*, following the five heuristics of Table 3
 * with the thresholds of Table 4. The rules are symmetric and
 * prefetcher-agnostic, so the same decide() serves both prefetchers
 * (and would extend to more than two).
 */

#ifndef ECDP_THROTTLE_COORDINATED_THROTTLER_HH
#define ECDP_THROTTLE_COORDINATED_THROTTLER_HH

#include <cstddef>
#include <vector>

#include "prefetch/prefetcher.hh"
#include "throttle/feedback.hh"

namespace ecdp
{

/** Throttling decision for a deciding prefetcher. */
enum class ThrottleDecision { Up, Down, Nothing };

/**
 * The Table 3 heuristics.
 */
class CoordinatedThrottler
{
  public:
    /** Table 4 thresholds. */
    struct Thresholds
    {
        double tCoverage = 0.2;
        double aLow = 0.4;
        double aHigh = 0.7;
    };

    CoordinatedThrottler() : thresholds_(Thresholds()) {}

    explicit CoordinatedThrottler(Thresholds thresholds)
        : thresholds_(thresholds)
    {}

    /**
     * Table 3: the deciding prefetcher's throttling decision from its
     * own coverage/accuracy and the rival's coverage.
     */
    ThrottleDecision decide(const FeedbackSnapshot &self,
                            const FeedbackSnapshot &rival) const;

    /**
     * The rival snapshot for stack slot @p self in an N-engine stack:
     * the Table 3 rules only consume the rival's *coverage*, so the
     * rival of an engine is the best-covering other engine (ties to
     * the lowest slot). For the legacy pair this is exactly "the other
     * prefetcher"; an engine running alone gets a neutral
     * (zero-coverage) rival and throttles on its own feedback.
     */
    static FeedbackSnapshot
    rival(const std::vector<FeedbackSnapshot> &all, std::size_t self);

    /** Apply a decision to an aggressiveness level, clamped to the
     *  four Table 2 levels. */
    static AggLevel apply(AggLevel level, ThrottleDecision decision);

    const Thresholds &thresholds() const { return thresholds_; }

  private:
    enum class AccClass { Low, Medium, High };

    AccClass classifyAccuracy(double accuracy) const;

    Thresholds thresholds_;
};

} // namespace ecdp

#endif // ECDP_THROTTLE_COORDINATED_THROTTLER_HH
