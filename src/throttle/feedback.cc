#include "throttle/feedback.hh"

namespace ecdp
{

double
PrefetcherFeedback::accuracy() const
{
    if (issued_.value() == 0)
        return heldAccuracy_;
    double acc =
        static_cast<double>(used_.value() + late_.value()) /
        static_cast<double>(issued_.value());
    return acc > 1.0 ? 1.0 : acc;
}

double
PrefetcherFeedback::coverage(std::uint64_t aged_demand_misses) const
{
    std::uint64_t used = used_.value();
    if (used + aged_demand_misses == 0)
        return 0.0;
    return static_cast<double>(used) /
           static_cast<double>(used + aged_demand_misses);
}

double
PrefetcherFeedback::lateness() const
{
    if (used_.value() == 0)
        return 0.0;
    double late = static_cast<double>(late_.value()) /
                  static_cast<double>(used_.value());
    return late > 1.0 ? 1.0 : late;
}

PollutionFilter::PollutionFilter(unsigned entries)
    : bits_(entries, false)
{
}

void
PollutionFilter::onPrefetchEvictedDemandBlock(BlockAddr block)
{
    bits_[index(block)] = true;
}

bool
PollutionFilter::test(BlockAddr block) const
{
    return bits_[index(block)];
}

void
PollutionFilter::clear()
{
    bits_.assign(bits_.size(), false);
}

} // namespace ecdp
