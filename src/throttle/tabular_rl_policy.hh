/**
 * @file
 * Tabular-RL throttle policy: an epsilon-greedy Q-learning agent over
 * the same discretized (accuracy class, coverage bucket, bandwidth
 * bucket) state the paper's Table 3/4 rule matrix consumes — the
 * learned-coordination shape of the RL-prefetching paper in PAPERS.md,
 * scaled down to one small per-slot table.
 *
 * State (48 entries per slot):
 *   accuracy class  — Low / Medium / High against the coordinated
 *                     thresholds (aLow / aHigh), exactly the Table 3
 *                     discretization;
 *   coverage bucket — 4 buckets against T_coverage
 *                     (< T/2, < T, < 2T, >= 2T);
 *   bandwidth bucket— 4 buckets of interval bus transactions per
 *                     kilocycle (< 8, < 24, < 48, >= 48).
 * Actions: Up / Down / Nothing (the Table 2 aggressiveness moves).
 * Reward (shared by all slots, computed once per interval):
 *   r = (IPC_t - IPC_{t-1}) - kBwPenalty * (bus transactions/cycle)_t
 * i.e. delta-IPC minus a bandwidth price, the paper's two axes.
 *
 * Determinism: all exploration randomness comes from one xorshift64*
 * stream seeded by PolicyContext::seed (which SystemConfig folds into
 * configHash alongside the policy name). No wall clock, no address
 * entropy, no unordered containers — two runs with the same seed are
 * byte-identical, different seeds diverge (pinned by the
 * seeded-determinism tests).
 */

#ifndef ECDP_THROTTLE_TABULAR_RL_POLICY_HH
#define ECDP_THROTTLE_TABULAR_RL_POLICY_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "throttle/throttle_policy.hh"

namespace ecdp
{

/**
 * Epsilon-greedy tabular Q-learning over discretized feedback.
 */
class TabularRlPolicy final : public ThrottlePolicy
{
  public:
    /** @{ Discretization (see file comment). */
    static constexpr unsigned kAccClasses = 3;
    static constexpr unsigned kCovBuckets = 4;
    static constexpr unsigned kBwBuckets = 4;
    static constexpr unsigned kStates =
        kAccClasses * kCovBuckets * kBwBuckets;
    static constexpr unsigned kActions = 3;
    /** @} */

    /** @{ Hyperparameters (fixed; the seed is the only config knob). */
    static constexpr double kAlpha = 0.2;
    static constexpr double kGamma = 0.5;
    static constexpr double kEpsilon = 0.1;
    static constexpr double kBwPenalty = 0.5;
    /** @} */

    explicit TabularRlPolicy(const PolicyContext &ctx);

    const char *name() const override { return "tabular-rl"; }

    ThrottleDecision
    onIntervalEnd(std::size_t slot,
                  const std::vector<FeedbackSnapshot> &snapshots,
                  const IntervalContext &interval) override;

    void reset() override;
    std::string intervalStateJson() const override;
    std::string stateJson() const override;
    void bindCounters(obs::MetricScope &scope) override;

    /** @{ Introspection for tests. */
    std::uint64_t intervalsSeen() const { return intervalsSeen_; }
    std::uint64_t explorations() const { return explorations_; }
    /** The state index the discretizer assigns (exposed so tests can
     *  pin the encoding without reaching into the table). */
    unsigned discretize(const FeedbackSnapshot &snap,
                        const IntervalContext &interval) const;
    /** @} */

  private:
    /** One slot's Q-table and bookkeeping. */
    struct SlotAgent
    {
        std::array<std::array<double, kActions>, kStates> q{};
        std::array<std::uint64_t, kStates> visits{};
        /** Previous (state, action) pair, -1 before the first
         *  decision — the Q-update needs one interval of lag. */
        int prevState = -1;
        int prevAction = -1;
    };

    /** What each slot decided this interval (for the stats series). */
    struct SlotDecision
    {
        unsigned state = 0;
        unsigned action = 0;
        bool explored = false;
    };

    SlotAgent &agentFor(std::size_t slot);
    std::uint64_t nextRandom();
    double rand01();
    /** Fold interval-level reward bookkeeping (slot-0 call only). */
    void beginInterval(const IntervalContext &interval);
    static ThrottleDecision toDecision(unsigned action);

    CoordinatedThrottler::Thresholds coord_;
    std::uint64_t seed_;
    std::uint64_t rng_;
    std::vector<SlotAgent> agents_;
    std::vector<SlotDecision> lastDecisions_;

    /** @{ Reward state: previous interval's IPC and this interval's
     *  computed reward. */
    bool havePrevIpc_ = false;
    double prevIpc_ = 0.0;
    double reward_ = 0.0;
    /** @} */

    std::uint64_t intervalsSeen_ = 0;
    std::uint64_t explorations_ = 0;
    std::uint64_t updates_ = 0;

    /** @{ Registered counters (optional; null without a registry). */
    obs::Counter *explorationsCtr_ = nullptr;
    obs::Counter *updatesCtr_ = nullptr;
    obs::Counter *actionCtr_[kActions] = {};
    /** @} */
};

} // namespace ecdp

#endif // ECDP_THROTTLE_TABULAR_RL_POLICY_HH
