#include "throttle/tabular_rl_policy.hh"

#include <algorithm>
#include <sstream>

namespace ecdp
{

namespace
{

/** Bus-transactions-per-kilocycle cut points for the bandwidth
 *  buckets. An 8 B bus moving 128 B blocks saturates around 60+
 *  transactions per kilocycle on these workloads; the cuts split
 *  idle / light / loaded / saturated. */
constexpr double kBwCuts[TabularRlPolicy::kBwBuckets - 1] = {8.0, 24.0,
                                                             48.0};

} // namespace

TabularRlPolicy::TabularRlPolicy(const PolicyContext &ctx)
    : coord_(ctx.coord),
      // A zero seed would stick the xorshift stream at zero forever;
      // remap it to a fixed odd constant instead of rejecting it.
      seed_(ctx.seed ? ctx.seed : 0x9e3779b97f4a7c15ull),
      rng_(seed_)
{
}

std::uint64_t
TabularRlPolicy::nextRandom()
{
    // xorshift64* — 3 shifts + 1 multiply, full 2^64-1 period.
    std::uint64_t x = rng_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    rng_ = x;
    return x * 0x2545f4914f6cdd1dull;
}

double
TabularRlPolicy::rand01()
{
    // Top 53 bits -> uniform double in [0, 1).
    return static_cast<double>(nextRandom() >> 11) *
           (1.0 / 9007199254740992.0);
}

unsigned
TabularRlPolicy::discretize(const FeedbackSnapshot &snap,
                            const IntervalContext &interval) const
{
    // Accuracy class: the Table 3 discretization (Low/Medium/High
    // against aLow/aHigh).
    unsigned acc = 2;
    if (snap.accuracy < coord_.aLow)
        acc = 0;
    else if (snap.accuracy < coord_.aHigh)
        acc = 1;

    // Coverage bucket against T_coverage.
    const double t = coord_.tCoverage;
    unsigned cov = 3;
    if (snap.coverage < t / 2.0)
        cov = 0;
    else if (snap.coverage < t)
        cov = 1;
    else if (snap.coverage < 2.0 * t)
        cov = 2;

    // Bandwidth bucket: interval bus transactions per kilocycle.
    double per_kc = 0.0;
    if (interval.deltaCycles > 0) {
        per_kc = 1000.0 *
                 static_cast<double>(interval.deltaBusTransactions) /
                 static_cast<double>(interval.deltaCycles);
    }
    unsigned bw = kBwBuckets - 1;
    for (unsigned i = 0; i < kBwBuckets - 1; ++i) {
        if (per_kc < kBwCuts[i]) {
            bw = i;
            break;
        }
    }

    return (acc * kCovBuckets + cov) * kBwBuckets + bw;
}

TabularRlPolicy::SlotAgent &
TabularRlPolicy::agentFor(std::size_t slot)
{
    if (agents_.size() <= slot)
        agents_.resize(slot + 1);
    return agents_[slot];
}

void
TabularRlPolicy::beginInterval(const IntervalContext &interval)
{
    ++intervalsSeen_;
    lastDecisions_.clear();

    double ipc = 0.0;
    double bus_per_cycle = 0.0;
    if (interval.deltaCycles > 0) {
        ipc = static_cast<double>(interval.deltaInstructions) /
              static_cast<double>(interval.deltaCycles);
        bus_per_cycle =
            static_cast<double>(interval.deltaBusTransactions) /
            static_cast<double>(interval.deltaCycles);
    }
    // Delta-IPC minus a bandwidth price. The first interval has no
    // previous IPC; its reward is never consumed (no slot has a
    // previous action yet), so 0 is fine.
    reward_ = havePrevIpc_ ? (ipc - prevIpc_) - kBwPenalty * bus_per_cycle
                           : 0.0;
    prevIpc_ = ipc;
    havePrevIpc_ = true;
}

ThrottleDecision
TabularRlPolicy::toDecision(unsigned action)
{
    switch (action) {
      case 0: return ThrottleDecision::Up;
      case 1: return ThrottleDecision::Down;
      default: return ThrottleDecision::Nothing;
    }
}

ThrottleDecision
TabularRlPolicy::onIntervalEnd(
    std::size_t slot, const std::vector<FeedbackSnapshot> &snapshots,
    const IntervalContext &interval)
{
    // Slots are visited in increasing order per interval (interface
    // contract), so the slot-0 call folds the shared reward.
    if (slot == 0)
        beginInterval(interval);

    SlotAgent &agent = agentFor(slot);
    const unsigned state = discretize(snapshots[slot], interval);

    // One-step Q-update for the previous interval's action, now that
    // its outcome (this interval's reward and successor state) is in.
    if (agent.prevState >= 0) {
        const auto &next_row = agent.q[state];
        const double best =
            *std::max_element(next_row.begin(), next_row.end());
        double &q = agent.q[agent.prevState][agent.prevAction];
        q += kAlpha * (reward_ + kGamma * best - q);
        ++updates_;
        if (updatesCtr_)
            updatesCtr_->inc();
    }

    ++agent.visits[state];

    // Epsilon-greedy action selection; greedy ties break to the
    // lowest action index (deterministic).
    unsigned action = 0;
    const bool explore = rand01() < kEpsilon;
    if (explore) {
        action = static_cast<unsigned>(nextRandom() % kActions);
        ++explorations_;
        if (explorationsCtr_)
            explorationsCtr_->inc();
    } else {
        const auto &row = agent.q[state];
        for (unsigned a = 1; a < kActions; ++a) {
            if (row[a] > row[action])
                action = a;
        }
    }
    if (actionCtr_[action])
        actionCtr_[action]->inc();

    agent.prevState = static_cast<int>(state);
    agent.prevAction = static_cast<int>(action);
    lastDecisions_.push_back(SlotDecision{state, action, explore});
    return toDecision(action);
}

void
TabularRlPolicy::reset()
{
    agents_.clear();
    lastDecisions_.clear();
    rng_ = seed_;
    havePrevIpc_ = false;
    prevIpc_ = 0.0;
    reward_ = 0.0;
    intervalsSeen_ = 0;
    explorations_ = 0;
    updates_ = 0;
    // Registered counters are lifetime totals and deliberately keep
    // counting across resets (like every other obs counter).
}

std::string
TabularRlPolicy::intervalStateJson() const
{
    if (lastDecisions_.empty())
        return "";
    std::ostringstream os;
    os << "{\"reward\":" << reward_ << ",\"slots\":[";
    for (std::size_t i = 0; i < lastDecisions_.size(); ++i) {
        const SlotDecision &d = lastDecisions_[i];
        os << (i ? "," : "") << "{\"state\":" << d.state
           << ",\"action\":" << d.action
           << ",\"explored\":" << (d.explored ? "true" : "false")
           << "}";
    }
    os << "]}";
    return os.str();
}

std::string
TabularRlPolicy::stateJson() const
{
    std::ostringstream os;
    os << "{\"policy\":\"tabular-rl\",\"seed\":" << seed_
       << ",\"intervals\":" << intervalsSeen_
       << ",\"explorations\":" << explorations_
       << ",\"updates\":" << updates_ << ",\"slots\":[";
    for (std::size_t i = 0; i < agents_.size(); ++i) {
        const SlotAgent &agent = agents_[i];
        std::uint64_t visits = 0;
        unsigned visited_states = 0;
        double q_abs_sum = 0.0;
        for (unsigned s = 0; s < kStates; ++s) {
            visits += agent.visits[s];
            if (agent.visits[s] > 0)
                ++visited_states;
            for (unsigned a = 0; a < kActions; ++a) {
                const double q = agent.q[s][a];
                q_abs_sum += q < 0.0 ? -q : q;
            }
        }
        os << (i ? "," : "") << "{\"visits\":" << visits
           << ",\"visitedStates\":" << visited_states
           << ",\"qAbsSum\":" << q_abs_sum << "}";
    }
    os << "]}";
    return os.str();
}

void
TabularRlPolicy::bindCounters(obs::MetricScope &scope)
{
    explorationsCtr_ = &scope.counter("explorations");
    updatesCtr_ = &scope.counter("updates");
    actionCtr_[0] = &scope.counter("actions.up");
    actionCtr_[1] = &scope.counter("actions.down");
    actionCtr_[2] = &scope.counter("actions.nothing");
}

} // namespace ecdp
