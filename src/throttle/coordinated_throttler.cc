#include "throttle/coordinated_throttler.hh"

namespace ecdp
{

CoordinatedThrottler::AccClass
CoordinatedThrottler::classifyAccuracy(double accuracy) const
{
    if (accuracy < thresholds_.aLow)
        return AccClass::Low;
    if (accuracy < thresholds_.aHigh)
        return AccClass::Medium;
    return AccClass::High;
}

ThrottleDecision
CoordinatedThrottler::decide(const FeedbackSnapshot &self,
                             const FeedbackSnapshot &rival) const
{
    const bool self_cov_high = self.coverage >= thresholds_.tCoverage;
    const bool rival_cov_high = rival.coverage >= thresholds_.tCoverage;
    const AccClass acc = classifyAccuracy(self.accuracy);

    // Case 1: high coverage -> always keep at maximum aggressiveness.
    if (self_cov_high)
        return ThrottleDecision::Up;

    // Case 2: low coverage, low accuracy -> throttle down.
    if (acc == AccClass::Low)
        return ThrottleDecision::Down;

    // Case 3: both coverages low, decent accuracy -> give the deciding
    // prefetcher a chance to earn coverage.
    if (!rival_cov_high)
        return ThrottleDecision::Up;

    // Rival coverage is high from here on.
    // Case 4: medium accuracy -> get out of the rival's way.
    if (acc == AccClass::Medium)
        return ThrottleDecision::Down;

    // Case 5: high accuracy, rival covering well -> leave as is.
    return ThrottleDecision::Nothing;
}

FeedbackSnapshot
CoordinatedThrottler::rival(const std::vector<FeedbackSnapshot> &all,
                           std::size_t self)
{
    FeedbackSnapshot best;
    best.coverage = -1.0;
    for (std::size_t j = 0; j < all.size(); ++j) {
        if (j == self)
            continue;
        if (all[j].coverage > best.coverage)
            best = all[j];
    }
    if (best.coverage < 0.0)
        return FeedbackSnapshot{}; // no rival: neutral snapshot
    // Normalize an idle best rival (issued nothing, covers nothing)
    // to the same neutral snapshot a lone engine gets: decide() only
    // reads the rival's coverage, which is 0.0 either way, but
    // without this a slot in an N-engine stack whose rivals are all
    // idle would see the idle rival's held accuracy/lateness leak
    // through where a lone engine sees defaults — the asymmetry the
    // rival property tests pin down.
    if (!best.anyPrefetches && best.coverage == 0.0)
        return FeedbackSnapshot{};
    return best;
}

AggLevel
CoordinatedThrottler::apply(AggLevel level, ThrottleDecision decision)
{
    int v = static_cast<int>(level);
    switch (decision) {
      case ThrottleDecision::Up:
        v = v + 1;
        break;
      case ThrottleDecision::Down:
        v = v - 1;
        break;
      case ThrottleDecision::Nothing:
        break;
    }
    if (v < 0)
        v = 0;
    if (v > static_cast<int>(kNumAggLevels) - 1)
        v = static_cast<int>(kNumAggLevels) - 1;
    return static_cast<AggLevel>(v);
}

} // namespace ecdp
