/**
 * @file
 * Run-time prefetcher feedback collection (Section 4.1 of the paper).
 *
 * Two counters per prefetcher (total-prefetched, total-used) plus one
 * global counter (total-misses) feed the accuracy and coverage
 * formulas (Equations 1 and 2). Counters are aged at interval
 * boundaries with the half/half rule of Equation 3; an interval ends
 * after a fixed number of L2 evictions (8192 in the paper).
 *
 * For the FDP comparison the collector additionally tracks lateness
 * (demand arrived while the prefetch was still in flight) and
 * pollution (demand misses to blocks recently evicted by prefetches).
 */

#ifndef ECDP_THROTTLE_FEEDBACK_HH
#define ECDP_THROTTLE_FEEDBACK_HH

#include <cstdint>
#include <vector>

#include "memsim/types.hh"
#include "stats/stats.hh"

namespace ecdp
{

/** Accuracy/coverage snapshot handed to the throttlers. */
struct FeedbackSnapshot
{
    double accuracy = 1.0;
    double coverage = 0.0;
    double lateness = 0.0;
    double pollution = 0.0;
    /** False when the prefetcher issued nothing (accuracy is then
     *  defined as 1.0 so an idle prefetcher is never punished). */
    bool anyPrefetches = false;
};

/**
 * Feedback state for one prefetcher.
 */
class PrefetcherFeedback
{
  public:
    void onPrefetchIssued() { issued_.add(); }
    void onPrefetchUsed() { used_.add(); }
    void onPrefetchLate() { late_.add(); }

    /** Fold the current interval per Equation 3. While the aged
     *  issued count is nonzero the freshly computed accuracy is also
     *  latched, so a later fully-throttled (zero-issue) stretch keeps
     *  reporting the last real measurement. */
    void endInterval()
    {
        issued_.endInterval();
        used_.endInterval();
        late_.endInterval();
        if (issued_.value() > 0)
            heldAccuracy_ = accuracy();
    }

    /** Equation 1 over the aged counters. A prefetch counts as used
     *  here if a demand consumed it at all — from the cache (the
     *  prefetched tag bit) or by merging into its in-flight MSHR
     *  (late): both are hardware-observable and both mean the pointer
     *  was truly needed.
     *
     *  When the aged issued count is zero the last held measurement
     *  is reported instead: 0/0 carries no information, and treating
     *  it as perfect accuracy would let the FDP/coordinated
     *  throttlers re-promote a fully-throttled inaccurate prefetcher
     *  the very next interval. A prefetcher that never issued
     *  anything still reports 1.0 (an idle prefetcher is never
     *  punished). */
    double accuracy() const;

    /** Equation 2; @p aged_demand_misses is the shared total-misses. */
    double coverage(std::uint64_t aged_demand_misses) const;

    /** Late prefetches / used prefetches (FDP metric). */
    double lateness() const;

    bool anyPrefetches() const { return issued_.value() > 0; }

    std::uint64_t lifetimeIssued() const { return issued_.lifetime(); }
    std::uint64_t lifetimeUsed() const { return used_.lifetime(); }
    std::uint64_t lifetimeLate() const { return late_.lifetime(); }

    /** True when any counter saw activity in the current (not yet
     *  folded) interval — the trailing-partial-interval flush test. */
    bool currentIntervalActive() const
    {
        return issued_.during() > 0 || used_.during() > 0 ||
               late_.during() > 0;
    }

    /** Fresh-replay reset: clears the aged, in-flight and lifetime
     *  counters AND the latched accuracy that endInterval()
     *  deliberately holds across zero-issue stretches. Without the
     *  latter a replayed engine inherits the previous run's accuracy
     *  and the throttler starts from a stale measurement. */
    void reset()
    {
        issued_.reset();
        used_.reset();
        late_.reset();
        heldAccuracy_ = 1.0;
    }

  private:
    IntervalCounter issued_;
    IntervalCounter used_;
    IntervalCounter late_;
    /** Last accuracy measured over a nonzero aged issued count. */
    double heldAccuracy_ = 1.0;
};

/**
 * Pollution filter for the FDP comparison: a hashed bit table of
 * blocks recently evicted by prefetch fills. Cleared every interval.
 */
class PollutionFilter
{
  public:
    explicit PollutionFilter(unsigned entries = 4096);

    void onPrefetchEvictedDemandBlock(BlockAddr block);

    /** Does this demand miss hit a prefetch-evicted block? */
    bool test(BlockAddr block) const;

    void clear();

  private:
    std::size_t index(BlockAddr block) const
    {
        // Full-width xorshift-multiply mixer (the splitmix64
        // finalizer). The old single-shift hash (v ^= v >> 13, then
        // modulo) dropped every block-number bit above bit 24: one
        // 13-bit shift moves the high bits no further down than bit
        // 12 of the table index, so any two blocks differing only in
        // high-order bits aliased deterministically — phantom
        // pollution for large heaps that stride in high bits. The
        // regression test pins that every input bit reaches the index.
        std::uint64_t v = block.raw();
        v ^= v >> 33;
        v *= 0xff51afd7ed558ccdull;
        v ^= v >> 33;
        v *= 0xc4ceb9fe1a85ec53ull;
        v ^= v >> 33;
        return static_cast<std::size_t>(v % bits_.size());
    }

    std::vector<bool> bits_;
};

} // namespace ecdp

#endif // ECDP_THROTTLE_FEEDBACK_HH
