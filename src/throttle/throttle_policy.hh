/**
 * @file
 * The pluggable throttle-decision interface and its string-keyed
 * registry.
 *
 * The paper's Table 3 coordinated rules and the FDP comparison point
 * are two hand-built policies over the same per-interval feedback
 * snapshots (accuracy, coverage, lateness, pollution). ThrottlePolicy
 * factors that decision out of the MemorySystem: at every interval
 * boundary each engine-stack slot asks the configured policy for an
 * Up/Down/Nothing move, given the pre-decision snapshots of the whole
 * stack plus interval-level progress deltas (cycles, instructions,
 * bus transactions). Rule policies ignore the deltas; learned
 * policies ("tabular-rl") use them as their reward signal.
 *
 * PolicyRegistry mirrors the PR-7 EngineRegistry: built-in policies
 * are registered on first use by an explicit call (never static
 * initializers), duplicate names throw, and unknown names fail with a
 * diagnostic listing every known policy. The conformance battery in
 * tests/test_throttle_policy.cc instantiates per registry entry, and
 * the simlint `policy-conformance` rule fails the build if a
 * ThrottlePolicy subclass skips registration or the fixture table.
 */

#ifndef ECDP_THROTTLE_THROTTLE_POLICY_HH
#define ECDP_THROTTLE_THROTTLE_POLICY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "memsim/types.hh"
#include "obs/metrics.hh"
#include "throttle/coordinated_throttler.hh"
#include "throttle/fdp_throttler.hh"

namespace ecdp
{

/**
 * Interval-level system observation shared by every slot's decision:
 * the deltas since the previous interval boundary. deltaInstructions
 * is 0 when no progress source is attached (tests that drive a bare
 * MemorySystem); the built-in rule policies never read the context,
 * so legacy behaviour cannot depend on it.
 */
struct IntervalContext
{
    /** Cycle at which the interval ended. */
    Cycle cycle{};
    std::uint64_t deltaCycles = 0;
    std::uint64_t deltaInstructions = 0;
    std::uint64_t deltaBusTransactions = 0;
};

/**
 * Everything a policy factory may need at construction time — the
 * SystemConfig throttle knobs as plain values, so the throttle layer
 * stays independent of sim/.
 */
struct PolicyContext
{
    CoordinatedThrottler::Thresholds coord{};
    FdpThrottler::Thresholds fdp{};
    /**
     * Exploration seed for randomized policies. All policy randomness
     * derives from it (never from wall clock or address entropy), so
     * equal seeds give byte-identical runs — the determinism the
     * seeded-replay tests pin down.
     */
    std::uint64_t seed = 1;
};

/**
 * One throttle-decision policy behind uniform hooks.
 *
 * Contract, enforced per registry entry by the conformance battery:
 *  - onIntervalEnd() is called once per stack slot at every interval
 *    boundary, slots in increasing order, with the same pre-decision
 *    @c snapshots vector (all snapshots are taken before any decision
 *    is applied) and the same IntervalContext — a stateful policy may
 *    therefore fold its per-interval bookkeeping on the slot-0 call;
 *  - policies are deterministic: the same snapshot/context sequence
 *    (and seed) produces the same decisions;
 *  - policies only *decide* — applying a decision to a slot's
 *    aggressiveness level stays with the MemorySystem.
 */
class ThrottlePolicy
{
  public:
    virtual ~ThrottlePolicy() = default;

    /** Registry name ("coordinated", "fdp", "static", "tabular-rl"). */
    virtual const char *name() const = 0;

    /** Decide slot @p slot's aggressiveness move at an interval end. */
    virtual ThrottleDecision
    onIntervalEnd(std::size_t slot,
                  const std::vector<FeedbackSnapshot> &snapshots,
                  const IntervalContext &interval) = 0;

    /** Forget all learned/adaptive state (fresh-replay reset path). */
    virtual void reset() {}

    /**
     * Compact JSON object describing the policy's state over the
     * interval just decided ("" = nothing to report). Non-empty
     * returns are embedded verbatim as intervalSeries[i]."policy";
     * the built-in rule policies return "" so default-policy stats
     * stay byte-identical to the pinned goldens.
     */
    virtual std::string intervalStateJson() const { return ""; }

    /** Final serialized policy state ("" = none) for RunStats. */
    virtual std::string stateJson() const { return ""; }

    /** Register policy-specific counters (actions, visits, ...). */
    virtual void bindCounters(obs::MetricScope & /*scope*/) {}
};

/**
 * Process-wide string-keyed policy factory registry, mirroring
 * EngineRegistry: explicit builtin registration from instance(),
 * duplicate add() throws, unknown create() lists the known names.
 */
class PolicyRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<ThrottlePolicy>(
        const PolicyContext &)>;

    /** The process-wide registry, builtins included. */
    static PolicyRegistry &instance();

    /**
     * Register a factory under @p name.
     * @throws std::logic_error if the name is already taken.
     */
    void add(const std::string &name, Factory factory);

    bool contains(const std::string &name) const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

    /**
     * Create a policy by name.
     * @throws std::invalid_argument naming the unknown policy and
     *         listing the known ones.
     */
    std::unique_ptr<ThrottlePolicy>
    create(const std::string &name, const PolicyContext &ctx) const;

  private:
    std::map<std::string, Factory> factories_;
};

/** Registers the built-in policies (defined in policies.cc; called
 *  once from PolicyRegistry::instance()). */
void registerBuiltinPolicies(PolicyRegistry &policies);

} // namespace ecdp

#endif // ECDP_THROTTLE_THROTTLE_POLICY_HH
