/**
 * @file
 * Feedback-directed prefetching throttler after Srinath et al.
 * (HPCA 2007) — the Section 6.5 comparison.
 *
 * FDP throttles each prefetcher *individually* from its own accuracy,
 * lateness, and pollution, with six threshold values (two accuracy
 * cut points, lateness, pollution, and the interval/filter sizings).
 * Unlike coordinated throttling it never looks at the rival
 * prefetcher, which is precisely the deficiency the paper's
 * comparison exposes. The decision table is reconstructed from the
 * published heuristic: high accuracy rewards lateness with more
 * aggressiveness; medium accuracy throttles down when polluting;
 * low accuracy always throttles down.
 */

#ifndef ECDP_THROTTLE_FDP_THROTTLER_HH
#define ECDP_THROTTLE_FDP_THROTTLER_HH

#include "throttle/coordinated_throttler.hh"

namespace ecdp
{

/**
 * Per-prefetcher FDP throttling.
 */
class FdpThrottler
{
  public:
    /** The six FDP thresholds. */
    struct Thresholds
    {
        double aHigh = 0.75;
        double aLow = 0.40;
        double tLateness = 0.10;
        double tPollution = 0.005;
        /** Interval length (L2 evictions). */
        std::uint64_t intervalEvictions = 8192;
        /** Pollution filter entries. */
        unsigned pollutionFilterEntries = 4096;
    };

    FdpThrottler() : thresholds_(Thresholds()) {}

    explicit FdpThrottler(Thresholds thresholds)
        : thresholds_(thresholds)
    {}

    /** Decide from this prefetcher's own feedback only. */
    ThrottleDecision decide(const FeedbackSnapshot &self) const;

    const Thresholds &thresholds() const { return thresholds_; }

  private:
    Thresholds thresholds_;
};

} // namespace ecdp

#endif // ECDP_THROTTLE_FDP_THROTTLER_HH
