/**
 * @file
 * The built-in throttle policies: the ports of the paper's rule
 * matrices onto the ThrottlePolicy interface, plus the static
 * (no-throttling) policy. The tabular-RL policy lives in
 * tabular_rl_policy.cc.
 *
 * The ports are thin adapters over the existing CoordinatedThrottler
 * and FdpThrottler so the Table 3/4 and FDP decision logic has exactly
 * one implementation — the pre-policy unit tests keep pinning the
 * matrices, and the golden byte-identity matrix in
 * tests/test_throttle_policy.cc pins the adapters.
 */

#include "throttle/throttle_policy.hh"

#include <memory>

#include "throttle/tabular_rl_policy.hh"

namespace ecdp
{

namespace
{

/** Fixed aggressiveness: never moves a slot (ThrottleKind::None). */
class StaticPolicy final : public ThrottlePolicy
{
  public:
    const char *name() const override { return "static"; }

    ThrottleDecision
    onIntervalEnd(std::size_t /*slot*/,
                  const std::vector<FeedbackSnapshot> & /*snapshots*/,
                  const IntervalContext & /*interval*/) override
    {
        return ThrottleDecision::Nothing;
    }
};

/** The paper's Table 3 coordinated rules (Section 4.2). */
class CoordinatedPolicy final : public ThrottlePolicy
{
  public:
    explicit CoordinatedPolicy(const PolicyContext &ctx)
        : throttler_(ctx.coord)
    {}

    const char *name() const override { return "coordinated"; }

    ThrottleDecision
    onIntervalEnd(std::size_t slot,
                  const std::vector<FeedbackSnapshot> &snapshots,
                  const IntervalContext & /*interval*/) override
    {
        return throttler_.decide(
            snapshots[slot],
            CoordinatedThrottler::rival(snapshots, slot));
    }

  private:
    CoordinatedThrottler throttler_;
};

/** Per-slot feedback-directed prefetching (Section 6.5 comparison). */
class FdpPolicy final : public ThrottlePolicy
{
  public:
    explicit FdpPolicy(const PolicyContext &ctx) : throttler_(ctx.fdp)
    {}

    const char *name() const override { return "fdp"; }

    ThrottleDecision
    onIntervalEnd(std::size_t slot,
                  const std::vector<FeedbackSnapshot> &snapshots,
                  const IntervalContext & /*interval*/) override
    {
        return throttler_.decide(snapshots[slot]);
    }

  private:
    FdpThrottler throttler_;
};

} // namespace

void
registerBuiltinPolicies(PolicyRegistry &policies)
{
    policies.add("static", [](const PolicyContext &) {
        return std::make_unique<StaticPolicy>();
    });
    policies.add("coordinated", [](const PolicyContext &ctx) {
        return std::make_unique<CoordinatedPolicy>(ctx);
    });
    policies.add("fdp", [](const PolicyContext &ctx) {
        return std::make_unique<FdpPolicy>(ctx);
    });
    policies.add("tabular-rl", [](const PolicyContext &ctx) {
        return std::make_unique<TabularRlPolicy>(ctx);
    });
}

} // namespace ecdp
