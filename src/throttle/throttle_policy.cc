#include "throttle/throttle_policy.hh"

#include <mutex>
#include <stdexcept>
#include <utility>

namespace ecdp
{

PolicyRegistry &
PolicyRegistry::instance()
{
    static PolicyRegistry policies;
    static std::once_flag builtins;
    std::call_once(builtins, [] { registerBuiltinPolicies(policies); });
    return policies;
}

void
PolicyRegistry::add(const std::string &name, Factory factory)
{
    auto [it, inserted] = factories_.emplace(name, std::move(factory));
    (void)it;
    if (!inserted) {
        throw std::logic_error("throttle policy \"" + name +
                               "\" is already registered");
    }
}

bool
PolicyRegistry::contains(const std::string &name) const
{
    return factories_.count(name) != 0;
}

std::vector<std::string>
PolicyRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto &[name, factory] : factories_) {
        (void)factory;
        out.push_back(name); // std::map iterates sorted
    }
    return out;
}

std::unique_ptr<ThrottlePolicy>
PolicyRegistry::create(const std::string &name,
                       const PolicyContext &ctx) const
{
    auto it = factories_.find(name);
    if (it == factories_.end()) {
        std::string known;
        for (const auto &[key, factory] : factories_) {
            (void)factory;
            known += known.empty() ? "" : ", ";
            known += key;
        }
        throw std::invalid_argument("unknown throttle policy \"" +
                                    name + "\" (known policies: " +
                                    known + ")");
    }
    return it->second(ctx);
}

} // namespace ecdp
