/**
 * @file
 * Fundamental simulator-wide types.
 *
 * The simulated machine is x86-32: virtual addresses and pointers are
 * 4 bytes wide (Section 5 of the paper). Cycle counts are 64-bit.
 *
 * Addresses and cycle counts are *strong* wrapper types rather than
 * bare integer aliases, so the classic simulator bug class — treating
 * a byte address as a block index (or vice versa), or mixing a cycle
 * count into an instruction count — fails to compile instead of
 * silently corrupting a hash or a latency:
 *
 *  - ByteAddr   a byte-granular simulated virtual address. Supports
 *               pointer-style arithmetic with integral byte offsets,
 *               but deliberately has *no* shift or mask operators:
 *               every byte<->block conversion must go through
 *               BlockGeometry (memsim/block_geometry.hh).
 *  - BlockAddr  a cache-block *number* (byte address >> block shift).
 *               Only BlockGeometry mints these from byte addresses;
 *               block-indexed tables (pollution filters, Markov
 *               tables, bank hashes) take BlockAddr so handing them a
 *               byte address is a type error.
 *  - Cycle      an absolute core-clock time or cycle delta. Explicit
 *               construction only, so instruction counts (plain
 *               std::uint64_t) cannot quietly become times.
 *
 * All three are zero-overhead: same size, alignment and layout as the
 * raw integers they wrap (static_asserts below), trivially copyable,
 * and every operation is a constexpr inline on the raw value.
 */

#ifndef ECDP_MEMSIM_TYPES_HH
#define ECDP_MEMSIM_TYPES_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <ostream>
#include <type_traits>

namespace ecdp
{

/**
 * Simulated virtual byte address (x86-32, 4-byte pointers).
 *
 * Implicitly constructible from a raw 32-bit value: workload
 * generators and tests mint addresses from literals and allocator
 * arithmetic, and an integer entering the address domain is exactly
 * what construction means. Leaving the domain is explicit (raw()),
 * and reinterpreting bits (shifting, masking) is impossible without
 * BlockGeometry — which is where the safety lives.
 */
class ByteAddr
{
  public:
    constexpr ByteAddr() = default;
    constexpr ByteAddr(std::uint32_t raw) : v_(raw) {}

    /** The raw 32-bit address value. */
    constexpr std::uint32_t raw() const { return v_; }

    /** @{ Pointer-style arithmetic with integral byte offsets.
     *  Wraps mod 2^32 like the simulated hardware would. */
    template <typename I,
              std::enable_if_t<std::is_integral_v<I>, int> = 0>
    constexpr ByteAddr operator+(I bytes) const
    {
        return ByteAddr(
            static_cast<std::uint32_t>(v_ + static_cast<std::uint32_t>(bytes)));
    }

    template <typename I,
              std::enable_if_t<std::is_integral_v<I>, int> = 0>
    constexpr ByteAddr operator-(I bytes) const
    {
        return ByteAddr(
            static_cast<std::uint32_t>(v_ - static_cast<std::uint32_t>(bytes)));
    }

    template <typename I,
              std::enable_if_t<std::is_integral_v<I>, int> = 0>
    constexpr ByteAddr &operator+=(I bytes)
    {
        v_ += static_cast<std::uint32_t>(bytes);
        return *this;
    }
    /** @} */

    /** Byte distance between two addresses (this - other, mod 2^32). */
    constexpr std::uint32_t operator-(ByteAddr other) const
    {
        return v_ - other.v_;
    }

    constexpr bool operator==(const ByteAddr &) const = default;
    constexpr auto operator<=>(const ByteAddr &) const = default;

  private:
    std::uint32_t v_ = 0;
};

/**
 * Cache-block number: a byte address with the intra-block bits
 * discarded *and shifted out*. Two ByteAddrs in the same block map to
 * the same BlockAddr; adjacent blocks map to adjacent BlockAddrs
 * regardless of the configured block size.
 *
 * Construction from a raw integer is explicit, and no arithmetic with
 * byte quantities exists: BlockGeometry::blockOf() is the only
 * sensible producer, and block-indexed tables the only consumers.
 */
class BlockAddr
{
  public:
    constexpr BlockAddr() = default;
    constexpr explicit BlockAddr(std::uint32_t block_number)
        : v_(block_number)
    {}

    /** The raw block number (for indexing / hashing). */
    constexpr std::uint32_t raw() const { return v_; }

    /** @p n blocks further on (n may be negative). */
    template <typename I,
              std::enable_if_t<std::is_integral_v<I>, int> = 0>
    constexpr BlockAddr operator+(I n) const
    {
        return BlockAddr(
            static_cast<std::uint32_t>(v_ + static_cast<std::uint32_t>(n)));
    }

    constexpr bool operator==(const BlockAddr &) const = default;
    constexpr auto operator<=>(const BlockAddr &) const = default;

  private:
    std::uint32_t v_ = 0;
};

/**
 * Core clock cycle count (absolute time or delta).
 *
 * Explicit construction only: `Cycle{n}` marks every point where a
 * plain integer (a latency parameter, a parsed JSON field) enters the
 * time domain, and an instruction count can never be passed where a
 * time is expected. Cycle+Cycle / Cycle-Cycle arithmetic and integral
 * offsets (`now + 1`) are allowed; leaving the domain is raw().
 */
class Cycle
{
  public:
    constexpr Cycle() = default;
    constexpr explicit Cycle(std::uint64_t v) : v_(v) {}

    constexpr std::uint64_t raw() const { return v_; }

    constexpr Cycle operator+(Cycle other) const
    {
        return Cycle(v_ + other.v_);
    }
    constexpr Cycle operator-(Cycle other) const
    {
        return Cycle(v_ - other.v_);
    }

    template <typename I,
              std::enable_if_t<std::is_integral_v<I>, int> = 0>
    constexpr Cycle operator+(I n) const
    {
        return Cycle(v_ + static_cast<std::uint64_t>(n));
    }
    template <typename I,
              std::enable_if_t<std::is_integral_v<I>, int> = 0>
    constexpr Cycle operator-(I n) const
    {
        return Cycle(v_ - static_cast<std::uint64_t>(n));
    }

    constexpr Cycle &operator+=(Cycle other)
    {
        v_ += other.v_;
        return *this;
    }
    template <typename I,
              std::enable_if_t<std::is_integral_v<I>, int> = 0>
    constexpr Cycle &operator+=(I n)
    {
        v_ += static_cast<std::uint64_t>(n);
        return *this;
    }
    constexpr Cycle &operator++()
    {
        ++v_;
        return *this;
    }
    constexpr Cycle operator++(int)
    {
        Cycle old = *this;
        ++v_;
        return old;
    }

    constexpr bool operator==(const Cycle &) const = default;
    constexpr auto operator<=>(const Cycle &) const = default;

  private:
    std::uint64_t v_ = 0;
};

/** @{ Zero-overhead guarantees: the wrappers are layout-identical to
 *  the raw integers they replace. */
static_assert(sizeof(ByteAddr) == sizeof(std::uint32_t) &&
              alignof(ByteAddr) == alignof(std::uint32_t) &&
              std::is_trivially_copyable_v<ByteAddr> &&
              std::is_standard_layout_v<ByteAddr>);
static_assert(sizeof(BlockAddr) == sizeof(std::uint32_t) &&
              alignof(BlockAddr) == alignof(std::uint32_t) &&
              std::is_trivially_copyable_v<BlockAddr> &&
              std::is_standard_layout_v<BlockAddr>);
static_assert(sizeof(Cycle) == sizeof(std::uint64_t) &&
              alignof(Cycle) == alignof(std::uint64_t) &&
              std::is_trivially_copyable_v<Cycle> &&
              std::is_standard_layout_v<Cycle>);
/** @} */

/** @{ Stream output (test diagnostics) prints the raw value. */
inline std::ostream &operator<<(std::ostream &os, ByteAddr a)
{
    return os << a.raw();
}
inline std::ostream &operator<<(std::ostream &os, BlockAddr b)
{
    return os << b.raw();
}
inline std::ostream &operator<<(std::ostream &os, Cycle c)
{
    return os << c.raw();
}
/** @} */

/** Historical alias: a simulated virtual (byte) address. */
using Addr = ByteAddr;

/**
 * "No scheduled event": the sentinel nextEventCycle() answers when a
 * component cannot act again without external input. The event-driven
 * simulation loop takes the minimum over all components, so the
 * sentinel (max Cycle) never wins while anything has work pending.
 */
inline constexpr Cycle kNoEventCycle = Cycle{~std::uint64_t{0}};

/** Width of a simulated pointer in bytes. */
inline constexpr unsigned kPointerBytes = 4;

/** Base of the simulated heap. The high-order byte (0x40) is what the
 *  CDP compare-bits predictor matches against (8 compare bits). */
inline constexpr Addr kHeapBase = 0x40000000u;

/** Base of the simulated global/static data segment. */
inline constexpr Addr kGlobalBase = 0x10000000u;

/** Base of the simulated stack segment (grows down). */
inline constexpr Addr kStackBase = 0xbf000000u;

} // namespace ecdp

/** @{ Hash support so the strong types key unordered containers. */
template <> struct std::hash<ecdp::ByteAddr>
{
    std::size_t operator()(const ecdp::ByteAddr &a) const noexcept
    {
        return std::hash<std::uint32_t>{}(a.raw());
    }
};
template <> struct std::hash<ecdp::BlockAddr>
{
    std::size_t operator()(const ecdp::BlockAddr &a) const noexcept
    {
        return std::hash<std::uint32_t>{}(a.raw());
    }
};
template <> struct std::hash<ecdp::Cycle>
{
    std::size_t operator()(const ecdp::Cycle &c) const noexcept
    {
        return std::hash<std::uint64_t>{}(c.raw());
    }
};
/** @} */

#endif // ECDP_MEMSIM_TYPES_HH
