/**
 * @file
 * Fundamental simulator-wide types.
 *
 * The simulated machine is x86-32: virtual addresses and pointers are
 * 4 bytes wide (Section 5 of the paper). Cycle counts are 64-bit.
 */

#ifndef ECDP_MEMSIM_TYPES_HH
#define ECDP_MEMSIM_TYPES_HH

#include <cstdint>

namespace ecdp
{

/** Simulated virtual address (x86-32, 4-byte pointers). */
using Addr = std::uint32_t;

/** Core clock cycle count. */
using Cycle = std::uint64_t;

/**
 * "No scheduled event": the sentinel nextEventCycle() answers when a
 * component cannot act again without external input. The event-driven
 * simulation loop takes the minimum over all components, so the
 * sentinel (max Cycle) never wins while anything has work pending.
 */
inline constexpr Cycle kNoEventCycle = ~Cycle{0};

/** Width of a simulated pointer in bytes. */
inline constexpr unsigned kPointerBytes = 4;

/** Base of the simulated heap. The high-order byte (0x40) is what the
 *  CDP compare-bits predictor matches against (8 compare bits). */
inline constexpr Addr kHeapBase = 0x40000000u;

/** Base of the simulated global/static data segment. */
inline constexpr Addr kGlobalBase = 0x10000000u;

/** Base of the simulated stack segment (grows down). */
inline constexpr Addr kStackBase = 0xbf000000u;

} // namespace ecdp

#endif // ECDP_MEMSIM_TYPES_HH
