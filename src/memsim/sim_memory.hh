/**
 * @file
 * Sparse byte-addressable image of the simulated 32-bit address space.
 *
 * Content-directed prefetching scans the *contents* of fetched cache
 * blocks for pointer values, so the simulator must hold a faithful image
 * of the simulated heap. SimMemory stores that image sparsely in 4 KB
 * pages allocated on first touch.
 */

#ifndef ECDP_MEMSIM_SIM_MEMORY_HH
#define ECDP_MEMSIM_SIM_MEMORY_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "memsim/types.hh"

namespace ecdp
{

/**
 * Sparse paged memory image.
 *
 * Reads of untouched memory return zero bytes, which is convenient: a
 * zero word is never a heap pointer, so CDP ignores it.
 */
class SimMemory
{
  public:
    static constexpr unsigned kPageShift = 12;
    static constexpr std::size_t kPageBytes = std::size_t{1} << kPageShift;

    SimMemory() = default;

    /** Write @p size bytes (1, 2, 4 or 8) of @p value at @p addr. */
    void write(Addr addr, unsigned size, std::uint64_t value);

    /** Read @p size bytes (1, 2, 4 or 8) at @p addr, zero-extended. */
    std::uint64_t read(Addr addr, unsigned size) const;

    /** Write a simulated pointer (4 bytes). */
    void writePointer(Addr addr, Addr value)
    {
        write(addr, 4, value.raw());
    }

    /** Read a simulated pointer (4 bytes). */
    Addr readPointer(Addr addr) const
    {
        return Addr(static_cast<std::uint32_t>(read(addr, 4)));
    }

    /**
     * Copy @p len bytes starting at @p addr into @p out. Used by the
     * content-directed prefetcher to scan a whole cache block.
     */
    void readBlock(Addr addr, std::uint8_t *out, std::size_t len) const;

    /** Number of distinct pages touched so far (footprint / 4 KB). */
    std::size_t pagesTouched() const { return pages_.size(); }

    /** Footprint in bytes (pages touched times the page size). */
    std::size_t footprintBytes() const
    {
        return pages_.size() * kPageBytes;
    }

    /** Drop all contents, returning the image to the all-zero state. */
    void clear() { pages_.clear(); }

    /** Deep-copy the image (SimMemory itself is move-only). */
    SimMemory clone() const;

  private:
    using Page = std::array<std::uint8_t, kPageBytes>;

    /** Sparse-map key of the page containing @p addr. */
    static std::uint32_t pageIndex(Addr addr)
    {
        return addr.raw() >> kPageShift;
    }

    /** Byte offset of @p addr within its page. */
    static std::size_t offsetInPage(Addr addr)
    {
        return addr.raw() & (kPageBytes - 1);
    }

    /** Find the page containing @p addr, or null if untouched. */
    const Page *findPage(Addr addr) const;

    /** Find or allocate the page containing @p addr. */
    Page &touchPage(Addr addr);

    std::unordered_map<std::uint32_t, std::unique_ptr<Page>> pages_;
};

} // namespace ecdp

#endif // ECDP_MEMSIM_SIM_MEMORY_HH
