#include "memsim/bump_allocator.hh"

#include <cassert>

namespace ecdp
{

Addr
BumpAllocator::allocate(std::size_t bytes, std::size_t align)
{
    assert(bytes > 0);
    assert(align > 0 && (align & (align - 1)) == 0);
    std::uint32_t a = static_cast<std::uint32_t>(align);
    Addr aligned{(next_.raw() + a - 1) & ~(a - 1)};
    next_ = aligned + bytes;
    return aligned;
}

void
BumpAllocator::alignTo(std::size_t boundary)
{
    assert(boundary > 0 && (boundary & (boundary - 1)) == 0);
    std::uint32_t b = static_cast<std::uint32_t>(boundary);
    next_ = Addr{(next_.raw() + b - 1) & ~(b - 1)};
}

} // namespace ecdp
