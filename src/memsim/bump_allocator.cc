#include "memsim/bump_allocator.hh"

#include <cassert>

namespace ecdp
{

Addr
BumpAllocator::allocate(std::size_t bytes, std::size_t align)
{
    assert(bytes > 0);
    assert(align > 0 && (align & (align - 1)) == 0);
    Addr aligned = static_cast<Addr>((next_ + align - 1) & ~(align - 1));
    next_ = aligned + static_cast<Addr>(bytes);
    return aligned;
}

void
BumpAllocator::alignTo(std::size_t boundary)
{
    assert(boundary > 0 && (boundary & (boundary - 1)) == 0);
    next_ = static_cast<Addr>((next_ + boundary - 1) & ~(boundary - 1));
}

} // namespace ecdp
