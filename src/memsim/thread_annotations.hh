/**
 * @file
 * Clang thread-safety annotations for every locked subsystem.
 *
 * The macros wrap clang's `-Wthread-safety` attributes (and expand
 * to nothing on every other compiler), so the relationship between a
 * mutex and the state it guards is part of the type system instead
 * of a comment: a member tagged ECDP_GUARDED_BY(mutex_) read or
 * written without the lock, a *Locked() helper tagged
 * ECDP_REQUIRES(mutex_) called lock-free, or a callback-firing
 * method tagged ECDP_EXCLUDES(mutex_) invoked under it all fail the
 * clang CI build — the exact bug classes (shutdown use-after-free,
 * callback invoked under a lock) PR 9's review had to find by hand.
 *
 * AnnotatedMutex is the tree's only sanctioned mutex type: a
 * CAPABILITY-annotated wrapper that compiles to a plain std::mutex
 * off-clang, locked through the SCOPED_CAPABILITY MutexLock guard
 * (a std::unique_lock underneath, so condition variables wait on
 * native()). simlint's raw-mutex rule and ecdplint's
 * mutex-unannotated rule forbid raw std::mutex members anywhere
 * else, so new concurrent state cannot dodge the analysis.
 */

#ifndef ECDP_MEMSIM_THREAD_ANNOTATIONS_HH
#define ECDP_MEMSIM_THREAD_ANNOTATIONS_HH

#include <mutex>

#if defined(__clang__)
#define ECDP_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define ECDP_THREAD_ANNOTATION_(x)
#endif

/** Marks a type as a lockable capability ("mutex"). */
#define ECDP_CAPABILITY(x) ECDP_THREAD_ANNOTATION_(capability(x))

/** Marks an RAII guard that acquires in its constructor and releases
 *  in its destructor. */
#define ECDP_SCOPED_CAPABILITY ECDP_THREAD_ANNOTATION_(scoped_lockable)

/** Data member readable/writable only while holding @p x. */
#define ECDP_GUARDED_BY(x) ECDP_THREAD_ANNOTATION_(guarded_by(x))

/** Pointer member whose *pointee* is guarded by @p x. */
#define ECDP_PT_GUARDED_BY(x) ECDP_THREAD_ANNOTATION_(pt_guarded_by(x))

/** Function callable only while already holding the capabilities. */
#define ECDP_REQUIRES(...)                                             \
    ECDP_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/** Function that acquires the capabilities and returns holding them. */
#define ECDP_ACQUIRE(...)                                              \
    ECDP_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/** Function that releases the held capabilities. */
#define ECDP_RELEASE(...)                                              \
    ECDP_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/** Function that acquires the capability when it returns @p result. */
#define ECDP_TRY_ACQUIRE(...)                                          \
    ECDP_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/** Function the caller must NOT hold the capabilities around — the
 *  contract for anything that fires user callbacks which may
 *  re-enter and take the same lock. */
#define ECDP_EXCLUDES(...)                                             \
    ECDP_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/** Tells the analysis the capability is held from here on (checked
 *  nowhere, trusted): for lambda bodies, which clang analyzes
 *  without the creating scope's lock context. */
#define ECDP_ASSERT_CAPABILITY(...)                                    \
    ECDP_THREAD_ANNOTATION_(assert_capability(__VA_ARGS__))

/** Escape hatch; every use needs a comment saying why. */
#define ECDP_NO_THREAD_SAFETY_ANALYSIS                                 \
    ECDP_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace ecdp
{

/**
 * The tree's mutex type: a std::mutex clang can reason about.
 * Lock it through MutexLock (below), never by hand, so every
 * critical section is a scope the analysis (and a reader) can see.
 */
class ECDP_CAPABILITY("mutex") AnnotatedMutex
{
  public:
    AnnotatedMutex() = default;
    AnnotatedMutex(const AnnotatedMutex &) = delete;
    AnnotatedMutex &operator=(const AnnotatedMutex &) = delete;

    void lock() ECDP_ACQUIRE() { mutex_.lock(); }
    void unlock() ECDP_RELEASE() { mutex_.unlock(); }
    bool try_lock() ECDP_TRY_ACQUIRE(true)
    {
        return mutex_.try_lock();
    }

    /** No-op runtime-wise; promises the analysis this mutex is held.
     *  Use as the first line of a lambda that runs under the lock
     *  (condition-variable predicates, locked visitors). */
    void assertHeld() const ECDP_ASSERT_CAPABILITY() {}

    /** The wrapped mutex — only for MutexLock's unique_lock. */
    std::mutex &native() { return mutex_; }

  private:
    std::mutex mutex_;
};

/**
 * Scoped lock over an AnnotatedMutex. Backed by a std::unique_lock,
 * so condition variables park on native():
 *
 *     MutexLock lock(mutex_);
 *     cv_.wait(lock.native(), [&] { return ready_; });
 *
 * Relockable: unlock()/lock() hand the capability back and forth for
 * the run-outside-the-lock pattern, and the destructor releases only
 * if still held.
 */
class ECDP_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(AnnotatedMutex &mutex) ECDP_ACQUIRE(mutex)
        : lock_(mutex.native())
    {}

    ~MutexLock() ECDP_RELEASE() {}

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    void unlock() ECDP_RELEASE() { lock_.unlock(); }
    void lock() ECDP_ACQUIRE() { lock_.lock(); }

    /** The underlying unique_lock, for condition-variable waits. */
    std::unique_lock<std::mutex> &native() { return lock_; }

  private:
    std::unique_lock<std::mutex> lock_;
};

} // namespace ecdp

#endif // ECDP_MEMSIM_THREAD_ANNOTATIONS_HH
