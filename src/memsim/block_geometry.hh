/**
 * @file
 * The single owner of every byte<->block address conversion.
 *
 * PR 3 found the DRAM bank hash hard-coding a `>> 7` (128-byte) shift
 * and silently aliasing adjacent 64-byte blocks; the same latent
 * assumption lived in the pollution filters and the Markov table. All
 * block-size-dependent address manipulation now funnels through this
 * class: components hold a BlockGeometry derived from the configured
 * block size and never shift or mask an address themselves. The
 * simlint `magic-block-shift` rule (tools/simlint) enforces that no
 * block-shift literal exists outside this file.
 */

#ifndef ECDP_MEMSIM_BLOCK_GEOMETRY_HH
#define ECDP_MEMSIM_BLOCK_GEOMETRY_HH

#include <cassert>
#include <cstdint>

#include "memsim/types.hh"

namespace ecdp
{

/**
 * Geometry of a power-of-two cache block: size, derived shift and
 * mask, and the byte<->block conversions every component needs.
 */
class BlockGeometry
{
  public:
    /** @param block_bytes Block size in bytes (power of two, >= 1). */
    constexpr explicit BlockGeometry(std::uint32_t block_bytes)
        : bytes_(block_bytes), shift_(log2Of(block_bytes)),
          mask_(block_bytes - 1)
    {
        assert(block_bytes != 0 &&
               (block_bytes & (block_bytes - 1)) == 0 &&
               "block size must be a power of two");
    }

    constexpr std::uint32_t blockBytes() const { return bytes_; }
    constexpr unsigned blockShift() const { return shift_; }
    constexpr std::uint32_t blockMask() const { return mask_; }

    /** Block number containing @p addr. */
    constexpr BlockAddr blockOf(ByteAddr addr) const
    {
        return BlockAddr(addr.raw() >> shift_);
    }

    /** First byte of block @p block. */
    constexpr ByteAddr baseOf(BlockAddr block) const
    {
        return ByteAddr(block.raw() << shift_);
    }

    /** @p addr rounded down to its block's first byte. */
    constexpr ByteAddr alignDown(ByteAddr addr) const
    {
        return ByteAddr(addr.raw() & ~mask_);
    }

    /** Byte offset of @p addr within its block. */
    constexpr std::uint32_t offsetIn(ByteAddr addr) const
    {
        return addr.raw() & mask_;
    }

    /** Do @p a and @p b fall in the same block? */
    constexpr bool sameBlock(ByteAddr a, ByteAddr b) const
    {
        return blockOf(a) == blockOf(b);
    }

    /**
     * Block number as a signed value, for prefetchers (stream, GHB)
     * that track directions and deltas in signed block space.
     */
    constexpr std::int64_t signedBlockOf(ByteAddr addr) const
    {
        return static_cast<std::int64_t>(addr.raw() >> shift_);
    }

    /** First byte of signed block number @p block (must be >= 0 and
     *  fit the 32-bit address space). */
    constexpr ByteAddr baseOfSigned(std::int64_t block) const
    {
        return ByteAddr(
            static_cast<std::uint32_t>(static_cast<std::uint64_t>(block)
                                       << shift_));
    }

    constexpr bool operator==(const BlockGeometry &) const = default;

  private:
    static constexpr unsigned log2Of(std::uint32_t v)
    {
        unsigned s = 0;
        while ((std::uint32_t{1} << s) < v)
            ++s;
        return s;
    }

    std::uint32_t bytes_;
    unsigned shift_;
    std::uint32_t mask_;
};

} // namespace ecdp

#endif // ECDP_MEMSIM_BLOCK_GEOMETRY_HH
