#include "memsim/sim_memory.hh"

#include <cassert>
#include <cstring>

namespace ecdp
{

const SimMemory::Page *
SimMemory::findPage(Addr addr) const
{
    auto it = pages_.find(pageIndex(addr));
    return it == pages_.end() ? nullptr : it->second.get();
}

SimMemory::Page &
SimMemory::touchPage(Addr addr)
{
    auto &slot = pages_[pageIndex(addr)];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

void
SimMemory::write(Addr addr, unsigned size, std::uint64_t value)
{
    assert(size == 1 || size == 2 || size == 4 || size == 8);
    for (unsigned i = 0; i < size; ++i) {
        Addr byte_addr = addr + i;
        Page &page = touchPage(byte_addr);
        page[offsetInPage(byte_addr)] =
            static_cast<std::uint8_t>(value >> (8 * i));
    }
}

std::uint64_t
SimMemory::read(Addr addr, unsigned size) const
{
    assert(size == 1 || size == 2 || size == 4 || size == 8);
    std::uint64_t value = 0;
    for (unsigned i = 0; i < size; ++i) {
        Addr byte_addr = addr + i;
        const Page *page = findPage(byte_addr);
        std::uint8_t byte =
            page ? (*page)[offsetInPage(byte_addr)] : 0;
        value |= std::uint64_t{byte} << (8 * i);
    }
    return value;
}

SimMemory
SimMemory::clone() const
{
    SimMemory copy;
    for (const auto &[key, page] : pages_)
        copy.pages_.emplace(key, std::make_unique<Page>(*page));
    return copy;
}

void
SimMemory::readBlock(Addr addr, std::uint8_t *out, std::size_t len) const
{
    std::size_t done = 0;
    while (done < len) {
        Addr cur = addr + done;
        std::size_t in_page = kPageBytes - offsetInPage(cur);
        std::size_t chunk = std::min(in_page, len - done);
        if (const Page *page = findPage(cur)) {
            std::memcpy(out + done,
                        page->data() + offsetInPage(cur), chunk);
        } else {
            std::memset(out + done, 0, chunk);
        }
        done += chunk;
    }
}

} // namespace ecdp
