/**
 * @file
 * Simulated heap allocator for workload generators.
 *
 * Mirrors the behaviour the paper's pointer-group analysis relies on
 * (Figure 3): consecutive allocations of equal-sized nodes land at
 * consecutive addresses, so the pointer fields of the nodes sharing a
 * cache block sit at constant offsets from the field a load accesses.
 */

#ifndef ECDP_MEMSIM_BUMP_ALLOCATOR_HH
#define ECDP_MEMSIM_BUMP_ALLOCATOR_HH

#include <cstddef>
#include <cstdint>

#include "memsim/types.hh"

namespace ecdp
{

/**
 * A bump allocator over the simulated heap.
 *
 * Allocation is sequential from kHeapBase by default. An optional
 * scramble stride lets workloads model fragmented heaps, where nodes
 * that are logically adjacent are physically scattered.
 */
class BumpAllocator
{
  public:
    /** @param base First address handed out. */
    explicit BumpAllocator(Addr base = kHeapBase)
        : base_(base), next_(base)
    {}

    /**
     * Allocate @p bytes with the given alignment.
     *
     * @param bytes Object size in bytes (> 0).
     * @param align Power-of-two alignment, default 8 (malloc-like).
     * @return The simulated address of the new object.
     */
    Addr allocate(std::size_t bytes, std::size_t align = 8);

    /**
     * Skip ahead so the next allocation starts a fresh cache block.
     * Used by workloads that want node-per-block layouts.
     */
    void alignTo(std::size_t boundary);

    /** Bytes allocated so far. */
    std::size_t bytesAllocated() const { return next_ - base(); }

    /** Next address the allocator would return for align = 1. */
    Addr next() const { return next_; }

  private:
    Addr base() const { return base_; }

    Addr base_ = kHeapBase;
    Addr next_;
};

} // namespace ecdp

#endif // ECDP_MEMSIM_BUMP_ALLOCATOR_HH
