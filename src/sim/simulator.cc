#include "sim/simulator.hh"

#include "core/core.hh"
#include "dram/dram.hh"
#include "sim/memory_system.hh"

namespace ecdp
{

RunStats
simulate(const SystemConfig &cfg, const Workload &workload)
{
    return simulate(cfg, workload, Observability{});
}

RunStats
simulate(const SystemConfig &cfg, const Workload &workload,
         const Observability &obs)
{
    DramSystem dram(cfg.dram, 1);
    dram.attachObservability(obs);
    MemorySystem memory(cfg, 0, workload.image.clone(), &dram, &obs);
    Core core(&workload, &memory, cfg.core);

    Cycle cycle = 0;
    while (!core.finishedOnce() && cycle < cfg.maxCycles) {
        memory.tick(cycle);
        core.tick(cycle);
        ++cycle;
    }

    RunStats stats;
    stats.workload = workload.name;
    // Unconditional watchdog check: an assert would compile out under
    // NDEBUG and let a hung config report garbage IPC silently.
    stats.timedOut = !core.finishedOnce();
    stats.cycles = stats.timedOut
        ? (cycle ? cycle : 1)
        : (core.finishCycle() ? core.finishCycle() : 1);
    // retiredFirstPass() is only latched at completion; a timed-out
    // run reports whatever actually retired.
    stats.instructions =
        stats.timedOut ? core.retired() : core.retiredFirstPass();
    stats.ipc = static_cast<double>(stats.instructions) /
                static_cast<double>(stats.cycles);
    stats.busTransactions = dram.busTransactions(0);
    stats.bpki = stats.instructions == 0
        ? 0.0
        : 1000.0 * static_cast<double>(stats.busTransactions) /
              static_cast<double>(stats.instructions);
    memory.collectStats(stats);
    return stats;
}

} // namespace ecdp
