#include "sim/simulator.hh"

#include <algorithm>

#include "core/core.hh"
#include "dram/dram.hh"
#include "sim/memory_system.hh"

namespace ecdp
{

RunStats
simulate(const SystemConfig &cfg, const Workload &workload)
{
    return simulate(cfg, workload, Observability{});
}

RunStats
simulate(const SystemConfig &cfg, const Workload &workload,
         const Observability &obs)
{
    DramSystem dram(cfg.dram, 1, cfg.l2BlockBytes);
    dram.attachObservability(obs);
    MemorySystem memory(cfg, 0, workload.image.clone(), &dram, &obs);
    Core core(&workload, &memory, cfg.core);
    // Progress source for the throttle policy's interval IPC deltas
    // (pure observation; rule policies ignore it).
    memory.attachCore(&core);

    using Phase = obs::PhaseProfiler::Phase;
    obs::PhaseProfiler *prof = obs.phases;

    // Event-driven main loop: every iteration ticks exactly as the
    // per-cycle loop would, but the clock then jumps straight to the
    // earliest cycle any component can act on. The skipped cycles are
    // provably no-op ticks (see nextEventCycle contracts and
    // DESIGN.md), so results are bit-identical with skipping on or
    // off — only wall-clock differs.
    Cycle cycle{};
    while (!core.finishedOnce() && cycle < cfg.maxCycles) {
        {
            obs::PhaseProfiler::Scoped scope(prof, Phase::MemTick);
            memory.tick(cycle);
        }
        {
            obs::PhaseProfiler::Scoped scope(prof, Phase::CoreTick);
            core.tick(cycle);
        }
        Cycle next = cycle + 1;
        if (cfg.cycleSkipping && !core.finishedOnce()) {
            obs::PhaseProfiler::Scoped scope(prof, Phase::Scheduler);
            // Cheapest bound first, and stop as soon as one pins the
            // clock to the very next cycle: on busy cycles (prefetch
            // queues draining, ROB retiring) the remaining bounds
            // cannot raise the minimum, and computing them would make
            // skipping a net loss on workloads that rarely idle.
            Cycle wake = memory.nextEventCycle(cycle);
            if (wake > cycle + 1)
                wake = std::min(wake, core.nextEventCycle(cycle));
            if (wake > cycle + 1)
                wake = std::min(wake, dram.nextEventCycle(cycle));
            // All-idle with no scheduled event is a hang; jump to the
            // watchdog so the loop exits at the same cycle count the
            // polling loop would have spun to.
            next = std::max(next, std::min(wake, cfg.maxCycles));
        }
        cycle = next;
    }

    obs::PhaseProfiler::Scoped stats_scope(prof, Phase::Stats);
    RunStats stats;
    stats.workload = workload.name;
    // Unconditional watchdog check: an assert would compile out under
    // NDEBUG and let a hung config report garbage IPC silently.
    stats.timedOut = !core.finishedOnce();
    stats.cycles = stats.timedOut
        ? (cycle.raw() ? cycle : Cycle{1})
        : (core.finishCycle().raw() ? core.finishCycle() : Cycle{1});
    // retiredFirstPass() is only latched at completion; a timed-out
    // run reports whatever actually retired.
    stats.instructions =
        stats.timedOut ? core.retired() : core.retiredFirstPass();
    stats.ipc = static_cast<double>(stats.instructions) /
                static_cast<double>(stats.cycles.raw());
    stats.busTransactions = dram.busTransactions(0);
    stats.bpki = stats.instructions == 0
        ? 0.0
        : 1000.0 * static_cast<double>(stats.busTransactions) /
              static_cast<double>(stats.instructions);
    memory.collectStats(stats, stats.cycles);
    return stats;
}

} // namespace ecdp
