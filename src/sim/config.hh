/**
 * @file
 * System configuration (Table 5 of the paper) and run statistics.
 */

#ifndef ECDP_SIM_CONFIG_HH
#define ECDP_SIM_CONFIG_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/core.hh"
#include "dram/dram.hh"
#include "prefetch/cdp.hh"
#include "prefetch/hint_table.hh"
#include "prefetch/prefetcher.hh"
#include "throttle/coordinated_throttler.hh"
#include "throttle/fdp_throttler.hh"

namespace ecdp
{

/** Throttling policy of the hybrid prefetching system. */
enum class ThrottleKind : std::uint8_t
{
    /** Fixed aggressiveness (Table 5 baseline). */
    None,
    /** The paper's coordinated throttling (Section 4). */
    Coordinated,
    /** Feedback-directed prefetching, individually (Section 6.5). */
    Fdp,
    /** Gendler-style keep-only-the-most-accurate (Section 7.4). */
    Pab,
};

const char *throttleKindName(ThrottleKind kind);

/**
 * Full system configuration. Defaults reproduce the paper's baseline:
 * an aggressive stream prefetcher, no LDS prefetcher, no throttling.
 */
struct SystemConfig
{
    CoreParams core{};

    /** @{ L1 D-cache (Table 5). */
    std::uint32_t l1Bytes = 32 * 1024;
    std::uint32_t l1Assoc = 4;
    std::uint32_t l1BlockBytes = 64;
    Cycle l1Latency{2};
    /** @} */

    /** @{ L2 (last-level) cache (Table 5). */
    std::uint32_t l2Bytes = 1024 * 1024;
    std::uint32_t l2Assoc = 8;
    std::uint32_t l2BlockBytes = 128;
    Cycle l2Latency{15};
    unsigned l2Mshrs = 32;
    /** @} */

    DramParams dram{};

    /** @{ Prefetcher selection. */
    PrimaryKind primary = PrimaryKind::Stream;
    LdsKind lds = LdsKind::None;
    /**
     * Explicit engine stack by registry name (e.g. {"stream", "cdp",
     * "isb"}). When empty (the default), the stack derives from the
     * legacy primary/lds pair above — see effectiveEngineStack().
     * Slot order matters: slot 0 keeps the "primary" counter scope and
     * start level, slot 1 "lds", and the order is part of
     * configHash().
     */
    std::vector<std::string> engines;
    unsigned streamEntries = 32;
    unsigned cdpCompareBits = 8;
    unsigned prefetchQueueEntries = 128;
    unsigned prefetchIssuePerCycle = 2;
    /** MSHR / memory-request-buffer entries prefetches must leave
     *  free so they cannot starve demand misses outright. */
    unsigned mshrReserveForDemand = 8;
    unsigned dramReserveForDemand = 8;
    /** Zhuang-Lee hardware filter applied to LDS prefetches. */
    bool hwFilter = false;
    /** GRP-style coarse gating instead of per-PG hints (Sec 7.1). */
    bool grpCoarse = false;
    /** Compiler hints (required for LdsKind::Ecdp; not owned). */
    const HintTable *hints = nullptr;
    /** @} */

    /** @{ Throttling. */
    ThrottleKind throttle = ThrottleKind::None;
    AggLevel primaryStartLevel = AggLevel::Aggressive;
    AggLevel ldsStartLevel = AggLevel::Aggressive;
    /** The paper uses 8192 L2 evictions per interval for 200M-
     *  instruction samples; our traces are ~100x shorter, so the
     *  default interval is scaled down to keep the number of
     *  throttling decisions per run comparable (see DESIGN.md). */
    std::uint64_t intervalEvictions = 1024;
    /** Table 4 thresholds. The paper's defaults are T_cov = 0.2 and
     *  A_low = 0.4, and Section 4.2 advises raising them on
     *  bandwidth-limited systems; this system (128 B blocks over an
     *  8 B bus) is one, so T_coverage defaults to 0.3 here.
     *  bench/ablation_thresholds sweeps the thresholds. */
    CoordinatedThrottler::Thresholds coordThresholds{0.3, 0.4, 0.7};
    FdpThrottler::Thresholds fdpThresholds{};
    unsigned pabWindow = 64;
    /**
     * Decision policy for the per-slot aggressiveness levels, by
     * PolicyRegistry name ("static", "coordinated", "fdp",
     * "tabular-rl"). Empty (the default) derives the policy from the
     * ThrottleKind above — None/Pab -> "static", Coordinated ->
     * "coordinated", Fdp -> "fdp" — reproducing the legacy rule
     * dispatch byte-identically (see effectiveThrottlePolicy()). A
     * non-empty name overrides the level rules for every kind; PAB's
     * enable-bit selector still keys on the kind and runs alongside.
     * Excluded from configHash() when default so pre-policy hashes
     * (and with them memo/result-cache keys) are unchanged.
     */
    std::string throttlePolicy;
    /**
     * Exploration seed for randomized policies ("tabular-rl"), folded
     * into configHash() together with the (non-default) policy name.
     * Policies derive all randomness from it — never from wall clock —
     * so equal seeds give byte-identical runs (enforced by the
     * seeded-determinism tests).
     */
    std::uint64_t throttleRlSeed = 1;
    /** @} */

    /** @{ Oracle modes. */
    /** Figure 1 (bottom): LDS demand misses become L2 hits. */
    bool idealLds = false;
    /** Section 2.3: prefetch fills go to a side buffer, never
     *  polluting the L2. */
    bool idealNoPollution = false;
    /** @} */

    /** Safety limit for the cycle loop. */
    Cycle maxCycles{4'000'000'000ull};

    /**
     * Event-driven cycle skipping: advance the clock directly to the
     * next cycle any component can act on (the minimum over the
     * cores' wakeups, pending fills, queued prefetches and DRAM
     * drains) instead of ticking every cycle. A pure wall-clock
     * optimisation — results are bit-identical either way (see
     * DESIGN.md's exactness argument and the SkippingIsExact tests),
     * which is also why the flag is deliberately excluded from
     * configHash(): both settings name the same simulated machine.
     * Off is only useful for the simbench speed comparison and for
     * debugging the scheduler itself.
     */
    bool cycleSkipping = true;
};

/** Per-pointer-group usefulness statistics. */
struct PgStats
{
    std::uint64_t issued = 0;
    std::uint64_t used = 0;

    double usefulness() const
    {
        return issued == 0
            ? 0.0
            : static_cast<double>(used) / static_cast<double>(issued);
    }
};

using PgStatsMap = std::unordered_map<PgId, PgStats, PgIdHash>;

/**
 * Collision-free identity of a SystemConfig: a 64-bit FNV-1a hash
 * over every field (hint tables are hashed by content, in sorted PC
 * order, so the hash is stable across processes). Used to key run
 * memoization and the persistent result cache.
 */
std::uint64_t configHash(const SystemConfig &cfg);

/**
 * The engine stack a configuration actually runs: cfg.engines when
 * non-empty, otherwise exactly two slots derived from the legacy
 * primary/lds kinds ("none" fills an empty slot so both legacy
 * feedback lanes keep existing — an idle lane reports accuracy 1.0,
 * which the PAB selector's tie-breaking depends on).
 */
std::vector<std::string> effectiveEngineStack(const SystemConfig &cfg);

/**
 * The PolicyRegistry name of the throttle policy a configuration
 * actually runs: cfg.throttlePolicy when non-empty, otherwise the
 * legacy ThrottleKind's rule set (None/Pab -> "static", Coordinated ->
 * "coordinated", Fdp -> "fdp"). Pab maps to "static" because PAB
 * selects enable bits rather than levels; its selector keys on the
 * kind and runs regardless of the level policy.
 */
std::string effectiveThrottlePolicy(const SystemConfig &cfg);

/**
 * Stats/counter instance name of each stack slot: slot 0 is always
 * "primary" and slot 1 "lds" (the accounting tests and JSON schema key
 * on those), further slots are "<engine><slot>" — unique even when
 * one engine name appears twice.
 */
std::vector<std::string>
engineInstanceNames(const std::vector<std::string> &stack);

/**
 * One feedback-interval boundary: the aged accuracy/coverage sample
 * the throttler saw and the throttling state after its decision was
 * applied. RunStats carries the full series so post-hoc tooling can
 * plot throttle-level timelines without re-running the simulation.
 */
/** Feedback/throttle state of one engine-stack slot beyond the legacy
 *  pair (IntervalSample::extra[i] describes stack slot i + 2). */
struct EngineIntervalExtra
{
    double accuracy = 0.0;
    double coverage = 0.0;
    AggLevel level = AggLevel::Aggressive;
    bool enabled = true;
};

struct IntervalSample
{
    /** Cycle at which the interval ended. */
    Cycle cycle{};
    /** @{ Indexed by prefetcher: 0 = primary, 1 = LDS. */
    double accuracy[2] = {0.0, 0.0};
    double coverage[2] = {0.0, 0.0};
    /** @} */
    AggLevel primaryLevel = AggLevel::Aggressive;
    AggLevel ldsLevel = AggLevel::Aggressive;
    bool primaryEnabled = true;
    bool ldsEnabled = true;
    /** Slots 2.. of an N-engine stack (empty for legacy pairs). */
    std::vector<EngineIntervalExtra> extra;
    /** Raw JSON blob of per-interval policy state (tabular-rl action
     *  trace); empty — and omitted from the stats JSON — for the
     *  built-in rule policies, keeping the goldens byte-identical. */
    std::string policy;
};

/** Statistics of one single-core run. */
struct RunStats
{
    std::string workload;
    Cycle cycles{};
    std::uint64_t instructions = 0;
    double ipc = 0.0;
    /** True when the run hit the maxCycles watchdog before the trace
     *  finished its first pass; the stats cover only the cycles that
     *  did execute. Checked unconditionally (survives NDEBUG). */
    bool timedOut = false;

    std::uint64_t busTransactions = 0;
    /** Bus accesses per thousand retired instructions. */
    double bpki = 0.0;

    std::uint64_t demandLoads = 0;
    std::uint64_t l2DemandAccesses = 0;
    std::uint64_t l2DemandMisses = 0;
    std::uint64_t l2LdsMisses = 0;

    /** @{ Indexed by prefetcher: 0 = primary, 1 = LDS. */
    std::uint64_t prefIssued[2] = {0, 0};
    std::uint64_t prefUsed[2] = {0, 0};
    std::uint64_t prefLate[2] = {0, 0};
    /** Requests dropped on prefetch-queue overflow, per source. */
    std::uint64_t prefDropped[2] = {0, 0};
    /** Sum/count of issue-to-use latencies of useful prefetches. */
    std::uint64_t usefulLatencySum[2] = {0, 0};
    std::uint64_t usefulLatencyCount[2] = {0, 0};
    /** @} */

    PgStatsMap pgStats;

    /** Final throttling state (diagnostics). */
    AggLevel finalPrimaryLevel = AggLevel::Aggressive;
    AggLevel finalLdsLevel = AggLevel::Aggressive;
    bool finalPrimaryEnabled = true;
    bool finalLdsEnabled = true;
    std::uint64_t intervals = 0;

    /** Per-interval feedback/throttle time series (one entry per
     *  completed interval, in order). */
    std::vector<IntervalSample> intervalSeries;

    /** @{ Throttle policy of the run (effectiveThrottlePolicy()) and
     *  its final serialized state. Emitted to the stats JSON only
     *  when the state blob is non-empty — the built-in rule policies
     *  serialize nothing, so default runs stay byte-identical to the
     *  pinned goldens. */
    std::string throttlePolicy;
    std::string throttlePolicyState;
    /** @} */

    /** Lifetime totals of one engine-stack slot (all slots, including
     *  the legacy pair, in stack order). */
    struct EngineRunStats
    {
        /** Counter-scope instance name ("primary", "lds", "isb2"). */
        std::string instance;
        /** Registry name of the engine in the slot. */
        std::string engine;
        std::uint64_t issued = 0;
        std::uint64_t used = 0;
        std::uint64_t late = 0;
        std::uint64_t dropped = 0;
    };

    /** Per-engine totals; the legacy arrays above remain the slot-0/1
     *  view the paper's two-prefetcher analyses consume. */
    std::vector<EngineRunStats> engineStats;

    /** Fraction of prefetches used from the cache (tag-bit metric). */
    double accuracy(unsigned which) const
    {
        return prefIssued[which] == 0
            ? 0.0
            : static_cast<double>(prefUsed[which]) /
                  static_cast<double>(prefIssued[which]);
    }

    /** Fraction of prefetches demanded at all (cache use or late
     *  MSHR merge) — the throttling mechanism's view. */
    double accuracyDemanded(unsigned which) const
    {
        return prefIssued[which] == 0
            ? 0.0
            : static_cast<double>(prefUsed[which] + prefLate[which]) /
                  static_cast<double>(prefIssued[which]);
    }

    /** Fraction of demand misses eliminated by prefetcher @p which. */
    double coverage(unsigned which) const
    {
        std::uint64_t denom = prefUsed[which] + l2DemandMisses;
        return denom == 0
            ? 0.0
            : static_cast<double>(prefUsed[which]) /
                  static_cast<double>(denom);
    }

    double avgUsefulPrefetchLatency(unsigned which) const
    {
        return usefulLatencyCount[which] == 0
            ? 0.0
            : static_cast<double>(usefulLatencySum[which]) /
                  static_cast<double>(usefulLatencyCount[which]);
    }
};

} // namespace ecdp

#endif // ECDP_SIM_CONFIG_HH
