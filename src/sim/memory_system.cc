#include "sim/memory_system.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <string>

namespace ecdp
{

MemorySystem::MemorySystem(const SystemConfig &cfg, unsigned core_id,
                           SimMemory image, DramSystem *dram,
                           const Observability *obs)
    : cfg_(cfg),
      coreId_(core_id),
      image_(std::move(image)),
      dram_(dram),
      stackNames_(effectiveEngineStack(cfg)),
      instanceNames_(engineInstanceNames(stackNames_)),
      ownedMetrics_(obs && obs->metrics
                        ? nullptr
                        : std::make_unique<obs::MetricRegistry>()),
      metrics_(obs && obs->metrics ? obs->metrics
                                   : ownedMetrics_.get()),
      tracer_(obs ? obs->tracer : nullptr),
      phases_(obs ? obs->phases : nullptr),
      l1_("L1D", cfg.l1Bytes, cfg.l1Assoc, cfg.l1BlockBytes),
      l2_("L2", cfg.l2Bytes, cfg.l2Assoc, cfg.l2BlockBytes),
      mshrs_(cfg.l2Mshrs),
      pab_(cfg.pabWindow,
           static_cast<unsigned>(stackNames_.size())),
      policyName_(effectiveThrottlePolicy(cfg)),
      blockBuf_(cfg.l2BlockBytes, 0)
{
    assert(dram_);
    assert(!stackNames_.empty());

    PolicyContext pctx;
    pctx.coord = cfg_.coordThresholds;
    pctx.fdp = cfg_.fdpThresholds;
    // Decorrelate per-core exploration streams in multi-core runs
    // without adding a per-core config knob (core 0 keeps the plain
    // seed's stream only up to the constructor's remapping).
    pctx.seed = cfg_.throttleRlSeed +
                0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(
                                            core_id);
    policy_ = PolicyRegistry::instance().create(policyName_, pctx);

    EngineContext ectx;
    ectx.geom = l2_.geom();
    ectx.streamEntries = cfg_.streamEntries;
    ectx.cdpCompareBits = cfg_.cdpCompareBits;
    ectx.grpCoarse = cfg_.grpCoarse;
    ectx.hints = cfg_.hints;

    EngineRegistry &registry = EngineRegistry::instance();
    engines_.reserve(stackNames_.size());
    for (const std::string &name : stackNames_)
        engines_.push_back(registry.create(name, ectx));

    const std::size_t n = engines_.size();
    ldsClass_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        ldsClass_[i] =
            engines_[i]->statClass() == PrefetchEngine::Class::Lds;
        if (engines_[i]->wantsLoadValues())
            loadValueEngines_.push_back(static_cast<std::uint8_t>(i));
        if (engines_[i]->wantsFillScan())
            fillScanEngines_.push_back(static_cast<std::uint8_t>(i));
    }

    feedback_.resize(n);
    pollutionEvents_.resize(n);
    pollutionFilter_.assign(
        n, PollutionFilter(cfg_.fdpThresholds.pollutionFilterEntries));
    levels_.assign(n, AggLevel::Aggressive);
    levels_[0] = cfg_.primaryStartLevel;
    if (n > 1)
        levels_[1] = cfg_.ldsStartLevel;
    enabled_.assign(n, 1);
    monitors_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        monitors_.emplace_back(tracer_, core_id,
                               static_cast<unsigned>(i), levels_[i]);
    }
    if (cfg_.hwFilter)
        hwFilter_ = std::make_unique<HardwareFilter>();
    pf_.resize(n);
    bindCounters();
    for (std::size_t i = 0; i < n; ++i)
        applyLevel(i, levels_[i]);
}

void
MemorySystem::bindCounters()
{
    obs::MetricScope core(*metrics_,
                          "core" + std::to_string(coreId_) + ".");
    demandLoadsCtr_ = &core.counter("demand_loads");

    obs::MetricScope l2 = core.scope("l2.");
    demandAccessesCtr_ = &l2.counter("demand_accesses");
    demandHitsCtr_ = &l2.counter("demand_hits");
    mshrMergesCtr_ = &l2.counter("mshr_merges");
    sideHitsCtr_ = &l2.counter("side_hits");
    idealHitsCtr_ = &l2.counter("ideal_hits");
    demandMissesCtr_ = &l2.counter("demand_misses");
    demandMissesTrueCtr_ = &l2.counter("demand_misses_true");
    demandMissesLateCtr_ = &l2.counter("demand_misses_late");
    ldsMissesCtr_ = &l2.counter("lds_misses");

    obs::MetricScope mshr = core.scope("mshr.");
    mshrAllocationsCtr_ = &mshr.counter("allocations");
    mshrReleasesCtr_ = &mshr.counter("releases");
    mshrInFlightEndCtr_ = &mshr.counter("in_flight_end");
    mshrStallCyclesCtr_ = &mshr.counter("demand_stall_cycles");

    // Decision counters live under the policy's own scope so a
    // policy-comparison sweep can diff them by path; the policy
    // additionally binds its private counters (Q-table visits,
    // explorations, ...) in the same scope.
    obs::MetricScope throttle =
        core.scope("throttle." + policyName_ + ".");
    throttleIntervalsCtr_ = &throttle.counter("intervals");
    throttleUpCtr_ = &throttle.counter("decisions.up");
    throttleDownCtr_ = &throttle.counter("decisions.down");
    throttleNothingCtr_ = &throttle.counter("decisions.nothing");
    policy_->bindCounters(throttle);

    static const char *const kDropName[6] = {
        "queue_full",  "source_disabled", "cached",
        "in_flight",   "side_buffer",     "hw_filter",
    };
    for (std::size_t which = 0; which < pf_.size(); ++which) {
        obs::MetricScope pf = core.scope(std::string("pf.") +
                                         instanceNames_[which] + ".");
        PfCounters &c = pf_[which];
        c.generated = &pf.counter("generated");
        c.queued = &pf.counter("queued");
        c.issued = &pf.counter("issued");
        c.filled = &pf.counter("filled");
        c.used = &pf.counter("used");
        c.sideUsed = &pf.counter("side_used");
        c.consumedLate = &pf.counter("consumed_late");
        c.evictedUnused = &pf.counter("evicted_unused");
        c.usefulLatencySum = &pf.counter("useful_latency_sum");
        c.usefulLatencyCount = &pf.counter("useful_latency_count");
        for (unsigned reason = 0; reason < 6; ++reason) {
            c.drop[reason] = &pf.counter(std::string("dropped.") +
                                         kDropName[reason]);
        }
        c.residentUnusedEnd = &pf.counter("resident_unused_end");
        c.inFlightEnd = &pf.counter("in_flight_end");
        c.inQueueEnd = &pf.counter("in_queue_end");
        c.sideResidentEnd = &pf.counter("side_resident_end");
    }
}

void
MemorySystem::dropPrefetch(std::uint8_t engine, obs::DropReason reason,
                           Addr block_addr, Cycle now)
{
    pf_[engine].drop[static_cast<unsigned>(reason)]->inc();
    if (tracer_) {
        obs::TraceEvent event;
        event.type = obs::EventType::PrefetchDrop;
        event.source = engine;
        event.a = static_cast<std::uint8_t>(reason);
        event.core = static_cast<std::uint16_t>(coreId_);
        event.cycle = now;
        event.addr = block_addr.raw();
        tracer_->record(event);
    }
}

void
MemorySystem::noteMshrStall(Cycle now)
{
    mshrStallCyclesCtr_->inc();
    // The core retries a rejected load every cycle; trace only the
    // first cycle of each contiguous stall burst.
    const bool burst_start =
        lastMshrStall_ == Cycle{~std::uint64_t{0}} || now > lastMshrStall_ + 1;
    lastMshrStall_ = now;
    if (tracer_ && burst_start) {
        obs::TraceEvent event;
        event.type = obs::EventType::MshrFullStall;
        event.core = static_cast<std::uint16_t>(coreId_);
        event.cycle = now;
        event.arg = mshrs_.inFlight();
        tracer_->record(event);
    }
}

void
MemorySystem::applyLevel(std::size_t which, AggLevel level)
{
    levels_[which] = level;
    engines_[which]->setAggressiveness(level);
}

void
MemorySystem::pabRecord(std::size_t which, bool used)
{
    if (cfg_.throttle == ThrottleKind::Pab)
        pab_.recordOutcome(static_cast<unsigned>(which), used);
}

void
MemorySystem::recordDemandMiss(Addr block_addr, bool is_lds,
                               bool probe_pollution, Cycle now)
{
    demandMissesCtr_->inc();
    if (probe_pollution)
        demandMissesTrueCtr_->inc();
    else
        demandMissesLateCtr_->inc();
    if (is_lds)
        ldsMissesCtr_->inc();
    demandMissCounter_.add();
    if (tracer_) {
        obs::TraceEvent event;
        event.type = obs::EventType::DemandMiss;
        event.a = is_lds ? 1 : 0;
        event.core = static_cast<std::uint16_t>(coreId_);
        event.cycle = now;
        event.addr = block_addr.raw();
        tracer_->record(event);
    }
    if (!probe_pollution)
        return;
    for (std::size_t which = 0; which < pollutionFilter_.size();
         ++which) {
        if (pollutionFilter_[which].test(l2_.geom().blockOf(block_addr)))
            pollutionEvents_[which].add();
    }
}

void
MemorySystem::l1Fill(Addr addr, bool dirty, Cycle now)
{
    Cache::Victim victim = l1_.insert(addr);
    if (CacheBlock *block = l1_.lookup(addr, false))
        block->dirty = block->dirty || dirty;
    if (victim.valid && victim.dirty) {
        // Dirty L1 victim folds into the L2 copy; if the L2 block is
        // already gone, the data goes straight to memory.
        if (CacheBlock *parent = l2_.lookup(victim.addr, false))
            parent->dirty = true;
        else
            dram_->writeback(coreId_, l2_.blockAddr(victim.addr), now);
    }
}

void
MemorySystem::onDemandUseOfPrefetch(CacheBlock *block, Addr block_addr,
                                    Cycle now)
{
    const std::uint8_t owner = block->prefetchOwner;
    if (owner == kNoPrefetchOwner)
        return;
    feedback_[owner].onPrefetchUsed();
    pf_[owner].used->inc();
    pf_[owner].usefulLatencySum->add(block->prefetchLatency.raw());
    pf_[owner].usefulLatencyCount->inc();
    if (block->pgValid)
        ++pgStats_[block->pg].used;
    pabRecord(owner, true);
    if (hwFilter_ && ldsClass_[owner])
        hwFilter_->onPrefetchUsed(l2_.geom().blockOf(block_addr));
    if (enabled_[owner]) {
        // A hit on a prefetched block retrains the owning engine (the
        // stream prefetcher keeps its stream alive from here; engines
        // without a retrigger hook no-op).
        scratch_.clear();
        engines_[owner]->onPrefetchHit(block_addr, scratch_);
        stampScratch(0, owner);
        drainScratch(now, now);
    }
    block->prefetchOwner = kNoPrefetchOwner;
    block->pgValid = false;
}

void
MemorySystem::trainOnDemandMiss(const TraceEntry &entry, Cycle now)
{
    scratch_.clear();
    for (std::size_t i = 0; i < engines_.size(); ++i) {
        if (!enabled_[i])
            continue;
        const std::size_t base = scratch_.size();
        engines_[i]->onDemandMiss(entry, scratch_);
        stampScratch(base, static_cast<std::uint8_t>(i));
    }
    drainScratch(now, now);
}

void
MemorySystem::notifyLoadComplete(const TraceEntry &entry, Cycle ready)
{
    if (loadValueEngines_.empty())
        return;
    if (entry.size != kPointerBytes)
        return;
    bool any = false;
    for (std::uint8_t i : loadValueEngines_)
        any = any || enabled_[i] != 0;
    if (!any)
        return;
    const Addr value = image_.readPointer(entry.vaddr);
    scratch_.clear();
    for (std::uint8_t i : loadValueEngines_) {
        if (!enabled_[i])
            continue;
        const std::size_t base = scratch_.size();
        engines_[i]->onLoadComplete(entry.pc, value, scratch_);
        stampScratch(base, i);
    }
    drainScratch(ready, ready);
}

void
MemorySystem::stampScratch(std::size_t base, std::uint8_t engine)
{
    for (std::size_t i = base; i < scratch_.size(); ++i)
        scratch_[i].engine = engine;
}

void
MemorySystem::drainScratch(Cycle ready_at, Cycle now)
{
    for (const PrefetchRequest &req : scratch_)
        enqueuePrefetch(req, ready_at, now);
    scratch_.clear();
}

void
MemorySystem::enqueuePrefetch(const PrefetchRequest &req, Cycle ready_at,
                              Cycle now)
{
    pf_[req.engine].generated->inc();
    if (readyQueue_.size() + delayedQueue_.size() >=
        cfg_.prefetchQueueEntries) {
        // Prefetch request queue overflow: drop, but count it so
        // sweeps can see a too-small queue instead of silently losing
        // coverage.
        dropPrefetch(req.engine, obs::DropReason::QueueFull,
                     l2_.blockAddr(req.blockAddr), now);
        return;
    }
    pf_[req.engine].queued->inc();
    QueuedPrefetch queued;
    queued.req = req;
    queued.req.blockAddr = l2_.blockAddr(req.blockAddr);
    queued.readyAt = ready_at;
    if (ready_at <= now)
        readyQueue_.push_back(queued);
    else
        delayedQueue_.push(queued);
}

std::optional<Cycle>
MemorySystem::load(const TraceEntry &entry, Cycle now)
{
    obs::PhaseProfiler::Scoped scope(
        phases_, obs::PhaseProfiler::Phase::CacheProbe);
    const Addr addr = entry.vaddr;

    if (l1_.lookup(addr)) {
        demandLoadsCtr_->inc();
        return now + cfg_.l1Latency;
    }

    const Addr block_addr = l2_.blockAddr(addr);

    for (std::uint8_t i : loadValueEngines_) {
        if (enabled_[i])
            engines_[i]->onLoadIssue(entry.pc, addr);
    }

    if (CacheBlock *block = l2_.lookup(addr)) {
        demandLoadsCtr_->inc();
        demandAccessesCtr_->inc();
        demandHitsCtr_->inc();
        onDemandUseOfPrefetch(block, block_addr, now);
        l1Fill(addr, false, now);
        notifyLoadComplete(entry, now + cfg_.l2Latency);
        return now + cfg_.l1Latency + cfg_.l2Latency;
    }

    if (Mshr *mshr = mshrs_.find(block_addr)) {
        demandLoadsCtr_->inc();
        demandAccessesCtr_->inc();
        mshrMergesCtr_->inc();
        if (!mshr->demand) {
            mshr->demand = true;
            mshr->blockByteOffset =
                static_cast<std::uint8_t>(l2_.blockOffset(addr));
            if (mshr->engine != kNoPrefetchOwner) {
                // A demand matching an in-flight prefetch: the
                // prefetch is late. The block was not in the cache,
                // so this still counts as a last-level demand miss
                // (only cache-resident prefetches count as used) and
                // still trains the miss-stream predictors. The block
                // is in flight, not prefetch-evicted, so the
                // pollution filter is not probed.
                feedback_[mshr->engine].onPrefetchLate();
                recordDemandMiss(block_addr, entry.isLds, false, now);
                trainOnDemandMiss(entry, now);
            }
        }
        Cycle done = std::max(mshr->fillAt, now);
        notifyLoadComplete(entry, done);
        return done + cfg_.l1Latency;
    }

    // Ideal-no-pollution side buffer (Section 2.3 oracle).
    if (cfg_.idealNoPollution) {
        auto it = sideBuffer_.find(block_addr);
        if (it != sideBuffer_.end()) {
            demandLoadsCtr_->inc();
            demandAccessesCtr_->inc();
            sideHitsCtr_->inc();
            const SideEntry &side = it->second;
            const std::uint8_t which = side.engine;
            feedback_[which].onPrefetchUsed();
            pf_[which].used->inc();
            pf_[which].sideUsed->inc();
            pf_[which].usefulLatencySum->add(side.latency.raw());
            pf_[which].usefulLatencyCount->inc();
            if (side.pgValid)
                ++pgStats_[side.pg].used;
            Cache::Victim victim = l2_.insert(block_addr);
            handleVictim(victim, kNoPrefetchOwner, now);
            sideBuffer_.erase(it);
            l1Fill(addr, false, now);
            notifyLoadComplete(entry, now + cfg_.l2Latency);
            return now + cfg_.l1Latency + cfg_.l2Latency;
        }
    }

    // Figure 1 oracle: LDS misses become L2 hits.
    if (cfg_.idealLds && entry.isLds) {
        demandLoadsCtr_->inc();
        demandAccessesCtr_->inc();
        idealHitsCtr_->inc();
        Cache::Victim victim = l2_.insert(block_addr);
        handleVictim(victim, kNoPrefetchOwner, now);
        l1Fill(addr, false, now);
        return now + cfg_.l1Latency + cfg_.l2Latency;
    }

    // True L2 demand miss. Only count it once accepted.
    if (mshrs_.full()) {
        noteMshrStall(now);
        return std::nullopt;
    }
    std::optional<Cycle> done = dram_->read(coreId_, block_addr, now);
    if (!done)
        return std::nullopt;

    demandLoadsCtr_->inc();
    demandAccessesCtr_->inc();
    recordDemandMiss(block_addr, entry.isLds, true, now);

    Mshr &mshr = mshrs_.allocate(block_addr);
    mshr.fillAt = *done;
    mshr.issuedAt = now;
    mshr.demand = true;
    mshr.engine = kNoPrefetchOwner;
    mshr.loadPc = entry.pc;
    mshr.blockByteOffset =
        static_cast<std::uint8_t>(l2_.blockOffset(addr));
    mshr.scanOnFill = anyFillScanEnabled();
    earliestFill_ = std::min(earliestFill_, mshr.fillAt);

    trainOnDemandMiss(entry, now);
    notifyLoadComplete(entry, *done);
    return *done + cfg_.l1Latency;
}

void
MemorySystem::store(const TraceEntry &entry, Cycle now)
{
    obs::PhaseProfiler::Scoped scope(
        phases_, obs::PhaseProfiler::Phase::CacheProbe);
    image_.write(entry.vaddr, entry.size, entry.storeValue);

    if (CacheBlock *block = l1_.lookup(entry.vaddr)) {
        block->dirty = true;
        return;
    }

    const Addr block_addr = l2_.blockAddr(entry.vaddr);
    if (CacheBlock *block = l2_.lookup(entry.vaddr)) {
        demandAccessesCtr_->inc();
        demandHitsCtr_->inc();
        onDemandUseOfPrefetch(block, block_addr, now);
        block->dirty = true;
        l1Fill(entry.vaddr, true, now);
        return;
    }

    if (Mshr *mshr = mshrs_.find(block_addr)) {
        mshr->dirty = true;
        return;
    }

    // Store miss: background write-allocate. The fetch costs a bus
    // transaction but the core never waits for stores. It is still a
    // demand miss, so it probes the pollution filter exactly like the
    // load-miss path — store-heavy workloads would otherwise
    // undercount pollution and mislead FDP/coordinated throttling.
    demandAccessesCtr_->inc();
    recordDemandMiss(block_addr, entry.isLds, true, now);
    dram_->writeback(coreId_, block_addr, now);
    Cache::Victim victim = l2_.insert(block_addr);
    if (CacheBlock *block = l2_.lookup(entry.vaddr, false))
        block->dirty = true;
    handleVictim(victim, kNoPrefetchOwner, now);
    l1Fill(entry.vaddr, true, now);
    scratch_.clear();
    for (std::size_t i = 0; i < engines_.size(); ++i) {
        if (!enabled_[i])
            continue;
        const std::size_t base = scratch_.size();
        engines_[i]->onStoreMiss(entry.vaddr, scratch_);
        stampScratch(base, static_cast<std::uint8_t>(i));
    }
    drainScratch(now, now);
}

void
MemorySystem::scanAndEnqueue(
    std::uint8_t engine, Addr block_addr,
    const ContentDirectedPrefetcher::ScanContext &ctx, Cycle now)
{
    obs::PhaseProfiler::Scoped scope(
        phases_, obs::PhaseProfiler::Phase::CdpScan);
    image_.readBlock(block_addr, blockBuf_.data(), blockBuf_.size());
    scratch_.clear();
    engines_[engine]->onFill(block_addr, blockBuf_.data(), ctx,
                             scratch_);
    stampScratch(0, engine);
    drainScratch(now, now);
}

void
MemorySystem::handleVictim(const Cache::Victim &victim,
                           std::uint8_t insert_owner, Cycle now)
{
    if (!victim.valid)
        return;
    if (victim.dirty)
        dram_->writeback(coreId_, victim.addr, now);
    if (victim.prefetchOwner != kNoPrefetchOwner) {
        const std::uint8_t owner = victim.prefetchOwner;
        pf_[owner].evictedUnused->inc();
        pabRecord(owner, false);
        if (hwFilter_ && ldsClass_[owner])
            hwFilter_->onPrefetchEvictedUnused(
                l2_.geom().blockOf(victim.addr));
    }
    if (insert_owner != kNoPrefetchOwner) {
        pollutionFilter_[insert_owner].onPrefetchEvictedDemandBlock(
            l2_.geom().blockOf(victim.addr));
    }
}

bool
MemorySystem::anyFillScanEnabled() const
{
    for (std::uint8_t i : fillScanEngines_) {
        if (enabled_[i])
            return true;
    }
    return false;
}

void
MemorySystem::installFill(Mshr &mshr, Cycle now)
{
    const Addr block_addr = mshr.blockAddr;
    const std::uint8_t owner = mshr.engine;

    if (owner != kNoPrefetchOwner) {
        pf_[owner].filled->inc();
        if (tracer_) {
            obs::TraceEvent event;
            event.type = obs::EventType::PrefetchFill;
            event.source = owner;
            event.a = mshr.demand ? 1 : 0;
            event.core = static_cast<std::uint16_t>(coreId_);
            event.cycle = now;
            event.addr = block_addr.raw();
            event.arg = (now - mshr.issuedAt).raw();
            tracer_->record(event);
        }
    }

    const bool side_buffered = cfg_.idealNoPollution &&
                               owner != kNoPrefetchOwner &&
                               !mshr.demand;
    if (side_buffered) {
        SideEntry side;
        side.engine = owner;
        side.pgValid = mshr.pgRootValid;
        side.pg = mshr.pgRoot;
        side.latency = now - mshr.issuedAt;
        side.depth = mshr.cdpDepth;
        sideBuffer_[block_addr] = side;
    } else {
        Cache::Victim victim = l2_.insert(block_addr, owner);
        CacheBlock *block = l2_.lookup(block_addr, false);
        assert(block);
        if (mshr.dirty)
            block->dirty = true;
        if (owner != kNoPrefetchOwner) {
            block->prefetchLatency = now - mshr.issuedAt;
            block->cdpDepth = mshr.cdpDepth;
            block->pgValid = mshr.pgRootValid;
            block->pg = mshr.pgRoot;
            if (mshr.demand) {
                // Late prefetch: the waiting demand consumes it at
                // fill. It does not count as *used* (the tag-bit
                // mechanism only sees cache-resident uses) but the
                // PG that generated it did point at truly needed
                // data, so the profiling statistics credit it.
                pf_[owner].consumedLate->inc();
                if (mshr.pgRootValid)
                    ++pgStats_[mshr.pgRoot].used;
                pabRecord(owner, true);
                if (hwFilter_ && ldsClass_[owner])
                    hwFilter_->onPrefetchUsed(
                        l2_.geom().blockOf(block_addr));
                block->prefetchOwner = kNoPrefetchOwner;
                block->pgValid = false;
                l1Fill(block_addr + mshr.blockByteOffset, false, now);
            }
        } else {
            l1Fill(block_addr + mshr.blockByteOffset, false, now);
        }
        handleVictim(victim, owner, now);
    }

    // Content-directed scan of the freshly arrived block.
    if (owner == kNoPrefetchOwner) {
        if (mshr.scanOnFill) {
            ContentDirectedPrefetcher::ScanContext ctx;
            ctx.demandFill = true;
            ctx.loadPc = mshr.loadPc;
            ctx.accessByteOffset = mshr.blockByteOffset;
            ctx.fillDepth = 0;
            for (std::uint8_t i : fillScanEngines_) {
                if (enabled_[i])
                    scanAndEnqueue(i, block_addr, ctx, now);
            }
        }
    } else if (engines_[owner]->wantsFillScan() && enabled_[owner] &&
               engines_[owner]->scansOwnFillAt(mshr.cdpDepth)) {
        ContentDirectedPrefetcher::ScanContext ctx;
        ctx.demandFill = false;
        ctx.fillDepth = mshr.cdpDepth;
        ctx.pgValid = mshr.pgRootValid;
        ctx.pgRoot = mshr.pgRoot;
        scanAndEnqueue(owner, block_addr, ctx, now);
    }

    mshrs_.release(mshr);
}

void
MemorySystem::processFills(Cycle now)
{
    earliestFill_ = Cycle{~std::uint64_t{0}};
    // Snapshot the validity mask: installFill() releases the entry it
    // fills, and no new entries are allocated inside the loop.
    for (std::uint64_t mask = mshrs_.validMask(); mask;
         mask &= mask - 1) {
        Mshr &mshr =
            mshrs_.entry(static_cast<unsigned>(std::countr_zero(mask)));
        if (mshr.fillAt <= now)
            installFill(mshr, now);
        else
            earliestFill_ = std::min(earliestFill_, mshr.fillAt);
    }
}

void
MemorySystem::issuePrefetches(Cycle now)
{
    while (!delayedQueue_.empty() &&
           delayedQueue_.top().readyAt <= now) {
        readyQueue_.push_back(delayedQueue_.top());
        delayedQueue_.pop();
    }

    unsigned budget = cfg_.prefetchIssuePerCycle;
    while (budget > 0 && !readyQueue_.empty()) {
        const QueuedPrefetch &queued = readyQueue_.front();
        const PrefetchRequest &req = queued.req;
        // Classify the filter decision so each discard is counted
        // (and traced) under its reason instead of vanishing.
        std::optional<obs::DropReason> reject;
        if (!enabled_[req.engine])
            reject = obs::DropReason::SourceDisabled;
        else if (l2_.peek(req.blockAddr))
            reject = obs::DropReason::AlreadyCached;
        else if (mshrs_.find(req.blockAddr))
            reject = obs::DropReason::AlreadyInFlight;
        else if (cfg_.idealNoPollution &&
                 sideBuffer_.count(req.blockAddr))
            reject = obs::DropReason::SideBuffered;
        else if (hwFilter_ && ldsClass_[req.engine] &&
                 !hwFilter_->allow(l2_.geom().blockOf(req.blockAddr)))
            reject = obs::DropReason::HwFilter;
        if (reject) {
            dropPrefetch(req.engine, *reject, req.blockAddr, now);
            readyQueue_.pop_front();
            continue;
        }
        if (mshrs_.full() ||
            mshrs_.inFlight() + cfg_.mshrReserveForDemand >=
                cfg_.l2Mshrs) {
            break;
        }
        std::optional<Cycle> done = dram_->read(
            coreId_, req.blockAddr, now, cfg_.dramReserveForDemand);
        if (!done)
            break;
        Mshr &mshr = mshrs_.allocate(req.blockAddr);
        mshr.fillAt = *done;
        mshr.issuedAt = now;
        mshr.engine = req.engine;
        mshr.cdpDepth = req.depth;
        mshr.pgRoot = req.pg;
        mshr.pgRootValid = req.pgValid;
        earliestFill_ = std::min(earliestFill_, mshr.fillAt);
        feedback_[req.engine].onPrefetchIssued();
        pf_[req.engine].issued->inc();
        if (tracer_) {
            obs::TraceEvent event;
            event.type = obs::EventType::PrefetchIssue;
            event.source = req.engine;
            event.core = static_cast<std::uint16_t>(coreId_);
            event.cycle = now;
            event.addr = req.blockAddr.raw();
            tracer_->record(event);
        }
        if (req.pgValid)
            ++pgStats_[req.pg].issued;
        readyQueue_.pop_front();
        --budget;
    }
}

FeedbackSnapshot
MemorySystem::makeSnapshot(const PrefetcherFeedback &fb,
                           std::uint64_t aged_misses,
                           std::uint64_t aged_pollution)
{
    FeedbackSnapshot snap;
    snap.accuracy = fb.accuracy();
    snap.coverage = fb.coverage(aged_misses);
    snap.lateness = fb.lateness();
    snap.pollution = aged_misses == 0
        ? 0.0
        : static_cast<double>(aged_pollution) /
              static_cast<double>(aged_misses);
    snap.anyPrefetches = fb.anyPrefetches();
    return snap;
}

FeedbackSnapshot
MemorySystem::snapshot(std::size_t which) const
{
    return makeSnapshot(feedback_[which], demandMissCounter_.value(),
                        pollutionEvents_[which].value());
}

void
MemorySystem::endInterval(Cycle now)
{
    const std::size_t n = engines_.size();
    ++intervals_;
    for (std::size_t i = 0; i < n; ++i)
        feedback_[i].endInterval();
    demandMissCounter_.endInterval();
    for (std::size_t i = 0; i < n; ++i)
        pollutionEvents_[i].endInterval();

    // All snapshots are taken before any decision is applied, so
    // later slots never see an earlier slot's fresh decision.
    std::vector<FeedbackSnapshot> snaps(n);
    for (std::size_t i = 0; i < n; ++i)
        snaps[i] = snapshot(i);

    // Interval-level progress deltas for the policy. The rule
    // policies never read them; the tabular-rl reward does.
    IntervalContext ictx;
    ictx.cycle = now;
    ictx.deltaCycles = now.raw() - lastIntervalCycle_.raw();
    const std::uint64_t retired =
        progressCore_ ? progressCore_->retired() : 0;
    const std::uint64_t bus = dram_->busTransactions(coreId_);
    ictx.deltaInstructions = retired - lastIntervalInstructions_;
    ictx.deltaBusTransactions = bus - lastIntervalBus_;
    lastIntervalCycle_ = now;
    lastIntervalInstructions_ = retired;
    lastIntervalBus_ = bus;

    // PAB selects enable bits and keys on the ThrottleKind; the level
    // policy below runs regardless (a PAB run's default level policy
    // is "static", a no-op).
    if (cfg_.throttle == ThrottleKind::Pab) {
        const unsigned keep = pab_.select();
        for (std::size_t i = 0; i < n; ++i)
            enabled_[i] = i == keep ? 1 : 0;
    }

    // Uniform per-slot level decisions through the policy. Applying a
    // "Nothing" decision re-applies the unchanged level; every
    // engine's setAggressiveness is an idempotent parameter set, so
    // this is behaviourally identical to the pre-policy code that
    // skipped applyLevel entirely for ThrottleKind::None.
    throttleIntervalsCtr_->inc();
    for (std::size_t i = 0; i < n; ++i) {
        const ThrottleDecision decision =
            policy_->onIntervalEnd(i, snaps, ictx);
        switch (decision) {
          case ThrottleDecision::Up:
            throttleUpCtr_->inc();
            break;
          case ThrottleDecision::Down:
            throttleDownCtr_->inc();
            break;
          case ThrottleDecision::Nothing:
            throttleNothingCtr_->inc();
            break;
        }
        applyLevel(i,
                   CoordinatedThrottler::apply(levels_[i], decision));
    }

    IntervalSample sample;
    sample.cycle = now;
    sample.accuracy[0] = snaps[0].accuracy;
    sample.coverage[0] = snaps[0].coverage;
    sample.primaryLevel = levels_[0];
    sample.primaryEnabled = enabled_[0] != 0;
    if (n > 1) {
        sample.accuracy[1] = snaps[1].accuracy;
        sample.coverage[1] = snaps[1].coverage;
        sample.ldsLevel = levels_[1];
        sample.ldsEnabled = enabled_[1] != 0;
    }
    for (std::size_t i = 2; i < n; ++i) {
        EngineIntervalExtra extra;
        extra.accuracy = snaps[i].accuracy;
        extra.coverage = snaps[i].coverage;
        extra.level = levels_[i];
        extra.enabled = enabled_[i] != 0;
        sample.extra.push_back(extra);
    }
    sample.policy = policy_->intervalStateJson();
    intervalSeries_.push_back(sample);

    if (tracer_) {
        for (std::size_t which = 0; which < n; ++which) {
            obs::TraceEvent event;
            event.type = obs::EventType::IntervalSample;
            event.source = static_cast<std::uint8_t>(which);
            event.core = static_cast<std::uint16_t>(coreId_);
            event.cycle = now;
            event.arg = intervals_;
            event.x = snaps[which].accuracy;
            event.y = snaps[which].coverage;
            tracer_->record(event);
        }
    }
    for (std::size_t i = 0; i < n; ++i)
        monitors_[i].observe(now, levels_[i], enabled_[i] != 0);

    for (std::size_t i = 0; i < n; ++i)
        pollutionFilter_[i].clear();
    lastIntervalEvictions_ = l2_.evictions();
}

void
MemorySystem::tick(Cycle now)
{
    if (earliestFill_ <= now)
        processFills(now);
    if (!readyQueue_.empty() || !delayedQueue_.empty())
        issuePrefetches(now);
    if (l2_.evictions() - lastIntervalEvictions_ >=
        cfg_.intervalEvictions) {
        endInterval(now);
    }
}

Cycle
MemorySystem::nextEventCycle(Cycle now) const
{
    // Ready prefetches are (re)tried every cycle, and every attempt
    // can have observable effects (drop counters, DRAM buffer-reject
    // counters), so no cycle with a non-empty ready queue may be
    // skipped.
    if (!readyQueue_.empty())
        return now + 1;
    // An already-crossed interval boundary fires at the next tick;
    // the eviction delta is monotonic and only moves on fill/demand
    // activity, so if it has not crossed yet it cannot cross during
    // skipped (idle) cycles.
    if (l2_.evictions() - lastIntervalEvictions_ >=
        cfg_.intervalEvictions) {
        return now + 1;
    }
    Cycle wake = earliestFill_;
    if (!delayedQueue_.empty())
        wake = std::min(wake, delayedQueue_.top().readyAt);
    return wake > now ? wake : now + 1;
}

void
MemorySystem::collectStats(RunStats &out, Cycle now)
{
    const std::size_t n = engines_.size();

    // Fold the end-of-run gauges in first so the registry satisfies
    // the conservation identities at the same instant the RunStats
    // snapshot is taken.
    std::vector<std::uint64_t> resident(n, 0);
    l2_.prefetchedResidentByOwner(resident);
    for (std::size_t i = 0; i < n; ++i)
        pf_[i].residentUnusedEnd->set(resident[i]);

    std::vector<std::uint64_t> in_flight(n, 0);
    for (const Mshr &mshr : mshrs_.entries()) {
        if (mshr.valid && mshr.engine != kNoPrefetchOwner)
            ++in_flight[mshr.engine];
    }
    std::vector<std::uint64_t> in_queue(n, 0);
    for (const QueuedPrefetch &queued : readyQueue_)
        ++in_queue[queued.req.engine];
    auto delayed = delayedQueue_;
    while (!delayed.empty()) {
        ++in_queue[delayed.top().req.engine];
        delayed.pop();
    }
    std::vector<std::uint64_t> side_resident(n, 0);
    for (const auto &[addr, side] : sideBuffer_) {
        (void)addr;
        ++side_resident[side.engine];
    }
    for (std::size_t i = 0; i < n; ++i) {
        pf_[i].inFlightEnd->set(in_flight[i]);
        pf_[i].inQueueEnd->set(in_queue[i]);
        pf_[i].sideResidentEnd->set(side_resident[i]);
    }
    mshrAllocationsCtr_->set(mshrs_.allocations());
    mshrReleasesCtr_->set(mshrs_.releases());
    mshrInFlightEndCtr_->set(mshrs_.inFlight());

    out.demandLoads = demandLoadsCtr_->value();
    out.l2DemandAccesses = demandAccessesCtr_->value();
    out.l2DemandMisses = demandMissesCtr_->value();
    out.l2LdsMisses = ldsMissesCtr_->value();
    for (std::size_t which = 0; which < std::min<std::size_t>(2, n);
         ++which) {
        out.prefIssued[which] = feedback_[which].lifetimeIssued();
        out.prefUsed[which] = feedback_[which].lifetimeUsed();
        out.prefLate[which] = feedback_[which].lifetimeLate();
        // RunStats keeps the historical meaning: queue-overflow drops
        // only. The registry holds the full per-reason breakdown.
        out.prefDropped[which] =
            pf_[which]
                .drop[static_cast<unsigned>(
                    obs::DropReason::QueueFull)]
                ->value();
        out.usefulLatencySum[which] =
            pf_[which].usefulLatencySum->value();
        out.usefulLatencyCount[which] =
            pf_[which].usefulLatencyCount->value();
    }
    out.engineStats.clear();
    out.engineStats.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        RunStats::EngineRunStats es;
        es.instance = instanceNames_[i];
        es.engine = stackNames_[i];
        es.issued = feedback_[i].lifetimeIssued();
        es.used = feedback_[i].lifetimeUsed();
        es.late = feedback_[i].lifetimeLate();
        es.dropped =
            pf_[i]
                .drop[static_cast<unsigned>(
                    obs::DropReason::QueueFull)]
                ->value();
        out.engineStats.push_back(std::move(es));
    }
    out.pgStats = pgStats_;
    out.finalPrimaryLevel = levels_[0];
    out.finalPrimaryEnabled = enabled_[0] != 0;
    if (n > 1) {
        out.finalLdsLevel = levels_[1];
        out.finalLdsEnabled = enabled_[1] != 0;
    } else {
        out.finalLdsLevel = AggLevel::Aggressive;
        out.finalLdsEnabled = true;
    }
    out.intervals = intervals_;
    out.intervalSeries = intervalSeries_;
    out.throttlePolicy = policyName_;
    // The rule policies serialize nothing; the JSON writer keys the
    // new fields on a non-empty state blob, keeping default-policy
    // output byte-identical to the pinned goldens.
    out.throttlePolicyState = policy_->stateJson();

    // Trailing partial interval: interval ends are only detected via
    // the eviction delta in tick(), so a run that stops mid-interval
    // would silently drop its tail from the series. Emit one final
    // sample for it, computed on *copies* of the interval counters:
    // endInterval() on the copies applies the same Equation 3 aging a
    // real boundary would, while the live feedback/throttle state —
    // and therefore simulated behaviour, should the caller keep
    // ticking — stays untouched. No throttling decision is applied
    // (the run ended before the boundary), so the sample reports the
    // levels as they stand.
    bool partial_activity = l2_.evictions() > lastIntervalEvictions_ ||
                            demandMissCounter_.during() > 0;
    for (std::size_t i = 0; i < n && !partial_activity; ++i)
        partial_activity = feedback_[i].currentIntervalActive();
    if (partial_activity) {
        std::vector<PrefetcherFeedback> fb(feedback_);
        IntervalCounter misses = demandMissCounter_;
        std::vector<IntervalCounter> pollution(pollutionEvents_);
        for (std::size_t i = 0; i < n; ++i) {
            fb[i].endInterval();
            pollution[i].endInterval();
        }
        misses.endInterval();

        std::vector<FeedbackSnapshot> snaps(n);
        for (std::size_t i = 0; i < n; ++i) {
            snaps[i] = makeSnapshot(fb[i], misses.value(),
                                    pollution[i].value());
        }

        IntervalSample sample;
        sample.cycle = now;
        sample.accuracy[0] = snaps[0].accuracy;
        sample.coverage[0] = snaps[0].coverage;
        sample.primaryLevel = levels_[0];
        sample.primaryEnabled = enabled_[0] != 0;
        if (n > 1) {
            sample.accuracy[1] = snaps[1].accuracy;
            sample.coverage[1] = snaps[1].coverage;
            sample.ldsLevel = levels_[1];
            sample.ldsEnabled = enabled_[1] != 0;
        }
        for (std::size_t i = 2; i < n; ++i) {
            EngineIntervalExtra extra;
            extra.accuracy = snaps[i].accuracy;
            extra.coverage = snaps[i].coverage;
            extra.level = levels_[i];
            extra.enabled = enabled_[i] != 0;
            sample.extra.push_back(extra);
        }
        out.intervalSeries.push_back(sample);
    }
}

void
MemorySystem::resetEngineStack()
{
    const std::size_t n = engines_.size();
    for (std::size_t i = 0; i < n; ++i) {
        engines_[i]->reset();
        feedback_[i].reset();
        pollutionEvents_[i].reset();
        pollutionFilter_[i].clear();
        enabled_[i] = 1;
    }
    demandMissCounter_.reset();
    applyLevel(0, cfg_.primaryStartLevel);
    for (std::size_t i = 1; i < n; ++i)
        applyLevel(i, i == 1 ? cfg_.ldsStartLevel
                             : AggLevel::Aggressive);
    policy_->reset();
    // Re-arm the interval machinery at the current counts so the
    // first post-reset interval measures only post-reset activity.
    lastIntervalEvictions_ = l2_.evictions();
    lastIntervalInstructions_ =
        progressCore_ ? progressCore_->retired() : 0;
    lastIntervalBus_ = dram_->busTransactions(coreId_);
}

} // namespace ecdp
