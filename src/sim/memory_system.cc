#include "sim/memory_system.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <string>

namespace ecdp
{

MemorySystem::MemorySystem(const SystemConfig &cfg, unsigned core_id,
                           SimMemory image, DramSystem *dram,
                           const Observability *obs)
    : cfg_(cfg),
      coreId_(core_id),
      image_(std::move(image)),
      dram_(dram),
      ownedMetrics_(obs && obs->metrics
                        ? nullptr
                        : std::make_unique<obs::MetricRegistry>()),
      metrics_(obs && obs->metrics ? obs->metrics
                                   : ownedMetrics_.get()),
      tracer_(obs ? obs->tracer : nullptr),
      phases_(obs ? obs->phases : nullptr),
      primaryMonitor_(tracer_, core_id, 0, cfg.primaryStartLevel),
      ldsMonitor_(tracer_, core_id, 1, cfg.ldsStartLevel),
      l1_("L1D", cfg.l1Bytes, cfg.l1Assoc, cfg.l1BlockBytes),
      l2_("L2", cfg.l2Bytes, cfg.l2Assoc, cfg.l2BlockBytes),
      mshrs_(cfg.l2Mshrs),
      stream_(cfg.streamEntries, cfg.l2BlockBytes),
      ghb_(1024, cfg.l2BlockBytes),
      cdp_(cfg.cdpCompareBits, cfg.l2BlockBytes),
      dbp_(),
      pab_(cfg.pabWindow),
      coordinated_(cfg.coordThresholds),
      fdp_(cfg.fdpThresholds),
      pollutionFilter_{
          PollutionFilter(cfg.fdpThresholds.pollutionFilterEntries),
          PollutionFilter(cfg.fdpThresholds.pollutionFilterEntries)},
      primaryLevel_(cfg.primaryStartLevel),
      ldsLevel_(cfg.ldsStartLevel),
      blockBuf_(cfg.l2BlockBytes, 0)
{
    assert(dram_);
    bindCounters();
    if (cfg_.lds == LdsKind::Markov)
        markov_ = std::make_unique<MarkovPrefetcher>(l2_.geom());
    if (cfg_.hwFilter)
        hwFilter_ = std::make_unique<HardwareFilter>();
    if (cfg_.lds == LdsKind::Ecdp) {
        assert(cfg_.hints && "ECDP requires compiler hints");
        cdp_.setFilterMode(cfg_.grpCoarse
                               ? ContentDirectedPrefetcher::
                                     FilterMode::GrpCoarse
                               : ContentDirectedPrefetcher::
                                     FilterMode::EcdpHints);
        cdp_.setHints(cfg_.hints);
    }
    applyPrimaryLevel(primaryLevel_);
    applyLdsLevel(ldsLevel_);
}

void
MemorySystem::bindCounters()
{
    obs::MetricScope core(*metrics_,
                          "core" + std::to_string(coreId_) + ".");
    demandLoadsCtr_ = &core.counter("demand_loads");

    obs::MetricScope l2 = core.scope("l2.");
    demandAccessesCtr_ = &l2.counter("demand_accesses");
    demandHitsCtr_ = &l2.counter("demand_hits");
    mshrMergesCtr_ = &l2.counter("mshr_merges");
    sideHitsCtr_ = &l2.counter("side_hits");
    idealHitsCtr_ = &l2.counter("ideal_hits");
    demandMissesCtr_ = &l2.counter("demand_misses");
    demandMissesTrueCtr_ = &l2.counter("demand_misses_true");
    demandMissesLateCtr_ = &l2.counter("demand_misses_late");
    ldsMissesCtr_ = &l2.counter("lds_misses");

    obs::MetricScope mshr = core.scope("mshr.");
    mshrAllocationsCtr_ = &mshr.counter("allocations");
    mshrReleasesCtr_ = &mshr.counter("releases");
    mshrInFlightEndCtr_ = &mshr.counter("in_flight_end");
    mshrStallCyclesCtr_ = &mshr.counter("demand_stall_cycles");

    static const char *const kSourceName[2] = {"primary", "lds"};
    static const char *const kDropName[6] = {
        "queue_full",  "source_disabled", "cached",
        "in_flight",   "side_buffer",     "hw_filter",
    };
    for (unsigned which = 0; which < 2; ++which) {
        obs::MetricScope pf =
            core.scope(std::string("pf.") + kSourceName[which] + ".");
        PfCounters &c = pf_[which];
        c.generated = &pf.counter("generated");
        c.queued = &pf.counter("queued");
        c.issued = &pf.counter("issued");
        c.filled = &pf.counter("filled");
        c.used = &pf.counter("used");
        c.sideUsed = &pf.counter("side_used");
        c.consumedLate = &pf.counter("consumed_late");
        c.evictedUnused = &pf.counter("evicted_unused");
        c.usefulLatencySum = &pf.counter("useful_latency_sum");
        c.usefulLatencyCount = &pf.counter("useful_latency_count");
        for (unsigned reason = 0; reason < 6; ++reason) {
            c.drop[reason] = &pf.counter(std::string("dropped.") +
                                         kDropName[reason]);
        }
        c.residentUnusedEnd = &pf.counter("resident_unused_end");
        c.inFlightEnd = &pf.counter("in_flight_end");
        c.inQueueEnd = &pf.counter("in_queue_end");
        c.sideResidentEnd = &pf.counter("side_resident_end");
    }
}

void
MemorySystem::dropPrefetch(PrefetchSource source, obs::DropReason reason,
                           Addr block_addr, Cycle now)
{
    pf_[srcIndex(source)].drop[static_cast<unsigned>(reason)]->inc();
    if (tracer_) {
        obs::TraceEvent event;
        event.type = obs::EventType::PrefetchDrop;
        event.source = static_cast<std::uint8_t>(srcIndex(source));
        event.a = static_cast<std::uint8_t>(reason);
        event.core = static_cast<std::uint16_t>(coreId_);
        event.cycle = now;
        event.addr = block_addr.raw();
        tracer_->record(event);
    }
}

void
MemorySystem::noteMshrStall(Cycle now)
{
    mshrStallCyclesCtr_->inc();
    // The core retries a rejected load every cycle; trace only the
    // first cycle of each contiguous stall burst.
    const bool burst_start =
        lastMshrStall_ == Cycle{~std::uint64_t{0}} || now > lastMshrStall_ + 1;
    lastMshrStall_ = now;
    if (tracer_ && burst_start) {
        obs::TraceEvent event;
        event.type = obs::EventType::MshrFullStall;
        event.core = static_cast<std::uint16_t>(coreId_);
        event.cycle = now;
        event.arg = mshrs_.inFlight();
        tracer_->record(event);
    }
}

void
MemorySystem::applyPrimaryLevel(AggLevel level)
{
    primaryLevel_ = level;
    stream_.setAggressiveness(level);
    static constexpr unsigned ghb_degree[kNumAggLevels] = {1, 1, 2, 4};
    ghb_.setDegree(ghb_degree[static_cast<unsigned>(level)]);
}

void
MemorySystem::applyLdsLevel(AggLevel level)
{
    ldsLevel_ = level;
    cdp_.setAggressiveness(level);
    // DBP and Markov expose no aggressiveness knob (the paper does not
    // throttle them either).
}

void
MemorySystem::pabRecord(unsigned which, bool used)
{
    if (cfg_.throttle == ThrottleKind::Pab)
        pab_.recordOutcome(which, used);
}

void
MemorySystem::recordDemandMiss(Addr block_addr, bool is_lds,
                               bool probe_pollution, Cycle now)
{
    demandMissesCtr_->inc();
    if (probe_pollution)
        demandMissesTrueCtr_->inc();
    else
        demandMissesLateCtr_->inc();
    if (is_lds)
        ldsMissesCtr_->inc();
    demandMissCounter_.add();
    if (tracer_) {
        obs::TraceEvent event;
        event.type = obs::EventType::DemandMiss;
        event.a = is_lds ? 1 : 0;
        event.core = static_cast<std::uint16_t>(coreId_);
        event.cycle = now;
        event.addr = block_addr.raw();
        tracer_->record(event);
    }
    if (!probe_pollution)
        return;
    for (unsigned which = 0; which < 2; ++which) {
        if (pollutionFilter_[which].test(l2_.geom().blockOf(block_addr)))
            pollutionEvents_[which].add();
    }
}

void
MemorySystem::l1Fill(Addr addr, bool dirty, Cycle now)
{
    Cache::Victim victim = l1_.insert(addr);
    if (CacheBlock *block = l1_.lookup(addr, false))
        block->dirty = block->dirty || dirty;
    if (victim.valid && victim.dirty) {
        // Dirty L1 victim folds into the L2 copy; if the L2 block is
        // already gone, the data goes straight to memory.
        if (CacheBlock *parent = l2_.lookup(victim.addr, false))
            parent->dirty = true;
        else
            dram_->writeback(coreId_, l2_.blockAddr(victim.addr), now);
    }
}

void
MemorySystem::onDemandUseOfPrefetch(CacheBlock *block, Addr block_addr,
                                    Cycle now)
{
    const bool was_primary = block->prefetchedPrimary;
    const bool was_lds = block->prefetchedLds;
    if (!was_primary && !was_lds)
        return;
    const unsigned which = was_lds ? 1u : 0u;
    feedback_[which].onPrefetchUsed();
    pf_[which].used->inc();
    pf_[which].usefulLatencySum->add(block->prefetchLatency.raw());
    pf_[which].usefulLatencyCount->inc();
    if (block->pgValid)
        ++pgStats_[block->pg].used;
    pabRecord(which, true);
    if (hwFilter_ && was_lds)
        hwFilter_->onPrefetchUsed(l2_.geom().blockOf(block_addr));
    if (was_primary && cfg_.primary == PrimaryKind::Stream &&
        primaryEnabled_) {
        // A hit on a stream-prefetched block keeps the stream alive.
        scratch_.clear();
        stream_.trigger(block_addr, scratch_);
        drainScratch(now, now);
    }
    block->prefetchedPrimary = false;
    block->prefetchedLds = false;
    block->pgValid = false;
}

void
MemorySystem::trainOnDemandMiss(const TraceEntry &entry, Cycle now)
{
    scratch_.clear();
    if (cfg_.primary == PrimaryKind::Stream && primaryEnabled_)
        stream_.trigger(entry.vaddr, scratch_);
    else if (cfg_.primary == PrimaryKind::Ghb && primaryEnabled_)
        ghb_.onDemandMiss(entry.vaddr, scratch_);
    if (cfg_.lds == LdsKind::Markov && ldsEnabled_)
        markov_->onDemandMiss(l2_.geom().blockOf(entry.vaddr), scratch_);
    drainScratch(now, now);
}

void
MemorySystem::dbpComplete(const TraceEntry &entry, Cycle ready)
{
    if (cfg_.lds != LdsKind::Dbp || !ldsEnabled_)
        return;
    if (entry.size != kPointerBytes)
        return;
    Addr value = image_.readPointer(entry.vaddr);
    scratch_.clear();
    dbp_.onLoadComplete(entry.pc, value, scratch_);
    drainScratch(ready, ready);
}

void
MemorySystem::drainScratch(Cycle ready_at, Cycle now)
{
    for (const PrefetchRequest &req : scratch_)
        enqueuePrefetch(req, ready_at, now);
    scratch_.clear();
}

void
MemorySystem::enqueuePrefetch(const PrefetchRequest &req, Cycle ready_at,
                              Cycle now)
{
    pf_[srcIndex(req.source)].generated->inc();
    if (readyQueue_.size() + delayedQueue_.size() >=
        cfg_.prefetchQueueEntries) {
        // Prefetch request queue overflow: drop, but count it so
        // sweeps can see a too-small queue instead of silently losing
        // coverage.
        dropPrefetch(req.source, obs::DropReason::QueueFull,
                     l2_.blockAddr(req.blockAddr), now);
        return;
    }
    pf_[srcIndex(req.source)].queued->inc();
    QueuedPrefetch queued;
    queued.req = req;
    queued.req.blockAddr = l2_.blockAddr(req.blockAddr);
    queued.readyAt = ready_at;
    if (ready_at <= now)
        readyQueue_.push_back(queued);
    else
        delayedQueue_.push(queued);
}

std::optional<Cycle>
MemorySystem::load(const TraceEntry &entry, Cycle now)
{
    obs::PhaseProfiler::Scoped scope(
        phases_, obs::PhaseProfiler::Phase::CacheProbe);
    const Addr addr = entry.vaddr;

    if (l1_.lookup(addr)) {
        demandLoadsCtr_->inc();
        return now + cfg_.l1Latency;
    }

    const Addr block_addr = l2_.blockAddr(addr);

    if (cfg_.lds == LdsKind::Dbp && ldsEnabled_)
        dbp_.onLoadIssue(entry.pc, addr);

    if (CacheBlock *block = l2_.lookup(addr)) {
        demandLoadsCtr_->inc();
        demandAccessesCtr_->inc();
        demandHitsCtr_->inc();
        onDemandUseOfPrefetch(block, block_addr, now);
        l1Fill(addr, false, now);
        dbpComplete(entry, now + cfg_.l2Latency);
        return now + cfg_.l1Latency + cfg_.l2Latency;
    }

    if (Mshr *mshr = mshrs_.find(block_addr)) {
        demandLoadsCtr_->inc();
        demandAccessesCtr_->inc();
        mshrMergesCtr_->inc();
        if (!mshr->demand) {
            mshr->demand = true;
            mshr->blockByteOffset =
                static_cast<std::uint8_t>(l2_.blockOffset(addr));
            if (mshr->source != PrefetchSource::None) {
                // A demand matching an in-flight prefetch: the
                // prefetch is late. The block was not in the cache,
                // so this still counts as a last-level demand miss
                // (only cache-resident prefetches count as used) and
                // still trains the miss-stream predictors. The block
                // is in flight, not prefetch-evicted, so the
                // pollution filter is not probed.
                feedback_[srcIndex(mshr->source)].onPrefetchLate();
                recordDemandMiss(block_addr, entry.isLds, false, now);
                trainOnDemandMiss(entry, now);
            }
        }
        Cycle done = std::max(mshr->fillAt, now);
        dbpComplete(entry, done);
        return done + cfg_.l1Latency;
    }

    // Ideal-no-pollution side buffer (Section 2.3 oracle).
    if (cfg_.idealNoPollution) {
        auto it = sideBuffer_.find(block_addr);
        if (it != sideBuffer_.end()) {
            demandLoadsCtr_->inc();
            demandAccessesCtr_->inc();
            sideHitsCtr_->inc();
            const SideEntry &side = it->second;
            const unsigned which = srcIndex(side.source);
            feedback_[which].onPrefetchUsed();
            pf_[which].used->inc();
            pf_[which].sideUsed->inc();
            pf_[which].usefulLatencySum->add(side.latency.raw());
            pf_[which].usefulLatencyCount->inc();
            if (side.pgValid)
                ++pgStats_[side.pg].used;
            Cache::Victim victim = l2_.insert(block_addr);
            handleVictim(victim, PrefetchSource::None, now);
            sideBuffer_.erase(it);
            l1Fill(addr, false, now);
            dbpComplete(entry, now + cfg_.l2Latency);
            return now + cfg_.l1Latency + cfg_.l2Latency;
        }
    }

    // Figure 1 oracle: LDS misses become L2 hits.
    if (cfg_.idealLds && entry.isLds) {
        demandLoadsCtr_->inc();
        demandAccessesCtr_->inc();
        idealHitsCtr_->inc();
        Cache::Victim victim = l2_.insert(block_addr);
        handleVictim(victim, PrefetchSource::None, now);
        l1Fill(addr, false, now);
        return now + cfg_.l1Latency + cfg_.l2Latency;
    }

    // True L2 demand miss. Only count it once accepted.
    if (mshrs_.full()) {
        noteMshrStall(now);
        return std::nullopt;
    }
    std::optional<Cycle> done = dram_->read(coreId_, block_addr, now);
    if (!done)
        return std::nullopt;

    demandLoadsCtr_->inc();
    demandAccessesCtr_->inc();
    recordDemandMiss(block_addr, entry.isLds, true, now);

    Mshr &mshr = mshrs_.allocate(block_addr);
    mshr.fillAt = *done;
    mshr.issuedAt = now;
    mshr.demand = true;
    mshr.source = PrefetchSource::None;
    mshr.loadPc = entry.pc;
    mshr.blockByteOffset =
        static_cast<std::uint8_t>(l2_.blockOffset(addr));
    mshr.scanOnFill = contentDirected() && ldsEnabled_;
    earliestFill_ = std::min(earliestFill_, mshr.fillAt);

    trainOnDemandMiss(entry, now);
    dbpComplete(entry, *done);
    return *done + cfg_.l1Latency;
}

void
MemorySystem::store(const TraceEntry &entry, Cycle now)
{
    obs::PhaseProfiler::Scoped scope(
        phases_, obs::PhaseProfiler::Phase::CacheProbe);
    image_.write(entry.vaddr, entry.size, entry.storeValue);

    if (CacheBlock *block = l1_.lookup(entry.vaddr)) {
        block->dirty = true;
        return;
    }

    const Addr block_addr = l2_.blockAddr(entry.vaddr);
    if (CacheBlock *block = l2_.lookup(entry.vaddr)) {
        demandAccessesCtr_->inc();
        demandHitsCtr_->inc();
        onDemandUseOfPrefetch(block, block_addr, now);
        block->dirty = true;
        l1Fill(entry.vaddr, true, now);
        return;
    }

    if (Mshr *mshr = mshrs_.find(block_addr)) {
        mshr->dirty = true;
        return;
    }

    // Store miss: background write-allocate. The fetch costs a bus
    // transaction but the core never waits for stores. It is still a
    // demand miss, so it probes the pollution filter exactly like the
    // load-miss path — store-heavy workloads would otherwise
    // undercount pollution and mislead FDP/coordinated throttling.
    demandAccessesCtr_->inc();
    recordDemandMiss(block_addr, entry.isLds, true, now);
    dram_->writeback(coreId_, block_addr, now);
    Cache::Victim victim = l2_.insert(block_addr);
    if (CacheBlock *block = l2_.lookup(entry.vaddr, false))
        block->dirty = true;
    handleVictim(victim, PrefetchSource::None, now);
    l1Fill(entry.vaddr, true, now);
    if (cfg_.primary == PrimaryKind::Stream && primaryEnabled_) {
        scratch_.clear();
        stream_.trigger(entry.vaddr, scratch_);
        drainScratch(now, now);
    }
}

void
MemorySystem::scanAndEnqueue(
    Addr block_addr, const ContentDirectedPrefetcher::ScanContext &ctx,
    Cycle now)
{
    obs::PhaseProfiler::Scoped scope(
        phases_, obs::PhaseProfiler::Phase::CdpScan);
    image_.readBlock(block_addr, blockBuf_.data(), blockBuf_.size());
    scratch_.clear();
    cdp_.scan(block_addr, blockBuf_.data(), ctx, scratch_);
    drainScratch(now, now);
}

void
MemorySystem::handleVictim(const Cache::Victim &victim,
                           PrefetchSource insert_source, Cycle now)
{
    if (!victim.valid)
        return;
    if (victim.dirty)
        dram_->writeback(coreId_, victim.addr, now);
    if (victim.wasPrefetchedPrimary) {
        pf_[0].evictedUnused->inc();
        pabRecord(0, false);
    }
    if (victim.wasPrefetchedLds) {
        pf_[1].evictedUnused->inc();
        pabRecord(1, false);
        if (hwFilter_)
            hwFilter_->onPrefetchEvictedUnused(
                l2_.geom().blockOf(victim.addr));
    }
    if (insert_source != PrefetchSource::None) {
        pollutionFilter_[srcIndex(insert_source)]
            .onPrefetchEvictedDemandBlock(
                l2_.geom().blockOf(victim.addr));
    }
}

void
MemorySystem::installFill(Mshr &mshr, Cycle now)
{
    const Addr block_addr = mshr.blockAddr;
    const PrefetchSource source = mshr.source;

    if (source != PrefetchSource::None) {
        pf_[srcIndex(source)].filled->inc();
        if (tracer_) {
            obs::TraceEvent event;
            event.type = obs::EventType::PrefetchFill;
            event.source =
                static_cast<std::uint8_t>(srcIndex(source));
            event.a = mshr.demand ? 1 : 0;
            event.core = static_cast<std::uint16_t>(coreId_);
            event.cycle = now;
            event.addr = block_addr.raw();
            event.arg = (now - mshr.issuedAt).raw();
            tracer_->record(event);
        }
    }

    const bool side_buffered = cfg_.idealNoPollution &&
                               source != PrefetchSource::None &&
                               !mshr.demand;
    if (side_buffered) {
        SideEntry side;
        side.source = source;
        side.pgValid = mshr.pgRootValid;
        side.pg = mshr.pgRoot;
        side.latency = now - mshr.issuedAt;
        side.depth = mshr.cdpDepth;
        sideBuffer_[block_addr] = side;
    } else {
        Cache::Victim victim = l2_.insert(block_addr, source);
        CacheBlock *block = l2_.lookup(block_addr, false);
        assert(block);
        if (mshr.dirty)
            block->dirty = true;
        if (source != PrefetchSource::None) {
            block->prefetchLatency = now - mshr.issuedAt;
            block->cdpDepth = mshr.cdpDepth;
            block->pgValid = mshr.pgRootValid;
            block->pg = mshr.pgRoot;
            if (mshr.demand) {
                // Late prefetch: the waiting demand consumes it at
                // fill. It does not count as *used* (the tag-bit
                // mechanism only sees cache-resident uses) but the
                // PG that generated it did point at truly needed
                // data, so the profiling statistics credit it.
                pf_[srcIndex(source)].consumedLate->inc();
                if (mshr.pgRootValid)
                    ++pgStats_[mshr.pgRoot].used;
                pabRecord(srcIndex(source), true);
                if (hwFilter_ && source == PrefetchSource::Lds)
                    hwFilter_->onPrefetchUsed(
                        l2_.geom().blockOf(block_addr));
                block->prefetchedPrimary = false;
                block->prefetchedLds = false;
                block->pgValid = false;
                l1Fill(block_addr + mshr.blockByteOffset, false, now);
            }
        } else {
            l1Fill(block_addr + mshr.blockByteOffset, false, now);
        }
        handleVictim(victim, source, now);
    }

    // Content-directed scan of the freshly arrived block.
    if (contentDirected() && ldsEnabled_) {
        if (source == PrefetchSource::None && mshr.scanOnFill) {
            ContentDirectedPrefetcher::ScanContext ctx;
            ctx.demandFill = true;
            ctx.loadPc = mshr.loadPc;
            ctx.accessByteOffset = mshr.blockByteOffset;
            ctx.fillDepth = 0;
            scanAndEnqueue(block_addr, ctx, now);
        } else if (source == PrefetchSource::Lds &&
                   cdp_.shouldScan(mshr.cdpDepth)) {
            ContentDirectedPrefetcher::ScanContext ctx;
            ctx.demandFill = false;
            ctx.fillDepth = mshr.cdpDepth;
            ctx.pgValid = mshr.pgRootValid;
            ctx.pgRoot = mshr.pgRoot;
            scanAndEnqueue(block_addr, ctx, now);
        }
    }

    mshrs_.release(mshr);
}

void
MemorySystem::processFills(Cycle now)
{
    earliestFill_ = Cycle{~std::uint64_t{0}};
    // Snapshot the validity mask: installFill() releases the entry it
    // fills, and no new entries are allocated inside the loop.
    for (std::uint64_t mask = mshrs_.validMask(); mask;
         mask &= mask - 1) {
        Mshr &mshr =
            mshrs_.entry(static_cast<unsigned>(std::countr_zero(mask)));
        if (mshr.fillAt <= now)
            installFill(mshr, now);
        else
            earliestFill_ = std::min(earliestFill_, mshr.fillAt);
    }
}

void
MemorySystem::issuePrefetches(Cycle now)
{
    while (!delayedQueue_.empty() &&
           delayedQueue_.top().readyAt <= now) {
        readyQueue_.push_back(delayedQueue_.top());
        delayedQueue_.pop();
    }

    unsigned budget = cfg_.prefetchIssuePerCycle;
    while (budget > 0 && !readyQueue_.empty()) {
        const QueuedPrefetch &queued = readyQueue_.front();
        const PrefetchRequest &req = queued.req;
        // Classify the filter decision so each discard is counted
        // (and traced) under its reason instead of vanishing.
        std::optional<obs::DropReason> reject;
        if (!sourceEnabled(req.source))
            reject = obs::DropReason::SourceDisabled;
        else if (l2_.peek(req.blockAddr))
            reject = obs::DropReason::AlreadyCached;
        else if (mshrs_.find(req.blockAddr))
            reject = obs::DropReason::AlreadyInFlight;
        else if (cfg_.idealNoPollution &&
                 sideBuffer_.count(req.blockAddr))
            reject = obs::DropReason::SideBuffered;
        else if (hwFilter_ && req.source == PrefetchSource::Lds &&
                 !hwFilter_->allow(l2_.geom().blockOf(req.blockAddr)))
            reject = obs::DropReason::HwFilter;
        if (reject) {
            dropPrefetch(req.source, *reject, req.blockAddr, now);
            readyQueue_.pop_front();
            continue;
        }
        if (mshrs_.full() ||
            mshrs_.inFlight() + cfg_.mshrReserveForDemand >=
                cfg_.l2Mshrs) {
            break;
        }
        std::optional<Cycle> done = dram_->read(
            coreId_, req.blockAddr, now, cfg_.dramReserveForDemand);
        if (!done)
            break;
        Mshr &mshr = mshrs_.allocate(req.blockAddr);
        mshr.fillAt = *done;
        mshr.issuedAt = now;
        mshr.source = req.source;
        mshr.cdpDepth = req.depth;
        mshr.pgRoot = req.pg;
        mshr.pgRootValid = req.pgValid;
        earliestFill_ = std::min(earliestFill_, mshr.fillAt);
        feedback_[srcIndex(req.source)].onPrefetchIssued();
        pf_[srcIndex(req.source)].issued->inc();
        if (tracer_) {
            obs::TraceEvent event;
            event.type = obs::EventType::PrefetchIssue;
            event.source =
                static_cast<std::uint8_t>(srcIndex(req.source));
            event.core = static_cast<std::uint16_t>(coreId_);
            event.cycle = now;
            event.addr = req.blockAddr.raw();
            tracer_->record(event);
        }
        if (req.pgValid)
            ++pgStats_[req.pg].issued;
        readyQueue_.pop_front();
        --budget;
    }
}

FeedbackSnapshot
MemorySystem::makeSnapshot(const PrefetcherFeedback &fb,
                           std::uint64_t aged_misses,
                           std::uint64_t aged_pollution)
{
    FeedbackSnapshot snap;
    snap.accuracy = fb.accuracy();
    snap.coverage = fb.coverage(aged_misses);
    snap.lateness = fb.lateness();
    snap.pollution = aged_misses == 0
        ? 0.0
        : static_cast<double>(aged_pollution) /
              static_cast<double>(aged_misses);
    snap.anyPrefetches = fb.anyPrefetches();
    return snap;
}

FeedbackSnapshot
MemorySystem::snapshot(unsigned which) const
{
    return makeSnapshot(feedback_[which], demandMissCounter_.value(),
                        pollutionEvents_[which].value());
}

void
MemorySystem::endInterval(Cycle now)
{
    ++intervals_;
    feedback_[0].endInterval();
    feedback_[1].endInterval();
    demandMissCounter_.endInterval();
    pollutionEvents_[0].endInterval();
    pollutionEvents_[1].endInterval();

    const FeedbackSnapshot primary = snapshot(0);
    const FeedbackSnapshot lds = snapshot(1);

    switch (cfg_.throttle) {
      case ThrottleKind::None:
        break;
      case ThrottleKind::Coordinated:
        applyPrimaryLevel(CoordinatedThrottler::apply(
            primaryLevel_, coordinated_.decide(primary, lds)));
        applyLdsLevel(CoordinatedThrottler::apply(
            ldsLevel_, coordinated_.decide(lds, primary)));
        break;
      case ThrottleKind::Fdp:
        applyPrimaryLevel(CoordinatedThrottler::apply(
            primaryLevel_, fdp_.decide(primary)));
        applyLdsLevel(CoordinatedThrottler::apply(
            ldsLevel_, fdp_.decide(lds)));
        break;
      case ThrottleKind::Pab: {
        const unsigned keep = pab_.select();
        primaryEnabled_ = keep == 0;
        ldsEnabled_ = keep == 1;
        break;
      }
    }

    IntervalSample sample;
    sample.cycle = now;
    sample.accuracy[0] = primary.accuracy;
    sample.accuracy[1] = lds.accuracy;
    sample.coverage[0] = primary.coverage;
    sample.coverage[1] = lds.coverage;
    sample.primaryLevel = primaryLevel_;
    sample.ldsLevel = ldsLevel_;
    sample.primaryEnabled = primaryEnabled_;
    sample.ldsEnabled = ldsEnabled_;
    intervalSeries_.push_back(sample);

    if (tracer_) {
        for (unsigned which = 0; which < 2; ++which) {
            obs::TraceEvent event;
            event.type = obs::EventType::IntervalSample;
            event.source = static_cast<std::uint8_t>(which);
            event.core = static_cast<std::uint16_t>(coreId_);
            event.cycle = now;
            event.arg = intervals_;
            event.x = sample.accuracy[which];
            event.y = sample.coverage[which];
            tracer_->record(event);
        }
    }
    primaryMonitor_.observe(now, primaryLevel_, primaryEnabled_);
    ldsMonitor_.observe(now, ldsLevel_, ldsEnabled_);

    pollutionFilter_[0].clear();
    pollutionFilter_[1].clear();
    lastIntervalEvictions_ = l2_.evictions();
}

void
MemorySystem::tick(Cycle now)
{
    if (earliestFill_ <= now)
        processFills(now);
    if (!readyQueue_.empty() || !delayedQueue_.empty())
        issuePrefetches(now);
    if (l2_.evictions() - lastIntervalEvictions_ >=
        cfg_.intervalEvictions) {
        endInterval(now);
    }
}

Cycle
MemorySystem::nextEventCycle(Cycle now) const
{
    // Ready prefetches are (re)tried every cycle, and every attempt
    // can have observable effects (drop counters, DRAM buffer-reject
    // counters), so no cycle with a non-empty ready queue may be
    // skipped.
    if (!readyQueue_.empty())
        return now + 1;
    // An already-crossed interval boundary fires at the next tick;
    // the eviction delta is monotonic and only moves on fill/demand
    // activity, so if it has not crossed yet it cannot cross during
    // skipped (idle) cycles.
    if (l2_.evictions() - lastIntervalEvictions_ >=
        cfg_.intervalEvictions) {
        return now + 1;
    }
    Cycle wake = earliestFill_;
    if (!delayedQueue_.empty())
        wake = std::min(wake, delayedQueue_.top().readyAt);
    return wake > now ? wake : now + 1;
}

void
MemorySystem::collectStats(RunStats &out, Cycle now)
{
    // Fold the end-of-run gauges in first so the registry satisfies
    // the conservation identities at the same instant the RunStats
    // snapshot is taken.
    const Cache::PrefetchedResident census = l2_.prefetchedResident();
    pf_[0].residentUnusedEnd->set(census.primary);
    pf_[1].residentUnusedEnd->set(census.lds);

    std::uint64_t in_flight[2] = {0, 0};
    for (const Mshr &mshr : mshrs_.entries()) {
        if (mshr.valid && mshr.source != PrefetchSource::None)
            ++in_flight[srcIndex(mshr.source)];
    }
    std::uint64_t in_queue[2] = {0, 0};
    for (const QueuedPrefetch &queued : readyQueue_)
        ++in_queue[srcIndex(queued.req.source)];
    auto delayed = delayedQueue_;
    while (!delayed.empty()) {
        ++in_queue[srcIndex(delayed.top().req.source)];
        delayed.pop();
    }
    std::uint64_t side_resident[2] = {0, 0};
    for (const auto &[addr, side] : sideBuffer_) {
        (void)addr;
        ++side_resident[srcIndex(side.source)];
    }
    for (unsigned which = 0; which < 2; ++which) {
        pf_[which].inFlightEnd->set(in_flight[which]);
        pf_[which].inQueueEnd->set(in_queue[which]);
        pf_[which].sideResidentEnd->set(side_resident[which]);
    }
    mshrAllocationsCtr_->set(mshrs_.allocations());
    mshrReleasesCtr_->set(mshrs_.releases());
    mshrInFlightEndCtr_->set(mshrs_.inFlight());

    out.demandLoads = demandLoadsCtr_->value();
    out.l2DemandAccesses = demandAccessesCtr_->value();
    out.l2DemandMisses = demandMissesCtr_->value();
    out.l2LdsMisses = ldsMissesCtr_->value();
    for (unsigned which = 0; which < 2; ++which) {
        out.prefIssued[which] = feedback_[which].lifetimeIssued();
        out.prefUsed[which] = feedback_[which].lifetimeUsed();
        out.prefLate[which] = feedback_[which].lifetimeLate();
        // RunStats keeps the historical meaning: queue-overflow drops
        // only. The registry holds the full per-reason breakdown.
        out.prefDropped[which] =
            pf_[which]
                .drop[static_cast<unsigned>(
                    obs::DropReason::QueueFull)]
                ->value();
        out.usefulLatencySum[which] =
            pf_[which].usefulLatencySum->value();
        out.usefulLatencyCount[which] =
            pf_[which].usefulLatencyCount->value();
    }
    out.pgStats = pgStats_;
    out.finalPrimaryLevel = primaryLevel_;
    out.finalLdsLevel = ldsLevel_;
    out.finalPrimaryEnabled = primaryEnabled_;
    out.finalLdsEnabled = ldsEnabled_;
    out.intervals = intervals_;
    out.intervalSeries = intervalSeries_;

    // Trailing partial interval: interval ends are only detected via
    // the eviction delta in tick(), so a run that stops mid-interval
    // would silently drop its tail from the series. Emit one final
    // sample for it, computed on *copies* of the interval counters:
    // endInterval() on the copies applies the same Equation 3 aging a
    // real boundary would, while the live feedback/throttle state —
    // and therefore simulated behaviour, should the caller keep
    // ticking — stays untouched. No throttling decision is applied
    // (the run ended before the boundary), so the sample reports the
    // levels as they stand.
    const bool partial_activity =
        l2_.evictions() > lastIntervalEvictions_ ||
        demandMissCounter_.during() > 0 ||
        feedback_[0].currentIntervalActive() ||
        feedback_[1].currentIntervalActive();
    if (partial_activity) {
        PrefetcherFeedback fb[2] = {feedback_[0], feedback_[1]};
        IntervalCounter misses = demandMissCounter_;
        IntervalCounter pollution[2] = {pollutionEvents_[0],
                                        pollutionEvents_[1]};
        for (unsigned which = 0; which < 2; ++which) {
            fb[which].endInterval();
            pollution[which].endInterval();
        }
        misses.endInterval();

        IntervalSample sample;
        sample.cycle = now;
        for (unsigned which = 0; which < 2; ++which) {
            const FeedbackSnapshot snap = makeSnapshot(
                fb[which], misses.value(), pollution[which].value());
            sample.accuracy[which] = snap.accuracy;
            sample.coverage[which] = snap.coverage;
        }
        sample.primaryLevel = primaryLevel_;
        sample.ldsLevel = ldsLevel_;
        sample.primaryEnabled = primaryEnabled_;
        sample.ldsEnabled = ldsEnabled_;
        out.intervalSeries.push_back(sample);
    }
}

} // namespace ecdp
