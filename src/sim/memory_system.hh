/**
 * @file
 * Per-core memory hierarchy: L1D, L2 with MSHRs, an ordered stack of
 * prefetch engines (SystemConfig::engines, by registry name), feedback
 * collection and throttling. Several cores' memory systems share one
 * DramSystem.
 *
 * Every engine slot owns its prefetched-bit tag in the cache (the
 * CacheBlock::prefetchOwner index), its feedback/throttle lane and its
 * counter scope, so the paper's accuracy/coverage/pollution machinery
 * applies uniformly whether the stack is the paper's stream+CDP pair
 * or an arbitrary N-engine hybrid. Legacy two-slot configurations
 * (primary/lds kinds, empty cfg.engines) derive their stack via
 * effectiveEngineStack() and behave bit-identically to the
 * pre-registry implementation.
 *
 * Accounting lives in an obs::MetricRegistry (prefix "core<N>.")
 * rather than ad-hoc struct fields, so every run exposes the full
 * counter hierarchy and the conservation-law tests can audit it. When
 * the caller provides no registry the memory system owns a private
 * one — the counters always exist and always add up.
 */

#ifndef ECDP_SIM_MEMORY_SYSTEM_HH
#define ECDP_SIM_MEMORY_SYSTEM_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/cache.hh"
#include "cache/mshr.hh"
#include "core/core.hh"
#include "dram/dram.hh"
#include "memsim/sim_memory.hh"
#include "obs/event_tracer.hh"
#include "obs/metrics.hh"
#include "obs/observability.hh"
#include "obs/throttle_monitor.hh"
#include "prefetch/cdp.hh"
#include "prefetch/engine.hh"
#include "prefetch/hardware_filter.hh"
#include "prefetch/pab_selector.hh"
#include "sim/config.hh"
#include "throttle/coordinated_throttler.hh"
#include "throttle/feedback.hh"
#include "throttle/throttle_policy.hh"

namespace ecdp
{

/**
 * One core's memory system.
 */
class MemorySystem : public CoreMemoryInterface
{
  public:
    /**
     * @param cfg System configuration.
     * @param core_id Index of the owning core.
     * @param image This core's memory image (taken by value).
     * @param dram Shared DRAM system (not owned).
     * @param obs Observability bundle (optional, not owned). Without
     *        one, counters go to a private registry and tracing is
     *        off. Deliberately not part of SystemConfig: the same
     *        configuration must hash identically whether or not the
     *        run is observed.
     */
    MemorySystem(const SystemConfig &cfg, unsigned core_id,
                 SimMemory image, DramSystem *dram,
                 const Observability *obs = nullptr);

    std::optional<Cycle> load(const TraceEntry &entry, Cycle now) override;
    void store(const TraceEntry &entry, Cycle now) override;

    /** Per-cycle work: fills, prefetch issue, interval throttling. */
    void tick(Cycle now);

    /**
     * Earliest cycle after @p now at which tick() could do anything —
     * the event-driven scheduler's wakeup bound. Call after the
     * owning core's tick(now) (core activity enqueues prefetches and
     * allocates MSHRs). Guarantees every cycle in (now, bound) is a
     * no-op tick: no fill is due before earliestFill_, a non-empty
     * ready queue forces now + 1 (issuePrefetches runs — and counts
     * drops / DRAM rejects — every cycle it has work), delayed
     * prefetches wake at their readyAt, and a crossed eviction-delta
     * interval boundary forces now + 1 so endInterval fires on the
     * same cycle it would have under per-cycle polling.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Fold lifetime counters into @p out. Non-const because it also
     * folds end-of-run gauges (queue depths, resident-prefetch
     * census, in-flight MSHRs) into the metric registry so the
     * conservation identities balance at any collection point.
     *
     * A run that ends mid-feedback-interval has a trailing partial
     * interval that never hit the eviction-delta boundary in tick();
     * collectStats appends one final sample for it (stamped with
     * @p now, the run's end cycle) to out.intervalSeries so short
     * runs are not missing their tail in the stats JSON. The sample
     * is computed from copies of the interval counters — simulation
     * and throttling state are untouched, so collecting stats
     * mid-run or repeatedly is safe and idempotent. out.intervals
     * keeps counting completed intervals only.
     */
    void collectStats(RunStats &out, Cycle now = Cycle{});

    /** @{ Introspection for tests and benches. */
    const Cache &l2() const { return l2_; }
    const Cache &l1() const { return l1_; }
    AggLevel primaryLevel() const { return levels_[0]; }
    AggLevel ldsLevel() const
    {
        return levels_.size() > 1 ? levels_[1] : AggLevel::Aggressive;
    }
    bool primaryEnabled() const { return enabled_[0] != 0; }
    bool ldsEnabled() const
    {
        return levels_.size() > 1 ? enabled_[1] != 0 : true;
    }
    const PgStatsMap &pgStats() const { return pgStats_; }
    SimMemory &image() { return image_; }
    std::uint64_t intervalsElapsed() const { return intervals_; }
    /** The registry this core's counters live in (the caller's, or
     *  the private fallback). */
    const obs::MetricRegistry &metrics() const { return *metrics_; }
    /** @} */

    /** @{ Engine-stack introspection (conformance harness, tests). */
    std::size_t engineCount() const { return engines_.size(); }
    const PrefetchEngine &engine(std::size_t i) const
    {
        return *engines_[i];
    }
    /** Counter-scope instance name of slot @p i ("primary", "lds",
     *  "<engine><slot>"). */
    const std::string &engineInstanceName(std::size_t i) const
    {
        return instanceNames_[i];
    }
    bool engineEnabled(std::size_t i) const { return enabled_[i] != 0; }
    AggLevel engineLevel(std::size_t i) const { return levels_[i]; }
    /** Test hook: force a slot's enable bit (what a selector-style
     *  throttler does). The conformance harness uses it to prove a
     *  disabled engine issues nothing. */
    void setEngineEnabled(std::size_t i, bool on)
    {
        enabled_[i] = on ? 1 : 0;
    }
    /** Test hook: apply an aggressiveness level to one slot. */
    void setEngineLevel(std::size_t i, AggLevel level)
    {
        applyLevel(i, level);
    }
    /** Test hook: one slot's feedback lane (reset-path assertions). */
    const PrefetcherFeedback &feedbackLane(std::size_t i) const
    {
        return feedback_[i];
    }
    /** PolicyRegistry name of the running throttle policy. */
    const std::string &throttlePolicyName() const
    {
        return policyName_;
    }
    /** @} */

    /**
     * Attach the owning core as the progress source for the policy's
     * interval-level IPC deltas (the tabular-rl reward signal). Pure
     * observation: the built-in rule policies never read the deltas,
     * so attaching (or not) cannot change legacy behaviour. Without a
     * core, deltaInstructions reads 0 (tests driving a bare
     * MemorySystem).
     */
    void attachCore(const Core *core) { progressCore_ = core; }

    /**
     * Fresh-replay reset of the adaptive machinery: every engine
     * forgets its learned state, all feedback lanes (interval
     * counters AND the latched held accuracy), the shared miss
     * counter, pollution filters/counters, aggressiveness levels,
     * enable bits and the policy's learned state return to their
     * construction values, and the interval baselines re-arm at the
     * current eviction/bus/instruction counts. Cache contents, MSHRs
     * and lifetime obs counters are deliberately untouched: the hook
     * models replaying the *throttling* machinery, not a machine
     * reset.
     */
    void resetEngineStack();

  private:
    struct QueuedPrefetch
    {
        PrefetchRequest req;
        Cycle readyAt{};
    };

    struct DelayedOrder
    {
        bool operator()(const QueuedPrefetch &a,
                        const QueuedPrefetch &b) const
        {
            return a.readyAt > b.readyAt;
        }
    };

    /** Ideal-no-pollution side buffer entry. */
    struct SideEntry
    {
        std::uint8_t engine = kNoPrefetchOwner;
        bool pgValid = false;
        PgId pg{};
        Cycle latency{};
        std::uint8_t depth = 0;
    };

    /**
     * Per-engine prefetch counters, bound once at construction. The
     * lifecycle identities the conservation tests audit:
     *   generated == queued + drop[QueueFull]
     *   queued == issued + other drops + in_queue_end
     *   issued == filled + in_flight_end
     *   filled == used + consumed_late + evicted_unused
     *             + resident_unused_end + side_resident_end
     * (side_used counts the subset of `used` served from the
     * ideal-no-pollution side buffer.)
     */
    struct PfCounters
    {
        obs::Counter *generated = nullptr;
        obs::Counter *queued = nullptr;
        obs::Counter *issued = nullptr;
        obs::Counter *filled = nullptr;
        obs::Counter *used = nullptr;
        obs::Counter *sideUsed = nullptr;
        obs::Counter *consumedLate = nullptr;
        obs::Counter *evictedUnused = nullptr;
        obs::Counter *usefulLatencySum = nullptr;
        obs::Counter *usefulLatencyCount = nullptr;
        /** Indexed by obs::DropReason. */
        obs::Counter *drop[6] = {};
        /** @{ End-of-run gauges (set in collectStats). */
        obs::Counter *residentUnusedEnd = nullptr;
        obs::Counter *inFlightEnd = nullptr;
        obs::Counter *inQueueEnd = nullptr;
        obs::Counter *sideResidentEnd = nullptr;
        /** @} */
    };

    /** Register this core's counters under "core<id>." once. */
    void bindCounters();
    /** Count + trace one discarded prefetch request. */
    void dropPrefetch(std::uint8_t engine, obs::DropReason reason,
                      Addr block_addr, Cycle now);
    /** Count an MSHR-full demand rejection; traces burst starts. */
    void noteMshrStall(Cycle now);

    /**
     * Count one last-level demand miss: lifetime and interval
     * counters, and (for true cache misses, @p probe_pollution) the
     * FDP pollution-filter probe. Shared by the load-miss, store
     * write-allocate-miss and late-MSHR-merge paths so they cannot
     * drift apart again.
     */
    void recordDemandMiss(Addr block_addr, bool is_lds,
                          bool probe_pollution, Cycle now);
    void l1Fill(Addr addr, bool dirty, Cycle now);
    void onDemandUseOfPrefetch(CacheBlock *block, Addr block_addr,
                               Cycle now);
    void trainOnDemandMiss(const TraceEntry &entry, Cycle now);
    /** Route a completed pointer load to the load-value engines
     *  (dependence-based prefetching). */
    void notifyLoadComplete(const TraceEntry &entry, Cycle ready);
    void enqueuePrefetch(const PrefetchRequest &req, Cycle ready_at,
                         Cycle now);
    /** Stamp requests appended since @p base with their slot. */
    void stampScratch(std::size_t base, std::uint8_t engine);
    void drainScratch(Cycle ready_at, Cycle now);
    void processFills(Cycle now);
    void installFill(Mshr &mshr, Cycle now);
    void scanAndEnqueue(std::uint8_t engine, Addr block_addr,
                        const ContentDirectedPrefetcher::ScanContext &ctx,
                        Cycle now);
    void handleVictim(const Cache::Victim &victim,
                      std::uint8_t insert_owner, Cycle now);
    void issuePrefetches(Cycle now);
    /** Is any fill-scanning engine currently enabled? (Gates the
     *  demand-MSHR scanOnFill bit.) */
    bool anyFillScanEnabled() const;
    void endInterval(Cycle now);
    /** Snapshot from explicit (possibly copied) interval counters. */
    static FeedbackSnapshot makeSnapshot(const PrefetcherFeedback &fb,
                                         std::uint64_t aged_misses,
                                         std::uint64_t aged_pollution);
    FeedbackSnapshot snapshot(std::size_t which) const;
    void applyLevel(std::size_t which, AggLevel level);
    void pabRecord(std::size_t which, bool used);

    SystemConfig cfg_;
    unsigned coreId_;
    SimMemory image_;
    DramSystem *dram_;

    /** @{ The engine stack: registry names, stats instance names, and
     *  the engine objects, all indexed by slot. */
    std::vector<std::string> stackNames_;
    std::vector<std::string> instanceNames_;
    std::vector<std::unique_ptr<PrefetchEngine>> engines_;
    /** ldsClass_[i] != 0 iff slot i's engine is LDS-class (sits
     *  behind the hardware filter). */
    std::vector<std::uint8_t> ldsClass_;
    /** Slots whose engines observe load values / scan fills. */
    std::vector<std::uint8_t> loadValueEngines_;
    std::vector<std::uint8_t> fillScanEngines_;
    /** @} */

    /** @{ Observability: the caller's registry/tracer, or a private
     *  fallback registry so the counters always exist. */
    std::unique_ptr<obs::MetricRegistry> ownedMetrics_;
    obs::MetricRegistry *metrics_;
    obs::EventTracer *tracer_;
    obs::PhaseProfiler *phases_;
    std::vector<obs::ThrottleMonitor> monitors_;
    /** @} */

    Cache l1_;
    Cache l2_;
    MshrFile mshrs_;

    std::unique_ptr<HardwareFilter> hwFilter_;
    PabSelector pab_;

    /** The level-decision policy (effectiveThrottlePolicy(cfg)). */
    std::string policyName_;
    std::unique_ptr<ThrottlePolicy> policy_;
    /** Progress source for interval IPC deltas (attachCore()). */
    const Core *progressCore_ = nullptr;
    /** @{ Baselines for the IntervalContext deltas. */
    Cycle lastIntervalCycle_{};
    std::uint64_t lastIntervalInstructions_ = 0;
    std::uint64_t lastIntervalBus_ = 0;
    /** @} */
    std::vector<PrefetcherFeedback> feedback_;
    IntervalCounter demandMissCounter_;
    std::vector<IntervalCounter> pollutionEvents_;
    std::vector<PollutionFilter> pollutionFilter_;

    /** Per-slot aggressiveness and enable state. */
    std::vector<AggLevel> levels_;
    std::vector<std::uint8_t> enabled_;

    std::deque<QueuedPrefetch> readyQueue_;
    std::priority_queue<QueuedPrefetch, std::vector<QueuedPrefetch>,
                        DelayedOrder>
        delayedQueue_;

    std::unordered_map<Addr, SideEntry> sideBuffer_;

    Cycle earliestFill_ = Cycle{~std::uint64_t{0}};
    std::uint64_t lastIntervalEvictions_ = 0;
    std::uint64_t intervals_ = 0;

    /** @{ Registered counters (storage lives in *metrics_). */
    obs::Counter *demandLoadsCtr_ = nullptr;
    obs::Counter *demandAccessesCtr_ = nullptr;
    obs::Counter *demandHitsCtr_ = nullptr;
    obs::Counter *mshrMergesCtr_ = nullptr;
    obs::Counter *sideHitsCtr_ = nullptr;
    obs::Counter *idealHitsCtr_ = nullptr;
    obs::Counter *demandMissesCtr_ = nullptr;
    obs::Counter *demandMissesTrueCtr_ = nullptr;
    obs::Counter *demandMissesLateCtr_ = nullptr;
    obs::Counter *ldsMissesCtr_ = nullptr;
    obs::Counter *mshrAllocationsCtr_ = nullptr;
    obs::Counter *mshrReleasesCtr_ = nullptr;
    obs::Counter *mshrInFlightEndCtr_ = nullptr;
    obs::Counter *mshrStallCyclesCtr_ = nullptr;
    /** @{ Policy decision counters ("core<N>.throttle.<policy>."). */
    obs::Counter *throttleIntervalsCtr_ = nullptr;
    obs::Counter *throttleUpCtr_ = nullptr;
    obs::Counter *throttleDownCtr_ = nullptr;
    obs::Counter *throttleNothingCtr_ = nullptr;
    /** @} */
    std::vector<PfCounters> pf_;
    /** @} */

    /** Last cycle a demand was rejected on full MSHRs (dedupes the
     *  MshrFullStall trace events to burst starts). */
    Cycle lastMshrStall_ = Cycle{~std::uint64_t{0}};

    /** Per-interval feedback time series (folded into RunStats). */
    std::vector<IntervalSample> intervalSeries_;

    PgStatsMap pgStats_;

    std::vector<PrefetchRequest> scratch_;
    std::vector<std::uint8_t> blockBuf_;
};

} // namespace ecdp

#endif // ECDP_SIM_MEMORY_SYSTEM_HH
