/**
 * @file
 * Per-core memory hierarchy: L1D, L2 with MSHRs, the hybrid prefetcher
 * pair (primary + LDS), feedback collection and throttling. Several
 * cores' memory systems share one DramSystem.
 *
 * Accounting lives in an obs::MetricRegistry (prefix "core<N>.")
 * rather than ad-hoc struct fields, so every run exposes the full
 * counter hierarchy and the conservation-law tests can audit it. When
 * the caller provides no registry the memory system owns a private
 * one — the counters always exist and always add up.
 */

#ifndef ECDP_SIM_MEMORY_SYSTEM_HH
#define ECDP_SIM_MEMORY_SYSTEM_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "cache/cache.hh"
#include "cache/mshr.hh"
#include "core/core.hh"
#include "dram/dram.hh"
#include "memsim/sim_memory.hh"
#include "obs/event_tracer.hh"
#include "obs/metrics.hh"
#include "obs/observability.hh"
#include "obs/throttle_monitor.hh"
#include "prefetch/cdp.hh"
#include "prefetch/dbp.hh"
#include "prefetch/ghb_prefetcher.hh"
#include "prefetch/hardware_filter.hh"
#include "prefetch/markov_prefetcher.hh"
#include "prefetch/pab_selector.hh"
#include "prefetch/stream_prefetcher.hh"
#include "sim/config.hh"
#include "throttle/coordinated_throttler.hh"
#include "throttle/fdp_throttler.hh"
#include "throttle/feedback.hh"

namespace ecdp
{

/**
 * One core's memory system.
 */
class MemorySystem : public CoreMemoryInterface
{
  public:
    /**
     * @param cfg System configuration.
     * @param core_id Index of the owning core.
     * @param image This core's memory image (taken by value).
     * @param dram Shared DRAM system (not owned).
     * @param obs Observability bundle (optional, not owned). Without
     *        one, counters go to a private registry and tracing is
     *        off. Deliberately not part of SystemConfig: the same
     *        configuration must hash identically whether or not the
     *        run is observed.
     */
    MemorySystem(const SystemConfig &cfg, unsigned core_id,
                 SimMemory image, DramSystem *dram,
                 const Observability *obs = nullptr);

    std::optional<Cycle> load(const TraceEntry &entry, Cycle now) override;
    void store(const TraceEntry &entry, Cycle now) override;

    /** Per-cycle work: fills, prefetch issue, interval throttling. */
    void tick(Cycle now);

    /**
     * Earliest cycle after @p now at which tick() could do anything —
     * the event-driven scheduler's wakeup bound. Call after the
     * owning core's tick(now) (core activity enqueues prefetches and
     * allocates MSHRs). Guarantees every cycle in (now, bound) is a
     * no-op tick: no fill is due before earliestFill_, a non-empty
     * ready queue forces now + 1 (issuePrefetches runs — and counts
     * drops / DRAM rejects — every cycle it has work), delayed
     * prefetches wake at their readyAt, and a crossed eviction-delta
     * interval boundary forces now + 1 so endInterval fires on the
     * same cycle it would have under per-cycle polling.
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Fold lifetime counters into @p out. Non-const because it also
     * folds end-of-run gauges (queue depths, resident-prefetch
     * census, in-flight MSHRs) into the metric registry so the
     * conservation identities balance at any collection point.
     *
     * A run that ends mid-feedback-interval has a trailing partial
     * interval that never hit the eviction-delta boundary in tick();
     * collectStats appends one final sample for it (stamped with
     * @p now, the run's end cycle) to out.intervalSeries so short
     * runs are not missing their tail in the stats JSON. The sample
     * is computed from copies of the interval counters — simulation
     * and throttling state are untouched, so collecting stats
     * mid-run or repeatedly is safe and idempotent. out.intervals
     * keeps counting completed intervals only.
     */
    void collectStats(RunStats &out, Cycle now = Cycle{});

    /** @{ Introspection for tests and benches. */
    const Cache &l2() const { return l2_; }
    const Cache &l1() const { return l1_; }
    AggLevel primaryLevel() const { return primaryLevel_; }
    AggLevel ldsLevel() const { return ldsLevel_; }
    bool primaryEnabled() const { return primaryEnabled_; }
    bool ldsEnabled() const { return ldsEnabled_; }
    const PgStatsMap &pgStats() const { return pgStats_; }
    SimMemory &image() { return image_; }
    std::uint64_t intervalsElapsed() const { return intervals_; }
    /** The registry this core's counters live in (the caller's, or
     *  the private fallback). */
    const obs::MetricRegistry &metrics() const { return *metrics_; }
    /** @} */

  private:
    struct QueuedPrefetch
    {
        PrefetchRequest req;
        Cycle readyAt{};
    };

    struct DelayedOrder
    {
        bool operator()(const QueuedPrefetch &a,
                        const QueuedPrefetch &b) const
        {
            return a.readyAt > b.readyAt;
        }
    };

    /** Ideal-no-pollution side buffer entry. */
    struct SideEntry
    {
        PrefetchSource source = PrefetchSource::None;
        bool pgValid = false;
        PgId pg{};
        Cycle latency{};
        std::uint8_t depth = 0;
    };

    /**
     * Per-source prefetch counters, bound once at construction. The
     * lifecycle identities the conservation tests audit:
     *   generated == queued + drop[QueueFull]
     *   queued == issued + other drops + in_queue_end
     *   issued == filled + in_flight_end
     *   filled == used + consumed_late + evicted_unused
     *             + resident_unused_end + side_resident_end
     * (side_used counts the subset of `used` served from the
     * ideal-no-pollution side buffer.)
     */
    struct PfCounters
    {
        obs::Counter *generated = nullptr;
        obs::Counter *queued = nullptr;
        obs::Counter *issued = nullptr;
        obs::Counter *filled = nullptr;
        obs::Counter *used = nullptr;
        obs::Counter *sideUsed = nullptr;
        obs::Counter *consumedLate = nullptr;
        obs::Counter *evictedUnused = nullptr;
        obs::Counter *usefulLatencySum = nullptr;
        obs::Counter *usefulLatencyCount = nullptr;
        /** Indexed by obs::DropReason. */
        obs::Counter *drop[6] = {};
        /** @{ End-of-run gauges (set in collectStats). */
        obs::Counter *residentUnusedEnd = nullptr;
        obs::Counter *inFlightEnd = nullptr;
        obs::Counter *inQueueEnd = nullptr;
        obs::Counter *sideResidentEnd = nullptr;
        /** @} */
    };

    static unsigned srcIndex(PrefetchSource source)
    {
        return source == PrefetchSource::Lds ? 1u : 0u;
    }

    bool contentDirected() const
    {
        return cfg_.lds == LdsKind::Cdp || cfg_.lds == LdsKind::Ecdp;
    }

    bool sourceEnabled(PrefetchSource source) const
    {
        return source == PrefetchSource::Lds ? ldsEnabled_
                                             : primaryEnabled_;
    }

    /** Register this core's counters under "core<id>." once. */
    void bindCounters();
    /** Count + trace one discarded prefetch request. */
    void dropPrefetch(PrefetchSource source, obs::DropReason reason,
                      Addr block_addr, Cycle now);
    /** Count an MSHR-full demand rejection; traces burst starts. */
    void noteMshrStall(Cycle now);

    /**
     * Count one last-level demand miss: lifetime and interval
     * counters, and (for true cache misses, @p probe_pollution) the
     * FDP pollution-filter probe. Shared by the load-miss, store
     * write-allocate-miss and late-MSHR-merge paths so they cannot
     * drift apart again.
     */
    void recordDemandMiss(Addr block_addr, bool is_lds,
                          bool probe_pollution, Cycle now);
    void l1Fill(Addr addr, bool dirty, Cycle now);
    void onDemandUseOfPrefetch(CacheBlock *block, Addr block_addr,
                               Cycle now);
    void trainOnDemandMiss(const TraceEntry &entry, Cycle now);
    void dbpComplete(const TraceEntry &entry, Cycle ready);
    void enqueuePrefetch(const PrefetchRequest &req, Cycle ready_at,
                         Cycle now);
    void drainScratch(Cycle ready_at, Cycle now);
    void processFills(Cycle now);
    void installFill(Mshr &mshr, Cycle now);
    void scanAndEnqueue(Addr block_addr,
                        const ContentDirectedPrefetcher::ScanContext &ctx,
                        Cycle now);
    void handleVictim(const Cache::Victim &victim,
                      PrefetchSource insert_source, Cycle now);
    void issuePrefetches(Cycle now);
    void endInterval(Cycle now);
    /** Snapshot from explicit (possibly copied) interval counters. */
    static FeedbackSnapshot makeSnapshot(const PrefetcherFeedback &fb,
                                         std::uint64_t aged_misses,
                                         std::uint64_t aged_pollution);
    FeedbackSnapshot snapshot(unsigned which) const;
    void applyPrimaryLevel(AggLevel level);
    void applyLdsLevel(AggLevel level);
    void pabRecord(unsigned which, bool used);

    SystemConfig cfg_;
    unsigned coreId_;
    SimMemory image_;
    DramSystem *dram_;

    /** @{ Observability: the caller's registry/tracer, or a private
     *  fallback registry so the counters always exist. */
    std::unique_ptr<obs::MetricRegistry> ownedMetrics_;
    obs::MetricRegistry *metrics_;
    obs::EventTracer *tracer_;
    obs::PhaseProfiler *phases_;
    obs::ThrottleMonitor primaryMonitor_;
    obs::ThrottleMonitor ldsMonitor_;
    /** @} */

    Cache l1_;
    Cache l2_;
    MshrFile mshrs_;

    StreamPrefetcher stream_;
    GhbPrefetcher ghb_;
    ContentDirectedPrefetcher cdp_;
    DependenceBasedPrefetcher dbp_;
    std::unique_ptr<MarkovPrefetcher> markov_;
    std::unique_ptr<HardwareFilter> hwFilter_;
    PabSelector pab_;

    CoordinatedThrottler coordinated_;
    FdpThrottler fdp_;
    PrefetcherFeedback feedback_[2];
    IntervalCounter demandMissCounter_;
    IntervalCounter pollutionEvents_[2];
    PollutionFilter pollutionFilter_[2];

    AggLevel primaryLevel_;
    AggLevel ldsLevel_;
    bool primaryEnabled_ = true;
    bool ldsEnabled_ = true;

    std::deque<QueuedPrefetch> readyQueue_;
    std::priority_queue<QueuedPrefetch, std::vector<QueuedPrefetch>,
                        DelayedOrder>
        delayedQueue_;

    std::unordered_map<Addr, SideEntry> sideBuffer_;

    Cycle earliestFill_ = Cycle{~std::uint64_t{0}};
    std::uint64_t lastIntervalEvictions_ = 0;
    std::uint64_t intervals_ = 0;

    /** @{ Registered counters (storage lives in *metrics_). */
    obs::Counter *demandLoadsCtr_ = nullptr;
    obs::Counter *demandAccessesCtr_ = nullptr;
    obs::Counter *demandHitsCtr_ = nullptr;
    obs::Counter *mshrMergesCtr_ = nullptr;
    obs::Counter *sideHitsCtr_ = nullptr;
    obs::Counter *idealHitsCtr_ = nullptr;
    obs::Counter *demandMissesCtr_ = nullptr;
    obs::Counter *demandMissesTrueCtr_ = nullptr;
    obs::Counter *demandMissesLateCtr_ = nullptr;
    obs::Counter *ldsMissesCtr_ = nullptr;
    obs::Counter *mshrAllocationsCtr_ = nullptr;
    obs::Counter *mshrReleasesCtr_ = nullptr;
    obs::Counter *mshrInFlightEndCtr_ = nullptr;
    obs::Counter *mshrStallCyclesCtr_ = nullptr;
    PfCounters pf_[2];
    /** @} */

    /** Last cycle a demand was rejected on full MSHRs (dedupes the
     *  MshrFullStall trace events to burst starts). */
    Cycle lastMshrStall_ = Cycle{~std::uint64_t{0}};

    /** Per-interval feedback time series (folded into RunStats). */
    std::vector<IntervalSample> intervalSeries_;

    PgStatsMap pgStats_;

    std::vector<PrefetchRequest> scratch_;
    std::vector<std::uint8_t> blockBuf_;
};

} // namespace ecdp

#endif // ECDP_SIM_MEMORY_SYSTEM_HH
