#include "sim/config.hh"

namespace ecdp
{

const char *
throttleKindName(ThrottleKind kind)
{
    switch (kind) {
      case ThrottleKind::None: return "none";
      case ThrottleKind::Coordinated: return "coordinated";
      case ThrottleKind::Fdp: return "fdp";
      case ThrottleKind::Pab: return "pab";
    }
    return "?";
}

} // namespace ecdp
