#include "sim/config.hh"

#include <algorithm>
#include <bit>
#include <vector>

namespace ecdp
{

const char *
throttleKindName(ThrottleKind kind)
{
    switch (kind) {
      case ThrottleKind::None: return "none";
      case ThrottleKind::Coordinated: return "coordinated";
      case ThrottleKind::Fdp: return "fdp";
      case ThrottleKind::Pab: return "pab";
    }
    return "?";
}

namespace
{

/** 64-bit FNV-1a over explicitly fed fields. */
class FieldHasher
{
  public:
    void u64(std::uint64_t v)
    {
        for (unsigned i = 0; i < 8; ++i) {
            hash_ ^= (v >> (8 * i)) & 0xffu;
            hash_ *= 0x100000001b3ull;
        }
    }

    void f64(double v)
    {
        // +0.0 and -0.0 compare equal but hash differently through
        // bit_cast; normalize so equal configs hash equally.
        if (v == 0.0)
            v = 0.0;
        u64(std::bit_cast<std::uint64_t>(v));
    }

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

} // namespace

std::uint64_t
configHash(const SystemConfig &cfg)
{
    FieldHasher h;

    h.u64(cfg.core.robEntries);
    h.u64(cfg.core.width);
    h.u64(cfg.core.lsqEntries);
    h.u64(cfg.core.issuePerCycle);

    h.u64(cfg.l1Bytes);
    h.u64(cfg.l1Assoc);
    h.u64(cfg.l1BlockBytes);
    h.u64(cfg.l1Latency.raw());

    h.u64(cfg.l2Bytes);
    h.u64(cfg.l2Assoc);
    h.u64(cfg.l2BlockBytes);
    h.u64(cfg.l2Latency.raw());
    h.u64(cfg.l2Mshrs);

    h.u64(cfg.dram.banks);
    h.u64(cfg.dram.bankBusy.raw());
    h.u64(cfg.dram.busTransfer.raw());
    h.u64(cfg.dram.frontLatency.raw());
    h.u64(cfg.dram.requestBufferPerCore);

    h.u64(static_cast<std::uint64_t>(cfg.primary));
    h.u64(static_cast<std::uint64_t>(cfg.lds));
    // The explicit engine stack is hashed order- and duplicate-
    // sensitively: ["stream","cdp"] and ["cdp","stream"] assign
    // different slots (start levels, counter scopes, PAB tie-breaks),
    // so they are different configurations.
    h.u64(cfg.engines.size());
    for (const std::string &name : cfg.engines) {
        h.u64(name.size());
        for (char c : name)
            h.u64(static_cast<unsigned char>(c));
    }
    h.u64(cfg.streamEntries);
    h.u64(cfg.cdpCompareBits);
    h.u64(cfg.prefetchQueueEntries);
    h.u64(cfg.prefetchIssuePerCycle);
    h.u64(cfg.mshrReserveForDemand);
    h.u64(cfg.dramReserveForDemand);
    h.u64(cfg.hwFilter ? 1 : 0);
    h.u64(cfg.grpCoarse ? 1 : 0);

    // The hint table is hashed by content, not address, so the hash
    // identifies the *configuration* and is stable across processes.
    if (!cfg.hints) {
        h.u64(0);
    } else {
        h.u64(1);
        std::vector<std::pair<Addr, PrefetchHint>> entries(
            cfg.hints->begin(), cfg.hints->end());
        std::sort(entries.begin(), entries.end(),
                  [](const auto &a, const auto &b) {
                      return a.first < b.first;
                  });
        h.u64(entries.size());
        for (const auto &[pc, hint] : entries) {
            h.u64(pc.raw());
            h.u64(hint.pos);
            h.u64(hint.neg);
        }
    }

    h.u64(static_cast<std::uint64_t>(cfg.throttle));
    h.u64(static_cast<std::uint64_t>(cfg.primaryStartLevel));
    h.u64(static_cast<std::uint64_t>(cfg.ldsStartLevel));
    h.u64(cfg.intervalEvictions);
    h.f64(cfg.coordThresholds.tCoverage);
    h.f64(cfg.coordThresholds.aLow);
    h.f64(cfg.coordThresholds.aHigh);
    h.f64(cfg.fdpThresholds.aHigh);
    h.f64(cfg.fdpThresholds.aLow);
    h.f64(cfg.fdpThresholds.tLateness);
    h.f64(cfg.fdpThresholds.tPollution);
    h.u64(cfg.fdpThresholds.intervalEvictions);
    h.u64(cfg.fdpThresholds.pollutionFilterEntries);
    h.u64(cfg.pabWindow);
    // The throttle policy (and its seed) is hashed only when it
    // overrides the legacy ThrottleKind dispatch: a default (empty)
    // policy names exactly the configuration the kind already hashed
    // above, and folding the empty string in unconditionally would
    // shift every pre-policy hash and orphan existing result caches.
    if (!cfg.throttlePolicy.empty()) {
        h.u64(cfg.throttlePolicy.size());
        for (char c : cfg.throttlePolicy)
            h.u64(static_cast<unsigned char>(c));
        h.u64(cfg.throttleRlSeed);
    }

    h.u64(cfg.idealLds ? 1 : 0);
    h.u64(cfg.idealNoPollution ? 1 : 0);
    h.u64(cfg.maxCycles.raw());

    // cfg.cycleSkipping is deliberately NOT hashed: it is a pure
    // wall-clock optimisation with bit-identical results (enforced by
    // the SkippingIsExact tests), so both settings denote the same
    // simulated configuration and must share memo/result-cache keys.

    return h.value();
}

std::vector<std::string>
effectiveEngineStack(const SystemConfig &cfg)
{
    if (!cfg.engines.empty())
        return cfg.engines;

    std::vector<std::string> stack(2);
    switch (cfg.primary) {
      case PrimaryKind::None: stack[0] = "none"; break;
      case PrimaryKind::Stream: stack[0] = "stream"; break;
      case PrimaryKind::Ghb: stack[0] = "ghb"; break;
    }
    switch (cfg.lds) {
      case LdsKind::None: stack[1] = "none"; break;
      case LdsKind::Cdp: stack[1] = "cdp"; break;
      case LdsKind::Ecdp: stack[1] = "ecdp"; break;
      case LdsKind::Dbp: stack[1] = "dbp"; break;
      case LdsKind::Markov: stack[1] = "markov"; break;
    }
    return stack;
}

std::string
effectiveThrottlePolicy(const SystemConfig &cfg)
{
    if (!cfg.throttlePolicy.empty())
        return cfg.throttlePolicy;
    switch (cfg.throttle) {
      case ThrottleKind::None: return "static";
      case ThrottleKind::Coordinated: return "coordinated";
      case ThrottleKind::Fdp: return "fdp";
      // PAB flips enable bits instead of levels; the level policy of
      // a PAB run is the do-nothing one.
      case ThrottleKind::Pab: return "static";
    }
    return "static";
}

std::vector<std::string>
engineInstanceNames(const std::vector<std::string> &stack)
{
    std::vector<std::string> names;
    names.reserve(stack.size());
    for (std::size_t i = 0; i < stack.size(); ++i) {
        if (i == 0)
            names.push_back("primary");
        else if (i == 1)
            names.push_back("lds");
        else
            names.push_back(stack[i] + std::to_string(i));
    }
    return names;
}

} // namespace ecdp
