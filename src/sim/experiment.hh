/**
 * @file
 * Experiment plumbing shared by the benchmark harnesses: the standard
 * configurations the paper evaluates, and a context that caches built
 * workloads, profiling runs, and simulation results across benches.
 */

#ifndef ECDP_SIM_EXPERIMENT_HH
#define ECDP_SIM_EXPERIMENT_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "compiler/profiling_compiler.hh"
#include "memsim/thread_annotations.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace ecdp
{

namespace runner
{
class ResultCache;
} // namespace runner

namespace obs
{
class TraceSession;
} // namespace obs

/** The named configurations of the evaluation. */
namespace configs
{

/** No prefetching at all. */
SystemConfig noPrefetch();

/** The Table 5 baseline: aggressive stream prefetcher only. */
SystemConfig baseline();

/** Stream + original (greedy) CDP — the Figure 2 configuration. */
SystemConfig streamCdp();

/** Stream + ECDP (compiler hints), no throttling. */
SystemConfig streamEcdp(const HintTable *hints);

/** Stream + original CDP + coordinated throttling. */
SystemConfig streamCdpThrottled();

/** The full proposal: stream + ECDP + coordinated throttling. */
SystemConfig fullProposal(const HintTable *hints);

/** Stream + DBP (Section 6.3). */
SystemConfig streamDbp();

/** Stream + Markov (Section 6.3). */
SystemConfig streamMarkov();

/** GHB G/DC alone (Section 6.3). */
SystemConfig ghbAlone();

/** GHB + ECDP hybrid (Section 6.3 orthogonality experiment). */
SystemConfig ghbEcdp(const HintTable *hints, bool throttled);

/** Stream + CDP behind the Zhuang-Lee filter (Section 6.4). */
SystemConfig streamCdpHwFilter(bool throttled);

/** Stream + CDP/ECDP under FDP throttling (Section 6.5). */
SystemConfig streamEcdpFdp(const HintTable *hints);

/** Stream + CDP under the PAB selector (Section 7.4). */
SystemConfig streamCdpPab();

/** Stream + GRP-style coarse-grained gating (Section 7.1). */
SystemConfig streamGrpCoarse(const HintTable *hints);

/** Baseline + the Figure 1 ideal-LDS oracle. */
SystemConfig idealLds();

/**
 * The named configuration the CLI tools and the ecdpd wire format
 * share ("baseline", "cdp+throttle", "full", ...). Throws
 * std::runtime_error listing the known names on an unknown one.
 * Configurations that consume compiler hints take them from
 * @p hints; the caller profiles (see nameNeedsHints()).
 */
SystemConfig byName(const std::string &name, const HintTable *hints);

/** True when byName(@p name) wires a hint table into the config. */
bool nameNeedsHints(const std::string &name);

/** Every name byName() accepts, in canonical order. */
const std::vector<std::string> &knownNames();

} // namespace configs

/**
 * Caches workloads, hints and runs for the bench binaries.
 *
 * All accessors build lazily and memoize, so a bench touching five
 * configurations of fifteen benchmarks pays each workload build and
 * profiling pass once.
 *
 * Every accessor is thread-safe: the parallel experiment runner calls
 * them from its worker pool. Memoization is future-based — when two
 * jobs need the same workload build, profiling pass or simulation,
 * the second blocks on the first's in-flight computation instead of
 * duplicating or racing it. Returned references are stable for the
 * context's lifetime.
 *
 * Simulation results are memoized under a collision-free hash of the
 * actual SystemConfig fields (see configHash()), never under the
 * human-readable label alone, and — when the ECDP_RESULT_CACHE
 * environment variable names a directory — persisted there across
 * processes.
 */
class ExperimentContext
{
  public:
    ExperimentContext();
    ~ExperimentContext();

    ExperimentContext(const ExperimentContext &) = delete;
    ExperimentContext &operator=(const ExperimentContext &) = delete;

    const Workload &ref(const std::string &name);
    const Workload &train(const std::string &name);

    /** Hints profiled on the train input (the paper's default). */
    const HintTable &hints(const std::string &name);

    /** Hints profiled on the ref input (Section 6.1.6). */
    const HintTable &hintsFromRef(const std::string &name);

    /**
     * Simulate benchmark @p name (ref input) under @p cfg, memoized
     * by the content hash of @p cfg. @p key is a short human-readable
     * config label ("baseline") used for diagnostics only; reusing a
     * (name, key) label with a *different* configuration throws
     * std::logic_error — the old behaviour silently returned the
     * first config's stale stats.
     */
    const RunStats &run(const std::string &name, const SystemConfig &cfg,
                        const std::string &key);

    /**
     * Override the trace session (tests use a private session; the
     * default is the process-wide ECDP_TRACE session). While a
     * session is attached, run() executes every unique simulation
     * with an event tracer and flushes it as "<name>:<key>", and the
     * persistent result cache is bypassed on load — a cache hit would
     * otherwise silently produce an empty trace — but results are
     * still stored. The in-memory memo still deduplicates, so each
     * unique (workload, config) is traced exactly once per process,
     * and tracing touches only the trace file, never stdout.
     */
    void setTraceSession(obs::TraceSession *session)
    {
        traceSession_ = session;
    }

  private:
    /**
     * Thread-safe memo table. Each key owns one cell; the first
     * caller materializes the value under the cell's once-flag while
     * later callers block on it, so a value is built exactly once
     * even under concurrent lookups. Cell storage is a shared_ptr so
     * returned references survive map rehashing.
     */
    template <typename V>
    class MemoTable
    {
      public:
        template <typename Build>
        const V &get(const std::string &key, Build &&build)
            ECDP_EXCLUDES(mutex_)
        {
            std::shared_ptr<Cell> cell;
            {
                MutexLock lock(mutex_);
                std::shared_ptr<Cell> &slot = cells_[key];
                if (!slot)
                    slot = std::make_shared<Cell>();
                cell = slot;
            }
            // If build() throws, the once-flag stays unset and the
            // next caller retries.
            std::call_once(cell->once,
                           [&] { cell->value.emplace(build()); });
            return *cell->value;
        }

      private:
        struct Cell
        {
            std::once_flag once;
            std::optional<V> value;
        };

        AnnotatedMutex mutex_;
        std::map<std::string, std::shared_ptr<Cell>> cells_
            ECDP_GUARDED_BY(mutex_);
    };

    MemoTable<Workload> refs_;
    MemoTable<Workload> trains_;
    MemoTable<HintTable> hints_;
    MemoTable<HintTable> refHints_;
    MemoTable<RunStats> runs_;

    /** Diagnostic label registry: (name ":" key) -> config hash. */
    AnnotatedMutex labelMutex_;
    std::map<std::string, std::uint64_t> labels_
        ECDP_GUARDED_BY(labelMutex_);

    /** Optional persistent result cache (ECDP_RESULT_CACHE). */
    std::unique_ptr<runner::ResultCache> resultCache_;

    /** Trace sink (ECDP_TRACE), or nullptr when tracing is off. */
    obs::TraceSession *traceSession_ = nullptr;
};

} // namespace ecdp

#endif // ECDP_SIM_EXPERIMENT_HH
