/**
 * @file
 * Experiment plumbing shared by the benchmark harnesses: the standard
 * configurations the paper evaluates, and a context that caches built
 * workloads, profiling runs, and simulation results across benches.
 */

#ifndef ECDP_SIM_EXPERIMENT_HH
#define ECDP_SIM_EXPERIMENT_HH

#include <map>
#include <memory>
#include <string>

#include "compiler/profiling_compiler.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace ecdp
{

/** The named configurations of the evaluation. */
namespace configs
{

/** No prefetching at all. */
SystemConfig noPrefetch();

/** The Table 5 baseline: aggressive stream prefetcher only. */
SystemConfig baseline();

/** Stream + original (greedy) CDP — the Figure 2 configuration. */
SystemConfig streamCdp();

/** Stream + ECDP (compiler hints), no throttling. */
SystemConfig streamEcdp(const HintTable *hints);

/** Stream + original CDP + coordinated throttling. */
SystemConfig streamCdpThrottled();

/** The full proposal: stream + ECDP + coordinated throttling. */
SystemConfig fullProposal(const HintTable *hints);

/** Stream + DBP (Section 6.3). */
SystemConfig streamDbp();

/** Stream + Markov (Section 6.3). */
SystemConfig streamMarkov();

/** GHB G/DC alone (Section 6.3). */
SystemConfig ghbAlone();

/** GHB + ECDP hybrid (Section 6.3 orthogonality experiment). */
SystemConfig ghbEcdp(const HintTable *hints, bool throttled);

/** Stream + CDP behind the Zhuang-Lee filter (Section 6.4). */
SystemConfig streamCdpHwFilter(bool throttled);

/** Stream + CDP/ECDP under FDP throttling (Section 6.5). */
SystemConfig streamEcdpFdp(const HintTable *hints);

/** Stream + CDP under the PAB selector (Section 7.4). */
SystemConfig streamCdpPab();

/** Stream + GRP-style coarse-grained gating (Section 7.1). */
SystemConfig streamGrpCoarse(const HintTable *hints);

/** Baseline + the Figure 1 ideal-LDS oracle. */
SystemConfig idealLds();

} // namespace configs

/**
 * Caches workloads, hints and runs for the bench binaries.
 *
 * All accessors build lazily and memoize, so a bench touching five
 * configurations of fifteen benchmarks pays each workload build and
 * profiling pass once.
 */
class ExperimentContext
{
  public:
    const Workload &ref(const std::string &name);
    const Workload &train(const std::string &name);

    /** Hints profiled on the train input (the paper's default). */
    const HintTable &hints(const std::string &name);

    /** Hints profiled on the ref input (Section 6.1.6). */
    const HintTable &hintsFromRef(const std::string &name);

    /**
     * Simulate benchmark @p name (ref input) under @p cfg, memoized
     * under @p key (a short config label like "baseline").
     */
    const RunStats &run(const std::string &name, const SystemConfig &cfg,
                        const std::string &key);

  private:
    std::map<std::string, Workload> refs_;
    std::map<std::string, Workload> trains_;
    std::map<std::string, HintTable> hints_;
    std::map<std::string, HintTable> refHints_;
    std::map<std::string, RunStats> runs_;
};

} // namespace ecdp

#endif // ECDP_SIM_EXPERIMENT_HH
