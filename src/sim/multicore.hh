/**
 * @file
 * Multi-core simulation driver (Section 6.6 of the paper): private
 * L1/L2 and prefetchers per core, shared DRAM controller and bus,
 * memory request buffer scaled as 32 x core count.
 */

#ifndef ECDP_SIM_MULTICORE_HH
#define ECDP_SIM_MULTICORE_HH

#include <vector>

#include "obs/observability.hh"
#include "sim/config.hh"
#include "trace/trace.hh"

namespace ecdp
{

/** Result of a multiprogrammed run. */
struct MultiCoreResult
{
    /** Per-core stats; IPC measured over each core's first pass. */
    std::vector<RunStats> perCore;
    /** Sum over cores of IPC_shared / IPC_alone. */
    double weightedSpeedup = 0.0;
    /** Harmonic mean of per-core IPC_shared / IPC_alone. */
    double hmeanSpeedup = 0.0;
    /** Total bus transactions over the measured window. */
    std::uint64_t busTransactions = 0;
    /** True when the maxCycles watchdog fired before every core
     *  finished its first pass (also flagged on the stuck cores'
     *  perCore entries). Checked unconditionally, not via assert. */
    bool timedOut = false;
};

/**
 * Run @p workloads together, one per core.
 *
 * Every core runs its trace to completion once; cores that finish
 * early wrap around and keep contending until the slowest core
 * completes its first pass (the standard multiprogrammed-methodology).
 *
 * @param cfg System configuration (per-core resources).
 * @param workloads One workload per core.
 * @param alone_ipc IPC of each workload running alone under the same
 *        configuration (for the speedup metrics).
 */
MultiCoreResult simulateMultiCore(
    const SystemConfig &cfg,
    const std::vector<const Workload *> &workloads,
    const std::vector<double> &alone_ipc);

/**
 * As above, with an observability bundle shared by every core's
 * memory system (counters are prefixed "core<N>.") and the DRAM
 * controller. Observability never changes simulated behaviour.
 */
MultiCoreResult simulateMultiCore(
    const SystemConfig &cfg,
    const std::vector<const Workload *> &workloads,
    const std::vector<double> &alone_ipc, const Observability &obs);

} // namespace ecdp

#endif // ECDP_SIM_MULTICORE_HH
