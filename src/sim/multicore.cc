#include "sim/multicore.hh"

#include <algorithm>
#include <cassert>
#include <memory>

#include "core/core.hh"
#include "dram/dram.hh"
#include "sim/memory_system.hh"
#include "stats/stats.hh"

namespace ecdp
{

MultiCoreResult
simulateMultiCore(const SystemConfig &cfg,
                  const std::vector<const Workload *> &workloads,
                  const std::vector<double> &alone_ipc)
{
    return simulateMultiCore(cfg, workloads, alone_ipc,
                             Observability{});
}

MultiCoreResult
simulateMultiCore(const SystemConfig &cfg,
                  const std::vector<const Workload *> &workloads,
                  const std::vector<double> &alone_ipc,
                  const Observability &obs)
{
    const unsigned n = static_cast<unsigned>(workloads.size());
    assert(n > 0);
    assert(alone_ipc.size() == workloads.size());

    DramSystem dram(cfg.dram, n, cfg.l2BlockBytes);
    dram.attachObservability(obs);
    std::vector<std::unique_ptr<MemorySystem>> memories;
    std::vector<std::unique_ptr<Core>> cores;
    memories.reserve(n);
    cores.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        memories.push_back(std::make_unique<MemorySystem>(
            cfg, i, workloads[i]->image.clone(), &dram, &obs));
        cores.push_back(std::make_unique<Core>(
            workloads[i], memories.back().get(), cfg.core));
        cores.back()->setWrapAround(true);
        // Progress source for the throttle policy's interval IPC
        // deltas (pure observation; rule policies ignore it).
        memories.back()->attachCore(cores.back().get());
    }

    Cycle cycle{};
    auto all_done = [&cores]() {
        for (const auto &core : cores) {
            if (!core->finishedOnce())
                return false;
        }
        return true;
    };
    // Event-driven main loop (see simulate()): the clock jumps to the
    // minimum next-event cycle across every core, memory system and
    // the shared DRAM. Cores interact only through the shared DRAM,
    // whose contention is resolved at request-acceptance time with
    // completion timestamps, so the global minimum is exactly the
    // next cycle anything in the system can do — skipping to it is
    // bit-identical to per-cycle polling.
    while (!all_done() && cycle < cfg.maxCycles) {
        for (unsigned i = 0; i < n; ++i)
            memories[i]->tick(cycle);
        for (unsigned i = 0; i < n; ++i)
            cores[i]->tick(cycle);
        Cycle next = cycle + 1;
        if (cfg.cycleSkipping && !all_done()) {
            // Cheapest bounds first with an early exit once one pins
            // the clock to the next cycle (see simulate()): on busy
            // cycles the remaining bounds cannot lower the minimum.
            Cycle wake = kNoEventCycle;
            for (unsigned i = 0; i < n && wake > cycle + 1; ++i)
                wake = std::min(wake, memories[i]->nextEventCycle(cycle));
            for (unsigned i = 0; i < n && wake > cycle + 1; ++i)
                wake = std::min(wake, cores[i]->nextEventCycle(cycle));
            if (wake > cycle + 1)
                wake = std::min(wake, dram.nextEventCycle(cycle));
            next = std::max(next, std::min(wake, cfg.maxCycles));
        }
        cycle = next;
    }

    MultiCoreResult result;
    // Unconditional watchdog check; an assert here disappears under
    // NDEBUG and a hung mix would silently report garbage speedups.
    result.timedOut = !all_done();
    std::vector<double> ratios;
    for (unsigned i = 0; i < n; ++i) {
        const bool core_timed_out = !cores[i]->finishedOnce();
        RunStats stats;
        stats.workload = workloads[i]->name;
        stats.timedOut = core_timed_out;
        stats.cycles =
            core_timed_out ? cycle : cores[i]->finishCycle();
        stats.instructions = core_timed_out
            ? cores[i]->retired()
            : cores[i]->retiredFirstPass();
        stats.ipc = stats.cycles.raw() == 0
            ? 0.0
            : static_cast<double>(stats.instructions) /
                  static_cast<double>(stats.cycles.raw());
        stats.busTransactions = dram.busTransactions(i);
        stats.bpki = stats.instructions == 0
            ? 0.0
            : 1000.0 * static_cast<double>(stats.busTransactions) /
                  static_cast<double>(stats.instructions);
        memories[i]->collectStats(stats, stats.cycles);
        result.perCore.push_back(std::move(stats));

        double ratio = alone_ipc[i] <= 0.0
            ? 1.0
            : result.perCore.back().ipc / alone_ipc[i];
        ratios.push_back(ratio);
        result.weightedSpeedup += ratio;
    }
    result.hmeanSpeedup = hmean(ratios);
    result.busTransactions = dram.busTransactions();
    return result;
}

} // namespace ecdp
