/**
 * @file
 * Single-core simulation driver.
 */

#ifndef ECDP_SIM_SIMULATOR_HH
#define ECDP_SIM_SIMULATOR_HH

#include "sim/config.hh"
#include "trace/trace.hh"

namespace ecdp
{

/**
 * Runs one Workload on one core under a SystemConfig and returns the
 * run statistics. The workload's image is cloned, so a Workload can be
 * reused across runs and configurations.
 */
RunStats simulate(const SystemConfig &cfg, const Workload &workload);

} // namespace ecdp

#endif // ECDP_SIM_SIMULATOR_HH
