/**
 * @file
 * Single-core simulation driver.
 */

#ifndef ECDP_SIM_SIMULATOR_HH
#define ECDP_SIM_SIMULATOR_HH

#include "obs/observability.hh"
#include "sim/config.hh"
#include "trace/trace.hh"

namespace ecdp
{

/**
 * Runs one Workload on one core under a SystemConfig and returns the
 * run statistics. The workload's image is cloned, so a Workload can be
 * reused across runs and configurations.
 */
RunStats simulate(const SystemConfig &cfg, const Workload &workload);

/**
 * As above, with an observability bundle wired through the memory
 * system and DRAM. Observability never changes simulated behaviour —
 * only what is recorded about it — so both overloads produce
 * identical stats for the same (cfg, workload).
 */
RunStats simulate(const SystemConfig &cfg, const Workload &workload,
                  const Observability &obs);

} // namespace ecdp

#endif // ECDP_SIM_SIMULATOR_HH
