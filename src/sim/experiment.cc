#include "sim/experiment.hh"

namespace ecdp
{
namespace configs
{

SystemConfig
noPrefetch()
{
    SystemConfig cfg;
    cfg.primary = PrimaryKind::None;
    cfg.lds = LdsKind::None;
    return cfg;
}

SystemConfig
baseline()
{
    SystemConfig cfg;
    cfg.primary = PrimaryKind::Stream;
    cfg.lds = LdsKind::None;
    return cfg;
}

SystemConfig
streamCdp()
{
    SystemConfig cfg = baseline();
    cfg.lds = LdsKind::Cdp;
    return cfg;
}

SystemConfig
streamEcdp(const HintTable *hints)
{
    SystemConfig cfg = baseline();
    cfg.lds = LdsKind::Ecdp;
    cfg.hints = hints;
    return cfg;
}

SystemConfig
streamCdpThrottled()
{
    SystemConfig cfg = streamCdp();
    cfg.throttle = ThrottleKind::Coordinated;
    return cfg;
}

SystemConfig
fullProposal(const HintTable *hints)
{
    SystemConfig cfg = streamEcdp(hints);
    cfg.throttle = ThrottleKind::Coordinated;
    return cfg;
}

SystemConfig
streamDbp()
{
    SystemConfig cfg = baseline();
    cfg.lds = LdsKind::Dbp;
    return cfg;
}

SystemConfig
streamMarkov()
{
    SystemConfig cfg = baseline();
    cfg.lds = LdsKind::Markov;
    return cfg;
}

SystemConfig
ghbAlone()
{
    SystemConfig cfg;
    cfg.primary = PrimaryKind::Ghb;
    cfg.lds = LdsKind::None;
    return cfg;
}

SystemConfig
ghbEcdp(const HintTable *hints, bool throttled)
{
    SystemConfig cfg = ghbAlone();
    cfg.lds = LdsKind::Ecdp;
    cfg.hints = hints;
    if (throttled)
        cfg.throttle = ThrottleKind::Coordinated;
    return cfg;
}

SystemConfig
streamCdpHwFilter(bool throttled)
{
    SystemConfig cfg = streamCdp();
    cfg.hwFilter = true;
    if (throttled)
        cfg.throttle = ThrottleKind::Coordinated;
    return cfg;
}

SystemConfig
streamEcdpFdp(const HintTable *hints)
{
    SystemConfig cfg = streamEcdp(hints);
    cfg.throttle = ThrottleKind::Fdp;
    return cfg;
}

SystemConfig
streamCdpPab()
{
    SystemConfig cfg = streamCdp();
    cfg.throttle = ThrottleKind::Pab;
    return cfg;
}

SystemConfig
streamGrpCoarse(const HintTable *hints)
{
    SystemConfig cfg = streamEcdp(hints);
    cfg.grpCoarse = true;
    return cfg;
}

SystemConfig
idealLds()
{
    SystemConfig cfg = baseline();
    cfg.idealLds = true;
    return cfg;
}

} // namespace configs

const Workload &
ExperimentContext::ref(const std::string &name)
{
    auto it = refs_.find(name);
    if (it == refs_.end()) {
        it = refs_.emplace(name, buildWorkload(name, InputSet::Ref))
                 .first;
    }
    return it->second;
}

const Workload &
ExperimentContext::train(const std::string &name)
{
    auto it = trains_.find(name);
    if (it == trains_.end()) {
        it = trains_
                 .emplace(name, buildWorkload(name, InputSet::Train))
                 .first;
    }
    return it->second;
}

const HintTable &
ExperimentContext::hints(const std::string &name)
{
    auto it = hints_.find(name);
    if (it == hints_.end()) {
        it = hints_
                 .emplace(name,
                          ProfilingCompiler::profile(train(name)))
                 .first;
    }
    return it->second;
}

const HintTable &
ExperimentContext::hintsFromRef(const std::string &name)
{
    auto it = refHints_.find(name);
    if (it == refHints_.end()) {
        it = refHints_
                 .emplace(name, ProfilingCompiler::profile(ref(name)))
                 .first;
    }
    return it->second;
}

const RunStats &
ExperimentContext::run(const std::string &name, const SystemConfig &cfg,
                       const std::string &key)
{
    std::string id = name + ":" + key;
    auto it = runs_.find(id);
    if (it == runs_.end())
        it = runs_.emplace(id, simulate(cfg, ref(name))).first;
    return it->second;
}

} // namespace ecdp
