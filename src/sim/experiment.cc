#include "sim/experiment.hh"

#include <cstdio>
#include <stdexcept>

#include "obs/trace_session.hh"
#include "runner/result_cache.hh"

namespace ecdp
{
namespace configs
{

SystemConfig
noPrefetch()
{
    SystemConfig cfg;
    cfg.primary = PrimaryKind::None;
    cfg.lds = LdsKind::None;
    return cfg;
}

SystemConfig
baseline()
{
    SystemConfig cfg;
    cfg.primary = PrimaryKind::Stream;
    cfg.lds = LdsKind::None;
    return cfg;
}

SystemConfig
streamCdp()
{
    SystemConfig cfg = baseline();
    cfg.lds = LdsKind::Cdp;
    return cfg;
}

SystemConfig
streamEcdp(const HintTable *hints)
{
    SystemConfig cfg = baseline();
    cfg.lds = LdsKind::Ecdp;
    cfg.hints = hints;
    return cfg;
}

SystemConfig
streamCdpThrottled()
{
    SystemConfig cfg = streamCdp();
    cfg.throttle = ThrottleKind::Coordinated;
    return cfg;
}

SystemConfig
fullProposal(const HintTable *hints)
{
    SystemConfig cfg = streamEcdp(hints);
    cfg.throttle = ThrottleKind::Coordinated;
    return cfg;
}

SystemConfig
streamDbp()
{
    SystemConfig cfg = baseline();
    cfg.lds = LdsKind::Dbp;
    return cfg;
}

SystemConfig
streamMarkov()
{
    SystemConfig cfg = baseline();
    cfg.lds = LdsKind::Markov;
    return cfg;
}

SystemConfig
ghbAlone()
{
    SystemConfig cfg;
    cfg.primary = PrimaryKind::Ghb;
    cfg.lds = LdsKind::None;
    return cfg;
}

SystemConfig
ghbEcdp(const HintTable *hints, bool throttled)
{
    SystemConfig cfg = ghbAlone();
    cfg.lds = LdsKind::Ecdp;
    cfg.hints = hints;
    if (throttled)
        cfg.throttle = ThrottleKind::Coordinated;
    return cfg;
}

SystemConfig
streamCdpHwFilter(bool throttled)
{
    SystemConfig cfg = streamCdp();
    cfg.hwFilter = true;
    if (throttled)
        cfg.throttle = ThrottleKind::Coordinated;
    return cfg;
}

SystemConfig
streamEcdpFdp(const HintTable *hints)
{
    SystemConfig cfg = streamEcdp(hints);
    cfg.throttle = ThrottleKind::Fdp;
    return cfg;
}

SystemConfig
streamCdpPab()
{
    SystemConfig cfg = streamCdp();
    cfg.throttle = ThrottleKind::Pab;
    return cfg;
}

SystemConfig
streamGrpCoarse(const HintTable *hints)
{
    SystemConfig cfg = streamEcdp(hints);
    cfg.grpCoarse = true;
    return cfg;
}

SystemConfig
idealLds()
{
    SystemConfig cfg = baseline();
    cfg.idealLds = true;
    return cfg;
}

SystemConfig
byName(const std::string &name, const HintTable *hints)
{
    if (name == "noprefetch")
        return noPrefetch();
    if (name == "baseline")
        return baseline();
    if (name == "cdp")
        return streamCdp();
    if (name == "ecdp")
        return streamEcdp(hints);
    if (name == "cdp+throttle")
        return streamCdpThrottled();
    if (name == "full")
        return fullProposal(hints);
    if (name == "dbp")
        return streamDbp();
    if (name == "markov")
        return streamMarkov();
    if (name == "ghb")
        return ghbAlone();
    if (name == "ghb+ecdp")
        return ghbEcdp(hints, true);
    if (name == "cdp+filter")
        return streamCdpHwFilter(true);
    if (name == "ecdp+fdp")
        return streamEcdpFdp(hints);
    if (name == "cdp+pab")
        return streamCdpPab();
    if (name == "grp")
        return streamGrpCoarse(hints);
    if (name == "ideal-lds")
        return idealLds();
    std::string known;
    for (const std::string &k : knownNames())
        known += (known.empty() ? "" : ", ") + k;
    throw std::runtime_error("unknown config '" + name +
                             "' (known: " + known + ")");
}

bool
nameNeedsHints(const std::string &name)
{
    return name == "ecdp" || name == "full" || name == "ghb+ecdp" ||
           name == "ecdp+fdp" || name == "grp";
}

const std::vector<std::string> &
knownNames()
{
    static const std::vector<std::string> names = {
        "noprefetch", "baseline",   "cdp",      "ecdp",
        "cdp+throttle", "full",     "dbp",      "markov",
        "ghb",        "ghb+ecdp",   "cdp+filter", "ecdp+fdp",
        "cdp+pab",    "grp",        "ideal-lds",
    };
    return names;
}

} // namespace configs

ExperimentContext::ExperimentContext()
    : resultCache_(runner::ResultCache::fromEnv()),
      traceSession_(obs::TraceSession::global())
{}

ExperimentContext::~ExperimentContext() = default;

const Workload &
ExperimentContext::ref(const std::string &name)
{
    return refs_.get(
        name, [&] { return buildWorkload(name, InputSet::Ref); });
}

const Workload &
ExperimentContext::train(const std::string &name)
{
    return trains_.get(
        name, [&] { return buildWorkload(name, InputSet::Train); });
}

const HintTable &
ExperimentContext::hints(const std::string &name)
{
    return hints_.get(name, [&] {
        return ProfilingCompiler::profile(train(name));
    });
}

const HintTable &
ExperimentContext::hintsFromRef(const std::string &name)
{
    return refHints_.get(name, [&] {
        return ProfilingCompiler::profile(ref(name));
    });
}

const RunStats &
ExperimentContext::run(const std::string &name, const SystemConfig &cfg,
                       const std::string &key)
{
    const std::uint64_t hash = configHash(cfg);

    // Labels are diagnostics, the hash is the identity: "a:b"+"c" and
    // "a"+"b:c" may collide as labels but cannot share a memo entry,
    // and a label reused with a different config is a harness bug
    // that used to silently return the first config's stats.
    {
        MutexLock lock(labelMutex_);
        auto [it, inserted] = labels_.emplace(name + ":" + key, hash);
        if (!inserted && it->second != hash) {
            throw std::logic_error(
                "ExperimentContext::run: label \"" + name + ":" +
                key + "\" reused with a different SystemConfig");
        }
    }

    char memo_key[16 + 1];
    std::snprintf(memo_key, sizeof(memo_key), "%016llx",
                  static_cast<unsigned long long>(hash));
    return runs_.get(name + "#" + memo_key, [&]() -> RunStats {
        // A persistent-cache hit would skip the simulation and leave
        // a hole in the trace, so while tracing is on every unique
        // run executes (and its result is still stored below).
        if (resultCache_ && !traceSession_) {
            if (std::optional<RunStats> cached =
                    resultCache_->load(name, hash)) {
                return std::move(*cached);
            }
        }
        RunStats stats;
        if (traceSession_) {
            obs::EventTracer tracer(
                obs::EventTracer::capacityFromEnv());
            obs::MetricRegistry metrics;
            Observability bundle{&metrics, &tracer};
            stats = simulate(cfg, ref(name), bundle);
            traceSession_->flush(name + ":" + key, tracer);
        } else {
            stats = simulate(cfg, ref(name));
        }
        if (resultCache_)
            resultCache_->store(name, hash, stats);
        return stats;
    });
}

} // namespace ecdp
