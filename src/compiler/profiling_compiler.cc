#include "compiler/profiling_compiler.hh"

#include <deque>
#include <vector>

#include "cache/cache.hh"
#include "prefetch/cdp.hh"
#include "sim/simulator.hh"

namespace ecdp
{

HintTable
ProfilingCompiler::profileWithInformingLoads(const Workload &train,
                                             SystemConfig target,
                                             ProfileOptions options)
{
    // Full timing run with the unfiltered prefetcher; the memory
    // system's per-PG bookkeeping plays the role of the informing
    // loads, reporting for every load whether it consumed a
    // prefetched block.
    target.lds = LdsKind::Cdp;
    target.hints = nullptr;
    target.hwFilter = false;
    target.grpCoarse = false;
    target.throttle = ThrottleKind::None;
    target.idealLds = false;
    target.idealNoPollution = false;
    RunStats stats = simulate(target, train);
    return fromPgStats(stats.pgStats, options);
}

HintTable
ProfilingCompiler::profile(const Workload &train, SystemConfig target,
                           ProfileOptions options)
{
    return fromPgStats(profileStats(train, target), options);
}

PgStatsMap
ProfilingCompiler::profileStats(const Workload &train,
                                SystemConfig target)
{
    // The paper's first profiling implementation (Section 3): a
    // *functional* simulation of the target's cache hierarchy and
    // content-directed prefetcher — no timing — that attributes every
    // (recursively generated) prefetch to its root pointer group and
    // tracks whether the prefetched block is demanded before
    // eviction.
    Cache l2("L2-profile", target.l2Bytes, target.l2Assoc,
             target.l2BlockBytes);
    ContentDirectedPrefetcher cdp(target.cdpCompareBits,
                                  target.l2BlockBytes);
    cdp.setAggressiveness(AggLevel::Aggressive);

    SimMemory image = train.image.clone();
    PgStatsMap stats;
    std::vector<std::uint8_t> buf(target.l2BlockBytes, 0);
    std::vector<PrefetchRequest> scratch;
    std::deque<PrefetchRequest> frontier;

    // Bound the per-miss recursive expansion, mirroring the finite
    // prefetch request queue of the real machine.
    constexpr unsigned kMaxPerMiss = 64;

    auto scan_block = [&](Addr block_addr,
                          const ContentDirectedPrefetcher::ScanContext
                              &ctx) {
        image.readBlock(block_addr, buf.data(), buf.size());
        scratch.clear();
        cdp.scan(block_addr, buf.data(), ctx, scratch);
        for (const PrefetchRequest &req : scratch)
            frontier.push_back(req);
    };

    for (const TraceEntry &entry : train.trace) {
        if (entry.kind == AccessKind::Store)
            image.write(entry.vaddr, entry.size, entry.storeValue);

        const Addr block_addr = l2.blockAddr(entry.vaddr);
        if (CacheBlock *block = l2.lookup(entry.vaddr)) {
            if (block->pgValid) {
                ++stats[block->pg].used;
                block->pgValid = false;
                block->prefetchOwner = kNoPrefetchOwner;
            }
            continue;
        }

        l2.insert(block_addr);
        if (entry.kind != AccessKind::Load)
            continue;

        ContentDirectedPrefetcher::ScanContext ctx;
        ctx.demandFill = true;
        ctx.loadPc = entry.pc;
        ctx.accessByteOffset = l2.blockOffset(entry.vaddr);
        ctx.fillDepth = 0;
        frontier.clear();
        scan_block(block_addr, ctx);

        unsigned expanded = 0;
        while (!frontier.empty() && expanded < kMaxPerMiss) {
            PrefetchRequest req = frontier.front();
            frontier.pop_front();
            if (l2.peek(req.blockAddr))
                continue;
            ++expanded;
            if (req.pgValid)
                ++stats[req.pg].issued;
            l2.insert(req.blockAddr, 1); // LDS slot of the legacy stack
            CacheBlock *block = l2.lookup(req.blockAddr, false);
            block->pgValid = req.pgValid;
            block->pg = req.pg;
            block->cdpDepth = req.depth;
            if (cdp.shouldScan(req.depth)) {
                ContentDirectedPrefetcher::ScanContext rctx;
                rctx.demandFill = false;
                rctx.fillDepth = req.depth;
                rctx.pgValid = req.pgValid;
                rctx.pgRoot = req.pg;
                scan_block(req.blockAddr, rctx);
            }
        }
    }
    return stats;
}

HintTable
ProfilingCompiler::fromPgStats(const PgStatsMap &stats,
                               ProfileOptions options)
{
    HintTable hints;
    for (const auto &[pg, pg_stats] : stats) {
        if (pg_stats.issued < options.minIssued)
            continue;
        if (pg_stats.usefulness() > options.usefulnessThreshold)
            hints.entry(pg.loadPc).set(pg.slot);
    }
    return hints;
}

void
ProfilingCompiler::usefulnessHistogram(const PgStatsMap &stats,
                                       std::uint64_t quartiles[4],
                                       std::uint64_t min_issued)
{
    for (unsigned i = 0; i < 4; ++i)
        quartiles[i] = 0;
    for (const auto &[pg, pg_stats] : stats) {
        if (pg_stats.issued < min_issued)
            continue;
        double u = pg_stats.usefulness();
        unsigned bin = u < 0.25 ? 0 : u < 0.5 ? 1 : u < 0.75 ? 2 : 3;
        ++quartiles[bin];
    }
}

} // namespace ecdp
