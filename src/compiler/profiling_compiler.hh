/**
 * @file
 * The profiling "compiler" of Section 3.
 *
 * The paper's first profiling implementation simulates the cache
 * hierarchy and prefetcher of the target machine on a training input,
 * gathers per-pointer-group usefulness, and marks the beneficial PGs
 * (majority of prefetches useful) in per-load hint bit vectors. This
 * module does exactly that: it runs the training workload through the
 * simulator with the original (unfiltered) CDP, then classifies every
 * observed PG(L, X) and emits the HintTable the ECDP hardware consults
 * at run time.
 */

#ifndef ECDP_COMPILER_PROFILING_COMPILER_HH
#define ECDP_COMPILER_PROFILING_COMPILER_HH

#include "prefetch/hint_table.hh"
#include "sim/config.hh"
#include "trace/trace.hh"

namespace ecdp
{

/**
 * Compiler-side PG classification.
 */
/** Profiling classification options. */
struct ProfileOptions
{
    /** A PG is beneficial when more than this fraction of its
     *  prefetches (including recursive ones) were useful. */
    double usefulnessThreshold = 0.5;
    /** PGs with fewer issued prefetches than this are noise and
     *  stay disabled. */
    std::uint64_t minIssued = 4;
};

class ProfilingCompiler
{
  public:
    using Options = ProfileOptions;

    /**
     * Run the profiling pass on @p train and emit hints.
     *
     * @param train The training-input workload.
     * @param target Target machine configuration; its prefetcher
     *        selection is overridden to stream + original CDP for the
     *        profiling run (profiling needs the unfiltered PG stream).
     */
    static HintTable profile(const Workload &train,
                             SystemConfig target = {},
                             ProfileOptions options = ProfileOptions());

    /** The raw PG statistics of the functional profiling pass
     *  (exposed for the Figure 4 / Figure 10 benches and tests). */
    static PgStatsMap profileStats(const Workload &train,
                                   SystemConfig target = {});

    /**
     * The paper's *second* profiling implementation (Section 3):
     * hardware-assisted profiling with informing load operations
     * (Horowitz et al.). The training run executes on the full
     * timing simulator with the original CDP; the informing-load
     * support tells the run-time which loads hit prefetched blocks,
     * from which the compiler accumulates PG usefulness. Slower than
     * the functional pass but needs no cache-hierarchy model in the
     * compiler.
     */
    static HintTable profileWithInformingLoads(
        const Workload &train, SystemConfig target = {},
        ProfileOptions options = ProfileOptions());

    /** Classify an already-collected PG statistics map. */
    static HintTable fromPgStats(const PgStatsMap &stats,
                                 ProfileOptions options = ProfileOptions());

    /**
     * Histogram of PG usefulness in quartiles (0-25, 25-50, 50-75,
     * 75-100 percent useful) — the Figure 4 / Figure 10 data.
     */
    static void usefulnessHistogram(const PgStatsMap &stats,
                                    std::uint64_t quartiles[4],
                                    std::uint64_t min_issued = 1);
};

} // namespace ecdp

#endif // ECDP_COMPILER_PROFILING_COMPILER_HH
