/**
 * @file
 * Cycle-level event tracer — a bounded ring buffer of typed
 * simulator events.
 *
 * The simulator records events through a nullable `EventTracer *`:
 * untraced runs pass nullptr and pay a single pointer test per
 * would-be event (the "disabled" path adds no events and allocates
 * nothing). Traced runs append fixed-size records into a
 * pre-allocated ring; on wraparound the oldest events are overwritten
 * so the newest window always survives, and `overwritten()` reports
 * how many were lost.
 *
 * Event taxonomy (see DESIGN.md §8):
 *  - DemandMiss          last-level demand miss (true miss or late
 *                        MSHR merge; `a` = 1 for an LDS access)
 *  - PrefetchIssue       prefetch accepted by DRAM, per source
 *  - PrefetchFill        prefetch fill installed (`a` = 1 when a
 *                        demand was already waiting — a late fill)
 *  - PrefetchDrop        prefetch request discarded, per source,
 *                        with a DropReason in `a`
 *  - ThrottleTransition  aggressiveness level / enable change of one
 *                        prefetcher (`a` = from, `b` = to,
 *                        levels 0..3; 255 encodes "disabled")
 *  - IntervalSample      feedback-interval boundary with the aged
 *                        accuracy (`x`) and coverage (`y`) sample of
 *                        one prefetcher
 *  - DramBankConflict    DRAM request arrived while its bank was
 *                        still busy (`addr` = block, `a` = bank,
 *                        `arg` = wait cycles)
 *  - MshrFullStall       demand access rejected because every MSHR
 *                        was in flight (recorded at the start of each
 *                        contiguous stall burst)
 *
 * Events are raw data; the Chrome trace_event JSON mapping lives in
 * trace_session.(hh|cc).
 */

#ifndef ECDP_OBS_EVENT_TRACER_HH
#define ECDP_OBS_EVENT_TRACER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "memsim/types.hh"

namespace ecdp
{
namespace obs
{

/** Typed simulator events (see file comment for the taxonomy). */
enum class EventType : std::uint8_t
{
    DemandMiss,
    PrefetchIssue,
    PrefetchFill,
    PrefetchDrop,
    ThrottleTransition,
    IntervalSample,
    DramBankConflict,
    MshrFullStall,
};

const char *eventTypeName(EventType type);

/** Why a prefetch request never reached DRAM. */
enum class DropReason : std::uint8_t
{
    /** Prefetch request queue overflow at enqueue. */
    QueueFull,
    /** Source prefetcher disabled (PAB or throttle) at issue time. */
    SourceDisabled,
    /** Target block already cached in the L2. */
    AlreadyCached,
    /** Target block already in flight in an MSHR. */
    AlreadyInFlight,
    /** Target block already held by the ideal-no-pollution buffer. */
    SideBuffered,
    /** Rejected by the Zhuang-Lee hardware filter. */
    HwFilter,
};

const char *dropReasonName(DropReason reason);

/** Level encoding for ThrottleTransition events. */
inline constexpr std::uint8_t kLevelDisabled = 255;

/**
 * One fixed-size trace record. Field meaning depends on `type`; see
 * the taxonomy above. `source` is 0 = primary, 1 = LDS, 255 = n/a.
 */
struct TraceEvent
{
    EventType type = EventType::DemandMiss;
    std::uint8_t source = 255;
    /** Small per-type operands (drop reason, from-level, ...). */
    std::uint8_t a = 0;
    std::uint8_t b = 0;
    /** Core the event belongs to. */
    std::uint16_t core = 0;
    Cycle cycle{};
    /** Block address for memory events, otherwise 0. */
    std::uint64_t addr = 0;
    /** Wide per-type operand (bank-conflict wait cycles, ...). */
    std::uint64_t arg = 0;
    /** Floating-point operands (interval accuracy / coverage). */
    double x = 0.0;
    double y = 0.0;
};

/**
 * Bounded ring buffer of TraceEvents. Not thread-safe: each
 * simulation run owns its tracer (runs are the unit of parallelism).
 *
 * Two lanes share the capacity budget: high-frequency per-access
 * events (misses, issues, fills, drops, conflicts, stalls) go into
 * the main ring, while the low-frequency control-plane events
 * (ThrottleTransition, IntervalSample) get a ring of their own.
 * A long run floods the main ring with per-prefetch events, and
 * without the second lane it would evict the handful of throttle
 * transitions that usually happen early — the events a bandwidth
 * study most wants to keep.
 */
class EventTracer
{
  public:
    /** Default main-ring capacity (events). */
    static constexpr std::size_t kDefaultCapacity = 1u << 18;

    /** Control-lane capacity: plenty for every feedback interval of
     *  the longest runs while bounding worst-case memory. */
    static constexpr std::size_t kRareCapacity = 1u << 14;

    /** kDefaultCapacity, overridable via ECDP_TRACE_CAPACITY. */
    static std::size_t capacityFromEnv();

    explicit EventTracer(std::size_t capacity = kDefaultCapacity);

    void record(const TraceEvent &event)
    {
        lane(event.type).record(event);
    }

    /** Events currently held across both lanes. */
    std::size_t size() const { return main_.size + rare_.size; }

    /** Main-ring capacity (the control lane is kRareCapacity). */
    std::size_t capacity() const { return main_.buffer.size(); }

    /** Events lost to wraparound (oldest-first, both lanes). */
    std::uint64_t overwritten() const
    {
        return main_.overwritten + rare_.overwritten;
    }

    /** The retained events, oldest first. */
    std::vector<TraceEvent> snapshot() const;

    /**
     * Visit retained events without copying, merged oldest-first:
     * cycles are nondecreasing in record order within each lane, so
     * a two-way merge restores global time order.
     */
    template <typename Fn>
    void forEach(Fn &&fn) const
    {
        std::size_t m = 0, r = 0;
        while (m < main_.size || r < rare_.size) {
            if (r >= rare_.size ||
                (m < main_.size &&
                 main_.at(m).cycle <= rare_.at(r).cycle)) {
                fn(main_.at(m++));
            } else {
                fn(rare_.at(r++));
            }
        }
    }

  private:
    struct Lane
    {
        explicit Lane(std::size_t capacity)
            : buffer(capacity ? capacity : 1)
        {}

        void record(const TraceEvent &event)
        {
            if (size < buffer.size()) {
                buffer[(start + size) % buffer.size()] = event;
                ++size;
            } else {
                buffer[start] = event;
                start = (start + 1) % buffer.size();
                ++overwritten;
            }
        }

        const TraceEvent &at(std::size_t i) const
        {
            return buffer[(start + i) % buffer.size()];
        }

        std::vector<TraceEvent> buffer;
        std::size_t start = 0;
        std::size_t size = 0;
        std::uint64_t overwritten = 0;
    };

    Lane &lane(EventType type)
    {
        return (type == EventType::ThrottleTransition ||
                type == EventType::IntervalSample)
                   ? rare_
                   : main_;
    }

    Lane main_;
    Lane rare_;
};

} // namespace obs
} // namespace ecdp

#endif // ECDP_OBS_EVENT_TRACER_HH
