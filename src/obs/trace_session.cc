#include "obs/trace_session.hh"

#include <cstdlib>
#include <memory>

#include "stats/json.hh"

namespace ecdp
{
namespace obs
{

namespace
{

const char *
sourceName(std::uint8_t source)
{
    switch (source) {
      case 0:
        return "primary";
      case 1:
        return "lds";
      default:
        return "none";
    }
}

void
writeLevel(std::ostream &os, std::uint8_t level)
{
    if (level == kLevelDisabled)
        os << "\"off\"";
    else
        os << static_cast<unsigned>(level);
}

} // namespace

void
writeChromeTraceEvent(std::ostream &os, unsigned pid,
                      const TraceEvent &event)
{
    const char *pf = sourceName(event.source);
    switch (event.type) {
      case EventType::ThrottleTransition:
        // The instant event carries the transition; a counter event
        // alongside it draws the level timeline in trace viewers.
        os << "{\"name\":\"throttle-transition\",\"ph\":\"i\",\"s\":"
              "\"t\",\"ts\":"
           << event.cycle.raw() << ",\"pid\":" << pid
           << ",\"tid\":" << event.core << ",\"args\":{\"pf\":\""
           << pf << "\",\"from\":";
        writeLevel(os, event.a);
        os << ",\"to\":";
        writeLevel(os, event.b);
        os << "}},\n";
        os << "{\"name\":\"agg-level." << pf
           << "\",\"ph\":\"C\",\"ts\":" << event.cycle.raw()
           << ",\"pid\":" << pid << ",\"tid\":" << event.core
           << ",\"args\":{\"level\":"
           << (event.b == kLevelDisabled
                   ? 0u
                   : static_cast<unsigned>(event.b))
           << "}}";
        return;
      case EventType::IntervalSample:
        os << "{\"name\":\"feedback." << pf
           << "\",\"ph\":\"C\",\"ts\":" << event.cycle.raw()
           << ",\"pid\":" << pid << ",\"tid\":" << event.core
           << ",\"args\":{\"accuracy\":" << event.x
           << ",\"coverage\":" << event.y << "}}";
        return;
      case EventType::PrefetchDrop:
        os << "{\"name\":\"prefetch-drop\",\"ph\":\"i\",\"s\":\"t\","
              "\"ts\":"
           << event.cycle.raw() << ",\"pid\":" << pid
           << ",\"tid\":" << event.core << ",\"args\":{\"pf\":\""
           << pf << "\",\"reason\":\""
           << dropReasonName(static_cast<DropReason>(event.a))
           << "\",\"addr\":" << event.addr << "}}";
        return;
      default:
        break;
    }
    os << "{\"name\":\"" << eventTypeName(event.type)
       << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << event.cycle.raw()
       << ",\"pid\":" << pid << ",\"tid\":" << event.core
       << ",\"args\":{";
    bool first = true;
    auto field = [&os, &first](const char *key) -> std::ostream & {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << key << "\":";
        return os;
    };
    if (event.source != 255)
        field("pf") << "\"" << pf << "\"";
    if (event.addr != 0)
        field("addr") << event.addr;
    switch (event.type) {
      case EventType::DemandMiss:
        field("lds") << (event.a ? "true" : "false");
        break;
      case EventType::PrefetchFill:
        field("late") << (event.a ? "true" : "false");
        break;
      case EventType::DramBankConflict:
        field("bank") << static_cast<unsigned>(event.a);
        field("waitCycles") << event.arg;
        break;
      case EventType::MshrFullStall:
        field("inFlight") << event.arg;
        break;
      default:
        break;
    }
    os << "}}";
}

TraceSession *
TraceSession::global()
{
    // Env is read once: the session (and its pid numbering) must be
    // stable for the whole process. A null unique_ptr means tracing
    // is off.
    static std::unique_ptr<TraceSession> session = [] {
        const char *path = std::getenv("ECDP_TRACE");
        if (!path || !*path)
            return std::unique_ptr<TraceSession>();
        return std::make_unique<TraceSession>(path);
    }();
    return session.get();
}

TraceSession::TraceSession(std::string path) : path_(std::move(path))
{
    os_.open(path_);
    ok_ = static_cast<bool>(os_);
    if (ok_)
        os_ << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
}

TraceSession::~TraceSession()
{
    close();
}

void
TraceSession::comma()
{
    if (any_)
        os_ << ",\n";
    any_ = true;
}

unsigned
TraceSession::flush(const std::string &label,
                    const EventTracer &tracer)
{
    MutexLock lock(mutex_);
    const unsigned pid = nextPid_++;
    if (!ok_ || closed_)
        return pid;
    comma();
    os_ << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"args\":{\"name\":\"" << jsonEscape(label) << "\"}}";
    if (tracer.overwritten() > 0) {
        comma();
        os_ << "{\"name\":\"events-overwritten\",\"ph\":\"i\",\"s\":"
               "\"g\",\"ts\":0,\"pid\":"
            << pid << ",\"tid\":0,\"args\":{\"count\":"
            << tracer.overwritten() << "}}";
    }
    tracer.forEach([this, pid](const TraceEvent &event) {
        mutex_.assertHeld(); // flush() holds the lock around forEach
        comma();
        writeChromeTraceEvent(os_, pid, event);
    });
    return pid;
}

void
TraceSession::close()
{
    MutexLock lock(mutex_);
    if (closed_)
        return;
    closed_ = true;
    if (ok_) {
        os_ << "\n]}\n";
        os_.close();
    }
}

} // namespace obs
} // namespace ecdp
