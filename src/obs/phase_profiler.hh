/**
 * @file
 * Wall-clock attribution of a simulation run to coarse phases (core
 * advance, cache probe, CDP scan, DRAM, scheduler, stats), so a perf
 * regression names the subsystem that caused it instead of just
 * moving a total.
 *
 * The profiler is a flat phase switch, not a hierarchy: at any instant
 * exactly one phase is current, switchTo() reads the clock once and
 * charges the elapsed interval to the phase being left. Phases are
 * therefore exclusive and exhaustive *by construction* — the sum over
 * all phases equals the wall time between start() and stop() exactly,
 * which is what makes the conservation test in test_hotpath.cc a real
 * invariant rather than a tolerance fudge.
 *
 * Attribution is opt-in per run (Observability::phases). A null
 * profiler costs one pointer test per instrumentation point; the
 * timed benchmark reps run unattached and a separate attribution rep
 * pays the clock reads.
 */

#ifndef ECDP_OBS_PHASE_PROFILER_HH
#define ECDP_OBS_PHASE_PROFILER_HH

#include <array>
#include <chrono>
#include <cstdint>

namespace ecdp::obs
{

class PhaseProfiler
{
  public:
    enum class Phase : std::uint8_t
    {
        /** Core::tick — retire, issue, dispatch. */
        CoreTick,
        /** MemorySystem::tick bookkeeping: fills, prefetch issue. */
        MemTick,
        /** Demand-path cache access: MemorySystem::load / store. */
        CacheProbe,
        /** CDP pointer-slot scan of filled blocks (+ block read). */
        CdpScan,
        /** DRAM model: read / writeback acceptance. */
        Dram,
        /** nextEventCycle bounds in the event-driven loop. */
        Scheduler,
        /** End-of-run stats collection and serialization. */
        Stats,
        /** Between start() and the first switch, and anything not
         *  otherwise attributed (construction, image clone, ...). */
        Other,
    };
    static constexpr unsigned kPhaseCount = 8;

    /** Begin attribution: zero all buckets, current phase = Other. */
    void start()
    {
        ns_.fill(0);
        current_ = Phase::Other;
        running_ = true;
        mark_ = Clock::now();
    }

    /** Close out the current phase and stop accumulating. */
    void stop()
    {
        if (!running_)
            return;
        account(Clock::now());
        running_ = false;
    }

    /**
     * Enter @p next, charging time since the last switch to the phase
     * being left. Returns the previous phase so nested scopes can
     * restore it (see Scoped).
     */
    Phase switchTo(Phase next)
    {
        const Phase prev = current_;
        if (running_)
            account(Clock::now());
        current_ = next;
        return prev;
    }

    /** RAII phase scope, null-tolerant so call sites need no branch:
     *  a null profiler makes construction and destruction no-ops. */
    class Scoped
    {
      public:
        Scoped(PhaseProfiler *profiler, Phase phase)
            : profiler_(profiler)
        {
            if (profiler_)
                prev_ = profiler_->switchTo(phase);
        }
        ~Scoped()
        {
            if (profiler_)
                profiler_->switchTo(prev_);
        }
        Scoped(const Scoped &) = delete;
        Scoped &operator=(const Scoped &) = delete;

      private:
        PhaseProfiler *profiler_;
        Phase prev_ = Phase::Other;
    };

    double seconds(Phase phase) const
    {
        return static_cast<double>(ns_[index(phase)]) * 1e-9;
    }

    /** Sum over all phases == wall time from start() to stop(). */
    double totalSeconds() const
    {
        std::uint64_t total = 0;
        for (std::uint64_t ns : ns_)
            total += ns;
        return static_cast<double>(total) * 1e-9;
    }

    static const char *name(Phase phase)
    {
        switch (phase) {
        case Phase::CoreTick:
            return "coreTick";
        case Phase::MemTick:
            return "memTick";
        case Phase::CacheProbe:
            return "cacheProbe";
        case Phase::CdpScan:
            return "cdpScan";
        case Phase::Dram:
            return "dram";
        case Phase::Scheduler:
            return "scheduler";
        case Phase::Stats:
            return "stats";
        case Phase::Other:
            return "other";
        }
        return "?";
    }

  private:
    using Clock = std::chrono::steady_clock;

    static constexpr unsigned index(Phase phase)
    {
        return static_cast<unsigned>(phase);
    }

    void account(Clock::time_point now)
    {
        ns_[index(current_)] += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                now - mark_)
                .count());
        mark_ = now;
    }

    std::array<std::uint64_t, kPhaseCount> ns_{};
    Clock::time_point mark_{};
    Phase current_ = Phase::Other;
    bool running_ = false;
};

} // namespace ecdp::obs

#endif // ECDP_OBS_PHASE_PROFILER_HH
