/**
 * @file
 * Hierarchical metric registry — the named-counter half of the
 * observability layer (the other half is the event tracer).
 *
 * Components register counters once at construction under dotted
 * paths ("core0.pf.lds.issued", "dram.bank_conflicts") and then hold
 * stable `Counter &` references, so the hot-path cost of a metric is
 * exactly one inlined 64-bit increment — the same as the ad-hoc
 * `std::uint64_t` struct fields the registry replaces. Nothing is
 * locked and nothing allocates after registration; a simulation run
 * owns (or is handed) one registry, and readers walk it only after
 * the run finished.
 *
 * The dotted paths form the hierarchy: `sorted()` returns entries in
 * lexicographic path order, so "core0.l2.*" metrics group together
 * and tooling can reconstruct the tree without a tree structure here.
 */

#ifndef ECDP_OBS_METRICS_HH
#define ECDP_OBS_METRICS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ecdp
{
namespace obs
{

/**
 * One monotonic counter (or end-of-run gauge via set()). Registered
 * components increment it inline; the registry owns the storage.
 */
class Counter
{
  public:
    void inc() { ++value_; }
    void add(std::uint64_t n) { value_ += n; }

    /** Overwrite the value — for end-of-run gauges (queue depths,
     *  resident-block census) folded in at collection time. */
    void set(std::uint64_t v) { value_ = v; }

    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Registry of counters keyed by dotted path.
 *
 * References returned by counter() are stable for the registry's
 * lifetime (std::map nodes never move).
 */
class MetricRegistry
{
  public:
    /** The counter at @p path, created zero-valued on first use. */
    Counter &counter(const std::string &path);

    /** The counter at @p path, or nullptr when never registered. */
    const Counter *find(const std::string &path) const;

    /**
     * Value of the counter at @p path. Unlike find(), a missing path
     * throws std::out_of_range — conservation-law tests use this so a
     * typo fails loudly instead of comparing against a silent zero.
     */
    std::uint64_t value(const std::string &path) const;

    /** All (path, value) pairs in lexicographic path order. */
    std::vector<std::pair<std::string, std::uint64_t>> sorted() const;

    /** Paths that start with @p prefix, in lexicographic order. */
    std::vector<std::pair<std::string, std::uint64_t>>
    sortedWithPrefix(const std::string &prefix) const;

    std::size_t size() const { return counters_.size(); }

  private:
    std::map<std::string, Counter> counters_;
};

/**
 * Convenience view that prefixes every path — lets a component
 * register its metrics relative to its own position in the hierarchy
 * ("l2.demand_hits") while a parent decides the absolute prefix
 * ("core3.").
 */
class MetricScope
{
  public:
    MetricScope(MetricRegistry &registry, std::string prefix)
        : registry_(&registry), prefix_(std::move(prefix))
    {}

    Counter &counter(const std::string &path) const
    {
        return registry_->counter(prefix_ + path);
    }

    MetricScope scope(const std::string &sub) const
    {
        return MetricScope(*registry_, prefix_ + sub);
    }

    const std::string &prefix() const { return prefix_; }
    MetricRegistry &registry() const { return *registry_; }

  private:
    MetricRegistry *registry_;
    std::string prefix_;
};

} // namespace obs
} // namespace ecdp

#endif // ECDP_OBS_METRICS_HH
