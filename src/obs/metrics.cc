#include "obs/metrics.hh"

#include <stdexcept>

namespace ecdp
{
namespace obs
{

Counter &
MetricRegistry::counter(const std::string &path)
{
    return counters_[path];
}

const Counter *
MetricRegistry::find(const std::string &path) const
{
    auto it = counters_.find(path);
    return it == counters_.end() ? nullptr : &it->second;
}

std::uint64_t
MetricRegistry::value(const std::string &path) const
{
    const Counter *c = find(path);
    if (!c) {
        throw std::out_of_range("MetricRegistry: no counter \"" +
                                path + "\"");
    }
    return c->value();
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricRegistry::sorted() const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto &[path, counter] : counters_)
        out.emplace_back(path, counter.value());
    return out;
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricRegistry::sortedWithPrefix(const std::string &prefix) const
{
    std::vector<std::pair<std::string, std::uint64_t>> out;
    for (auto it = counters_.lower_bound(prefix);
         it != counters_.end() &&
         it->first.compare(0, prefix.size(), prefix) == 0;
         ++it) {
        out.emplace_back(it->first, it->second.value());
    }
    return out;
}

} // namespace obs
} // namespace ecdp
