#include "obs/throttle_monitor.hh"

namespace ecdp
{
namespace obs
{

ThrottleMonitor::ThrottleMonitor(EventTracer *tracer, unsigned core,
                                 unsigned which, AggLevel start)
    : tracer_(tracer),
      core_(static_cast<std::uint16_t>(core)),
      which_(static_cast<std::uint8_t>(which)),
      last_(encode(start, true))
{}

bool
ThrottleMonitor::observe(Cycle now, AggLevel level, bool enabled)
{
    const std::uint8_t encoded = encode(level, enabled);
    if (encoded == last_)
        return false;
    if (tracer_) {
        TraceEvent event;
        event.type = EventType::ThrottleTransition;
        event.source = which_;
        event.a = last_;
        event.b = encoded;
        event.core = core_;
        event.cycle = now;
        tracer_->record(event);
    }
    last_ = encoded;
    return true;
}

} // namespace obs
} // namespace ecdp
