/**
 * @file
 * Emits ThrottleTransition trace events when a prefetcher's
 * aggressiveness level (or PAB enable bit) changes.
 *
 * The monitor is the single point that turns throttler output into
 * trace events: MemorySystem::endInterval() feeds it the state after
 * every throttling decision, and the throttle-transition unit tests
 * drive it directly with synthetic feedback so the emitted events can
 * be checked against the paper's threshold tables without standing up
 * a whole memory system.
 */

#ifndef ECDP_OBS_THROTTLE_MONITOR_HH
#define ECDP_OBS_THROTTLE_MONITOR_HH

#include "obs/event_tracer.hh"
#include "prefetch/prefetcher.hh"

namespace ecdp
{
namespace obs
{

class ThrottleMonitor
{
  public:
    /**
     * @param tracer Destination (may be nullptr = disabled).
     * @param core Core index for the emitted events.
     * @param which Prefetcher index (0 = primary, 1 = LDS).
     * @param start Initial aggressiveness level (no event emitted
     *        for the initial state).
     */
    ThrottleMonitor(EventTracer *tracer, unsigned core, unsigned which,
                    AggLevel start);

    /**
     * Record the post-decision state; emits one ThrottleTransition
     * event iff (level, enabled) changed since the last observation
     * and a tracer is attached. A disabled prefetcher's level is
     * encoded as kLevelDisabled.
     *
     * @return True when the observed state changed (tracer or not).
     */
    bool observe(Cycle now, AggLevel level, bool enabled);

  private:
    std::uint8_t encode(AggLevel level, bool enabled) const
    {
        return enabled ? static_cast<std::uint8_t>(level)
                       : kLevelDisabled;
    }

    EventTracer *tracer_;
    std::uint16_t core_;
    std::uint8_t which_;
    std::uint8_t last_;
};

} // namespace obs
} // namespace ecdp

#endif // ECDP_OBS_THROTTLE_MONITOR_HH
