/**
 * @file
 * The observability bundle a simulation run is wired with: a metric
 * registry (named counters) and an event tracer (typed event ring).
 * Both are optional and owned by the caller; either pointer may be
 * null, and a default-constructed bundle means "unobserved run" — the
 * memory system then falls back to a private registry so its counters
 * always exist, and tracing is off.
 */

#ifndef ECDP_OBS_OBSERVABILITY_HH
#define ECDP_OBS_OBSERVABILITY_HH

#include "obs/event_tracer.hh"
#include "obs/metrics.hh"
#include "obs/phase_profiler.hh"

namespace ecdp
{

struct Observability
{
    obs::MetricRegistry *metrics = nullptr;
    obs::EventTracer *tracer = nullptr;
    /** Wall-clock phase attribution; null = unprofiled run. */
    obs::PhaseProfiler *phases = nullptr;
};

} // namespace ecdp

#endif // ECDP_OBS_OBSERVABILITY_HH
