#include "obs/event_tracer.hh"

#include <algorithm>
#include <cstdlib>

namespace ecdp
{
namespace obs
{

const char *
eventTypeName(EventType type)
{
    switch (type) {
      case EventType::DemandMiss:
        return "demand-miss";
      case EventType::PrefetchIssue:
        return "prefetch-issue";
      case EventType::PrefetchFill:
        return "prefetch-fill";
      case EventType::PrefetchDrop:
        return "prefetch-drop";
      case EventType::ThrottleTransition:
        return "throttle-transition";
      case EventType::IntervalSample:
        return "interval-sample";
      case EventType::DramBankConflict:
        return "dram-bank-conflict";
      case EventType::MshrFullStall:
        return "mshr-full-stall";
    }
    return "unknown";
}

const char *
dropReasonName(DropReason reason)
{
    switch (reason) {
      case DropReason::QueueFull:
        return "queue-full";
      case DropReason::SourceDisabled:
        return "source-disabled";
      case DropReason::AlreadyCached:
        return "already-cached";
      case DropReason::AlreadyInFlight:
        return "already-in-flight";
      case DropReason::SideBuffered:
        return "side-buffered";
      case DropReason::HwFilter:
        return "hw-filter";
    }
    return "unknown";
}

std::size_t
EventTracer::capacityFromEnv()
{
    const char *text = std::getenv("ECDP_TRACE_CAPACITY");
    if (!text || !*text)
        return kDefaultCapacity;
    char *end = nullptr;
    unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || v == 0)
        return kDefaultCapacity;
    return static_cast<std::size_t>(v);
}

EventTracer::EventTracer(std::size_t capacity)
    : main_(capacity), rare_(std::min(
                           capacity ? capacity : std::size_t{1},
                           kRareCapacity))
{}

std::vector<TraceEvent>
EventTracer::snapshot() const
{
    std::vector<TraceEvent> out;
    out.reserve(size());
    forEach([&out](const TraceEvent &e) { out.push_back(e); });
    return out;
}

} // namespace obs
} // namespace ecdp
