/**
 * @file
 * Chrome trace_event JSON export of EventTracer rings.
 *
 * A TraceSession owns one output file in the Chrome trace_event JSON
 * array format (loadable in chrome://tracing and Perfetto). Each
 * completed simulation run flushes its tracer into the session under
 * its own pid, labelled with the run's "<workload>:<config>" string;
 * within a run, tid is the core index. flush() is thread-safe so the
 * parallel experiment runner's workers can flush concurrently; only
 * the cross-run event order in the file depends on worker timing,
 * the per-run content never does.
 *
 * Event mapping (ts is the simulated cycle):
 *  - ThrottleTransition -> instant "throttle-transition" (args pf,
 *    from, to) plus counter "agg-level.<pf>" for timeline plots
 *  - IntervalSample     -> counter "feedback.<pf>" with accuracy and
 *    coverage series
 *  - PrefetchDrop       -> instant "prefetch-drop" (args pf, reason,
 *    addr)
 *  - everything else    -> instant events under eventTypeName()
 *
 * The process-wide session is configured by the ECDP_TRACE
 * environment variable (a file path) and finalized when the process
 * exits; tests construct their own sessions and call close().
 */

#ifndef ECDP_OBS_TRACE_SESSION_HH
#define ECDP_OBS_TRACE_SESSION_HH

#include <fstream>
#include <string>

#include "memsim/thread_annotations.hh"
#include "obs/event_tracer.hh"

namespace ecdp
{
namespace obs
{

/** Write one event as a Chrome trace_event JSON object (no comma). */
void writeChromeTraceEvent(std::ostream &os, unsigned pid,
                           const TraceEvent &event);

class TraceSession
{
  public:
    /**
     * The process-wide session named by ECDP_TRACE, or nullptr when
     * the variable is unset/empty (tracing off, the default). Created
     * on first call; finalized by a static destructor at exit.
     */
    static TraceSession *global();

    /** Open @p path and write the trace header. */
    explicit TraceSession(std::string path);

    /** Finalizes via close(). */
    ~TraceSession();

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    /**
     * Append every retained event of @p tracer under a fresh pid
     * whose process_name metadata is @p label. Thread-safe.
     * @return The pid assigned to this run.
     */
    unsigned flush(const std::string &label, const EventTracer &tracer)
        ECDP_EXCLUDES(mutex_);

    /** Write the footer and close the file (idempotent). */
    void close() ECDP_EXCLUDES(mutex_);

    const std::string &path() const { return path_; }

    /** False when the file could not be opened. */
    bool ok() const { return ok_; }

    /** Runs flushed so far. */
    unsigned runsFlushed() const ECDP_EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
        return nextPid_;
    }

  private:
    void comma() ECDP_REQUIRES(mutex_);

    std::string path_;
    mutable AnnotatedMutex mutex_;
    std::ofstream os_ ECDP_GUARDED_BY(mutex_);
    bool ok_ = false; // written once in the ctor, then read-only
    bool closed_ ECDP_GUARDED_BY(mutex_) = false;
    bool any_ ECDP_GUARDED_BY(mutex_) = false;
    unsigned nextPid_ ECDP_GUARDED_BY(mutex_) = 0;
};

} // namespace obs
} // namespace ecdp

#endif // ECDP_OBS_TRACE_SESSION_HH
