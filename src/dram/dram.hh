/**
 * @file
 * Main-memory model: banked DRAM behind a shared core-to-memory bus.
 *
 * Matches the paper's Table 5 memory system: 450-cycle minimum
 * latency, 8 banks, an 8-byte bus at a 5:1 frequency ratio (so a 128 B
 * block occupies the bus for 16 beats = 80 core cycles), and a memory
 * request buffer of 32 entries per core. Contention is modelled with
 * time-stamped resources: each accepted request reserves its bank and
 * a bus slot in arrival order, so bursts of useless prefetches push
 * out the completion times of later demand requests -- the effect the
 * coordinated throttling mechanism exists to manage.
 */

#ifndef ECDP_DRAM_DRAM_HH
#define ECDP_DRAM_DRAM_HH

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "memsim/block_geometry.hh"
#include "memsim/types.hh"
#include "obs/observability.hh"

namespace ecdp
{

/** DRAM timing and sizing parameters (defaults per Table 5). */
struct DramParams
{
    unsigned banks = 8;
    /** Cycles a bank stays busy per access (throughput limit). */
    Cycle bankBusy{50};
    /** Bus occupancy of one block transfer: 128 B over an 8 B bus at a
     *  5:1 frequency ratio = 16 beats x 5 core cycles. */
    Cycle busTransfer{80};
    /** Fixed pipeline latency so an uncontended access takes
     *  front + bankBusy + busTransfer = 450 cycles. */
    Cycle frontLatency{320};
    /** Request buffer entries per core (total = entries x cores). */
    unsigned requestBufferPerCore = 32;
};

/**
 * The shared DRAM system.
 *
 * Completion times are computed at acceptance: the caller learns
 * immediately when its fill will arrive, and the reserved bank/bus
 * windows delay later requests.
 */
class DramSystem
{
  public:
    /**
     * @param params Timing parameters.
     * @param cores Number of cores sharing the memory system.
     * @param block_bytes Cache-block (bus transfer) size; the bank
     *        hash discards the intra-block bits, so it must match the
     *        last-level block size or adjacent blocks alias into
     *        lockstep bank patterns.
     */
    DramSystem(const DramParams &params, unsigned cores,
               std::uint32_t block_bytes = 128);

    /**
     * Try to accept a read (fill) request.
     *
     * @param core Requesting core (bus accounting).
     * @param block_addr Block-aligned address.
     * @param now Current cycle.
     * @param reserve Buffer entries to leave free (prefetch requests
     *        pass a nonzero reserve so they cannot starve demands).
     * @return Completion cycle, or nullopt if the request buffer is
     *         full (the caller must retry).
     */
    std::optional<Cycle> read(unsigned core, Addr block_addr, Cycle now,
                              unsigned reserve = 0);

    /**
     * Post a writeback. Writebacks reserve bank and bus time, count
     * as bus transactions, and occupy a request-buffer entry until
     * their bus transfer completes, so a writeback burst pushes the
     * buffer toward full and delays later reads' acceptance exactly
     * like reads do. Nothing ever waits for a writeback and one is
     * never rejected (the evicting cache has nowhere to hold the
     * dirty block), so occupancy may transiently exceed capacity;
     * reads arriving in that window are refused until it drains.
     */
    void writeback(unsigned core, Addr block_addr, Cycle now);

    /** Total data-bus transactions (fills + writebacks) so far. */
    std::uint64_t busTransactions() const { return busTransactions_; }

    /** Bus transactions attributed to @p core. */
    std::uint64_t busTransactions(unsigned core) const
    {
        return perCoreBus_[core];
    }

    /** Entries currently occupied in the request buffer at @p now. */
    unsigned bufferOccupancy(Cycle now);

    unsigned bufferCapacity() const { return bufferCapacity_; }

    /**
     * Earliest cycle after @p now at which the request buffer drains
     * an entry (the next in-flight completion), or kNoEventCycle when
     * nothing is in flight. Purely passive state cannot wake anyone
     * on its own — callers that were refused retry every cycle and
     * pin the clock themselves — so this is a belt-and-braces bound
     * for the cycle-skipping scheduler, never the binding one.
     * Non-const: it pops already-completed entries (the same lazy
     * drain bufferOccupancy() performs) so a stale heap top cannot
     * pin the clock to now + 1.
     */
    Cycle nextEventCycle(Cycle now);

    /**
     * Attach the run's observability bundle. Registers the "dram.*"
     * counters (reads, writebacks, bank_conflicts, buffer_rejects)
     * and emits DramBankConflict events for requests that arrive
     * while their bank is still busy. Idempotent per registry; a
     * default bundle detaches tracing and counts into nothing.
     */
    void attachObservability(const Observability &obs);

  private:
    /** Reserve bank + bus resources; returns the bus-done cycle. */
    Cycle reserve(unsigned core, Addr block_addr, Cycle now);

    unsigned bankIndex(unsigned core, Addr block_addr) const;

    DramParams params_;
    unsigned bufferCapacity_;
    /** Block geometry whose intra-block bits the bank hash discards. */
    BlockGeometry geom_;
    std::vector<Cycle> bankFree_;
    Cycle busFree_{};
    /** Completion times of in-flight reads and writebacks (request
     *  buffer occupancy). */
    std::priority_queue<Cycle, std::vector<Cycle>, std::greater<>>
        inFlight_;
    std::uint64_t busTransactions_ = 0;
    std::vector<std::uint64_t> perCoreBus_;

    /** @{ Observability (null when the run is unobserved). */
    obs::EventTracer *tracer_ = nullptr;
    obs::PhaseProfiler *phases_ = nullptr;
    obs::Counter *readsCtr_ = nullptr;
    obs::Counter *writebacksCtr_ = nullptr;
    obs::Counter *bankConflictsCtr_ = nullptr;
    obs::Counter *bufferRejectsCtr_ = nullptr;
    /** @} */
};

} // namespace ecdp

#endif // ECDP_DRAM_DRAM_HH
