#include "dram/dram.hh"

#include <algorithm>
#include <cassert>

namespace ecdp
{

DramSystem::DramSystem(const DramParams &params, unsigned cores)
    : params_(params),
      bufferCapacity_(params.requestBufferPerCore * cores),
      bankFree_(params.banks, 0),
      perCoreBus_(cores, 0)
{
    assert(cores > 0);
    assert(params.banks > 0);
}

unsigned
DramSystem::bankIndex(unsigned core, Addr block_addr) const
{
    // Fold several address ranges plus the core id so that regular
    // strides and identical per-core heap layouts spread over banks.
    std::uint32_t v = block_addr >> 7;
    v ^= v >> 6;
    v ^= core * 0x9e3779b9u;
    return v % params_.banks;
}

unsigned
DramSystem::bufferOccupancy(Cycle now)
{
    while (!inFlight_.empty() && inFlight_.top() <= now)
        inFlight_.pop();
    return static_cast<unsigned>(inFlight_.size());
}

Cycle
DramSystem::reserve(unsigned core, Addr block_addr, Cycle now)
{
    unsigned bank = bankIndex(core, block_addr);
    Cycle bank_start = std::max(now + params_.frontLatency,
                                bankFree_[bank]);
    Cycle bank_done = bank_start + params_.bankBusy;
    bankFree_[bank] = bank_done;

    Cycle bus_start = std::max(bank_done, busFree_);
    Cycle bus_done = bus_start + params_.busTransfer;
    busFree_ = bus_done;

    ++busTransactions_;
    ++perCoreBus_[core];
    return bus_done;
}

std::optional<Cycle>
DramSystem::read(unsigned core, Addr block_addr, Cycle now,
                 unsigned reserved)
{
    unsigned usable = bufferCapacity_ > reserved
        ? bufferCapacity_ - reserved
        : 0;
    if (bufferOccupancy(now) >= usable)
        return std::nullopt;
    Cycle done = reserve(core, block_addr, now);
    inFlight_.push(done);
    return done;
}

void
DramSystem::writeback(unsigned core, Addr block_addr, Cycle now)
{
    reserve(core, block_addr, now);
}

} // namespace ecdp
