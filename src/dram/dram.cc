#include "dram/dram.hh"

#include <algorithm>
#include <cassert>

namespace ecdp
{

DramSystem::DramSystem(const DramParams &params, unsigned cores,
                       std::uint32_t block_bytes)
    : params_(params),
      bufferCapacity_(params.requestBufferPerCore * cores),
      geom_(block_bytes),
      bankFree_(params.banks, Cycle{}),
      perCoreBus_(cores, 0)
{
    assert(cores > 0);
    assert(params.banks > 0);
    assert(block_bytes > 0);
}

unsigned
DramSystem::bankIndex(unsigned core, Addr block_addr) const
{
    // Fold several address ranges plus the core id so that regular
    // strides and identical per-core heap layouts spread over banks.
    // BlockGeometry discards exactly the intra-block bits: with a
    // shift hard-coded for 128 B blocks, a 64 B-block configuration
    // would alias each adjacent block pair into the same bank and
    // every sequential stream would see a fixed lockstep bank pattern.
    std::uint32_t v = geom_.blockOf(block_addr).raw();
    v ^= v >> 6; // simlint-allow(magic-block-shift): hash mixing
    v ^= core * 0x9e3779b9u;
    return v % params_.banks;
}

unsigned
DramSystem::bufferOccupancy(Cycle now)
{
    while (!inFlight_.empty() && inFlight_.top() <= now)
        inFlight_.pop();
    return static_cast<unsigned>(inFlight_.size());
}

Cycle
DramSystem::nextEventCycle(Cycle now)
{
    // Drain entries that already completed; their timestamps are in
    // the past and would otherwise pin the bound to now + 1 forever.
    bufferOccupancy(now);
    if (inFlight_.empty())
        return kNoEventCycle;
    return std::max(inFlight_.top(), now + 1);
}

void
DramSystem::attachObservability(const Observability &obs)
{
    tracer_ = obs.tracer;
    phases_ = obs.phases;
    if (obs.metrics) {
        readsCtr_ = &obs.metrics->counter("dram.reads");
        writebacksCtr_ = &obs.metrics->counter("dram.writebacks");
        bankConflictsCtr_ =
            &obs.metrics->counter("dram.bank_conflicts");
        bufferRejectsCtr_ =
            &obs.metrics->counter("dram.buffer_rejects");
    } else {
        readsCtr_ = writebacksCtr_ = bankConflictsCtr_ =
            bufferRejectsCtr_ = nullptr;
    }
}

Cycle
DramSystem::reserve(unsigned core, Addr block_addr, Cycle now)
{
    unsigned bank = bankIndex(core, block_addr);
    Cycle earliest = now + params_.frontLatency;
    if (bankFree_[bank] > earliest) {
        // Bank conflict: this request waits on a previous access to
        // the same bank — the contention the coordinated throttling
        // mechanism exists to manage.
        if (bankConflictsCtr_)
            bankConflictsCtr_->inc();
        if (tracer_) {
            obs::TraceEvent event;
            event.type = obs::EventType::DramBankConflict;
            event.core = static_cast<std::uint16_t>(core);
            event.cycle = now;
            event.addr = block_addr.raw();
            event.a = static_cast<std::uint8_t>(bank);
            event.arg = (bankFree_[bank] - earliest).raw();
            tracer_->record(event);
        }
    }
    Cycle bank_start = std::max(earliest, bankFree_[bank]);
    Cycle bank_done = bank_start + params_.bankBusy;
    bankFree_[bank] = bank_done;

    Cycle bus_start = std::max(bank_done, busFree_);
    Cycle bus_done = bus_start + params_.busTransfer;
    busFree_ = bus_done;

    ++busTransactions_;
    ++perCoreBus_[core];
    return bus_done;
}

std::optional<Cycle>
DramSystem::read(unsigned core, Addr block_addr, Cycle now,
                 unsigned reserved)
{
    obs::PhaseProfiler::Scoped scope(phases_,
                                     obs::PhaseProfiler::Phase::Dram);
    unsigned usable = bufferCapacity_ > reserved
        ? bufferCapacity_ - reserved
        : 0;
    if (bufferOccupancy(now) >= usable) {
        if (bufferRejectsCtr_)
            bufferRejectsCtr_->inc();
        return std::nullopt;
    }
    if (readsCtr_)
        readsCtr_->inc();
    Cycle done = reserve(core, block_addr, now);
    inFlight_.push(done);
    return done;
}

void
DramSystem::writeback(unsigned core, Addr block_addr, Cycle now)
{
    obs::PhaseProfiler::Scoped scope(phases_,
                                     obs::PhaseProfiler::Phase::Dram);
    if (writebacksCtr_)
        writebacksCtr_->inc();
    // A writeback occupies a request-buffer entry until its bus
    // transfer completes, just like a read — otherwise writeback
    // bursts are invisible to the per-core buffer limit and
    // bandwidth contention is underestimated. Unlike reads it is
    // never refused: the evicting cache has no write buffer to stall
    // into, so the entry is posted even when the buffer is full.
    inFlight_.push(reserve(core, block_addr, now));
}

} // namespace ecdp
