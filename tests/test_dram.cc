/**
 * @file
 * Unit tests for the DRAM model: latency, bank and bus contention,
 * request buffer occupancy, and demand reservations.
 */

#include <gtest/gtest.h>

#include "dram/dram.hh"

namespace ecdp
{
namespace
{

DramParams
params()
{
    return DramParams{}; // Table 5 defaults
}

TEST(Dram, UncontendedLatencyIs450)
{
    DramSystem dram(params(), 1);
    auto done = dram.read(0, 0x40000000, Cycle{1000});
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(*done - 1000, Cycle{450});
}

TEST(Dram, SameBankRequestsSerializeOnBankTime)
{
    DramSystem dram(params(), 1);
    Cycle first = *dram.read(0, 0x40000000, Cycle{});
    // Same block address -> same bank.
    Cycle second = *dram.read(0, 0x40000000, Cycle{});
    EXPECT_GE(second, first + params().bankBusy);
}

TEST(Dram, DifferentBanksOverlapButShareTheBus)
{
    DramSystem dram(params(), 1);
    Cycle first = *dram.read(0, 0x40000000, Cycle{});
    // A different bank: bank time overlaps, bus serializes.
    Cycle second = *dram.read(0, 0x40000080, Cycle{});
    EXPECT_EQ(second, first + params().busTransfer);
}

TEST(Dram, BankHashFollowsConfiguredBlockSize)
{
    // With 64 B blocks the bank hash must discard exactly 6 offset
    // bits. The old hard-coded >>7 folded each adjacent 64 B block
    // pair onto one bank, so consecutive blocks serialized on bank
    // busy time instead of overlapping across banks.
    DramSystem dram(DramParams{}, 1, 64);
    Cycle first = *dram.read(0, 0x40000000, Cycle{});
    Cycle second = *dram.read(0, 0x40000040, Cycle{});
    // Adjacent 64 B blocks: different banks, bus-serialized only.
    EXPECT_EQ(second, first + DramParams{}.busTransfer);
}

TEST(Dram, DefaultBlockSizeBankHashUnchanged)
{
    // 128 B blocks (the Table 5 default) keep the historical >>7
    // behaviour: same block -> same bank -> bankBusy serialization.
    DramSystem dram(DramParams{}, 1, 128);
    Cycle first = *dram.read(0, 0x40000000, Cycle{});
    Cycle second = *dram.read(0, 0x40000000, Cycle{});
    EXPECT_GE(second, first + DramParams{}.bankBusy);
}

TEST(Dram, BusSerializesEveryTransfer)
{
    DramSystem dram(params(), 1);
    Cycle prev{};
    for (unsigned i = 0; i < 16; ++i) {
        Cycle done = *dram.read(0, 0x40000000 + i * 128, Cycle{});
        if (i > 0) {
            EXPECT_GE(done, prev + params().busTransfer);
        }
        prev = done;
    }
}

TEST(Dram, CountsBusTransactions)
{
    DramSystem dram(params(), 2);
    dram.read(0, 0x40000000, Cycle{});
    dram.read(1, 0x40010000, Cycle{});
    dram.writeback(0, 0x40020000, Cycle{});
    EXPECT_EQ(dram.busTransactions(), 3u);
    EXPECT_EQ(dram.busTransactions(0), 2u);
    EXPECT_EQ(dram.busTransactions(1), 1u);
}

TEST(Dram, BufferRejectsWhenFull)
{
    DramSystem dram(params(), 1); // 32 entries
    for (unsigned i = 0; i < 32; ++i)
        EXPECT_TRUE(dram.read(0, 0x40000000 + i * 128, Cycle{}).has_value());
    EXPECT_FALSE(dram.read(0, 0x41000000, Cycle{}).has_value());
}

TEST(Dram, BufferDrainsAsRequestsComplete)
{
    DramSystem dram(params(), 1);
    Cycle last{};
    for (unsigned i = 0; i < 32; ++i)
        last = *dram.read(0, 0x40000000 + i * 128, Cycle{});
    EXPECT_FALSE(dram.read(0, 0x41000000, Cycle{}).has_value());
    EXPECT_TRUE(dram.read(0, 0x41000000, last + 1).has_value());
}

TEST(Dram, ReserveKeepsEntriesForDemands)
{
    DramSystem dram(params(), 1);
    // Prefetches (reserve 8) may only use 24 of the 32 entries.
    unsigned accepted = 0;
    for (unsigned i = 0; i < 32; ++i) {
        if (dram.read(0, 0x40000000 + i * 128, Cycle{}, 8))
            ++accepted;
    }
    EXPECT_EQ(accepted, 24u);
    // A demand (no reserve) still gets in.
    EXPECT_TRUE(dram.read(0, 0x41000000, Cycle{}).has_value());
}

TEST(Dram, WritebacksAreNeverRejected)
{
    DramSystem dram(params(), 1);
    for (unsigned i = 0; i < 32; ++i)
        dram.read(0, 0x40000000 + i * 128, Cycle{});
    // Buffer is full, but writebacks still go through (and consume
    // bus bandwidth): the evicting cache has nowhere to stall into.
    std::uint64_t before = dram.busTransactions();
    dram.writeback(0, 0x42000000, Cycle{});
    EXPECT_EQ(dram.busTransactions(), before + 1);
    // The posted writeback transiently overshoots the capacity.
    EXPECT_EQ(dram.bufferOccupancy(Cycle{}), 33u);
}

TEST(Dram, WritebacksOccupyRequestBufferEntries)
{
    DramSystem dram(params(), 1); // 32 entries
    EXPECT_EQ(dram.bufferOccupancy(Cycle{}), 0u);
    for (unsigned i = 0; i < 32; ++i)
        dram.writeback(0, 0x40000000 + i * 128, Cycle{});
    EXPECT_EQ(dram.bufferOccupancy(Cycle{}), 32u);
    // A writeback burst fills the buffer and refuses later reads —
    // the bandwidth contention the per-core request-buffer limit is
    // supposed to model.
    EXPECT_FALSE(dram.read(0, 0x41000000, Cycle{}).has_value());
}

TEST(Dram, WritebackOccupancyDrainsAtBusCompletion)
{
    DramSystem dram(params(), 1);
    for (unsigned i = 0; i < 32; ++i)
        dram.writeback(0, 0x40000000 + i * 128, Cycle{});
    // All writebacks have completed their bus transfers well before
    // front + 32 * (bank + bus) cycles; the buffer is empty again.
    const Cycle horizon =
        params().frontLatency +
        32 * (params().bankBusy.raw() + params().busTransfer.raw());
    EXPECT_EQ(dram.bufferOccupancy(horizon), 0u);
    EXPECT_TRUE(dram.read(0, 0x41000000, horizon).has_value());
}

TEST(Dram, WritebacksDelayLaterReads)
{
    DramSystem dram(params(), 1);
    for (unsigned i = 0; i < 8; ++i)
        dram.writeback(0, 0x40000000 + i * 128, Cycle{});
    Cycle done = *dram.read(0, 0x41000000, Cycle{});
    // The read's bus slot comes after the writebacks'.
    EXPECT_GT(done, Cycle{450});
}

TEST(Dram, MultiCoreBufferScales)
{
    DramSystem dram(params(), 4);
    EXPECT_EQ(dram.bufferCapacity(), 32u * 4);
}

TEST(Dram, OccupancyReflectsInFlightReads)
{
    DramSystem dram(params(), 1);
    Cycle done = *dram.read(0, 0x40000000, Cycle{});
    EXPECT_EQ(dram.bufferOccupancy(Cycle{}), 1u);
    EXPECT_EQ(dram.bufferOccupancy(done), 0u);
}

TEST(Dram, ContentionRaisesLatencyOfLaterRequests)
{
    // The Section 4 premise: a burst of (prefetch) requests inflates
    // the latency of a subsequent (demand) request.
    DramSystem quiet(params(), 1);
    Cycle alone = *quiet.read(0, 0x40000000, Cycle{});

    DramSystem busy(params(), 1);
    for (unsigned i = 0; i < 16; ++i)
        busy.read(0, 0x41000000 + i * 128, Cycle{}, 8);
    Cycle contended = *busy.read(0, 0x40000000, Cycle{});
    EXPECT_GT(contended, alone);
}

} // namespace
} // namespace ecdp
