/**
 * @file
 * Unit and property tests for the POWER4-style stream prefetcher.
 */

#include <gtest/gtest.h>

#include "prefetch/stream_prefetcher.hh"

namespace ecdp
{
namespace
{

std::vector<PrefetchRequest>
trigger(StreamPrefetcher &pf, Addr addr)
{
    std::vector<PrefetchRequest> out;
    pf.trigger(addr, out);
    return out;
}

TEST(StreamPrefetcher, FirstMissOnlyAllocates)
{
    StreamPrefetcher pf;
    EXPECT_TRUE(trigger(pf, 0x40000000).empty());
}

TEST(StreamPrefetcher, SecondNearbyMissTrainsAndPrefetches)
{
    StreamPrefetcher pf;
    trigger(pf, 0x40000000);
    auto reqs = trigger(pf, 0x40000080); // next block
    ASSERT_FALSE(reqs.empty());
    EXPECT_LE(reqs.size(), pf.degree());
    // Ascending stream: prefetches go forward.
    EXPECT_EQ(reqs[0].blockAddr, 0x40000100u);
    EXPECT_EQ(reqs[0].source, PrefetchSource::Primary);
}

TEST(StreamPrefetcher, DetectsDescendingStreams)
{
    StreamPrefetcher pf;
    trigger(pf, 0x40001000);
    auto reqs = trigger(pf, 0x40000f80);
    ASSERT_FALSE(reqs.empty());
    EXPECT_EQ(reqs[0].blockAddr, 0x40000f00u);
}

TEST(StreamPrefetcher, FarMissesDoNotTrain)
{
    StreamPrefetcher pf;
    trigger(pf, 0x40000000);
    // 17 blocks away: outside the +/-16 block training window.
    EXPECT_TRUE(trigger(pf, 0x40000000 + 17 * 128).empty());
}

TEST(StreamPrefetcher, MonitorRegionAdvancesStream)
{
    StreamPrefetcher pf;
    pf.setAggressiveness(AggLevel::Aggressive); // distance 32, degree 4
    trigger(pf, 0x40000000);
    trigger(pf, 0x40000080);
    // Keep walking the stream: each trigger inside the monitored
    // region emits up to `degree` new prefetches.
    std::size_t total = 0;
    for (unsigned i = 2; i < 10; ++i)
        total += trigger(pf, 0x40000000 + i * 128).size();
    EXPECT_GT(total, 0u);
}

TEST(StreamPrefetcher, FrontierNeverExceedsDistance)
{
    StreamPrefetcher pf;
    pf.setAggressiveness(AggLevel::Conservative); // distance 8
    trigger(pf, 0x40000000);
    auto reqs = trigger(pf, 0x40000080);
    for (unsigned i = 2; i < 20; ++i) {
        auto more = trigger(pf, 0x40000000 + i * 128);
        reqs.insert(reqs.end(), more.begin(), more.end());
    }
    for (const PrefetchRequest &req : reqs) {
        // No prefetch further than distance blocks past its trigger.
        EXPECT_LE(req.blockAddr, 0x40000000u + (20 + 8) * 128);
    }
}

TEST(StreamPrefetcher, DegreeCapsRequestsPerTrigger)
{
    for (AggLevel level :
         {AggLevel::VeryConservative, AggLevel::Conservative,
          AggLevel::Moderate, AggLevel::Aggressive}) {
        StreamPrefetcher pf;
        pf.setAggressiveness(level);
        trigger(pf, 0x40000000);
        auto reqs = trigger(pf, 0x40000080);
        EXPECT_LE(reqs.size(), pf.degree());
    }
}

TEST(StreamPrefetcher, Table2Configurations)
{
    StreamPrefetcher pf;
    pf.setAggressiveness(AggLevel::VeryConservative);
    EXPECT_EQ(pf.distance(), 4u);
    EXPECT_EQ(pf.degree(), 1u);
    pf.setAggressiveness(AggLevel::Conservative);
    EXPECT_EQ(pf.distance(), 8u);
    EXPECT_EQ(pf.degree(), 1u);
    pf.setAggressiveness(AggLevel::Moderate);
    EXPECT_EQ(pf.distance(), 16u);
    EXPECT_EQ(pf.degree(), 2u);
    pf.setAggressiveness(AggLevel::Aggressive);
    EXPECT_EQ(pf.distance(), 32u);
    EXPECT_EQ(pf.degree(), 4u);
}

TEST(StreamPrefetcher, ResetDropsAllStreams)
{
    StreamPrefetcher pf;
    trigger(pf, 0x40000000);
    pf.reset();
    // After reset the next nearby miss only re-allocates.
    EXPECT_TRUE(trigger(pf, 0x40000080).empty());
}

TEST(StreamPrefetcher, LruEntryIsReplaced)
{
    StreamPrefetcher pf(2); // two entries only
    trigger(pf, 0x40000000);
    trigger(pf, 0x48000000);
    trigger(pf, 0x50000000); // evicts the 0x40000000 trainee
    // The evicted stream cannot be confirmed anymore.
    EXPECT_TRUE(trigger(pf, 0x40000080).empty());
}

TEST(StreamPrefetcher, RepeatMissOnSameBlockDoesNotTrain)
{
    StreamPrefetcher pf;
    trigger(pf, 0x40000000);
    EXPECT_TRUE(trigger(pf, 0x40000000).empty());
    EXPECT_TRUE(trigger(pf, 0x40000040).empty()); // same block
}

TEST(StreamPrefetcher, StorageIsSmall)
{
    StreamPrefetcher pf;
    EXPECT_LT(pf.storageBits(), 8u * 1024 * 8); // well under 8 KB
}

/** Property: streams train for any block stride within the window. */
class StreamStrideTest : public ::testing::TestWithParam<int>
{
};

TEST_P(StreamStrideTest, TrainsAndFollowsDirection)
{
    const int stride_blocks = GetParam();
    StreamPrefetcher pf;
    Addr base = 0x44000000;
    trigger(pf, base);
    auto reqs =
        trigger(pf, base + stride_blocks * 128);
    ASSERT_FALSE(reqs.empty())
        << "stride " << stride_blocks << " blocks";
    if (stride_blocks > 0)
        EXPECT_GT(reqs[0].blockAddr, base);
    else
        EXPECT_LT(reqs[0].blockAddr, base);
}

INSTANTIATE_TEST_SUITE_P(Strides, StreamStrideTest,
                         ::testing::Values(1, 2, 5, 15, -1, -3, -15));

} // namespace
} // namespace ecdp
