/**
 * @file
 * Tests for the experiment plumbing: the named configuration
 * factories must select the mechanisms the paper's sections describe,
 * and the ExperimentContext must memoize correctly.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace ecdp
{
namespace
{

TEST(Configs, BaselineIsStreamOnlyAggressive)
{
    SystemConfig cfg = configs::baseline();
    EXPECT_EQ(cfg.primary, PrimaryKind::Stream);
    EXPECT_EQ(cfg.lds, LdsKind::None);
    EXPECT_EQ(cfg.throttle, ThrottleKind::None);
    EXPECT_EQ(cfg.primaryStartLevel, AggLevel::Aggressive);
}

TEST(Configs, Table5Defaults)
{
    SystemConfig cfg;
    EXPECT_EQ(cfg.l2Bytes, 1024u * 1024);
    EXPECT_EQ(cfg.l2Assoc, 8u);
    EXPECT_EQ(cfg.l2BlockBytes, 128u);
    EXPECT_EQ(cfg.l2Mshrs, 32u);
    EXPECT_EQ(cfg.core.robEntries, 256u);
    EXPECT_EQ(cfg.core.lsqEntries, 32u);
    EXPECT_EQ(cfg.core.width, 4u);
    EXPECT_EQ(cfg.dram.banks, 8u);
    EXPECT_EQ(cfg.streamEntries, 32u);
    EXPECT_EQ(cfg.cdpCompareBits, 8u);
    EXPECT_EQ(cfg.prefetchQueueEntries, 128u);
    // Uncontended DRAM latency must be the paper's 450 cycles.
    EXPECT_EQ(cfg.dram.frontLatency + cfg.dram.bankBusy +
                  cfg.dram.busTransfer,
              Cycle{450});
}

TEST(Configs, FullProposalWiresEcdpAndCoordination)
{
    HintTable hints;
    SystemConfig cfg = configs::fullProposal(&hints);
    EXPECT_EQ(cfg.primary, PrimaryKind::Stream);
    EXPECT_EQ(cfg.lds, LdsKind::Ecdp);
    EXPECT_EQ(cfg.throttle, ThrottleKind::Coordinated);
    EXPECT_EQ(cfg.hints, &hints);
    EXPECT_FALSE(cfg.grpCoarse);
    EXPECT_FALSE(cfg.hwFilter);
}

TEST(Configs, GhbConfigsReplaceTheStreamPrefetcher)
{
    EXPECT_EQ(configs::ghbAlone().primary, PrimaryKind::Ghb);
    EXPECT_EQ(configs::ghbAlone().lds, LdsKind::None);
    HintTable hints;
    SystemConfig hybrid = configs::ghbEcdp(&hints, true);
    EXPECT_EQ(hybrid.primary, PrimaryKind::Ghb);
    EXPECT_EQ(hybrid.lds, LdsKind::Ecdp);
    EXPECT_EQ(hybrid.throttle, ThrottleKind::Coordinated);
}

TEST(Configs, ComparisonConfigsSelectTheirMechanisms)
{
    EXPECT_EQ(configs::streamDbp().lds, LdsKind::Dbp);
    EXPECT_EQ(configs::streamMarkov().lds, LdsKind::Markov);
    EXPECT_TRUE(configs::streamCdpHwFilter(false).hwFilter);
    EXPECT_EQ(configs::streamCdpHwFilter(true).throttle,
              ThrottleKind::Coordinated);
    EXPECT_EQ(configs::streamCdpPab().throttle, ThrottleKind::Pab);
    HintTable hints;
    EXPECT_TRUE(configs::streamGrpCoarse(&hints).grpCoarse);
    EXPECT_EQ(configs::streamEcdpFdp(&hints).throttle,
              ThrottleKind::Fdp);
}

TEST(Configs, OracleModes)
{
    EXPECT_TRUE(configs::idealLds().idealLds);
    EXPECT_FALSE(configs::idealLds().idealNoPollution);
}

TEST(ExperimentContextTest, MemoizesWorkloadsAndRuns)
{
    ExperimentContext ctx;
    const Workload &a = ctx.ref("parser");
    const Workload &b = ctx.ref("parser");
    EXPECT_EQ(&a, &b);
    const RunStats &r1 =
        ctx.run("parser", configs::noPrefetch(), "np");
    const RunStats &r2 =
        ctx.run("parser", configs::noPrefetch(), "np");
    EXPECT_EQ(&r1, &r2);
}

TEST(ExperimentContextTest, DistinctKeysAreDistinctRuns)
{
    ExperimentContext ctx;
    const RunStats &np =
        ctx.run("parser", configs::noPrefetch(), "np");
    const RunStats &base =
        ctx.run("parser", configs::baseline(), "base");
    EXPECT_NE(&np, &base);
}

TEST(ExperimentContextTest, HintsAreStableReferences)
{
    ExperimentContext ctx;
    const HintTable &a = ctx.hints("parser");
    const HintTable &b = ctx.hints("parser");
    EXPECT_EQ(&a, &b);
}

} // namespace
} // namespace ecdp
