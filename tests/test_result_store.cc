// The content-addressed single-flight result store: exactly one
// leader per key under concurrency, follower fan-out, disk spill and
// reload, and the corrupt-entry detect/log/rebuild path.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/result_store.hh"

namespace
{

using namespace ecdp::server;

std::string
freshDir(const std::string &name)
{
    const std::string dir = testing::TempDir() + "/" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

TEST(ResultStore, LeaderComputesThenHitsServeFromMemory)
{
    ResultStore store;
    std::string got;
    ResultStore::Role role = store.fetchOrAttach(
        7, [&](ResultStore::Bytes bytes, const std::string &error) {
            ASSERT_TRUE(bytes);
            EXPECT_EQ(error, "");
            got = *bytes;
        });
    ASSERT_EQ(role, ResultStore::Role::Leader);
    EXPECT_EQ(store.leaders(), 1u);
    store.complete(7, "payload");
    EXPECT_EQ(got, "payload");

    // Second fetch is a memory hit whose callback fires inline.
    got.clear();
    role = store.fetchOrAttach(
        7, [&](ResultStore::Bytes bytes, const std::string &) {
            got = *bytes;
        });
    EXPECT_EQ(role, ResultStore::Role::Hit);
    EXPECT_EQ(got, "payload");
    EXPECT_EQ(store.memoryHits(), 1u);
    EXPECT_EQ(store.size(), 1u);
}

TEST(ResultStore, ExactlyOneLeaderAmongConcurrentFetches)
{
    // N threads race fetchOrAttach on the same key while the leader's
    // completion is deliberately delayed until every thread has
    // attached — the single-flight core of the daemon.
    ResultStore store;
    constexpr int kThreads = 16;
    std::atomic<int> leaders{0};
    std::atomic<int> attached{0};
    std::atomic<int> delivered{0};
    std::mutex mutex;
    std::condition_variable cv;

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            ResultStore::Role role = store.fetchOrAttach(
                42, [&](ResultStore::Bytes bytes,
                        const std::string &error) {
                    EXPECT_TRUE(bytes);
                    EXPECT_EQ(error, "");
                    if (bytes && *bytes == "the-one-result")
                        delivered.fetch_add(1);
                });
            if (role == ResultStore::Role::Leader) {
                leaders.fetch_add(1);
                // Wait for every other thread to attach before
                // completing, so none of them can be a memory Hit.
                std::unique_lock<std::mutex> lock(mutex);
                cv.wait(lock, [&] {
                    return attached.load() == kThreads - 1;
                });
                store.complete(42, "the-one-result");
            } else {
                EXPECT_EQ(role, ResultStore::Role::Follower);
                {
                    std::lock_guard<std::mutex> lock(mutex);
                    attached.fetch_add(1);
                }
                cv.notify_one();
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    EXPECT_EQ(leaders.load(), 1);
    EXPECT_EQ(delivered.load(), kThreads);
    EXPECT_EQ(store.leaders(), 1u);
    EXPECT_EQ(store.dedupAttached(), std::uint64_t(kThreads - 1));
}

TEST(ResultStore, FailedFlightLeavesKeyUncachedForRetry)
{
    ResultStore store;
    std::string firstError;
    ResultStore::Role role = store.fetchOrAttach(
        9, [&](ResultStore::Bytes bytes, const std::string &error) {
            EXPECT_FALSE(bytes);
            firstError = error;
        });
    ASSERT_EQ(role, ResultStore::Role::Leader);

    std::string followerError;
    EXPECT_EQ(store.fetchOrAttach(
                  9,
                  [&](ResultStore::Bytes, const std::string &error) {
                      followerError = error;
                  }),
              ResultStore::Role::Follower);

    store.fail(9, "worker crashed");
    EXPECT_EQ(firstError, "worker crashed");
    EXPECT_EQ(followerError, "worker crashed");
    EXPECT_FALSE(store.lookup(9));

    // A later submission must get to retry as a fresh leader.
    EXPECT_EQ(store.fetchOrAttach(
                  9, [](ResultStore::Bytes, const std::string &) {}),
              ResultStore::Role::Leader);
    store.complete(9, "second try");
    ASSERT_TRUE(store.lookup(9));
    EXPECT_EQ(*store.lookup(9), "second try");
}

TEST(ResultStore, SpillsToDiskAndReloadsInFreshStore)
{
    const std::string dir = freshDir("ecdp_store_spill");
    const std::string payload = "{\"workload\":\"mst\"}";
    {
        ResultStore store(dir);
        ASSERT_EQ(store.fetchOrAttach(0xabcdef,
                                      [](ResultStore::Bytes,
                                         const std::string &) {}),
                  ResultStore::Role::Leader);
        store.complete(0xabcdef, payload);
    }
    EXPECT_TRUE(std::filesystem::exists(
        std::filesystem::path(dir) /
        ResultStore::entryFileName(0xabcdef)));

    // A brand-new store over the same directory serves the entry
    // from disk without any flight.
    ResultStore reopened(dir);
    std::string got;
    EXPECT_EQ(reopened.fetchOrAttach(
                  0xabcdef,
                  [&](ResultStore::Bytes bytes, const std::string &) {
                      got = *bytes;
                  }),
              ResultStore::Role::Hit);
    EXPECT_EQ(got, payload);
    EXPECT_EQ(reopened.diskHits(), 1u);
}

TEST(ResultStore, EntryFileNameEncodesKeyAsHex16)
{
    EXPECT_EQ(ResultStore::entryFileName(0x1a2b),
              "cell-0000000000001a2b.bin");
    EXPECT_EQ(ResultStore::entryFileName(~0ull),
              "cell-ffffffffffffffff.bin");
}

TEST(ResultStore, CorruptDiskEntryIsRemovedAndRebuilt)
{
    const std::string dir = freshDir("ecdp_store_corrupt");
    const std::uint64_t key = 0x77;
    {
        ResultStore store(dir);
        store.fetchOrAttach(
            key, [](ResultStore::Bytes, const std::string &) {});
        store.complete(key, "good bytes");
    }
    const std::filesystem::path file =
        std::filesystem::path(dir) / ResultStore::entryFileName(key);
    ASSERT_TRUE(std::filesystem::exists(file));

    // Truncate the entry mid-payload: the fresh store must detect
    // it, drop the file and hand the caller a Leader role so the
    // result is rebuilt rather than trusted.
    {
        std::ofstream out(file, std::ios::binary | std::ios::trunc);
        out << "cell";
    }
    ResultStore reopened(dir);
    EXPECT_EQ(reopened.fetchOrAttach(
                  key, [](ResultStore::Bytes, const std::string &) {}),
              ResultStore::Role::Leader);
    EXPECT_EQ(reopened.corruptRebuilds(), 1u);
    EXPECT_FALSE(std::filesystem::exists(file));

    reopened.complete(key, "rebuilt");
    EXPECT_TRUE(std::filesystem::exists(file));
    ResultStore third(dir);
    ASSERT_TRUE(third.lookup(key));
    EXPECT_EQ(*third.lookup(key), "rebuilt");
}

TEST(ResultStore, KeyStampMismatchCountsAsCorrupt)
{
    // A file whose embedded key disagrees with its name (e.g. a
    // botched manual copy) must also be rejected and rebuilt.
    const std::string dir = freshDir("ecdp_store_stamp");
    const std::uint64_t key = 0x1234;
    {
        ResultStore store(dir);
        store.fetchOrAttach(
            key, [](ResultStore::Bytes, const std::string &) {});
        store.complete(key, "stamped");
    }
    const std::filesystem::path wrongName =
        std::filesystem::path(dir) /
        ResultStore::entryFileName(key + 1);
    std::filesystem::copy_file(
        std::filesystem::path(dir) / ResultStore::entryFileName(key),
        wrongName);

    ResultStore reopened(dir);
    EXPECT_FALSE(reopened.lookup(key + 1));
    EXPECT_EQ(reopened.corruptRebuilds(), 1u);
}

TEST(ResultStore, MemoryCapEvictsOldestInsertionFirst)
{
    // Memory-only store bounded to 2 entries: the third insert
    // evicts the oldest, which then misses and re-leads.
    ResultStore store("", 2);
    for (std::uint64_t key : {1, 2, 3}) {
        store.fetchOrAttach(
            key, [](ResultStore::Bytes, const std::string &) {});
        store.complete(key, "r" + std::to_string(key));
    }
    EXPECT_EQ(store.size(), 2u);
    EXPECT_EQ(store.evicted(), 1u);
    EXPECT_FALSE(store.lookup(1)); // the oldest went
    ASSERT_TRUE(store.lookup(2));
    ASSERT_TRUE(store.lookup(3));
    EXPECT_EQ(store.fetchOrAttach(
                  1, [](ResultStore::Bytes, const std::string &) {}),
              ResultStore::Role::Leader);
}

TEST(ResultStore, EvictedEntryReloadsFromDisk)
{
    // With a spill directory the cap only bounds memory: an evicted
    // entry comes back as a disk hit, not a recompute.
    const std::string dir = freshDir("ecdp_store_cap");
    ResultStore store(dir, 1);
    for (std::uint64_t key : {10, 11}) {
        store.fetchOrAttach(
            key, [](ResultStore::Bytes, const std::string &) {});
        store.complete(key, "k" + std::to_string(key));
    }
    EXPECT_EQ(store.size(), 1u);
    EXPECT_EQ(store.evicted(), 1u);

    std::string got;
    EXPECT_EQ(store.fetchOrAttach(
                  10,
                  [&](ResultStore::Bytes bytes, const std::string &) {
                      got = *bytes;
                  }),
              ResultStore::Role::Hit);
    EXPECT_EQ(got, "k10");
    EXPECT_EQ(store.diskHits(), 1u);
    // The reload displaced key 11 in memory (cap still holds)...
    EXPECT_EQ(store.size(), 1u);
    // ...which is itself still durable on disk.
    ASSERT_TRUE(store.lookup(11));
    EXPECT_EQ(*store.lookup(11), "k11");
}

TEST(ResultStore, DiskCapEvictsOldestSpillFirst)
{
    // Disk bounded to 2 spill files: the third completion unlinks
    // the oldest file, counted by diskEvicted().
    const std::string dir = freshDir("ecdp_store_disk_cap");
    ResultStore store(dir, ResultStore::kDefaultMemoryCap, 2);
    for (std::uint64_t key : {1, 2, 3}) {
        store.fetchOrAttach(
            key, [](ResultStore::Bytes, const std::string &) {});
        store.complete(key, "d" + std::to_string(key));
    }
    EXPECT_EQ(store.diskEvicted(), 1u);
    EXPECT_FALSE(std::filesystem::exists(
        dir + "/" + ResultStore::entryFileName(1)));
    EXPECT_TRUE(std::filesystem::exists(
        dir + "/" + ResultStore::entryFileName(2)));
    EXPECT_TRUE(std::filesystem::exists(
        dir + "/" + ResultStore::entryFileName(3)));
}

TEST(ResultStore, DiskCapTrimsPreexistingFilesAtStartup)
{
    // A restarted daemon inherits yesterday's spill set: the startup
    // scan seeds the eviction order by file mtime and trims straight
    // down to the cap.
    const std::string dir = freshDir("ecdp_store_disk_scan");
    {
        ResultStore store(dir); // unbounded: leave 3 files behind
        for (std::uint64_t key : {21, 22, 23}) {
            store.fetchOrAttach(
                key, [](ResultStore::Bytes, const std::string &) {});
            store.complete(key, "p" + std::to_string(key));
        }
    }
    // Stamp distinct mtimes so oldest-first is deterministic even on
    // coarse filesystem clocks: 21 oldest, 23 newest.
    const auto now = std::filesystem::file_time_type::clock::now();
    for (std::uint64_t key : {21, 22, 23}) {
        std::filesystem::last_write_time(
            dir + "/" + ResultStore::entryFileName(key),
            now - std::chrono::seconds(10 * (24 - key)));
    }

    ResultStore reopened(dir, ResultStore::kDefaultMemoryCap, 1);
    EXPECT_EQ(reopened.diskEvicted(), 2u);
    EXPECT_FALSE(std::filesystem::exists(
        dir + "/" + ResultStore::entryFileName(21)));
    EXPECT_FALSE(std::filesystem::exists(
        dir + "/" + ResultStore::entryFileName(22)));
    ASSERT_TRUE(reopened.lookup(23));
    EXPECT_EQ(*reopened.lookup(23), "p23");
}

TEST(ResultStore, DiskEvictedEntryMissesAndReleads)
{
    // Evicted from memory AND disk: the key is simply gone, and the
    // next submission re-leads (re-simulates) instead of crashing on
    // a dangling bookkeeping entry.
    const std::string dir = freshDir("ecdp_store_disk_gone");
    ResultStore store(dir, 1, 1);
    for (std::uint64_t key : {31, 32}) {
        store.fetchOrAttach(
            key, [](ResultStore::Bytes, const std::string &) {});
        store.complete(key, "g" + std::to_string(key));
    }
    EXPECT_EQ(store.diskEvicted(), 1u);
    EXPECT_FALSE(store.lookup(31));
    EXPECT_EQ(store.fetchOrAttach(
                  31, [](ResultStore::Bytes, const std::string &) {}),
              ResultStore::Role::Leader);
}

TEST(ResultStore, CorruptEntryRemovalFreesItsDiskCapSlot)
{
    // A corrupt file is removed on load; its bookkeeping slot must
    // free up too, or the cap would evict a healthy file to make
    // room for a ghost.
    const std::string dir = freshDir("ecdp_store_disk_corrupt");
    ResultStore store(dir, 1, 2);
    for (std::uint64_t key : {41, 42}) {
        store.fetchOrAttach(
            key, [](ResultStore::Bytes, const std::string &) {});
        store.complete(key, "c" + std::to_string(key));
    }
    {
        std::ofstream os(dir + "/" + ResultStore::entryFileName(41),
                         std::ios::binary | std::ios::trunc);
        os << "garbage";
    }
    EXPECT_FALSE(store.lookup(41)); // memory-evicted -> disk -> corrupt
    EXPECT_EQ(store.corruptRebuilds(), 1u);

    store.fetchOrAttach(43,
                        [](ResultStore::Bytes, const std::string &) {});
    store.complete(43, "c43");
    // Two files on disk (42, 43) fit the cap: nothing evicted.
    EXPECT_EQ(store.diskEvicted(), 0u);
    EXPECT_TRUE(std::filesystem::exists(
        dir + "/" + ResultStore::entryFileName(42)));
    EXPECT_TRUE(std::filesystem::exists(
        dir + "/" + ResultStore::entryFileName(43)));
}

TEST(ResultStore, FailAllFlightsAbortsEveryWaiter)
{
    ResultStore store;
    std::vector<std::string> errors;
    store.fetchOrAttach(1, [&](ResultStore::Bytes bytes,
                               const std::string &error) {
        EXPECT_FALSE(bytes);
        errors.push_back(error);
    });
    store.fetchOrAttach(1, [&](ResultStore::Bytes,
                               const std::string &error) {
        errors.push_back(error);
    });
    store.fetchOrAttach(2, [&](ResultStore::Bytes,
                               const std::string &error) {
        errors.push_back(error);
    });

    store.failAllFlights("daemon shutting down");
    ASSERT_EQ(errors.size(), 3u);
    for (const std::string &error : errors)
        EXPECT_EQ(error, "daemon shutting down");

    // Nothing was cached; both keys retry as fresh leaders.
    EXPECT_FALSE(store.lookup(1));
    EXPECT_EQ(store.fetchOrAttach(
                  1, [](ResultStore::Bytes, const std::string &) {}),
              ResultStore::Role::Leader);
}

TEST(ResultStore, LookupNeverJoinsAFlight)
{
    ResultStore store;
    store.fetchOrAttach(5,
                        [](ResultStore::Bytes, const std::string &) {});
    EXPECT_FALSE(store.lookup(5)); // in flight, not materialized
    store.complete(5, "done");
    ASSERT_TRUE(store.lookup(5));
    EXPECT_EQ(*store.lookup(5), "done");
}

} // namespace
