// The work-stealing worker-process pool: completion plumbing, crash
// isolation (a dying child surfaces as a failed job, never as a dead
// pool), stealing between skewed shards, and shutdown semantics.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "server/worker_pool.hh"

namespace
{

using namespace ecdp::server;

/** Collects job completions and lets the test block until N. */
class Collector
{
  public:
    WorkerPool::Done done()
    {
        return [this](std::string output, std::string error) {
            std::lock_guard<std::mutex> lock(mutex_);
            outputs.push_back(std::move(output));
            errors.push_back(std::move(error));
            cv_.notify_all();
        };
    }

    void waitFor(std::size_t n)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] { return outputs.size() >= n; });
    }

    std::vector<std::string> outputs;
    std::vector<std::string> errors;

  private:
    std::mutex mutex_;
    std::condition_variable cv_;
};

TEST(WorkerPool, RunsJobsAndDeliversOutput)
{
    WorkerPool pool({"/bin/cat"}, 2);
    Collector collector;
    for (int i = 0; i < 8; ++i)
        pool.submit("job" + std::to_string(i), collector.done());
    collector.waitFor(8);
    EXPECT_EQ(pool.spawned(), 8u);
    std::vector<std::string> sorted = collector.outputs;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(sorted[std::size_t(i)],
                  "job" + std::to_string(i));
    for (const std::string &error : collector.errors)
        EXPECT_EQ(error, "");
}

TEST(WorkerPool, CrashedChildIsIsolated)
{
    // Every job reads a shell script from stdin; one of them
    // segfaults its own process. The pool must report that one job
    // as failed (with the signal) and keep executing the rest.
    WorkerPool pool({"/bin/sh"}, 2);
    Collector collector;
    pool.submit("kill -SEGV $$\n", collector.done());
    for (int i = 0; i < 4; ++i)
        pool.submit("echo ok\n", collector.done());
    collector.waitFor(5);

    std::size_t failed = 0;
    for (std::size_t i = 0; i < 5; ++i) {
        if (!collector.errors[i].empty()) {
            ++failed;
            EXPECT_NE(collector.errors[i].find("signal"),
                      std::string::npos)
                << collector.errors[i];
        } else {
            EXPECT_EQ(collector.outputs[i], "ok\n");
        }
    }
    EXPECT_EQ(failed, 1u);
    EXPECT_EQ(pool.crashed(), 1u);
    EXPECT_EQ(pool.spawned(), 5u);
}

TEST(WorkerPool, FailedJobCarriesExitCodeAndStderr)
{
    WorkerPool pool({"/bin/sh"}, 1);
    Collector collector;
    pool.submit("echo diagnostic >&2; exit 7\n", collector.done());
    collector.waitFor(1);
    EXPECT_NE(collector.errors[0].find("7"), std::string::npos);
    EXPECT_NE(collector.errors[0].find("diagnostic"),
              std::string::npos);
}

TEST(WorkerPool, IdleShardStealsFromLoadedShard)
{
    // Round-robin submission alternates shards 0/1; shard 0's jobs
    // sleep while shard 1's return instantly, so shard 1 drains its
    // own deque and must steal shard 0's backlog to finish the batch
    // quickly.
    WorkerPool pool({"/bin/sh"}, 2);
    Collector collector;
    constexpr int kPairs = 6;
    for (int i = 0; i < kPairs; ++i) {
        pool.submit("sleep 0.3; echo slow\n", collector.done());
        pool.submit("echo fast\n", collector.done());
    }
    collector.waitFor(2 * kPairs);
    EXPECT_GE(pool.stolen(), 1u);
    EXPECT_EQ(pool.spawned(), 2u * kPairs);
}

TEST(WorkerPool, DestructorFailsQueuedJobs)
{
    Collector collector;
    {
        // One shard, blocked on a slow job, with a queue behind it;
        // destruction must fail the queued jobs (not run or leak
        // them) and still deliver every callback exactly once.
        WorkerPool pool({"/bin/sh"}, 1);
        pool.submit("sleep 0.2; echo first\n", collector.done());
        for (int i = 0; i < 3; ++i)
            pool.submit("echo queued\n", collector.done());
        collector.waitFor(1);
    }
    ASSERT_EQ(collector.outputs.size(), 4u);
    EXPECT_EQ(collector.outputs[0], "first\n");
    // The shard may legitimately pop one more job before the
    // destructor drains the deque, but at least two of the three
    // queued jobs must be failed, and every callback must fire.
    std::size_t shutDown = 0;
    for (std::size_t i = 1; i < 4; ++i) {
        if (collector.errors[i].find("shut down") !=
            std::string::npos) {
            ++shutDown;
        } else {
            EXPECT_EQ(collector.outputs[i], "queued\n");
        }
    }
    EXPECT_GE(shutDown, 2u);
}

TEST(WorkerPool, ExplicitStopIsIdempotentAndFailsLateSubmits)
{
    // An owner can quiesce the pool explicitly (the daemon does this
    // in stop(), while the state its callbacks touch is still
    // alive); a second stop and post-stop submits are harmless.
    WorkerPool pool({"/bin/sh"}, 1);
    Collector collector;
    pool.submit("sleep 0.2; echo ran\n", collector.done());
    for (int i = 0; i < 2; ++i)
        pool.submit("echo queued\n", collector.done());
    collector.waitFor(1);
    pool.stop();
    ASSERT_EQ(collector.outputs.size(), 3u);
    pool.stop(); // idempotent: no double callbacks, no deadlock
    ASSERT_EQ(collector.outputs.size(), 3u);

    pool.submit("echo late\n", collector.done());
    collector.waitFor(4);
    EXPECT_NE(collector.errors[3].find("shut down"),
              std::string::npos);
    // Every job either ran or was failed — exactly one callback
    // each, none lost.
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_TRUE(collector.errors[i].empty() !=
                    collector.outputs[i].empty())
            << i;
    }
}

TEST(WorkerPool, QueueDepthDrainsToZero)
{
    WorkerPool pool({"/bin/cat"}, 2);
    Collector collector;
    for (int i = 0; i < 6; ++i)
        pool.submit("x", collector.done());
    collector.waitFor(6);
    // All callbacks delivered implies nothing left queued.
    EXPECT_EQ(pool.queued(), 0u);
}

} // namespace
