/**
 * @file
 * Golden-stats regression: the full RunStats JSON of three small
 * deterministic runs is pinned under tests/golden/ and compared
 * field by field. Any behavioural change to the simulator — counter
 * drift, a new accounting site, a changed threshold — shows up as a
 * named-field diff here before it shows up as a mysterious shift in
 * a paper figure.
 *
 * Number comparison uses the parser's source text, so even a change
 * below double precision in a 64-bit counter fails loudly.
 * Regenerate after an intentional change with tools/update_golden.sh.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "compiler/profiling_compiler.hh"
#include "sim/experiment.hh"
#include "sim/simulator.hh"
#include "stats/json.hh"
#include "workloads/workload.hh"

#ifndef ECDP_GOLDEN_DIR
#error "ECDP_GOLDEN_DIR must point at tests/golden"
#endif

namespace ecdp
{
namespace
{

struct GoldenCase
{
    const char *bench;
    const char *config;
    const char *file;
};

constexpr GoldenCase kCases[] = {
    {"health", "baseline", "health_baseline.json"},
    {"mst", "cdp+throttle", "mst_cdp_throttle.json"},
    {"bisort", "full", "bisort_full.json"},
};

SystemConfig
goldenConfig(const std::string &config, const HintTable &hints)
{
    // Mirrors ecdpsim --config so tools/update_golden.sh regenerates
    // byte-identical files through the command-line driver.
    if (config == "baseline")
        return configs::baseline();
    if (config == "cdp+throttle")
        return configs::streamCdpThrottled();
    if (config == "full")
        return configs::fullProposal(&hints);
    throw std::runtime_error("unknown golden config " + config);
}

std::string
generate(const GoldenCase &c)
{
    HintTable hints;
    if (std::string(c.config) == "full") {
        hints = ProfilingCompiler::profile(
            buildWorkload(c.bench, InputSet::Train));
    }
    SystemConfig cfg = goldenConfig(c.config, hints);
    RunStats stats =
        simulate(cfg, buildWorkload(c.bench, InputSet::Train));
    std::ostringstream os;
    writeRunStatsJson(os, stats, c.config);
    return os.str();
}

void
compareValues(const JsonValue &golden, const JsonValue &fresh,
              const std::string &path)
{
    ASSERT_EQ(golden.kind(), fresh.kind()) << "at " << path;
    switch (golden.kind()) {
    case JsonValue::Kind::Null:
        break;
    case JsonValue::Kind::Bool:
        EXPECT_EQ(golden.asBool(), fresh.asBool()) << "at " << path;
        break;
    case JsonValue::Kind::Number:
        EXPECT_EQ(golden.numberText(), fresh.numberText())
            << "at " << path;
        break;
    case JsonValue::Kind::String:
        EXPECT_EQ(golden.asString(), fresh.asString())
            << "at " << path;
        break;
    case JsonValue::Kind::Array: {
        const auto &a = golden.asArray();
        const auto &b = fresh.asArray();
        ASSERT_EQ(a.size(), b.size()) << "at " << path;
        for (std::size_t i = 0; i < a.size(); ++i) {
            compareValues(a[i], b[i],
                          path + "[" + std::to_string(i) + "]");
        }
        break;
    }
    case JsonValue::Kind::Object: {
        const auto &a = golden.asObject();
        const auto &b = fresh.asObject();
        for (const auto &[key, value] : a) {
            auto it = b.find(key);
            if (it == b.end()) {
                ADD_FAILURE()
                    << "field removed: " << path << "." << key;
                continue;
            }
            compareValues(value, it->second, path + "." + key);
        }
        for (const auto &[key, value] : b) {
            (void)value;
            if (a.find(key) == a.end()) {
                ADD_FAILURE() << "field added: " << path << "." << key
                              << " (run tools/update_golden.sh if "
                                 "intentional)";
            }
        }
        break;
    }
    }
}

class GoldenStatsTest : public ::testing::TestWithParam<GoldenCase>
{
};

TEST_P(GoldenStatsTest, MatchesPinnedJson)
{
    const GoldenCase &c = GetParam();
    const std::string path =
        std::string(ECDP_GOLDEN_DIR) + "/" + c.file;
    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " — run tools/update_golden.sh";
    std::stringstream ss;
    ss << in.rdbuf();

    JsonValue golden = parseJson(ss.str());
    JsonValue fresh = parseJson(generate(c));
    compareValues(golden, fresh, std::string(c.bench) + ":" +
                                     c.config);
}

INSTANTIATE_TEST_SUITE_P(
    TinyRuns, GoldenStatsTest, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<GoldenCase> &info) {
        std::string name = std::string(info.param.bench) + "_" +
                           info.param.config;
        for (char &ch : name) {
            if (ch == '+' || ch == '-')
                ch = '_';
        }
        return name;
    });

// ---------------------------------------------------------------------
// Differential golden: an explicit cfg.engines stack equal to the
// legacy derivation must reproduce the legacy two-slot run
// byte-for-byte. Together with the pinned files above, this proves
// explicit stacks reproduce the pre-registry simulator exactly over
// the full workload x config matrix (plus the 64 B block edge case).
// ---------------------------------------------------------------------

struct DifferentialCase
{
    const char *bench;
    const char *config;
};

constexpr DifferentialCase kDifferentialCases[] = {
    {"health", "baseline"},      {"mst", "cdp+throttle"},
    {"bisort", "full"},          {"perimeter", "ecdp+fdp"},
    {"health", "cdp+pab"},       {"mst", "dbp"},
    {"bisort", "markov"},        {"health", "side-buffer"},
    {"mst", "noprefetch"},       {"health", "small-blocks"},
};

const HintTable &
trainHints(const std::string &bench)
{
    static std::map<std::string, HintTable> cache;
    auto it = cache.find(bench);
    if (it == cache.end()) {
        it = cache
                 .emplace(bench,
                          ProfilingCompiler::profile(
                              buildWorkload(bench, InputSet::Train)))
                 .first;
    }
    return it->second;
}

SystemConfig
differentialConfig(const std::string &config, const std::string &bench)
{
    if (config == "baseline")
        return configs::baseline();
    if (config == "cdp+throttle")
        return configs::streamCdpThrottled();
    if (config == "full")
        return configs::fullProposal(&trainHints(bench));
    if (config == "ecdp+fdp")
        return configs::streamEcdpFdp(&trainHints(bench));
    if (config == "cdp+pab")
        return configs::streamCdpPab();
    if (config == "dbp")
        return configs::streamDbp();
    if (config == "markov")
        return configs::streamMarkov();
    if (config == "side-buffer") {
        SystemConfig cfg = configs::streamCdp();
        cfg.idealNoPollution = true;
        return cfg;
    }
    if (config == "noprefetch")
        return configs::noPrefetch();
    if (config == "small-blocks") {
        SystemConfig cfg = configs::baseline();
        cfg.l1BlockBytes = 64;
        cfg.l2BlockBytes = 64;
        return cfg;
    }
    throw std::runtime_error("unknown differential config " + config);
}

class EngineStackDifferentialTest
    : public ::testing::TestWithParam<DifferentialCase>
{
};

TEST_P(EngineStackDifferentialTest, ExplicitStackIsByteIdentical)
{
    const DifferentialCase &c = GetParam();
    const Workload workload = buildWorkload(c.bench, InputSet::Train);

    const SystemConfig legacy = differentialConfig(c.config, c.bench);
    SystemConfig explicitStack = legacy;
    explicitStack.engines = effectiveEngineStack(legacy);

    auto json = [&](const SystemConfig &cfg) {
        RunStats stats = simulate(cfg, workload);
        std::ostringstream os;
        writeRunStatsJson(os, stats, c.config);
        return os.str();
    };
    EXPECT_EQ(json(legacy), json(explicitStack));
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, EngineStackDifferentialTest,
    ::testing::ValuesIn(kDifferentialCases),
    [](const ::testing::TestParamInfo<DifferentialCase> &info) {
        std::string name = std::string(info.param.bench) + "_" +
                           info.param.config;
        for (char &ch : name) {
            if (ch == '+' || ch == '-')
                ch = '_';
        }
        return name;
    });

} // namespace
} // namespace ecdp
