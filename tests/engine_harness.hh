/**
 * @file
 * Engine-conformance harness: per-engine fixtures (a config plus a
 * synthetic workload chosen to make that engine generate traffic), a
 * deterministic hook-script driver for exercising a PrefetchEngine in
 * isolation, and the conservation-identity checker generalised to an
 * arbitrary engine stack.
 *
 * Every name registered in the EngineRegistry must have a row in
 * fixtureTable() below — test_engine_conformance.cc instantiates the
 * full battery from the registry's name list and fails loudly on a
 * missing fixture, and tools/simlint greps this table to enforce the
 * same rule statically (rule: engine-conformance).
 */

#ifndef ECDP_TESTS_ENGINE_HARNESS_HH
#define ECDP_TESTS_ENGINE_HARNESS_HH

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "compiler/profiling_compiler.hh"
#include "obs/metrics.hh"
#include "prefetch/engine.hh"
#include "prefetch/engines.hh"
#include "sim/config.hh"
#include "trace/trace.hh"

namespace ecdp
{
namespace harness
{

/** Which synthetic workload a fixture drives. */
enum class WorkloadKind : std::uint8_t
{
    Sequential,     ///< unit-stride sweep (stream / GHB / DSPatch)
    PointerChase,   ///< circular linked list (CDP / ECDP / DBP)
    IrregularRepeat ///< repeated irregular block sequence (Markov/ISB)
};

/**
 * One row per registered engine. simlint's engine-conformance rule
 * greps for `{"<name>",` in this table, so keep each entry on its own
 * line in that exact shape.
 */
struct FixtureSpec
{
    const char *engine;
    WorkloadKind kind;
    /** False only for engines that by contract never prefetch. */
    bool expectsTraffic;
};

inline const std::vector<FixtureSpec> &
fixtureTable()
{
    static const std::vector<FixtureSpec> table = {
        {"none", WorkloadKind::Sequential, false},
        {"stream", WorkloadKind::Sequential, true},
        {"ghb", WorkloadKind::Sequential, true},
        {"cdp", WorkloadKind::PointerChase, true},
        {"ecdp", WorkloadKind::PointerChase, true},
        {"dbp", WorkloadKind::PointerChase, true},
        {"markov", WorkloadKind::IrregularRepeat, true},
        {"isb", WorkloadKind::IrregularRepeat, true},
        {"dspatch", WorkloadKind::Sequential, true},
    };
    return table;
}

/**
 * A unit-stride sweep of 256 KB with one load PC. 64 B steps touch
 * every block for any geometry; the footprint spans enough 2 KB
 * regions to retire DSPatch's 64-entry page buffer many times over.
 */
inline Workload
sequentialWorkload()
{
    TraceBuilder tb("harness-seq");
    const Addr base = tb.heap().allocate(4096 * 64, 64);
    tb.beginTimed();
    for (unsigned i = 0; i < 4096; ++i)
        tb.load(0x1100, base + i * 64, 4, kNoDep, false, 1);
    return std::move(tb).finish();
}

/**
 * A circular singly-linked list of 512 64-byte nodes, chased twice.
 * Every node's next pointer targets the same heap, so CDP's
 * compare-bits test accepts them; each hop is a 4-byte dependent
 * pointer load, which is exactly what DBP correlates on.
 */
inline Workload
pointerChaseWorkload()
{
    constexpr unsigned kNodes = 512;
    TraceBuilder tb("harness-chase");
    std::vector<Addr> nodes;
    nodes.reserve(kNodes);
    for (unsigned i = 0; i < kNodes; ++i)
        nodes.push_back(tb.heap().allocate(64, 64));
    for (unsigned i = 0; i < kNodes; ++i)
        tb.mem().writePointer(nodes[i], nodes[(i + 1) % kNodes]);
    tb.beginTimed();
    Addr p = nodes[0];
    TraceRef dep = kNoDep;
    for (unsigned pass = 0; pass < 2; ++pass) {
        for (unsigned i = 0; i < kNodes; ++i) {
            const TraceRef ref = tb.load(0x2100, p, 4, dep,
                                         /*is_lds=*/true, 2);
            p = tb.mem().readPointer(p);
            dep = ref;
        }
    }
    return std::move(tb).finish();
}

/**
 * 512 blocks spread one per 4 KB, visited in a fixed pseudo-random
 * permutation, three passes. The first pass trains the temporal /
 * miss-correlation tables; later passes replay the identical miss
 * sequence (the page-stride aliases enough L2 sets that the repeats
 * still miss), so Markov and ISB predict from their history.
 */
inline Workload
irregularRepeatWorkload()
{
    constexpr unsigned kSlots = 512;
    TraceBuilder tb("harness-irregular");
    const Addr base = tb.heap().allocate(kSlots * 4096, 4096);

    // Fixed LCG-driven Fisher-Yates permutation: deterministic across
    // platforms (no std::random dependence on libstdc++ versions).
    std::vector<std::uint32_t> perm(kSlots);
    for (unsigned i = 0; i < kSlots; ++i)
        perm[i] = i;
    std::uint64_t lcg = 0x2545f4914f6cdd1dull;
    for (unsigned i = kSlots - 1; i > 0; --i) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        const unsigned j =
            static_cast<unsigned>((lcg >> 33) % (i + 1));
        std::swap(perm[i], perm[j]);
    }

    tb.beginTimed();
    for (unsigned pass = 0; pass < 3; ++pass) {
        for (unsigned i = 0; i < kSlots; ++i) {
            tb.load(0x3100, base + perm[i] * 4096, 4, kNoDep,
                    /*is_lds=*/true, 1);
        }
    }
    return std::move(tb).finish();
}

/**
 * A single-engine stack fixture for @p engine: config, workload, and
 * (for hinted engines) the compiler hints the config points at.
 */
struct EngineFixture
{
    std::string engine;
    SystemConfig cfg;
    Workload workload;
    /** Keeps cfg.hints alive (only set for hinted engines). */
    std::shared_ptr<HintTable> hints;
    bool expectsTraffic = true;
};

inline const FixtureSpec &
fixtureSpec(const std::string &engine)
{
    for (const FixtureSpec &spec : fixtureTable()) {
        if (engine == spec.engine)
            return spec;
    }
    throw std::logic_error(
        "no conformance fixture for engine \"" + engine +
        "\" — add a row to fixtureTable() in tests/engine_harness.hh");
}

inline Workload
buildFixtureWorkload(WorkloadKind kind)
{
    switch (kind) {
    case WorkloadKind::Sequential:
        return sequentialWorkload();
    case WorkloadKind::PointerChase:
        return pointerChaseWorkload();
    case WorkloadKind::IrregularRepeat:
        return irregularRepeatWorkload();
    }
    throw std::logic_error("unreachable workload kind");
}

inline EngineFixture
makeEngineFixture(const std::string &engine)
{
    const FixtureSpec &spec = fixtureSpec(engine);
    EngineFixture fixture;
    fixture.engine = engine;
    fixture.expectsTraffic = spec.expectsTraffic;
    fixture.workload = buildFixtureWorkload(spec.kind);
    fixture.cfg.engines = {engine};
    fixture.cfg.throttle = ThrottleKind::None;
    if (engine == "ecdp") {
        fixture.hints = std::make_shared<HintTable>(
            ProfilingCompiler::profile(fixture.workload));
        fixture.cfg.hints = fixture.hints.get();
    }
    return fixture;
}

/** EngineContext over a default 128 B geometry (hints optional). */
inline EngineContext
defaultEngineContext(const HintTable *hints = nullptr)
{
    EngineContext ctx;
    ctx.hints = hints;
    return ctx;
}

/** Hints matching driveHookScript()'s fill-scan PC: every positive
 *  slot of loads at 0x300 is marked beneficial, so the hinted CDP
 *  engine emits requests under the script too. */
inline const HintTable &
scriptHints()
{
    static const HintTable table = [] {
        HintTable t;
        PrefetchHint &hint = t.entry(0x300);
        for (int slot = 0; slot < 32; ++slot)
            hint.set(slot);
        return t;
    }();
    return table;
}

/** A (blockAddr, depth) fingerprint of one emitted request. */
using RequestLog = std::vector<std::pair<std::uint64_t, unsigned>>;

/**
 * Drive every PrefetchEngine hook with a fixed access script and
 * record the emitted requests. @p per_call is invoked after each
 * triggering hook with the number of requests that call appended —
 * the degree-cap test asserts it against maxRequestsPerTrigger().
 */
template <typename PerCallFn>
inline RequestLog
driveHookScript(PrefetchEngine &engine, PerCallFn per_call)
{
    const BlockGeometry geom{128};
    constexpr std::uint64_t kHeap = 0x50000000;

    RequestLog log;
    std::vector<PrefetchRequest> out;
    auto call = [&](auto &&hook) {
        const std::size_t before = out.size();
        hook(out);
        for (std::size_t i = before; i < out.size(); ++i) {
            log.emplace_back(out[i].blockAddr.raw(),
                             unsigned{out[i].depth});
        }
        per_call(out.size() - before);
    };
    auto miss = [](Addr pc, Addr addr, bool is_lds) {
        TraceEntry e;
        e.pc = pc;
        e.vaddr = addr;
        e.kind = AccessKind::Load;
        e.isLds = is_lds;
        return e;
    };

    // Unit-stride misses (streams, deltas, spatial patterns).
    for (unsigned i = 0; i < 32; ++i) {
        call([&](std::vector<PrefetchRequest> &o) {
            engine.onDemandMiss(miss(0x100, kHeap + i * 128, false),
                                o);
        });
    }
    // A second stream at a 3-block stride. Its first region aliases
    // the sweep's first region in DSPatch's 64-entry page buffer
    // (both are multiples of 64 x 2 KB), so the displaced sweep
    // region retires into the SPT under its trigger PC.
    for (unsigned i = 0; i < 16; ++i) {
        call([&](std::vector<PrefetchRequest> &o) {
            engine.onDemandMiss(
                miss(0x104, kHeap + 0x100000 + i * 384, false), o);
        });
    }
    // Revisit a third aliasing region with the sweep's PC: spatial
    // prefetchers replay the learned dense pattern for the new region.
    for (unsigned i = 0; i < 16; ++i) {
        call([&](std::vector<PrefetchRequest> &o) {
            engine.onDemandMiss(miss(0x100, kHeap + 0x40000 + i * 128,
                                     false),
                                o);
        });
    }
    // An irregular block sequence, repeated (temporal correlation).
    static const unsigned kSeq[] = {7,  2,  11, 5,  3,  13, 1,  9,
                                    15, 4,  12, 6,  14, 0,  10, 8};
    for (unsigned pass = 0; pass < 2; ++pass) {
        for (unsigned s : kSeq) {
            call([&](std::vector<PrefetchRequest> &o) {
                engine.onDemandMiss(
                    miss(0x108, kHeap + 0x200000 + s * 128, true), o);
            });
        }
    }
    // Store misses and prefetch hits.
    for (unsigned i = 0; i < 8; ++i) {
        call([&](std::vector<PrefetchRequest> &o) {
            engine.onStoreMiss(kHeap + 0x300000 + i * 128, o);
        });
    }
    for (unsigned i = 0; i < 4; ++i) {
        call([&](std::vector<PrefetchRequest> &o) {
            engine.onPrefetchHit(kHeap + i * 128, o);
        });
    }
    // Dependent pointer-load pairs: each load's address equals the
    // previous load's completed value (DBP's producer/consumer idiom).
    for (unsigned i = 0; i < 8; ++i) {
        engine.onLoadIssue(0x200, kHeap + 0x400000 + i * 64);
        call([&](std::vector<PrefetchRequest> &o) {
            engine.onLoadComplete(0x200, kHeap + 0x400000 + (i + 1) * 64,
                                  o);
        });
    }
    // Fill scans over a block of plausible same-heap pointers.
    if (engine.wantsFillScan()) {
        std::vector<std::uint8_t> bytes(geom.blockBytes(), 0);
        for (unsigned slot = 0; slot * 4 < bytes.size(); ++slot) {
            const std::uint32_t value =
                static_cast<std::uint32_t>(kHeap + 0x500000 +
                                           slot * 128);
            for (unsigned b = 0; b < 4; ++b) {
                bytes[slot * 4 + b] =
                    static_cast<std::uint8_t>(value >> (8 * b));
            }
        }
        for (unsigned i = 0; i < 4; ++i) {
            ContentDirectedPrefetcher::ScanContext ctx;
            ctx.demandFill = true;
            ctx.loadPc = 0x300;
            ctx.accessByteOffset = 0;
            ctx.fillDepth = 0;
            call([&](std::vector<PrefetchRequest> &o) {
                engine.onFill(kHeap + 0x500000 + i * 128,
                              bytes.data(), ctx, o);
            });
        }
    }
    return log;
}

/**
 * Conservation identities for one core's engine stack, over any list
 * of instance names (generalises test_accounting.cc's two-slot
 * checker; that file keeps the legacy literal-scope version so the
 * default stack's metric names stay pinned).
 */
inline void
checkEngineIdentities(const obs::MetricRegistry &m, unsigned core,
                      const std::vector<std::string> &instances,
                      const std::string &context)
{
    const std::string root = "core" + std::to_string(core) + ".";
    auto v = [&](const std::string &path) {
        return m.value(root + path);
    };

    for (const std::string &instance : instances) {
        const std::string pf = "pf." + instance + ".";
        SCOPED_TRACE(context + " " + root + pf);

        EXPECT_EQ(v(pf + "generated"),
                  v(pf + "queued") + v(pf + "dropped.queue_full"));
        EXPECT_EQ(v(pf + "queued"),
                  v(pf + "issued") + v(pf + "dropped.source_disabled") +
                      v(pf + "dropped.cached") +
                      v(pf + "dropped.in_flight") +
                      v(pf + "dropped.side_buffer") +
                      v(pf + "dropped.hw_filter") +
                      v(pf + "in_queue_end"));
        EXPECT_EQ(v(pf + "issued"),
                  v(pf + "filled") + v(pf + "in_flight_end"));
        EXPECT_EQ(v(pf + "filled"),
                  v(pf + "used") + v(pf + "consumed_late") +
                      v(pf + "evicted_unused") +
                      v(pf + "resident_unused_end") +
                      v(pf + "side_resident_end"));
        EXPECT_LE(v(pf + "side_used"), v(pf + "used"));
        EXPECT_EQ(v(pf + "useful_latency_count"), v(pf + "used"));
    }

    {
        SCOPED_TRACE(context + " " + root + "l2");
        EXPECT_EQ(v("l2.demand_accesses"),
                  v("l2.demand_hits") + v("l2.mshr_merges") +
                      v("l2.side_hits") + v("l2.ideal_hits") +
                      v("l2.demand_misses_true"));
        EXPECT_EQ(v("l2.demand_misses"),
                  v("l2.demand_misses_true") +
                      v("l2.demand_misses_late"));
    }
    {
        SCOPED_TRACE(context + " " + root + "mshr");
        EXPECT_EQ(v("mshr.allocations"),
                  v("mshr.releases") + v("mshr.in_flight_end"));
    }
}

} // namespace harness
} // namespace ecdp

#endif // ECDP_TESTS_ENGINE_HARNESS_HH
