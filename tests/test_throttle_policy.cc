/**
 * @file
 * ThrottlePolicy registry, conformance and byte-identity tests.
 *
 *  - PolicyRegistry semantics (builtins, duplicate add, unknown
 *    create) — mirrors the PR-7 EngineRegistry tests.
 *  - A conformance battery instantiated over every registered policy
 *    (creatable, deterministic over a scripted snapshot sequence,
 *    reset() restores fresh behaviour, serialized state parses).
 *  - A differential golden matrix: routing the legacy ThrottleKind
 *    configurations through an explicit `throttlePolicy` override
 *    must reproduce the pre-policy simulator byte-for-byte over the
 *    full workload x config matrix (plus the 64 B block edge case).
 *  - Seeded-determinism tests for tabular-rl: equal seeds give
 *    byte-identical runs, different seeds diverge, and the seed
 *    folds into configHash.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "compiler/profiling_compiler.hh"
#include "sim/experiment.hh"
#include "sim/simulator.hh"
#include "stats/json.hh"
#include "throttle/tabular_rl_policy.hh"
#include "throttle/throttle_policy.hh"
#include "workloads/workload.hh"

namespace ecdp
{
namespace
{

// ---------------------------------------------------------------
// Per-policy fixture table. The simlint `policy-conformance` rule
// greps these rows: every registered policy must have one, so a new
// policy cannot dodge the battery below.
// ---------------------------------------------------------------

enum class PolicyProbe { RuleBased, Learned };

struct PolicyFixtureRow
{
    const char *policy;
    PolicyProbe probe;
};

constexpr PolicyFixtureRow kPolicyFixtures[] = {
    {"static", PolicyProbe::RuleBased},
    {"coordinated", PolicyProbe::RuleBased},
    {"fdp", PolicyProbe::RuleBased},
    {"tabular-rl", PolicyProbe::Learned},
};

const PolicyFixtureRow &
fixtureRow(const std::string &policy)
{
    for (const PolicyFixtureRow &row : kPolicyFixtures) {
        if (policy == row.policy)
            return row;
    }
    throw std::logic_error("no policy fixture row for " + policy);
}

// ---------------------------------------------------------------
// Registry semantics.
// ---------------------------------------------------------------

TEST(PolicyRegistry_, ContainsAllBuiltins)
{
    PolicyRegistry &reg = PolicyRegistry::instance();
    EXPECT_TRUE(reg.contains("static"));
    EXPECT_TRUE(reg.contains("coordinated"));
    EXPECT_TRUE(reg.contains("fdp"));
    EXPECT_TRUE(reg.contains("tabular-rl"));
    EXPECT_FALSE(reg.contains("nonsense"));
}

TEST(PolicyRegistry_, NamesAreSorted)
{
    const std::vector<std::string> names =
        PolicyRegistry::instance().names();
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
    EXPECT_EQ(names.size(), std::size(kPolicyFixtures));
}

TEST(PolicyRegistry_, DuplicateAddThrows)
{
    EXPECT_THROW(PolicyRegistry::instance().add(
                     "coordinated",
                     [](const PolicyContext &)
                         -> std::unique_ptr<ThrottlePolicy> {
                         return nullptr;
                     }),
                 std::logic_error);
}

TEST(PolicyRegistry_, UnknownCreateListsKnownNames)
{
    try {
        PolicyRegistry::instance().create("no-such-policy",
                                          PolicyContext{});
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("no-such-policy"), std::string::npos);
        EXPECT_NE(what.find("coordinated"), std::string::npos);
        EXPECT_NE(what.find("tabular-rl"), std::string::npos);
    }
}

// ---------------------------------------------------------------
// Conformance battery over every registered policy.
// ---------------------------------------------------------------

/** Deterministic scripted feedback history: `intervals` interval
 *  boundaries of a two-slot stack with LCG-varied snapshots. Returns
 *  the flat decision sequence the policy produced. */
std::vector<ThrottleDecision>
driveScript(ThrottlePolicy &policy, unsigned intervals = 64)
{
    std::uint64_t lcg = 99991;
    auto next01 = [&lcg] {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<double>(lcg >> 40) /
               static_cast<double>(1 << 24);
    };
    std::vector<ThrottleDecision> decisions;
    for (unsigned n = 0; n < intervals; ++n) {
        std::vector<FeedbackSnapshot> snaps(2);
        for (FeedbackSnapshot &s : snaps) {
            s.accuracy = next01();
            s.coverage = next01() * 0.5;
            s.lateness = next01() * 0.3;
            s.pollution = next01() * 0.1;
            s.anyPrefetches = next01() > 0.2;
        }
        IntervalContext ictx;
        ictx.cycle = Cycle{(n + 1) * 10000ull};
        ictx.deltaCycles = 10000;
        ictx.deltaInstructions =
            static_cast<std::uint64_t>(next01() * 20000.0);
        ictx.deltaBusTransactions =
            static_cast<std::uint64_t>(next01() * 600.0);
        for (std::size_t slot = 0; slot < snaps.size(); ++slot)
            decisions.push_back(
                policy.onIntervalEnd(slot, snaps, ictx));
    }
    return decisions;
}

class PolicyConformance : public ::testing::TestWithParam<std::string>
{
  protected:
    std::unique_ptr<ThrottlePolicy> create() const
    {
        return PolicyRegistry::instance().create(GetParam(),
                                                 PolicyContext{});
    }
};

TEST_P(PolicyConformance, RegistryCreatesWellFormedPolicy)
{
    std::unique_ptr<ThrottlePolicy> policy = create();
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), GetParam());
    // The fixture table must know the policy (simlint pins this too).
    EXPECT_NO_THROW(fixtureRow(GetParam()));
}

TEST_P(PolicyConformance, DeterministicOverScriptedHistory)
{
    std::unique_ptr<ThrottlePolicy> a = create();
    std::unique_ptr<ThrottlePolicy> b = create();
    EXPECT_EQ(driveScript(*a), driveScript(*b));
}

TEST_P(PolicyConformance, ResetRestoresFreshBehaviour)
{
    std::unique_ptr<ThrottlePolicy> fresh = create();
    const std::vector<ThrottleDecision> expected =
        driveScript(*fresh);

    std::unique_ptr<ThrottlePolicy> recycled = create();
    driveScript(*recycled);
    recycled->reset();
    EXPECT_EQ(driveScript(*recycled), expected)
        << GetParam() << " carries state across reset()";
}

TEST_P(PolicyConformance, SerializedStateIsValidJsonOrEmpty)
{
    std::unique_ptr<ThrottlePolicy> policy = create();
    driveScript(*policy);
    for (const std::string &blob :
         {policy->intervalStateJson(), policy->stateJson()}) {
        if (blob.empty())
            continue;
        JsonValue parsed = parseJson(blob);
        EXPECT_EQ(parsed.kind(), JsonValue::Kind::Object);
    }
    // Rule policies must serialize nothing: the pinned goldens depend
    // on default-policy JSON keeping its exact legacy shape.
    if (fixtureRow(GetParam()).probe == PolicyProbe::RuleBased) {
        EXPECT_TRUE(policy->intervalStateJson().empty());
        EXPECT_TRUE(policy->stateJson().empty());
    } else {
        EXPECT_FALSE(policy->stateJson().empty());
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllRegisteredPolicies, PolicyConformance,
    ::testing::ValuesIn(PolicyRegistry::instance().names()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &ch : name) {
            if (ch == '-')
                ch = '_';
        }
        return name;
    });

/** Every registry entry must have a fixture row, and vice versa. */
TEST(PolicyConformanceCoverage, FixtureTableMatchesRegistry)
{
    const std::vector<std::string> names =
        PolicyRegistry::instance().names();
    for (const std::string &name : names)
        EXPECT_NO_THROW(fixtureRow(name)) << name;
    EXPECT_EQ(std::size(kPolicyFixtures), names.size())
        << "stale fixture row for an unregistered policy";
}

// ---------------------------------------------------------------
// Differential golden matrix: explicit `throttlePolicy` overrides
// must reproduce the legacy ThrottleKind-routed runs byte-for-byte.
// Cases mirror the PR-7 engine-stack differential matrix (9 cases +
// the 64 B block edge case).
// ---------------------------------------------------------------

struct DifferentialCase
{
    const char *bench;
    const char *config;
};

constexpr DifferentialCase kDifferentialCases[] = {
    {"health", "baseline"},      {"mst", "cdp+throttle"},
    {"bisort", "full"},          {"perimeter", "ecdp+fdp"},
    {"health", "cdp+pab"},       {"mst", "dbp"},
    {"bisort", "markov"},        {"health", "side-buffer"},
    {"mst", "noprefetch"},       {"health", "small-blocks"},
};

const HintTable &
trainHints(const std::string &bench)
{
    static std::map<std::string, HintTable> cache;
    auto it = cache.find(bench);
    if (it == cache.end()) {
        it = cache
                 .emplace(bench,
                          ProfilingCompiler::profile(
                              buildWorkload(bench, InputSet::Train)))
                 .first;
    }
    return it->second;
}

SystemConfig
differentialConfig(const std::string &config, const std::string &bench)
{
    if (config == "baseline")
        return configs::baseline();
    if (config == "cdp+throttle")
        return configs::streamCdpThrottled();
    if (config == "full")
        return configs::fullProposal(&trainHints(bench));
    if (config == "ecdp+fdp")
        return configs::streamEcdpFdp(&trainHints(bench));
    if (config == "cdp+pab")
        return configs::streamCdpPab();
    if (config == "dbp")
        return configs::streamDbp();
    if (config == "markov")
        return configs::streamMarkov();
    if (config == "side-buffer") {
        SystemConfig cfg = configs::streamCdp();
        cfg.idealNoPollution = true;
        return cfg;
    }
    if (config == "noprefetch")
        return configs::noPrefetch();
    if (config == "small-blocks") {
        SystemConfig cfg = configs::baseline();
        cfg.l1BlockBytes = 64;
        cfg.l2BlockBytes = 64;
        return cfg;
    }
    throw std::runtime_error("unknown differential config " + config);
}

class ThrottlePolicyDifferentialTest
    : public ::testing::TestWithParam<DifferentialCase>
{
};

TEST_P(ThrottlePolicyDifferentialTest, ExplicitPolicyIsByteIdentical)
{
    const DifferentialCase &c = GetParam();
    const Workload workload = buildWorkload(c.bench, InputSet::Train);

    const SystemConfig legacy = differentialConfig(c.config, c.bench);
    SystemConfig explicit_policy = legacy;
    explicit_policy.throttlePolicy = effectiveThrottlePolicy(legacy);
    // The policy override carries the whole level-decision behaviour,
    // so the kind can drop to None — except for PAB, whose enable-bit
    // selector stays keyed on the kind by design.
    if (legacy.throttle != ThrottleKind::Pab)
        explicit_policy.throttle = ThrottleKind::None;

    auto json = [&](const SystemConfig &cfg) {
        RunStats stats = simulate(cfg, workload);
        std::ostringstream os;
        writeRunStatsJson(os, stats, c.config);
        return os.str();
    };
    EXPECT_EQ(json(legacy), json(explicit_policy));
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ThrottlePolicyDifferentialTest,
    ::testing::ValuesIn(kDifferentialCases),
    [](const ::testing::TestParamInfo<DifferentialCase> &info) {
        std::string name = std::string(info.param.bench) + "_" +
                           info.param.config;
        for (char &ch : name) {
            if (ch == '+' || ch == '-')
                ch = '_';
        }
        return name;
    });

// ---------------------------------------------------------------
// Tabular-RL: discretization corners, seeded determinism, stats
// plumbing, and the configHash fold.
// ---------------------------------------------------------------

IntervalContext
busContext(std::uint64_t bus, std::uint64_t cycles = 10000)
{
    IntervalContext ictx;
    ictx.cycle = Cycle{cycles};
    ictx.deltaCycles = cycles;
    ictx.deltaBusTransactions = bus;
    return ictx;
}

FeedbackSnapshot
rlSnap(double accuracy, double coverage)
{
    FeedbackSnapshot s;
    s.accuracy = accuracy;
    s.coverage = coverage;
    s.anyPrefetches = true;
    return s;
}

TEST(TabularRlPolicyTest, DiscretizeCoversEncodingCorners)
{
    TabularRlPolicy policy{PolicyContext{}};
    // Defaults: aLow 0.4, aHigh 0.7, tCoverage 0.2; bw cuts at
    // 8/24/48 transactions per kilocycle. State index is
    // (acc * 4 + cov) * 4 + bw.
    EXPECT_EQ(policy.discretize(rlSnap(0.0, 0.0), busContext(0)), 0u);
    // acc High (2), cov >= 2T (3), bw saturated (3) -> last state.
    EXPECT_EQ(policy.discretize(rlSnap(0.9, 0.5), busContext(1000)),
              TabularRlPolicy::kStates - 1);
    // acc Medium (1), cov in [T/2, T) (1), bw light (1).
    EXPECT_EQ(policy.discretize(rlSnap(0.5, 0.15), busContext(100)),
              (1u * 4 + 1) * 4 + 1);
    // Threshold edges are half-open: accuracy aHigh is High, coverage
    // exactly T lands in bucket 2, bus exactly 8/kc in bucket 1.
    EXPECT_EQ(policy.discretize(rlSnap(0.7, 0.2), busContext(80)),
              (2u * 4 + 2) * 4 + 1);
}

TEST(TabularRlPolicyTest, ExplorationRateTracksEpsilon)
{
    PolicyContext ctx;
    ctx.seed = 42;
    TabularRlPolicy policy{ctx};
    driveScript(policy, 500);
    ASSERT_EQ(policy.intervalsSeen(), 500u);
    // 1000 decisions at epsilon = 0.1: expect ~100 explorations;
    // a generous 3-sigma band keeps this deterministic-seed test
    // meaningful without being brittle.
    EXPECT_GT(policy.explorations(), 60u);
    EXPECT_LT(policy.explorations(), 150u);
}

std::string
tabularRlRunJson(std::uint64_t seed)
{
    SystemConfig cfg = configs::streamCdpThrottled();
    cfg.throttlePolicy = "tabular-rl";
    cfg.throttleRlSeed = seed;
    RunStats stats =
        simulate(cfg, buildWorkload("mst", InputSet::Train));
    std::ostringstream os;
    writeRunStatsJson(os, stats, "tabular-rl");
    return os.str();
}

TEST(TabularRlPolicyTest, SameSeedIsByteIdentical)
{
    EXPECT_EQ(tabularRlRunJson(7), tabularRlRunJson(7));
}

TEST(TabularRlPolicyTest, DifferentSeedsDiverge)
{
    EXPECT_NE(tabularRlRunJson(7), tabularRlRunJson(8));
}

TEST(TabularRlPolicyTest, RunStatsCarryPolicyState)
{
    SystemConfig cfg = configs::streamCdpThrottled();
    cfg.throttlePolicy = "tabular-rl";
    RunStats stats =
        simulate(cfg, buildWorkload("mst", InputSet::Train));

    EXPECT_EQ(stats.throttlePolicy, "tabular-rl");
    ASSERT_FALSE(stats.throttlePolicyState.empty());
    JsonValue state = parseJson(stats.throttlePolicyState);
    EXPECT_EQ(state.at("policy").asString(), "tabular-rl");
    EXPECT_GT(state.at("intervals").asU64(), 0u);

    // Per-interval policy blobs ride along in the interval series and
    // in the emitted JSON.
    ASSERT_FALSE(stats.intervalSeries.empty());
    bool any_policy_blob = false;
    for (const IntervalSample &s : stats.intervalSeries) {
        if (s.policy.empty())
            continue;
        any_policy_blob = true;
        JsonValue blob = parseJson(s.policy);
        EXPECT_EQ(blob.kind(), JsonValue::Kind::Object);
    }
    EXPECT_TRUE(any_policy_blob);

    std::ostringstream os;
    writeRunStatsJson(os, stats, "tabular-rl");
    const std::string json = os.str();
    EXPECT_NE(json.find("\"throttlePolicyState\":"),
              std::string::npos);
    EXPECT_NE(json.find("\"policy\":{"), std::string::npos);
    // The whole document still parses with the embedded blobs.
    EXPECT_NO_THROW(parseJson(json));
}

TEST(TabularRlPolicyTest, DefaultRunsCarryNoPolicyState)
{
    // The rule policies serialize nothing, so a default coordinated
    // run keeps the exact legacy JSON shape the goldens pin.
    RunStats stats =
        simulate(configs::streamCdpThrottled(),
                 buildWorkload("mst", InputSet::Train));
    EXPECT_TRUE(stats.throttlePolicyState.empty());
    std::ostringstream os;
    writeRunStatsJson(os, stats, "cdp+throttle");
    EXPECT_EQ(os.str().find("throttlePolicy"), std::string::npos);
}

TEST(TabularRlPolicyTest, SeedFoldsIntoConfigHash)
{
    SystemConfig a = configs::streamCdpThrottled();
    a.throttlePolicy = "tabular-rl";
    a.throttleRlSeed = 1;
    SystemConfig b = a;
    b.throttleRlSeed = 2;
    EXPECT_NE(configHash(a), configHash(b));

    SystemConfig c = a;
    c.throttlePolicy = "coordinated";
    EXPECT_NE(configHash(a), configHash(c));

    // With the policy defaulted (empty), the seed is inert and the
    // hash matches the pre-policy config space.
    SystemConfig d = configs::streamCdpThrottled();
    SystemConfig e = d;
    e.throttleRlSeed = 99;
    EXPECT_EQ(configHash(d), configHash(e));
}

} // namespace
} // namespace ecdp
