/**
 * @file
 * Unit tests for the bump allocator, the trace builder, and the
 * heap-layout helpers the workload generators rely on.
 */

#include <gtest/gtest.h>

#include <set>

#include "memsim/bump_allocator.hh"
#include "trace/trace.hh"
#include "workloads/builders.hh"

namespace ecdp
{
namespace
{

TEST(BumpAllocator, AllocationsAreSequential)
{
    BumpAllocator heap;
    Addr a = heap.allocate(16);
    Addr b = heap.allocate(16);
    EXPECT_EQ(a, kHeapBase);
    EXPECT_EQ(b, a + 16);
}

TEST(BumpAllocator, RespectsAlignment)
{
    BumpAllocator heap;
    heap.allocate(3);
    Addr aligned = heap.allocate(8, 64);
    EXPECT_EQ(aligned.raw() % 64, 0u);
}

TEST(BumpAllocator, DefaultAlignmentIsEight)
{
    BumpAllocator heap;
    heap.allocate(5);
    Addr next = heap.allocate(4);
    EXPECT_EQ(next.raw() % 8, 0u);
}

TEST(BumpAllocator, AlignToSkipsToBoundary)
{
    BumpAllocator heap;
    heap.allocate(10);
    heap.alignTo(128);
    EXPECT_EQ(heap.next().raw() % 128, 0u);
}

TEST(BumpAllocator, TracksBytesAllocated)
{
    BumpAllocator heap;
    heap.allocate(16);
    heap.allocate(16);
    EXPECT_GE(heap.bytesAllocated(), 32u);
}

TEST(BumpAllocator, CustomBase)
{
    BumpAllocator heap(0x50000000);
    EXPECT_EQ(heap.allocate(4), 0x50000000u);
}

TEST(TraceBuilder, SnapshotExcludesTimedStores)
{
    TraceBuilder tb("t");
    tb.mem().write(0x40000000, 4, 1u); // setup-phase write
    tb.beginTimed();
    tb.store(0x1000, 0x40000000, 4, 2u);
    Workload wl = std::move(tb).finish();
    // The workload image holds the pre-traversal value; the store is
    // in the trace for the simulator to apply in order.
    EXPECT_EQ(wl.image.read(0x40000000, 4), 1u);
    ASSERT_EQ(wl.trace.size(), 1u);
    EXPECT_EQ(wl.trace[0].kind, AccessKind::Store);
    EXPECT_EQ(wl.trace[0].storeValue, 2u);
}

TEST(TraceBuilder, TimedStoresVisibleToGenerator)
{
    TraceBuilder tb("t");
    tb.beginTimed();
    tb.store(0x1000, 0x40000000, 4, 42u);
    EXPECT_EQ(tb.mem().read(0x40000000, 4), 42u);
}

TEST(TraceBuilder, LoadRecordsFields)
{
    TraceBuilder tb("t");
    tb.beginTimed();
    TraceRef first = tb.load(0x1000, 0x40000010, 4, kNoDep, true, 7);
    TraceRef second = tb.load(0x1004, 0x40000020, 4, first, false, 2);
    Workload wl = std::move(tb).finish();
    EXPECT_EQ(first, 0);
    EXPECT_EQ(second, 1);
    EXPECT_EQ(wl.trace[0].pc, 0x1000u);
    EXPECT_TRUE(wl.trace[0].isLds);
    EXPECT_EQ(wl.trace[0].nonMemBefore, 7u);
    EXPECT_EQ(wl.trace[1].dep, first);
}

TEST(TraceBuilder, LoadPointerReturnsStoredValue)
{
    TraceBuilder tb("t");
    tb.mem().writePointer(0x40000000, 0x40abcdef);
    tb.beginTimed();
    auto [value, ref] = tb.loadPointer(0x1000, 0x40000000);
    EXPECT_EQ(value, 0x40abcdefu);
    EXPECT_EQ(ref, 0);
}

TEST(Workload, InstructionCountIncludesFillers)
{
    TraceBuilder tb("t");
    tb.beginTimed();
    tb.load(0x1000, 0x40000000, 4, kNoDep, false, 10);
    tb.load(0x1004, 0x40000004, 4, kNoDep, false, 5);
    Workload wl = std::move(tb).finish();
    EXPECT_EQ(wl.instructionCount(), 2u + 15u);
}

TEST(Builders, AllocSequentialAdjacent)
{
    TraceBuilder tb("t");
    auto addrs = allocSequential(tb, 10, 32);
    for (std::size_t i = 1; i < addrs.size(); ++i)
        EXPECT_EQ(addrs[i], addrs[i - 1] + 32);
}

TEST(Builders, AllocInterleavedSeparatesNeighbours)
{
    TraceBuilder tb("t");
    auto addrs = allocInterleaved(tb, 64, 32, 8);
    // Logically adjacent objects must be far apart in memory.
    for (std::size_t i = 1; i < addrs.size(); ++i) {
        std::uint32_t distance = addrs[i] > addrs[i - 1]
            ? addrs[i] - addrs[i - 1]
            : addrs[i - 1] - addrs[i];
        EXPECT_GE(distance, 128u) << "at index " << i;
    }
}

TEST(Builders, AllocInterleavedUsesEveryAddressOnce)
{
    TraceBuilder tb("t");
    auto addrs = allocInterleaved(tb, 100, 32, 7);
    std::set<Addr> unique(addrs.begin(), addrs.end());
    EXPECT_EQ(unique.size(), addrs.size());
}

TEST(Builders, AllocShuffledUsesEveryAddressOnce)
{
    TraceBuilder tb("t");
    auto rng = workloadRng("x", InputSet::Ref);
    auto addrs = allocShuffled(tb, 100, 64, rng);
    std::set<Addr> unique(addrs.begin(), addrs.end());
    EXPECT_EQ(unique.size(), addrs.size());
}

TEST(Builders, WorkloadRngIsDeterministicAndInputSensitive)
{
    auto a = workloadRng("mst", InputSet::Ref);
    auto b = workloadRng("mst", InputSet::Ref);
    auto c = workloadRng("mst", InputSet::Train);
    EXPECT_EQ(a(), b());
    EXPECT_NE(a(), c());
}

TEST(Builders, StreamScanEmitsStridedLoads)
{
    TraceBuilder tb("t");
    tb.beginTimed();
    streamScan(tb, 0x2000, 0x40000000, 5, 16, 3);
    Workload wl = std::move(tb).finish();
    ASSERT_EQ(wl.trace.size(), 5u);
    for (unsigned i = 0; i < 5; ++i) {
        EXPECT_EQ(wl.trace[i].vaddr, 0x40000000u + 16 * i);
        EXPECT_EQ(wl.trace[i].dep, kNoDep);
        EXPECT_FALSE(wl.trace[i].isLds);
    }
}

} // namespace
} // namespace ecdp
