/**
 * @file
 * Unit tests for content-directed prefetching, the ECDP hint
 * filtering, and the GRP-style coarse gating.
 */

#include <gtest/gtest.h>

#include "prefetch/cdp.hh"

namespace ecdp
{
namespace
{

constexpr Addr kBlock = 0x40001000;

/** Block image with pointer values planted at word slots. */
struct BlockImage
{
    std::uint8_t bytes[128] = {};

    void word(unsigned slot, std::uint32_t value)
    {
        for (unsigned b = 0; b < 4; ++b)
            bytes[slot * 4 + b] =
                static_cast<std::uint8_t>(value >> (8 * b));
    }
};

ContentDirectedPrefetcher::ScanContext
demandCtx(Addr pc = 0x1000, unsigned byte_offset = 0)
{
    ContentDirectedPrefetcher::ScanContext ctx;
    ctx.demandFill = true;
    ctx.loadPc = pc;
    ctx.accessByteOffset = byte_offset;
    ctx.fillDepth = 0;
    return ctx;
}

TEST(Cdp, IdentifiesPointerByCompareBits)
{
    ContentDirectedPrefetcher cdp(8, 128);
    EXPECT_TRUE(cdp.isPointerCandidate(kBlock, 0x40abcdefu));
    EXPECT_FALSE(cdp.isPointerCandidate(kBlock, 0x41abcdefu));
    EXPECT_FALSE(cdp.isPointerCandidate(kBlock, 0x00000007u));
}

TEST(Cdp, ZeroIsNeverAPointer)
{
    ContentDirectedPrefetcher cdp(8, 128);
    EXPECT_FALSE(cdp.isPointerCandidate(kBlock, 0));
}

TEST(Cdp, ScanFindsAllPointersWithoutFilter)
{
    ContentDirectedPrefetcher cdp(8, 128);
    BlockImage img;
    img.word(2, 0x40002000);
    img.word(9, 0x40003000);
    img.word(12, 0x00001234); // not a pointer
    std::vector<PrefetchRequest> out;
    cdp.scan(kBlock, img.bytes, demandCtx(), out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].blockAddr, 0x40002000u);
    EXPECT_EQ(out[1].blockAddr, 0x40003000u);
    EXPECT_EQ(out[0].source, PrefetchSource::Lds);
    EXPECT_EQ(out[0].depth, 1u);
}

TEST(Cdp, TargetsAreBlockAligned)
{
    ContentDirectedPrefetcher cdp(8, 128);
    BlockImage img;
    img.word(0, 0x4000207c); // mid-block pointer
    std::vector<PrefetchRequest> out;
    cdp.scan(kBlock, img.bytes, demandCtx(), out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].blockAddr, 0x40002000u);
}

TEST(Cdp, SelfPointersAreSkipped)
{
    ContentDirectedPrefetcher cdp(8, 128);
    BlockImage img;
    img.word(3, (kBlock + 8).raw()); // points into its own block
    std::vector<PrefetchRequest> out;
    cdp.scan(kBlock, img.bytes, demandCtx(), out);
    EXPECT_TRUE(out.empty());
}

TEST(Cdp, DuplicateTargetsAreDeduplicated)
{
    ContentDirectedPrefetcher cdp(8, 128);
    BlockImage img;
    img.word(1, 0x40002000);
    img.word(5, 0x40002040); // same target block
    std::vector<PrefetchRequest> out;
    cdp.scan(kBlock, img.bytes, demandCtx(), out);
    EXPECT_EQ(out.size(), 1u);
}

TEST(Cdp, DemandScanAttributesPgRelativeToAccessedWord)
{
    ContentDirectedPrefetcher cdp(8, 128);
    BlockImage img;
    img.word(5, 0x40002000);
    std::vector<PrefetchRequest> out;
    // The load accessed byte 12 (word 3): the pointer at word 5 is at
    // slot offset +2.
    cdp.scan(kBlock, img.bytes, demandCtx(0x1234, 12), out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0].pgValid);
    EXPECT_EQ(out[0].pg.loadPc, 0x1234u);
    EXPECT_EQ(out[0].pg.slot, 2);
}

TEST(Cdp, NegativeSlotOffsets)
{
    ContentDirectedPrefetcher cdp(8, 128);
    BlockImage img;
    img.word(0, 0x40002000);
    std::vector<PrefetchRequest> out;
    cdp.scan(kBlock, img.bytes, demandCtx(0x1234, 12), out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].pg.slot, -3);
}

TEST(Cdp, RecursiveScansInheritRootPg)
{
    ContentDirectedPrefetcher cdp(8, 128);
    BlockImage img;
    img.word(4, 0x40002000);
    ContentDirectedPrefetcher::ScanContext ctx;
    ctx.demandFill = false;
    ctx.fillDepth = 2;
    ctx.pgValid = true;
    ctx.pgRoot = PgId{0x1234, 7};
    std::vector<PrefetchRequest> out;
    cdp.scan(kBlock, img.bytes, ctx, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].depth, 3u);
    EXPECT_EQ(out[0].pg.loadPc, 0x1234u);
    EXPECT_EQ(out[0].pg.slot, 7);
}

TEST(Cdp, RecursionDepthPolicyMatchesSection22)
{
    ContentDirectedPrefetcher cdp(8, 128);
    cdp.setAggressiveness(AggLevel::VeryConservative); // depth 1
    EXPECT_TRUE(cdp.shouldScan(0));   // demand fills always scanned
    EXPECT_FALSE(cdp.shouldScan(1));  // prefetched fills are not
    cdp.setAggressiveness(AggLevel::Aggressive); // depth 4
    EXPECT_TRUE(cdp.shouldScan(3));
    EXPECT_FALSE(cdp.shouldScan(4));
}

TEST(Cdp, Table2DepthKnob)
{
    ContentDirectedPrefetcher cdp(8, 128);
    cdp.setAggressiveness(AggLevel::VeryConservative);
    EXPECT_EQ(cdp.maxRecursionDepth(), 1u);
    cdp.setAggressiveness(AggLevel::Conservative);
    EXPECT_EQ(cdp.maxRecursionDepth(), 2u);
    cdp.setAggressiveness(AggLevel::Moderate);
    EXPECT_EQ(cdp.maxRecursionDepth(), 3u);
    cdp.setAggressiveness(AggLevel::Aggressive);
    EXPECT_EQ(cdp.maxRecursionDepth(), 4u);
}

TEST(Ecdp, HintsFilterDemandScans)
{
    ContentDirectedPrefetcher cdp(8, 128);
    HintTable hints;
    hints.entry(0x1234).set(+2);
    cdp.setFilterMode(ContentDirectedPrefetcher::FilterMode::EcdpHints);
    cdp.setHints(&hints);

    BlockImage img;
    img.word(5, 0x40002000); // slot +2 from word 3: beneficial
    img.word(7, 0x40003000); // slot +4: not marked
    std::vector<PrefetchRequest> out;
    cdp.scan(kBlock, img.bytes, demandCtx(0x1234, 12), out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].blockAddr, 0x40002000u);
}

TEST(Ecdp, LoadWithoutHintsPrefetchesNothing)
{
    ContentDirectedPrefetcher cdp(8, 128);
    HintTable hints;
    hints.entry(0x9999).set(+1);
    cdp.setFilterMode(ContentDirectedPrefetcher::FilterMode::EcdpHints);
    cdp.setHints(&hints);

    BlockImage img;
    img.word(1, 0x40002000);
    std::vector<PrefetchRequest> out;
    cdp.scan(kBlock, img.bytes, demandCtx(0x1234, 0), out);
    EXPECT_TRUE(out.empty());
}

TEST(Ecdp, RecursiveScansIgnoreHints)
{
    // Section 3: blocks fetched by CDP prefetches are scanned
    // greedily.
    ContentDirectedPrefetcher cdp(8, 128);
    HintTable hints; // empty: demand scans would be fully gated
    cdp.setFilterMode(ContentDirectedPrefetcher::FilterMode::EcdpHints);
    cdp.setHints(&hints);

    BlockImage img;
    img.word(4, 0x40002000);
    ContentDirectedPrefetcher::ScanContext ctx;
    ctx.demandFill = false;
    ctx.fillDepth = 1;
    std::vector<PrefetchRequest> out;
    cdp.scan(kBlock, img.bytes, ctx, out);
    EXPECT_EQ(out.size(), 1u);
}

TEST(Ecdp, NegativeHintBitsWork)
{
    ContentDirectedPrefetcher cdp(8, 128);
    HintTable hints;
    hints.entry(0x1234).set(-3);
    cdp.setFilterMode(ContentDirectedPrefetcher::FilterMode::EcdpHints);
    cdp.setHints(&hints);

    BlockImage img;
    img.word(0, 0x40002000); // slot -3 from word 3
    img.word(6, 0x40003000); // slot +3: filtered
    std::vector<PrefetchRequest> out;
    cdp.scan(kBlock, img.bytes, demandCtx(0x1234, 12), out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].blockAddr, 0x40002000u);
}

TEST(Grp, CoarseModeEnablesAllPointersOfHintedLoads)
{
    ContentDirectedPrefetcher cdp(8, 128);
    HintTable hints;
    hints.entry(0x1234).set(+2); // any beneficial PG enables the load
    cdp.setFilterMode(ContentDirectedPrefetcher::FilterMode::GrpCoarse);
    cdp.setHints(&hints);

    BlockImage img;
    img.word(5, 0x40002000);
    img.word(9, 0x40003000); // would be filtered in ECDP mode
    std::vector<PrefetchRequest> out;
    cdp.scan(kBlock, img.bytes, demandCtx(0x1234, 12), out);
    EXPECT_EQ(out.size(), 2u);
}

TEST(Grp, CoarseModeDisablesUnhintedLoads)
{
    ContentDirectedPrefetcher cdp(8, 128);
    HintTable hints;
    cdp.setFilterMode(ContentDirectedPrefetcher::FilterMode::GrpCoarse);
    cdp.setHints(&hints);

    BlockImage img;
    img.word(5, 0x40002000);
    std::vector<PrefetchRequest> out;
    cdp.scan(kBlock, img.bytes, demandCtx(0x1234, 12), out);
    EXPECT_TRUE(out.empty());
}

/** Property: the compare-bits knob widens/narrows candidacy. */
class CdpCompareBitsTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CdpCompareBitsTest, MatchRequiresExactlyTopBits)
{
    const unsigned bits = GetParam();
    ContentDirectedPrefetcher cdp(bits, 128);
    // Flip the bit just below the compared region: still a match.
    std::uint32_t flip_low = kBlock.raw() ^ (1u << (31 - bits));
    EXPECT_TRUE(cdp.isPointerCandidate(kBlock, flip_low));
    // Flip the lowest bit inside the compared region: mismatch.
    std::uint32_t flip_in = kBlock.raw() ^ (1u << (32 - bits));
    EXPECT_FALSE(cdp.isPointerCandidate(kBlock, flip_in));
}

INSTANTIATE_TEST_SUITE_P(Bits, CdpCompareBitsTest,
                         ::testing::Values(4u, 8u, 12u, 16u));

TEST(HintTable, SetAndQueryPositiveAndNegative)
{
    PrefetchHint hint;
    hint.set(0);
    hint.set(31);
    hint.set(-1);
    hint.set(-32);
    EXPECT_TRUE(hint.allows(0));
    EXPECT_TRUE(hint.allows(31));
    EXPECT_TRUE(hint.allows(-1));
    EXPECT_TRUE(hint.allows(-32));
    EXPECT_FALSE(hint.allows(1));
    EXPECT_FALSE(hint.allows(-2));
}

TEST(HintTable, OutOfRangeSlotsAreRejected)
{
    PrefetchHint hint;
    hint.set(32);   // silently ignored
    hint.set(-33);
    EXPECT_FALSE(hint.allows(32));
    EXPECT_FALSE(hint.allows(-33));
    EXPECT_TRUE(hint.empty());
}

TEST(HintTable, FindReturnsNullForUnknownPc)
{
    HintTable table;
    EXPECT_EQ(table.find(0x1234), nullptr);
    table.entry(0x1234).set(1);
    ASSERT_NE(table.find(0x1234), nullptr);
    EXPECT_TRUE(table.find(0x1234)->allows(1));
    EXPECT_EQ(table.size(), 1u);
}

} // namespace
} // namespace ecdp
