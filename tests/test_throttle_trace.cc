/**
 * @file
 * Throttle-transition tracing: drive the coordinated / FDP
 * throttlers with synthetic feedback and assert the ThrottleMonitor
 * emits exactly the transitions the paper's threshold tables
 * prescribe — no event when the decision is Nothing or the level is
 * already clamped, one event per real level change, and the disabled
 * encoding for PAB-style enable flips.
 */

#include <gtest/gtest.h>

#include <vector>

#include "obs/throttle_monitor.hh"
#include "throttle/coordinated_throttler.hh"
#include "throttle/fdp_throttler.hh"
#include "throttle/feedback.hh"

namespace ecdp
{
namespace
{

FeedbackSnapshot
snap(double coverage, double accuracy)
{
    FeedbackSnapshot s;
    s.coverage = coverage;
    s.accuracy = accuracy;
    s.anyPrefetches = true;
    return s;
}

std::vector<obs::TraceEvent>
transitions(const obs::EventTracer &tracer)
{
    std::vector<obs::TraceEvent> out;
    tracer.forEach([&](const obs::TraceEvent &event) {
        if (event.type == obs::EventType::ThrottleTransition)
            out.push_back(event);
    });
    return out;
}

TEST(ThrottleMonitor, EmitsNothingForInitialState)
{
    obs::EventTracer tracer;
    obs::ThrottleMonitor monitor(&tracer, 0, 0,
                                 AggLevel::Aggressive);
    EXPECT_FALSE(
        monitor.observe(Cycle{100}, AggLevel::Aggressive, true));
    EXPECT_EQ(tracer.size(), 0u);
}

TEST(ThrottleMonitor, NullTracerStillTracksState)
{
    // Disabled tracing costs one pointer test: the monitor still
    // tracks transitions (observe() reports the change) but records
    // nothing anywhere.
    obs::ThrottleMonitor monitor(nullptr, 0, 0,
                                 AggLevel::Aggressive);
    EXPECT_TRUE(
        monitor.observe(Cycle{100}, AggLevel::Conservative, true));
    EXPECT_FALSE(
        monitor.observe(Cycle{200}, AggLevel::Conservative, true));
}

TEST(ThrottleMonitor, EncodesDisableAsLevel255)
{
    obs::EventTracer tracer;
    obs::ThrottleMonitor monitor(&tracer, 2, 1,
                                 AggLevel::Moderate);
    // PAB turns the prefetcher off, then later back on.
    EXPECT_TRUE(monitor.observe(Cycle{500}, AggLevel::Moderate, false));
    EXPECT_TRUE(monitor.observe(Cycle{900}, AggLevel::Moderate, true));
    auto events = transitions(tracer);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].a, 2u);
    EXPECT_EQ(events[0].b, obs::kLevelDisabled);
    EXPECT_EQ(events[0].core, 2u);
    EXPECT_EQ(events[0].source, 1u);
    EXPECT_EQ(events[0].cycle, Cycle{500});
    EXPECT_EQ(events[1].a, obs::kLevelDisabled);
    EXPECT_EQ(events[1].b, 2u);
}

/**
 * Walk a throttled prefetcher through the coordinated decision
 * table exactly as MemorySystem::endInterval() does: decide from
 * the snapshots, apply to the current level, observe the result.
 */
struct ThrottleRig
{
    CoordinatedThrottler throttler{
        CoordinatedThrottler::Thresholds{0.2, 0.4, 0.7}};
    obs::EventTracer tracer;
    AggLevel level = AggLevel::Aggressive;
    obs::ThrottleMonitor monitor{&tracer, 0, 0, level};
    Cycle now{};

    bool step(const FeedbackSnapshot &self,
              const FeedbackSnapshot &rival)
    {
        now += 1000;
        ThrottleDecision decision = throttler.decide(self, rival);
        level = CoordinatedThrottler::apply(level, decision);
        return monitor.observe(now, level, true);
    }
};

TEST(CoordinatedThrottleTrace, RampDownEmitsEachStepOnce)
{
    ThrottleRig rig;
    // Table 3 case 2 (low coverage, low accuracy) -> Down each
    // interval until the level clamps at VeryConservative.
    FeedbackSnapshot self = snap(0.1, 0.1);
    FeedbackSnapshot rival = snap(0.5, 0.5);

    EXPECT_TRUE(rig.step(self, rival));  // Aggressive -> Moderate
    EXPECT_TRUE(rig.step(self, rival));  // Moderate -> Conservative
    EXPECT_TRUE(rig.step(self, rival));  // Conservative -> VeryCons.
    EXPECT_FALSE(rig.step(self, rival)); // clamped: no event

    auto events = transitions(rig.tracer);
    ASSERT_EQ(events.size(), 3u);
    const std::uint8_t expect[3][2] = {{3, 2}, {2, 1}, {1, 0}};
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(events[i].a, expect[i][0]) << "step " << i;
        EXPECT_EQ(events[i].b, expect[i][1]) << "step " << i;
        EXPECT_EQ(events[i].cycle, Cycle{(i + 1) * 1000}) << "step " << i;
    }
}

TEST(CoordinatedThrottleTrace, RampBackUpAfterRecovery)
{
    ThrottleRig rig;
    FeedbackSnapshot bad = snap(0.1, 0.1);
    FeedbackSnapshot good = snap(0.5, 0.9); // case 1: high coverage
    FeedbackSnapshot rival = snap(0.5, 0.5);

    rig.step(bad, rival);  // 3 -> 2
    rig.step(bad, rival);  // 2 -> 1
    rig.step(good, rival); // 1 -> 2
    rig.step(good, rival); // 2 -> 3
    EXPECT_FALSE(rig.step(good, rival)); // clamped at Aggressive

    auto events = transitions(rig.tracer);
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[2].a, 1u);
    EXPECT_EQ(events[2].b, 2u);
    EXPECT_EQ(events[3].a, 2u);
    EXPECT_EQ(events[3].b, 3u);
}

TEST(CoordinatedThrottleTrace, Case5EmitsNoEvent)
{
    ThrottleRig rig;
    // Table 3 case 5: low coverage, high accuracy, rival covering —
    // leave the level alone, so the monitor stays silent.
    EXPECT_FALSE(rig.step(snap(0.1, 0.9), snap(0.9, 0.5)));
    EXPECT_EQ(transitions(rig.tracer).size(), 0u);
}

TEST(FdpThrottleTrace, DecisionMatrixDrivesMonitor)
{
    FdpThrottler fdp;
    obs::EventTracer tracer;
    AggLevel level = AggLevel::Moderate;
    obs::ThrottleMonitor monitor(&tracer, 0, 0, level);

    auto step = [&](double accuracy, double lateness,
                    double pollution, Cycle now) {
        FeedbackSnapshot s;
        s.accuracy = accuracy;
        s.lateness = lateness;
        s.pollution = pollution;
        s.anyPrefetches = true;
        level = CoordinatedThrottler::apply(level, fdp.decide(s));
        return monitor.observe(now, level, true);
    };

    // High accuracy + late -> Up.
    EXPECT_TRUE(step(0.9, 0.5, 0.0, Cycle{1000}));
    // High accuracy, timely -> Nothing.
    EXPECT_FALSE(step(0.9, 0.0, 0.0, Cycle{2000}));
    // Low accuracy -> Down.
    EXPECT_TRUE(step(0.1, 0.0, 0.0, Cycle{3000}));

    auto events = transitions(tracer);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].a, 2u); // Moderate -> Aggressive
    EXPECT_EQ(events[0].b, 3u);
    EXPECT_EQ(events[1].a, 3u); // Aggressive -> Moderate
    EXPECT_EQ(events[1].b, 2u);
}

} // namespace
} // namespace ecdp
