/**
 * @file
 * Tests for the per-core memory system: hit/miss timing, MSHR merges,
 * prefetched-bit accounting, CDP scan-at-fill, ECDP gating, oracle
 * modes, and interval throttling.
 */

#include <gtest/gtest.h>

#include "dram/dram.hh"
#include "sim/memory_system.hh"

namespace ecdp
{
namespace
{

TraceEntry
loadAt(Addr addr, Addr pc = 0x1000, bool is_lds = false)
{
    TraceEntry e;
    e.pc = pc;
    e.vaddr = addr;
    e.kind = AccessKind::Load;
    e.isLds = is_lds;
    return e;
}

TraceEntry
storeAt(Addr addr, std::uint64_t value)
{
    TraceEntry e;
    e.pc = 0x2000;
    e.vaddr = addr;
    e.kind = AccessKind::Store;
    e.storeValue = value;
    return e;
}

/** Drive ticks until a given cycle. */
void
tickUntil(MemorySystem &mem, Cycle from, Cycle to)
{
    for (Cycle c = from; c <= to; ++c)
        mem.tick(c);
}

struct Rig
{
    explicit Rig(SystemConfig config = {})
        : cfg(config), dram(cfg.dram, 1), mem(cfg, 0, SimMemory{},
                                              &dram)
    {
    }

    SystemConfig cfg;
    DramSystem dram;
    MemorySystem mem;
};

SystemConfig
noPrefetchConfig()
{
    SystemConfig cfg;
    cfg.primary = PrimaryKind::None;
    cfg.lds = LdsKind::None;
    return cfg;
}

TEST(MemorySystem, MissThenL1Hit)
{
    Rig rig(noPrefetchConfig());
    auto first = rig.mem.load(loadAt(0x40000000), Cycle{});
    ASSERT_TRUE(first.has_value());
    EXPECT_GE(*first, Cycle{450});
    tickUntil(rig.mem, Cycle{}, *first + 1);
    // After the fill, the same address hits in the L1.
    auto second = rig.mem.load(loadAt(0x40000000), *first + 2);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(*second - (*first + 2), rig.cfg.l1Latency);
}

TEST(MemorySystem, L2HitAfterL1Eviction)
{
    Rig rig(noPrefetchConfig());
    auto first = rig.mem.load(loadAt(0x40000000), Cycle{});
    tickUntil(rig.mem, Cycle{}, *first + 1);
    Cycle now = *first + 2;
    // Thrash the L1 set (32 KB, 4-way, 64 B lines: set stride 8 KB).
    for (unsigned i = 1; i <= 8; ++i) {
        auto fill = rig.mem.load(loadAt(0x40000000 + i * 8192), now);
        ASSERT_TRUE(fill.has_value());
        tickUntil(rig.mem, now, *fill + 1);
        now = *fill + 2;
    }
    auto hit = rig.mem.load(loadAt(0x40000000), now);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit - now, rig.cfg.l1Latency + rig.cfg.l2Latency);
}

TEST(MemorySystem, SecondaryMissMergesIntoMshr)
{
    Rig rig(noPrefetchConfig());
    auto first = rig.mem.load(loadAt(0x40000000), Cycle{});
    auto merged = rig.mem.load(loadAt(0x40000040), Cycle{1});
    ASSERT_TRUE(merged.has_value());
    // Same L2 block: completes with the first fill, costs no second
    // bus transaction.
    EXPECT_LE(*merged, *first + 4);
    EXPECT_EQ(rig.dram.busTransactions(), 1u);
}

TEST(MemorySystem, MshrExhaustionRejectsLoads)
{
    Rig rig(noPrefetchConfig());
    for (unsigned i = 0; i < 32; ++i) {
        EXPECT_TRUE(
            rig.mem.load(loadAt(0x40000000 + i * 128), Cycle{}).has_value());
    }
    EXPECT_FALSE(rig.mem.load(loadAt(0x41000000), Cycle{}).has_value());
}

TEST(MemorySystem, StoresUpdateTheImageImmediately)
{
    Rig rig(noPrefetchConfig());
    rig.mem.store(storeAt(0x40000000, 0xabcd), Cycle{});
    EXPECT_EQ(rig.mem.image().read(0x40000000, 4), 0xabcdu);
}

TEST(MemorySystem, DirtyEvictionsWriteBack)
{
    Rig rig(noPrefetchConfig());
    rig.mem.store(storeAt(0x40000000, 1), Cycle{});
    std::uint64_t before = rig.dram.busTransactions();
    // Evict the dirty block: fill the L2 set (1 MB, 8-way, 128 B:
    // set stride 128 KB).
    Cycle now{1};
    for (unsigned i = 1; i <= 9; ++i) {
        auto fill =
            rig.mem.load(loadAt(0x40000000 + i * 131072), now);
        ASSERT_TRUE(fill.has_value());
        tickUntil(rig.mem, now, *fill + 1);
        now = *fill + 2;
    }
    EXPECT_GT(rig.dram.busTransactions(), before + 8);
}

TEST(MemorySystem, StreamPrefetchCountsAsUsedOnHit)
{
    SystemConfig cfg; // stream prefetcher on
    Rig rig(cfg);
    // Two nearby misses train a stream, which prefetches ahead.
    Cycle now{};
    for (unsigned i = 0; i < 2; ++i) {
        auto fill = rig.mem.load(loadAt(0x40000000 + i * 128), now);
        ASSERT_TRUE(fill.has_value());
        tickUntil(rig.mem, now, *fill + 1);
        now = *fill + 2;
    }
    // Let the prefetches land, then touch a prefetched block.
    tickUntil(rig.mem, now, now + 2000);
    now += 2001;
    rig.mem.load(loadAt(0x40000000 + 3 * 128), now);
    RunStats stats;
    rig.mem.collectStats(stats);
    EXPECT_GT(stats.prefIssued[0], 0u);
    EXPECT_GT(stats.prefUsed[0], 0u);
}

SystemConfig
cdpConfig()
{
    SystemConfig cfg;
    cfg.primary = PrimaryKind::None;
    cfg.lds = LdsKind::Cdp;
    return cfg;
}

TEST(MemorySystem, CdpScansDemandFillsAndPrefetches)
{
    Rig rig(cdpConfig());
    // Plant a pointer in the missed block.
    rig.mem.image().writePointer(0x40000004, 0x40008000);
    auto fill = rig.mem.load(loadAt(0x40000000, 0x1000, true), Cycle{});
    ASSERT_TRUE(fill.has_value());
    // Tick long enough for the prefetch itself to fill the L2.
    tickUntil(rig.mem, Cycle{}, *fill + 600);
    RunStats stats;
    rig.mem.collectStats(stats);
    EXPECT_EQ(stats.prefIssued[1], 1u);
    // The prefetched block is an L2 hit for a later demand.
    Cycle later = *fill + 601;
    auto hit = rig.mem.load(loadAt(0x40008000), later);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit - later, rig.cfg.l1Latency + rig.cfg.l2Latency);
    rig.mem.collectStats(stats);
    EXPECT_EQ(stats.prefUsed[1], 1u);
}

TEST(MemorySystem, CdpRecursionFollowsChains)
{
    Rig rig(cdpConfig());
    // A -> B -> C chain through pointers at offset 0.
    rig.mem.image().writePointer(0x40000000, 0x40010000);
    rig.mem.image().writePointer(0x40010000, 0x40020000);
    auto fill = rig.mem.load(loadAt(0x40000000, 0x1000, true), Cycle{});
    tickUntil(rig.mem, Cycle{}, *fill + 1200);
    RunStats stats;
    rig.mem.collectStats(stats);
    // Both B (depth 1) and C (depth 2, from the recursive scan of
    // B's fill) were prefetched.
    EXPECT_EQ(stats.prefIssued[1], 2u);
}

TEST(MemorySystem, CdpDepthOneDoesNotRecurse)
{
    SystemConfig cfg = cdpConfig();
    cfg.ldsStartLevel = AggLevel::VeryConservative; // depth 1
    Rig rig(cfg);
    rig.mem.image().writePointer(0x40000000, 0x40010000);
    rig.mem.image().writePointer(0x40010000, 0x40020000);
    auto fill = rig.mem.load(loadAt(0x40000000, 0x1000, true), Cycle{});
    tickUntil(rig.mem, Cycle{}, *fill + 1200);
    RunStats stats;
    rig.mem.collectStats(stats);
    EXPECT_EQ(stats.prefIssued[1], 1u);
}

TEST(MemorySystem, EcdpHintsGateDemandScans)
{
    HintTable hints; // empty: nothing is beneficial
    SystemConfig cfg = cdpConfig();
    cfg.lds = LdsKind::Ecdp;
    cfg.hints = &hints;
    Rig rig(cfg);
    rig.mem.image().writePointer(0x40000004, 0x40008000);
    auto fill = rig.mem.load(loadAt(0x40000000, 0x1000, true), Cycle{});
    tickUntil(rig.mem, Cycle{}, *fill + 10);
    RunStats stats;
    rig.mem.collectStats(stats);
    EXPECT_EQ(stats.prefIssued[1], 0u);
}

TEST(MemorySystem, EcdpHintedSlotIsPrefetched)
{
    HintTable hints;
    hints.entry(0x1000).set(+1);
    SystemConfig cfg = cdpConfig();
    cfg.lds = LdsKind::Ecdp;
    cfg.hints = &hints;
    Rig rig(cfg);
    rig.mem.image().writePointer(0x40000004, 0x40008000); // slot +1
    rig.mem.image().writePointer(0x40000008, 0x40009000); // slot +2
    auto fill = rig.mem.load(loadAt(0x40000000, 0x1000, true), Cycle{});
    tickUntil(rig.mem, Cycle{}, *fill + 10);
    RunStats stats;
    rig.mem.collectStats(stats);
    EXPECT_EQ(stats.prefIssued[1], 1u);
    ASSERT_EQ(stats.pgStats.size(), 1u);
    EXPECT_EQ(stats.pgStats.begin()->first.slot, 1);
}

TEST(MemorySystem, LatePrefetchCountsAsLateNotUsed)
{
    Rig rig(cdpConfig());
    rig.mem.image().writePointer(0x40000000, 0x40010000);
    auto fill = rig.mem.load(loadAt(0x40000000, 0x1000, true), Cycle{});
    tickUntil(rig.mem, Cycle{}, *fill + 2);
    // Demand the prefetched block while it is still in flight.
    auto merged = rig.mem.load(loadAt(0x40010000), *fill + 3);
    ASSERT_TRUE(merged.has_value());
    tickUntil(rig.mem, *fill + 3, *merged + 2);
    RunStats stats;
    rig.mem.collectStats(stats);
    EXPECT_EQ(stats.prefLate[1], 1u);
    EXPECT_EQ(stats.prefUsed[1], 0u);
    // The merged demand still counts as a demand miss.
    EXPECT_EQ(stats.l2DemandMisses, 2u);
}

TEST(MemorySystem, IdealLdsTurnsLdsMissesIntoHits)
{
    SystemConfig cfg = noPrefetchConfig();
    cfg.idealLds = true;
    Rig rig(cfg);
    auto lds = rig.mem.load(loadAt(0x40000000, 0x1000, true), Cycle{});
    ASSERT_TRUE(lds.has_value());
    EXPECT_EQ(*lds, rig.cfg.l1Latency + rig.cfg.l2Latency);
    // Non-LDS misses still go to memory.
    auto normal = rig.mem.load(loadAt(0x40010000, 0x1000, false), Cycle{});
    EXPECT_GE(*normal, Cycle{450});
}

TEST(MemorySystem, IdealNoPollutionSideBuffersPrefetches)
{
    SystemConfig cfg = cdpConfig();
    cfg.idealNoPollution = true;
    Rig rig(cfg);
    rig.mem.image().writePointer(0x40000000, 0x40010000);
    auto fill = rig.mem.load(loadAt(0x40000000, 0x1000, true), Cycle{});
    tickUntil(rig.mem, Cycle{}, *fill + 600);
    // The prefetched block is not in the L2 (no pollution)...
    EXPECT_EQ(rig.mem.l2().peek(0x40010000), nullptr);
    // ...but a demand still gets it at L2-hit cost from the buffer.
    Cycle later = *fill + 601;
    auto hit = rig.mem.load(loadAt(0x40010000), later);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit - later, rig.cfg.l1Latency + rig.cfg.l2Latency);
    RunStats stats;
    rig.mem.collectStats(stats);
    EXPECT_EQ(stats.prefUsed[1], 1u);
}

TEST(MemorySystem, HardwareFilterDropsRepeatOffenders)
{
    SystemConfig cfg = cdpConfig();
    cfg.hwFilter = true;
    cfg.l2Bytes = 16 * 1024; // tiny L2 so evictions happen quickly
    Rig rig(cfg);
    rig.mem.image().writePointer(0x40000000, 0x48000000);
    // Fetch, let the prefetch land, evict it unused, then refetch.
    auto fill = rig.mem.load(loadAt(0x40000000, 0x1000, true), Cycle{});
    tickUntil(rig.mem, Cycle{}, *fill + 600);
    Cycle now = *fill + 601;
    for (unsigned i = 0; i < 200; ++i) {
        auto f = rig.mem.load(loadAt(0x41000000 + i * 128), now);
        if (f) {
            tickUntil(rig.mem, now, *f + 1);
            now = *f + 2;
        } else {
            rig.mem.tick(now);
            ++now;
        }
    }
    RunStats before;
    rig.mem.collectStats(before);
    // Re-trigger the same pointer: the filter blocks it now.
    rig.mem.image().writePointer(0x42000000, 0x48000000);
    auto refill = rig.mem.load(loadAt(0x42000000, 0x1000, true), now);
    tickUntil(rig.mem, now, *refill + 20);
    RunStats after;
    rig.mem.collectStats(after);
    EXPECT_EQ(after.prefIssued[1], before.prefIssued[1]);
}

TEST(MemorySystem, CoordinatedThrottlingReactsToUselessPrefetches)
{
    SystemConfig cfg;
    cfg.primary = PrimaryKind::None; // keep the miss stream visible
    cfg.lds = LdsKind::Cdp;
    cfg.throttle = ThrottleKind::Coordinated;
    cfg.intervalEvictions = 32;
    cfg.l2Bytes = 64 * 1024;
    Rig rig(cfg);
    // Junk pointers everywhere; no demand ever touches the targets.
    auto rnd = [](unsigned i) {
        return 0x40000000u + ((i * 2654435761u) % 0x400000u);
    };
    for (unsigned i = 0; i < 8192; ++i)
        rig.mem.image().writePointer(0x40000000 + i * 128,
                                     0x40800000 + rnd(i) % 0x100000);
    Cycle now{};
    for (unsigned i = 0; i < 1200; ++i) {
        auto fill =
            rig.mem.load(loadAt(0x40000000 + i * 128, 0x1000, true),
                         now);
        if (fill) {
            tickUntil(rig.mem, now, *fill + 1);
            now = *fill + 2;
        } else {
            rig.mem.tick(now);
            ++now;
        }
    }
    EXPECT_GT(rig.mem.intervalsElapsed(), 2u);
    // A uniformly useless CDP must have been throttled down.
    EXPECT_LT(static_cast<int>(rig.mem.ldsLevel()),
              static_cast<int>(AggLevel::Aggressive));
}

TEST(MemorySystem, PabKeepsOnlyOnePrefetcherEnabled)
{
    SystemConfig cfg;
    cfg.lds = LdsKind::Cdp;
    cfg.throttle = ThrottleKind::Pab;
    cfg.intervalEvictions = 32;
    cfg.l2Bytes = 64 * 1024;
    Rig rig(cfg);
    for (unsigned i = 0; i < 8192; ++i)
        rig.mem.image().writePointer(0x40000000 + i * 128,
                                     0x40f00000 + (i % 512) * 128);
    Cycle now{};
    for (unsigned i = 0; i < 1200; ++i) {
        auto fill =
            rig.mem.load(loadAt(0x40000000 + i * 128, 0x1000, true),
                         now);
        if (fill) {
            tickUntil(rig.mem, now, *fill + 1);
            now = *fill + 2;
        } else {
            rig.mem.tick(now);
            ++now;
        }
    }
    EXPECT_GT(rig.mem.intervalsElapsed(), 2u);
    EXPECT_NE(rig.mem.primaryEnabled(), rig.mem.ldsEnabled());
}

} // namespace
} // namespace ecdp
