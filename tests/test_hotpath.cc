/**
 * @file
 * Hot-path flattening tests: the SoA cache/MSHR layout, the SIMD CDP
 * candidate kernel, and the phase-attribution profiler must all be
 * pure optimisations/observations — same results, different speed.
 *
 * Three layers of proof:
 *  - kernel fuzz: candidateMaskScalar is the oracle; the AVX2 kernel
 *    (when built) must agree bit-for-bit on randomized block images,
 *    compare widths, block sizes and tail slot counts, and both must
 *    agree with the one-word isPointerCandidate predicate;
 *  - conservation: the PhaseProfiler's per-phase breakdown must sum
 *    exactly to its own start/stop window and account for (nearly)
 *    all of an outer wall-clock measurement around it;
 *  - identity matrix: attaching the profiler to a run must not change
 *    one byte of its stats JSON, across the same workload×config
 *    matrix (plus the 64B-block edge) the scheduler-exactness suite
 *    pins — every case crossing the SoA cache, the SoA MSHR file and
 *    whichever CDP kernel the build selected.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "cache/mshr.hh"
#include "compiler/profiling_compiler.hh"
#include "obs/phase_profiler.hh"
#include "prefetch/cdp.hh"
#include "sim/experiment.hh"
#include "sim/simulator.hh"
#include "stats/json.hh"
#include "workloads/workload.hh"

namespace ecdp
{
namespace
{

// ---------------------------------------------------------------
// Kernel fuzz: scalar ≡ SIMD candidate sets.
// ---------------------------------------------------------------

/** Reference implementation built on the public one-word predicate. */
std::uint64_t
oracleMask(const ContentDirectedPrefetcher &cdp, Addr block_vaddr,
           const std::uint8_t *bytes, unsigned slots)
{
    std::uint64_t mask = 0;
    for (unsigned slot = 0; slot < slots; ++slot) {
        std::uint32_t word = 0;
        for (unsigned b = 0; b < kPointerBytes; ++b) {
            word |= std::uint32_t{bytes[slot * kPointerBytes + b]}
                    << (8 * b);
        }
        if (cdp.isPointerCandidate(block_vaddr, word))
            mask |= std::uint64_t{1} << slot;
    }
    return mask;
}

TEST(CdpCandidateKernel, ScalarMatchesSimdOnFuzzedBlocks)
{
    // Deterministic seed: a failure reproduces.
    std::mt19937 rng(0xecd9u);
    std::uniform_int_distribution<std::uint32_t> u32;
    std::uniform_int_distribution<unsigned> byteDist(0, 255);

    const unsigned block_sizes[] = {64, 128, 256};
    const unsigned compare_bits[] = {1, 4, 8, 12, 17, 31};

    for (unsigned block_bytes : block_sizes) {
        const unsigned max_slots = block_bytes / kPointerBytes;
        std::vector<std::uint8_t> bytes(block_bytes);
        for (unsigned cb : compare_bits) {
            ContentDirectedPrefetcher cdp(cb, block_bytes);
            for (int iter = 0; iter < 400; ++iter) {
                const Addr block_vaddr{kHeapBase.raw() +
                                       (u32(rng) & 0x00FFFF80u)};
                // Mix of byte noise, heap-looking pointers and zero
                // words so every kernel branch sees hits and misses.
                for (auto &b : bytes)
                    b = static_cast<std::uint8_t>(byteDist(rng));
                for (unsigned slot = 0; slot < max_slots; ++slot) {
                    const unsigned roll = byteDist(rng);
                    std::uint32_t word;
                    if (roll < 96)
                        word = kHeapBase.raw() +
                               (u32(rng) & 0x00FFFFFFu);
                    else if (roll < 128)
                        word = 0;
                    else
                        continue; // keep the random bytes
                    for (unsigned b = 0; b < kPointerBytes; ++b) {
                        bytes[slot * kPointerBytes + b] =
                            static_cast<std::uint8_t>(
                                word >> (8 * b) & 0xFF);
                    }
                }
                // Full block, plus ragged slot counts to force the
                // SIMD kernel through its scalar tail.
                for (unsigned slots :
                     {max_slots, max_slots - 3u, 5u, 1u}) {
                    const std::uint64_t expect = oracleMask(
                        cdp, block_vaddr, bytes.data(), slots);
                    EXPECT_EQ(cdp.candidateMaskScalar(
                                  block_vaddr, bytes.data(), slots),
                              expect)
                        << "scalar cb=" << cb << " slots=" << slots;
#if defined(ECDP_HAVE_AVX2)
                    EXPECT_EQ(cdp.candidateMaskAvx2(
                                  block_vaddr, bytes.data(), slots),
                              expect)
                        << "avx2 cb=" << cb << " slots=" << slots;
#endif
                    EXPECT_EQ(cdp.candidateMask(block_vaddr,
                                                bytes.data(), slots),
                              expect)
                        << "dispatch cb=" << cb << " slots=" << slots;
                }
            }
        }
    }
}

// ---------------------------------------------------------------
// MshrFile SoA probe lane.
// ---------------------------------------------------------------

TEST(MshrFileSoa, ValidMaskMirrorsAllocationOrder)
{
    MshrFile mshrs(8);
    EXPECT_EQ(mshrs.validMask(), 0u);
    Mshr &a = mshrs.allocate(0x40000000);
    Mshr &b = mshrs.allocate(0x40000080);
    Mshr &c = mshrs.allocate(0x40000100);
    EXPECT_EQ(mshrs.validMask(), 0b111u);
    // Releasing the middle entry frees its slot; the next allocation
    // must reuse the lowest free index, as the original linear
    // first-invalid scan did.
    mshrs.release(b);
    EXPECT_EQ(mshrs.validMask(), 0b101u);
    Mshr &d = mshrs.allocate(0x40000180);
    EXPECT_EQ(&d, &b);
    EXPECT_EQ(mshrs.validMask(), 0b111u);
    // find() goes through the packed address lane.
    EXPECT_EQ(mshrs.find(0x40000180), &d);
    EXPECT_EQ(mshrs.find(0x40000080), nullptr);
    mshrs.release(a);
    mshrs.release(c);
    mshrs.release(d);
    EXPECT_EQ(mshrs.validMask(), 0u);
}

TEST(CacheSoa, ContentVersionTracksInsertsAndInvalidates)
{
    Cache cache("L", 1024, 2, 64);
    const std::uint64_t v0 = cache.contentVersion();
    cache.insert(0x40000000);
    EXPECT_EQ(cache.contentVersion(), v0 + 1);
    // Refreshing a resident block changes recency, not content.
    cache.insert(0x40000000);
    EXPECT_EQ(cache.contentVersion(), v0 + 1);
    cache.lookup(0x40000000);
    EXPECT_EQ(cache.contentVersion(), v0 + 1);
    cache.invalidate(0x40000000);
    EXPECT_EQ(cache.contentVersion(), v0 + 2);
    // Invalidating an absent block is a no-op.
    cache.invalidate(0x40000000);
    EXPECT_EQ(cache.contentVersion(), v0 + 2);
}

// ---------------------------------------------------------------
// Phase-attribution conservation.
// ---------------------------------------------------------------

TEST(PhaseProfiler, PhasesArePairwiseExclusiveAndSumToWindow)
{
    using Phase = obs::PhaseProfiler::Phase;
    obs::PhaseProfiler prof;
    prof.start();
    Phase prev = prof.switchTo(Phase::CoreTick);
    EXPECT_EQ(prev, Phase::Other);
    // Busy-wait a little so the bucket is visibly nonzero.
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::microseconds(200);
    while (std::chrono::steady_clock::now() < until) {
    }
    prev = prof.switchTo(Phase::Dram);
    EXPECT_EQ(prev, Phase::CoreTick);
    prof.stop();

    EXPECT_GT(prof.seconds(Phase::CoreTick), 0.0);
    double sum = 0.0;
    for (unsigned p = 0; p < obs::PhaseProfiler::kPhaseCount; ++p)
        sum += prof.seconds(static_cast<Phase>(p));
    // Flat-switch accounting: the total IS the sum, to the nanosecond.
    EXPECT_DOUBLE_EQ(sum, prof.totalSeconds());
}

TEST(PhaseConservation, BreakdownAccountsForSimulationWall)
{
    obs::PhaseProfiler prof;
    Observability obs;
    obs.phases = &prof;
    const SystemConfig cfg = configs::streamCdpThrottled();
    const Workload workload = buildWorkload("health", InputSet::Train);

    const auto t0 = std::chrono::steady_clock::now();
    prof.start();
    simulate(cfg, workload, obs);
    prof.stop();
    const auto t1 = std::chrono::steady_clock::now();
    const double outer =
        std::chrono::duration<double>(t1 - t0).count();

    double sum = 0.0;
    for (unsigned p = 0; p < obs::PhaseProfiler::kPhaseCount; ++p) {
        sum += prof.seconds(
            static_cast<obs::PhaseProfiler::Phase>(p));
    }
    EXPECT_DOUBLE_EQ(sum, prof.totalSeconds());
    // The profiler window sits strictly inside the outer measurement;
    // the slack covers only the clock reads around start()/stop().
    EXPECT_LE(sum, outer);
    EXPECT_GE(sum, 0.90 * outer - 0.002) << "unattributed wall time";

    using Phase = obs::PhaseProfiler::Phase;
    EXPECT_GT(prof.seconds(Phase::CoreTick), 0.0);
    EXPECT_GT(prof.seconds(Phase::MemTick), 0.0);
    EXPECT_GT(prof.seconds(Phase::CacheProbe), 0.0);
    // streamCdpThrottled scans fills, reads DRAM, skips cycles and
    // collects stats — every instrumented phase must show up.
    EXPECT_GT(prof.seconds(Phase::CdpScan), 0.0);
    EXPECT_GT(prof.seconds(Phase::Dram), 0.0);
    EXPECT_GT(prof.seconds(Phase::Scheduler), 0.0);
    EXPECT_GT(prof.seconds(Phase::Stats), 0.0);
}

// ---------------------------------------------------------------
// Stats identity with the profiler attached.
// ---------------------------------------------------------------

const HintTable &
trainHints(const std::string &bench)
{
    static std::map<std::string, HintTable> cache;
    auto it = cache.find(bench);
    if (it == cache.end()) {
        it = cache
                 .emplace(bench,
                          ProfilingCompiler::profile(
                              buildWorkload(bench, InputSet::Train)))
                 .first;
    }
    return it->second;
}

std::string
statsJson(const RunStats &stats)
{
    std::ostringstream os;
    writeRunStatsJson(os, stats, "hotpath");
    return os.str();
}

/** Attaching the phase profiler must be pure observation: the stats
 *  JSON of an unprofiled and a profiled run must be byte-identical
 *  (in the event-driven mode the benchmark attributes). */
void
expectProfiledIdentical(const std::string &bench, SystemConfig cfg)
{
    const Workload workload = buildWorkload(bench, InputSet::Train);
    cfg.cycleSkipping = true;
    RunStats plain = simulate(cfg, workload);

    obs::PhaseProfiler prof;
    Observability obs;
    obs.phases = &prof;
    prof.start();
    RunStats profiled = simulate(cfg, workload, obs);
    prof.stop();

    EXPECT_EQ(statsJson(plain), statsJson(profiled)) << bench;
    EXPECT_GT(prof.totalSeconds(), 0.0);
}

struct ProfiledCase
{
    const char *bench;
    const char *config;
};

class ProfilerIsPureObservation
    : public ::testing::TestWithParam<ProfiledCase>
{
};

SystemConfig
profiledCaseConfig(const ProfiledCase &c)
{
    const std::string config = c.config;
    if (config == "noprefetch")
        return configs::noPrefetch();
    if (config == "baseline")
        return configs::baseline();
    if (config == "cdp+throttle")
        return configs::streamCdpThrottled();
    if (config == "full")
        return configs::fullProposal(&trainHints(c.bench));
    if (config == "ecdp+fdp")
        return configs::streamEcdpFdp(&trainHints(c.bench));
    if (config == "cdp+pab")
        return configs::streamCdpPab();
    if (config == "dbp")
        return configs::streamDbp();
    if (config == "markov")
        return configs::streamMarkov();
    if (config == "side-buffer") {
        SystemConfig cfg = configs::streamCdp();
        cfg.idealNoPollution = true;
        return cfg;
    }
    throw std::runtime_error("unknown hotpath config " + config);
}

TEST_P(ProfilerIsPureObservation, StatsJsonIsByteIdentical)
{
    const ProfiledCase &c = GetParam();
    expectProfiledIdentical(c.bench, profiledCaseConfig(c));
}

INSTANTIATE_TEST_SUITE_P(
    ConfigMatrix, ProfilerIsPureObservation,
    ::testing::Values(ProfiledCase{"health", "baseline"},
                      ProfiledCase{"mst", "cdp+throttle"},
                      ProfiledCase{"bisort", "full"},
                      ProfiledCase{"perimeter", "ecdp+fdp"},
                      ProfiledCase{"health", "cdp+pab"},
                      ProfiledCase{"mst", "dbp"},
                      ProfiledCase{"bisort", "markov"},
                      ProfiledCase{"health", "side-buffer"},
                      ProfiledCase{"mst", "noprefetch"}),
    [](const ::testing::TestParamInfo<ProfiledCase> &info) {
        std::string name = std::string(info.param.bench) + "_" +
                           info.param.config;
        for (char &ch : name) {
            if (ch == '+' || ch == '-')
                ch = '_';
        }
        return name;
    });

TEST(ProfilerIsPureObservationEdge, SmallBlockSizeConfig)
{
    // 64 B blocks: 16-slot scans exercise the short-block path of the
    // candidate kernel inside a whole run.
    SystemConfig cfg = configs::baseline();
    cfg.l1BlockBytes = 64;
    cfg.l2BlockBytes = 64;
    expectProfiledIdentical("health", cfg);
}

} // namespace
} // namespace ecdp
