/**
 * @file
 * Tests for the JSON stats exporter.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/json.hh"

namespace ecdp
{
namespace
{

TEST(Json, EscapesSpecialCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape("a\tb"), "a\\tb");
}

TEST(Json, WritesAllTopLevelFields)
{
    RunStats stats;
    stats.workload = "health";
    stats.cycles = Cycle{1000};
    stats.instructions = 4000;
    stats.ipc = 4.0;
    stats.bpki = 12.5;
    stats.busTransactions = 50;
    stats.l2DemandMisses = 7;
    stats.prefIssued[1] = 10;
    stats.prefUsed[1] = 6;
    stats.prefLate[1] = 2;

    std::ostringstream oss;
    writeRunStatsJson(oss, stats, "full");
    std::string json = oss.str();
    for (const char *needle :
         {"\"workload\":\"health\"", "\"config\":\"full\"",
          "\"cycles\":1000", "\"instructions\":4000", "\"ipc\":4",
          "\"bpki\":12.5", "\"busTransactions\":50",
          "\"l2DemandMisses\":7", "\"primary\":", "\"lds\":",
          "\"issued\":10", "\"used\":6", "\"late\":2",
          "\"finalLevels\""}) {
        EXPECT_NE(json.find(needle), std::string::npos)
            << "missing " << needle << " in " << json;
    }
}

TEST(Json, ObjectIsBalanced)
{
    RunStats stats;
    stats.workload = "x";
    std::ostringstream oss;
    writeRunStatsJson(oss, stats);
    std::string json = oss.str();
    int depth = 0;
    for (char c : json) {
        depth += c == '{';
        depth -= c == '}';
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
}

TEST(Json, OmitsConfigWhenUnlabelled)
{
    RunStats stats;
    stats.workload = "x";
    std::ostringstream oss;
    writeRunStatsJson(oss, stats);
    EXPECT_EQ(oss.str().find("\"config\""), std::string::npos);
}

TEST(JsonParser, ParsesScalarsObjectsAndArrays)
{
    JsonValue doc = parseJson(
        R"({"a": 1, "b": [true, false, null], "c": {"d": "x\ny"},)"
        R"( "e": -2.5})");
    EXPECT_EQ(doc.at("a").asU64(), 1u);
    const auto &arr = doc.at("b").asArray();
    ASSERT_EQ(arr.size(), 3u);
    EXPECT_TRUE(arr[0].asBool());
    EXPECT_FALSE(arr[1].asBool());
    EXPECT_TRUE(arr[2].isNull());
    EXPECT_EQ(doc.at("c").at("d").asString(), "x\ny");
    EXPECT_EQ(doc.at("e").asDouble(), -2.5);
    EXPECT_EQ(doc.at("e").asI64(), -2);
    EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonParser, PreservesFullUint64Precision)
{
    // 2^64 - 1 is not representable as a double; the parser must keep
    // the source text so integer reads stay exact.
    JsonValue doc = parseJson(R"({"n": 18446744073709551615})");
    EXPECT_EQ(doc.at("n").asU64(), 18446744073709551615ull);
}

TEST(JsonParser, RejectsMalformedInput)
{
    EXPECT_THROW(parseJson("{"), JsonError);
    EXPECT_THROW(parseJson("{\"a\":1,}"), JsonError);
    EXPECT_THROW(parseJson("{\"a\":1} trailing"), JsonError);
    EXPECT_THROW(parseJson("nope"), JsonError);
    EXPECT_FALSE(tryParseJson("[1,").has_value());
    EXPECT_TRUE(tryParseJson("[1, 2]").has_value());
}

TEST(JsonParser, RoundTripsTheStatsWriter)
{
    RunStats stats;
    stats.workload = "health";
    stats.cycles = Cycle{123456789};
    stats.instructions = 42;
    stats.ipc = 0.1234567890123456;
    stats.timedOut = true;
    stats.prefIssued[0] = 7;
    stats.prefDropped[1] = 3;
    std::ostringstream oss;
    writeRunStatsJson(oss, stats, "full");
    JsonValue doc = parseJson(oss.str());
    EXPECT_EQ(doc.at("workload").asString(), "health");
    EXPECT_EQ(doc.at("cycles").asU64(), 123456789u);
    EXPECT_TRUE(doc.at("timedOut").asBool());
    const JsonValue &pref = doc.at("prefetchers");
    EXPECT_EQ(pref.at("primary").at("issued").asU64(), 7u);
    EXPECT_EQ(pref.at("lds").at("dropped").asU64(), 3u);
}

} // namespace
} // namespace ecdp
