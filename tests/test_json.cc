/**
 * @file
 * Tests for the JSON stats exporter.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/json.hh"

namespace ecdp
{
namespace
{

TEST(Json, EscapesSpecialCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape("a\tb"), "a\\tb");
}

TEST(Json, WritesAllTopLevelFields)
{
    RunStats stats;
    stats.workload = "health";
    stats.cycles = 1000;
    stats.instructions = 4000;
    stats.ipc = 4.0;
    stats.bpki = 12.5;
    stats.busTransactions = 50;
    stats.l2DemandMisses = 7;
    stats.prefIssued[1] = 10;
    stats.prefUsed[1] = 6;
    stats.prefLate[1] = 2;

    std::ostringstream oss;
    writeRunStatsJson(oss, stats, "full");
    std::string json = oss.str();
    for (const char *needle :
         {"\"workload\":\"health\"", "\"config\":\"full\"",
          "\"cycles\":1000", "\"instructions\":4000", "\"ipc\":4",
          "\"bpki\":12.5", "\"busTransactions\":50",
          "\"l2DemandMisses\":7", "\"primary\":", "\"lds\":",
          "\"issued\":10", "\"used\":6", "\"late\":2",
          "\"finalLevels\""}) {
        EXPECT_NE(json.find(needle), std::string::npos)
            << "missing " << needle << " in " << json;
    }
}

TEST(Json, ObjectIsBalanced)
{
    RunStats stats;
    stats.workload = "x";
    std::ostringstream oss;
    writeRunStatsJson(oss, stats);
    std::string json = oss.str();
    int depth = 0;
    for (char c : json) {
        depth += c == '{';
        depth -= c == '}';
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
}

TEST(Json, OmitsConfigWhenUnlabelled)
{
    RunStats stats;
    stats.workload = "x";
    std::ostringstream oss;
    writeRunStatsJson(oss, stats);
    EXPECT_EQ(oss.str().find("\"config\""), std::string::npos);
}

} // namespace
} // namespace ecdp
