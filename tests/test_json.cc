/**
 * @file
 * Tests for the JSON stats exporter.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>

#include "stats/json.hh"

namespace ecdp
{
namespace
{

TEST(Json, EscapesSpecialCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape("a\tb"), "a\\tb");
}

TEST(Json, WritesAllTopLevelFields)
{
    RunStats stats;
    stats.workload = "health";
    stats.cycles = Cycle{1000};
    stats.instructions = 4000;
    stats.ipc = 4.0;
    stats.bpki = 12.5;
    stats.busTransactions = 50;
    stats.l2DemandMisses = 7;
    stats.prefIssued[1] = 10;
    stats.prefUsed[1] = 6;
    stats.prefLate[1] = 2;

    std::ostringstream oss;
    writeRunStatsJson(oss, stats, "full");
    std::string json = oss.str();
    for (const char *needle :
         {"\"workload\":\"health\"", "\"config\":\"full\"",
          "\"cycles\":1000", "\"instructions\":4000", "\"ipc\":4",
          "\"bpki\":12.5", "\"busTransactions\":50",
          "\"l2DemandMisses\":7", "\"primary\":", "\"lds\":",
          "\"issued\":10", "\"used\":6", "\"late\":2",
          "\"finalLevels\""}) {
        EXPECT_NE(json.find(needle), std::string::npos)
            << "missing " << needle << " in " << json;
    }
}

TEST(Json, ObjectIsBalanced)
{
    RunStats stats;
    stats.workload = "x";
    std::ostringstream oss;
    writeRunStatsJson(oss, stats);
    std::string json = oss.str();
    int depth = 0;
    for (char c : json) {
        depth += c == '{';
        depth -= c == '}';
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
}

TEST(Json, OmitsConfigWhenUnlabelled)
{
    RunStats stats;
    stats.workload = "x";
    std::ostringstream oss;
    writeRunStatsJson(oss, stats);
    EXPECT_EQ(oss.str().find("\"config\""), std::string::npos);
}

TEST(JsonParser, ParsesScalarsObjectsAndArrays)
{
    JsonValue doc = parseJson(
        R"({"a": 1, "b": [true, false, null], "c": {"d": "x\ny"},)"
        R"( "e": -2.5})");
    EXPECT_EQ(doc.at("a").asU64(), 1u);
    const auto &arr = doc.at("b").asArray();
    ASSERT_EQ(arr.size(), 3u);
    EXPECT_TRUE(arr[0].asBool());
    EXPECT_FALSE(arr[1].asBool());
    EXPECT_TRUE(arr[2].isNull());
    EXPECT_EQ(doc.at("c").at("d").asString(), "x\ny");
    EXPECT_EQ(doc.at("e").asDouble(), -2.5);
    EXPECT_EQ(doc.at("e").asI64(), -2);
    EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonParser, PreservesFullUint64Precision)
{
    // 2^64 - 1 is not representable as a double; the parser must keep
    // the source text so integer reads stay exact.
    JsonValue doc = parseJson(R"({"n": 18446744073709551615})");
    EXPECT_EQ(doc.at("n").asU64(), 18446744073709551615ull);
}

TEST(JsonParser, RejectsMalformedInput)
{
    EXPECT_THROW(parseJson("{"), JsonError);
    EXPECT_THROW(parseJson("{\"a\":1,}"), JsonError);
    EXPECT_THROW(parseJson("{\"a\":1} trailing"), JsonError);
    EXPECT_THROW(parseJson("nope"), JsonError);
    EXPECT_FALSE(tryParseJson("[1,").has_value());
    EXPECT_TRUE(tryParseJson("[1, 2]").has_value());
}

TEST(JsonParserEdge, DeepNestingUnderTheCapParses)
{
    // 150 levels: deep, but under the 192-level guard.
    std::string doc;
    for (int i = 0; i < 150; ++i)
        doc += "[";
    doc += "42";
    for (int i = 0; i < 150; ++i)
        doc += "]";
    JsonValue v = parseJson(doc);
    for (int i = 0; i < 150; ++i)
        v = v.asArray().at(0);
    EXPECT_EQ(v.asI64(), 42);
}

TEST(JsonParserEdge, NestingBeyondTheCapFailsNotCrashes)
{
    // A hostile "[[[[..." must throw JsonError long before the
    // recursion exhausts the stack — tryParseJson can catch an
    // exception, not a stack overflow.
    const std::string bombs[] = {
        std::string(100000, '['),
        [] {
            std::string s;
            for (int i = 0; i < 100000; ++i)
                s += "{\"a\":";
            return s;
        }(),
    };
    for (const std::string &bomb : bombs) {
        EXPECT_THROW(parseJson(bomb), JsonError);
        EXPECT_FALSE(tryParseJson(bomb).has_value());
    }
}

TEST(JsonParserEdge, DecodesEveryEscapeAndRejectsBadOnes)
{
    EXPECT_EQ(parseJson("\"a\\\"b\\\\c\\/d\\b\\f\\n\\r\\t\"")
                  .asString(),
              "a\"b\\c/d\b\f\n\r\t");
    // \u escapes: ASCII, 2-byte and 3-byte UTF-8 ranges.
    EXPECT_EQ(parseJson("\"\\u0041\"").asString(), "A");
    EXPECT_EQ(parseJson("\"\\u00e9\"").asString(), "\xc3\xa9");
    EXPECT_EQ(parseJson("\"\\u20ac\"").asString(),
              "\xe2\x82\xac");
    EXPECT_THROW(parseJson("\"\\u12g4\""), JsonError);
    EXPECT_THROW(parseJson("\"\\u12\""), JsonError);
    EXPECT_THROW(parseJson("\"\\q\""), JsonError);
    EXPECT_THROW(parseJson("\"unterminated"), JsonError);
    EXPECT_THROW(parseJson("\"trailing backslash\\"), JsonError);
}

TEST(JsonParserEdge, HugeAndEdgeNumbers)
{
    // Full uint64 range survives via the preserved number text.
    EXPECT_EQ(parseJson("18446744073709551615").asU64(),
              18446744073709551615ull);
    EXPECT_EQ(parseJson("-9223372036854775808").asI64(),
              INT64_MIN);
    // Beyond-double magnitudes parse (text preserved; asDouble
    // saturates to inf per strtod) rather than erroring out.
    const JsonValue big = parseJson("1e400");
    EXPECT_EQ(big.numberText(), "1e400");
    EXPECT_TRUE(std::isinf(big.asDouble()));
    EXPECT_EQ(parseJson("1e-400").asDouble(), 0.0);
    EXPECT_DOUBLE_EQ(parseJson("-1.25e2").asDouble(), -125.0);
    // Malformed shapes all throw.
    EXPECT_THROW(parseJson("1."), JsonError);
    EXPECT_THROW(parseJson(".5"), JsonError);
    EXPECT_THROW(parseJson("1e"), JsonError);
    EXPECT_THROW(parseJson("--1"), JsonError);
    EXPECT_THROW(parseJson("+1"), JsonError);
    EXPECT_THROW(parseJson("01x"), JsonError);
}

TEST(JsonParserEdge, TrailingGarbageAlwaysRejected)
{
    EXPECT_THROW(parseJson("{} {}"), JsonError);
    EXPECT_THROW(parseJson("[1]2"), JsonError);
    EXPECT_THROW(parseJson("1 1"), JsonError);
    // Embedded NUL after a valid document is trailing garbage too.
    EXPECT_THROW(parseJson(std::string("null\0x", 6)), JsonError);
    EXPECT_THROW(parseJson("\"s\"\"t\""), JsonError);
    // ... but trailing whitespace is fine.
    EXPECT_EQ(parseJson("  7  \n\t").asI64(), 7);
}

TEST(JsonParserEdge, DuplicateKeysFirstWins)
{
    const JsonValue doc =
        parseJson("{\"k\":1,\"k\":2,\"other\":3}");
    EXPECT_EQ(doc.at("k").asI64(), 1);
    EXPECT_EQ(doc.at("other").asI64(), 3);
    EXPECT_EQ(doc.asObject().size(), 2u);
}

TEST(JsonParserEdge, EmptyAndWhitespaceInputs)
{
    EXPECT_THROW(parseJson(""), JsonError);
    EXPECT_THROW(parseJson("   \n\t "), JsonError);
    EXPECT_THROW(parseJson("[,]"), JsonError);
    EXPECT_THROW(parseJson("{,}"), JsonError);
    EXPECT_THROW(parseJson("{\"a\"}"), JsonError);
    EXPECT_THROW(parseJson("{\"a\":}"), JsonError);
    EXPECT_THROW(parseJson("{1:2}"), JsonError);
    EXPECT_EQ(parseJson("{ }").asObject().size(), 0u);
    EXPECT_EQ(parseJson("[ ]").asArray().size(), 0u);
}

TEST(JsonParser, RoundTripsTheStatsWriter)
{
    RunStats stats;
    stats.workload = "health";
    stats.cycles = Cycle{123456789};
    stats.instructions = 42;
    stats.ipc = 0.1234567890123456;
    stats.timedOut = true;
    stats.prefIssued[0] = 7;
    stats.prefDropped[1] = 3;
    std::ostringstream oss;
    writeRunStatsJson(oss, stats, "full");
    JsonValue doc = parseJson(oss.str());
    EXPECT_EQ(doc.at("workload").asString(), "health");
    EXPECT_EQ(doc.at("cycles").asU64(), 123456789u);
    EXPECT_TRUE(doc.at("timedOut").asBool());
    const JsonValue &pref = doc.at("prefetchers");
    EXPECT_EQ(pref.at("primary").at("issued").asU64(), 7u);
    EXPECT_EQ(pref.at("lds").at("dropped").asU64(), 3u);
}

} // namespace
} // namespace ecdp
