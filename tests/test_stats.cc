/**
 * @file
 * Unit tests for the statistics helpers and the table printer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/stats.hh"
#include "stats/table.hh"

namespace ecdp
{
namespace
{

TEST(Means, ArithmeticMean)
{
    EXPECT_DOUBLE_EQ(amean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(amean({}), 0.0);
}

TEST(Means, GeometricMean)
{
    EXPECT_DOUBLE_EQ(gmean({4.0, 1.0}), 2.0);
    EXPECT_NEAR(gmean({1.0, 2.0, 4.0}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(gmean({}), 0.0);
}

TEST(Means, HarmonicMean)
{
    EXPECT_DOUBLE_EQ(hmean({1.0, 1.0}), 1.0);
    EXPECT_NEAR(hmean({1.0, 3.0}), 1.5, 1e-12);
}

TEST(Means, HarmonicLeqGeometricLeqArithmetic)
{
    std::vector<double> v{0.5, 1.7, 2.2, 9.0};
    EXPECT_LE(hmean(v), gmean(v) + 1e-12);
    EXPECT_LE(gmean(v), amean(v) + 1e-12);
}

TEST(Ratios, SafeRatioHandlesZeroDenominator)
{
    EXPECT_DOUBLE_EQ(safeRatio(5.0, 2.0), 2.5);
    EXPECT_DOUBLE_EQ(safeRatio(5.0, 0.0), 0.0);
}

TEST(Ratios, PercentDelta)
{
    EXPECT_NEAR(percentDelta(1.1, 1.0), 10.0, 1e-9);
    EXPECT_NEAR(percentDelta(0.9, 1.0), -10.0, 1e-9);
    EXPECT_DOUBLE_EQ(percentDelta(1.0, 0.0), 0.0);
}

TEST(IntervalCounter, StartsAtZero)
{
    IntervalCounter counter;
    EXPECT_EQ(counter.value(), 0u);
    EXPECT_EQ(counter.during(), 0u);
    EXPECT_EQ(counter.lifetime(), 0u);
}

TEST(IntervalCounter, Equation3HalfOldHalfNew)
{
    IntervalCounter counter;
    counter.add(100);
    counter.endInterval();
    EXPECT_EQ(counter.value(), 50u); // 0/2 + 100/2
    counter.add(200);
    counter.endInterval();
    EXPECT_EQ(counter.value(), 125u); // 50/2 + 200/2
}

TEST(IntervalCounter, AgedValueExcludesCurrentInterval)
{
    IntervalCounter counter;
    counter.add(10);
    EXPECT_EQ(counter.value(), 0u);
    EXPECT_EQ(counter.during(), 10u);
}

TEST(IntervalCounter, LifetimeAccumulatesEverything)
{
    IntervalCounter counter;
    counter.add(10);
    counter.endInterval();
    counter.add(5);
    EXPECT_EQ(counter.lifetime(), 15u);
}

TEST(IntervalCounter, OldBehaviourDecaysAway)
{
    IntervalCounter counter;
    counter.add(1024);
    counter.endInterval();
    for (int i = 0; i < 12; ++i)
        counter.endInterval(); // idle intervals
    EXPECT_EQ(counter.value(), 0u);
}

TEST(IntervalCounter, ResetClearsEverything)
{
    IntervalCounter counter;
    counter.add(7);
    counter.endInterval();
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
    EXPECT_EQ(counter.lifetime(), 0u);
}

TEST(TablePrinter, AlignsColumnsAndPrintsHeader)
{
    TablePrinter table("demo");
    table.header({"name", "value"});
    table.row().cell("longish-name").cell(std::uint64_t{7});
    table.row().cell("x").cell(3.14159, 2);
    std::ostringstream oss;
    table.print(oss);
    std::string out = oss.str();
    EXPECT_NE(out.find("== demo =="), std::string::npos);
    EXPECT_NE(out.find("longish-name"), std::string::npos);
    EXPECT_NE(out.find("3.14"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TablePrinter, NumericFormattingRespectsDecimals)
{
    TablePrinter table("t");
    table.row().cell(1.23456, 3);
    std::ostringstream oss;
    table.print(oss);
    EXPECT_NE(oss.str().find("1.235"), std::string::npos);
}

} // namespace
} // namespace ecdp
