/**
 * @file
 * Tests for the parallel experiment runner: the thread pool, the
 * collision-free run memoization (configHash), timeout reporting,
 * the persistent result cache, and — most importantly — that a
 * parallel run produces exactly the statistics of a serial one.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "runner/result_cache.hh"
#include "runner/runner.hh"
#include "runner/thread_pool.hh"
#include "sim/experiment.hh"
#include "sim/multicore.hh"
#include "sim/simulator.hh"

namespace ecdp
{
namespace
{

using runner::ExperimentRunner;
using runner::ResultCache;
using runner::ThreadPool;

TEST(ThreadPoolTest, RunsEverySubmittedJob)
{
    std::atomic<int> count{0};
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable)
{
    std::atomic<int> count{0};
    ThreadPool pool(2);
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&count] { ++count; });
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, JobExceptionSurfacesInWaitNotTerminate)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([&ran] { ++ran; });
    pool.submit([] { throw std::logic_error("boom in worker"); });
    pool.submit([&ran] { ++ran; });
    // The original exception type crosses to the waiting thread.
    EXPECT_THROW(pool.wait(), std::logic_error);
    EXPECT_EQ(ran.load(), 2); // the other jobs still ran

    // The pool survives: the error was cleared, workers are alive.
    pool.submit([&ran] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPoolTest, DestructorDrainsTheQueue)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 10; ++i)
            pool.submit([&count] { ++count; });
    }
    EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, JobCountRespectsEnvironment)
{
    ::setenv("ECDP_JOBS", "3", 1);
    EXPECT_EQ(runner::jobCountFromEnv(), 3u);
    ::setenv("ECDP_JOBS", "1", 1);
    EXPECT_EQ(runner::jobCountFromEnv(), 1u);
    // Garbage and zero fall back to hardware concurrency (>= 1).
    ::setenv("ECDP_JOBS", "0", 1);
    EXPECT_GE(runner::jobCountFromEnv(), 1u);
    ::setenv("ECDP_JOBS", "banana", 1);
    EXPECT_GE(runner::jobCountFromEnv(), 1u);
    ::unsetenv("ECDP_JOBS");
    EXPECT_GE(runner::jobCountFromEnv(), 1u);
}

TEST(ConfigHashTest, IdenticalConfigsHashEqual)
{
    EXPECT_EQ(configHash(configs::baseline()),
              configHash(configs::baseline()));
    EXPECT_EQ(configHash(SystemConfig{}), configHash(SystemConfig{}));
}

TEST(ConfigHashTest, EveryTweakedKnobChangesTheHash)
{
    const std::uint64_t base = configHash(SystemConfig{});
    auto tweaked = [](auto mutate) {
        SystemConfig cfg;
        mutate(cfg);
        return configHash(cfg);
    };
    EXPECT_NE(base, tweaked([](SystemConfig &c) { c.l2Bytes *= 2; }));
    EXPECT_NE(base, tweaked([](SystemConfig &c) { c.l2Assoc = 4; }));
    EXPECT_NE(base, tweaked([](SystemConfig &c) {
                  c.lds = LdsKind::Cdp;
              }));
    EXPECT_NE(base, tweaked([](SystemConfig &c) {
                  c.throttle = ThrottleKind::Coordinated;
              }));
    EXPECT_NE(base, tweaked([](SystemConfig &c) {
                  c.coordThresholds.tCoverage += 0.1;
              }));
    EXPECT_NE(base, tweaked([](SystemConfig &c) {
                  c.maxCycles = Cycle{1000};
              }));
    EXPECT_NE(base, tweaked([](SystemConfig &c) {
                  c.idealLds = true;
              }));
    EXPECT_NE(base, tweaked([](SystemConfig &c) {
                  c.prefetchQueueEntries = 64;
              }));
}

TEST(ConfigHashTest, HintsHashByContentNotAddress)
{
    HintTable a;
    a.entry(0x400).set(1);
    HintTable b;
    b.entry(0x400).set(1);
    SystemConfig cfg_a;
    cfg_a.hints = &a;
    SystemConfig cfg_b;
    cfg_b.hints = &b;
    EXPECT_EQ(configHash(cfg_a), configHash(cfg_b));

    // An empty table is not the same as no table, and different
    // content hashes differently.
    SystemConfig no_hints;
    HintTable empty;
    SystemConfig empty_hints;
    empty_hints.hints = &empty;
    EXPECT_NE(configHash(no_hints), configHash(empty_hints));
    b.entry(0x400).set(2);
    EXPECT_NE(configHash(cfg_a), configHash(cfg_b));
}

TEST(ExperimentContextTest, LabelReuseWithDifferentConfigThrows)
{
    ExperimentContext ctx;
    ctx.run("parser", configs::noPrefetch(), "np");
    // Regression: the old name+key memoization would silently return
    // the noPrefetch() stats here.
    EXPECT_THROW(ctx.run("parser", configs::baseline(), "np"),
                 std::logic_error);
}

TEST(ExperimentContextTest, SameConfigUnderTwoLabelsRunsOnce)
{
    ExperimentContext ctx;
    const RunStats &a = ctx.run("parser", configs::noPrefetch(), "x");
    const RunStats &b = ctx.run("parser", configs::noPrefetch(), "y");
    EXPECT_EQ(&a, &b);
}

TEST(SimulatorTimeout, SingleCoreWatchdogSetsTimedOut)
{
    SystemConfig cfg = configs::noPrefetch();
    cfg.maxCycles = Cycle{5000};
    RunStats stats = simulate(cfg, buildWorkload("parser",
                                                 InputSet::Train));
    EXPECT_TRUE(stats.timedOut);
    EXPECT_EQ(stats.cycles, cfg.maxCycles);
    // A finished run must not be flagged.
    cfg.maxCycles = Cycle{4'000'000'000ull};
    RunStats done = simulate(cfg, buildWorkload("parser",
                                                InputSet::Train));
    EXPECT_FALSE(done.timedOut);
    EXPECT_GT(done.instructions, 0u);
}

TEST(SimulatorTimeout, MultiCoreWatchdogSetsTimedOut)
{
    SystemConfig cfg = configs::noPrefetch();
    cfg.maxCycles = Cycle{5000};
    const Workload a = buildWorkload("parser", InputSet::Train);
    const Workload b = buildWorkload("bisort", InputSet::Train);
    MultiCoreResult result =
        simulateMultiCore(cfg, {&a, &b}, {1.0, 1.0});
    EXPECT_TRUE(result.timedOut);
    ASSERT_EQ(result.perCore.size(), 2u);
    EXPECT_TRUE(result.perCore[0].timedOut);
    EXPECT_TRUE(result.perCore[1].timedOut);
}

namespace
{

void
expectSameStats(const RunStats &a, const RunStats &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.timedOut, b.timedOut);
    EXPECT_EQ(a.busTransactions, b.busTransactions);
    EXPECT_EQ(a.bpki, b.bpki);
    EXPECT_EQ(a.demandLoads, b.demandLoads);
    EXPECT_EQ(a.l2DemandAccesses, b.l2DemandAccesses);
    EXPECT_EQ(a.l2DemandMisses, b.l2DemandMisses);
    EXPECT_EQ(a.l2LdsMisses, b.l2LdsMisses);
    for (unsigned which = 0; which < 2; ++which) {
        EXPECT_EQ(a.prefIssued[which], b.prefIssued[which]);
        EXPECT_EQ(a.prefUsed[which], b.prefUsed[which]);
        EXPECT_EQ(a.prefLate[which], b.prefLate[which]);
        EXPECT_EQ(a.prefDropped[which], b.prefDropped[which]);
        EXPECT_EQ(a.usefulLatencySum[which],
                  b.usefulLatencySum[which]);
        EXPECT_EQ(a.usefulLatencyCount[which],
                  b.usefulLatencyCount[which]);
    }
    ASSERT_EQ(a.pgStats.size(), b.pgStats.size());
    for (const auto &[id, pg] : a.pgStats) {
        auto it = b.pgStats.find(id);
        ASSERT_NE(it, b.pgStats.end());
        EXPECT_EQ(pg.issued, it->second.issued);
        EXPECT_EQ(pg.used, it->second.used);
    }
    EXPECT_EQ(a.finalPrimaryLevel, b.finalPrimaryLevel);
    EXPECT_EQ(a.finalLdsLevel, b.finalLdsLevel);
    EXPECT_EQ(a.finalPrimaryEnabled, b.finalPrimaryEnabled);
    EXPECT_EQ(a.finalLdsEnabled, b.finalLdsEnabled);
    EXPECT_EQ(a.intervals, b.intervals);
    ASSERT_EQ(a.intervalSeries.size(), b.intervalSeries.size());
    for (std::size_t i = 0; i < a.intervalSeries.size(); ++i) {
        const IntervalSample &x = a.intervalSeries[i];
        const IntervalSample &y = b.intervalSeries[i];
        EXPECT_EQ(x.cycle, y.cycle);
        for (unsigned which = 0; which < 2; ++which) {
            EXPECT_EQ(x.accuracy[which], y.accuracy[which]);
            EXPECT_EQ(x.coverage[which], y.coverage[which]);
        }
        EXPECT_EQ(x.primaryLevel, y.primaryLevel);
        EXPECT_EQ(x.ldsLevel, y.ldsLevel);
        EXPECT_EQ(x.primaryEnabled, y.primaryEnabled);
        EXPECT_EQ(x.ldsEnabled, y.ldsEnabled);
    }
}

} // namespace

TEST(ExperimentRunnerTest, ParallelRunsMatchSerialExactly)
{
    const std::vector<std::string> names{"parser", "bisort", "mst"};
    const std::vector<std::pair<std::string, SystemConfig>> grid{
        {"np", configs::noPrefetch()},
        {"base", configs::baseline()},
        {"ideal", configs::idealLds()},
    };

    ExperimentContext serial_ctx;
    ExperimentContext parallel_ctx;
    ExperimentRunner parallel(parallel_ctx, 4);
    parallel.setProgressStream(nullptr);
    for (const auto &[key, cfg] : grid) {
        for (const std::string &name : names) {
            parallel.submit(name, key,
                            [cfg](ExperimentContext &,
                                  const std::string &) { return cfg; });
        }
    }
    const auto &results = parallel.wait();
    ASSERT_EQ(results.size(), names.size() * grid.size());

    std::size_t i = 0;
    for (const auto &[key, cfg] : grid) {
        for (const std::string &name : names) {
            const RunStats &serial = serial_ctx.run(name, cfg, key);
            ASSERT_EQ(results[i].name, name);
            ASSERT_EQ(results[i].key, key);
            ASSERT_NE(results[i].stats, nullptr);
            EXPECT_TRUE(results[i].error.empty());
            expectSameStats(serial, *results[i].stats);
            // The runner memoized into its context: a serial re-run
            // must return the very same object.
            EXPECT_EQ(results[i].stats,
                      &parallel_ctx.run(name, cfg, key));
            ++i;
        }
    }
}

TEST(ExperimentRunnerTest, FailedJobsSurfaceInWait)
{
    ExperimentContext ctx;
    ExperimentRunner parallel(ctx, 2);
    parallel.setProgressStream(nullptr);
    parallel.submit("parser", "ok",
                    [](ExperimentContext &, const std::string &) {
                        return configs::noPrefetch();
                    });
    parallel.submit("parser", "boom",
                    [](ExperimentContext &,
                       const std::string &) -> SystemConfig {
                        throw std::runtime_error("no such config");
                    });
    EXPECT_THROW(parallel.wait(), std::runtime_error);
}

TEST(ExperimentRunnerTest, SubmitFutureCarriesStatsOrException)
{
    ExperimentContext ctx;
    ExperimentRunner parallel(ctx, 2);
    parallel.setProgressStream(nullptr);
    std::shared_future<const RunStats *> good = parallel.submit(
        "parser", "np",
        [](ExperimentContext &, const std::string &) {
            return configs::noPrefetch();
        });
    std::shared_future<const RunStats *> bad = parallel.submit(
        "parser", "boom",
        [](ExperimentContext &,
           const std::string &) -> SystemConfig {
            throw std::logic_error("deliberately broken config");
        });

    // The success future resolves to the memoized stats object.
    const RunStats *stats = good.get();
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats, &ctx.run("parser", configs::noPrefetch(), "np"));

    // The failure future rethrows the worker's ORIGINAL exception
    // (std::logic_error, not a flattened runtime_error).
    EXPECT_THROW(bad.get(), std::logic_error);
    try {
        bad.get();
        FAIL() << "expected the job exception";
    } catch (const std::logic_error &e) {
        EXPECT_STREQ(e.what(), "deliberately broken config");
    }

    // wait() still reports the grid-level failure.
    EXPECT_THROW(parallel.wait(), std::runtime_error);
}

TEST(ResultCacheTest, RoundTripsExactly)
{
    const std::string dir =
        testing::TempDir() + "/ecdp_cache_roundtrip";
    std::filesystem::remove_all(dir);
    ResultCache cache(dir);

    ExperimentContext ctx;
    SystemConfig cfg = configs::noPrefetch();
    RunStats stats = simulate(cfg, ctx.ref("parser"));
    stats.pgStats[PgId{0x400, -2}] = PgStats{17, 5};
    // Exercise the v2 interval-series leg even though a noPrefetch
    // run records none of its own.
    IntervalSample sample;
    sample.cycle = Cycle{12345};
    sample.accuracy[0] = 0.125;
    sample.accuracy[1] = 1.0 / 3.0; // not exactly representable
    sample.coverage[0] = 0.75;
    sample.coverage[1] = 0.0;
    sample.primaryLevel = AggLevel::Conservative;
    sample.ldsLevel = AggLevel::Aggressive;
    sample.primaryEnabled = false;
    stats.intervalSeries.push_back(sample);
    const std::uint64_t hash = configHash(cfg);

    cache.store("parser", hash, stats);
    std::optional<RunStats> loaded = cache.load("parser", hash);
    ASSERT_TRUE(loaded.has_value());
    expectSameStats(stats, *loaded);

    // A different config hash must miss even though the file for the
    // stored hash exists.
    EXPECT_FALSE(cache.load("parser", hash + 1).has_value());
    EXPECT_FALSE(cache.load("bisort", hash).has_value());
    std::filesystem::remove_all(dir);
}

TEST(ResultCacheTest, StaleVersionOrGarbageReadsAsMiss)
{
    const std::string dir = testing::TempDir() + "/ecdp_cache_stale";
    std::filesystem::remove_all(dir);
    ResultCache cache(dir);
    SystemConfig cfg = configs::noPrefetch();
    const std::uint64_t hash = configHash(cfg);

    std::filesystem::create_directories(dir);
    {
        std::ofstream out(cache.entryPath("parser", hash));
        out << "{\"version\":99999,\"workload\":\"parser\"}";
    }
    EXPECT_FALSE(cache.load("parser", hash).has_value());
    {
        std::ofstream out(cache.entryPath("parser", hash));
        out << "this is not json";
    }
    EXPECT_FALSE(cache.load("parser", hash).has_value());
    std::filesystem::remove_all(dir);
}

TEST(ResultCacheTest, CorruptEntryIsWarnedRemovedAndRebuilt)
{
    const std::string dir =
        testing::TempDir() + "/ecdp_cache_corrupt";
    std::filesystem::remove_all(dir);
    ResultCache cache(dir);
    ExperimentContext ctx;
    SystemConfig cfg = configs::noPrefetch();
    const std::uint64_t hash = configHash(cfg);
    const std::string path = cache.entryPath("parser", hash);

    RunStats stats = simulate(cfg, ctx.ref("parser"));
    cache.store("parser", hash, stats);
    ASSERT_TRUE(cache.load("parser", hash).has_value());

    // Truncate the entry mid-JSON — the classic killed-process /
    // full-disk shape. The load must warn, remove the poisoned
    // file and report a miss instead of trusting or keeping it.
    std::string full;
    {
        std::ifstream in(path);
        std::ostringstream buf;
        buf << in.rdbuf();
        full = buf.str();
    }
    {
        std::ofstream out(path, std::ios::trunc);
        out << full.substr(0, full.size() / 2);
    }
    testing::internal::CaptureStderr();
    EXPECT_FALSE(cache.load("parser", hash).has_value());
    const std::string warning =
        testing::internal::GetCapturedStderr();
    EXPECT_NE(warning.find("corrupt entry"), std::string::npos)
        << warning;
    EXPECT_FALSE(std::filesystem::exists(path));

    // A valid file under the wrong name is a stamp mismatch: also
    // corrupt, also removed.
    {
        std::ofstream out(cache.entryPath("parser", hash + 1));
        out << full;
    }
    testing::internal::CaptureStderr();
    EXPECT_FALSE(cache.load("parser", hash + 1).has_value());
    EXPECT_NE(testing::internal::GetCapturedStderr().find(
                  "stamp mismatch"),
              std::string::npos);
    EXPECT_FALSE(std::filesystem::exists(
        cache.entryPath("parser", hash + 1)));

    // The rebuild path: store again, load cleanly.
    cache.store("parser", hash, stats);
    EXPECT_TRUE(cache.load("parser", hash).has_value());
    std::filesystem::remove_all(dir);
}

TEST(ResultCacheTest, ContextUsesCacheAcrossInstances)
{
    const std::string dir = testing::TempDir() + "/ecdp_cache_ctx";
    std::filesystem::remove_all(dir);
    ::setenv("ECDP_RESULT_CACHE", dir.c_str(), 1);

    RunStats first;
    {
        ExperimentContext ctx;
        first = ctx.run("parser", configs::noPrefetch(), "np");
    }
    EXPECT_TRUE(std::filesystem::exists(
        ResultCache(dir).entryPath("parser",
                                   configHash(configs::noPrefetch()))));
    {
        ExperimentContext ctx;
        const RunStats &again =
            ctx.run("parser", configs::noPrefetch(), "np");
        expectSameStats(first, again);
    }
    ::unsetenv("ECDP_RESULT_CACHE");
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace ecdp
