/**
 * @file
 * Property tests for the EngineRegistry and the engine-stack plumbing
 * in SystemConfig: unknown names fail with a diagnosable error,
 * duplicate registration is rejected, configHash() distinguishes
 * every stack ordering (including duplicates), and instance naming
 * never collides — so two configs that run different engine stacks
 * can never alias in the result cache or the metric tree.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "dram/dram.hh"
#include "engine_harness.hh"
#include "obs/observability.hh"
#include "sim/memory_system.hh"

namespace ecdp
{
namespace
{

TEST(EngineRegistry_, UnknownNameThrowsWithDiagnosis)
{
    try {
        EngineRegistry::instance().create(
            "no-such-engine", harness::defaultEngineContext());
        FAIL() << "create() accepted an unknown engine name";
    } catch (const std::invalid_argument &err) {
        const std::string what = err.what();
        // The error must name the offender and list valid choices.
        EXPECT_NE(what.find("no-such-engine"), std::string::npos)
            << what;
        EXPECT_NE(what.find("stream"), std::string::npos) << what;
    }
    EXPECT_FALSE(EngineRegistry::instance().contains("no-such-engine"));
}

TEST(EngineRegistry_, DuplicateRegistrationThrows)
{
    // "stream" is a builtin, so re-adding it must be rejected (and
    // must not clobber the existing factory).
    EXPECT_THROW(EngineRegistry::instance().add(
                     "stream",
                     [](const EngineContext &) {
                         return std::unique_ptr<PrefetchEngine>{};
                     }),
                 std::logic_error);
    EXPECT_NE(EngineRegistry::instance().create(
                  "stream", harness::defaultEngineContext()),
              nullptr);
}

TEST(EngineRegistry_, NamesAreSortedAndCreatable)
{
    const std::vector<std::string> names =
        EngineRegistry::instance().names();
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
    const EngineContext ctx =
        harness::defaultEngineContext(&harness::scriptHints());
    for (const std::string &name : names) {
        EXPECT_NE(EngineRegistry::instance().create(name, ctx),
                  nullptr)
            << name;
    }
}

TEST(EngineStackHash, OrderAndMultiplicitySensitive)
{
    SystemConfig a;
    a.engines = {"stream", "cdp"};
    SystemConfig b;
    b.engines = {"cdp", "stream"};
    EXPECT_NE(configHash(a), configHash(b));

    SystemConfig c;
    c.engines = {"stream", "cdp", "cdp"};
    EXPECT_NE(configHash(a), configHash(c));
    EXPECT_NE(configHash(b), configHash(c));

    SystemConfig a2;
    a2.engines = {"stream", "cdp"};
    EXPECT_EQ(configHash(a), configHash(a2));
}

TEST(EngineStackHash, RandomStacksCollideOnlyWhenEqual)
{
    // Deterministic fuzz: random stacks (length 1-4, duplicates
    // allowed) drawn from a pool of engines that need no hints. Two
    // configs may share a hash only if their stacks are identical.
    const std::vector<std::string> pool = {"none",   "stream", "ghb",
                                           "cdp",    "dbp",    "markov",
                                           "isb",    "dspatch"};
    std::mt19937 rng(0xec9f);
    std::map<std::uint64_t, std::vector<std::string>> seen;
    for (unsigned trial = 0; trial < 256; ++trial) {
        SystemConfig cfg;
        const unsigned len = 1 + rng() % 4;
        for (unsigned i = 0; i < len; ++i)
            cfg.engines.push_back(pool[rng() % pool.size()]);

        const std::uint64_t hash = configHash(cfg);
        auto [it, inserted] = seen.emplace(hash, cfg.engines);
        if (!inserted) {
            EXPECT_EQ(it->second, cfg.engines)
                << "hash collision between different stacks";
        }
    }
    // The pool admits 8+64+512+4096 stacks; 256 draws must have
    // produced well over one distinct hash.
    EXPECT_GT(seen.size(), 64u);
}

TEST(EngineStackNames, InstanceNamesNeverCollide)
{
    const std::vector<std::string> pool = {"none",   "stream", "ghb",
                                           "cdp",    "dbp",    "markov",
                                           "isb",    "dspatch"};
    std::mt19937 rng(0x5eed);
    for (unsigned trial = 0; trial < 128; ++trial) {
        std::vector<std::string> stack;
        const unsigned len = 1 + rng() % 6;
        for (unsigned i = 0; i < len; ++i)
            stack.push_back(pool[rng() % pool.size()]);

        const std::vector<std::string> instances =
            engineInstanceNames(stack);
        ASSERT_EQ(instances.size(), stack.size());
        // Slot 0/1 keep the legacy scope names the pinned goldens
        // and RunStats arrays rely on.
        EXPECT_EQ(instances[0], "primary");
        if (instances.size() > 1) {
            EXPECT_EQ(instances[1], "lds");
        }
        const std::set<std::string> unique(instances.begin(),
                                           instances.end());
        EXPECT_EQ(unique.size(), instances.size())
            << "duplicate instance name in a " +
                   std::to_string(len) + "-engine stack";
    }
}

TEST(EngineStackNames, DuplicateEnginesGetDistinctCounterScopes)
{
    // The same engine twice in one stack must bind two separate
    // counter subtrees; MetricRegistry::value() throws on a missing
    // path, so this also proves both scopes exist.
    SystemConfig cfg;
    cfg.engines = {"stream", "stream", "stream"};
    obs::MetricRegistry metrics;
    Observability obs{&metrics, nullptr};
    DramSystem dram(cfg.dram, 1);
    MemorySystem mem(cfg, 0, SimMemory{}, &dram, &obs);

    ASSERT_EQ(mem.engineCount(), 3u);
    for (const std::string &inst : {std::string("primary"),
                                    std::string("lds"),
                                    std::string("stream2")}) {
        EXPECT_EQ(metrics.value("core0.pf." + inst + ".generated"),
                  0u)
            << inst;
    }
}

} // namespace
} // namespace ecdp
