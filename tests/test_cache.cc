/**
 * @file
 * Unit and property tests for the set-associative cache and MSHRs.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/mshr.hh"

namespace ecdp
{
namespace
{

Cache
smallCache()
{
    return Cache("t", 4 * 1024, 4, 128); // 8 sets x 4 ways
}

TEST(Cache, MissThenHit)
{
    Cache cache = smallCache();
    EXPECT_EQ(cache.lookup(0x40000000), nullptr);
    cache.insert(0x40000000);
    EXPECT_NE(cache.lookup(0x40000000), nullptr);
}

TEST(Cache, BlockAddressMath)
{
    Cache cache = smallCache();
    EXPECT_EQ(cache.blockAddr(0x4000007f), 0x40000000u);
    EXPECT_EQ(cache.blockAddr(0x40000080), 0x40000080u);
    EXPECT_EQ(cache.blockOffset(0x4000007f), 127u);
}

TEST(Cache, HitAnywhereInBlock)
{
    Cache cache = smallCache();
    cache.insert(0x40000000);
    EXPECT_NE(cache.lookup(0x40000004), nullptr);
    EXPECT_NE(cache.lookup(0x4000007c), nullptr);
    EXPECT_EQ(cache.lookup(0x40000080), nullptr);
}

TEST(Cache, EvictsLruWay)
{
    Cache cache = smallCache();
    // Fill one set: same set index, different tags. Set stride is
    // 8 sets x 128 B = 1 KB.
    for (unsigned i = 0; i < 4; ++i)
        cache.insert(0x40000000 + i * 1024);
    // Touch the first block so the second becomes LRU.
    cache.lookup(0x40000000);
    Cache::Victim victim = cache.insert(0x40000000 + 4 * 1024);
    EXPECT_TRUE(victim.valid);
    EXPECT_EQ(victim.addr, 0x40000000u + 1024);
}

TEST(Cache, InsertIntoInvalidWayEvictsNothing)
{
    Cache cache = smallCache();
    Cache::Victim victim = cache.insert(0x40000000);
    EXPECT_FALSE(victim.valid);
    EXPECT_EQ(cache.evictions(), 0u);
}

TEST(Cache, ReinsertSameBlockIsRefreshNotEviction)
{
    Cache cache = smallCache();
    cache.insert(0x40000000);
    CacheBlock *block = cache.lookup(0x40000000);
    block->dirty = true;
    Cache::Victim victim = cache.insert(0x40000000);
    EXPECT_FALSE(victim.valid);
    // Refresh preserves state such as the dirty bit.
    EXPECT_TRUE(cache.lookup(0x40000000)->dirty);
}

TEST(Cache, VictimCarriesDirtyAndPrefetchState)
{
    Cache cache = smallCache();
    cache.insert(0x40000000, 1);
    cache.lookup(0x40000000, false)->dirty = true;
    for (unsigned i = 1; i <= 4; ++i)
        cache.insert(0x40000000 + i * 1024);
    // First insert is now evicted (it was LRU).
    EXPECT_EQ(cache.evictions(), 1u);
}

TEST(Cache, PrefetchOwnerSetsTag)
{
    Cache cache = smallCache();
    cache.insert(0x40000000, 0);
    cache.insert(0x40000080, 1);
    cache.insert(0x40000100);
    EXPECT_EQ(cache.lookup(0x40000000)->prefetchOwner, 0);
    EXPECT_EQ(cache.lookup(0x40000080)->prefetchOwner, 1);
    EXPECT_EQ(cache.lookup(0x40000100)->prefetchOwner, kNoPrefetchOwner);
}

TEST(Cache, InvalidateRemovesBlock)
{
    Cache cache = smallCache();
    cache.insert(0x40000000);
    cache.invalidate(0x40000010);
    EXPECT_EQ(cache.lookup(0x40000000), nullptr);
}

TEST(Cache, PeekDoesNotDisturbLru)
{
    Cache cache = smallCache();
    for (unsigned i = 0; i < 4; ++i)
        cache.insert(0x40000000 + i * 1024);
    // Peek at the oldest; it must still be the victim.
    EXPECT_NE(cache.peek(0x40000000), nullptr);
    Cache::Victim victim = cache.insert(0x40000000 + 4 * 1024);
    EXPECT_EQ(victim.addr, 0x40000000u);
}

TEST(Cache, EvictionCounterIsTheThrottlingClock)
{
    Cache cache = smallCache();
    for (unsigned i = 0; i < 32; ++i)
        cache.insert(0x40000000 + i * 128); // fills all 32 blocks
    EXPECT_EQ(cache.evictions(), 0u);
    for (unsigned i = 32; i < 40; ++i)
        cache.insert(0x40000000 + i * 128);
    EXPECT_EQ(cache.evictions(), 8u);
}

TEST(Cache, PrefetchedBitsStorageMatchesTable7)
{
    // 1 MB / 128 B = 8192 blocks x 2 bits (Table 7's first row).
    Cache l2("L2", 1024 * 1024, 8, 128);
    EXPECT_EQ(l2.prefetchedBitsStorageBits(), 8192u * 2);
}

/** Property: LRU order is respected for any associativity. */
class CacheLruTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CacheLruTest, OldestUntouchedBlockIsEvicted)
{
    const unsigned assoc = GetParam();
    Cache cache("t", assoc * 128, assoc, 128); // one set
    for (unsigned i = 0; i < assoc; ++i)
        cache.insert(0x40000000 + i * 128 * 1); // all map to set 0
    // With a single set every block conflicts. Touch all but the
    // second block.
    for (unsigned i = 0; i < assoc; ++i) {
        if (i != 1)
            cache.lookup(0x40000000 + i * 128);
    }
    Cache::Victim victim = cache.insert(0x40000000 + assoc * 128);
    ASSERT_TRUE(victim.valid);
    EXPECT_EQ(victim.addr, 0x40000000u + 1 * 128);
}

INSTANTIATE_TEST_SUITE_P(Assocs, CacheLruTest,
                         ::testing::Values(2u, 4u, 8u, 16u));

/** Property: block geometry holds across block sizes. */
class CacheGeometryTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(CacheGeometryTest, OffsetsAndBlockAddrsConsistent)
{
    const unsigned block = GetParam();
    Cache cache("t", 64 * block, 4, block);
    for (Addr addr :
         {Addr{0x40000000}, Addr{0x40000000 + block - 1},
          Addr{0x40000000 + 3 * block + 5}}) {
        EXPECT_EQ(cache.blockAddr(addr).raw() % block, 0u);
        EXPECT_LT(cache.blockOffset(addr), block);
        EXPECT_EQ(cache.blockAddr(addr) + cache.blockOffset(addr),
                  addr);
    }
}

INSTANTIATE_TEST_SUITE_P(Blocks, CacheGeometryTest,
                         ::testing::Values(32u, 64u, 128u, 256u));

TEST(MshrFile, AllocateFindRelease)
{
    MshrFile mshrs(4);
    EXPECT_FALSE(mshrs.full());
    Mshr &entry = mshrs.allocate(0x40000000);
    EXPECT_EQ(mshrs.find(0x40000000), &entry);
    EXPECT_EQ(mshrs.inFlight(), 1u);
    mshrs.release(entry);
    EXPECT_EQ(mshrs.find(0x40000000), nullptr);
    EXPECT_EQ(mshrs.inFlight(), 0u);
}

TEST(MshrFile, FullAfterCapacityAllocations)
{
    MshrFile mshrs(2);
    mshrs.allocate(0x40000000);
    mshrs.allocate(0x40000080);
    EXPECT_TRUE(mshrs.full());
}

TEST(MshrFile, RipeReturnsOnlyDueFills)
{
    MshrFile mshrs(4);
    mshrs.allocate(0x40000000).fillAt = Cycle{100};
    mshrs.allocate(0x40000080).fillAt = Cycle{200};
    std::vector<Mshr *> due;
    mshrs.ripe(Cycle{150}, due);
    EXPECT_EQ(due.size(), 1u);
    mshrs.ripe(Cycle{250}, due);
    EXPECT_EQ(due.size(), 2u);
    // The out-parameter is cleared on every call, so a stale larger
    // result cannot leak through.
    mshrs.ripe(Cycle{50}, due);
    EXPECT_EQ(due.size(), 0u);
}

TEST(MshrFile, EarliestFillTracksMinimum)
{
    MshrFile mshrs(4);
    EXPECT_EQ(mshrs.earliestFill(), kNoEventCycle);
    mshrs.allocate(0x40000000).fillAt = Cycle{300};
    Mshr &second = mshrs.allocate(0x40000080);
    second.fillAt = Cycle{100};
    EXPECT_EQ(mshrs.earliestFill(), Cycle{100});
    mshrs.release(second);
    EXPECT_EQ(mshrs.earliestFill(), Cycle{300});
}

TEST(MshrFile, EcdpStorageMatchesTable7)
{
    // 32 entries x (7 + 16) bits in the paper's Table 7.
    MshrFile mshrs(32);
    EXPECT_EQ(mshrs.ecdpStorageBits(16), 32u * 23);
}

TEST(MshrFile, ReallocationReusesReleasedEntries)
{
    MshrFile mshrs(1);
    Mshr &entry = mshrs.allocate(0x40000000);
    mshrs.release(entry);
    Mshr &again = mshrs.allocate(0x40000080);
    EXPECT_EQ(&entry, &again);
    EXPECT_EQ(again.blockAddr, 0x40000080u);
    // The recycled entry must carry no stale state.
    EXPECT_FALSE(again.demand);
    EXPECT_FALSE(again.dirty);
    EXPECT_EQ(again.engine, kNoPrefetchOwner);
}

} // namespace
} // namespace ecdp
