/**
 * @file
 * Tests for the informing-load profiling implementation (the paper's
 * second Section 3 sketch): it must agree with the functional pass on
 * clearly-beneficial and clearly-harmful pointer groups.
 */

#include <gtest/gtest.h>

#include "compiler/profiling_compiler.hh"
#include "trace/trace.hh"
#include "workloads/workload.hh"

namespace ecdp
{
namespace
{

constexpr Addr kPcWalk = 0x6000;

/** Scattered list whose `next` (slot +2) is followed and whose junk
 *  pointer (slot +1) never is — same shape as the functional test. */
Workload
chainWorkload(std::size_t nodes)
{
    TraceBuilder tb("chain");
    std::vector<Addr> node_addrs, junk_addrs;
    for (std::size_t i = 0; i < nodes; ++i) {
        node_addrs.push_back(tb.heap().allocate(64, 64));
        // Scatter beyond the stream prefetcher's training window so
        // the chain is genuinely only CDP-prefetchable.
        tb.heap().allocate(4288, 64);
    }
    for (std::size_t i = 0; i < nodes; ++i)
        junk_addrs.push_back(tb.heap().allocate(64, 64));
    for (std::size_t i = 0; i < nodes; ++i) {
        tb.mem().write(node_addrs[i], 4, 1u);
        tb.mem().writePointer(node_addrs[i] + 4, junk_addrs[i]);
        tb.mem().writePointer(node_addrs[i] + 8,
                              i + 1 < nodes ? node_addrs[i + 1] : 0);
    }
    tb.beginTimed();
    Addr node = node_addrs[0];
    TraceRef ref = kNoDep;
    while (node != 0) {
        tb.load(kPcWalk, node, 4, ref, true, 30);
        auto [next, nref] = tb.loadPointer(kPcWalk + 8, node + 8, ref,
                                           10);
        node = next;
        ref = nref;
    }
    return std::move(tb).finish();
}

TEST(InformingLoads, AgreesWithFunctionalPassOnClearCases)
{
    Workload wl = chainWorkload(600);
    HintTable functional = ProfilingCompiler::profile(wl);
    HintTable informing =
        ProfilingCompiler::profileWithInformingLoads(wl);

    const PrefetchHint *f = functional.find(kPcWalk);
    const PrefetchHint *i = informing.find(kPcWalk);
    ASSERT_NE(f, nullptr);
    ASSERT_NE(i, nullptr);
    // Both must bless the next pointer and damn the junk pointer.
    EXPECT_TRUE(f->allows(2));
    EXPECT_TRUE(i->allows(2));
    EXPECT_FALSE(f->allows(1));
    EXPECT_FALSE(i->allows(1));
}

TEST(InformingLoads, ProducesUsableHintsForRealBenchmarks)
{
    Workload train = buildWorkload("health", InputSet::Train);
    HintTable hints =
        ProfilingCompiler::profileWithInformingLoads(train);
    // health's patient-next PG is the single most obviously
    // beneficial PG in the suite; any sane profiler finds it.
    EXPECT_FALSE(hints.empty());
}

} // namespace
} // namespace ecdp
