/**
 * @file
 * Exactness tests for the event-driven cycle-skipping scheduler.
 *
 * Cycle skipping is a pure wall-clock optimisation: the simulation
 * loop jumps the clock to the next cycle any component can act on
 * instead of ticking through provably idle cycles. These tests pin
 * the "pure" part: the complete RunStats JSON — every counter, the
 * cycle count, the interval series, the timeout flag — must be
 * byte-identical with skipping on and off, across the prefetcher /
 * throttler / oracle configuration matrix, in single- and multi-core
 * runs, and through the maxCycles watchdog.
 *
 * Also covers the trailing-partial-interval flush: a run that ends
 * mid-feedback-interval emits one final sample at its end cycle
 * instead of silently dropping its tail from the series.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "compiler/profiling_compiler.hh"
#include "sim/experiment.hh"
#include "sim/multicore.hh"
#include "sim/simulator.hh"
#include "stats/json.hh"
#include "workloads/workload.hh"

namespace ecdp
{
namespace
{

const HintTable &
trainHints(const std::string &bench)
{
    static std::map<std::string, HintTable> cache;
    auto it = cache.find(bench);
    if (it == cache.end()) {
        it = cache
                 .emplace(bench,
                          ProfilingCompiler::profile(
                              buildWorkload(bench, InputSet::Train)))
                 .first;
    }
    return it->second;
}

std::string
statsJson(const RunStats &stats)
{
    std::ostringstream os;
    writeRunStatsJson(os, stats, "exactness");
    return os.str();
}

/** Run @p bench under @p cfg with skipping forced on and off and
 *  require byte-identical stats JSON. Returns the (shared) stats. */
RunStats
expectExact(const std::string &bench, SystemConfig cfg)
{
    const Workload workload = buildWorkload(bench, InputSet::Train);
    cfg.cycleSkipping = false;
    RunStats polled = simulate(cfg, workload);
    cfg.cycleSkipping = true;
    RunStats skipped = simulate(cfg, workload);
    EXPECT_EQ(statsJson(polled), statsJson(skipped)) << bench;
    return skipped;
}

struct ExactCase
{
    const char *bench;
    const char *config;
};

class SkippingIsExact : public ::testing::TestWithParam<ExactCase>
{
};

SystemConfig
caseConfig(const ExactCase &c)
{
    const std::string config = c.config;
    if (config == "noprefetch")
        return configs::noPrefetch();
    if (config == "baseline")
        return configs::baseline();
    if (config == "cdp+throttle")
        return configs::streamCdpThrottled();
    if (config == "full")
        return configs::fullProposal(&trainHints(c.bench));
    if (config == "ecdp+fdp")
        return configs::streamEcdpFdp(&trainHints(c.bench));
    if (config == "cdp+pab")
        return configs::streamCdpPab();
    if (config == "dbp")
        return configs::streamDbp();
    if (config == "markov")
        return configs::streamMarkov();
    if (config == "side-buffer") {
        SystemConfig cfg = configs::streamCdp();
        cfg.idealNoPollution = true;
        return cfg;
    }
    throw std::runtime_error("unknown exactness config " + config);
}

TEST_P(SkippingIsExact, StatsJsonIsByteIdentical)
{
    const ExactCase &c = GetParam();
    RunStats stats = expectExact(c.bench, caseConfig(c));
    // Sanity: these runs actually finish and do real work.
    EXPECT_FALSE(stats.timedOut);
    EXPECT_GT(stats.cycles, Cycle{});
    EXPECT_GT(stats.instructions, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ConfigMatrix, SkippingIsExact,
    ::testing::Values(ExactCase{"health", "baseline"},
                      ExactCase{"mst", "cdp+throttle"},
                      ExactCase{"bisort", "full"},
                      ExactCase{"perimeter", "ecdp+fdp"},
                      ExactCase{"health", "cdp+pab"},
                      ExactCase{"mst", "dbp"},
                      ExactCase{"bisort", "markov"},
                      ExactCase{"health", "side-buffer"},
                      ExactCase{"mst", "noprefetch"}),
    [](const ::testing::TestParamInfo<ExactCase> &info) {
        std::string name = std::string(info.param.bench) + "_" +
                           info.param.config;
        for (char &ch : name) {
            if (ch == '+' || ch == '-')
                ch = '_';
        }
        return name;
    });

TEST(SkippingIsExactEdge, SmallBlockSizeConfig)
{
    // 64 B blocks exercise the block-size-derived DRAM bank hash
    // together with the scheduler.
    SystemConfig cfg = configs::baseline();
    cfg.l1BlockBytes = 64;
    cfg.l2BlockBytes = 64;
    expectExact("health", cfg);
}

TEST(SkippingIsExactEdge, MaxCyclesWatchdog)
{
    // A run cut off by the watchdog must time out at the identical
    // cycle with the identical partial stats: the skipping loop
    // clamps its jumps to maxCycles.
    SystemConfig cfg = configs::baseline();
    cfg.maxCycles = Cycle{20'000};
    RunStats stats = expectExact("health", cfg);
    EXPECT_TRUE(stats.timedOut);
    EXPECT_EQ(stats.cycles, Cycle{20'000});
}

TEST(SkippingIsExactEdge, MultiCoreSharedDram)
{
    const Workload health = buildWorkload("health", InputSet::Train);
    const Workload mst = buildWorkload("mst", InputSet::Train);
    const std::vector<const Workload *> mix = {&health, &mst};
    const std::vector<double> alone = {1.0, 1.0};

    SystemConfig cfg = configs::streamCdpThrottled();
    cfg.cycleSkipping = false;
    MultiCoreResult polled = simulateMultiCore(cfg, mix, alone);
    cfg.cycleSkipping = true;
    MultiCoreResult skipped = simulateMultiCore(cfg, mix, alone);

    EXPECT_EQ(polled.timedOut, skipped.timedOut);
    EXPECT_EQ(polled.busTransactions, skipped.busTransactions);
    EXPECT_DOUBLE_EQ(polled.weightedSpeedup, skipped.weightedSpeedup);
    EXPECT_DOUBLE_EQ(polled.hmeanSpeedup, skipped.hmeanSpeedup);
    ASSERT_EQ(polled.perCore.size(), skipped.perCore.size());
    for (std::size_t i = 0; i < polled.perCore.size(); ++i) {
        EXPECT_EQ(statsJson(polled.perCore[i]),
                  statsJson(skipped.perCore[i]))
            << "core " << i;
    }
}

// ---------------------------------------------------------------
// Trailing-partial-interval flush.
// ---------------------------------------------------------------

TEST(TrailingInterval, ShortRunEmitsOnePartialSample)
{
    // With an interval longer than the whole run, no boundary is ever
    // crossed in tick(); the run's entire feedback activity lives in
    // the trailing partial interval and must still produce a sample.
    SystemConfig cfg = configs::streamCdpThrottled();
    cfg.intervalEvictions = 1u << 30;
    RunStats stats =
        simulate(cfg, buildWorkload("health", InputSet::Train));
    EXPECT_EQ(stats.intervals, 0u);
    ASSERT_EQ(stats.intervalSeries.size(), 1u);
    EXPECT_EQ(stats.intervalSeries.back().cycle, stats.cycles);
}

TEST(TrailingInterval, SeriesCarriesTheTail)
{
    // A normal run: completed intervals plus exactly one trailing
    // partial sample stamped with the run's end cycle. intervals
    // keeps counting completed boundaries only.
    SystemConfig cfg = configs::streamCdpThrottled();
    RunStats stats =
        simulate(cfg, buildWorkload("mst", InputSet::Train));
    ASSERT_GT(stats.intervals, 0u);
    ASSERT_EQ(stats.intervalSeries.size(), stats.intervals + 1);
    EXPECT_EQ(stats.intervalSeries.back().cycle, stats.cycles);
    // The completed samples end strictly before the run does.
    EXPECT_LT(stats.intervalSeries[stats.intervals - 1].cycle,
              stats.cycles);
}

} // namespace
} // namespace ecdp
