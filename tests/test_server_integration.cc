// End-to-end daemon tests over real HTTP with real forked worker
// processes (`ecdpd --worker`): the byte-identity contract against
// the in-process ExperimentRunner path, the single-flight guarantee
// (N identical concurrent submissions -> exactly 1 simulation),
// store replay, admission/quota backpressure and the error surface.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "server/cell.hh"
#include "server/daemon.hh"
#include "server/http_client.hh"
#include "stats/json.hh"

#ifndef ECDPD_BIN
#error "test_server_integration needs -DECDPD_BIN=\"path/to/ecdpd\""
#endif

namespace
{

using namespace ecdp;
using namespace ecdp::server;

DaemonOptions
workerOptions()
{
    DaemonOptions opts;
    opts.workers = 2;
    opts.workerArgv = {ECDPD_BIN, "--worker"};
    return opts;
}

std::string
hex16(std::uint64_t key)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(key));
    return buf;
}

/** The cells-array tail of a results body — identical across
 *  submissions of the same cells even though the grid id differs. */
std::string
cellsTail(const std::string &body)
{
    const std::size_t at = body.find("\"cells\"");
    EXPECT_NE(at, std::string::npos) << body.substr(0, 200);
    return at == std::string::npos ? body : body.substr(at);
}

TEST(ServerIntegration, WorkerResultsAreByteIdenticalToInProcess)
{
    // The contract: bytes served by the daemon (computed by a forked
    // `ecdpd --worker`) are exactly the bytes the in-process
    // ExperimentContext path produces for the same cell.
    const CellSpec spec = parseCellSpec(
        parseJson("{\"bench\":\"mst\",\"input\":\"train\"}"));
    ExperimentContext ctx;
    const std::string expected =
        cellStatsJson(spec, runCell(spec, ctx));

    Daemon daemon(workerOptions());
    daemon.start();
    HttpClient client(daemon.port());

    HttpResponse submit = client.post(
        "/v1/grids",
        "{\"wait\":true,\"cells\":[{\"bench\":\"mst\","
        "\"input\":\"train\"}]}");
    ASSERT_EQ(submit.status, 200) << submit.body;
    JsonValue doc = parseJson(submit.body);
    const JsonValue &cell = doc.at("cells").asArray().at(0);
    EXPECT_EQ(cell.at("status").asString(), "done");
    EXPECT_EQ(cell.at("key").asString(), hex16(cellKey(spec)));

    HttpResponse raw =
        client.get("/v1/cells/" + hex16(cellKey(spec)));
    ASSERT_EQ(raw.status, 200);
    EXPECT_EQ(raw.body, expected); // byte-for-byte
    EXPECT_EQ(daemon.pool().spawned(), 1u);
}

TEST(ServerIntegration, ConcurrentIdenticalSubmissionsCostOneSim)
{
    Daemon daemon(workerOptions());
    daemon.start();
    const std::uint16_t port = daemon.port();

    constexpr int kSubmitters = 8;
    std::vector<std::string> bodies(kSubmitters);
    std::vector<int> statuses(kSubmitters, 0);
    {
        std::vector<std::thread> threads;
        for (int t = 0; t < kSubmitters; ++t) {
            threads.emplace_back([&, t] {
                HttpClient client(port);
                HttpResponse response = client.post(
                    "/v1/grids",
                    "{\"wait\":true,\"cells\":[{\"bench\":"
                    "\"health\",\"input\":\"train\"}]}");
                statuses[std::size_t(t)] = response.status;
                bodies[std::size_t(t)] = response.body;
            });
        }
        for (std::thread &thread : threads)
            thread.join();
    }

    // Exactly one simulation ran, and every submitter got
    // byte-identical results (modulo its own grid id).
    EXPECT_EQ(daemon.pool().spawned(), 1u);
    EXPECT_EQ(daemon.store().leaders(), 1u);
    const std::string reference = cellsTail(bodies[0]);
    for (int t = 0; t < kSubmitters; ++t) {
        EXPECT_EQ(statuses[std::size_t(t)], 200);
        EXPECT_EQ(cellsTail(bodies[std::size_t(t)]), reference);
    }
}

TEST(ServerIntegration, ResubmissionIsServedEntirelyFromStore)
{
    Daemon daemon(workerOptions());
    daemon.start();
    HttpClient client(daemon.port());
    const std::string body =
        "{\"wait\":true,\"cells\":[{\"bench\":\"perimeter\","
        "\"input\":\"train\"},{\"bench\":\"mst\","
        "\"input\":\"train\"}]}";

    HttpResponse first = client.post("/v1/grids", body);
    ASSERT_EQ(first.status, 200) << first.body;
    EXPECT_EQ(daemon.pool().spawned(), 2u);

    HttpResponse replay = client.post("/v1/grids", body);
    ASSERT_EQ(replay.status, 200) << replay.body;
    EXPECT_EQ(daemon.pool().spawned(), 2u); // zero new simulations
    EXPECT_EQ(cellsTail(replay.body), cellsTail(first.body));
    EXPECT_GE(daemon.store().memoryHits(), 2u);
}

TEST(ServerIntegration, AdmissionLimitRejectsOversizedGrid)
{
    DaemonOptions opts = workerOptions();
    opts.admissionLimit = 1;
    Daemon daemon(opts);
    daemon.start();
    HttpClient client(daemon.port());

    HttpResponse response = client.post(
        "/v1/grids",
        "{\"cells\":[{\"bench\":\"mst\",\"input\":\"train\"},"
        "{\"bench\":\"health\",\"input\":\"train\"}]}");
    EXPECT_EQ(response.status, 429);
    EXPECT_NE(response.body.find("admission"), std::string::npos);
    // The rejected grid was never registered.
    EXPECT_EQ(client.get("/v1/grids/g1").status, 404);

    // A grid that fits is admitted fine.
    HttpResponse ok = client.post(
        "/v1/grids",
        "{\"wait\":true,\"cells\":[{\"bench\":\"mst\","
        "\"input\":\"train\"}]}");
    EXPECT_EQ(ok.status, 200) << ok.body;
}

TEST(ServerIntegration, PerClientQuotaIsEnforcedPerName)
{
    DaemonOptions opts = workerOptions();
    opts.perClientLimit = 1;
    Daemon daemon(opts);
    daemon.start();
    HttpClient client(daemon.port());

    HttpResponse rejected = client.post(
        "/v1/grids",
        "{\"client\":\"alice\",\"cells\":["
        "{\"bench\":\"mst\",\"input\":\"train\"},"
        "{\"bench\":\"health\",\"input\":\"train\"}]}");
    EXPECT_EQ(rejected.status, 429);
    EXPECT_NE(rejected.body.find("quota"), std::string::npos);
    EXPECT_NE(rejected.body.find("alice"), std::string::npos);

    // The quota is per client name: bob is unaffected.
    HttpResponse ok = client.post(
        "/v1/grids",
        "{\"client\":\"bob\",\"wait\":true,\"cells\":["
        "{\"bench\":\"mst\",\"input\":\"train\"}]}");
    EXPECT_EQ(ok.status, 200) << ok.body;
}

TEST(ServerIntegration, CrashedWorkerSurfacesAsFailedCellNotCache)
{
    // A worker argv that always dies: the cell fails with the
    // worker's stderr in the error, the daemon survives, and the
    // failure is NOT cached — a resubmission retries with a fresh
    // worker process.
    DaemonOptions opts = workerOptions();
    opts.workerArgv = {"/bin/sh", "-c", "echo boom >&2; exit 3"};
    Daemon daemon(opts);
    daemon.start();
    HttpClient client(daemon.port());
    const std::string body =
        "{\"wait\":true,\"cells\":[{\"bench\":\"mst\","
        "\"input\":\"train\"}]}";

    HttpResponse first = client.post("/v1/grids", body);
    ASSERT_EQ(first.status, 200) << first.body;
    SCOPED_TRACE("results body: " + first.body);
    JsonValue firstDoc = parseJson(first.body);
    const JsonValue &cell = firstDoc.at("cells").asArray().at(0);
    EXPECT_EQ(cell.at("status").asString(), "failed");
    EXPECT_NE(cell.at("error").asString().find("boom"),
              std::string::npos);
    EXPECT_EQ(daemon.pool().spawned(), 1u);

    // Status endpoint agrees, and the daemon still answers.
    JsonValue status = parseJson(client.get("/v1/grids/g1").body);
    EXPECT_EQ(status.at("failed").asI64(), 1);
    EXPECT_EQ(client.get("/healthz").status, 200);

    HttpResponse retry = client.post("/v1/grids", body);
    ASSERT_EQ(retry.status, 200);
    EXPECT_EQ(daemon.pool().spawned(), 2u); // retried, not cached
}

TEST(ServerIntegration, ErrorSurfaceAndMetrics)
{
    Daemon daemon(workerOptions());
    daemon.start();
    HttpClient client(daemon.port());

    EXPECT_EQ(client.get("/healthz").body, "{\"ok\":true}");
    EXPECT_EQ(client.get("/nope").status, 404);
    EXPECT_EQ(client.get("/v1/grids/g999").status, 404);
    EXPECT_EQ(client.post("/v1/grids", "not json").status, 400);
    EXPECT_EQ(client.post("/v1/grids", "{\"cells\":[]}").status,
              400);
    EXPECT_EQ(client.post("/v1/grids",
                          "{\"cells\":[{\"bench\":\"mst\","
                          "\"frobnicate\":1}]}")
                  .status,
              400);
    EXPECT_EQ(client.get("/v1/cells/not-hex").status, 400);
    EXPECT_EQ(client.get("/v1/cells/0123456789abcdef").status, 404);

    JsonValue metrics = parseJson(client.get("/metrics").body);
    EXPECT_GE(metrics.at("ecdpd.requests.total").asI64(), 8);
    EXPECT_GE(metrics.at("ecdpd.requests.bad").asI64(), 6);
    EXPECT_EQ(metrics.at("ecdpd.pool.shards").asI64(), 2);
    EXPECT_EQ(metrics.at("ecdpd.cells.inflight").asI64(), 0);
}

TEST(ServerIntegration, DestructionWithCellsStillInFlightIsClean)
{
    // Regression for a destruction-order use-after-free: cells still
    // pending when the Daemon dies used to reach onCellReady (via
    // ~WorkerPool's orphan callbacks) after the grid state was
    // already destroyed. One slow 1-shard worker plus a queue of
    // distinct cells forces exactly that teardown path.
    DaemonOptions opts = workerOptions();
    opts.workers = 1;
    opts.workerArgv = {"/bin/sh", "-c", "sleep 0.3; echo spun"};
    {
        Daemon daemon(opts);
        daemon.start();
        HttpClient client(daemon.port());
        HttpResponse submit = client.post(
            "/v1/grids",
            "{\"cells\":[{\"bench\":\"mst\",\"input\":\"train\"},"
            "{\"bench\":\"health\",\"input\":\"train\"},"
            "{\"bench\":\"perimeter\",\"input\":\"train\"},"
            "{\"bench\":\"bisort\",\"input\":\"train\"}]}");
        ASSERT_EQ(submit.status, 202) << submit.body;
        EXPECT_GE(daemon.cellsInflight(), 1u);
        // Destructor runs with cells pending, queued and in flight.
    }
}

TEST(ServerIntegration, CompletedGridsEvictBeyondCap)
{
    DaemonOptions opts = workerOptions();
    opts.completedGridCap = 1;
    Daemon daemon(opts);
    daemon.start();
    HttpClient client(daemon.port());

    ASSERT_EQ(client.post("/v1/grids",
                          "{\"wait\":true,\"cells\":[{\"bench\":"
                          "\"mst\",\"input\":\"train\"}]}")
                  .status,
              200);
    EXPECT_EQ(client.get("/v1/grids/g1").status, 200);

    ASSERT_EQ(client.post("/v1/grids",
                          "{\"wait\":true,\"cells\":[{\"bench\":"
                          "\"health\",\"input\":\"train\"}]}")
                  .status,
              200);
    // g2's completion pushed g1 (the oldest completed grid) out.
    EXPECT_EQ(client.get("/v1/grids/g1").status, 404);
    EXPECT_EQ(client.get("/v1/grids/g2").status, 200);
    EXPECT_EQ(daemon.gridsTracked(), 1u);

    // The evicted grid's result bytes are still content-addressed
    // in the store.
    const CellSpec spec = parseCellSpec(
        parseJson("{\"bench\":\"mst\",\"input\":\"train\"}"));
    EXPECT_EQ(client.get("/v1/cells/" + hex16(cellKey(spec))).status,
              200);

    JsonValue metrics = parseJson(client.get("/metrics").body);
    EXPECT_EQ(metrics.at("ecdpd.grids.evicted").asI64(), 1);
    EXPECT_EQ(metrics.at("ecdpd.grids.tracked").asI64(), 1);
}

TEST(ServerIntegration, DrainedClientQuotaEntriesAreDropped)
{
    // Quota bookkeeping must not leak an entry per client name: a
    // completed grid drains its client to zero (entry erased), and a
    // rejected submission never creates one.
    DaemonOptions opts = workerOptions();
    opts.perClientLimit = 1;
    Daemon daemon(opts);
    daemon.start();
    HttpClient client(daemon.port());

    ASSERT_EQ(client.post("/v1/grids",
                          "{\"client\":\"alice\",\"wait\":true,"
                          "\"cells\":[{\"bench\":\"mst\","
                          "\"input\":\"train\"}]}")
                  .status,
              200);
    EXPECT_EQ(client.post("/v1/grids",
                          "{\"client\":\"carol\",\"cells\":["
                          "{\"bench\":\"mst\",\"input\":\"train\"},"
                          "{\"bench\":\"health\","
                          "\"input\":\"train\"}]}")
                  .status,
              429);
    EXPECT_EQ(daemon.clientsTracked(), 0u);
    JsonValue metrics = parseJson(client.get("/metrics").body);
    EXPECT_EQ(metrics.at("ecdpd.clients.tracked").asI64(), 0);
}

TEST(ServerIntegration, DiskCapBoundsSpillFilesAndExportsMetric)
{
    // --disk-cap end to end: two distinct cells spill two files, the
    // cap of one evicts the older, and the eviction is visible both
    // on disk and as ecdpd.store.disk_evicted in /metrics.
    DaemonOptions opts = workerOptions();
    opts.storeDir = testing::TempDir() + "/ecdpd_disk_cap";
    std::filesystem::remove_all(opts.storeDir);
    opts.storeDiskCap = 1;
    Daemon daemon(opts);
    daemon.start();
    HttpClient client(daemon.port());

    ASSERT_EQ(client.post("/v1/grids",
                          "{\"wait\":true,\"cells\":[{\"bench\":"
                          "\"mst\",\"input\":\"train\"},{\"bench\":"
                          "\"health\",\"input\":\"train\"}]}")
                  .status,
              200);
    JsonValue metrics = parseJson(client.get("/metrics").body);
    EXPECT_EQ(metrics.at("ecdpd.store.disk_evicted").asI64(), 1);

    std::size_t spillFiles = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(opts.storeDir)) {
        spillFiles +=
            entry.path().filename().string().rfind("cell-", 0) == 0;
    }
    EXPECT_EQ(spillFiles, 1u);
}

TEST(ServerIntegration, PendingPollsAnswerOutsideTheDaemonLock)
{
    // Regression for the respond-under-lock rework: the pending 202
    // poll, the status snapshot and the parked ?wait=1 poll all go
    // through the compute-under-lock / respond-outside split now —
    // this drives every branch of it against a deliberately slow
    // worker.
    DaemonOptions opts = workerOptions();
    opts.workers = 1;
    opts.workerArgv = {"/bin/sh", "-c", "sleep 0.3; echo {}"};
    Daemon daemon(opts);
    daemon.start();
    HttpClient client(daemon.port());

    ASSERT_EQ(client.post("/v1/grids",
                          "{\"cells\":[{\"bench\":\"mst\","
                          "\"input\":\"train\"}]}")
                  .status,
              202);
    HttpResponse poll = client.get("/v1/grids/g1/results");
    // The worker sleeps 300 ms, so the immediate poll is pending
    // (tolerate a pathologically slow test host finishing first).
    ASSERT_TRUE(poll.status == 202 || poll.status == 200)
        << poll.body;
    if (poll.status == 202)
        EXPECT_NE(poll.body.find("\"remaining\":1"),
                  std::string::npos);
    EXPECT_EQ(client.get("/v1/grids/g1").status, 200);

    // Parked waiter: answered by the final cell completion.
    HttpResponse done = client.get("/v1/grids/g1/results?wait=1");
    ASSERT_EQ(done.status, 200) << done.body;
    EXPECT_NE(done.body.find("\"status\":\"done\""),
              std::string::npos);
}

TEST(ServerIntegration, ShutdownEndpointUnblocksWaiters)
{
    Daemon daemon(workerOptions());
    daemon.start();
    EXPECT_FALSE(daemon.shutdownRequested());
    HttpClient client(daemon.port());
    EXPECT_EQ(client.post("/v1/shutdown", "").status, 200);
    daemon.waitForShutdown(); // returns promptly
    EXPECT_TRUE(daemon.shutdownRequested());
}

} // namespace
