/**
 * @file
 * Engine-conformance battery: one parameterized suite, instantiated
 * automatically over every name in the EngineRegistry, so a newly
 * registered engine is held to the full contract (creatable, degree
 * caps honoured, deterministic, disable-able, conservation-clean,
 * bit-identical on replay and under cycle skipping) without anyone
 * remembering to add tests for it. The per-engine fixtures live in
 * engine_harness.hh.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "dram/dram.hh"
#include "engine_harness.hh"
#include "obs/observability.hh"
#include "sim/memory_system.hh"
#include "sim/simulator.hh"
#include "stats/json.hh"

namespace ecdp
{
namespace
{

using harness::EngineFixture;
using harness::RequestLog;

std::string
statsJson(const RunStats &stats)
{
    std::ostringstream os;
    writeRunStatsJson(os, stats, "conformance");
    return os.str();
}

/** Fixtures are deterministic, so build each engine's once. */
const EngineFixture &
cachedFixture(const std::string &engine)
{
    static std::map<std::string, EngineFixture> cache;
    auto it = cache.find(engine);
    if (it == cache.end())
        it = cache.emplace(engine, harness::makeEngineFixture(engine))
                 .first;
    return it->second;
}

class EngineConformance : public ::testing::TestWithParam<std::string>
{
  protected:
    const EngineFixture &fixture() const
    {
        return cachedFixture(GetParam());
    }

    std::unique_ptr<PrefetchEngine> create() const
    {
        // Script-matched hints (not the fixture's profiled ones) so
        // the hinted CDP engine fires under driveHookScript too.
        return EngineRegistry::instance().create(
            GetParam(),
            harness::defaultEngineContext(&harness::scriptHints()));
    }
};

TEST_P(EngineConformance, RegistryCreatesWellFormedEngine)
{
    const std::vector<std::string> names =
        EngineRegistry::instance().names();
    EXPECT_NE(std::find(names.begin(), names.end(), GetParam()),
              names.end());

    std::unique_ptr<PrefetchEngine> engine = create();
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(engine->name(), GetParam());
    // A degree-0 cap is only legal for the engine that never fires.
    if (fixture().expectsTraffic) {
        EXPECT_GE(engine->maxRequestsPerTrigger(), 1u);
    }
    // An engine that claims fill scanning must scan demand fills.
    if (engine->wantsFillScan()) {
        EXPECT_TRUE(engine->scansOwnFillAt(0));
    }
}

TEST_P(EngineConformance, StorageBitsStableAcrossInstances)
{
    std::unique_ptr<PrefetchEngine> a = create();
    std::unique_ptr<PrefetchEngine> b = create();
    EXPECT_EQ(a->storageBits(), b->storageBits());
    // Hardware-table budget sanity: under 16 Mbit (2 MB).
    EXPECT_LT(a->storageBits(), 16ull * 1024 * 1024);
}

TEST_P(EngineConformance, HookCallsRespectDegreeCap)
{
    for (unsigned l = 0; l < kNumAggLevels; ++l) {
        const AggLevel level = static_cast<AggLevel>(l);
        std::unique_ptr<PrefetchEngine> engine = create();
        engine->setAggressiveness(level);
        const unsigned cap = engine->maxRequestsPerTrigger();
        SCOPED_TRACE("level " + std::to_string(l) + " cap " +
                     std::to_string(cap));
        harness::driveHookScript(*engine, [&](std::size_t appended) {
            EXPECT_LE(appended, cap);
        });
    }
}

TEST_P(EngineConformance, FreshReplayIsDeterministic)
{
    auto run = [&] {
        std::unique_ptr<PrefetchEngine> engine = create();
        return harness::driveHookScript(*engine, [](std::size_t) {});
    };
    const RequestLog first = run();
    const RequestLog second = run();
    EXPECT_EQ(first, second);
    if (fixture().expectsTraffic) {
        EXPECT_FALSE(first.empty())
            << "hook script produced no requests";
    }

    // reset() (a no-op for stateless adapters) must at least be
    // callable, and the engine must keep working afterwards.
    std::unique_ptr<PrefetchEngine> engine = create();
    harness::driveHookScript(*engine, [](std::size_t) {});
    engine->reset();
    harness::driveHookScript(*engine, [](std::size_t) {});
}

TEST_P(EngineConformance, DisabledSlotGeneratesNothing)
{
    const EngineFixture &f = fixture();
    obs::MetricRegistry metrics;
    Observability obs{&metrics, nullptr};
    DramSystem dram(f.cfg.dram, 1);
    MemorySystem mem(f.cfg, 0, f.workload.image.clone(), &dram, &obs);
    ASSERT_EQ(mem.engineCount(), 1u);
    mem.setEngineEnabled(0, false);

    Cycle now{0};
    const std::size_t limit =
        std::min<std::size_t>(f.workload.trace.size(), 1024);
    for (std::size_t i = 0; i < limit; ++i) {
        const TraceEntry &entry = f.workload.trace[i];
        for (unsigned c = 0; c < 4; ++c) {
            mem.tick(now);
            now = now + 1;
        }
        if (entry.kind == AccessKind::Store)
            mem.store(entry, now);
        else
            mem.load(entry, now); // MSHR-full rejections are fine
    }
    for (unsigned c = 0; c < 2000; ++c) {
        mem.tick(now);
        now = now + 1;
    }

    EXPECT_EQ(metrics.value("core0.pf.primary.generated"), 0u);
    EXPECT_EQ(metrics.value("core0.pf.primary.issued"), 0u);
}

TEST_P(EngineConformance, ResetEngineStackRestoresFreshFeedback)
{
    // Drive a throttled single-engine system far enough to latch
    // feedback and move the aggressiveness level, then reset the
    // stack: the level must return to the configured start level and
    // the feedback lane must read as never-used (the
    // PrefetcherFeedback::reset() fix — the held accuracy used to
    // leak across replays).
    const EngineFixture &f = fixture();
    SystemConfig cfg = f.cfg;
    cfg.throttle = ThrottleKind::Coordinated;
    obs::MetricRegistry metrics;
    Observability obs{&metrics, nullptr};
    DramSystem dram(cfg.dram, 1);
    MemorySystem mem(cfg, 0, f.workload.image.clone(), &dram, &obs);
    ASSERT_EQ(mem.engineCount(), 1u);

    Cycle now{0};
    const std::size_t limit =
        std::min<std::size_t>(f.workload.trace.size(), 2048);
    for (std::size_t i = 0; i < limit; ++i) {
        const TraceEntry &entry = f.workload.trace[i];
        for (unsigned c = 0; c < 4; ++c) {
            mem.tick(now);
            now = now + 1;
        }
        if (entry.kind == AccessKind::Store)
            mem.store(entry, now);
        else
            mem.load(entry, now);
    }
    for (unsigned c = 0; c < 2000; ++c) {
        mem.tick(now);
        now = now + 1;
    }

    mem.resetEngineStack();
    EXPECT_EQ(mem.engineLevel(0), cfg.primaryStartLevel);
    const PrefetcherFeedback &lane = mem.feedbackLane(0);
    EXPECT_DOUBLE_EQ(lane.accuracy(), 1.0);
    EXPECT_FALSE(lane.anyPrefetches());
    EXPECT_FALSE(lane.currentIntervalActive());
    EXPECT_EQ(lane.lifetimeIssued(), 0u);
}

TEST_P(EngineConformance, FiresWhenExpectedAndConserves)
{
    const EngineFixture &f = fixture();
    obs::MetricRegistry metrics;
    RunStats stats =
        simulate(f.cfg, f.workload, Observability{&metrics, nullptr});

    const std::uint64_t generated =
        metrics.value("core0.pf.primary.generated");
    if (f.expectsTraffic) {
        EXPECT_GT(generated, 0u)
            << f.engine << " generated no prefetches on its fixture";
    } else {
        EXPECT_EQ(generated, 0u);
    }

    harness::checkEngineIdentities(
        metrics, 0, engineInstanceNames(effectiveEngineStack(f.cfg)),
        f.engine);

    ASSERT_EQ(stats.engineStats.size(), 1u);
    EXPECT_EQ(stats.engineStats[0].engine, f.engine);
    EXPECT_EQ(stats.engineStats[0].instance, "primary");
    EXPECT_EQ(stats.engineStats[0].issued,
              metrics.value("core0.pf.primary.issued"));
}

TEST_P(EngineConformance, ReplayIsByteIdentical)
{
    const EngineFixture &f = fixture();
    const std::string first = statsJson(simulate(f.cfg, f.workload));
    const std::string second = statsJson(simulate(f.cfg, f.workload));
    EXPECT_EQ(first, second);
}

TEST_P(EngineConformance, CycleSkippingIsExact)
{
    const EngineFixture &f = fixture();
    SystemConfig polled = f.cfg;
    polled.cycleSkipping = false;
    SystemConfig skipped = f.cfg;
    skipped.cycleSkipping = true;
    EXPECT_EQ(statsJson(simulate(polled, f.workload)),
              statsJson(simulate(skipped, f.workload)));
}

INSTANTIATE_TEST_SUITE_P(
    AllRegisteredEngines, EngineConformance,
    ::testing::ValuesIn(EngineRegistry::instance().names()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

/** Every registry entry must have a fixture row, and vice versa. */
TEST(EngineConformanceCoverage, FixtureTableMatchesRegistry)
{
    const std::vector<std::string> names =
        EngineRegistry::instance().names();
    for (const std::string &name : names)
        EXPECT_NO_THROW(harness::fixtureSpec(name)) << name;
    EXPECT_EQ(harness::fixtureTable().size(), names.size())
        << "stale fixture row for an unregistered engine";
}

/** A three-engine hybrid stack: slots 2+ get derived instance names,
 *  their own counter scopes, interval `extra` slots, and a top-level
 *  `engines` array in the stats JSON. */
TEST(EngineStacks, ThreeEngineHybridConserves)
{
    Workload workload = harness::pointerChaseWorkload();
    SystemConfig cfg;
    cfg.engines = {"stream", "cdp", "isb"};
    cfg.throttle = ThrottleKind::Coordinated;

    obs::MetricRegistry metrics;
    RunStats stats =
        simulate(cfg, workload, Observability{&metrics, nullptr});

    const std::vector<std::string> instances =
        engineInstanceNames(effectiveEngineStack(cfg));
    ASSERT_EQ(instances,
              (std::vector<std::string>{"primary", "lds", "isb2"}));
    harness::checkEngineIdentities(metrics, 0, instances, "hybrid");

    ASSERT_EQ(stats.engineStats.size(), 3u);
    EXPECT_EQ(stats.engineStats[2].instance, "isb2");
    EXPECT_EQ(stats.engineStats[2].engine, "isb");
    for (const IntervalSample &s : stats.intervalSeries)
        EXPECT_EQ(s.extra.size(), 1u);

    const std::string json = statsJson(stats);
    EXPECT_NE(json.find("\"engines\":["), std::string::npos);
    EXPECT_NE(json.find("\"isb2\""), std::string::npos);
}

/** The legacy two-slot stack must NOT grow the new JSON fields — the
 *  pinned goldens depend on the old shape byte-for-byte. */
TEST(EngineStacks, TwoSlotJsonKeepsLegacyShape)
{
    Workload workload = harness::sequentialWorkload();
    SystemConfig cfg; // default stream+none two-slot stack
    const std::string json = statsJson(simulate(cfg, workload));
    EXPECT_EQ(json.find("\"engines\":["), std::string::npos);
    EXPECT_EQ(json.find("\"extra\":["), std::string::npos);
}

} // namespace
} // namespace ecdp
