/**
 * @file
 * Integration tests: whole-system simulations on train inputs,
 * checking the qualitative results the paper reports. These are the
 * repository's end-to-end regression net.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/multicore.hh"

namespace ecdp
{
namespace
{

RunStats
runTrain(const std::string &name, const SystemConfig &cfg)
{
    return simulate(cfg, buildWorkload(name, InputSet::Train));
}

TEST(Simulator, BaselineStreamHelpsStreamingWorkloads)
{
    RunStats np = runTrain("libquantum", configs::noPrefetch());
    RunStats base = runTrain("libquantum", configs::baseline());
    EXPECT_GT(base.ipc, 1.5 * np.ipc);
    EXPECT_GT(base.coverage(0), 0.5);
}

TEST(Simulator, StreamBarelyCoversPointerChasing)
{
    RunStats base = runTrain("health", configs::baseline());
    EXPECT_LT(base.coverage(0), 0.2);
}

TEST(Simulator, IdealLdsShowsHeadroomOnPointerWorkloads)
{
    RunStats base = runTrain("mst", configs::baseline());
    RunStats ideal = runTrain("mst", configs::idealLds());
    EXPECT_GT(ideal.ipc, 1.5 * base.ipc);
}

TEST(Simulator, IdealLdsIsNeutralOnStreamingWorkloads)
{
    RunStats base = runTrain("gemsfdtd", configs::baseline());
    RunStats ideal = runTrain("gemsfdtd", configs::idealLds());
    EXPECT_NEAR(ideal.ipc, base.ipc, 0.02 * base.ipc);
}

TEST(Simulator, GreedyCdpWrecksMst)
{
    // The paper's central motivation (Figure 2): original CDP
    // degrades mst badly and blows up its bandwidth. This shows on
    // the ref input (the train structures are partially cacheable).
    Workload ref = buildWorkload("mst", InputSet::Ref);
    RunStats base = simulate(configs::baseline(), ref);
    RunStats cdp = simulate(configs::streamCdp(), ref);
    EXPECT_LT(cdp.ipc, 0.8 * base.ipc);
    EXPECT_GT(cdp.bpki, 1.5 * base.bpki);
}

TEST(Simulator, CdpHelpsHealth)
{
    RunStats base = runTrain("health", configs::baseline());
    RunStats cdp = runTrain("health", configs::streamCdp());
    EXPECT_GT(cdp.ipc, 1.3 * base.ipc);
    EXPECT_GT(cdp.accuracy(1), 0.7);
}

TEST(Simulator, EcdpEliminatesCdpLossOnMst)
{
    ExperimentContext context;
    const HintTable &hints = context.hints("mst");
    RunStats base = runTrain("mst", configs::baseline());
    RunStats ecdp = runTrain("mst", configs::streamEcdp(&hints));
    EXPECT_GT(ecdp.ipc, 0.9 * base.ipc);
}

TEST(Simulator, FullProposalKeepsHealthGains)
{
    ExperimentContext context;
    const HintTable &hints = context.hints("health");
    RunStats base = runTrain("health", configs::baseline());
    RunStats full = runTrain("health", configs::fullProposal(&hints));
    EXPECT_GT(full.ipc, 1.3 * base.ipc);
}

TEST(Simulator, StreamingWorkloadsUnaffectedByLdsMachinery)
{
    // Section 6.7: the proposal must not disturb non-pointer codes.
    for (const char *name : {"libquantum", "lbm"}) {
        ExperimentContext context;
        const HintTable &hints = context.hints(name);
        RunStats base = runTrain(name, configs::baseline());
        RunStats full =
            runTrain(name, configs::fullProposal(&hints));
        EXPECT_NEAR(full.ipc, base.ipc, 0.05 * base.ipc) << name;
    }
}

TEST(Simulator, BpkiAndBusTransactionsConsistent)
{
    RunStats base = runTrain("mst", configs::baseline());
    double expected = 1000.0 *
                      static_cast<double>(base.busTransactions) /
                      static_cast<double>(base.instructions);
    EXPECT_NEAR(base.bpki, expected, 1e-9);
}

TEST(Simulator, StatsAreInternallyConsistent)
{
    RunStats s = runTrain("health", configs::streamCdp());
    EXPECT_LE(s.prefUsed[1], s.prefIssued[1]);
    EXPECT_LE(s.l2LdsMisses, s.l2DemandMisses);
    EXPECT_LE(s.l2DemandMisses, s.l2DemandAccesses);
    EXPECT_GT(s.cycles, Cycle{});
    EXPECT_GT(s.instructions, 0u);
}

TEST(Simulator, RunsAreDeterministic)
{
    RunStats a = runTrain("voronoi", configs::streamCdp());
    RunStats b = runTrain("voronoi", configs::streamCdp());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.busTransactions, b.busTransactions);
    EXPECT_EQ(a.prefIssued[1], b.prefIssued[1]);
}

TEST(Simulator, GhbCoversStreamsWhenAlone)
{
    RunStats np = runTrain("libquantum", configs::noPrefetch());
    RunStats ghb = runTrain("libquantum", configs::ghbAlone());
    EXPECT_GT(ghb.ipc, 1.3 * np.ipc);
}

TEST(Simulator, DbpIssuesPrefetchesOnPointerChains)
{
    RunStats dbp = runTrain("health", configs::streamDbp());
    EXPECT_GT(dbp.prefIssued[1], 0u);
}

TEST(Simulator, MarkovLearnsRepeatedMissSequences)
{
    RunStats markov = runTrain("health", configs::streamMarkov());
    EXPECT_GT(markov.prefIssued[1], 0u);
    EXPECT_GT(markov.prefUsed[1] + markov.prefLate[1], 0u);
}

TEST(Simulator, ProfilingInputSensitivityIsSmall)
{
    // Section 6.1.6: hints from train vs ref inputs perform alike.
    ExperimentContext context;
    const Workload &ref = context.ref("health");
    RunStats with_train = simulate(
        configs::fullProposal(&context.hints("health")), ref);
    RunStats with_ref = simulate(
        configs::fullProposal(&context.hintsFromRef("health")), ref);
    EXPECT_NEAR(with_ref.ipc, with_train.ipc, 0.10 * with_train.ipc);
}

TEST(MultiCore, TwoCoresContendForMemory)
{
    Workload a = buildWorkload("mst", InputSet::Train);
    Workload b = buildWorkload("milc", InputSet::Train);
    SystemConfig cfg = configs::baseline();
    double alone_a = simulate(cfg, a).ipc;
    double alone_b = simulate(cfg, b).ipc;
    MultiCoreResult result =
        simulateMultiCore(cfg, {&a, &b}, {alone_a, alone_b});
    ASSERT_EQ(result.perCore.size(), 2u);
    // Shared-memory runs cannot beat running alone (modulo noise).
    EXPECT_LE(result.perCore[0].ipc, alone_a * 1.05);
    EXPECT_LE(result.perCore[1].ipc, alone_b * 1.05);
    EXPECT_LE(result.weightedSpeedup, 2.0 + 1e-9);
    EXPECT_GT(result.weightedSpeedup, 0.5);
    EXPECT_LE(result.hmeanSpeedup, 1.0 + 1e-9);
}

TEST(MultiCore, FourCoresRun)
{
    Workload a = buildWorkload("health", InputSet::Train);
    Workload b = buildWorkload("gemsfdtd", InputSet::Train);
    Workload c = buildWorkload("mst", InputSet::Train);
    Workload d = buildWorkload("libquantum", InputSet::Train);
    SystemConfig cfg = configs::baseline();
    std::vector<double> alone;
    for (const Workload *wl : {&a, &b, &c, &d})
        alone.push_back(simulate(cfg, *wl).ipc);
    MultiCoreResult result =
        simulateMultiCore(cfg, {&a, &b, &c, &d}, alone);
    EXPECT_EQ(result.perCore.size(), 4u);
    EXPECT_GT(result.busTransactions, 0u);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_GT(result.perCore[i].ipc, 0.0);
}

TEST(MultiCore, ThrottlingImprovesOrHoldsBusTraffic)
{
    ExperimentContext context;
    Workload a = buildWorkload("health", InputSet::Train);
    Workload b = buildWorkload("mst", InputSet::Train);
    SystemConfig base_cfg = configs::streamCdp();
    SystemConfig full_cfg = configs::streamCdpThrottled();
    std::vector<double> alone{simulate(base_cfg, a).ipc,
                              simulate(base_cfg, b).ipc};
    MultiCoreResult unmanaged =
        simulateMultiCore(base_cfg, {&a, &b}, alone);
    MultiCoreResult managed =
        simulateMultiCore(full_cfg, {&a, &b}, alone);
    EXPECT_LE(managed.busTransactions,
              unmanaged.busTransactions * 1.05);
}

} // namespace
} // namespace ecdp
