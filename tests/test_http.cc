// The embedded HTTP layer: incremental request parsing, limits,
// response framing, and the epoll server end-to-end (immediate and
// deferred responses, keep-alive reuse, concurrent clients).

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "server/http.hh"
#include "server/http_client.hh"
#include "server/http_server.hh"

namespace
{

using namespace ecdp::server;

/** Raw loopback socket for wire-level tests (pipelining, garbage). */
class RawConn
{
  public:
    explicit RawConn(std::uint16_t port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in sin{};
        sin.sin_family = AF_INET;
        sin.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        sin.sin_port = htons(port);
        EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr *>(&sin),
                            sizeof(sin)),
                  0)
            << std::strerror(errno);
    }
    ~RawConn()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    void send(const std::string &bytes)
    {
        ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(),
                         MSG_NOSIGNAL),
                  ssize_t(bytes.size()));
    }

    /** Read until the peer closes the connection. */
    std::string readToEof()
    {
        std::string all;
        char buf[4096];
        ssize_t n;
        while ((n = ::read(fd_, buf, sizeof(buf))) > 0)
            all.append(buf, std::size_t(n));
        return all;
    }

    /** Read until @p needle has arrived (or the peer closes). */
    std::string readUntil(const std::string &needle)
    {
        std::string all;
        char buf[4096];
        while (all.find(needle) == std::string::npos) {
            ssize_t n = ::read(fd_, buf, sizeof(buf));
            if (n <= 0)
                break;
            all.append(buf, std::size_t(n));
        }
        return all;
    }

  private:
    int fd_ = -1;
};

HttpRequest
parseOne(const std::string &raw)
{
    HttpRequestParser parser;
    parser.feed(raw.data(), raw.size());
    EXPECT_FALSE(parser.failed());
    std::optional<HttpRequest> req = parser.next();
    EXPECT_TRUE(req.has_value());
    return *req;
}

TEST(HttpParser, ParsesGetWithHeadersAndQuery)
{
    HttpRequest req = parseOne("GET /v1/grids/g1/results?wait=1 "
                               "HTTP/1.1\r\nHost: x\r\n"
                               "X-Custom: Value\r\n\r\n");
    EXPECT_EQ(req.method, "GET");
    EXPECT_EQ(req.path(), "/v1/grids/g1/results");
    EXPECT_EQ(req.queryParam("wait"), "1");
    EXPECT_FALSE(req.queryParam("missing").has_value());
    // Header names are lower-cased on parse.
    EXPECT_EQ(req.header("x-custom"), "Value");
    EXPECT_TRUE(req.keepAlive());
}

TEST(HttpParser, ParsesPostBodyByContentLength)
{
    HttpRequest req = parseOne("POST /v1/grids HTTP/1.1\r\n"
                               "Content-Length: 11\r\n\r\n"
                               "{\"a\":\"b\"}xy");
    EXPECT_EQ(req.method, "POST");
    EXPECT_EQ(req.body, "{\"a\":\"b\"}xy");
}

TEST(HttpParser, FeedsByteByByte)
{
    const std::string raw = "POST /x HTTP/1.1\r\n"
                            "Content-Length: 4\r\n\r\nbody";
    HttpRequestParser parser;
    for (char c : raw) {
        EXPECT_FALSE(parser.failed());
        parser.feed(&c, 1);
    }
    std::optional<HttpRequest> req = parser.next();
    ASSERT_TRUE(req.has_value());
    EXPECT_EQ(req->body, "body");
}

TEST(HttpParser, PipelinedRequestsComeOutInOrder)
{
    const std::string raw = "GET /a HTTP/1.1\r\n\r\n"
                            "GET /b HTTP/1.1\r\n\r\n";
    HttpRequestParser parser;
    parser.feed(raw.data(), raw.size());
    std::optional<HttpRequest> first = parser.next();
    std::optional<HttpRequest> second = parser.next();
    ASSERT_TRUE(first && second);
    EXPECT_EQ(first->path(), "/a");
    EXPECT_EQ(second->path(), "/b");
    EXPECT_FALSE(parser.next().has_value());
}

TEST(HttpParser, ConnectionCloseDisablesKeepAlive)
{
    HttpRequest req = parseOne(
        "GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
    EXPECT_FALSE(req.keepAlive());
}

TEST(HttpParser, RejectsMalformedRequestLine)
{
    HttpRequestParser parser;
    const std::string raw = "NOT-HTTP\r\n\r\n";
    parser.feed(raw.data(), raw.size());
    parser.next();
    EXPECT_TRUE(parser.failed());
    EXPECT_EQ(parser.errorStatus(), 400);
}

TEST(HttpParser, RejectsOversizedHead)
{
    HttpRequestParser parser;
    std::string raw = "GET / HTTP/1.1\r\nX-Pad: ";
    raw.append(HttpRequestParser::kMaxHeadBytes, 'a');
    parser.feed(raw.data(), raw.size());
    parser.next();
    EXPECT_TRUE(parser.failed());
    EXPECT_EQ(parser.errorStatus(), 431);
}

TEST(HttpParser, RejectsOversizedBody)
{
    HttpRequestParser parser;
    const std::string raw =
        "POST / HTTP/1.1\r\nContent-Length: " +
        std::to_string(HttpRequestParser::kMaxBodyBytes + 1) +
        "\r\n\r\n";
    parser.feed(raw.data(), raw.size());
    parser.next();
    EXPECT_TRUE(parser.failed());
    EXPECT_EQ(parser.errorStatus(), 413);
}

TEST(HttpParser, FeedCapRejectsRunawayBuffering)
{
    // A peer streaming bytes without ever completing a request (or
    // while its previous request is still being answered) must trip
    // the buffer cap in feed() itself — no next() call required.
    HttpRequestParser parser;
    const std::string chunk(1024 * 1024, 'x');
    for (int i = 0; i < 20 && !parser.failed(); ++i)
        parser.feed(chunk.data(), chunk.size());
    EXPECT_TRUE(parser.failed());
    EXPECT_EQ(parser.errorStatus(), 413);
    // The terminal failure also released what was buffered.
    EXPECT_EQ(parser.buffered(), 0u);
}

TEST(HttpResponseFraming, SerializesStatusAndContentLength)
{
    HttpResponse response;
    response.status = 429;
    response.body = "{\"error\":\"x\"}";
    const std::string wire = serializeResponse(response);
    EXPECT_NE(wire.find("HTTP/1.1 429 Too Many Requests\r\n"),
              std::string::npos);
    EXPECT_NE(wire.find("Content-Length: 13\r\n"),
              std::string::npos);
    EXPECT_EQ(wire.substr(wire.size() - 13), response.body);
}

TEST(HttpServerTest, ImmediateAndDeferredResponses)
{
    // /now answers on the loop thread; /later from another thread
    // through the thread-safe Responder — the daemon's wait-mode.
    std::mutex workersMutex;
    std::vector<std::thread> workers;
    HttpServer server(
        [&](const HttpRequest &req, HttpServer::Responder respond) {
            HttpResponse response;
            response.body = "{\"path\":\"" + req.path() + "\"}";
            if (req.path() == "/later") {
                std::lock_guard<std::mutex> lock(workersMutex);
                workers.emplace_back(
                    [respond = std::move(respond),
                     response = std::move(response)]() mutable {
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(20));
                        respond(std::move(response));
                    });
            } else {
                respond(std::move(response));
            }
        });
    server.start(0);
    ASSERT_NE(server.port(), 0);

    HttpClient client(server.port());
    // Keep-alive: several round trips on one connection.
    EXPECT_EQ(client.get("/now").body, "{\"path\":\"/now\"}");
    EXPECT_EQ(client.get("/later").body, "{\"path\":\"/later\"}");
    EXPECT_EQ(client.get("/now").body, "{\"path\":\"/now\"}");
    {
        std::lock_guard<std::mutex> lock(workersMutex);
        for (std::thread &worker : workers)
            worker.join();
    }
    server.stop();
}

TEST(HttpServerTest, ManyConcurrentClients)
{
    std::atomic<int> handled{0};
    HttpServer server(
        [&](const HttpRequest &req, HttpServer::Responder respond) {
            handled.fetch_add(1);
            HttpResponse response;
            response.body = req.body;
            respond(std::move(response));
        });
    server.start(0);

    constexpr int kClients = 16;
    constexpr int kRequests = 25;
    std::vector<std::thread> clients;
    std::atomic<int> mismatches{0};
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            HttpClient client(server.port());
            for (int r = 0; r < kRequests; ++r) {
                const std::string body =
                    "c" + std::to_string(c) + "r" + std::to_string(r);
                if (client.post("/echo", body).body != body)
                    mismatches.fetch_add(1);
            }
        });
    }
    for (std::thread &client : clients)
        client.join();
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(handled.load(), kClients * kRequests);
    server.stop();
}

TEST(HttpServerTest, LargeResponseBody)
{
    const std::string big(2 * 1024 * 1024, 'x');
    HttpServer server(
        [&](const HttpRequest &, HttpServer::Responder respond) {
            HttpResponse response;
            response.body = big;
            respond(std::move(response));
        });
    server.start(0);
    HttpClient client(server.port());
    EXPECT_EQ(client.get("/big").body, big);
    // And again on the same connection: framing survived.
    EXPECT_EQ(client.get("/big").body.size(), big.size());
    server.stop();
}

namespace
{

/** Server whose /slow handler parks its Responder for the test to
 *  fire later; everything else answers inline. */
class SlowServer
{
  public:
    SlowServer()
        : server([this](const HttpRequest &req,
                        HttpServer::Responder respond) {
              HttpResponse response;
              response.body = "{\"path\":\"" + req.path() + "\"}";
              if (req.path() == "/slow") {
                  std::lock_guard<std::mutex> lock(mutex_);
                  parked_ = std::move(respond);
                  cv_.notify_one();
              } else {
                  respond(std::move(response));
              }
          })
    {
        server.start(0);
    }

    /** Block until /slow has been dispatched, then answer it. */
    void releaseSlow()
    {
        HttpServer::Responder respond;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [&] { return bool(parked_); });
            respond = std::move(parked_);
            parked_ = nullptr;
        }
        HttpResponse response;
        response.body = "{\"path\":\"/slow\"}";
        respond(std::move(response));
    }

    HttpServer server;

  private:
    std::mutex mutex_;
    std::condition_variable cv_;
    HttpServer::Responder parked_;
};

} // namespace

TEST(HttpServerTest, PendingResponsePrecedesPipelinedParseError)
{
    // A malformed pipelined follow-up must not jump the queue: the
    // deferred response to the first request goes out first, then
    // the 400, then close.
    SlowServer slow;
    RawConn conn(slow.server.port());
    conn.send("GET /slow HTTP/1.1\r\n\r\n");
    // Garbage streamed while the response is pending sits in the
    // kernel buffer (EPOLLIN is off) or the parser tail.
    conn.send("NOT-HTTP\r\n\r\n");
    slow.releaseSlow();

    const std::string wire = conn.readToEof();
    const std::size_t ok = wire.find("HTTP/1.1 200");
    const std::size_t bad = wire.find("HTTP/1.1 400");
    ASSERT_NE(ok, std::string::npos) << wire;
    ASSERT_NE(bad, std::string::npos) << wire;
    EXPECT_LT(ok, bad);
    EXPECT_NE(wire.find("{\"path\":\"/slow\"}"), std::string::npos);
    slow.server.stop();
}

TEST(HttpServerTest, PipelinedRequestStillServedAfterDeferredFirst)
{
    // EPOLLIN is suppressed while a response is pending; a valid
    // pipelined follow-up must still be picked up once the first
    // response has been written.
    SlowServer slow;
    RawConn conn(slow.server.port());
    conn.send("GET /slow HTTP/1.1\r\n\r\n"
              "GET /second HTTP/1.1\r\n\r\n");
    slow.releaseSlow();

    const std::string wire =
        conn.readUntil("{\"path\":\"/second\"}");
    const std::size_t first = wire.find("{\"path\":\"/slow\"}");
    const std::size_t second = wire.find("{\"path\":\"/second\"}");
    ASSERT_NE(first, std::string::npos) << wire;
    ASSERT_NE(second, std::string::npos) << wire;
    EXPECT_LT(first, second);
    slow.server.stop();
}

TEST(HttpServerTest, ResponderAfterStopIsDropped)
{
    std::mutex capturedMutex;
    std::condition_variable capturedCv;
    HttpServer::Responder captured;
    HttpServer server(
        [&](const HttpRequest &, HttpServer::Responder respond) {
            {
                std::lock_guard<std::mutex> lock(capturedMutex);
                captured = std::move(respond);
            }
            capturedCv.notify_one();
        });
    server.start(0);
    HttpClient client(server.port());
    std::thread late([&] {
        // The request is never answered; the client sees the server
        // close the connection when stop() tears it down.
        try {
            client.get("/never");
        } catch (const std::exception &) {
        }
    });
    {
        std::unique_lock<std::mutex> lock(capturedMutex);
        capturedCv.wait(lock, [&] { return bool(captured); });
    }
    server.stop();
    HttpResponse response;
    response.body = "too late";
    captured(std::move(response)); // must not crash or deadlock
    late.join();
}

} // namespace
