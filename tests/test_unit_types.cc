/**
 * @file
 * Unit tests for the strong address/time types (memsim/types.hh) and
 * BlockGeometry, plus regression tests for the bug class they kill:
 * block-indexed hashes that silently aliased adjacent blocks whenever
 * the block size was not the hard-coded 128 bytes.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "memsim/block_geometry.hh"
#include "memsim/types.hh"
#include "prefetch/hardware_filter.hh"
#include "prefetch/markov_prefetcher.hh"
#include "sim/experiment.hh"
#include "sim/multicore.hh"
#include "throttle/feedback.hh"

namespace ecdp
{
namespace
{

TEST(UnitTypes, ByteAddrArithmetic)
{
    Addr a = 0x40000000u;
    EXPECT_EQ((a + 128).raw(), 0x40000080u);
    EXPECT_EQ((a - 16).raw(), 0x3ffffff0u);
    EXPECT_EQ((a + 128) - a, 128u);

    Addr b = a;
    b += 64;
    EXPECT_EQ(b.raw(), 0x40000040u);
    EXPECT_LT(a, b);

    // Wraps mod 2^32 like the simulated 32-bit hardware.
    Addr top = 0xffffffffu;
    EXPECT_EQ((top + 1).raw(), 0u);
}

TEST(UnitTypes, BlockAddrIsABlockNumber)
{
    BlockAddr blk{5};
    EXPECT_EQ(blk.raw(), 5u);
    EXPECT_EQ((blk + 3).raw(), 8u);
    EXPECT_EQ((blk + (-2)).raw(), 3u);
    EXPECT_LT(blk, blk + 1);
}

TEST(UnitTypes, CycleArithmetic)
{
    Cycle t{100};
    EXPECT_EQ((t + Cycle{20}).raw(), 120u);
    EXPECT_EQ((t - Cycle{30}).raw(), 70u);
    EXPECT_EQ((t + 5).raw(), 105u);
    EXPECT_EQ((t - 5).raw(), 95u);

    t += Cycle{10};
    t += 3;
    EXPECT_EQ(t, Cycle{113});
    EXPECT_EQ((t++).raw(), 113u);
    EXPECT_EQ((++t).raw(), 115u);

    EXPECT_LT(t, kNoEventCycle);
    EXPECT_EQ(kNoEventCycle.raw(), ~std::uint64_t{0});
}

TEST(UnitTypes, StrongTypesKeyUnorderedContainers)
{
    std::unordered_set<Addr> bytes{0x40000000u, 0x40000080u};
    EXPECT_TRUE(bytes.count(Addr{0x40000080u}));
    std::unordered_set<BlockAddr> blocks{BlockAddr{1}, BlockAddr{2}};
    EXPECT_FALSE(blocks.count(BlockAddr{3}));
    std::unordered_set<Cycle> times{Cycle{7}};
    EXPECT_TRUE(times.count(Cycle{7}));
}

TEST(BlockGeometry, DerivedShiftAndMaskTrackBlockSize)
{
    for (std::uint32_t bytes : {64u, 128u, 256u}) {
        BlockGeometry g{bytes};
        EXPECT_EQ(g.blockBytes(), bytes);
        EXPECT_EQ(std::uint32_t{1} << g.blockShift(), bytes);
        EXPECT_EQ(g.blockMask(), bytes - 1);
    }
}

TEST(BlockGeometry, ConversionsRoundTrip)
{
    for (std::uint32_t bytes : {64u, 128u, 256u}) {
        BlockGeometry g{bytes};
        Addr a = Addr{0x40001230u};
        BlockAddr blk = g.blockOf(a);
        EXPECT_EQ(blk.raw(), 0x40001230u / bytes);
        EXPECT_EQ(g.baseOf(blk).raw(), (0x40001230u / bytes) * bytes);
        EXPECT_EQ(g.alignDown(a), g.baseOf(blk));
        EXPECT_EQ(g.offsetIn(a), 0x40001230u % bytes);
        EXPECT_TRUE(g.sameBlock(a, g.baseOf(blk)));
        EXPECT_FALSE(g.sameBlock(a, a + bytes));
        EXPECT_EQ(g.signedBlockOf(a),
                  static_cast<std::int64_t>(blk.raw()));
        EXPECT_EQ(g.baseOfSigned(g.signedBlockOf(a)), g.alignDown(a));
    }
}

TEST(BlockGeometry, AdjacentBlocksGetAdjacentNumbersAtAnySize)
{
    // The pre-refactor hashes shifted by a hard-coded 7, so at 64-byte
    // blocks two *different* adjacent blocks collapsed onto one table
    // index. Block numbers must differ for adjacent blocks at every
    // configured size.
    for (std::uint32_t bytes : {64u, 128u, 256u}) {
        BlockGeometry g{bytes};
        Addr a = 0x40000000u;
        EXPECT_EQ((g.blockOf(a) + 1), g.blockOf(a + bytes))
            << "block size " << bytes;
        EXPECT_NE(g.blockOf(a), g.blockOf(a + bytes));
    }
}

TEST(BlockSizeSensitivity, HardwareFilterDistinguishesAdjacent64ByteBlocks)
{
    BlockGeometry g{64};
    HardwareFilter filter;
    Addr a = 0x40000000u;
    filter.onPrefetchEvictedUnused(g.blockOf(a));
    EXPECT_FALSE(filter.allow(g.blockOf(a)));
    // The adjacent 64-byte block is a different filter entry; with the
    // old byte>>7 hash it aliased onto the same bit and was dropped.
    EXPECT_TRUE(filter.allow(g.blockOf(a + 64)));

    filter.onPrefetchUsed(g.blockOf(a));
    EXPECT_TRUE(filter.allow(g.blockOf(a)));
}

TEST(BlockSizeSensitivity, PollutionFilterDistinguishesAdjacent64ByteBlocks)
{
    BlockGeometry g{64};
    PollutionFilter filter;
    Addr a = 0x40000000u;
    filter.onPrefetchEvictedDemandBlock(g.blockOf(a));
    EXPECT_TRUE(filter.test(g.blockOf(a)));
    EXPECT_FALSE(filter.test(g.blockOf(a + 64)));
}

TEST(BlockSizeSensitivity, MarkovTableDistinguishesAdjacent64ByteBlocks)
{
    BlockGeometry g{64};
    MarkovPrefetcher markov(g);
    std::vector<PrefetchRequest> out;
    Addr a = 0x40000000u;

    // Train the correlation a -> a+64.
    markov.onDemandMiss(g.blockOf(a), out);
    markov.onDemandMiss(g.blockOf(a + 64), out);
    out.clear();
    markov.onDemandMiss(g.blockOf(a), out);

    ASSERT_EQ(out.size(), 1u);
    // The successor must be the trained 64-byte neighbour, not the
    // 128-byte-rounded address the old hard-coded shift produced.
    EXPECT_EQ(out[0].blockAddr, a + 64);
}

TEST(BlockSizeSensitivity, RunsCompleteAt64And128ByteBlocks)
{
    // End-to-end: the same pointer workload simulated at 64- and
    // 128-byte L2 blocks. Both configurations must run to completion
    // with sane stats, and the block size must actually matter (the
    // pre-refactor tree silently simulated 128-byte indexing whatever
    // the config said).
    Workload wl = buildWorkload("mst", InputSet::Train);

    SystemConfig c128 = configs::baseline();
    RunStats s128 = simulate(c128, wl);

    SystemConfig c64 = configs::baseline();
    c64.l2BlockBytes = 64;
    RunStats s64 = simulate(c64, wl);

    EXPECT_GT(s128.ipc, 0.0);
    EXPECT_GT(s64.ipc, 0.0);
    EXPECT_FALSE(s128.timedOut);
    EXPECT_FALSE(s64.timedOut);
    // Halving the block size halves per-miss coverage on this
    // pointer-chasing workload: the runs must not be identical.
    EXPECT_NE(s64.cycles, s128.cycles);
}

} // namespace
} // namespace ecdp
