/**
 * @file
 * Conservation-law tests over the observability metric registry:
 * every prefetch the system generates must be accounted for exactly
 * once (issued, dropped for a recorded reason, or still queued /
 * in flight at the end of the run), every demand access must be a
 * hit, a merge, or a miss, and every MSHR allocation must be matched
 * by a release or a live entry. The identities are checked across
 * the full matrix of prefetcher / throttle / filter configurations
 * so that no accounting site can silently leak.
 *
 * MetricRegistry::value() throws on a missing path, so a typo in an
 * identity fails loudly instead of comparing against zero.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "compiler/profiling_compiler.hh"
#include "obs/observability.hh"
#include "sim/experiment.hh"
#include "sim/multicore.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

namespace ecdp
{
namespace
{

const HintTable &
trainHints(const std::string &bench)
{
    static std::map<std::string, HintTable> cache;
    auto it = cache.find(bench);
    if (it == cache.end()) {
        it = cache
                 .emplace(bench,
                          ProfilingCompiler::profile(
                              buildWorkload(bench, InputSet::Train)))
                 .first;
    }
    return it->second;
}

SystemConfig
makeCaseConfig(const std::string &config, const std::string &bench)
{
    if (config == "noprefetch")
        return configs::noPrefetch();
    if (config == "baseline")
        return configs::baseline();
    if (config == "cdp")
        return configs::streamCdp();
    if (config == "cdp+throttle")
        return configs::streamCdpThrottled();
    if (config == "full")
        return configs::fullProposal(&trainHints(bench));
    if (config == "dbp")
        return configs::streamDbp();
    if (config == "markov")
        return configs::streamMarkov();
    if (config == "ghb")
        return configs::ghbAlone();
    if (config == "cdp+filter")
        return configs::streamCdpHwFilter(true);
    if (config == "ecdp+fdp")
        return configs::streamEcdpFdp(&trainHints(bench));
    if (config == "cdp+pab")
        return configs::streamCdpPab();
    if (config == "ideal-lds")
        return configs::idealLds();
    if (config == "side-buffer") {
        // The Section 2.3 no-pollution oracle: prefetches fill a side
        // buffer instead of the L2, exercising the side_resident /
        // side_used legs of the fill identity.
        SystemConfig cfg = configs::streamCdp();
        cfg.idealNoPollution = true;
        return cfg;
    }
    throw std::runtime_error("unknown case config " + config);
}

/** Check every conservation identity for one core's subtree. */
void
checkCoreIdentities(const obs::MetricRegistry &m, unsigned core,
                    const std::string &context)
{
    const std::string root = "core" + std::to_string(core) + ".";
    auto v = [&](const std::string &path) {
        return m.value(root + path);
    };

    for (const std::string pf :
         {std::string("pf.primary."), std::string("pf.lds.")}) {
        SCOPED_TRACE(context + " " + root + pf);

        // Every generated prefetch request either entered the queue
        // or was dropped on queue overflow.
        EXPECT_EQ(v(pf + "generated"),
                  v(pf + "queued") + v(pf + "dropped.queue_full"));

        // Every queued request was issued to DRAM, dropped for a
        // recorded reason at issue time, or is still queued at the
        // end of the run.
        EXPECT_EQ(v(pf + "queued"),
                  v(pf + "issued") + v(pf + "dropped.source_disabled") +
                      v(pf + "dropped.cached") +
                      v(pf + "dropped.in_flight") +
                      v(pf + "dropped.side_buffer") +
                      v(pf + "dropped.hw_filter") +
                      v(pf + "in_queue_end"));

        // Every issued prefetch filled, or is still in an MSHR.
        EXPECT_EQ(v(pf + "issued"),
                  v(pf + "filled") + v(pf + "in_flight_end"));

        // Every filled prefetch was demanded (timely or late),
        // evicted unused, or is still resident unused (in the L2 or
        // the side buffer) when the run ended.
        EXPECT_EQ(v(pf + "filled"),
                  v(pf + "used") + v(pf + "consumed_late") +
                      v(pf + "evicted_unused") +
                      v(pf + "resident_unused_end") +
                      v(pf + "side_resident_end"));

        // Side-buffer hits are a subset of uses.
        EXPECT_LE(v(pf + "side_used"), v(pf + "used"));
        EXPECT_EQ(v(pf + "useful_latency_count"), v(pf + "used"));
    }

    {
        SCOPED_TRACE(context + " " + root + "l2");
        // Every demand access hit the L2, merged into an in-flight
        // MSHR, hit the side buffer or the ideal-LDS oracle, or
        // missed for real.
        EXPECT_EQ(v("l2.demand_accesses"),
                  v("l2.demand_hits") + v("l2.mshr_merges") +
                      v("l2.side_hits") + v("l2.ideal_hits") +
                      v("l2.demand_misses_true"));

        // The reported miss count splits into true misses and late
        // merges behind a prefetch.
        EXPECT_EQ(v("l2.demand_misses"),
                  v("l2.demand_misses_true") +
                      v("l2.demand_misses_late"));
        EXPECT_LE(v("l2.lds_misses"), v("l2.demand_misses"));
        EXPECT_LE(v("l2.demand_misses_late"), v("l2.mshr_merges"));

        // demand_loads counts every load (L1 hits included), so the
        // L2 can never see more demand traffic than ran through the
        // core in total (loads plus at most one probe per store).
        EXPECT_GT(v("demand_loads"), 0u);
    }

    {
        SCOPED_TRACE(context + " " + root + "mshr");
        // Every MSHR allocation is matched by a release or a live
        // entry at the end of the run.
        EXPECT_EQ(v("mshr.allocations"),
                  v("mshr.releases") + v("mshr.in_flight_end"));
    }
}

/** Registry totals must agree with the legacy RunStats fields. */
void
checkRunStatsAgreement(const obs::MetricRegistry &m, unsigned core,
                       const RunStats &stats)
{
    const std::string root = "core" + std::to_string(core) + ".";
    auto v = [&](const std::string &path) {
        return m.value(root + path);
    };
    static const char *const kPf[2] = {"pf.primary.", "pf.lds."};
    for (unsigned which = 0; which < 2; ++which) {
        const std::string pf = kPf[which];
        EXPECT_EQ(stats.prefIssued[which], v(pf + "issued"));
        EXPECT_EQ(stats.prefUsed[which], v(pf + "used"));
        EXPECT_EQ(stats.prefDropped[which],
                  v(pf + "dropped.queue_full"));
        EXPECT_EQ(stats.usefulLatencySum[which],
                  v(pf + "useful_latency_sum"));
    }
    EXPECT_EQ(stats.demandLoads, v("demand_loads"));
    EXPECT_EQ(stats.l2DemandAccesses, v("l2.demand_accesses"));
    EXPECT_EQ(stats.l2DemandMisses, v("l2.demand_misses"));
    EXPECT_EQ(stats.l2LdsMisses, v("l2.lds_misses"));
}

struct AccountingCase
{
    const char *bench;
    const char *config;
};

void
PrintTo(const AccountingCase &c, std::ostream *os)
{
    *os << c.bench << ":" << c.config;
}

class ConservationTest
    : public ::testing::TestWithParam<AccountingCase>
{
};

TEST_P(ConservationTest, RegistryBalances)
{
    const AccountingCase &c = GetParam();
    SystemConfig cfg = makeCaseConfig(c.config, c.bench);
    Workload workload = buildWorkload(c.bench, InputSet::Train);

    obs::MetricRegistry metrics;
    RunStats stats =
        simulate(cfg, workload, Observability{&metrics, nullptr});

    const std::string context =
        std::string(c.bench) + ":" + c.config;
    checkCoreIdentities(metrics, 0, context);
    checkRunStatsAgreement(metrics, 0, stats);

    // DRAM totals exist and at least every true L2 miss went to DRAM
    // or merged; reads cover demand fills and prefetches.
    EXPECT_GE(metrics.value("dram.reads"),
              metrics.value("core0.l2.demand_misses_true"));
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadsByConfig, ConservationTest,
    ::testing::Values(
        AccountingCase{"health", "noprefetch"},
        AccountingCase{"health", "baseline"},
        AccountingCase{"health", "cdp"},
        AccountingCase{"health", "full"},
        AccountingCase{"health", "cdp+filter"},
        AccountingCase{"health", "cdp+pab"},
        AccountingCase{"health", "ecdp+fdp"},
        AccountingCase{"health", "markov"},
        AccountingCase{"health", "side-buffer"},
        AccountingCase{"mst", "cdp+throttle"},
        AccountingCase{"mst", "dbp"},
        AccountingCase{"mst", "ghb"},
        AccountingCase{"mst", "full"},
        AccountingCase{"bisort", "cdp"},
        AccountingCase{"libquantum", "baseline"},
        AccountingCase{"libquantum", "ideal-lds"}),
    [](const ::testing::TestParamInfo<AccountingCase> &info) {
        std::string name = std::string(info.param.bench) + "_" +
                           info.param.config;
        for (char &ch : name) {
            if (ch == '+' || ch == '-')
                ch = '_';
        }
        return name;
    });

TEST(ConservationMultiCore, EveryCoreBalances)
{
    Workload a = buildWorkload("health", InputSet::Train);
    Workload b = buildWorkload("libquantum", InputSet::Train);
    SystemConfig cfg = configs::streamCdpThrottled();

    obs::MetricRegistry metrics;
    MultiCoreResult result =
        simulateMultiCore(cfg, {&a, &b}, {1.0, 1.0},
                          Observability{&metrics, nullptr});

    ASSERT_EQ(result.perCore.size(), 2u);
    for (unsigned core = 0; core < 2; ++core) {
        checkCoreIdentities(metrics, core, "dual-core");
        checkRunStatsAgreement(metrics, core, result.perCore[core]);
    }
}

TEST(ConservationMultiCore, SharedRegistryKeepsCoresApart)
{
    Workload a = buildWorkload("mst", InputSet::Train);
    SystemConfig cfg = configs::baseline();

    obs::MetricRegistry metrics;
    simulateMultiCore(cfg, {&a, &a}, {1.0, 1.0},
                      Observability{&metrics, nullptr});

    // Identical workloads on a shared bus still register distinct
    // counters; the subtree prefixes must not collide.
    EXPECT_GT(metrics.value("core0.l2.demand_accesses"), 0u);
    EXPECT_GT(metrics.value("core1.l2.demand_accesses"), 0u);
    EXPECT_FALSE(
        metrics.sortedWithPrefix("core0.pf.primary.").empty());
    EXPECT_FALSE(
        metrics.sortedWithPrefix("core1.pf.primary.").empty());
}

TEST(ConservationRegistry, MissingPathThrows)
{
    obs::MetricRegistry metrics;
    metrics.counter("core0.l2.demand_hits").add(3);
    EXPECT_EQ(metrics.value("core0.l2.demand_hits"), 3u);
    EXPECT_THROW(metrics.value("core0.l2.demand_hit"),
                 std::out_of_range);
}

} // namespace
} // namespace ecdp
