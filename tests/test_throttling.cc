/**
 * @file
 * Unit tests for feedback collection (Section 4.1) and the
 * coordinated / FDP throttlers (Sections 4.2 and 6.5).
 */

#include <gtest/gtest.h>

#include "memsim/block_geometry.hh"
#include "throttle/coordinated_throttler.hh"
#include "throttle/fdp_throttler.hh"
#include "throttle/feedback.hh"

namespace ecdp
{
namespace
{

FeedbackSnapshot
snap(double coverage, double accuracy)
{
    FeedbackSnapshot s;
    s.coverage = coverage;
    s.accuracy = accuracy;
    s.anyPrefetches = true;
    return s;
}

TEST(Feedback, AccuracyCountsUsedAndLate)
{
    PrefetcherFeedback fb;
    for (int i = 0; i < 10; ++i)
        fb.onPrefetchIssued();
    for (int i = 0; i < 4; ++i)
        fb.onPrefetchUsed();
    for (int i = 0; i < 2; ++i)
        fb.onPrefetchLate();
    fb.endInterval();
    // Aged counters (integer halves): (4/2 + 2/2) / (10/2).
    EXPECT_NEAR(fb.accuracy(), 0.6, 1e-9);
}

TEST(Feedback, AccuracyIsOneWithNoPrefetchesEver)
{
    // A prefetcher that never issued anything has no measurement to
    // hold; it stays at the "idle prefetchers are never punished"
    // default of 1.0.
    PrefetcherFeedback fb;
    fb.endInterval();
    EXPECT_DOUBLE_EQ(fb.accuracy(), 1.0);
    EXPECT_FALSE(fb.anyPrefetches());
}

TEST(Feedback, ZeroIssueIntervalsHoldPreviousAccuracy)
{
    // An inaccurate prefetcher gets throttled to zero issue; its aged
    // issued count decays to 0 within a few intervals. 0/0 must not
    // read as perfect accuracy — it holds the last real measurement,
    // so the throttler does not immediately re-promote it.
    PrefetcherFeedback fb;
    for (int i = 0; i < 16; ++i)
        fb.onPrefetchIssued();
    fb.onPrefetchUsed();
    fb.endInterval();
    EXPECT_NEAR(fb.accuracy(), 0.0, 1e-9); // aged 0 used / 8 issued
    // Fully throttled from here on: issued ages 8 -> 4 -> 2 -> 1 -> 0.
    for (int i = 0; i < 6; ++i)
        fb.endInterval();
    EXPECT_FALSE(fb.anyPrefetches());
    EXPECT_NEAR(fb.accuracy(), 0.0, 1e-9); // held, not 1.0
}

TEST(Feedback, HeldAccuracyKeepsFdpFromRepromoting)
{
    // The end-to-end FDP consequence of the hold: a fully-throttled
    // inaccurate prefetcher keeps deciding Down every interval
    // instead of bouncing back up on a fake accuracy of 1.0.
    PrefetcherFeedback fb;
    for (int i = 0; i < 32; ++i)
        fb.onPrefetchIssued();
    fb.onPrefetchUsed();
    fb.endInterval();
    FdpThrottler fdp;
    for (int i = 0; i < 8; ++i) {
        FeedbackSnapshot s;
        s.accuracy = fb.accuracy();
        s.anyPrefetches = fb.anyPrefetches();
        EXPECT_EQ(fdp.decide(s), ThrottleDecision::Down)
            << "interval " << i;
        fb.endInterval(); // nothing issued: fully throttled
    }
}

TEST(Feedback, CoverageUsesSharedMissCounter)
{
    PrefetcherFeedback fb;
    for (int i = 0; i < 20; ++i)
        fb.onPrefetchIssued();
    for (int i = 0; i < 10; ++i)
        fb.onPrefetchUsed();
    fb.endInterval();
    // Aged used = 5; with 15 aged misses: 5 / (5 + 15) = 0.25.
    EXPECT_NEAR(fb.coverage(15), 0.25, 1e-9);
}

TEST(Feedback, LatenessFraction)
{
    PrefetcherFeedback fb;
    for (int i = 0; i < 8; ++i)
        fb.onPrefetchUsed();
    for (int i = 0; i < 2; ++i)
        fb.onPrefetchLate();
    fb.endInterval();
    EXPECT_NEAR(fb.lateness(), 0.25, 1e-9); // 1 aged late / 4 aged used
}

TEST(Feedback, LifetimeCountsSurviveAging)
{
    PrefetcherFeedback fb;
    for (int i = 0; i < 4; ++i)
        fb.onPrefetchIssued();
    fb.endInterval();
    fb.endInterval();
    EXPECT_EQ(fb.lifetimeIssued(), 4u);
}

TEST(PollutionFilterTest, RemembersAndClears)
{
    PollutionFilter filter(64);
    const BlockGeometry geom{128};
    const BlockAddr block = geom.blockOf(0x40000000);
    EXPECT_FALSE(filter.test(block));
    filter.onPrefetchEvictedDemandBlock(block);
    EXPECT_TRUE(filter.test(block));
    filter.clear();
    EXPECT_FALSE(filter.test(block));
}

// ---------------------------------------------------------------
// Table 3 heuristics, case by case.
// ---------------------------------------------------------------

struct Table3Case
{
    const char *name;
    double self_cov, self_acc, rival_cov;
    ThrottleDecision expected;
};

class Table3Test : public ::testing::TestWithParam<Table3Case>
{
};

TEST_P(Table3Test, DecisionMatchesPaper)
{
    const Table3Case &c = GetParam();
    CoordinatedThrottler throttler(
        CoordinatedThrottler::Thresholds{0.2, 0.4, 0.7});
    EXPECT_EQ(throttler.decide(snap(c.self_cov, c.self_acc),
                               snap(c.rival_cov, 0.5)),
              c.expected)
        << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    PaperCases, Table3Test,
    ::testing::Values(
        // Case 1: high coverage -> up, regardless of the rest.
        Table3Case{"case1-low-acc", 0.5, 0.1, 0.1,
                   ThrottleDecision::Up},
        Table3Case{"case1-high-rival", 0.5, 0.9, 0.9,
                   ThrottleDecision::Up},
        // Case 2: low coverage + low accuracy -> down.
        Table3Case{"case2-rival-low", 0.1, 0.1, 0.1,
                   ThrottleDecision::Down},
        Table3Case{"case2-rival-high", 0.1, 0.1, 0.9,
                   ThrottleDecision::Down},
        // Case 3: both coverages low, decent accuracy -> up.
        Table3Case{"case3-medium", 0.1, 0.5, 0.1,
                   ThrottleDecision::Up},
        Table3Case{"case3-high", 0.1, 0.9, 0.1,
                   ThrottleDecision::Up},
        // Case 4: low cov, medium accuracy, rival covering -> down.
        Table3Case{"case4", 0.1, 0.5, 0.9, ThrottleDecision::Down},
        // Case 5: low cov, high accuracy, rival covering -> nothing.
        Table3Case{"case5", 0.1, 0.9, 0.9,
                   ThrottleDecision::Nothing}));

TEST(CoordinatedThrottlerTest, ThresholdBoundaries)
{
    CoordinatedThrottler throttler(
        CoordinatedThrottler::Thresholds{0.2, 0.4, 0.7});
    // Coverage exactly at threshold counts as high (case 1).
    EXPECT_EQ(throttler.decide(snap(0.2, 0.1), snap(0.0, 0.5)),
              ThrottleDecision::Up);
    // Accuracy exactly at A_high is high (case 5).
    EXPECT_EQ(throttler.decide(snap(0.1, 0.7), snap(0.9, 0.5)),
              ThrottleDecision::Nothing);
    // Accuracy exactly at A_low is medium (case 4 with rival high).
    EXPECT_EQ(throttler.decide(snap(0.1, 0.4), snap(0.9, 0.5)),
              ThrottleDecision::Down);
}

TEST(CoordinatedThrottlerTest, ApplyClampsAtLevelBounds)
{
    EXPECT_EQ(CoordinatedThrottler::apply(AggLevel::Aggressive,
                                          ThrottleDecision::Up),
              AggLevel::Aggressive);
    EXPECT_EQ(CoordinatedThrottler::apply(AggLevel::VeryConservative,
                                          ThrottleDecision::Down),
              AggLevel::VeryConservative);
    EXPECT_EQ(CoordinatedThrottler::apply(AggLevel::Moderate,
                                          ThrottleDecision::Up),
              AggLevel::Aggressive);
    EXPECT_EQ(CoordinatedThrottler::apply(AggLevel::Moderate,
                                          ThrottleDecision::Down),
              AggLevel::Conservative);
    EXPECT_EQ(CoordinatedThrottler::apply(AggLevel::Moderate,
                                          ThrottleDecision::Nothing),
              AggLevel::Moderate);
}

TEST(CoordinatedThrottlerTest, SymmetricAcrossPrefetchers)
{
    // The same decide() serves both prefetchers: swapping roles with
    // identical snapshots yields identical decisions.
    CoordinatedThrottler throttler;
    FeedbackSnapshot a = snap(0.1, 0.5);
    FeedbackSnapshot b = snap(0.1, 0.5);
    EXPECT_EQ(throttler.decide(a, b), throttler.decide(b, a));
}

// ---------------------------------------------------------------
// FDP decision matrix.
// ---------------------------------------------------------------

FeedbackSnapshot
fdpSnap(double accuracy, double lateness, double pollution)
{
    FeedbackSnapshot s;
    s.accuracy = accuracy;
    s.lateness = lateness;
    s.pollution = pollution;
    s.anyPrefetches = true;
    return s;
}

TEST(FdpThrottlerTest, HighAccuracyLateGoesUp)
{
    FdpThrottler fdp;
    EXPECT_EQ(fdp.decide(fdpSnap(0.9, 0.5, 0.0)),
              ThrottleDecision::Up);
}

TEST(FdpThrottlerTest, HighAccuracyTimelyStays)
{
    FdpThrottler fdp;
    EXPECT_EQ(fdp.decide(fdpSnap(0.9, 0.0, 0.0)),
              ThrottleDecision::Nothing);
}

TEST(FdpThrottlerTest, MediumAccuracyPollutingGoesDown)
{
    FdpThrottler fdp;
    EXPECT_EQ(fdp.decide(fdpSnap(0.5, 0.0, 0.1)),
              ThrottleDecision::Down);
}

TEST(FdpThrottlerTest, MediumAccuracyLateGoesUp)
{
    FdpThrottler fdp;
    EXPECT_EQ(fdp.decide(fdpSnap(0.5, 0.5, 0.0)),
              ThrottleDecision::Up);
}

TEST(FdpThrottlerTest, LowAccuracyAlwaysGoesDown)
{
    FdpThrottler fdp;
    EXPECT_EQ(fdp.decide(fdpSnap(0.1, 0.9, 0.0)),
              ThrottleDecision::Down);
    EXPECT_EQ(fdp.decide(fdpSnap(0.1, 0.0, 0.0)),
              ThrottleDecision::Down);
}

TEST(FdpThrottlerTest, IgnoresRivalByDesign)
{
    // FDP has no rival input at all: its decide() takes one snapshot.
    // This is the structural difference Section 6.5 calls out.
    FdpThrottler fdp;
    FeedbackSnapshot s = fdpSnap(0.9, 0.5, 0.0);
    EXPECT_EQ(fdp.decide(s), ThrottleDecision::Up);
}

} // namespace
} // namespace ecdp
