/**
 * @file
 * Unit tests for feedback collection (Section 4.1) and the
 * coordinated / FDP throttlers (Sections 4.2 and 6.5).
 */

#include <gtest/gtest.h>

#include "memsim/block_geometry.hh"
#include "throttle/coordinated_throttler.hh"
#include "throttle/fdp_throttler.hh"
#include "throttle/feedback.hh"

namespace ecdp
{
namespace
{

FeedbackSnapshot
snap(double coverage, double accuracy)
{
    FeedbackSnapshot s;
    s.coverage = coverage;
    s.accuracy = accuracy;
    s.anyPrefetches = true;
    return s;
}

TEST(Feedback, AccuracyCountsUsedAndLate)
{
    PrefetcherFeedback fb;
    for (int i = 0; i < 10; ++i)
        fb.onPrefetchIssued();
    for (int i = 0; i < 4; ++i)
        fb.onPrefetchUsed();
    for (int i = 0; i < 2; ++i)
        fb.onPrefetchLate();
    fb.endInterval();
    // Aged counters (integer halves): (4/2 + 2/2) / (10/2).
    EXPECT_NEAR(fb.accuracy(), 0.6, 1e-9);
}

TEST(Feedback, AccuracyIsOneWithNoPrefetchesEver)
{
    // A prefetcher that never issued anything has no measurement to
    // hold; it stays at the "idle prefetchers are never punished"
    // default of 1.0.
    PrefetcherFeedback fb;
    fb.endInterval();
    EXPECT_DOUBLE_EQ(fb.accuracy(), 1.0);
    EXPECT_FALSE(fb.anyPrefetches());
}

TEST(Feedback, ZeroIssueIntervalsHoldPreviousAccuracy)
{
    // An inaccurate prefetcher gets throttled to zero issue; its aged
    // issued count decays to 0 within a few intervals. 0/0 must not
    // read as perfect accuracy — it holds the last real measurement,
    // so the throttler does not immediately re-promote it.
    PrefetcherFeedback fb;
    for (int i = 0; i < 16; ++i)
        fb.onPrefetchIssued();
    fb.onPrefetchUsed();
    fb.endInterval();
    EXPECT_NEAR(fb.accuracy(), 0.0, 1e-9); // aged 0 used / 8 issued
    // Fully throttled from here on: issued ages 8 -> 4 -> 2 -> 1 -> 0.
    for (int i = 0; i < 6; ++i)
        fb.endInterval();
    EXPECT_FALSE(fb.anyPrefetches());
    EXPECT_NEAR(fb.accuracy(), 0.0, 1e-9); // held, not 1.0
}

TEST(Feedback, HeldAccuracyKeepsFdpFromRepromoting)
{
    // The end-to-end FDP consequence of the hold: a fully-throttled
    // inaccurate prefetcher keeps deciding Down every interval
    // instead of bouncing back up on a fake accuracy of 1.0.
    PrefetcherFeedback fb;
    for (int i = 0; i < 32; ++i)
        fb.onPrefetchIssued();
    fb.onPrefetchUsed();
    fb.endInterval();
    FdpThrottler fdp;
    for (int i = 0; i < 8; ++i) {
        FeedbackSnapshot s;
        s.accuracy = fb.accuracy();
        s.anyPrefetches = fb.anyPrefetches();
        EXPECT_EQ(fdp.decide(s), ThrottleDecision::Down)
            << "interval " << i;
        fb.endInterval(); // nothing issued: fully throttled
    }
}

TEST(Feedback, CoverageUsesSharedMissCounter)
{
    PrefetcherFeedback fb;
    for (int i = 0; i < 20; ++i)
        fb.onPrefetchIssued();
    for (int i = 0; i < 10; ++i)
        fb.onPrefetchUsed();
    fb.endInterval();
    // Aged used = 5; with 15 aged misses: 5 / (5 + 15) = 0.25.
    EXPECT_NEAR(fb.coverage(15), 0.25, 1e-9);
}

TEST(Feedback, LatenessFraction)
{
    PrefetcherFeedback fb;
    for (int i = 0; i < 8; ++i)
        fb.onPrefetchUsed();
    for (int i = 0; i < 2; ++i)
        fb.onPrefetchLate();
    fb.endInterval();
    EXPECT_NEAR(fb.lateness(), 0.25, 1e-9); // 1 aged late / 4 aged used
}

TEST(Feedback, LifetimeCountsSurviveAging)
{
    PrefetcherFeedback fb;
    for (int i = 0; i < 4; ++i)
        fb.onPrefetchIssued();
    fb.endInterval();
    fb.endInterval();
    EXPECT_EQ(fb.lifetimeIssued(), 4u);
}

TEST(PollutionFilterTest, RemembersAndClears)
{
    PollutionFilter filter(64);
    const BlockGeometry geom{128};
    const BlockAddr block = geom.blockOf(0x40000000);
    EXPECT_FALSE(filter.test(block));
    filter.onPrefetchEvictedDemandBlock(block);
    EXPECT_TRUE(filter.test(block));
    filter.clear();
    EXPECT_FALSE(filter.test(block));
}

// ---------------------------------------------------------------
// Table 3 heuristics, case by case.
// ---------------------------------------------------------------

struct Table3Case
{
    const char *name;
    double self_cov, self_acc, rival_cov;
    ThrottleDecision expected;
};

class Table3Test : public ::testing::TestWithParam<Table3Case>
{
};

TEST_P(Table3Test, DecisionMatchesPaper)
{
    const Table3Case &c = GetParam();
    CoordinatedThrottler throttler(
        CoordinatedThrottler::Thresholds{0.2, 0.4, 0.7});
    EXPECT_EQ(throttler.decide(snap(c.self_cov, c.self_acc),
                               snap(c.rival_cov, 0.5)),
              c.expected)
        << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    PaperCases, Table3Test,
    ::testing::Values(
        // Case 1: high coverage -> up, regardless of the rest.
        Table3Case{"case1-low-acc", 0.5, 0.1, 0.1,
                   ThrottleDecision::Up},
        Table3Case{"case1-high-rival", 0.5, 0.9, 0.9,
                   ThrottleDecision::Up},
        // Case 2: low coverage + low accuracy -> down.
        Table3Case{"case2-rival-low", 0.1, 0.1, 0.1,
                   ThrottleDecision::Down},
        Table3Case{"case2-rival-high", 0.1, 0.1, 0.9,
                   ThrottleDecision::Down},
        // Case 3: both coverages low, decent accuracy -> up.
        Table3Case{"case3-medium", 0.1, 0.5, 0.1,
                   ThrottleDecision::Up},
        Table3Case{"case3-high", 0.1, 0.9, 0.1,
                   ThrottleDecision::Up},
        // Case 4: low cov, medium accuracy, rival covering -> down.
        Table3Case{"case4", 0.1, 0.5, 0.9, ThrottleDecision::Down},
        // Case 5: low cov, high accuracy, rival covering -> nothing.
        Table3Case{"case5", 0.1, 0.9, 0.9,
                   ThrottleDecision::Nothing}));

TEST(CoordinatedThrottlerTest, ThresholdBoundaries)
{
    CoordinatedThrottler throttler(
        CoordinatedThrottler::Thresholds{0.2, 0.4, 0.7});
    // Coverage exactly at threshold counts as high (case 1).
    EXPECT_EQ(throttler.decide(snap(0.2, 0.1), snap(0.0, 0.5)),
              ThrottleDecision::Up);
    // Accuracy exactly at A_high is high (case 5).
    EXPECT_EQ(throttler.decide(snap(0.1, 0.7), snap(0.9, 0.5)),
              ThrottleDecision::Nothing);
    // Accuracy exactly at A_low is medium (case 4 with rival high).
    EXPECT_EQ(throttler.decide(snap(0.1, 0.4), snap(0.9, 0.5)),
              ThrottleDecision::Down);
}

TEST(CoordinatedThrottlerTest, ApplyClampsAtLevelBounds)
{
    EXPECT_EQ(CoordinatedThrottler::apply(AggLevel::Aggressive,
                                          ThrottleDecision::Up),
              AggLevel::Aggressive);
    EXPECT_EQ(CoordinatedThrottler::apply(AggLevel::VeryConservative,
                                          ThrottleDecision::Down),
              AggLevel::VeryConservative);
    EXPECT_EQ(CoordinatedThrottler::apply(AggLevel::Moderate,
                                          ThrottleDecision::Up),
              AggLevel::Aggressive);
    EXPECT_EQ(CoordinatedThrottler::apply(AggLevel::Moderate,
                                          ThrottleDecision::Down),
              AggLevel::Conservative);
    EXPECT_EQ(CoordinatedThrottler::apply(AggLevel::Moderate,
                                          ThrottleDecision::Nothing),
              AggLevel::Moderate);
}

TEST(CoordinatedThrottlerTest, SymmetricAcrossPrefetchers)
{
    // The same decide() serves both prefetchers: swapping roles with
    // identical snapshots yields identical decisions.
    CoordinatedThrottler throttler;
    FeedbackSnapshot a = snap(0.1, 0.5);
    FeedbackSnapshot b = snap(0.1, 0.5);
    EXPECT_EQ(throttler.decide(a, b), throttler.decide(b, a));
}

// ---------------------------------------------------------------
// FDP decision matrix.
// ---------------------------------------------------------------

FeedbackSnapshot
fdpSnap(double accuracy, double lateness, double pollution)
{
    FeedbackSnapshot s;
    s.accuracy = accuracy;
    s.lateness = lateness;
    s.pollution = pollution;
    s.anyPrefetches = true;
    return s;
}

TEST(FdpThrottlerTest, HighAccuracyLateGoesUp)
{
    FdpThrottler fdp;
    EXPECT_EQ(fdp.decide(fdpSnap(0.9, 0.5, 0.0)),
              ThrottleDecision::Up);
}

TEST(FdpThrottlerTest, HighAccuracyTimelyStays)
{
    FdpThrottler fdp;
    EXPECT_EQ(fdp.decide(fdpSnap(0.9, 0.0, 0.0)),
              ThrottleDecision::Nothing);
}

TEST(FdpThrottlerTest, MediumAccuracyPollutingGoesDown)
{
    FdpThrottler fdp;
    EXPECT_EQ(fdp.decide(fdpSnap(0.5, 0.0, 0.1)),
              ThrottleDecision::Down);
}

TEST(FdpThrottlerTest, MediumAccuracyLateGoesUp)
{
    FdpThrottler fdp;
    EXPECT_EQ(fdp.decide(fdpSnap(0.5, 0.5, 0.0)),
              ThrottleDecision::Up);
}

TEST(FdpThrottlerTest, LowAccuracyAlwaysGoesDown)
{
    FdpThrottler fdp;
    EXPECT_EQ(fdp.decide(fdpSnap(0.1, 0.9, 0.0)),
              ThrottleDecision::Down);
    EXPECT_EQ(fdp.decide(fdpSnap(0.1, 0.0, 0.0)),
              ThrottleDecision::Down);
}

TEST(FdpThrottlerTest, IgnoresRivalByDesign)
{
    // FDP has no rival input at all: its decide() takes one snapshot.
    // This is the structural difference Section 6.5 calls out.
    FdpThrottler fdp;
    FeedbackSnapshot s = fdpSnap(0.9, 0.5, 0.0);
    EXPECT_EQ(fdp.decide(s), ThrottleDecision::Up);
}

// ---------------------------------------------------------------
// PollutionFilter hashing: every block-number bit must reach the
// index. The old single-shift hash (v ^= v >> 13, modulo table
// size) discarded bits above bit 24, so blocks differing only in
// high-order bits aliased deterministically.
// ---------------------------------------------------------------

TEST(PollutionFilterTest, HighOrderBitsReachTheIndex)
{
    PollutionFilter filter(4096);
    // Pairs differing only in bits the old hash discarded (>= 25).
    // A good mixer makes each pair collide with probability
    // 1/4096; the old hash collided on every single one.
    unsigned collisions = 0;
    const unsigned kPairs = 64;
    for (unsigned i = 0; i < kPairs; ++i) {
        const std::uint32_t base = 0x1000u + i * 257u;
        const BlockAddr low{base};
        const BlockAddr high{base | (0x7Fu << 25)};
        filter.clear();
        filter.onPrefetchEvictedDemandBlock(low);
        if (filter.test(high))
            ++collisions;
    }
    EXPECT_LE(collisions, 2u)
        << "high-order block bits do not influence the filter index";
}

TEST(PollutionFilterTest, StillDeterministicPerBlock)
{
    // The mixer is a pure function: same block, same bit.
    PollutionFilter filter(64);
    const BlockAddr block{0xABCDE123u};
    filter.onPrefetchEvictedDemandBlock(block);
    EXPECT_TRUE(filter.test(block));
    EXPECT_TRUE(filter.test(block));
}

// ---------------------------------------------------------------
// PrefetcherFeedback::reset(): the fresh-replay path must clear the
// latched accuracy, not only the aged counters.
// ---------------------------------------------------------------

TEST(Feedback, ResetClearsCountersAndHeldAccuracy)
{
    PrefetcherFeedback fb;
    for (int i = 0; i < 16; ++i)
        fb.onPrefetchIssued();
    fb.onPrefetchUsed();
    fb.endInterval();
    ASSERT_LT(fb.accuracy(), 0.2);
    // Age the issued count to zero: accuracy() now reports the
    // latched measurement.
    for (int i = 0; i < 8; ++i)
        fb.endInterval();
    ASSERT_FALSE(fb.anyPrefetches());
    ASSERT_LT(fb.accuracy(), 0.2) << "latch should hold";

    fb.reset();
    EXPECT_DOUBLE_EQ(fb.accuracy(), 1.0)
        << "reset must clear the held accuracy";
    EXPECT_FALSE(fb.anyPrefetches());
    EXPECT_FALSE(fb.currentIntervalActive());
    EXPECT_EQ(fb.lifetimeIssued(), 0u);
    EXPECT_EQ(fb.lifetimeUsed(), 0u);
    EXPECT_EQ(fb.lifetimeLate(), 0u);
}

// ---------------------------------------------------------------
// CoordinatedThrottler::rival over N-slot stacks: the neutral-rival
// path (lone engine) and the all-idle-stack path must agree, ties
// break to the lowest slot, and idle slots are decision-inert.
// ---------------------------------------------------------------

FeedbackSnapshot
idleSnap()
{
    // What a slot that issued nothing reports: default accuracy 1.0,
    // zero coverage, anyPrefetches false — but possibly a stale held
    // accuracy/lateness, which rival() must not leak through.
    FeedbackSnapshot s;
    s.accuracy = 0.55; // stale latched measurement
    s.lateness = 0.4;
    s.coverage = 0.0;
    s.anyPrefetches = false;
    return s;
}

TEST(CoordinatedRival, LoneEngineAndIdleStackAgree)
{
    // A lone engine gets the neutral default snapshot; a slot whose
    // three rivals are all idle must get a fieldwise-identical one.
    const FeedbackSnapshot lone = CoordinatedThrottler::rival(
        {snap(0.3, 0.8)}, 0);
    const FeedbackSnapshot crowded = CoordinatedThrottler::rival(
        {snap(0.3, 0.8), idleSnap(), idleSnap(), idleSnap()}, 0);
    EXPECT_DOUBLE_EQ(lone.accuracy, crowded.accuracy);
    EXPECT_DOUBLE_EQ(lone.coverage, crowded.coverage);
    EXPECT_DOUBLE_EQ(lone.lateness, crowded.lateness);
    EXPECT_DOUBLE_EQ(lone.pollution, crowded.pollution);
    EXPECT_EQ(lone.anyPrefetches, crowded.anyPrefetches);
}

TEST(CoordinatedRival, TieBreaksToLowestSlot)
{
    // Equal best coverage in slots 1 and 3: strict > keeps slot 1.
    std::vector<FeedbackSnapshot> stack = {
        snap(0.1, 0.9), snap(0.3, 0.5), snap(0.2, 0.6),
        snap(0.3, 0.8)};
    const FeedbackSnapshot r = CoordinatedThrottler::rival(stack, 0);
    EXPECT_DOUBLE_EQ(r.coverage, 0.3);
    EXPECT_DOUBLE_EQ(r.accuracy, 0.5) << "tie must keep slot 1";
}

TEST(CoordinatedRival, IdleSlotsAreDecisionInert)
{
    // Property: appending idle engines to a stack never changes any
    // existing slot's decision. Randomized stacks via a fixed LCG —
    // deterministic, no wall-clock entropy.
    CoordinatedThrottler throttler;
    std::uint64_t lcg = 12345;
    auto next01 = [&lcg] {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<double>(lcg >> 40) /
               static_cast<double>(1 << 24);
    };
    for (unsigned trial = 0; trial < 200; ++trial) {
        const std::size_t n = 1 + static_cast<std::size_t>(
                                      next01() * 4.0);
        std::vector<FeedbackSnapshot> stack;
        for (std::size_t i = 0; i < n; ++i)
            stack.push_back(snap(next01(), next01()));
        std::vector<FeedbackSnapshot> extended = stack;
        extended.push_back(idleSnap());
        extended.push_back(idleSnap());
        for (std::size_t i = 0; i < n; ++i) {
            const ThrottleDecision before = throttler.decide(
                stack[i], CoordinatedThrottler::rival(stack, i));
            const ThrottleDecision after = throttler.decide(
                extended[i],
                CoordinatedThrottler::rival(extended, i));
            EXPECT_EQ(before, after)
                << "trial " << trial << " slot " << i;
        }
    }
}

} // namespace
} // namespace ecdp
