/**
 * @file
 * Workload-microstructure tests: the properties each synthetic
 * benchmark was designed around (Figure 5 layouts, co-residency
 * lookahead, swap stores, heap pointer validity) really hold in the
 * built images.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "workloads/workload.hh"

namespace ecdp
{
namespace
{

constexpr std::uint32_t kBlockMask = ~std::uint32_t{127};

TEST(MstDetails, ChainHopsChangeCacheBlocks)
{
    Workload wl = buildWorkload("mst", InputSet::Train);
    // Consecutive dependent LDS loads (chain hops) should almost
    // always land in different 128 B blocks.
    std::size_t hops = 0, same_block = 0;
    for (std::size_t i = 0; i < wl.trace.size(); ++i) {
        const TraceEntry &e = wl.trace[i];
        if (e.dep == kNoDep || !e.isLds)
            continue;
        const TraceEntry &producer = wl.trace[e.dep];
        if (!producer.isLds)
            continue;
        ++hops;
        same_block += (e.vaddr.raw() & kBlockMask) ==
                      (producer.vaddr.raw() & kBlockMask);
    }
    ASSERT_GT(hops, 1000u);
    EXPECT_LT(static_cast<double>(same_block) /
                  static_cast<double>(hops),
              0.7);
}

TEST(MstDetails, NodesCarryDataPointersAndNext)
{
    // Figure 5 layout: {key @0, d1* @4, d2* @8, next @12}.
    Workload wl = buildWorkload("mst", InputSet::Train);
    // Find a node address from a key-compare load (pc 0x401010).
    Addr node = 0;
    for (const TraceEntry &e : wl.trace) {
        if (e.pc == 0x401010) {
            node = e.vaddr;
            break;
        }
    }
    ASSERT_NE(node, 0u);
    Addr d1 = wl.image.readPointer(node + 4);
    Addr d2 = wl.image.readPointer(node + 8);
    EXPECT_GE(d1, kHeapBase);
    EXPECT_GE(d2, kHeapBase);
}

TEST(HealthDetails, PatientsAreCoResidentWithNextVillage)
{
    // The interleaved allocation puts patient (v, k) in the same
    // block as patient (v+1, k): chain prefetches feed the next list.
    Workload wl = buildWorkload("health", InputSet::Ref);
    // Walk a patient chain from the image: village list heads live at
    // village+16; patients link at +8.
    // Find a status load (pc 0x403014) to locate a patient.
    Addr patient = 0;
    for (const TraceEntry &e : wl.trace) {
        if (e.pc == 0x403014) {
            patient = e.vaddr;
            break;
        }
    }
    ASSERT_NE(patient, 0u);
    // Its block holds exactly 2 patients (64 B each).
    Addr buddy = (patient.raw() & kBlockMask) == patient.raw()
                     ? patient + 64
                     : patient - 64;
    // Both are patient nodes: their next pointers are heap addresses
    // or null.
    Addr next = wl.image.readPointer(buddy + 8);
    EXPECT_TRUE(next == 0 || next >= kHeapBase);
}

TEST(BisortDetails, SwapsAreRecordedAsLdsStores)
{
    Workload wl = buildWorkload("bisort", InputSet::Train);
    std::size_t swap_stores = 0;
    for (const TraceEntry &e : wl.trace) {
        if (e.kind == AccessKind::Store && e.isLds)
            ++swap_stores;
    }
    // 35% of descent steps swap two pointers (2 stores each).
    EXPECT_GT(swap_stores, 500u);
}

TEST(BisortDetails, SwappedPointersStayValid)
{
    Workload wl = buildWorkload("bisort", InputSet::Train);
    for (const TraceEntry &e : wl.trace) {
        if (e.kind != AccessKind::Store || !e.isLds)
            continue;
        Addr value = static_cast<Addr>(e.storeValue);
        EXPECT_TRUE(value == 0 || value >= kHeapBase);
    }
}

TEST(AstarDetails, NodesAreBlockAligned)
{
    // astar nodes are 128 B, one per L2 block (the per-slot PG
    // analysis relies on this).
    Workload wl = buildWorkload("astar", InputSet::Train);
    for (const TraceEntry &e : wl.trace) {
        if (e.pc == 0x412000) { // the g-field load
            EXPECT_EQ(e.vaddr.raw() % 128, 0u);
        }
    }
}

TEST(ArtDetails, FloatsMostlyDontLookLikePointers)
{
    Workload wl = buildWorkload("art", InputSet::Ref);
    // Sample the weight arrays: at most a small fraction of words can
    // carry the heap's high byte (the planted CDP decoys).
    std::size_t pointerish = 0, sampled = 0;
    for (Addr addr = kHeapBase; addr < kHeapBase + 0x200000;
         addr += 4096) {
        std::uint32_t word =
            static_cast<std::uint32_t>(wl.image.read(addr, 4));
        ++sampled;
        pointerish += (word >> 24) == (kHeapBase.raw() >> 24);
    }
    EXPECT_LT(static_cast<double>(pointerish) /
                  static_cast<double>(sampled),
              0.1);
}

TEST(AmmpDetails, AtomsChainThroughCoordBlocks)
{
    Workload wl = buildWorkload("ammp", InputSet::Train);
    // Atom layout: {next @0, coordPtr @4, ...}. Follow the chain a
    // few hops from the first traced atom.
    Addr atom = 0;
    for (const TraceEntry &e : wl.trace) {
        if (e.pc == 0x419004) { // type load at atom+8
            atom = e.vaddr - 8;
            break;
        }
    }
    ASSERT_NE(atom, 0u);
    std::unordered_set<Addr> seen;
    for (unsigned hop = 0; hop < 16 && atom != 0; ++hop) {
        EXPECT_TRUE(seen.insert(atom).second) << "chain cycle";
        Addr coords = wl.image.readPointer(atom + 4);
        EXPECT_GE(coords, kHeapBase);
        atom = wl.image.readPointer(atom);
    }
}

TEST(StreamingDetails, NoHeapPointersInStreamImages)
{
    // Streaming benchmarks must give CDP nothing to chew on.
    for (const char *name : {"gemsfdtd", "libquantum", "lbm"}) {
        Workload wl = buildWorkload(name, InputSet::Train);
        std::size_t pointerish = 0;
        for (Addr addr = kHeapBase; addr < kHeapBase + 0x100000;
             addr += 1024) {
            std::uint32_t word =
                static_cast<std::uint32_t>(wl.image.read(addr, 4));
            pointerish +=
                word != 0 && (word >> 24) == (kHeapBase.raw() >> 24);
        }
        EXPECT_EQ(pointerish, 0u) << name;
    }
}

TEST(TraceDetails, GapsAreModest)
{
    // nonMemBefore drives IPC; absurd values would mean a generator
    // bug.
    for (const char *name : {"mcf", "health", "libquantum"}) {
        Workload wl = buildWorkload(name, InputSet::Train);
        for (const TraceEntry &e : wl.trace)
            EXPECT_LE(e.nonMemBefore, 200u) << name;
    }
}

} // namespace
} // namespace ecdp
