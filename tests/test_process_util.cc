// Child-process plumbing: stdin/stdout/stderr round trips, exit and
// signal decoding, exec-failure reporting, and the concurrent-drain
// guarantee that a chatty child cannot deadlock the parent.

#include <gtest/gtest.h>

#include <string>

#include "server/process_util.hh"

namespace
{

using namespace ecdp::server;

TEST(ProcessUtil, RoundTripsStdinToStdout)
{
    ChildResult result = runChild({"/bin/cat"}, "hello worker");
    EXPECT_TRUE(result.ok);
    EXPECT_EQ(result.exitCode, 0);
    EXPECT_EQ(result.signal, 0);
    EXPECT_EQ(result.out, "hello worker");
    EXPECT_EQ(result.describeFailure(), "");
}

TEST(ProcessUtil, CapturesStderrSeparately)
{
    ChildResult result = runChild(
        {"/bin/sh", "-c", "echo OUT; echo ERR >&2"}, "");
    EXPECT_TRUE(result.ok);
    EXPECT_EQ(result.out, "OUT\n");
    EXPECT_EQ(result.err, "ERR\n");
}

TEST(ProcessUtil, ReportsNonZeroExit)
{
    ChildResult result = runChild(
        {"/bin/sh", "-c", "echo why >&2; exit 3"}, "");
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.exitCode, 3);
    EXPECT_EQ(result.signal, 0);
    // The failure description carries the stderr tail.
    EXPECT_NE(result.describeFailure().find("why"),
              std::string::npos);
}

TEST(ProcessUtil, DecodesTerminatingSignal)
{
    ChildResult result =
        runChild({"/bin/sh", "-c", "kill -SEGV $$"}, "");
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.signal, 11);
    EXPECT_NE(result.describeFailure().find("signal"),
              std::string::npos);
}

TEST(ProcessUtil, ThrowsWhenExecutableMissing)
{
    EXPECT_THROW(runChild({"/no/such/binary/anywhere"}, ""),
                 std::runtime_error);
}

TEST(ProcessUtil, LargeBidirectionalTrafficDoesNotDeadlock)
{
    // 4 MB in, 4 MB out on stdout AND stderr: far beyond any pipe
    // buffer, so this hangs unless all three pipes are drained
    // concurrently.
    const std::string input(4 * 1024 * 1024, 'x');
    ChildResult result = runChild(
        {"/bin/sh", "-c", "tee /dev/stderr"}, input);
    EXPECT_TRUE(result.ok);
    EXPECT_EQ(result.out.size(), input.size());
    EXPECT_EQ(result.err.size(), input.size());
}

TEST(ProcessUtil, SelfExePathPointsAtThisBinary)
{
    const std::string path = selfExePath("fallback");
    EXPECT_NE(path.find("ecdp_tests"), std::string::npos);
}

} // namespace
