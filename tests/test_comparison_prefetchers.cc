/**
 * @file
 * Unit tests for the comparison prefetchers: dependence-based (DBP),
 * Markov, GHB G/DC, the Zhuang-Lee hardware filter, and the Gendler
 * PAB selector.
 */

#include <gtest/gtest.h>

#include "memsim/block_geometry.hh"
#include "prefetch/dbp.hh"
#include "prefetch/ghb_prefetcher.hh"
#include "prefetch/hardware_filter.hh"
#include "prefetch/markov_prefetcher.hh"
#include "prefetch/pab_selector.hh"

namespace ecdp
{
namespace
{

TEST(Dbp, LearnsProducerConsumerAndPrefetches)
{
    DependenceBasedPrefetcher dbp;
    std::vector<PrefetchRequest> out;
    // Producer load at pc=0x10 loads a pointer value.
    dbp.onLoadComplete(0x10, 0x40001000, out);
    EXPECT_TRUE(out.empty()); // no correlation yet
    // Consumer issues with address = value + 8: correlation learned.
    dbp.onLoadIssue(0x20, 0x40001008);
    // Next time the producer completes, its consumer is prefetched.
    dbp.onLoadComplete(0x10, 0x40002000, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].blockAddr, 0x40002008u);
    EXPECT_EQ(out[0].source, PrefetchSource::Lds);
}

TEST(Dbp, OffsetMustBeSmallAndNonNegative)
{
    DependenceBasedPrefetcher dbp;
    std::vector<PrefetchRequest> out;
    dbp.onLoadComplete(0x10, 0x40001000, out);
    dbp.onLoadIssue(0x20, 0x40001000 + 4096); // too far: no match
    dbp.onLoadComplete(0x10, 0x40002000, out);
    EXPECT_TRUE(out.empty());
}

TEST(Dbp, NullPointerValueProducesNoPrefetch)
{
    DependenceBasedPrefetcher dbp;
    std::vector<PrefetchRequest> out;
    dbp.onLoadComplete(0x10, 0x40001000, out);
    dbp.onLoadIssue(0x20, 0x40001000);
    dbp.onLoadComplete(0x10, 0, out);
    EXPECT_TRUE(out.empty());
}

TEST(Dbp, StorageIsAbout3KB)
{
    DependenceBasedPrefetcher dbp;
    double kb = static_cast<double>(dbp.storageBits()) / 8 / 1024;
    EXPECT_GT(kb, 1.0);
    EXPECT_LT(kb, 4.0);
}

TEST(Markov, RecordsAndReplaysSuccessors)
{
    const BlockGeometry geom{128};
    MarkovPrefetcher markov(geom, 1024);
    std::vector<PrefetchRequest> out;
    markov.onDemandMiss(geom.blockOf(0x40000000), out);
    markov.onDemandMiss(geom.blockOf(0x40010000), out); // successor of the first
    out.clear();
    markov.onDemandMiss(geom.blockOf(0x40000000), out); // repeat the first miss
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].blockAddr, 0x40010000u);
}

TEST(Markov, KeepsUpToFourSuccessors)
{
    const BlockGeometry geom{128};
    MarkovPrefetcher markov(geom, 1024);
    std::vector<PrefetchRequest> out;
    for (unsigned i = 1; i <= 4; ++i) {
        markov.onDemandMiss(geom.blockOf(0x40000000), out);
        markov.onDemandMiss(geom.blockOf(0x40000000 + i * 0x1000), out);
    }
    out.clear();
    markov.onDemandMiss(geom.blockOf(0x40000000), out);
    EXPECT_EQ(out.size(), 4u);
}

TEST(Markov, FifthSuccessorEvictsOldest)
{
    const BlockGeometry geom{128};
    MarkovPrefetcher markov(geom, 1024);
    std::vector<PrefetchRequest> out;
    for (unsigned i = 1; i <= 5; ++i) {
        markov.onDemandMiss(geom.blockOf(0x40000000), out);
        markov.onDemandMiss(geom.blockOf(0x40000000 + i * 0x1000), out);
    }
    out.clear();
    markov.onDemandMiss(geom.blockOf(0x40000000), out);
    EXPECT_EQ(out.size(), 4u);
    for (const PrefetchRequest &req : out)
        EXPECT_NE(req.blockAddr, 0x40001000u); // oldest gone
}

TEST(Markov, CannotPredictUnseenAddresses)
{
    const BlockGeometry geom{128};
    MarkovPrefetcher markov(geom, 1024);
    std::vector<PrefetchRequest> out;
    markov.onDemandMiss(geom.blockOf(0x40770000), out);
    EXPECT_TRUE(out.empty());
}

TEST(Markov, StorageIsAbout1MB)
{
    MarkovPrefetcher markov{BlockGeometry{128}}; // default 65536 entries
    double mb =
        static_cast<double>(markov.storageBits()) / 8 / 1024 / 1024;
    EXPECT_GT(mb, 1.0);
    EXPECT_LT(mb, 1.5);
}

TEST(Ghb, ReplaysDeltaPatterns)
{
    GhbPrefetcher ghb;
    std::vector<PrefetchRequest> out;
    // Teach the pattern: +1, +2 block deltas repeating.
    Addr addr = 0x40000000;
    std::vector<std::int64_t> deltas{1, 2, 1, 2, 1};
    for (std::int64_t d : deltas) {
        ghb.onDemandMiss(addr, out);
        addr += static_cast<std::uint32_t>(d * 128);
    }
    out.clear();
    ghb.onDemandMiss(addr, out);
    // The last two deltas are (1, 2): the history says +1 comes next.
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0].blockAddr, addr + 2 * 128);
    EXPECT_EQ(out[0].source, PrefetchSource::Primary);
}

TEST(Ghb, CoversPlainStreams)
{
    GhbPrefetcher ghb;
    std::vector<PrefetchRequest> out;
    Addr addr = 0x40000000;
    for (unsigned i = 0; i < 6; ++i) {
        out.clear();
        ghb.onDemandMiss(addr, out);
        addr += 128;
    }
    // Unit-stride pattern recognized: prefetches ahead.
    EXPECT_FALSE(out.empty());
    EXPECT_GT(out[0].blockAddr, addr - 128);
}

TEST(Ghb, NoPredictionWithoutHistory)
{
    GhbPrefetcher ghb;
    std::vector<PrefetchRequest> out;
    ghb.onDemandMiss(0x40000000, out);
    ghb.onDemandMiss(0x40000080, out);
    EXPECT_TRUE(out.empty());
}

TEST(Ghb, DegreeBoundsPrefetchCount)
{
    GhbPrefetcher ghb;
    ghb.setDegree(2);
    std::vector<PrefetchRequest> out;
    Addr addr = 0x40000000;
    for (unsigned i = 0; i < 10; ++i) {
        out.clear();
        ghb.onDemandMiss(addr, out);
        addr += 128;
    }
    EXPECT_LE(out.size(), 2u);
}

TEST(Ghb, StorageIsAbout12KB)
{
    GhbPrefetcher ghb;
    double kb = static_cast<double>(ghb.storageBits()) / 8 / 1024;
    EXPECT_GT(kb, 6.0);
    EXPECT_LT(kb, 14.0);
}

TEST(HardwareFilter, BlocksPreviouslyUselessPrefetches)
{
    HardwareFilter filter;
    const BlockGeometry geom{128};
    const BlockAddr block = geom.blockOf(0x40000000);
    EXPECT_TRUE(filter.allow(block));
    filter.onPrefetchEvictedUnused(block);
    EXPECT_FALSE(filter.allow(block));
    filter.onPrefetchUsed(block);
    EXPECT_TRUE(filter.allow(block));
}

TEST(HardwareFilter, StorageIs8KB)
{
    HardwareFilter filter;
    EXPECT_EQ(filter.storageBits(), 65536u);
}

TEST(Pab, PicksTheMoreAccuratePrefetcher)
{
    PabSelector pab(16);
    for (unsigned i = 0; i < 16; ++i) {
        pab.recordOutcome(0, i % 4 == 0); // 25% accurate
        pab.recordOutcome(1, i % 2 == 0); // 50% accurate
    }
    EXPECT_EQ(pab.select(), 1u);
    EXPECT_NEAR(pab.accuracy(0), 0.25, 0.01);
    EXPECT_NEAR(pab.accuracy(1), 0.5, 0.01);
}

TEST(Pab, TieGoesToPrimary)
{
    PabSelector pab(8);
    for (unsigned i = 0; i < 8; ++i) {
        pab.recordOutcome(0, true);
        pab.recordOutcome(1, true);
    }
    EXPECT_EQ(pab.select(), 0u);
}

TEST(Pab, WindowForgetsOldOutcomes)
{
    PabSelector pab(4);
    for (unsigned i = 0; i < 4; ++i)
        pab.recordOutcome(1, false);
    for (unsigned i = 0; i < 4; ++i)
        pab.recordOutcome(1, true); // old misses roll out
    EXPECT_DOUBLE_EQ(pab.accuracy(1), 1.0);
}

TEST(Pab, NoEvidenceMeansAccurate)
{
    PabSelector pab;
    EXPECT_DOUBLE_EQ(pab.accuracy(0), 1.0);
    EXPECT_DOUBLE_EQ(pab.accuracy(1), 1.0);
}

} // namespace
} // namespace ecdp
