/**
 * @file
 * Behavioural tests for the comparison prefetchers, driven through
 * the PrefetchEngine interface the simulator actually uses (the
 * engines come out of the EngineRegistry, exactly as a configured
 * stack would create them). Generic contract checks — degree caps,
 * determinism, conservation, disable — live in the conformance
 * battery (test_engine_conformance.cc); this file keeps only the
 * algorithm-specific behaviours: what each engine learns and what it
 * predicts. The hardware filter and PAB selector are not engines and
 * keep their direct unit tests.
 */

#include <gtest/gtest.h>

#include "engine_harness.hh"
#include "memsim/block_geometry.hh"
#include "prefetch/hardware_filter.hh"
#include "prefetch/pab_selector.hh"

namespace ecdp
{
namespace
{

std::unique_ptr<PrefetchEngine>
makeEngine(const std::string &name)
{
    return EngineRegistry::instance().create(
        name, harness::defaultEngineContext());
}

TraceEntry
missAt(Addr addr, Addr pc = 0x1000)
{
    TraceEntry e;
    e.pc = pc;
    e.vaddr = addr;
    e.kind = AccessKind::Load;
    return e;
}

TEST(Dbp, LearnsProducerConsumerAndPrefetches)
{
    std::unique_ptr<PrefetchEngine> dbp = makeEngine("dbp");
    EXPECT_TRUE(dbp->wantsLoadValues());
    std::vector<PrefetchRequest> out;
    // Producer load at pc=0x10 loads a pointer value.
    dbp->onLoadComplete(0x10, 0x40001000, out);
    EXPECT_TRUE(out.empty()); // no correlation yet
    // Consumer issues with address = value + 8: correlation learned.
    dbp->onLoadIssue(0x20, 0x40001008);
    // Next time the producer completes, its consumer is prefetched.
    dbp->onLoadComplete(0x10, 0x40002000, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].blockAddr, 0x40002008u);
    EXPECT_EQ(out[0].source, PrefetchSource::Lds);
}

TEST(Dbp, OffsetMustBeSmallAndNonNegative)
{
    std::unique_ptr<PrefetchEngine> dbp = makeEngine("dbp");
    std::vector<PrefetchRequest> out;
    dbp->onLoadComplete(0x10, 0x40001000, out);
    dbp->onLoadIssue(0x20, 0x40001000 + 4096); // too far: no match
    dbp->onLoadComplete(0x10, 0x40002000, out);
    EXPECT_TRUE(out.empty());
}

TEST(Dbp, NullPointerValueProducesNoPrefetch)
{
    std::unique_ptr<PrefetchEngine> dbp = makeEngine("dbp");
    std::vector<PrefetchRequest> out;
    dbp->onLoadComplete(0x10, 0x40001000, out);
    dbp->onLoadIssue(0x20, 0x40001000);
    dbp->onLoadComplete(0x10, 0, out);
    EXPECT_TRUE(out.empty());
}

TEST(Dbp, StorageIsAbout3KB)
{
    std::unique_ptr<PrefetchEngine> dbp = makeEngine("dbp");
    double kb = static_cast<double>(dbp->storageBits()) / 8 / 1024;
    EXPECT_GT(kb, 1.0);
    EXPECT_LT(kb, 4.0);
}

TEST(Markov, RecordsAndReplaysSuccessors)
{
    std::unique_ptr<PrefetchEngine> markov = makeEngine("markov");
    std::vector<PrefetchRequest> out;
    markov->onDemandMiss(missAt(0x40000000), out);
    markov->onDemandMiss(missAt(0x40010000), out); // successor
    out.clear();
    markov->onDemandMiss(missAt(0x40000000), out); // repeat the first
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].blockAddr, 0x40010000u);
}

TEST(Markov, KeepsUpToFourSuccessors)
{
    std::unique_ptr<PrefetchEngine> markov = makeEngine("markov");
    std::vector<PrefetchRequest> out;
    for (unsigned i = 1; i <= 4; ++i) {
        markov->onDemandMiss(missAt(0x40000000), out);
        markov->onDemandMiss(missAt(0x40000000 + i * 0x1000), out);
    }
    out.clear();
    markov->onDemandMiss(missAt(0x40000000), out);
    EXPECT_EQ(out.size(), 4u);
    EXPECT_EQ(markov->maxRequestsPerTrigger(), 4u);
}

TEST(Markov, FifthSuccessorEvictsOldest)
{
    std::unique_ptr<PrefetchEngine> markov = makeEngine("markov");
    std::vector<PrefetchRequest> out;
    for (unsigned i = 1; i <= 5; ++i) {
        markov->onDemandMiss(missAt(0x40000000), out);
        markov->onDemandMiss(missAt(0x40000000 + i * 0x1000), out);
    }
    out.clear();
    markov->onDemandMiss(missAt(0x40000000), out);
    EXPECT_EQ(out.size(), 4u);
    for (const PrefetchRequest &req : out)
        EXPECT_NE(req.blockAddr, 0x40001000u); // oldest gone
}

TEST(Markov, CannotPredictUnseenAddresses)
{
    std::unique_ptr<PrefetchEngine> markov = makeEngine("markov");
    std::vector<PrefetchRequest> out;
    markov->onDemandMiss(missAt(0x40770000), out);
    EXPECT_TRUE(out.empty());
}

TEST(Markov, StorageIsAbout1MB)
{
    std::unique_ptr<PrefetchEngine> markov = makeEngine("markov");
    double mb =
        static_cast<double>(markov->storageBits()) / 8 / 1024 / 1024;
    EXPECT_GT(mb, 1.0);
    EXPECT_LT(mb, 1.5);
}

TEST(Ghb, ReplaysDeltaPatterns)
{
    std::unique_ptr<PrefetchEngine> ghb = makeEngine("ghb");
    std::vector<PrefetchRequest> out;
    // Teach the pattern: +1, +2 block deltas repeating.
    Addr addr = 0x40000000;
    std::vector<std::int64_t> deltas{1, 2, 1, 2, 1};
    for (std::int64_t d : deltas) {
        ghb->onDemandMiss(missAt(addr), out);
        addr += static_cast<std::uint32_t>(d * 128);
    }
    out.clear();
    ghb->onDemandMiss(missAt(addr), out);
    // The last two deltas are (1, 2): the history says +1 comes next.
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0].blockAddr, addr + 2 * 128);
    EXPECT_EQ(out[0].source, PrefetchSource::Primary);
}

TEST(Ghb, CoversPlainStreams)
{
    std::unique_ptr<PrefetchEngine> ghb = makeEngine("ghb");
    std::vector<PrefetchRequest> out;
    Addr addr = 0x40000000;
    for (unsigned i = 0; i < 6; ++i) {
        out.clear();
        ghb->onDemandMiss(missAt(addr), out);
        addr += 128;
    }
    // Unit-stride pattern recognized: prefetches ahead.
    EXPECT_FALSE(out.empty());
    EXPECT_GT(out[0].blockAddr, addr - 128);
}

TEST(Ghb, NoPredictionWithoutHistory)
{
    std::unique_ptr<PrefetchEngine> ghb = makeEngine("ghb");
    std::vector<PrefetchRequest> out;
    ghb->onDemandMiss(missAt(0x40000000), out);
    ghb->onDemandMiss(missAt(0x40000080), out);
    EXPECT_TRUE(out.empty());
}

TEST(Ghb, StorageIsAbout12KB)
{
    std::unique_ptr<PrefetchEngine> ghb = makeEngine("ghb");
    double kb = static_cast<double>(ghb->storageBits()) / 8 / 1024;
    EXPECT_GT(kb, 6.0);
    EXPECT_LT(kb, 14.0);
}

TEST(Isb, ReplaysTemporalMissSequences)
{
    std::unique_ptr<PrefetchEngine> isb = makeEngine("isb");
    std::vector<PrefetchRequest> out;
    // An irregular (non-stride) block sequence, seen once...
    const std::uint32_t seq[] = {0x40000000, 0x40037000, 0x40011000,
                                 0x40500000, 0x40260000};
    for (std::uint32_t a : seq)
        isb->onDemandMiss(missAt(a), out);
    EXPECT_TRUE(out.empty()); // training only
    // ...replays from its start on the second encounter.
    out.clear();
    isb->onDemandMiss(missAt(seq[0]), out);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0].blockAddr, 0x40037000u);
}

TEST(Dspatch, ReplaysSpatialPatternForNewRegion)
{
    std::unique_ptr<PrefetchEngine> dspatch = makeEngine("dspatch");
    std::vector<PrefetchRequest> out;
    // Touch alternating blocks of one 2 KB region (pc 0x10)...
    for (unsigned b = 0; b < 16; b += 2)
        dspatch->onDemandMiss(missAt(0x40000000 + b * 128, 0x10), out);
    EXPECT_TRUE(out.empty());
    // ...then trigger a buffer-aliasing region with the same pc: the
    // displaced region retires and the learned pattern replays.
    out.clear();
    dspatch->onDemandMiss(missAt(0x40000000 + 64 * 2048, 0x10), out);
    ASSERT_FALSE(out.empty());
    for (const PrefetchRequest &req : out) {
        const std::uint32_t off =
            (req.blockAddr.raw() - (0x40000000u + 64 * 2048)) / 128;
        EXPECT_EQ(off % 2, 0u) << "predicted an untouched block";
    }
}

TEST(HardwareFilter, BlocksPreviouslyUselessPrefetches)
{
    HardwareFilter filter;
    const BlockGeometry geom{128};
    const BlockAddr block = geom.blockOf(0x40000000);
    EXPECT_TRUE(filter.allow(block));
    filter.onPrefetchEvictedUnused(block);
    EXPECT_FALSE(filter.allow(block));
    filter.onPrefetchUsed(block);
    EXPECT_TRUE(filter.allow(block));
}

TEST(HardwareFilter, StorageIs8KB)
{
    HardwareFilter filter;
    EXPECT_EQ(filter.storageBits(), 65536u);
}

TEST(Pab, PicksTheMoreAccuratePrefetcher)
{
    PabSelector pab(16);
    for (unsigned i = 0; i < 16; ++i) {
        pab.recordOutcome(0, i % 4 == 0); // 25% accurate
        pab.recordOutcome(1, i % 2 == 0); // 50% accurate
    }
    EXPECT_EQ(pab.select(), 1u);
    EXPECT_NEAR(pab.accuracy(0), 0.25, 0.01);
    EXPECT_NEAR(pab.accuracy(1), 0.5, 0.01);
}

TEST(Pab, TieGoesToPrimary)
{
    PabSelector pab(8);
    for (unsigned i = 0; i < 8; ++i) {
        pab.recordOutcome(0, true);
        pab.recordOutcome(1, true);
    }
    EXPECT_EQ(pab.select(), 0u);
}

TEST(Pab, WindowForgetsOldOutcomes)
{
    PabSelector pab(4);
    for (unsigned i = 0; i < 4; ++i)
        pab.recordOutcome(1, false);
    for (unsigned i = 0; i < 4; ++i)
        pab.recordOutcome(1, true); // old misses roll out
    EXPECT_DOUBLE_EQ(pab.accuracy(1), 1.0);
}

TEST(Pab, NoEvidenceMeansAccurate)
{
    PabSelector pab;
    EXPECT_DOUBLE_EQ(pab.accuracy(0), 1.0);
    EXPECT_DOUBLE_EQ(pab.accuracy(1), 1.0);
}

} // namespace
} // namespace ecdp
