/**
 * @file
 * Multi-core driver tests beyond the basic integration checks:
 * accounting consistency, wrap-around fairness, and scaling.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "sim/multicore.hh"

namespace ecdp
{
namespace
{

TEST(MultiCoreDetail, PerCoreBusAttributionSumsToTotal)
{
    Workload a = buildWorkload("mst", InputSet::Train);
    Workload b = buildWorkload("bzip2", InputSet::Train);
    SystemConfig cfg = configs::baseline();
    MultiCoreResult r = simulateMultiCore(cfg, {&a, &b}, {1.0, 1.0});
    // Per-core counts cover the measured window plus any wrap-around
    // work, so their sum can only exceed... both are lifetime counts:
    // they must sum exactly to the total.
    EXPECT_EQ(r.perCore[0].busTransactions +
                  r.perCore[1].busTransactions,
              r.busTransactions);
}

TEST(MultiCoreDetail, IdenticalWorkloadsGetSimilarService)
{
    Workload a = buildWorkload("mst", InputSet::Train);
    Workload b = buildWorkload("mst", InputSet::Train);
    SystemConfig cfg = configs::baseline();
    MultiCoreResult r = simulateMultiCore(cfg, {&a, &b}, {1.0, 1.0});
    // Symmetric cores running identical traces should finish within a
    // few percent of each other (bank hashing differs per core).
    double ratio = r.perCore[0].ipc / r.perCore[1].ipc;
    EXPECT_GT(ratio, 0.9);
    EXPECT_LT(ratio, 1.1);
}

TEST(MultiCoreDetail, WeightedSpeedupUsesAloneIpc)
{
    Workload a = buildWorkload("parser", InputSet::Train);
    SystemConfig cfg = configs::baseline();
    double alone = simulate(cfg, a).ipc;
    MultiCoreResult r = simulateMultiCore(cfg, {&a}, {alone});
    // A single "multi-core" run is the alone run: speedup ~1.
    EXPECT_NEAR(r.weightedSpeedup, 1.0, 0.02);
    EXPECT_NEAR(r.hmeanSpeedup, 1.0, 0.02);
}

TEST(MultiCoreDetail, MoreCoresMoreContention)
{
    SystemConfig cfg = configs::baseline();
    Workload w1 = buildWorkload("milc", InputSet::Train);
    Workload w2 = buildWorkload("milc", InputSet::Train);
    Workload w3 = buildWorkload("milc", InputSet::Train);
    Workload w4 = buildWorkload("milc", InputSet::Train);
    double alone = simulate(cfg, w1).ipc;
    MultiCoreResult two =
        simulateMultiCore(cfg, {&w1, &w2}, {alone, alone});
    MultiCoreResult four = simulateMultiCore(
        cfg, {&w1, &w2, &w3, &w4}, {alone, alone, alone, alone});
    // Normalized per-core throughput decays with core count on a
    // bandwidth-hungry workload.
    EXPECT_LE(four.weightedSpeedup / 4.0,
              two.weightedSpeedup / 2.0 + 0.02);
}

TEST(MultiCoreDetail, MulticoreRunsAreDeterministic)
{
    Workload a = buildWorkload("mst", InputSet::Train);
    Workload b = buildWorkload("milc", InputSet::Train);
    SystemConfig cfg = configs::baseline();
    MultiCoreResult r1 = simulateMultiCore(cfg, {&a, &b}, {1.0, 1.0});
    MultiCoreResult r2 = simulateMultiCore(cfg, {&a, &b}, {1.0, 1.0});
    EXPECT_EQ(r1.busTransactions, r2.busTransactions);
    EXPECT_EQ(r1.perCore[0].cycles, r2.perCore[0].cycles);
    EXPECT_EQ(r1.perCore[1].cycles, r2.perCore[1].cycles);
}

TEST(MultiCoreDetail, StreamingPartnerSuffersFromPointerChaser)
{
    // A bandwidth-hungry streaming workload keeps most of its speed;
    // the latency-bound pointer chaser pays the contention bill in
    // absolute IPC but neither should collapse.
    Workload chaser = buildWorkload("health", InputSet::Train);
    Workload stream = buildWorkload("libquantum", InputSet::Train);
    SystemConfig cfg = configs::baseline();
    double alone_c = simulate(cfg, chaser).ipc;
    double alone_s = simulate(cfg, stream).ipc;
    MultiCoreResult r = simulateMultiCore(cfg, {&chaser, &stream},
                                          {alone_c, alone_s});
    EXPECT_GT(r.perCore[0].ipc, 0.3 * alone_c);
    EXPECT_GT(r.perCore[1].ipc, 0.3 * alone_s);
}

} // namespace
} // namespace ecdp
