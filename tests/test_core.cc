/**
 * @file
 * Unit tests for the out-of-order core timing model, driven by a stub
 * memory with a programmable fixed latency.
 */

#include <gtest/gtest.h>

#include "core/core.hh"

namespace ecdp
{
namespace
{

/** Fixed-latency memory; can also be made to reject requests. */
class StubMemory : public CoreMemoryInterface
{
  public:
    explicit StubMemory(Cycle latency) : latency_(latency) {}

    std::optional<Cycle> load(const TraceEntry &, Cycle now) override
    {
        ++loads;
        if (rejectUntil > now)
            return std::nullopt;
        return now + latency_;
    }

    void store(const TraceEntry &, Cycle) override { ++stores; }

    unsigned loads = 0;
    unsigned stores = 0;
    Cycle rejectUntil{};

  private:
    Cycle latency_;
};

Workload
makeWorkload(std::vector<TraceEntry> entries)
{
    Workload wl;
    wl.name = "test";
    wl.trace = std::move(entries);
    return wl;
}

TraceEntry
loadEntry(Addr addr, TraceRef dep = kNoDep, unsigned gap = 0)
{
    TraceEntry e;
    e.pc = 0x1000;
    e.vaddr = addr;
    e.kind = AccessKind::Load;
    e.dep = dep;
    e.nonMemBefore = static_cast<std::uint16_t>(gap);
    return e;
}

TraceEntry
storeEntry(Addr addr)
{
    TraceEntry e;
    e.pc = 0x2000;
    e.vaddr = addr;
    e.kind = AccessKind::Store;
    e.storeValue = 1;
    return e;
}

Cycle
runToCompletion(Core &core)
{
    Cycle cycle{};
    while (!core.finishedOnce() && cycle < Cycle{10'000'000}) {
        core.tick(cycle);
        ++cycle;
    }
    EXPECT_TRUE(core.finishedOnce());
    return core.finishCycle();
}

TEST(Core, SingleLoadCompletesAfterMemoryLatency)
{
    StubMemory mem(Cycle{100});
    Workload wl = makeWorkload({loadEntry(0x40000000)});
    Core core(&wl, &mem);
    Cycle end = runToCompletion(core);
    EXPECT_GE(end, Cycle{100u});
    EXPECT_LT(end, Cycle{120u});
    EXPECT_EQ(core.retiredFirstPass(), 1u);
}

TEST(Core, IndependentLoadsOverlap)
{
    StubMemory mem(Cycle{400});
    std::vector<TraceEntry> entries;
    for (unsigned i = 0; i < 8; ++i)
        entries.push_back(loadEntry(0x40000000 + 128 * i));
    Workload wl = makeWorkload(entries);
    Core core(&wl, &mem);
    Cycle end = runToCompletion(core);
    // 8 independent misses overlap: far less than 8 x 400.
    EXPECT_LT(end, Cycle{500u});
}

TEST(Core, DependentLoadsSerialize)
{
    StubMemory mem(Cycle{400});
    std::vector<TraceEntry> entries;
    entries.push_back(loadEntry(0x40000000));
    for (unsigned i = 1; i < 4; ++i) {
        entries.push_back(loadEntry(0x40000000 + 128 * i,
                                    static_cast<TraceRef>(i - 1)));
    }
    Workload wl = makeWorkload(entries);
    Core core(&wl, &mem);
    Cycle end = runToCompletion(core);
    // A 4-deep pointer chain costs at least 4 serialized latencies.
    EXPECT_GE(end, Cycle{4 * 400u});
}

TEST(Core, RetireWidthBoundsIpc)
{
    StubMemory mem(Cycle{1});
    std::vector<TraceEntry> entries;
    for (unsigned i = 0; i < 100; ++i)
        entries.push_back(loadEntry(0x40000000, kNoDep, 39));
    Workload wl = makeWorkload(entries);
    Core core(&wl, &mem);
    Cycle end = runToCompletion(core);
    double ipc = static_cast<double>(core.retiredFirstPass()) /
                 static_cast<double>(end.raw());
    EXPECT_LE(ipc, 4.0 + 1e-9);
    EXPECT_GT(ipc, 3.0); // near-ideal with 1-cycle memory
}

TEST(Core, RobLimitsMemoryLevelParallelism)
{
    // 256-entry ROB with 255 fillers between loads: at most ~2 loads
    // in flight, so 16 loads of 400 cycles take >= ~8 x 400.
    StubMemory mem(Cycle{400});
    std::vector<TraceEntry> entries;
    for (unsigned i = 0; i < 16; ++i)
        entries.push_back(loadEntry(0x40000000 + 128 * i, kNoDep, 255));
    Workload wl = makeWorkload(entries);
    Core core(&wl, &mem);
    Cycle end = runToCompletion(core);
    EXPECT_GE(end, Cycle{8 * 400u});
}

TEST(Core, LsqLimitsOutstandingMemoryOps)
{
    // 64 adjacent loads with no fillers: the 32-entry LSQ caps MLP at
    // 32, so the run needs at least two memory rounds.
    StubMemory mem(Cycle{400});
    std::vector<TraceEntry> entries;
    for (unsigned i = 0; i < 64; ++i)
        entries.push_back(loadEntry(0x40000000 + 128 * i));
    Workload wl = makeWorkload(entries);
    Core core(&wl, &mem);
    Cycle end = runToCompletion(core);
    EXPECT_GE(end, Cycle{2 * 400u});
    EXPECT_LT(end, Cycle{3 * 400u + 100});
}

TEST(Core, StoresDoNotStall)
{
    StubMemory mem(Cycle{400});
    std::vector<TraceEntry> entries;
    for (unsigned i = 0; i < 20; ++i)
        entries.push_back(storeEntry(0x40000000 + 128 * i));
    Workload wl = makeWorkload(entries);
    Core core(&wl, &mem);
    Cycle end = runToCompletion(core);
    EXPECT_LT(end, Cycle{100u});
    EXPECT_EQ(mem.stores, 20u);
}

TEST(Core, RetriesWhenMemoryRejects)
{
    StubMemory mem(Cycle{50});
    mem.rejectUntil = Cycle{300};
    Workload wl = makeWorkload({loadEntry(0x40000000)});
    Core core(&wl, &mem);
    Cycle end = runToCompletion(core);
    EXPECT_GE(end, Cycle{350u});
    EXPECT_GT(mem.loads, 1u); // it retried
}

TEST(Core, DependencyOnStoreValueWaits)
{
    StubMemory mem(Cycle{100});
    std::vector<TraceEntry> entries;
    entries.push_back(loadEntry(0x40000000));
    entries.push_back(loadEntry(0x40000100, 0));
    entries.push_back(loadEntry(0x40000200, 1));
    Workload wl = makeWorkload(entries);
    Core core(&wl, &mem);
    Cycle end = runToCompletion(core);
    EXPECT_GE(end, Cycle{300u});
}

TEST(Core, FillersConsumeRetireBandwidth)
{
    StubMemory mem(Cycle{1});
    // One load with 400 leading fillers: retire at 4/cycle means at
    // least 100 cycles.
    Workload wl = makeWorkload({loadEntry(0x40000000, kNoDep, 400)});
    Core core(&wl, &mem);
    Cycle end = runToCompletion(core);
    EXPECT_GE(end, Cycle{100u});
    EXPECT_EQ(core.retiredFirstPass(), 401u);
}

TEST(Core, WrapAroundRestartsTrace)
{
    StubMemory mem(Cycle{10});
    Workload wl = makeWorkload({loadEntry(0x40000000),
                                loadEntry(0x40000100)});
    Core core(&wl, &mem);
    core.setWrapAround(true);
    for (Cycle cycle{}; cycle < Cycle{2000}; ++cycle)
        core.tick(cycle);
    EXPECT_TRUE(core.finishedOnce());
    EXPECT_GT(core.retired(), core.retiredFirstPass());
}

TEST(Core, FirstPassStatsFrozenAfterFinish)
{
    StubMemory mem(Cycle{10});
    Workload wl = makeWorkload({loadEntry(0x40000000)});
    Core core(&wl, &mem);
    core.setWrapAround(true);
    for (Cycle cycle{}; cycle < Cycle{500}; ++cycle)
        core.tick(cycle);
    std::uint64_t first = core.retiredFirstPass();
    Cycle finish = core.finishCycle();
    for (Cycle cycle{500}; cycle < Cycle{1000}; ++cycle)
        core.tick(cycle);
    EXPECT_EQ(core.retiredFirstPass(), first);
    EXPECT_EQ(core.finishCycle(), finish);
}

TEST(Core, CustomWidthChangesRetireBound)
{
    StubMemory mem(Cycle{1});
    std::vector<TraceEntry> entries;
    for (unsigned i = 0; i < 50; ++i)
        entries.push_back(loadEntry(0x40000000, kNoDep, 19));
    Workload wl = makeWorkload(entries);
    CoreParams narrow;
    narrow.width = 2;
    Core core(&wl, &mem, narrow);
    Cycle end = runToCompletion(core);
    double ipc = static_cast<double>(core.retiredFirstPass()) /
                 static_cast<double>(end.raw());
    EXPECT_LE(ipc, 2.0 + 1e-9);
}

} // namespace
} // namespace ecdp
