// Times and addresses live in different domains: adding one to the
// other is meaningless and must not compile.

#include "memsim/types.hh"

using namespace ecdp;

Cycle control(Cycle t)
{
    return t + Cycle{8};
}

#ifndef CONTROL_ONLY
Cycle bad(Cycle t, ByteAddr a)
{
    return t + a; // must not compile
}
#endif
