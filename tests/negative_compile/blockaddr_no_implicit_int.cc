// A raw integer must not silently become a block number; explicit
// BlockAddr{n} marks the (rare) deliberate conversions.

#include "memsim/types.hh"

using namespace ecdp;

BlockAddr control()
{
    return BlockAddr{7u};
}

#ifndef CONTROL_ONLY
BlockAddr bad()
{
    return 7u; // must not compile
}
#endif
