// A byte address must not convert to a block number: only
// BlockGeometry::blockOf() mints BlockAddr values.

#include "memsim/block_geometry.hh"
#include "memsim/types.hh"

using namespace ecdp;

BlockAddr control(ByteAddr a)
{
    return BlockGeometry{128}.blockOf(a);
}

#ifndef CONTROL_ONLY
BlockAddr bad(ByteAddr a)
{
    return a; // must not compile
}
#endif
