#!/bin/sh
# Negative-compile harness driver for one case file.
#
# Each case contains a positive-control section (always compiled) and
# an ill-formed section guarded by #ifndef CONTROL_ONLY. The case
# passes when the control build succeeds AND the full build fails:
# the control run proves a failure comes from the seeded type error,
# not from a broken include path or flag.
#
# Usage: run_case.sh <compiler> <include-dir> <case.cc>

set -u

cxx=$1
inc=$2
case_file=$3

if ! "$cxx" -std=c++20 -fsyntax-only -I "$inc" -DCONTROL_ONLY \
        "$case_file" 2>/dev/null; then
    echo "FAIL: control build of $case_file did not compile" \
         "(harness is broken, not the type system)" >&2
    exit 1
fi

if "$cxx" -std=c++20 -fsyntax-only -I "$inc" "$case_file" 2>/dev/null; then
    echo "FAIL: $case_file compiled; the type system no longer" \
         "rejects this unit-mixing bug" >&2
    exit 1
fi

echo "PASS: $case_file rejected as expected"
exit 0
