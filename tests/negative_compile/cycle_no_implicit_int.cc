// An instruction count (plain integer) must not silently become a
// time; entering the cycle domain is always an explicit Cycle{n}.

#include "memsim/types.hh"

using namespace ecdp;

Cycle control()
{
    return Cycle{100};
}

#ifndef CONTROL_ONLY
Cycle bad()
{
    return 100; // must not compile
}
#endif
