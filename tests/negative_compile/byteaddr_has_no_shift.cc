// ByteAddr deliberately has no shift operators: byte->block
// conversion must go through BlockGeometry, never a bare `>> 7`.

#include "memsim/types.hh"

using namespace ecdp;

std::uint32_t control(ByteAddr a)
{
    return a.raw();
}

#ifndef CONTROL_ONLY
std::uint32_t bad(ByteAddr a)
{
    return a >> 7; // must not compile
}
#endif
