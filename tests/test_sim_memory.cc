/**
 * @file
 * Unit tests for the sparse simulated memory image.
 */

#include <gtest/gtest.h>

#include "memsim/sim_memory.hh"

namespace ecdp
{
namespace
{

TEST(SimMemory, UntouchedMemoryReadsZero)
{
    SimMemory mem;
    EXPECT_EQ(mem.read(0x40000000, 4), 0u);
    EXPECT_EQ(mem.read(0xdeadbeec, 8), 0u);
    EXPECT_EQ(mem.pagesTouched(), 0u);
}

TEST(SimMemory, WriteThenReadRoundTrips)
{
    SimMemory mem;
    mem.write(0x40000010, 4, 0x12345678u);
    EXPECT_EQ(mem.read(0x40000010, 4), 0x12345678u);
}

TEST(SimMemory, ReadsAreLittleEndianByByte)
{
    SimMemory mem;
    mem.write(0x40000000, 4, 0x11223344u);
    EXPECT_EQ(mem.read(0x40000000, 1), 0x44u);
    EXPECT_EQ(mem.read(0x40000001, 1), 0x33u);
    EXPECT_EQ(mem.read(0x40000002, 1), 0x22u);
    EXPECT_EQ(mem.read(0x40000003, 1), 0x11u);
}

TEST(SimMemory, PartialOverwriteMergesBytes)
{
    SimMemory mem;
    mem.write(0x40000000, 4, 0xaabbccddu);
    mem.write(0x40000001, 2, 0x1122u);
    EXPECT_EQ(mem.read(0x40000000, 4), 0xaa1122ddu);
}

TEST(SimMemory, EightByteAccesses)
{
    SimMemory mem;
    mem.write(0x40000100, 8, 0x0102030405060708ull);
    EXPECT_EQ(mem.read(0x40000100, 8), 0x0102030405060708ull);
    EXPECT_EQ(mem.read(0x40000104, 4), 0x01020304u);
}

TEST(SimMemory, WriteSpanningPageBoundary)
{
    SimMemory mem;
    Addr boundary = 0x40001000 - 2; // 2 bytes before a page edge
    mem.write(boundary, 4, 0xcafebabeu);
    EXPECT_EQ(mem.read(boundary, 4), 0xcafebabeu);
    EXPECT_EQ(mem.pagesTouched(), 2u);
}

TEST(SimMemory, PointerHelpers)
{
    SimMemory mem;
    mem.writePointer(0x40000020, 0x40001234u);
    EXPECT_EQ(mem.readPointer(0x40000020), 0x40001234u);
}

TEST(SimMemory, ReadBlockCopiesContents)
{
    SimMemory mem;
    for (unsigned i = 0; i < 32; ++i)
        mem.write(0x40000000 + 4 * i, 4, i + 1);
    std::uint8_t buf[128];
    mem.readBlock(0x40000000, buf, sizeof(buf));
    for (unsigned i = 0; i < 32; ++i) {
        std::uint32_t word = 0;
        for (unsigned b = 0; b < 4; ++b)
            word |= std::uint32_t{buf[4 * i + b]} << (8 * b);
        EXPECT_EQ(word, i + 1);
    }
}

TEST(SimMemory, ReadBlockOfUntouchedMemoryIsZero)
{
    SimMemory mem;
    std::uint8_t buf[64];
    buf[0] = 0xff;
    mem.readBlock(0x50000000, buf, sizeof(buf));
    for (unsigned i = 0; i < sizeof(buf); ++i)
        EXPECT_EQ(buf[i], 0u) << "byte " << i;
}

TEST(SimMemory, ReadBlockAcrossPageBoundary)
{
    SimMemory mem;
    Addr base = 0x40001000 - 64;
    mem.write(base, 4, 0x11111111u);
    mem.write(base + 64, 4, 0x22222222u);
    std::uint8_t buf[128];
    mem.readBlock(base, buf, sizeof(buf));
    EXPECT_EQ(buf[0], 0x11);
    EXPECT_EQ(buf[64], 0x22);
}

TEST(SimMemory, CloneIsDeepCopy)
{
    SimMemory mem;
    mem.write(0x40000000, 4, 7u);
    SimMemory copy = mem.clone();
    copy.write(0x40000000, 4, 9u);
    EXPECT_EQ(mem.read(0x40000000, 4), 7u);
    EXPECT_EQ(copy.read(0x40000000, 4), 9u);
}

TEST(SimMemory, ClearDropsEverything)
{
    SimMemory mem;
    mem.write(0x40000000, 4, 7u);
    mem.clear();
    EXPECT_EQ(mem.read(0x40000000, 4), 0u);
    EXPECT_EQ(mem.pagesTouched(), 0u);
}

TEST(SimMemory, FootprintTracksDistinctPages)
{
    SimMemory mem;
    mem.write(0x40000000, 4, 1u);
    mem.write(0x40000004, 4, 1u); // same page
    mem.write(0x40100000, 4, 1u); // different page
    EXPECT_EQ(mem.pagesTouched(), 2u);
    EXPECT_EQ(mem.footprintBytes(), 2 * SimMemory::kPageBytes);
}

/** Property: every supported access size round-trips at any offset. */
class SimMemorySizeTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SimMemorySizeTest, RoundTripAtVariousOffsets)
{
    const unsigned size = GetParam();
    SimMemory mem;
    const std::uint64_t pattern = 0xf1e2d3c4b5a69788ull;
    const std::uint64_t mask =
        size == 8 ? ~0ull : (1ull << (8 * size)) - 1;
    for (Addr offset : {0u, 1u, 3u, 127u, 4093u}) {
        Addr addr = 0x40000000 + offset.raw();
        mem.write(addr, size, pattern);
        EXPECT_EQ(mem.read(addr, size), pattern & mask)
            << "size " << size << " offset " << offset;
    }
}

INSTANTIATE_TEST_SUITE_P(AllSizes, SimMemorySizeTest,
                         ::testing::Values(1u, 2u, 4u, 8u));

} // namespace
} // namespace ecdp
