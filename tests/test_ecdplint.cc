/**
 * @file
 * Unit battery for the ecdplint analyzer (tools/ecdplint): the
 * lexer's handling of the constructs that usually derail token-level
 * tools (raw strings, comments, preprocessor continuations), the
 * structural pass (member extraction through nested templates,
 * initializers and lambdas), and exact-violation assertions for all
 * four rules over their seeded fixtures. A meta-test walks the rule
 * registry so a fifth rule cannot ship without a fixture proving it
 * fires.
 */

#include <algorithm>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ecdplint/analyzer.hh"

namespace fs = std::filesystem;
using namespace ecdp::lint;

namespace
{

std::vector<std::string>
tokenTexts(const std::string &src)
{
    std::vector<std::string> texts;
    for (const Token &t : lex(src).tokens)
        texts.push_back(t.text);
    return texts;
}

Analysis
analyze(const std::string &src)
{
    std::vector<SourceFile> files;
    files.push_back(sourceFromString("mem.hh", src));
    return Analysis(std::move(files));
}

const ClassInfo *
findClass(const Analysis &a, const std::string &name)
{
    for (const ClassInfo &c : a.classes()) {
        if (c.name == name)
            return &c;
    }
    return nullptr;
}

const Rule &
ruleByName(const std::string &name)
{
    for (const Rule &r : rules()) {
        if (name == r.name)
            return r;
    }
    throw std::runtime_error("no such rule: " + name);
}

/** Load every .hh/.cc under <fixtures>/<rule>/src and run <rule>. */
std::vector<Violation>
runRuleOnFixture(const std::string &rule)
{
    fs::path dir = fs::path(ECDP_LINT_FIXTURE_DIR) / rule / "src";
    std::vector<std::string> paths;
    for (const fs::directory_entry &e : fs::directory_iterator(dir)) {
        if (e.path().extension() == ".hh" ||
            e.path().extension() == ".cc")
            paths.push_back(e.path().string());
    }
    std::sort(paths.begin(), paths.end());
    std::vector<SourceFile> files;
    for (const std::string &p : paths)
        files.push_back(loadSource(p));
    Analysis analysis(std::move(files));
    std::vector<Violation> out;
    ruleByName(rule).check(analysis, out);
    return out;
}

std::vector<int>
lines(const std::vector<Violation> &vs)
{
    std::vector<int> out;
    for (const Violation &v : vs)
        out.push_back(v.line);
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace

// ----------------------------------------------------------------
// Lexer

TEST(EcdplintLexer, RawStringIsOneTokenAndHidesBraces)
{
    auto texts = tokenTexts("auto s = R\"(a \" { } // x)\"; int y;");
    std::vector<std::string> expect = {
        "auto", "s", "=", "R\"(a \" { } // x)\"", ";", "int", "y",
        ";"};
    EXPECT_EQ(texts, expect);
}

TEST(EcdplintLexer, RawStringWithDelimiter)
{
    // A plain )" inside must not close a delimited raw string.
    auto texts = tokenTexts("R\"ecdp(a )\" b)ecdp\" z");
    ASSERT_EQ(texts.size(), std::size_t(2));
    EXPECT_EQ(texts[0], "R\"ecdp(a )\" b)ecdp\"");
    EXPECT_EQ(texts[1], "z");
}

TEST(EcdplintLexer, CommentsProduceNoTokensButAreRecorded)
{
    LexResult r = lex("int a; // int b;\n/* int c; */ int d;\n");
    auto texts = tokenTexts("int a; // int b;\n/* int c; */ int d;\n");
    std::vector<std::string> expect = {"int", "a", ";",
                                       "int", "d", ";"};
    EXPECT_EQ(texts, expect);
    ASSERT_TRUE(r.comments.count(1));
    EXPECT_NE(r.comments.at(1).find("int b;"), std::string::npos);
    ASSERT_TRUE(r.comments.count(2));
    EXPECT_NE(r.comments.at(2).find("int c;"), std::string::npos);
}

TEST(EcdplintLexer, BlockCommentSpansMarkEveryLine)
{
    LexResult r = lex("/**\n * docs\n */\nclass A;\n");
    EXPECT_TRUE(r.comments.count(1));
    EXPECT_TRUE(r.comments.count(2));
    EXPECT_TRUE(r.comments.count(3));
    ASSERT_FALSE(r.tokens.empty());
    EXPECT_EQ(r.tokens[0].text, "class");
    EXPECT_EQ(r.tokens[0].line, 4);
}

TEST(EcdplintLexer, StringEscapesDoNotDesync)
{
    auto texts = tokenTexts("f(\"a\\\"b{\"); g('\\'');");
    std::vector<std::string> expect = {"f", "(", "\"a\\\"b{\"", ")",
                                       ";", "g", "(", "'\\''",
                                       ")", ";"};
    EXPECT_EQ(texts, expect);
}

TEST(EcdplintLexer, PreprocessorLinesVanishIncludingContinuations)
{
    LexResult r =
        lex("#define FOO(a) \\\n    bar(a)\n#include <mutex>\n"
            "int x;\n");
    ASSERT_EQ(r.tokens.size(), std::size_t(3));
    EXPECT_EQ(r.tokens[0].text, "int");
    EXPECT_EQ(r.tokens[0].line, 4);
}

TEST(EcdplintLexer, MultiCharPunctsAndDigitSeparators)
{
    auto texts = tokenTexts("a->b(); std::size_t n = 1'000'000;");
    std::vector<std::string> expect = {
        "a", "->", "b",         "(", ")", ";", "std",
        "::", "size_t", "n", "=", "1'000'000", ";"};
    EXPECT_EQ(texts, expect);
}

// ----------------------------------------------------------------
// Structural analysis

TEST(EcdplintAnalyzer, ExtractsMembersThroughNestedTemplates)
{
    Analysis a = analyze(
        "class C\n"
        "{\n"
        "    std::map<std::string, std::shared_ptr<Cell>> cells_\n"
        "        ECDP_GUARDED_BY(mutex_);\n"
        "    std::atomic<std::uint64_t> hits_{0};\n"
        "    std::vector<std::pair<int, int>> edges_ = {};\n"
        "};\n");
    const ClassInfo *c = findClass(a, "C");
    ASSERT_NE(c, nullptr);
    ASSERT_EQ(c->members.size(), std::size_t(3));
    EXPECT_EQ(c->members[0].name, "cells_");
    EXPECT_TRUE(Analysis::isGrowableContainer(c->members[0].type));
    EXPECT_EQ(c->members[1].name, "hits_");
    EXPECT_EQ(c->members[2].name, "edges_");
}

TEST(EcdplintAnalyzer, FunctionsAndOperatorsAreNotMembers)
{
    Analysis a = analyze(
        "class C\n"
        "{\n"
        "  public:\n"
        "    C(const C &) = delete;\n"
        "    C &operator=(const C &) = delete;\n"
        "    void stop() ECDP_EXCLUDES(mutex_);\n"
        "    unsigned size() const { return n_; }\n"
        "  private:\n"
        "    unsigned n_ = 0;\n"
        "};\n");
    const ClassInfo *c = findClass(a, "C");
    ASSERT_NE(c, nullptr);
    ASSERT_EQ(c->members.size(), std::size_t(1));
    EXPECT_EQ(c->members[0].name, "n_");
}

TEST(EcdplintAnalyzer, LambdaBracesInMethodsDoNotDerailExtraction)
{
    Analysis a = analyze(
        "class C\n"
        "{\n"
        "  public:\n"
        "    void run()\n"
        "    {\n"
        "        MutexLock lock(mutex_);\n"
        "        auto f = [this] { return queue_.size() > 0; };\n"
        "        f();\n"
        "    }\n"
        "  private:\n"
        "    AnnotatedMutex mutex_;\n"
        "    std::deque<int> queue_;\n"
        "};\n");
    const ClassInfo *c = findClass(a, "C");
    ASSERT_NE(c, nullptr);
    ASSERT_EQ(c->members.size(), std::size_t(2));
    EXPECT_EQ(c->members[0].name, "mutex_");
    EXPECT_EQ(c->members[1].name, "queue_");
}

TEST(EcdplintAnalyzer, LongLivedTagBindsThroughCommentBlockOnly)
{
    Analysis a = analyze(
        "/**\n"
        " * Documented like the real classes.\n"
        " */\n"
        "// ecdplint: long-lived\n"
        "class Tagged\n"
        "{\n"
        "};\n"
        "\n"
        "class Untagged\n"
        "{\n"
        "};\n");
    const ClassInfo *tagged = findClass(a, "Tagged");
    const ClassInfo *untagged = findClass(a, "Untagged");
    ASSERT_NE(tagged, nullptr);
    ASSERT_NE(untagged, nullptr);
    EXPECT_TRUE(tagged->longLived);
    EXPECT_FALSE(untagged->longLived);
}

TEST(EcdplintAnalyzer, TagSeparatedByBlankLineDoesNotBind)
{
    Analysis a = analyze("// ecdplint: long-lived\n"
                         "\n"
                         "class NotBound\n"
                         "{\n"
                         "};\n");
    const ClassInfo *c = findClass(a, "NotBound");
    ASSERT_NE(c, nullptr);
    EXPECT_FALSE(c->longLived);
}

TEST(EcdplintAnalyzer, CollectsFunctionAliasesAndCallbackMembers)
{
    Analysis a = analyze(
        "using Done = std::function<void(std::string)>;\n"
        "using Clock = std::chrono::steady_clock;\n"
        "class C\n"
        "{\n"
        "    Done done_;\n"
        "    std::function<void()> raw_;\n"
        "    int n_ = 0;\n"
        "};\n");
    EXPECT_TRUE(a.callbackAliases().count("Done"));
    EXPECT_FALSE(a.callbackAliases().count("Clock"));
    EXPECT_TRUE(a.callbackMembers().count("done_"));
    EXPECT_TRUE(a.callbackMembers().count("raw_"));
    EXPECT_FALSE(a.callbackMembers().count("n_"));
}

TEST(EcdplintAnalyzer, NestedClassMembersStayWithTheNestedClass)
{
    Analysis a = analyze("// ecdplint: long-lived\n"
                         "class Outer\n"
                         "{\n"
                         "    struct Job\n"
                         "    {\n"
                         "        std::vector<int> scratch;\n"
                         "    };\n"
                         "    int n_ = 0;\n"
                         "};\n");
    const ClassInfo *outer = findClass(a, "Outer");
    const ClassInfo *job = findClass(a, "Job");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(job, nullptr);
    EXPECT_TRUE(outer->longLived);
    EXPECT_FALSE(job->longLived); // nested structs are exempt
    ASSERT_EQ(outer->members.size(), std::size_t(1));
    EXPECT_EQ(outer->members[0].name, "n_");
    ASSERT_EQ(job->members.size(), std::size_t(1));
    EXPECT_EQ(job->members[0].name, "scratch");
}

// ----------------------------------------------------------------
// Rules over the seeded fixtures (exact violations)

TEST(EcdplintRules, CallbackUnderLockFixture)
{
    std::vector<Violation> vs =
        runRuleOnFixture("callback-under-lock");
    ASSERT_EQ(vs.size(), std::size_t(1));
    EXPECT_EQ(vs[0].line, 19);
    EXPECT_NE(vs[0].message.find("done_"), std::string::npos);
}

TEST(EcdplintRules, MemberDestructionOrderFixture)
{
    std::vector<Violation> vs =
        runRuleOnFixture("member-destruction-order");
    // The captured pre-fix daemon ordering: every data member after
    // the by-value pool. The fixed GoodDaemon must stay silent.
    std::vector<int> expect = {36, 37, 38, 39, 41, 43, 44, 45};
    EXPECT_EQ(lines(vs), expect);
    for (const Violation &v : vs)
        EXPECT_NE(v.message.find("BadDaemon"), std::string::npos);
}

TEST(EcdplintRules, UnboundedContainerFixture)
{
    std::vector<Violation> vs =
        runRuleOnFixture("unbounded-container");
    ASSERT_EQ(vs.size(), std::size_t(1));
    EXPECT_EQ(vs[0].line, 31);
    EXPECT_NE(vs[0].message.find("sessions_"), std::string::npos);
}

TEST(EcdplintRules, MutexUnannotatedFixture)
{
    std::vector<Violation> vs = runRuleOnFixture("mutex-unannotated");
    std::vector<int> expect = {16, 23};
    EXPECT_EQ(lines(vs), expect);
}

TEST(EcdplintRules, RelockableGuardGapIsNotUnderLock)
{
    // The thread-pool worker loop unlocks around running the job;
    // invoking the callback in that gap is legal.
    std::vector<SourceFile> files;
    files.push_back(sourceFromString(
        "gap.cc",
        "using Job = std::function<void()>;\n"
        "void run(AnnotatedMutex &m, Job job)\n"
        "{\n"
        "    MutexLock lock(m);\n"
        "    lock.unlock();\n"
        "    job();\n"
        "    lock.lock();\n"
        "    job();\n"
        "}\n"));
    Analysis a(std::move(files));
    std::vector<Violation> vs;
    ruleByName("callback-under-lock").check(a, vs);
    ASSERT_EQ(vs.size(), std::size_t(1));
    EXPECT_EQ(vs[0].line, 8); // only the re-locked invocation
}

// ----------------------------------------------------------------
// Meta: every registered rule must prove itself on a fixture.

TEST(EcdplintRules, EveryRuleHasAFiringFixture)
{
    for (const Rule &r : rules()) {
        fs::path dir =
            fs::path(ECDP_LINT_FIXTURE_DIR) / r.name / "src";
        ASSERT_TRUE(fs::is_directory(dir))
            << "rule " << r.name << " has no fixture dir";
        std::vector<Violation> vs = runRuleOnFixture(r.name);
        EXPECT_FALSE(vs.empty())
            << "rule " << r.name
            << " does not fire on its own fixture";
        for (const Violation &v : vs)
            EXPECT_EQ(v.rule, r.name);
    }
}
