// The grid-cell wire format: strict parsing (unknown members and
// names are 400s, never silent defaults), canonicalization (fixed
// key order, defaults omitted) and the content addressing that makes
// semantically identical submissions share one store entry.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "server/cell.hh"
#include "stats/json.hh"

namespace
{

using namespace ecdp;
using namespace ecdp::server;

CellSpec
parse(const std::string &json)
{
    return parseCellSpec(parseJson(json));
}

TEST(CellSpec, ParsesMinimalCellWithDefaults)
{
    CellSpec spec = parse("{\"bench\":\"mst\"}");
    EXPECT_EQ(spec.bench, "mst");
    EXPECT_EQ(spec.config, "baseline");
    EXPECT_EQ(spec.input, "ref");
    EXPECT_TRUE(spec.engines.empty());
    EXPECT_EQ(spec.throttlePolicy, "");
    EXPECT_EQ(spec.rlSeed, -1);
    EXPECT_EQ(spec.tcov, -1.0);
    EXPECT_EQ(spec.interval, -1);
}

TEST(CellSpec, ParsesEveryKnob)
{
    CellSpec spec = parse(
        "{\"bench\":\"health\",\"config\":\"cdp\","
        "\"input\":\"train\",\"engines\":[\"stream\",\"isb\"],"
        "\"throttlePolicy\":\"tabular-rl\",\"rlSeed\":7,"
        "\"tcov\":0.25,\"interval\":512}");
    EXPECT_EQ(spec.bench, "health");
    EXPECT_EQ(spec.config, "cdp");
    EXPECT_EQ(spec.input, "train");
    ASSERT_EQ(spec.engines.size(), 2u);
    EXPECT_EQ(spec.engines[0], "stream");
    EXPECT_EQ(spec.engines[1], "isb");
    EXPECT_EQ(spec.throttlePolicy, "tabular-rl");
    EXPECT_EQ(spec.rlSeed, 7);
    EXPECT_EQ(spec.tcov, 0.25);
    EXPECT_EQ(spec.interval, 512);
}

TEST(CellSpec, RejectsBadInput)
{
    // A typo can never silently select a default.
    EXPECT_THROW(parse("{\"bench\":\"mst\",\"benchh\":\"x\"}"),
                 std::runtime_error);
    EXPECT_THROW(parse("{\"config\":\"baseline\"}"),
                 std::runtime_error); // bench missing
    EXPECT_THROW(parse("{\"bench\":\"no-such-workload\"}"),
                 std::runtime_error);
    EXPECT_THROW(parse("{\"bench\":\"mst\",\"config\":\"nope\"}"),
                 std::runtime_error);
    EXPECT_THROW(parse("{\"bench\":\"mst\",\"input\":\"test\"}"),
                 std::runtime_error);
    // The engine/policy registries throw invalid_argument listing
    // every known name; the daemon turns any std::exception into 400.
    EXPECT_THROW(
        parse("{\"bench\":\"mst\",\"engines\":[\"warp-drive\"]}"),
        std::invalid_argument);
    EXPECT_THROW(
        parse("{\"bench\":\"mst\",\"throttlePolicy\":\"chaotic\"}"),
        std::invalid_argument);
    EXPECT_THROW(parse("{\"bench\":\"mst\",\"rlSeed\":-3}"),
                 std::runtime_error);
    EXPECT_THROW(parse("{\"bench\":\"mst\",\"rlSeed\":1.5}"),
                 std::runtime_error);
    EXPECT_THROW(parse("{\"bench\":\"mst\",\"tcov\":1.5}"),
                 std::runtime_error);
    EXPECT_THROW(parse("{\"bench\":\"mst\",\"interval\":0}"),
                 std::runtime_error);
}

TEST(CellSpec, CanonicalJsonHasFixedOrderAndOmitsDefaults)
{
    EXPECT_EQ(canonicalCellJson(parse("{\"bench\":\"mst\"}")),
              "{\"bench\":\"mst\",\"config\":\"baseline\"}");
    // Members appear in canonical order regardless of input order,
    // and non-default knobs are all present.
    EXPECT_EQ(
        canonicalCellJson(parse(
            "{\"interval\":512,\"tcov\":0.25,\"rlSeed\":7,"
            "\"throttlePolicy\":\"tabular-rl\","
            "\"engines\":[\"stream\"],\"input\":\"train\","
            "\"config\":\"cdp\",\"bench\":\"health\"}")),
        "{\"bench\":\"health\",\"config\":\"cdp\","
        "\"input\":\"train\",\"engines\":[\"stream\"],"
        "\"throttlePolicy\":\"tabular-rl\",\"rlSeed\":7,"
        "\"tcov\":0.25,\"interval\":512}");
}

TEST(CellSpec, SemanticallyIdenticalSpecsShareOneKey)
{
    // Different member order, explicit defaults: same content key.
    const std::uint64_t implicit = cellKey(parse(
        "{\"bench\":\"mst\"}"));
    const std::uint64_t explicitDefaults = cellKey(parse(
        "{\"input\":\"ref\",\"config\":\"baseline\","
        "\"bench\":\"mst\"}"));
    EXPECT_EQ(implicit, explicitDefaults);

    // Any semantic difference changes the key.
    EXPECT_NE(implicit, cellKey(parse(
                            "{\"bench\":\"mst\","
                            "\"input\":\"train\"}")));
    EXPECT_NE(implicit, cellKey(parse(
                            "{\"bench\":\"mst\","
                            "\"config\":\"cdp\"}")));
    EXPECT_NE(implicit, cellKey(parse(
                            "{\"bench\":\"health\"}")));
}

TEST(CellSpec, LabelMatchesEcdpsimConvention)
{
    EXPECT_EQ(cellLabel(parse("{\"bench\":\"mst\"}")), "baseline");
    EXPECT_EQ(cellLabel(parse(
                  "{\"bench\":\"mst\",\"config\":\"cdp\","
                  "\"engines\":[\"stream\",\"cdp\",\"isb\"],"
                  "\"throttlePolicy\":\"tabular-rl\"}")),
              "cdp[stream,cdp,isb]{tabular-rl}");
}

TEST(CellSpec, StatsJsonCarriesTheCellLabel)
{
    // The stored bytes name the cell's config label — the same
    // string ecdpsim --json prints for that configuration.
    ExperimentContext ctx;
    CellSpec spec = parse(
        "{\"bench\":\"mst\",\"input\":\"train\"}");
    const std::string bytes =
        cellStatsJson(spec, runCell(spec, ctx));
    JsonValue doc = parseJson(bytes);
    EXPECT_EQ(doc.at("workload").asString(), "mst");
    EXPECT_EQ(doc.at("config").asString(), "baseline");
    // No trailing newline: the byte-identity contract is exact.
    ASSERT_FALSE(bytes.empty());
    EXPECT_NE(bytes.back(), '\n');
}

} // namespace
