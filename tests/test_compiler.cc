/**
 * @file
 * Tests for the profiling compiler: PG classification on crafted
 * workloads where the beneficial pointers are known by construction.
 */

#include <gtest/gtest.h>

#include "compiler/profiling_compiler.hh"
#include "trace/trace.hh"

namespace ecdp
{
namespace
{

constexpr Addr kPcWalk = 0x5000;

/**
 * A workload walking a scattered linked list of 64-byte nodes
 * {data @0, junk* @4, next @8}: the junk pointer targets are never
 * accessed, the next targets always are.
 */
Workload
chainWorkload(std::size_t nodes)
{
    TraceBuilder tb("chain");
    std::vector<Addr> node_addrs;
    std::vector<Addr> junk_addrs;
    for (std::size_t i = 0; i < nodes; ++i) {
        node_addrs.push_back(tb.heap().allocate(64, 64));
        // Scatter: leave a gap so consecutive nodes differ in block.
        tb.heap().allocate(192, 64);
    }
    for (std::size_t i = 0; i < nodes; ++i)
        junk_addrs.push_back(tb.heap().allocate(64, 64));
    for (std::size_t i = 0; i < nodes; ++i) {
        tb.mem().write(node_addrs[i], 4, 1u);
        tb.mem().writePointer(node_addrs[i] + 4, junk_addrs[i]);
        tb.mem().writePointer(node_addrs[i] + 8,
                              i + 1 < nodes ? node_addrs[i + 1] : 0);
    }
    tb.beginTimed();
    Addr node = node_addrs[0];
    TraceRef ref = kNoDep;
    while (node != 0) {
        tb.load(kPcWalk, node, 4, ref, true, 2);
        auto [next, nref] = tb.loadPointer(kPcWalk + 8, node + 8, ref);
        node = next;
        ref = nref;
    }
    return std::move(tb).finish();
}

TEST(ProfilingCompilerTest, ClassifiesNextAsBeneficialJunkAsHarmful)
{
    Workload wl = chainWorkload(400);
    PgStatsMap stats = ProfilingCompiler::profileStats(wl);

    // PG(kPcWalk, +2): the next pointer at byte 8 relative to the
    // data word the walk load accesses.
    PgId next_pg{kPcWalk, 2};
    PgId junk_pg{kPcWalk, 1};
    ASSERT_TRUE(stats.count(next_pg));
    ASSERT_TRUE(stats.count(junk_pg));
    EXPECT_GT(stats[next_pg].usefulness(), 0.5);
    EXPECT_LT(stats[junk_pg].usefulness(), 0.5);
}

TEST(ProfilingCompilerTest, HintsEnableOnlyBeneficialSlots)
{
    Workload wl = chainWorkload(400);
    HintTable hints = ProfilingCompiler::profile(wl);
    const PrefetchHint *hint = hints.find(kPcWalk);
    ASSERT_NE(hint, nullptr);
    EXPECT_TRUE(hint->allows(2));
    EXPECT_FALSE(hint->allows(1));
}

TEST(ProfilingCompilerTest, ThresholdControlsClassification)
{
    Workload wl = chainWorkload(400);
    PgStatsMap stats = ProfilingCompiler::profileStats(wl);
    // With an impossible threshold nothing qualifies.
    ProfileOptions strict;
    strict.usefulnessThreshold = 1.01;
    EXPECT_TRUE(
        ProfilingCompiler::fromPgStats(stats, strict).empty());
    // With a zero threshold everything observed qualifies.
    ProfileOptions lax;
    lax.usefulnessThreshold = -0.1;
    lax.minIssued = 1;
    EXPECT_FALSE(ProfilingCompiler::fromPgStats(stats, lax).empty());
}

TEST(ProfilingCompilerTest, MinIssuedFiltersNoise)
{
    PgStatsMap stats;
    stats[PgId{0x1000, 1}] = PgStats{2, 2};   // rare but "useful"
    stats[PgId{0x1000, 2}] = PgStats{100, 90}; // frequent and useful
    ProfileOptions options;
    options.minIssued = 4;
    HintTable hints = ProfilingCompiler::fromPgStats(stats, options);
    const PrefetchHint *hint = hints.find(0x1000);
    ASSERT_NE(hint, nullptr);
    EXPECT_FALSE(hint->allows(1));
    EXPECT_TRUE(hint->allows(2));
}

TEST(ProfilingCompilerTest, UsefulnessHistogramBins)
{
    PgStatsMap stats;
    stats[PgId{0x1, 0}] = PgStats{100, 10};  // 0.10 -> bin 0
    stats[PgId{0x2, 0}] = PgStats{100, 30};  // 0.30 -> bin 1
    stats[PgId{0x3, 0}] = PgStats{100, 60};  // 0.60 -> bin 2
    stats[PgId{0x4, 0}] = PgStats{100, 90};  // 0.90 -> bin 3
    std::uint64_t quartiles[4];
    ProfilingCompiler::usefulnessHistogram(stats, quartiles);
    EXPECT_EQ(quartiles[0], 1u);
    EXPECT_EQ(quartiles[1], 1u);
    EXPECT_EQ(quartiles[2], 1u);
    EXPECT_EQ(quartiles[3], 1u);
}

TEST(ProfilingCompilerTest, ProfilingIsDeterministic)
{
    Workload wl = chainWorkload(200);
    HintTable a = ProfilingCompiler::profile(wl);
    HintTable b = ProfilingCompiler::profile(wl);
    EXPECT_EQ(a.size(), b.size());
    for (const auto &[pc, hint] : a) {
        const PrefetchHint *other = b.find(pc);
        ASSERT_NE(other, nullptr);
        EXPECT_EQ(hint.pos, other->pos);
        EXPECT_EQ(hint.neg, other->neg);
    }
}

} // namespace
} // namespace ecdp
